// Line-Line experiments (paper §3.2): line workflows deployed over a line
// of servers. The paper reports no figure for this configuration ("mainly
// for initial experimental reasons") but discusses the four algorithm
// variants — with/without the critical-bridge fix, and one- vs
// bi-directional fill. This bench measures all four against Fair Load on
// line networks with mixed link speeds.
//
// Expected shape: the bridge fix helps exactly when slow links meet large
// crossing messages; bidirectional fill helps when the workflow's weight is
// skewed toward one end.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/cost/cost_model.h"
#include "src/deploy/algorithm.h"
#include "src/exp/config.h"

int main() {
  using namespace wsflow;
  bench::PrintBanner("LL",
                     "Line-Line variants; Class C line workflows (M=19) "
                     "over N=5 line networks, 50 trials per link profile");

  const char* kAlgorithms[] = {"line-line", "line-line-nofix",
                               "line-line-bidir", "line-line-bidir-nofix",
                               "fair-load"};

  struct LinkProfile {
    const char* label;
    std::vector<double> speeds;  // N-1 = 4 links
  };
  const LinkProfile kProfiles[] = {
      {"uniform-100Mbps", {100e6, 100e6, 100e6, 100e6}},
      {"one-slow-middle", {100e6, 100e6, 1e6, 100e6}},
      {"descending", {1e9, 100e6, 10e6, 1e6}},
  };

  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  for (const LinkProfile& profile : kProfiles) {
    ExperimentResult result;
    result.name = std::string("line-line-") + profile.label;
    for (const char* name : kAlgorithms) {
      AlgorithmSummary s;
      s.algorithm = name;
      result.per_algorithm.push_back(s);
    }
    for (size_t trial = 0; trial < cfg.trials; ++trial) {
      Result<TrialInstance> t = DrawTrial(cfg, trial);
      if (!t.ok()) {
        std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
        return 1;
      }
      // Replace the drawn bus network with the line network under test,
      // keeping the drawn server powers.
      std::vector<double> powers;
      for (const Server& s : t->network.servers()) {
        powers.push_back(s.power_hz());
      }
      Result<Network> line = MakeLineNetwork(powers, profile.speeds);
      if (!line.ok()) {
        std::fprintf(stderr, "%s\n", line.status().ToString().c_str());
        return 1;
      }
      CostModel model(t->workflow, *line);
      DeployContext ctx;
      ctx.workflow = &t->workflow;
      ctx.network = &*line;
      ctx.seed = trial;
      for (size_t i = 0; i < result.per_algorithm.size(); ++i) {
        AlgorithmSummary& summary = result.per_algorithm[i];
        Result<Mapping> m = RunAlgorithm(summary.algorithm, ctx);
        if (!m.ok()) {
          ++summary.failures;
          continue;
        }
        Result<CostBreakdown> cost = model.Evaluate(*m);
        if (!cost.ok()) {
          ++summary.failures;
          continue;
        }
        summary.execution_time.Add(cost->execution_time);
        summary.time_penalty.Add(cost->time_penalty);
        summary.points.push_back(
            {cost->execution_time, cost->time_penalty});
      }
    }
    bench::PrintPanel(profile.label, result);
    bench::DumpScatterCsv(result, result.name);
  }
  return 0;
}
