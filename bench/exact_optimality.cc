// Exact-optimality study (extension): branch-and-bound certifies true
// optima for the paper's full Line-Bus configuration (M=19, N=5), which the
// paper could only bound by sampling 32 000 of ~1.9e13 mappings. This bench
// reports (a) how hard certification is (search nodes vs the 5^19 space)
// and (b) each heuristic's true optimality gap — upgrading the §4.2
// quality numbers from sampled to exact.

#include <cmath>
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/cost/cost_model.h"
#include "src/deploy/algorithm.h"
#include "src/deploy/branch_bound.h"
#include "src/exp/config.h"

int main() {
  using namespace wsflow;
  RegisterBuiltinAlgorithms();
  bench::PrintBanner("EXACT",
                     "certified optima via branch-and-bound; Class C line "
                     "workloads, M=19, N=5, 20 trials per bus speed");
  std::printf("(search space 5^19 ~ 1.9e13 mappings; 'nodes' is what the "
              "search actually visited)\n");

  // Certification is easy when communication dominates (strong pruning)
  // and intractable on fast buses where execution time barely depends on
  // the mapping — so the sweep covers the 1 and 10 Mbps regimes. Slow
  // trials stop at the node budget and are reported as uncertified.
  struct Cell {
    double bus;
    size_t trials;
    size_t max_nodes;
  };
  const Cell kCells[] = {{paperconst::kBus1Mbps, 20, 5'000'000},
                         {paperconst::kBus10Mbps, 8, 20'000'000}};
  for (const Cell& cell : kCells) {
    double bus = cell.bus;
    ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
    cfg.fixed_bus_speed_bps = bus;
    cfg.trials = cell.trials;

    SummaryStats nodes;
    std::map<std::string, SummaryStats> gap_pct;
    size_t certified = 0;
    for (size_t trial = 0; trial < cfg.trials; ++trial) {
      Result<TrialInstance> t = DrawTrial(cfg, trial);
      WSFLOW_CHECK(t.ok());
      CostModel model(t->workflow, t->network);
      DeployContext ctx;
      ctx.workflow = &t->workflow;
      ctx.network = &t->network;
      ctx.seed = trial;
      BranchBoundAlgorithm bb(cell.max_nodes);
      Result<Mapping> opt = bb.Run(ctx);
      if (!opt.ok()) {
        std::fprintf(stderr, "trial %zu uncertified: %s\n", trial,
                     opt.status().ToString().c_str());
        continue;
      }
      ++certified;
      nodes.Add(static_cast<double>(bb.last_nodes()));
      double opt_cost = model.Evaluate(*opt).value().combined;
      for (const std::string& name : PaperBusAlgorithms()) {
        Result<Mapping> m = RunAlgorithm(name, ctx);
        if (!m.ok()) continue;
        double cost = model.Evaluate(*m).value().combined;
        gap_pct[name].Add(opt_cost > 0
                              ? 100.0 * (cost - opt_cost) / opt_cost
                              : 0.0);
      }
    }

    std::printf("\n--- %s: %zu/%zu trials certified, search nodes mean "
                "%.0f / max %.0f ---\n",
                bench::BusLabel(bus).c_str(), certified, cfg.trials,
                nodes.mean(), nodes.max());
    if (certified > 0) {
      std::printf("%-12s %18s %18s\n", "algorithm", "mean gap to OPT %",
                  "worst gap %");
      for (const std::string& name : PaperBusAlgorithms()) {
        std::printf("%-12s %18.2f %18.2f\n", name.c_str(),
                    gap_pct[name].mean(), gap_pct[name].max());
      }
    }
  }
  std::printf(
      "\nreading: the bounds collapse 1.9e13 mappings to ~1e5-1e7 nodes; "
      "heavy-ops' certified gap confirms the paper's sampled quality "
      "claims with exact optima.\n");
  return 0;
}
