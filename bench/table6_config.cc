// Reproduces Table 6 of the paper: the Class C experimental configuration.
// Prints the specified distributions and verifies them empirically against
// 50 generated trials (the realized frequencies of message sizes, operation
// costs, server powers and bus speeds).

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/exp/config.h"

namespace {

void PrintRealized(const char* what,
                   const std::map<double, size_t>& counts, size_t total,
                   double unit, const char* unit_name) {
  std::printf("  realized %-22s", what);
  for (const auto& [value, count] : counts) {
    std::printf("  %g %s: %.1f%%", value / unit, unit_name,
                100.0 * static_cast<double>(count) /
                    static_cast<double>(total));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace wsflow;
  bench::PrintBanner("TBL6", "Class C experimental configuration (Table 6)");

  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  std::printf("MsgSize(O_i, O_i+1) bits : %s\n",
              cfg.message_bits.ToString().c_str());
  std::printf("C(O_i) cycles            : %s\n",
              cfg.operation_cycles.ToString().c_str());
  std::printf("P(S_i) Hz                : %s\n",
              cfg.server_power.ToString().c_str());
  std::printf("Line_Speed bus bps       : %s\n",
              cfg.bus_speed.ToString().c_str());
  std::printf("(message sizes are 873/7581/21392 bytes = %.5f/%.5f/%.5f "
              "Mbit with Mbit=2^20, as in §4.1)\n\n",
              paperconst::kSimpleMessageBits / 1048576.0,
              paperconst::kMediumMessageBits / 1048576.0,
              paperconst::kComplexMessageBits / 1048576.0);

  std::map<double, size_t> msg_counts, cycle_counts, power_counts,
      bus_counts;
  size_t msgs = 0, ops = 0, servers = 0, buses = 0;
  for (size_t trial = 0; trial < cfg.trials; ++trial) {
    Result<TrialInstance> t = DrawTrial(cfg, trial);
    if (!t.ok()) {
      std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
      return 1;
    }
    for (const Transition& tr : t->workflow.transitions()) {
      ++msg_counts[tr.message_bits];
      ++msgs;
    }
    for (const Operation& op : t->workflow.operations()) {
      ++cycle_counts[op.cycles()];
      ++ops;
    }
    for (const Server& s : t->network.servers()) {
      ++power_counts[s.power_hz()];
      ++servers;
    }
    ++bus_counts[t->network.link(t->network.bus()).speed_bps];
    ++buses;
  }
  std::printf("empirical check over %zu trials (expect 25/50/25%%):\n",
              cfg.trials);
  PrintRealized("message sizes", msg_counts, msgs, 1.0, "bit");
  PrintRealized("operation cycles", cycle_counts, ops, 1e6, "Mcycles");
  PrintRealized("server powers", power_counts, servers, 1e9, "GHz");
  PrintRealized("bus speeds", bus_counts, buses, 1e6, "Mbps");
  return 0;
}
