// Reproduces the §4.2 Line-Bus solution-quality numbers: worst-case
// percentage deviations of each heuristic from the best of 32 000 sampled
// solutions, over 50 experiments with 5 servers and 19 operations.
//
// Paper reference points for HeavyOps-LargeMsgs: (2.9%, 12%) exec/penalty
// deviation on the 1 Mbps bus and (29%, 0.3%) on the 100 Mbps bus — slow
// buses favour its execution time, fast buses its fairness.

#include "bench/quality_common.h"

int main() {
  using namespace wsflow;
  bench::PrintBanner("QUAL-LB",
                     "Line-Bus quality vs 32000-sample best; M=19, N=5, 50 "
                     "experiments (paper §4.1-4.2)");
  return bench::RunQualityStudy(WorkloadKind::kLine, /*trials=*/50,
                                /*samples=*/32000);
}
