// Multi-workflow deployment study (the paper's §6 future work): k Class C
// line workflows share one 5-server bus farm. Compares three policies as k
// grows:
//
//   independent   deploy each workflow with HeavyOps as if it were alone
//                 (every run sees full ideal shares — tenants double-book
//                 the strong servers);
//   joint-fair    pooled worst-fit over all operations;
//   seq-heavy     HeavyOps with one shared remaining-cycles ledger.
//
// Reported: combined fairness penalty and mean per-workflow T_execute.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/deploy/algorithm.h"
#include "src/deploy/multi_workflow.h"
#include "src/exp/config.h"

namespace {

using namespace wsflow;

std::vector<Workflow> DrawWorkflows(size_t count, uint64_t seed) {
  std::vector<Workflow> out;
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  cfg.seed = seed;
  for (size_t i = 0; i < count; ++i) {
    Result<TrialInstance> t = DrawTrial(cfg, i);
    WSFLOW_CHECK(t.ok()) << t.status().ToString();
    out.push_back(std::move(t->workflow));
  }
  return out;
}

}  // namespace

int main() {
  RegisterBuiltinAlgorithms();
  bench::PrintBanner("MULTI",
                     "k Class C line workflows on one 5-server 100 Mbps "
                     "bus farm; 20 draws per k");
  std::printf("%4s  %-12s %18s %18s\n", "k", "policy",
              "combined pen (ms)", "mean exec (ms)");

  for (size_t k : {2, 4, 8}) {
    SummaryStats pen_indep, pen_joint, pen_seq;
    SummaryStats exec_indep, exec_joint, exec_seq;
    for (uint64_t draw = 0; draw < 20; ++draw) {
      std::vector<Workflow> workflows = DrawWorkflows(k, 100 + draw);
      std::vector<const Workflow*> ptrs;
      for (const Workflow& w : workflows) ptrs.push_back(&w);
      Result<Network> network =
          MakeBusNetwork({1e9, 2e9, 3e9, 2e9, 1e9}, 100e6);
      WSFLOW_CHECK(network.ok());

      // Independent: each workflow deployed as if alone.
      std::vector<Mapping> independent;
      double exec_sum = 0;
      for (size_t i = 0; i < ptrs.size(); ++i) {
        DeployContext ctx;
        ctx.workflow = ptrs[i];
        ctx.network = &*network;
        ctx.seed = draw * 31 + i;
        Result<Mapping> m = RunAlgorithm("heavy-ops", ctx);
        WSFLOW_CHECK(m.ok());
        CostModel model(*ptrs[i], *network);
        exec_sum += model.ExecutionTime(*m).value();
        independent.push_back(std::move(*m));
      }
      pen_indep.Add(CombinedTimePenalty(ptrs, independent, *network, {}));
      exec_indep.Add(exec_sum / static_cast<double>(k));

      for (auto [strategy, pen, exec] :
           {std::tuple{MultiWorkflowStrategy::kJointFairLoad, &pen_joint,
                       &exec_joint},
            std::tuple{MultiWorkflowStrategy::kSequentialHeavyOps, &pen_seq,
                       &exec_seq}}) {
        MultiWorkflowOptions options;
        options.strategy = strategy;
        options.seed = draw;
        Result<MultiWorkflowResult> result =
            DeployMultipleWorkflows(ptrs, *network, options);
        WSFLOW_CHECK(result.ok());
        pen->Add(result->combined_time_penalty);
        exec->Add(Mean(result->execution_times));
      }
    }
    std::printf("%4zu  %-12s %18.3f %18.3f\n", k, "independent",
                pen_indep.mean() * 1e3, exec_indep.mean() * 1e3);
    std::printf("%4zu  %-12s %18.3f %18.3f\n", k, "joint-fair",
                pen_joint.mean() * 1e3, exec_joint.mean() * 1e3);
    std::printf("%4zu  %-12s %18.3f %18.3f\n", k, "seq-heavy",
                pen_seq.mean() * 1e3, exec_seq.mean() * 1e3);
  }
  std::printf(
      "\nreading: independent deployment's combined penalty grows with k "
      "(every tenant grabs the strong servers); the shared-ledger policies "
      "keep it flat at a small execution-time cost.\n");
  return 0;
}
