// Extension study (not in the paper): how do the paper's greedy heuristics
// compare against classic alternatives — round-robin, a HEFT-style
// critical-path list scheduler, hill climbing and simulated annealing — on
// the same Class C workloads? Search-based methods bound the gap the greedy
// algorithms leave; the schedulers show what fairness costs when ignored.

#include "bench/bench_util.h"
#include "src/exp/config.h"

int main() {
  using namespace wsflow;
  bench::PrintBanner("EXT",
                     "paper heuristics vs baselines and search; Class C, "
                     "M=19, N=5, 30 trials per panel");

  const std::vector<std::string> kAlgorithms{
      "random",    "round-robin", "fair-load",     "fltr2",    "fl-merge",
      "heavy-ops", "critical-path", "hill-climb",  "annealing"};

  for (WorkloadKind kind : {WorkloadKind::kLine, WorkloadKind::kHybridGraph}) {
    for (double bus : {paperconst::kBus1Mbps, paperconst::kBus100Mbps}) {
      ExperimentConfig cfg = MakeClassCConfig(kind);
      cfg.fixed_bus_speed_bps = bus;
      cfg.trials = 30;
      cfg.name = std::string("ext-") +
                 std::string(WorkloadKindToString(kind)) + "-" +
                 bench::BusLabel(bus);
      Result<ExperimentResult> result = RunExperiment(cfg, kAlgorithms);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      bench::PrintPanel(std::string(WorkloadKindToString(kind)) + ", " +
                            bench::BusLabel(bus),
                        *result);
      bench::DumpScatterCsv(*result, cfg.name);
    }
  }
  std::printf(
      "\nreading: hill-climb/annealing spend orders of magnitude more "
      "evaluations than the greedy heuristics; the gap between heavy-ops "
      "and them is the price of greediness.\n");
  return 0;
}
