// Evaluation-throughput bench: how many candidate mappings per second the
// cost layer can score over a single-op-move neighborhood — the inner loop
// of every search in src/deploy. Compares the cold path (copy the mapping,
// CostModel::Evaluate from scratch) against the incremental path
// (IncrementalEvaluator Apply / Evaluate / Undo on working state), on a
// line workload (closed-form T_execute) and on graph workloads (block-tree
// recursion), at the paper's scale and at a larger instance. Results land
// in bench_results/eval_throughput.json for CI trending; the docs/perf.md
// methodology section describes the setup.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/cost/cost_model.h"
#include "src/cost/incremental.h"
#include "src/exp/config.h"

namespace wsflow {
namespace {

/// Minimum wall time per measurement; sweeps repeat until it is exceeded.
constexpr double kMinSeconds = 0.25;

struct ScenarioResult {
  std::string name;
  std::string workload;
  size_t num_operations = 0;
  size_t num_servers = 0;
  double cold_per_sec = 0;
  double incremental_per_sec = 0;
  double speedup = 0;
};

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Cold: every neighbor is a fresh mapping copy evaluated from scratch.
double ColdRate(const CostModel& model, const Mapping& base,
                double* checksum) {
  const size_t M = model.workflow().num_operations();
  const size_t N = model.network().num_servers();
  size_t evals = 0;
  auto start = std::chrono::steady_clock::now();
  double elapsed = 0;
  do {
    for (uint32_t op = 0; op < M; ++op) {
      ServerId from = base.ServerOf(OperationId(op));
      for (uint32_t s = 0; s < N; ++s) {
        if (ServerId(s) == from) continue;
        Mapping candidate = base;
        candidate.Assign(OperationId(op), ServerId(s));
        Result<CostBreakdown> cost = model.Evaluate(candidate);
        WSFLOW_CHECK(cost.ok()) << cost.status().ToString();
        *checksum += cost->combined;
        ++evals;
      }
    }
    elapsed = Seconds(start);
  } while (elapsed < kMinSeconds);
  return static_cast<double>(evals) / elapsed;
}

/// Incremental: the same neighborhood walked as Apply / Evaluate / Undo on
/// one working evaluator.
double IncrementalRate(const CostModel& model, const Mapping& base,
                       double* checksum) {
  const size_t M = model.workflow().num_operations();
  const size_t N = model.network().num_servers();
  Result<IncrementalEvaluator> bound = IncrementalEvaluator::Bind(model, base);
  WSFLOW_CHECK(bound.ok()) << bound.status().ToString();
  IncrementalEvaluator& eval = *bound;
  size_t evals = 0;
  auto start = std::chrono::steady_clock::now();
  double elapsed = 0;
  do {
    for (uint32_t op = 0; op < M; ++op) {
      ServerId from = eval.mapping().ServerOf(OperationId(op));
      for (uint32_t s = 0; s < N; ++s) {
        if (ServerId(s) == from) continue;
        WSFLOW_CHECK(eval.Apply(OperationId(op), ServerId(s)).ok());
        Result<CostBreakdown> cost = eval.Evaluate();
        WSFLOW_CHECK(cost.ok()) << cost.status().ToString();
        *checksum += cost->combined;
        WSFLOW_CHECK(eval.Undo().ok());
        ++evals;
      }
    }
    elapsed = Seconds(start);
  } while (elapsed < kMinSeconds);
  return static_cast<double>(evals) / elapsed;
}

ScenarioResult RunScenario(const std::string& name, WorkloadKind kind,
                           size_t num_operations, size_t num_servers) {
  ExperimentConfig cfg = MakeClassCConfig(kind);
  cfg.num_operations = num_operations;
  cfg.num_servers = num_servers;
  cfg.fixed_bus_speed_bps = paperconst::kBus100Mbps;
  cfg.seed = 7;
  Result<TrialInstance> trial = DrawTrial(cfg, 0);
  WSFLOW_CHECK(trial.ok()) << trial.status().ToString();
  const ExecutionProfile* profile =
      trial->profile.has_value() ? &*trial->profile : nullptr;
  CostModel model(trial->workflow, trial->network, profile);
  const size_t M = trial->workflow.num_operations();

  Mapping base(M);
  for (uint32_t op = 0; op < M; ++op) {
    base.Assign(OperationId(op), ServerId(op % num_servers));
  }

  double checksum = 0;
  ScenarioResult out;
  out.name = name;
  out.workload = std::string(WorkloadKindToString(kind));
  out.num_operations = M;
  out.num_servers = num_servers;
  out.cold_per_sec = ColdRate(model, base, &checksum);
  out.incremental_per_sec = IncrementalRate(model, base, &checksum);
  out.speedup = out.incremental_per_sec / out.cold_per_sec;
  std::printf("%-18s %-8s M=%-3zu N=%-2zu %12.0f %12.0f %8.1fx\n",
              out.name.c_str(), out.workload.c_str(), out.num_operations,
              out.num_servers, out.cold_per_sec, out.incremental_per_sec,
              out.speedup);
  // Keep the scored costs observable so the loops cannot be elided.
  std::printf("  (checksum %.6g)\n", checksum);
  return out;
}

void WriteJson(const std::vector<ScenarioResult>& results) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (ec) {
    std::fprintf(stderr, "note: cannot create bench_results/: %s\n",
                 ec.message().c_str());
    return;
  }
  const char* path = "bench_results/eval_throughput.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "note: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"eval_throughput\",\n  \"unit\": "
                  "\"mappings_per_second\",\n  \"scenarios\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"workload\": \"%s\", "
        "\"num_operations\": %zu, \"num_servers\": %zu, "
        "\"cold_per_sec\": %.1f, \"incremental_per_sec\": %.1f, "
        "\"speedup\": %.2f}%s\n",
        r.name.c_str(), r.workload.c_str(), r.num_operations, r.num_servers,
        r.cold_per_sec, r.incremental_per_sec, r.speedup,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("(json -> %s)\n", path);
}

}  // namespace
}  // namespace wsflow

int main() {
  using namespace wsflow;
  bench::PrintBanner(
      "EVAL",
      "single-op-move neighborhood scoring, cold CostModel::Evaluate vs "
      "IncrementalEvaluator (Apply/Evaluate/Undo); Class C instances, "
      "100 Mbps bus");
  std::printf("%-18s %-8s %-10s %12s %12s %9s\n", "scenario", "workload",
              "size", "cold/s", "incr/s", "speedup");

  std::vector<ScenarioResult> results;
  results.push_back(
      RunScenario("line_m19_n5", WorkloadKind::kLine, 19, 5));
  results.push_back(
      RunScenario("bushy_m24_n8", WorkloadKind::kBushyGraph, 24, 8));
  results.push_back(
      RunScenario("hybrid_m24_n8", WorkloadKind::kHybridGraph, 24, 8));
  results.push_back(
      RunScenario("hybrid_m48_n12", WorkloadKind::kHybridGraph, 48, 12));
  WriteJson(results);
  return 0;
}
