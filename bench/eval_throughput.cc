// Evaluation-throughput bench: how many candidate mappings per second the
// cost layer can score over a single-op-move neighborhood — the inner loop
// of every search in src/deploy. Compares the cold path (copy the mapping,
// CostModel::Evaluate from scratch), the incremental path
// (IncrementalEvaluator Apply / Evaluate / Undo on working state) and the
// batched path (ScoreMoves sweeping each operation's whole server fan in
// one call), on a line workload (closed-form T_execute) and on graph
// workloads (block-tree recursion), at the paper's scale and at a larger
// instance. A `penalty` section sweeps the server count N at fixed M and
// compares the default tuning (O(log N) load-index fairness penalty plus
// the per-fan edge memo) against the legacy tuning (O(N) penalty pass, no
// memo) on batched move and swap fans — the curve that certifies the
// penalty query no longer scales with N. `soa` and `arm_path` sections
// ablate the SoA fan grid and the arm-only block-path invalidation one at
// a time against the default tuning, isolating what each contributes to
// batched throughput. A final section measures the parallel multi-chain
// annealing
// (annealing-par) at an equal total proposal budget for 1..8 chains —
// wall-clock scaling there depends on the host's core count, which the
// JSON records. Results land in bench_results/eval_throughput.json for CI
// trending; the docs/perf.md methodology section describes the setup.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/cost/cost_model.h"
#include "src/cost/incremental.h"
#include "src/deploy/parallel.h"
#include "src/exp/config.h"

namespace wsflow {
namespace {

/// Minimum wall time per measurement; sweeps repeat until it is exceeded.
constexpr double kMinSeconds = 0.25;

struct ScenarioResult {
  std::string name;
  std::string workload;
  size_t num_operations = 0;
  size_t num_servers = 0;
  double cold_per_sec = 0;
  double incremental_per_sec = 0;
  double batched_per_sec = 0;
  double speedup = 0;        ///< incremental vs cold
  double batch_speedup = 0;  ///< batched vs incremental
};

/// One point of the penalty N-scaling curve: batched scoring throughput at
/// a fixed operation count, default tuning vs the legacy (PR 3) tuning.
struct PenaltyScalingResult {
  std::string workload;
  size_t num_operations = 0;
  size_t num_servers = 0;
  double fast_moves_per_sec = 0;    ///< ScoreMoves, load index + memo
  double legacy_moves_per_sec = 0;  ///< ScoreMoves, O(N) penalty, no memo
  double moves_speedup = 0;
  double fast_swaps_per_sec = 0;    ///< ScoreSwaps, load index + memo
  double legacy_swaps_per_sec = 0;  ///< ScoreSwaps, O(N) penalty, no memo
  double swaps_speedup = 0;
};

/// One ablation point: batched fan throughput with the default tuning vs
/// the same instance with one fast path turned off.
struct AblationResult {
  std::string scenario;
  size_t num_operations = 0;
  size_t num_servers = 0;
  double default_moves_per_sec = 0;
  double ablated_moves_per_sec = 0;
  double moves_speedup = 0;
  double default_swaps_per_sec = 0;
  double ablated_swaps_per_sec = 0;
  double swaps_speedup = 0;
};

/// One point of the chains-vs-1 annealing scaling curve.
struct ChainScalingResult {
  std::string scenario;
  size_t chains = 0;
  size_t threads = 0;
  size_t total_iterations = 0;
  double seconds = 0;
  double best_cost = 0;
  double speedup_vs_1 = 0;  ///< wall-clock, equal total budget
};

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Cold: every neighbor is a fresh mapping copy evaluated from scratch.
double ColdRate(const CostModel& model, const Mapping& base,
                double* checksum) {
  const size_t M = model.workflow().num_operations();
  const size_t N = model.network().num_servers();
  size_t evals = 0;
  auto start = std::chrono::steady_clock::now();
  double elapsed = 0;
  do {
    for (uint32_t op = 0; op < M; ++op) {
      ServerId from = base.ServerOf(OperationId(op));
      for (uint32_t s = 0; s < N; ++s) {
        if (ServerId(s) == from) continue;
        Mapping candidate = base;
        candidate.Assign(OperationId(op), ServerId(s));
        Result<CostBreakdown> cost = model.Evaluate(candidate);
        WSFLOW_CHECK(cost.ok()) << cost.status().ToString();
        *checksum += cost->combined;
        ++evals;
      }
    }
    elapsed = Seconds(start);
  } while (elapsed < kMinSeconds);
  return static_cast<double>(evals) / elapsed;
}

/// Incremental: the same neighborhood walked as Apply / Evaluate / Undo on
/// one working evaluator.
double IncrementalRate(const CostModel& model, const Mapping& base,
                       double* checksum) {
  const size_t M = model.workflow().num_operations();
  const size_t N = model.network().num_servers();
  Result<IncrementalEvaluator> bound = IncrementalEvaluator::Bind(model, base);
  WSFLOW_CHECK(bound.ok()) << bound.status().ToString();
  IncrementalEvaluator& eval = *bound;
  size_t evals = 0;
  auto start = std::chrono::steady_clock::now();
  double elapsed = 0;
  do {
    for (uint32_t op = 0; op < M; ++op) {
      ServerId from = eval.mapping().ServerOf(OperationId(op));
      for (uint32_t s = 0; s < N; ++s) {
        if (ServerId(s) == from) continue;
        WSFLOW_CHECK(eval.Apply(OperationId(op), ServerId(s)).ok());
        Result<CostBreakdown> cost = eval.Evaluate();
        WSFLOW_CHECK(cost.ok()) << cost.status().ToString();
        *checksum += cost->combined;
        WSFLOW_CHECK(eval.Undo().ok());
        ++evals;
      }
    }
    elapsed = Seconds(start);
  } while (elapsed < kMinSeconds);
  return static_cast<double>(evals) / elapsed;
}

/// Batched: the same neighborhood scored as one ScoreMoves fan per
/// operation — the bookkeeping for each op is pinned once, not per
/// candidate.
double BatchedRate(const CostModel& model, const Mapping& base,
                   double* checksum) {
  const size_t M = model.workflow().num_operations();
  const size_t N = model.network().num_servers();
  Result<IncrementalEvaluator> bound = IncrementalEvaluator::Bind(model, base);
  WSFLOW_CHECK(bound.ok()) << bound.status().ToString();
  IncrementalEvaluator& eval = *bound;
  std::vector<ServerId> fan;
  std::vector<double> costs;
  size_t evals = 0;
  auto start = std::chrono::steady_clock::now();
  double elapsed = 0;
  do {
    for (uint32_t op = 0; op < M; ++op) {
      ServerId from = eval.mapping().ServerOf(OperationId(op));
      fan.clear();
      for (uint32_t s = 0; s < N; ++s) {
        if (ServerId(s) != from) fan.push_back(ServerId(s));
      }
      costs.resize(fan.size());
      WSFLOW_CHECK(eval.ScoreMoves(OperationId(op), fan, costs).ok());
      for (double c : costs) *checksum += c;
      evals += fan.size();
    }
    elapsed = Seconds(start);
  } while (elapsed < kMinSeconds);
  return static_cast<double>(evals) / elapsed;
}

/// Batched move fans under an explicit tuning; the neighborhood matches
/// BatchedRate so the two are directly comparable.
double TunedMovesRate(const CostModel& model, const Mapping& base,
                      const EvalTuning& tuning, double* checksum) {
  const size_t M = model.workflow().num_operations();
  const size_t N = model.network().num_servers();
  Result<IncrementalEvaluator> bound =
      IncrementalEvaluator::Bind(model, base, {}, tuning);
  WSFLOW_CHECK(bound.ok()) << bound.status().ToString();
  IncrementalEvaluator& eval = *bound;
  std::vector<ServerId> fan;
  std::vector<double> costs;
  size_t evals = 0;
  auto start = std::chrono::steady_clock::now();
  double elapsed = 0;
  do {
    for (uint32_t op = 0; op < M; ++op) {
      ServerId from = eval.mapping().ServerOf(OperationId(op));
      fan.clear();
      for (uint32_t s = 0; s < N; ++s) {
        if (ServerId(s) != from) fan.push_back(ServerId(s));
      }
      costs.resize(fan.size());
      WSFLOW_CHECK(eval.ScoreMoves(OperationId(op), fan, costs).ok());
      for (double c : costs) *checksum += c;
      evals += fan.size();
    }
    elapsed = Seconds(start);
  } while (elapsed < kMinSeconds);
  return static_cast<double>(evals) / elapsed;
}

/// Batched swap fans under an explicit tuning: each operation sweeps all
/// higher-numbered partners on other servers, the hill-climb neighborhood.
/// With M > N, partners pile onto shared servers, which is where the edge
/// memo earns its keep.
double TunedSwapsRate(const CostModel& model, const Mapping& base,
                      const EvalTuning& tuning, double* checksum) {
  const size_t M = model.workflow().num_operations();
  Result<IncrementalEvaluator> bound =
      IncrementalEvaluator::Bind(model, base, {}, tuning);
  WSFLOW_CHECK(bound.ok()) << bound.status().ToString();
  IncrementalEvaluator& eval = *bound;
  std::vector<OperationId> fan;
  std::vector<double> costs;
  size_t evals = 0;
  auto start = std::chrono::steady_clock::now();
  double elapsed = 0;
  do {
    for (uint32_t a = 0; a < M; ++a) {
      fan.clear();
      for (uint32_t b = a + 1; b < M; ++b) {
        if (eval.mapping().ServerOf(OperationId(a)) !=
            eval.mapping().ServerOf(OperationId(b))) {
          fan.push_back(OperationId(b));
        }
      }
      if (fan.empty()) continue;
      costs.resize(fan.size());
      WSFLOW_CHECK(eval.ScoreSwaps(OperationId(a), fan, costs).ok());
      for (double c : costs) *checksum += c;
      evals += fan.size();
    }
    elapsed = Seconds(start);
  } while (elapsed < kMinSeconds);
  return static_cast<double>(evals) / elapsed;
}

/// Sweeps the server count at fixed M: if the load index does its job, the
/// fast batched throughput is nearly flat in N while the legacy tuning
/// decays with its O(N) penalty pass per candidate.
std::vector<PenaltyScalingResult> RunPenaltyScaling(WorkloadKind kind,
                                                    size_t num_operations) {
  EvalTuning fast;  // defaults: load index, SoA grid and arm path on
  EvalTuning legacy;  // the PR 3 path: every batch fast path off
  legacy.use_load_index = false;
  legacy.use_edge_memo = false;
  legacy.use_soa_fan = false;
  legacy.use_arm_path = false;

  std::vector<PenaltyScalingResult> curve;
  for (size_t num_servers : {size_t{8}, size_t{16}, size_t{64}, size_t{256}}) {
    ExperimentConfig cfg = MakeClassCConfig(kind);
    cfg.num_operations = num_operations;
    cfg.num_servers = num_servers;
    cfg.fixed_bus_speed_bps = paperconst::kBus100Mbps;
    cfg.seed = 7;
    Result<TrialInstance> trial = DrawTrial(cfg, 0);
    WSFLOW_CHECK(trial.ok()) << trial.status().ToString();
    const ExecutionProfile* profile =
        trial->profile.has_value() ? &*trial->profile : nullptr;
    CostModel model(trial->workflow, trial->network, profile);
    const size_t M = trial->workflow.num_operations();

    Mapping base(M);
    for (uint32_t op = 0; op < M; ++op) {
      base.Assign(OperationId(op), ServerId(op % num_servers));
    }

    double checksum = 0;
    PenaltyScalingResult point;
    point.workload = std::string(WorkloadKindToString(kind));
    point.num_operations = M;
    point.num_servers = num_servers;
    point.fast_moves_per_sec = TunedMovesRate(model, base, fast, &checksum);
    point.legacy_moves_per_sec =
        TunedMovesRate(model, base, legacy, &checksum);
    point.moves_speedup =
        point.fast_moves_per_sec / point.legacy_moves_per_sec;
    point.fast_swaps_per_sec = TunedSwapsRate(model, base, fast, &checksum);
    point.legacy_swaps_per_sec =
        TunedSwapsRate(model, base, legacy, &checksum);
    point.swaps_speedup =
        point.fast_swaps_per_sec / point.legacy_swaps_per_sec;
    curve.push_back(point);
    std::printf("penalty M=%-3zu N=%-4zu moves %12.0f vs %12.0f (%5.2fx)  "
                "swaps %12.0f vs %12.0f (%5.2fx)\n",
                point.num_operations, point.num_servers,
                point.fast_moves_per_sec, point.legacy_moves_per_sec,
                point.moves_speedup, point.fast_swaps_per_sec,
                point.legacy_swaps_per_sec, point.swaps_speedup);
    std::printf("  (checksum %.6g)\n", checksum);
  }
  return curve;
}

/// Measures one fast-path ablation on a hybrid bus instance: default
/// tuning vs `ablated` over the same batched move and swap fans.
AblationResult RunAblation(const std::string& scenario, WorkloadKind kind,
                           size_t num_operations, size_t num_servers,
                           const EvalTuning& ablated) {
  ExperimentConfig cfg = MakeClassCConfig(kind);
  cfg.num_operations = num_operations;
  cfg.num_servers = num_servers;
  cfg.fixed_bus_speed_bps = paperconst::kBus100Mbps;
  cfg.seed = 7;
  Result<TrialInstance> trial = DrawTrial(cfg, 0);
  WSFLOW_CHECK(trial.ok()) << trial.status().ToString();
  const ExecutionProfile* profile =
      trial->profile.has_value() ? &*trial->profile : nullptr;
  CostModel model(trial->workflow, trial->network, profile);
  const size_t M = trial->workflow.num_operations();

  Mapping base(M);
  for (uint32_t op = 0; op < M; ++op) {
    base.Assign(OperationId(op), ServerId(op % num_servers));
  }

  double checksum = 0;
  AblationResult out;
  out.scenario = scenario;
  out.num_operations = M;
  out.num_servers = num_servers;
  EvalTuning defaults;
  out.default_moves_per_sec = TunedMovesRate(model, base, defaults, &checksum);
  out.ablated_moves_per_sec = TunedMovesRate(model, base, ablated, &checksum);
  out.moves_speedup = out.default_moves_per_sec / out.ablated_moves_per_sec;
  out.default_swaps_per_sec = TunedSwapsRate(model, base, defaults, &checksum);
  out.ablated_swaps_per_sec = TunedSwapsRate(model, base, ablated, &checksum);
  out.swaps_speedup = out.default_swaps_per_sec / out.ablated_swaps_per_sec;
  std::printf("%-18s M=%-3zu N=%-3zu moves %12.0f vs %12.0f (%5.2fx)  "
              "swaps %12.0f vs %12.0f (%5.2fx)\n",
              out.scenario.c_str(), out.num_operations, out.num_servers,
              out.default_moves_per_sec, out.ablated_moves_per_sec,
              out.moves_speedup, out.default_swaps_per_sec,
              out.ablated_swaps_per_sec, out.swaps_speedup);
  std::printf("  (checksum %.6g)\n", checksum);
  return out;
}

ScenarioResult RunScenario(const std::string& name, WorkloadKind kind,
                           size_t num_operations, size_t num_servers,
                           ExperimentTopology topology = ExperimentTopology::kBus) {
  ExperimentConfig cfg = MakeClassCConfig(kind);
  cfg.num_operations = num_operations;
  cfg.num_servers = num_servers;
  cfg.topology = topology;
  if (topology == ExperimentTopology::kBus) {
    cfg.fixed_bus_speed_bps = paperconst::kBus100Mbps;
  } else if (topology == ExperimentTopology::kHierarchical) {
    // 2 regions x 2 clusters x 3 servers = 12 servers, multi-hop routes.
    cfg.hierarchical.regions = 2;
    cfg.hierarchical.clusters_per_region = 2;
    cfg.hierarchical.cluster_size = 3;
  } else {
    cfg.fat_tree.spines = 2;
    cfg.fat_tree.racks = 2;
    cfg.fat_tree.rack_size = 5;
  }
  cfg.seed = 7;
  Result<TrialInstance> trial = DrawTrial(cfg, 0);
  WSFLOW_CHECK(trial.ok()) << trial.status().ToString();
  const ExecutionProfile* profile =
      trial->profile.has_value() ? &*trial->profile : nullptr;
  CostModel model(trial->workflow, trial->network, profile);
  const size_t M = trial->workflow.num_operations();
  // WAN topologies derive the server count from their shape knobs.
  const size_t N = trial->network.num_servers();

  Mapping base(M);
  for (uint32_t op = 0; op < M; ++op) {
    base.Assign(OperationId(op), ServerId(op % N));
  }

  double checksum = 0;
  ScenarioResult out;
  out.name = name;
  out.workload = std::string(WorkloadKindToString(kind));
  out.num_operations = M;
  out.num_servers = N;
  out.cold_per_sec = ColdRate(model, base, &checksum);
  out.incremental_per_sec = IncrementalRate(model, base, &checksum);
  out.batched_per_sec = BatchedRate(model, base, &checksum);
  out.speedup = out.incremental_per_sec / out.cold_per_sec;
  out.batch_speedup = out.batched_per_sec / out.incremental_per_sec;
  std::printf("%-18s %-8s M=%-3zu N=%-2zu %12.0f %12.0f %12.0f %7.1fx %7.1fx\n",
              out.name.c_str(), out.workload.c_str(), out.num_operations,
              out.num_servers, out.cold_per_sec, out.incremental_per_sec,
              out.batched_per_sec, out.speedup, out.batch_speedup);
  // Keep the scored costs observable so the loops cannot be elided.
  std::printf("  (checksum %.6g)\n", checksum);
  return out;
}

/// Times annealing-par at a fixed total budget for several chain counts.
/// Equal budgets mean the curve isolates parallel wall-clock scaling from
/// extra search effort; on a single-core host the curve is flat, which the
/// recorded hardware_concurrency lets readers interpret.
std::vector<ChainScalingResult> RunChainScaling(const std::string& scenario,
                                                WorkloadKind kind,
                                                size_t num_operations,
                                                size_t num_servers,
                                                size_t total_iterations) {
  ExperimentConfig cfg = MakeClassCConfig(kind);
  cfg.num_operations = num_operations;
  cfg.num_servers = num_servers;
  cfg.fixed_bus_speed_bps = paperconst::kBus100Mbps;
  cfg.seed = 7;
  Result<TrialInstance> trial = DrawTrial(cfg, 0);
  WSFLOW_CHECK(trial.ok()) << trial.status().ToString();
  DeployContext ctx;
  ctx.workflow = &trial->workflow;
  ctx.network = &trial->network;
  ctx.profile = trial->profile.has_value() ? &*trial->profile : nullptr;
  ctx.seed = 42;

  std::vector<ChainScalingResult> curve;
  double base_seconds = 0;
  for (size_t chains : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    ParallelSearchOptions options;
    options.chains = chains;
    options.threads = chains;
    options.total_iterations = total_iterations;
    ParallelSearchStats stats;
    auto start = std::chrono::steady_clock::now();
    Result<Mapping> m =
        ParallelAnnealingAlgorithm(options).RunWithStats(ctx, &stats);
    double seconds = Seconds(start);
    WSFLOW_CHECK(m.ok()) << m.status().ToString();

    ChainScalingResult point;
    point.scenario = scenario;
    point.chains = chains;
    point.threads = stats.threads;
    point.total_iterations = total_iterations;
    point.seconds = seconds;
    point.best_cost = stats.best_cost;
    if (chains == 1) base_seconds = seconds;
    point.speedup_vs_1 = base_seconds / seconds;
    curve.push_back(point);
    std::printf("%-18s chains=%zu threads=%zu %10.3fs best=%.6g %7.2fx\n",
                scenario.c_str(), point.chains, point.threads, point.seconds,
                point.best_cost, point.speedup_vs_1);
  }
  return curve;
}

void WriteAblationSection(std::FILE* f, const char* name,
                          const std::vector<AblationResult>& points,
                          const char* ablated_key, bool trailing_comma) {
  std::fprintf(f, "  \"%s\": [\n", name);
  for (size_t i = 0; i < points.size(); ++i) {
    const AblationResult& r = points[i];
    std::fprintf(
        f,
        "    {\"scenario\": \"%s\", \"num_operations\": %zu, "
        "\"num_servers\": %zu, \"default_moves_per_sec\": %.1f, "
        "\"%s_moves_per_sec\": %.1f, \"moves_speedup\": %.2f, "
        "\"default_swaps_per_sec\": %.1f, \"%s_swaps_per_sec\": %.1f, "
        "\"swaps_speedup\": %.2f}%s\n",
        r.scenario.c_str(), r.num_operations, r.num_servers,
        r.default_moves_per_sec, ablated_key, r.ablated_moves_per_sec,
        r.moves_speedup, r.default_swaps_per_sec, ablated_key,
        r.ablated_swaps_per_sec, r.swaps_speedup,
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]%s\n", trailing_comma ? "," : "");
}

void WriteJson(const std::vector<ScenarioResult>& results,
               const std::vector<PenaltyScalingResult>& penalty,
               const std::vector<AblationResult>& soa,
               const std::vector<AblationResult>& arm_path,
               const std::vector<ChainScalingResult>& scaling) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (ec) {
    std::fprintf(stderr, "note: cannot create bench_results/: %s\n",
                 ec.message().c_str());
    return;
  }
  const char* path = "bench_results/eval_throughput.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "note: cannot write %s\n", path);
    return;
  }
  // detected_cores and single_core_timesharing make the scaling section
  // self-describing: on a 1-core host K threads timeshare one core, so a
  // flat chain-scaling curve is expected rather than a parallelism bug.
  const unsigned detected_cores = std::thread::hardware_concurrency();
  std::fprintf(f, "{\n  \"bench\": \"eval_throughput\",\n  \"unit\": "
                  "\"mappings_per_second\",\n"
                  "  \"hardware_concurrency\": %u,\n"
                  "  \"detected_cores\": %u,\n"
                  "  \"single_core_timesharing\": %s,\n"
                  "  \"scenarios\": [\n",
               detected_cores, detected_cores,
               detected_cores <= 1 ? "true" : "false");
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"workload\": \"%s\", "
        "\"num_operations\": %zu, \"num_servers\": %zu, "
        "\"cold_per_sec\": %.1f, \"incremental_per_sec\": %.1f, "
        "\"batched_per_sec\": %.1f, \"speedup\": %.2f, "
        "\"batch_speedup\": %.2f}%s\n",
        r.name.c_str(), r.workload.c_str(), r.num_operations, r.num_servers,
        r.cold_per_sec, r.incremental_per_sec, r.batched_per_sec, r.speedup,
        r.batch_speedup, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"penalty_scaling\": [\n");
  for (size_t i = 0; i < penalty.size(); ++i) {
    const PenaltyScalingResult& r = penalty[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"num_operations\": %zu, "
        "\"num_servers\": %zu, \"fast_moves_per_sec\": %.1f, "
        "\"legacy_moves_per_sec\": %.1f, \"moves_speedup\": %.2f, "
        "\"fast_swaps_per_sec\": %.1f, \"legacy_swaps_per_sec\": %.1f, "
        "\"swaps_speedup\": %.2f}%s\n",
        r.workload.c_str(), r.num_operations, r.num_servers,
        r.fast_moves_per_sec, r.legacy_moves_per_sec, r.moves_speedup,
        r.fast_swaps_per_sec, r.legacy_swaps_per_sec, r.swaps_speedup,
        i + 1 < penalty.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  WriteAblationSection(f, "soa", soa, "no_soa", /*trailing_comma=*/true);
  WriteAblationSection(f, "arm_path", arm_path, "no_arm",
                       /*trailing_comma=*/true);
  std::fprintf(f, "  \"chain_scaling\": [\n");
  for (size_t i = 0; i < scaling.size(); ++i) {
    const ChainScalingResult& r = scaling[i];
    std::fprintf(
        f,
        "    {\"scenario\": \"%s\", \"chains\": %zu, \"threads\": %zu, "
        "\"total_iterations\": %zu, \"seconds\": %.4f, "
        "\"best_cost\": %.6g, \"speedup_vs_1\": %.2f}%s\n",
        r.scenario.c_str(), r.chains, r.threads, r.total_iterations,
        r.seconds, r.best_cost, r.speedup_vs_1,
        i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("(json -> %s)\n", path);
}

}  // namespace
}  // namespace wsflow

int main(int argc, char** argv) {
  using namespace wsflow;

  // Guard mode for CI: --assert-min-ratio R runs only the M=48/N=12
  // hybrid scenario and fails (exit 1) unless batched scoring beats the
  // incremental path by at least R.
  double assert_min_ratio = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--assert-min-ratio" && i + 1 < argc) {
      assert_min_ratio = std::atof(argv[++i]);
      if (assert_min_ratio <= 0) {
        std::fprintf(stderr, "--assert-min-ratio needs a positive number\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--assert-min-ratio R]\n", argv[0]);
      return 2;
    }
  }
  if (assert_min_ratio > 0) {
    std::printf("%-18s %-8s %-10s %12s %12s %12s %8s %8s\n", "scenario",
                "workload", "size", "cold/s", "incr/s", "batch/s", "incr-x",
                "batch-x");
    ScenarioResult guard =
        RunScenario("hybrid_m48_n12", WorkloadKind::kHybridGraph, 48, 12);
    if (guard.batch_speedup < assert_min_ratio) {
      std::fprintf(stderr,
                   "FAIL: batched/incremental ratio %.2f < required %.2f\n",
                   guard.batch_speedup, assert_min_ratio);
      return 1;
    }
    std::printf("PASS: batched/incremental ratio %.2f >= %.2f\n",
                guard.batch_speedup, assert_min_ratio);
    return 0;
  }

  bench::PrintBanner(
      "EVAL",
      "single-op-move neighborhood scoring, cold CostModel::Evaluate vs "
      "IncrementalEvaluator (Apply/Evaluate/Undo) vs batched ScoreMoves; "
      "Class C instances, 100 Mbps bus");
  std::printf("%-18s %-8s %-10s %12s %12s %12s %8s %8s\n", "scenario",
              "workload", "size", "cold/s", "incr/s", "batch/s", "incr-x",
              "batch-x");

  std::vector<ScenarioResult> results;
  results.push_back(
      RunScenario("line_m19_n5", WorkloadKind::kLine, 19, 5));
  results.push_back(
      RunScenario("bushy_m24_n8", WorkloadKind::kBushyGraph, 24, 8));
  results.push_back(
      RunScenario("hybrid_m24_n8", WorkloadKind::kHybridGraph, 24, 8));
  results.push_back(
      RunScenario("hybrid_m48_n12", WorkloadKind::kHybridGraph, 48, 12));

  // WAN topologies: the same scoring loops over weighted multi-hop routes
  // (hierarchical 2x2x3 and a 2-spine fat tree) instead of the 1-hop bus —
  // route lookups stay table-driven, so throughput should hold up.
  std::printf("\nhierarchical/fat-tree topologies, weighted multi-hop "
              "routing\n");
  results.push_back(RunScenario("hier_2x2x3_m24", WorkloadKind::kHybridGraph,
                                24, 0, ExperimentTopology::kHierarchical));
  results.push_back(RunScenario("fattree_2x2x5_m24",
                                WorkloadKind::kHybridGraph, 24, 0,
                                ExperimentTopology::kFatTree));

  std::printf("\npenalty N-scaling, batched fans, default tuning (load "
              "index + memo) vs legacy (O(N) penalty, no memo)\n");
  std::vector<PenaltyScalingResult> penalty =
      RunPenaltyScaling(WorkloadKind::kHybridGraph, 32);

  std::printf("\nsoa fan-grid ablation, default tuning vs use_soa_fan=false "
              "(memo fallback)\n");
  EvalTuning no_soa;
  no_soa.use_soa_fan = false;
  std::vector<AblationResult> soa;
  soa.push_back(
      RunAblation("hybrid_m24_n8", WorkloadKind::kHybridGraph, 24, 8, no_soa));
  soa.push_back(RunAblation("hybrid_m48_n12", WorkloadKind::kHybridGraph, 48,
                            12, no_soa));

  std::printf("\narm-only path ablation, default tuning vs "
              "use_arm_path=false (full ancestor closure)\n");
  EvalTuning no_arm;
  no_arm.use_arm_path = false;
  std::vector<AblationResult> arm_path;
  arm_path.push_back(
      RunAblation("hybrid_m24_n8", WorkloadKind::kHybridGraph, 24, 8, no_arm));
  arm_path.push_back(RunAblation("hybrid_m48_n12", WorkloadKind::kHybridGraph,
                                 48, 12, no_arm));

  std::printf("\nannealing-par scaling, equal total budget "
              "(hardware_concurrency=%u)\n",
              std::thread::hardware_concurrency());
  std::vector<ChainScalingResult> scaling = RunChainScaling(
      "hybrid_m24_n8", WorkloadKind::kHybridGraph, 24, 8, 40000);
  WriteJson(results, penalty, soa, arm_path, scaling);
  return 0;
}
