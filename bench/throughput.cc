// Continuous-operation study (extension; motivated by the paper's §2.1
// service-provider scenario): a Poisson stream of workflow instances runs
// over each algorithm's deployment with shared servers and a shared bus.
// Single-shot T_execute rewards packing operations together; under
// sustained load, packing saturates the chosen servers and fairness turns
// into throughput. This bench sweeps the arrival rate and reports mean /
// p95 latency and achieved throughput per algorithm — the crossover where
// the fairness objective starts paying its way.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/deploy/algorithm.h"
#include "src/exp/config.h"
#include "src/sim/stream.h"

int main() {
  using namespace wsflow;
  RegisterBuiltinAlgorithms();
  bench::PrintBanner("THRU",
                     "Poisson instance streams over each deployment; Class "
                     "C line workloads, M=19, N=5, 100 Mbps bus, 10 trials "
                     "x 150 instances per cell");

  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  cfg.fixed_bus_speed_bps = paperconst::kBus100Mbps;
  const double kRates[] = {2.0, 8.0, 16.0, 32.0};

  for (double rate : kRates) {
    std::printf("\n--- arrival rate %.0f instances/s ---\n", rate);
    std::printf("%-12s %14s %14s %16s\n", "algorithm", "mean lat (ms)",
                "p95 lat (ms)", "throughput (/s)");
    for (const std::string& name : PaperBusAlgorithms()) {
      SummaryStats mean_lat, p95_lat, throughput;
      for (size_t trial = 0; trial < 10; ++trial) {
        Result<TrialInstance> t = DrawTrial(cfg, trial);
        WSFLOW_CHECK(t.ok());
        DeployContext ctx;
        ctx.workflow = &t->workflow;
        ctx.network = &t->network;
        ctx.seed = trial;
        Result<Mapping> m = RunAlgorithm(name, ctx);
        if (!m.ok()) continue;
        StreamOptions options;
        options.num_instances = 150;
        options.arrival_rate = rate;
        options.seed = trial * 7 + 1;
        Result<StreamResult> r =
            SimulateWorkflowStream(t->workflow, t->network, *m, options);
        if (!r.ok()) continue;
        mean_lat.Add(r->mean_latency);
        p95_lat.Add(r->p95_latency);
        throughput.Add(r->throughput);
      }
      std::printf("%-12s %14.2f %14.2f %16.2f\n", name.c_str(),
                  mean_lat.mean() * 1e3, p95_lat.mean() * 1e3,
                  throughput.mean());
    }
  }
  std::printf(
      "\nreading: at low rates latency tracks the single-instance "
      "T_execute ordering; as the rate approaches each deployment's "
      "bottleneck capacity, the fair family sustains higher throughput "
      "because no single server saturates early.\n");
  return 0;
}
