// Ablation studies for the design choices DESIGN.md calls out:
//
//   A1. Random initial mapping in the FLTR family (the paper seeds the
//       working mapping randomly so the gain function is non-trivial from
//       step one) — on vs off.
//   A2. HeavyOps-LargeMsgs "large message" threshold — scaling the
//       transfer-time side of the (a)/(b) decision.
//   A3. Local-search headroom — how much combined cost a hill climber
//       recovers on top of each heuristic (greedy optimality gap).
//   A4. Line-Line phase 2 (critical-bridge fix) and fill direction.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/cost/cost_model.h"
#include "src/deploy/algorithm.h"
#include "src/deploy/fl_merge.h"
#include "src/deploy/fltr.h"
#include "src/deploy/fltr2.h"
#include "src/deploy/heavy_ops.h"
#include "src/deploy/line_line.h"
#include "src/deploy/local_search.h"
#include "src/exp/config.h"

namespace {

using namespace wsflow;

constexpr size_t kTrials = 40;

/// Mean combined cost of `algo` over Class C line trials at `bus_bps`.
template <typename MakeAlgo>
SummaryStats MeanCombined(MakeAlgo make_algo, WorkloadKind kind,
                          double bus_bps) {
  ExperimentConfig cfg = MakeClassCConfig(kind);
  cfg.fixed_bus_speed_bps = bus_bps;
  cfg.trials = kTrials;
  SummaryStats stats;
  for (size_t trial = 0; trial < cfg.trials; ++trial) {
    Result<TrialInstance> t = DrawTrial(cfg, trial);
    if (!t.ok()) continue;
    const ExecutionProfile* profile = t->profile ? &*t->profile : nullptr;
    CostModel model(t->workflow, t->network, profile);
    DeployContext ctx;
    ctx.workflow = &t->workflow;
    ctx.network = &t->network;
    ctx.profile = profile;
    ctx.seed = trial;
    auto algo = make_algo();
    Result<Mapping> m = algo.Run(ctx);
    if (!m.ok()) continue;
    Result<CostBreakdown> cost = model.Evaluate(*m);
    if (cost.ok()) stats.Add(cost->combined);
  }
  return stats;
}

void AblationRandomInit() {
  std::printf("\nA1: FLTR-family random initial mapping (mean combined cost,"
              " ms; %zu Class C line trials)\n", kTrials);
  std::printf("%-10s %-12s %14s %14s\n", "bus", "algorithm", "random-init",
              "empty-init");
  for (double bus : {paperconst::kBus1Mbps, paperconst::kBus100Mbps}) {
    auto row = [&](const char* name, auto with, auto without) {
      SummaryStats a = MeanCombined(with, WorkloadKind::kLine, bus);
      SummaryStats b = MeanCombined(without, WorkloadKind::kLine, bus);
      std::printf("%-10s %-12s %14.3f %14.3f\n",
                  wsflow::bench::BusLabel(bus).c_str(), name,
                  a.mean() * 1e3, b.mean() * 1e3);
    };
    row("fltr", [] { return FltrAlgorithm(true); },
        [] { return FltrAlgorithm(false); });
    row("fltr2", [] { return Fltr2Algorithm(true); },
        [] { return Fltr2Algorithm(false); });
    row("fl-merge", [] { return FlMergeAlgorithm(true); },
        [] { return FlMergeAlgorithm(false); });
  }
}

void AblationHolmThreshold() {
  std::printf("\nA2: HeavyOps-LargeMsgs transfer-time scale (mean combined "
              "cost, ms; %zu Class C line trials)\n", kTrials);
  std::printf("%-10s", "bus");
  const double kScales[] = {0.25, 0.5, 1.0, 2.0, 4.0};
  for (double s : kScales) std::printf(" %11.2fx", s);
  std::printf("\n");
  for (double bus : {paperconst::kBus1Mbps, paperconst::kBus100Mbps}) {
    std::printf("%-10s", wsflow::bench::BusLabel(bus).c_str());
    for (double scale : kScales) {
      SummaryStats stats = MeanCombined(
          [scale] { return HeavyOpsAlgorithm(scale); }, WorkloadKind::kLine,
          bus);
      std::printf(" %12.3f", stats.mean() * 1e3);
    }
    std::printf("\n");
  }
  std::printf("(1.0x is the paper's rule; the minimum of each row shows how "
              "sensitive the decision threshold is)\n");
}

void AblationLocalSearchHeadroom() {
  std::printf("\nA3: local-search headroom on top of each heuristic "
              "(mean %% combined-cost reduction; %zu Class C line trials, "
              "10 Mbps bus)\n", kTrials);
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  cfg.fixed_bus_speed_bps = paperconst::kBus10Mbps;
  cfg.trials = kTrials;
  for (const std::string& name : PaperBusAlgorithms()) {
    SummaryStats reduction;
    for (size_t trial = 0; trial < cfg.trials; ++trial) {
      Result<TrialInstance> t = DrawTrial(cfg, trial);
      if (!t.ok()) continue;
      CostModel model(t->workflow, t->network);
      DeployContext ctx;
      ctx.workflow = &t->workflow;
      ctx.network = &t->network;
      ctx.seed = trial;
      Result<Mapping> start = RunAlgorithm(name, ctx);
      if (!start.ok()) continue;
      LocalSearchStats stats;
      Result<Mapping> end = HillClimb(model, *start, {}, {}, &stats);
      if (!end.ok() || stats.initial_cost <= 0) continue;
      reduction.Add(100.0 * (stats.initial_cost - stats.final_cost) /
                    stats.initial_cost);
    }
    std::printf("  %-12s %6.2f%% mean, %6.2f%% worst-trial max\n",
                name.c_str(), reduction.mean(), reduction.max());
  }
}

void AblationLineLine() {
  std::printf("\nA4: Line-Line variants (mean combined cost, ms; %zu Class C"
              " line trials, descending-speed line network)\n", kTrials);
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  cfg.trials = kTrials;
  const std::vector<double> kSpeeds{1e9, 100e6, 10e6, 1e6};
  struct Variant {
    const char* label;
    LineLineOptions options;
  };
  Variant variants[4];
  variants[0] = {"fix+fwd", {}};
  variants[1].label = "nofix+fwd";
  variants[1].options.fix_bridges = false;
  variants[2].label = "fix+bidir";
  variants[2].options.both_directions = true;
  variants[3].label = "nofix+bidir";
  variants[3].options.fix_bridges = false;
  variants[3].options.both_directions = true;

  for (const Variant& v : variants) {
    SummaryStats stats;
    for (size_t trial = 0; trial < cfg.trials; ++trial) {
      Result<TrialInstance> t = DrawTrial(cfg, trial);
      if (!t.ok()) continue;
      std::vector<double> powers;
      for (const Server& s : t->network.servers()) {
        powers.push_back(s.power_hz());
      }
      Result<Network> line = MakeLineNetwork(powers, kSpeeds);
      if (!line.ok()) continue;
      CostModel model(t->workflow, *line);
      DeployContext ctx;
      ctx.workflow = &t->workflow;
      ctx.network = &*line;
      LineLineAlgorithm algo(v.options);
      Result<Mapping> m = algo.Run(ctx);
      if (!m.ok()) continue;
      Result<CostBreakdown> cost = model.Evaluate(*m);
      if (cost.ok()) stats.Add(cost->combined);
    }
    std::printf("  %-12s %10.3f ms\n", v.label, stats.mean() * 1e3);
  }
}

}  // namespace

int main() {
  wsflow::RegisterBuiltinAlgorithms();
  wsflow::bench::PrintBanner("ABL", "design-choice ablations");
  AblationRandomInit();
  AblationHolmThreshold();
  AblationLocalSearchHeadroom();
  AblationLineLine();
  return 0;
}
