// wsflow: shared helpers for the paper-reproduction bench binaries.
//
// Each bench regenerates one table or figure of the paper. Output goes to
// stdout as fixed-width tables; the raw per-trial scatter data additionally
// lands as CSV under ./bench_results/ for external plotting.

#ifndef WSFLOW_BENCH_BENCH_UTIL_H_
#define WSFLOW_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/string_util.h"
#include "src/exp/report.h"
#include "src/exp/runner.h"

namespace wsflow::bench {

inline void PrintBanner(const std::string& id, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("==============================================================\n");
}

/// Writes the per-trial scatter points of `result` to
/// bench_results/<file>.csv; failures are reported but non-fatal.
inline void DumpScatterCsv(const ExperimentResult& result,
                           const std::string& file) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (ec) {
    std::fprintf(stderr, "note: cannot create bench_results/: %s\n",
                 ec.message().c_str());
    return;
  }
  std::string path = "bench_results/" + file + ".csv";
  Status st = WriteCsv(path,
                       {"algorithm", "trial", "execution_time_s",
                        "time_penalty_s"},
                       ScatterRows(result));
  if (!st.ok()) {
    std::fprintf(stderr, "note: %s\n", st.ToString().c_str());
  } else {
    std::printf("(scatter data -> %s)\n", path.c_str());
  }
}

/// Prints one figure panel: the per-algorithm mean (T_execute, TimePenalty)
/// markers, like the paper's scatter plots, plus spreads.
inline void PrintPanel(const std::string& title,
                       const ExperimentResult& result) {
  std::printf("\n--- %s ---\n", title.c_str());
  std::cout << SummaryTable(result).ToString();
}

/// Label helper: "bus=10Mbps".
inline std::string BusLabel(double bus_bps) {
  return "bus=" + FormatDouble(bus_bps / 1e6, 6) + "Mbps";
}

}  // namespace wsflow::bench

#endif  // WSFLOW_BENCH_BENCH_UTIL_H_
