// Exact-solver bench: nodes expanded and wall-clock for the A* solver
// (src/deploy/astar.h) against depth-first branch-and-bound and the
// exhaustive odometer, over the paper's Class A/B/C line matrix (M=19,
// N=5, bus 1/10/100 Mbps) and multi-hop fat-tree / hierarchical
// topologies. Three sections:
//
//   matrix    — per class x bus speed: A* (exact, 10M-generated-node
//               budget) vs branch-and-bound (50M-node budget). Cells where
//               branch-and-bound exhausts its budget while A* certifies an
//               optimum in thousands of nodes are the headline: dominance
//               merging collapses Class A's permutation blow-up, and
//               best-first order stops at the first goal.
//   topology  — the same comparison on a 2x2x3 fat tree and a 2x2x2
//               hierarchy (multi-hop weighted routes, no bus symmetry
//               breaking). The hard Class C hierarchy cell runs the
//               anytime mode with a reduced budget to show graceful
//               degradation (returns the incumbent, proven=false).
//   odometer  — small instances where plain enumeration is feasible:
//               configurations visited by the odometer vs nodes generated
//               by the exact searches, with agreeing optima.
//
// Results land in bench_results/exact_solver.json. CI guard:
// --assert-min-ratio R runs only the Class A 10 Mbps matrix cell and fails
// unless branch-bound explores at least R times more nodes than A*
// generates (node counts are deterministic, so the guard is immune to
// sanitizer slowdowns).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/cost/cost_model.h"
#include "src/deploy/astar.h"
#include "src/deploy/branch_bound.h"
#include "src/deploy/exhaustive.h"
#include "src/exp/config.h"

namespace wsflow {
namespace {

constexpr size_t kBranchBoundBudget = 50'000'000;
constexpr size_t kAStarBudget = 10'000'000;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct SolverResult {
  bool solved = false;
  bool proven = false;
  size_t nodes = 0;  ///< bb: explored; astar: generated.
  double seconds = 0;
  double cost = 0;  ///< Evaluated combined cost; 0 when unsolved.
  AStarStats stats;
};

struct Cell {
  std::string name;
  std::string klass;
  std::string topology;
  size_t num_operations = 0;
  size_t num_servers = 0;
  double bus_mbps = 0;  ///< 0 for non-bus topologies.
  SolverResult astar;
  SolverResult bb;
  double node_ratio = 0;  ///< bb nodes / astar generated.
};

double EvaluatedCost(const TrialInstance& t, const Mapping& m) {
  const ExecutionProfile* profile =
      t.profile.has_value() ? &*t.profile : nullptr;
  CostModel model(t.workflow, t.network, profile);
  Result<CostBreakdown> cost = model.Evaluate(m, CostOptions{});
  WSFLOW_CHECK(cost.ok()) << cost.status().ToString();
  return cost->combined;
}

SolverResult RunAStar(const TrialInstance& t, bool anytime,
                      size_t max_nodes = kAStarBudget) {
  DeployContext ctx;
  ctx.workflow = &t.workflow;
  ctx.network = &t.network;
  ctx.profile = t.profile.has_value() ? &*t.profile : nullptr;
  AStarOptions options;
  options.anytime = anytime;
  options.max_nodes = max_nodes;
  AStarAlgorithm astar(options);
  SolverResult out;
  auto start = std::chrono::steady_clock::now();
  Result<Mapping> m = astar.RunWithStats(ctx, &out.stats);
  out.seconds = Seconds(start);
  out.nodes = out.stats.generated;
  out.solved = m.ok();
  out.proven = out.stats.proven_optimal;
  if (m.ok()) out.cost = EvaluatedCost(t, *m);
  return out;
}

SolverResult RunBranchBound(const TrialInstance& t) {
  DeployContext ctx;
  ctx.workflow = &t.workflow;
  ctx.network = &t.network;
  ctx.profile = t.profile.has_value() ? &*t.profile : nullptr;
  BranchBoundAlgorithm bb(kBranchBoundBudget);
  SolverResult out;
  auto start = std::chrono::steady_clock::now();
  Result<Mapping> m = bb.Run(ctx);
  out.seconds = Seconds(start);
  out.nodes = bb.last_nodes();
  out.solved = m.ok();
  out.proven = m.ok();
  if (m.ok()) out.cost = EvaluatedCost(t, *m);
  return out;
}

void PrintCell(const Cell& c) {
  std::printf(
      "%-22s bb=%9zu (%7.3fs,%s) astar=%8zu (%7.3fs,%s%s) ratio=%8.1f\n",
      c.name.c_str(), c.bb.nodes, c.bb.seconds,
      c.bb.solved ? "ok" : "budget", c.astar.nodes, c.astar.seconds,
      c.astar.solved ? "ok" : "budget",
      c.astar.solved && !c.astar.proven ? ",anytime" : "", c.node_ratio);
  std::fflush(stdout);
}

Cell RunCell(const std::string& name, const std::string& klass,
             const std::string& topology, const TrialInstance& t,
             double bus_mbps, bool astar_anytime = false,
             size_t astar_budget = kAStarBudget) {
  Cell c;
  c.name = name;
  c.klass = klass;
  c.topology = topology;
  c.num_operations = t.workflow.num_operations();
  c.num_servers = t.network.num_servers();
  c.bus_mbps = bus_mbps;
  c.astar = RunAStar(t, astar_anytime, astar_budget);
  c.bb = RunBranchBound(t);
  c.node_ratio = c.astar.nodes == 0
                     ? 0
                     : static_cast<double>(c.bb.nodes) /
                           static_cast<double>(c.astar.nodes);
  // Both certified: the optima must agree (ulp-level tolerance).
  if (c.astar.proven && c.bb.solved) {
    WSFLOW_CHECK(std::abs(c.astar.cost - c.bb.cost) <=
                 c.bb.cost * 1e-9 + 1e-15)
        << name << ": astar " << c.astar.cost << " vs bb " << c.bb.cost;
  }
  PrintCell(c);
  return c;
}

TrialInstance MustDraw(const ExperimentConfig& cfg) {
  Result<TrialInstance> t = DrawTrial(cfg, 0);
  WSFLOW_CHECK(t.ok()) << t.status().ToString();
  return std::move(*t);
}

TrialInstance DrawLineBus(ExperimentConfig (*maker)(WorkloadKind),
                          double bus_bps) {
  ExperimentConfig cfg = maker(WorkloadKind::kLine);
  cfg.fixed_bus_speed_bps = bus_bps;
  return MustDraw(cfg);
}

void WriteSolver(std::FILE* f, const char* key, const SolverResult& r,
                 bool is_astar) {
  std::fprintf(f,
               "\"%s\": {\"solved\": %s, \"proven_optimal\": %s, "
               "\"nodes\": %zu, \"seconds\": %.4f, \"cost\": %.6g",
               key, r.solved ? "true" : "false", r.proven ? "true" : "false",
               r.nodes, r.seconds, r.cost);
  if (is_astar) {
    std::fprintf(f,
                 ", \"expanded\": %zu, \"pruned_bound\": %zu, "
                 "\"pruned_dominance\": %zu, \"tt_hits\": %zu",
                 r.stats.expanded, r.stats.pruned_bound,
                 r.stats.pruned_dominance, r.stats.tt_hits);
  }
  std::fprintf(f, "}");
}

void WriteCells(std::FILE* f, const char* section,
                const std::vector<Cell>& cells, bool trailing_comma) {
  std::fprintf(f, "  \"%s\": [\n", section);
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"class\": \"%s\", "
                 "\"topology\": \"%s\", \"num_operations\": %zu, "
                 "\"num_servers\": %zu, \"bus_mbps\": %.0f, ",
                 c.name.c_str(), c.klass.c_str(), c.topology.c_str(),
                 c.num_operations, c.num_servers, c.bus_mbps);
    WriteSolver(f, "astar", c.astar, /*is_astar=*/true);
    std::fprintf(f, ", ");
    WriteSolver(f, "branch_bound", c.bb, /*is_astar=*/false);
    std::fprintf(f, ", \"node_ratio\": %.1f}%s\n", c.node_ratio,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]%s\n", trailing_comma ? "," : "");
}

struct OdometerCell {
  std::string name;
  size_t num_operations = 0;
  size_t num_servers = 0;
  double configurations = 0;
  double exhaustive_seconds = 0;
  double cost = 0;
  SolverResult astar;
  SolverResult bb;  ///< Line instances only; unsolved otherwise.
};

OdometerCell RunOdometer(const std::string& name, const TrialInstance& t,
                         bool line) {
  DeployContext ctx;
  ctx.workflow = &t.workflow;
  ctx.network = &t.network;
  ctx.profile = t.profile.has_value() ? &*t.profile : nullptr;
  OdometerCell c;
  c.name = name;
  c.num_operations = t.workflow.num_operations();
  c.num_servers = t.network.num_servers();
  c.configurations = std::pow(static_cast<double>(c.num_servers),
                              static_cast<double>(c.num_operations));
  auto start = std::chrono::steady_clock::now();
  Result<Mapping> m = ExhaustiveAlgorithm(5e7).Run(ctx);
  c.exhaustive_seconds = Seconds(start);
  WSFLOW_CHECK(m.ok()) << m.status().ToString();
  c.cost = EvaluatedCost(t, *m);
  c.astar = RunAStar(t, /*anytime=*/false);
  if (line) c.bb = RunBranchBound(t);
  WSFLOW_CHECK(std::abs(c.astar.cost - c.cost) <= c.cost * 1e-9 + 1e-15)
      << name << ": astar " << c.astar.cost << " vs odometer " << c.cost;
  std::printf("%-22s odometer=%.3g cfgs (%7.3fs) astar=%8zu (%7.3fs) "
              "bb=%9zu\n",
              c.name.c_str(), c.configurations, c.exhaustive_seconds,
              c.astar.nodes, c.astar.seconds, c.bb.nodes);
  std::fflush(stdout);
  return c;
}

void WriteJson(const std::vector<Cell>& matrix,
               const std::vector<Cell>& topology,
               const std::vector<OdometerCell>& odometer) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (ec) {
    std::fprintf(stderr, "note: cannot create bench_results/: %s\n",
                 ec.message().c_str());
    return;
  }
  const char* path = "bench_results/exact_solver.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "note: cannot write %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"exact_solver\",\n"
               "  \"branch_bound_node_budget\": %zu,\n"
               "  \"astar_node_budget\": %zu,\n",
               kBranchBoundBudget, kAStarBudget);
  WriteCells(f, "matrix", matrix, /*trailing_comma=*/true);
  WriteCells(f, "topology", topology, /*trailing_comma=*/true);
  std::fprintf(f, "  \"odometer\": [\n");
  for (size_t i = 0; i < odometer.size(); ++i) {
    const OdometerCell& c = odometer[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"num_operations\": %zu, "
                 "\"num_servers\": %zu, \"configurations\": %.6g, "
                 "\"exhaustive_seconds\": %.4f, \"cost\": %.6g, ",
                 c.name.c_str(), c.num_operations, c.num_servers,
                 c.configurations, c.exhaustive_seconds, c.cost);
    WriteSolver(f, "astar", c.astar, /*is_astar=*/true);
    std::fprintf(f, ", ");
    WriteSolver(f, "branch_bound", c.bb, /*is_astar=*/false);
    std::fprintf(f, "}%s\n", i + 1 < odometer.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("(json -> %s)\n", path);
}

}  // namespace
}  // namespace wsflow

int main(int argc, char** argv) {
  using namespace wsflow;

  double assert_min_ratio = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--assert-min-ratio" && i + 1 < argc) {
      assert_min_ratio = std::atof(argv[++i]);
      if (assert_min_ratio <= 0) {
        std::fprintf(stderr, "--assert-min-ratio needs a positive number\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--assert-min-ratio R]\n", argv[0]);
      return 2;
    }
  }
  if (assert_min_ratio > 0) {
    // One fast deterministic cell: Class A line, M=19, N=5, 10 Mbps bus.
    TrialInstance t = DrawLineBus(&MakeClassAConfig, paperconst::kBus10Mbps);
    Cell guard = RunCell("guard_a_m19_n5_10mbps", "A", "bus", t, 10);
    WSFLOW_CHECK(guard.astar.proven);
    if (guard.node_ratio < assert_min_ratio) {
      std::fprintf(stderr, "FAIL: bb/astar node ratio %.2f < required %.2f\n",
                   guard.node_ratio, assert_min_ratio);
      return 1;
    }
    std::printf("PASS: bb/astar node ratio %.2f >= %.2f\n", guard.node_ratio,
                assert_min_ratio);
    return 0;
  }

  bench::PrintBanner(
      "EXACT",
      "A* over prefix assignments vs depth-first branch-and-bound vs the "
      "exhaustive odometer; nodes and wall-clock, certified optima");

  std::printf("matrix: line M=19 N=5, Class x bus speed (bb budget 50M, "
              "astar budget 10M)\n");
  std::vector<Cell> matrix;
  struct ClassDef {
    const char* name;
    ExperimentConfig (*maker)(WorkloadKind);
  };
  const ClassDef classes[] = {{"A", &MakeClassAConfig},
                              {"B", &MakeClassBConfig},
                              {"C", &MakeClassCConfig}};
  const double busses[] = {paperconst::kBus1Mbps, paperconst::kBus10Mbps,
                           paperconst::kBus100Mbps};
  for (const ClassDef& k : classes) {
    for (double bus : busses) {
      TrialInstance t = DrawLineBus(k.maker, bus);
      const double mbps = bus / 1e6;
      matrix.push_back(RunCell(std::string("class_") + k.name + "_" +
                                   std::to_string(static_cast<int>(mbps)) +
                                   "mbps",
                               k.name, "bus", t, mbps));
    }
  }

  std::printf("\ntopology: multi-hop fat-tree / hierarchy (no bus "
              "symmetry)\n");
  std::vector<Cell> topology;
  {
    ExperimentConfig cfg = MakeClassAConfig(WorkloadKind::kLine);
    cfg.topology = ExperimentTopology::kFatTree;
    cfg.fat_tree.spines = 2;
    cfg.fat_tree.racks = 2;
    cfg.fat_tree.rack_size = 3;
    TrialInstance t = MustDraw(cfg);
    topology.push_back(
        RunCell("class_a_fattree_2x2x3", "A", "fat-tree", t, 0));
  }
  {
    // The hard cell: Class C over a hierarchy defeats both exact budgets,
    // so A* runs in anytime mode with a reduced budget and returns the
    // certified-or-incumbent result instead of failing.
    ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
    cfg.topology = ExperimentTopology::kHierarchical;
    cfg.hierarchical.regions = 2;
    cfg.hierarchical.clusters_per_region = 2;
    cfg.hierarchical.cluster_size = 2;
    TrialInstance t = MustDraw(cfg);
    topology.push_back(RunCell("class_c_hier_2x2x2_anytime", "C",
                               "hierarchical", t, 0, /*astar_anytime=*/true,
                               /*astar_budget=*/2'000'000));
  }

  std::printf("\nodometer: enumeration-feasible instances, agreeing "
              "optima\n");
  std::vector<OdometerCell> odometer;
  {
    ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
    cfg.num_operations = 10;
    cfg.num_servers = 4;
    TrialInstance t = MustDraw(cfg);
    odometer.push_back(RunOdometer("line_m10_n4", t, /*line=*/true));
  }
  {
    ExperimentConfig cfg = MakeClassBConfig(WorkloadKind::kBushyGraph);
    cfg.num_operations = 9;
    cfg.num_servers = 3;
    TrialInstance t = MustDraw(cfg);
    odometer.push_back(RunOdometer("bushy_m9_n3", t, /*line=*/false));
  }

  WriteJson(matrix, topology, odometer);
  return 0;
}
