// Reproduces Fig. 8 of the paper: Graph-Bus results organized per graph
// structure — bushy (50% decision nodes), lengthy (16%) and hybrid (35%) —
// at the two bus speeds the paper highlights in its quality discussion
// (1 Mbps and 100 Mbps).

#include "bench/bench_util.h"
#include "src/exp/config.h"

int main() {
  using namespace wsflow;
  bench::PrintBanner("FIG8",
                     "Graph-Bus per structure: bushy 50/50, lengthy 16/84, "
                     "hybrid 35/65 decision/operational; M=19, N=5, 50 "
                     "trials");

  const WorkloadKind kShapes[] = {WorkloadKind::kBushyGraph,
                                  WorkloadKind::kLengthyGraph,
                                  WorkloadKind::kHybridGraph};
  const double kBuses[] = {paperconst::kBus1Mbps, paperconst::kBus100Mbps};

  for (WorkloadKind shape : kShapes) {
    for (double bus : kBuses) {
      ExperimentConfig cfg = MakeClassCConfig(shape);
      cfg.fixed_bus_speed_bps = bus;
      cfg.name = std::string("fig8-") +
                 std::string(WorkloadKindToString(shape)) + "-" +
                 bench::BusLabel(bus);
      Result<ExperimentResult> result =
          RunExperiment(cfg, PaperBusAlgorithms());
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      bench::PrintPanel(std::string(WorkloadKindToString(shape)) + ", " +
                            bench::BusLabel(bus),
                        *result);
      bench::DumpScatterCsv(*result, cfg.name);
    }
  }
  return 0;
}
