// Model-fidelity study (extension): the paper evaluates analytically, with
// no server or bus contention. This bench (a) validates the analytic
// T_execute against the discrete-event simulator across random instances —
// exact agreement expected on deterministic workflows, Monte-Carlo
// agreement on XOR graphs — and (b) quantifies how much the paper's
// no-contention assumption flatters each algorithm by re-simulating with
// serialized servers and bus.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/cost/cost_model.h"
#include "src/deploy/algorithm.h"
#include "src/exp/config.h"
#include "src/sim/simulator.h"

namespace {

using namespace wsflow;

void ValidateAnalyticModel() {
  std::printf("\nB1: analytic T_execute vs simulator, 30 random instances "
              "per workload\n");
  for (WorkloadKind kind :
       {WorkloadKind::kLine, WorkloadKind::kBushyGraph,
        WorkloadKind::kLengthyGraph, WorkloadKind::kHybridGraph}) {
    SummaryStats rel_err;
    ExperimentConfig cfg = MakeClassCConfig(kind);
    for (size_t trial = 0; trial < 30; ++trial) {
      Result<TrialInstance> t = DrawTrial(cfg, trial);
      WSFLOW_CHECK(t.ok());
      const ExecutionProfile* profile = t->profile ? &*t->profile : nullptr;
      CostModel model(t->workflow, t->network, profile);
      DeployContext ctx;
      ctx.workflow = &t->workflow;
      ctx.network = &t->network;
      ctx.profile = profile;
      ctx.seed = trial;
      Result<Mapping> m = RunAlgorithm("heavy-ops", ctx);
      WSFLOW_CHECK(m.ok());
      double analytic = model.ExecutionTime(*m).value();
      SimOptions options;
      options.num_runs = t->workflow.IsLine() ? 1 : 2000;
      options.seed = trial;
      Result<SimResult> sim =
          SimulateWorkflow(t->workflow, t->network, *m, options);
      WSFLOW_CHECK(sim.ok());
      rel_err.Add(std::fabs(sim->mean_makespan - analytic) / analytic);
    }
    std::printf("  %-8s relative |sim - analytic| / analytic: mean %.4f%%, "
                "max %.4f%%\n",
                std::string(WorkloadKindToString(kind)).c_str(),
                rel_err.mean() * 100, rel_err.max() * 100);
  }
}

void ContentionSensitivity() {
  std::printf("\nB2: makespan inflation under contention (mean over 30 "
              "hybrid-graph instances, 10 Mbps bus)\n");
  std::printf("%-12s %16s %16s %16s\n", "algorithm", "no contention",
              "+server", "+server+bus");
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kHybridGraph);
  cfg.fixed_bus_speed_bps = paperconst::kBus10Mbps;
  for (const std::string& name : PaperBusAlgorithms()) {
    SummaryStats base, server, both;
    for (size_t trial = 0; trial < 30; ++trial) {
      Result<TrialInstance> t = DrawTrial(cfg, trial);
      WSFLOW_CHECK(t.ok());
      const ExecutionProfile* profile = t->profile ? &*t->profile : nullptr;
      DeployContext ctx;
      ctx.workflow = &t->workflow;
      ctx.network = &t->network;
      ctx.profile = profile;
      ctx.seed = trial;
      Result<Mapping> m = RunAlgorithm(name, ctx);
      if (!m.ok()) continue;
      SimOptions options;
      options.num_runs = 300;
      options.seed = trial;
      Result<SimResult> free =
          SimulateWorkflow(t->workflow, t->network, *m, options);
      options.server_contention = true;
      Result<SimResult> with_server =
          SimulateWorkflow(t->workflow, t->network, *m, options);
      options.bus_contention = true;
      Result<SimResult> with_both =
          SimulateWorkflow(t->workflow, t->network, *m, options);
      if (!free.ok() || !with_server.ok() || !with_both.ok()) continue;
      base.Add(free->mean_makespan);
      server.Add(with_server->mean_makespan);
      both.Add(with_both->mean_makespan);
    }
    std::printf("%-12s %13.3f ms %13.3f ms %13.3f ms\n", name.c_str(),
                base.mean() * 1e3, server.mean() * 1e3, both.mean() * 1e3);
  }
  std::printf("(the gap between columns is workload the paper's analytic "
              "model does not charge for)\n");
}

}  // namespace

int main() {
  RegisterBuiltinAlgorithms();
  bench::PrintBanner("SIMVAL", "analytic-model validation and contention "
                               "sensitivity");
  ValidateAnalyticModel();
  ContentionSensitivity();
  return 0;
}
