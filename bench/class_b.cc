// Class B experiments (paper §4.1): vary the CPU power of the servers and
// the workload (operation cycle costs) while pinning the network side
// (medium messages, 100 Mbps bus). The paper describes this class but
// reports only Class C; this bench fills in the sweep.
//
// Expected shape: heavier operations and more heterogeneous servers raise
// the stakes of load balance; the Fair Load family keeps the penalty near
// zero while execution times scale with the cycle budget.

#include "bench/bench_util.h"
#include "src/exp/config.h"

int main() {
  using namespace wsflow;
  bench::PrintBanner("CLS-B",
                     "Class B: vary CPU power x operation cost; network "
                     "pinned (M=19, N=5, 100 Mbps bus, 30 trials per cell)");

  struct Mix {
    const char* label;
    DiscreteDistribution dist;
  };
  const Mix kPowers[] = {
      {"uniform-2GHz", DiscreteDistribution::Constant(paperconst::kPower2GHz)},
      {"table6-power",
       DiscreteDistribution::Make({{paperconst::kPower1GHz, 0.25},
                                   {paperconst::kPower2GHz, 0.50},
                                   {paperconst::kPower3GHz, 0.25}})
           .value()},
      {"extreme-1-3GHz",
       DiscreteDistribution::Make(
           {{paperconst::kPower1GHz, 0.5}, {paperconst::kPower3GHz, 0.5}})
           .value()},
  };
  const Mix kCycles[] = {
      {"simple-ops",
       DiscreteDistribution::Constant(paperconst::kSimpleOperationCycles)},
      {"table6-cycles",
       DiscreteDistribution::Make({{paperconst::kClassCOpCyclesLow, 0.25},
                                   {paperconst::kClassCOpCyclesMid, 0.50},
                                   {paperconst::kClassCOpCyclesHigh, 0.25}})
           .value()},
      {"heavy-ops-500M",
       DiscreteDistribution::Make(
           {{paperconst::kMediumOperationCycles, 0.5},
            {paperconst::kHeavyOperationCycles, 0.5}})
           .value()},
  };

  for (const Mix& power : kPowers) {
    for (const Mix& cycles : kCycles) {
      ExperimentConfig cfg = MakeClassBConfig(WorkloadKind::kLine);
      cfg.server_power = power.dist;
      cfg.operation_cycles = cycles.dist;
      cfg.trials = 30;
      cfg.name = std::string("class-b-") + power.label + "-" + cycles.label;
      Result<ExperimentResult> result =
          RunExperiment(cfg, PaperBusAlgorithms());
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      bench::PrintPanel(std::string(power.label) + " x " + cycles.label,
                        *result);
    }
  }
  return 0;
}
