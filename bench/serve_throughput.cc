// Throughput and latency of the concurrent deployment service (src/serve).
//
// Phase A — scaling: a fresh service per worker-thread count answers the
// same cold-heavy request stream; wall time and requests/sec show how the
// worker pool parallelizes the algorithm runs.
//
// Phase B — cache economics: one warm service answers a repeat-heavy
// stream; the metrics registry separates hit latency from cold (miss)
// latency, and the ratio quantifies what the result cache buys.

#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <string>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/deploy/algorithm.h"
#include "src/exp/config.h"
#include "src/serve/fingerprint.h"
#include "src/serve/service.h"

namespace {

using namespace wsflow;
using namespace wsflow::serve;

struct Instance {
  std::shared_ptr<const Workflow> workflow;
  std::shared_ptr<const Network> network;
  std::shared_ptr<const ExecutionProfile> profile;
  uint64_t workflow_digest = 0;
  uint64_t network_digest = 0;
};

/// Draws `n` distinct Class C hybrid-graph trials and digests each once,
/// the way a front-end would digest a request body on arrival.
std::vector<Instance> MakePool(size_t n, uint64_t seed, size_t ops = 19,
                               size_t servers = 5) {
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kHybridGraph);
  cfg.num_operations = ops;
  cfg.num_servers = servers;
  cfg.seed = seed;
  std::vector<Instance> pool;
  pool.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    TrialInstance t = DrawTrial(cfg, i).value();
    Instance inst;
    inst.workflow = std::make_shared<const Workflow>(std::move(t.workflow));
    inst.network = std::make_shared<const Network>(std::move(t.network));
    if (t.profile) {
      inst.profile =
          std::make_shared<const ExecutionProfile>(std::move(*t.profile));
    }
    inst.workflow_digest = WorkflowDigest(*inst.workflow);
    inst.network_digest = NetworkDigest(*inst.network);
    pool.push_back(std::move(inst));
  }
  return pool;
}

DeployRequest MakeRequest(const Instance& inst,
                          const std::string& algorithm) {
  DeployRequest req;
  req.workflow = inst.workflow;
  req.network = inst.network;
  req.profile = inst.profile;
  req.algorithm = algorithm;
  req.workflow_digest = inst.workflow_digest;
  req.network_digest = inst.network_digest;
  return req;
}

/// A deployment backend with a fixed 2ms service time: stands in for the
/// I/O-bound backends (remote solvers, planner RPCs) a deployment service
/// fronts in production. Wall-clock scaling across worker counts is then a
/// property of the service's concurrency, not of how many cores this
/// machine happens to have.
class SimulatedBackendAlgorithm : public DeploymentAlgorithm {
 public:
  static constexpr std::chrono::milliseconds kServiceTime{2};

  std::string_view name() const override { return "sim-backend"; }

  Result<Mapping> Run(const DeployContext& ctx) const override {
    std::this_thread::sleep_for(kServiceTime);
    return RunAlgorithm("fair-load", ctx);
  }
};

/// Submits one request per index in `stream`, retrying on backpressure,
/// and blocks until every response arrives. Returns the wall time.
double DriveStream(DeploymentService& service,
                   const std::vector<Instance>& pool,
                   const std::vector<size_t>& stream,
                   const std::string& algorithm) {
  auto start = std::chrono::steady_clock::now();
  std::vector<std::future<DeployResponse>> futures;
  futures.reserve(stream.size());
  for (size_t which : stream) {
    for (;;) {
      Result<std::future<DeployResponse>> f =
          service.Submit(MakeRequest(pool[which], algorithm));
      if (f.ok()) {
        futures.push_back(std::move(*f));
        break;
      }
      std::this_thread::yield();  // queue full: backpressure
    }
  }
  for (auto& f : futures) {
    DeployResponse resp = f.get();
    if (!resp.status.ok()) {
      std::fprintf(stderr, "request failed: %s\n",
                   resp.status.ToString().c_str());
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void PhaseScaling() {
  std::printf("\n--- Phase A: worker scaling (all-cold, 2ms simulated "
              "backend) ---\n");
  // Every request is a distinct instance (no cache hits) against the
  // sim-backend algorithm, so wall time measures how many 2ms service
  // times the worker pool keeps in flight concurrently.
  constexpr size_t kRequests = 96;
  std::vector<Instance> pool = MakePool(kRequests, /*seed=*/7);

  std::vector<size_t> stream;
  stream.reserve(kRequests);
  for (size_t i = 0; i < kRequests; ++i) stream.push_back(i);

  std::printf("%8s %10s %12s %10s\n", "threads", "wall_s", "req/s",
              "speedup");
  double single_rps = 0.0;
  for (size_t threads : {1, 2, 4}) {
    ServiceOptions options;
    options.num_threads = threads;
    options.queue_capacity = 256;
    options.cache_capacity = 1024;
    DeploymentService service(options);
    if (!service.Start().ok()) continue;
    double wall = DriveStream(service, pool, stream, "sim-backend");
    service.Stop();
    double rps = static_cast<double>(kRequests) / wall;
    if (threads == 1) single_rps = rps;
    std::printf("%8zu %10.3f %12.1f %9.2fx\n", threads, wall, rps,
                single_rps > 0.0 ? rps / single_rps : 0.0);
  }
}

void PrintLatencyLine(const char* label, const LatencySummary& lat) {
  std::printf("%10s  n=%-6zu mean=%.1fus  p50=%.1fus  p95=%.1fus  "
              "p99=%.1fus  max=%.1fus\n",
              label, lat.count, lat.mean * 1e6, lat.p50 * 1e6, lat.p95 * 1e6,
              lat.p99 * 1e6, lat.max * 1e6);
}

void PhaseCache() {
  std::printf("\n--- Phase B: cache hit vs cold latency (4 workers) ---\n");
  constexpr size_t kUnique = 16;
  constexpr size_t kRepeats = 2000;
  std::vector<Instance> pool = MakePool(kUnique, /*seed=*/11);

  ServiceOptions options;
  options.num_threads = 4;
  options.queue_capacity = 256;
  options.cache_capacity = 1024;
  DeploymentService service(options);
  if (!service.Start().ok()) {
    std::fprintf(stderr, "cannot start service\n");
    return;
  }

  // Warm pass: every instance exactly once — these are the cold samples.
  std::vector<size_t> warm;
  for (size_t i = 0; i < kUnique; ++i) warm.push_back(i);
  DriveStream(service, pool, warm, "portfolio");

  // Hot pass: uniform repeats, all hits.
  std::vector<size_t> hot;
  hot.reserve(kRepeats);
  Rng rng(0xcafeull);
  for (size_t i = 0; i < kRepeats; ++i) {
    hot.push_back(static_cast<size_t>(rng.NextBounded(kUnique)));
  }
  double hot_wall = DriveStream(service, pool, hot, "portfolio");
  service.Stop();

  MetricsSnapshot snap = service.metrics().Snapshot();
  PrintLatencyLine("cold", snap.miss_latency);
  PrintLatencyLine("hit", snap.hit_latency);
  PrintLatencyLine("queue", snap.queue_wait);
  std::printf("hot pass: %zu requests in %.3fs = %.0f req/s, "
              "hit rate %.1f%%\n",
              kRepeats, hot_wall, static_cast<double>(kRepeats) / hot_wall,
              100.0 * snap.HitRate());
  if (snap.hit_latency.mean > 0.0) {
    std::printf("cold/hit mean service-time ratio: %.1fx\n",
                snap.miss_latency.mean / snap.hit_latency.mean);
  }
  std::printf("\n%s", snap.ToString().c_str());
}

}  // namespace

int main() {
  bench::PrintBanner("SERVE",
                     "Deployment service: worker scaling and result-cache "
                     "hit/cold latency (Class C hybrid graphs, portfolio)");
  RegisterBuiltinAlgorithms();
  Status st = AlgorithmRegistry::Global().Register(
      "sim-backend", [] { return std::make_unique<SimulatedBackendAlgorithm>(); });
  if (!st.ok()) {
    std::fprintf(stderr, "cannot register sim-backend: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  PhaseScaling();
  PhaseCache();
  return 0;
}
