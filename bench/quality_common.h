// Shared driver for the solution-quality experiments (paper §4.1-4.2):
// per trial, 32 000 sampled solutions bound the per-objective best; each
// algorithm's deviation from those bests is tracked and the worst case over
// all trials is reported — the exact form the paper quotes, e.g.
// HeavyOps-LargeMsgs at (2.9%, 12%) exec/penalty on a 1 Mbps Line-Bus.

#ifndef WSFLOW_BENCH_QUALITY_COMMON_H_
#define WSFLOW_BENCH_QUALITY_COMMON_H_

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cost/cost_model.h"
#include "src/deploy/algorithm.h"
#include "src/exp/config.h"
#include "src/exp/sampling.h"

namespace wsflow::bench {

inline int RunQualityStudy(WorkloadKind workload, size_t trials,
                           size_t samples) {
  for (double bus : {paperconst::kBus1Mbps, paperconst::kBus100Mbps}) {
    ExperimentConfig cfg = MakeClassCConfig(workload);
    cfg.fixed_bus_speed_bps = bus;
    cfg.trials = trials;

    std::map<std::string, QualityDeviation> records;
    for (size_t trial = 0; trial < cfg.trials; ++trial) {
      Result<TrialInstance> t = DrawTrial(cfg, trial);
      if (!t.ok()) {
        std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
        return 1;
      }
      const ExecutionProfile* profile =
          t->profile ? &*t->profile : nullptr;
      CostModel model(t->workflow, t->network, profile);
      SamplingOptions soptions;
      soptions.samples = samples;
      soptions.seed = 1000 + trial;
      Result<SampleBest> best = SampleSolutionSpace(model, soptions);
      if (!best.ok()) {
        std::fprintf(stderr, "%s\n", best.status().ToString().c_str());
        return 1;
      }
      DeployContext ctx;
      ctx.workflow = &t->workflow;
      ctx.network = &t->network;
      ctx.profile = profile;
      ctx.seed = trial;
      for (const std::string& name : PaperBusAlgorithms()) {
        Result<Mapping> m = RunAlgorithm(name, ctx);
        if (!m.ok()) continue;
        Result<CostBreakdown> cost = model.Evaluate(*m);
        if (!cost.ok()) continue;
        AccumulateDeviation({cost->execution_time, cost->time_penalty},
                            *best, &records[name]);
      }
    }

    std::printf("\n--- %s: worst/mean %% deviation from the best of %zu "
                "sampled solutions over %zu trials ---\n",
                BusLabel(bus).c_str(), samples, trials);
    std::printf("%-12s %12s %12s %12s %12s\n", "algorithm", "worst exec%",
                "worst pen%", "mean exec%", "mean pen%");
    for (const std::string& name : PaperBusAlgorithms()) {
      const QualityDeviation& r = records[name];
      std::printf("%-12s %12.1f %12.1f %12.1f %12.1f\n", name.c_str(),
                  r.worst_execution_pct, r.worst_penalty_pct,
                  r.mean_execution_pct, r.mean_penalty_pct);
    }
  }
  return 0;
}

}  // namespace wsflow::bench

#endif  // WSFLOW_BENCH_QUALITY_COMMON_H_
