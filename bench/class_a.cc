// Class A experiments (paper §4.1): vary the link capacity and the size of
// the exchanged messages while pinning the compute side (CPU power and
// operation costs at the Table 6 midpoints). The paper describes this class
// but reports only Class C for space; this bench fills in the sweep.
//
// Expected shape: as messages grow or the bus slows, the message-aware
// algorithms (FL-Merge, HeavyOps) pull ahead on execution time; with tiny
// messages on a fast bus all algorithms converge to Fair Load's behaviour.

#include "bench/bench_util.h"
#include "src/exp/config.h"

int main() {
  using namespace wsflow;
  bench::PrintBanner("CLS-A",
                     "Class A: vary link capacity x message size; compute "
                     "pinned (M=19, N=5, 30 trials per cell)");

  struct MsgMix {
    const char* label;
    DiscreteDistribution dist;
  };
  const MsgMix kMixes[] = {
      {"simple-only",
       DiscreteDistribution::Constant(paperconst::kSimpleMessageBits)},
      {"table6-mix",
       DiscreteDistribution::Make({{paperconst::kSimpleMessageBits, 0.25},
                                   {paperconst::kMediumMessageBits, 0.50},
                                   {paperconst::kComplexMessageBits, 0.25}})
           .value()},
      {"complex-only",
       DiscreteDistribution::Constant(paperconst::kComplexMessageBits)},
  };

  for (const MsgMix& mix : kMixes) {
    for (double bus : PaperBusSweepBps()) {
      ExperimentConfig cfg = MakeClassAConfig(WorkloadKind::kLine);
      cfg.message_bits = mix.dist;
      cfg.fixed_bus_speed_bps = bus;
      cfg.trials = 30;
      cfg.name = std::string("class-a-") + mix.label + "-" +
                 bench::BusLabel(bus);
      Result<ExperimentResult> result =
          RunExperiment(cfg, PaperBusAlgorithms());
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      bench::PrintPanel(std::string(mix.label) + ", " + bench::BusLabel(bus),
                        *result);
    }
  }
  return 0;
}
