// Chaos replay bench: availability vs churn rate for the fault-aware
// simulator (src/sim/fault_sim.h). Two sections:
//
//   exemplar — the committed schedule (examples/data/chaos_schedule.txt)
//              replayed on the exemplar instance (8-op line round-robined
//              over a 4-server bus) under every loss policy. The
//              retry+re-dispatch row is the acceptance gate: 100%
//              completion at the default budget, measured degraded
//              makespan next to the analytic masked T_execute at peak
//              churn.
//   sweep    — generated schedules at increasing crash counts (0, 1, 2,
//              4, 8) on a horizon ~2x the nominal makespan, so outages
//              intersect execution. Per policy (none / retry /
//              retry+redispatch): completion rate, losses, recovery
//              actions, and the measured-vs-analytic gap. The "none"
//              column is the availability curve; the recovery columns
//              show it pulled back to 1.0.
//
// Results land in bench_results/chaos_replay.json. CI guard:
// --assert-min-completion R replays only the exemplar cell under the
// default policy and fails unless the completion rate reaches R
// (schedules and substreams are seeded, so the guard is deterministic).
// --emit-trace PATH writes the exemplar's run-0 trace JSON, regenerating
// examples/data/chaos_trace.json.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/deploy/mapping.h"
#include "src/network/topology.h"
#include "src/sim/fault_sim.h"
#include "src/sim/faults.h"
#include "src/workflow/builder.h"

namespace wsflow {
namespace {

constexpr size_t kExemplarOps = 8;
constexpr size_t kExemplarServers = 4;
constexpr size_t kRuns = 64;
constexpr uint64_t kSeed = 7;

struct Instance {
  Workflow workflow;
  Network network;
  Mapping mapping;
};

Instance MakeExemplarInstance() {
  std::vector<double> cycles(kExemplarOps, 50e6);
  std::vector<double> bits(kExemplarOps - 1, 8000);
  Result<Workflow> w = MakeLineWorkflow("chaos-line", cycles, bits);
  WSFLOW_CHECK(w.ok()) << w.status().ToString();
  std::vector<double> powers(kExemplarServers, 1e9);
  Result<Network> n = MakeBusNetwork(powers, 100e6);
  WSFLOW_CHECK(n.ok()) << n.status().ToString();
  Mapping m(kExemplarOps);
  for (uint32_t i = 0; i < kExemplarOps; ++i) {
    m.Assign(OperationId(i), ServerId(i % kExemplarServers));
  }
  return Instance{std::move(w).value(), std::move(n).value(), std::move(m)};
}

Result<FaultSchedule> LoadCommittedSchedule() {
  const std::string path =
      std::string(WSFLOW_SOURCE_DIR) + "/examples/data/chaos_schedule.txt";
  std::ifstream in(path);
  if (!in.good()) {
    return Status::NotFound("cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return FaultSchedule::Parse(kExemplarServers, buf.str());
}

struct Cell {
  std::string section;
  std::string label;
  size_t crashes = 0;
  size_t slowdowns = 0;
  std::string policy;
  FaultSimResult result;
};

Cell RunCell(const Instance& inst, const FaultSchedule& schedule,
             const std::string& section, const std::string& label,
             LossPolicy policy, bool trace = false) {
  FaultSimOptions options;
  options.sim.num_runs = kRuns;
  options.sim.seed = kSeed;
  options.sim.record_trace = trace;
  options.policy = policy;
  Result<FaultSimResult> r = SimulateWithFaults(
      inst.workflow, inst.network, inst.mapping, schedule, options);
  WSFLOW_CHECK(r.ok()) << r.status().ToString();
  Cell cell;
  cell.section = section;
  cell.label = label;
  cell.crashes = schedule.num_crashes();
  cell.slowdowns = schedule.events().size() - 2 * schedule.num_crashes();
  cell.policy = std::string(LossPolicyToString(policy));
  cell.result = std::move(r).value();
  return cell;
}

void PrintHeader() {
  std::printf(
      "%-28s %-16s %6s %9s %7s %7s %7s %7s %9s %9s %6s\n", "cell", "policy",
      "done%", "mean_s", "lost", "msglost", "retry", "redisp", "analytic",
      "gap", "gaveup");
}

void PrintCell(const Cell& c) {
  const FaultSimResult& r = c.result;
  double gap = r.analytic_masked_makespan > 0 && r.mean_makespan > 0
                   ? r.mean_makespan / r.analytic_masked_makespan
                   : 0;
  std::printf(
      "%-28s %-16s %5.1f%% %9.4f %7zu %7zu %7zu %7zu %9.4f %9.2f %6zu\n",
      c.label.c_str(), c.policy.c_str(), 100.0 * r.completion_rate,
      r.mean_makespan, r.tokens_lost, r.messages_lost, r.retries,
      r.redispatches, r.analytic_masked_makespan, gap, r.gave_up);
  std::fflush(stdout);
}

void WriteCell(std::FILE* f, const Cell& c, bool last) {
  const FaultSimResult& r = c.result;
  std::fprintf(
      f,
      "    {\"section\": \"%s\", \"label\": \"%s\", \"policy\": \"%s\", "
      "\"crashes\": %zu, \"slowdowns\": %zu, \"runs\": %zu, "
      "\"completed_runs\": %zu, \"completion_rate\": %.6g, "
      "\"mean_makespan_s\": %.6g, \"analytic_masked_makespan_s\": %.6g, "
      "\"tokens_lost\": %zu, \"messages_lost\": %zu, \"retries\": %zu, "
      "\"redispatches\": %zu, \"gave_up\": %zu, \"repairs\": %zu}%s\n",
      c.section.c_str(), c.label.c_str(), c.policy.c_str(), c.crashes,
      c.slowdowns, r.runs, r.completed_runs, r.completion_rate,
      r.mean_makespan,
      std::isfinite(r.analytic_masked_makespan)
          ? r.analytic_masked_makespan
          : -1.0,
      r.tokens_lost, r.messages_lost, r.retries, r.redispatches, r.gave_up,
      r.repairs, last ? "" : ",");
}

void WriteJson(const std::vector<Cell>& cells) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (ec) {
    std::fprintf(stderr, "note: cannot create bench_results/: %s\n",
                 ec.message().c_str());
    return;
  }
  const char* path = "bench_results/chaos_replay.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "note: cannot write %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"chaos_replay\",\n"
               "  \"instance\": \"line M=%zu over bus N=%zu\",\n"
               "  \"runs_per_cell\": %zu,\n  \"seed\": %zu,\n"
               "  \"cells\": [\n",
               kExemplarOps, kExemplarServers, kRuns,
               static_cast<size_t>(kSeed));
  for (size_t i = 0; i < cells.size(); ++i) {
    WriteCell(f, cells[i], i + 1 == cells.size());
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("(json -> %s)\n", path);
}

/// Nominal (fault-free) makespan of the exemplar instance, used to scale
/// the sweep horizon so generated outages intersect execution.
double NominalMakespan(const Instance& inst) {
  Result<FaultSchedule> empty =
      FaultSchedule::FromEvents(kExemplarServers, {});
  WSFLOW_CHECK(empty.ok()) << empty.status().ToString();
  FaultSimOptions options;
  options.sim.num_runs = 1;
  Result<FaultSimResult> r = SimulateWithFaults(
      inst.workflow, inst.network, inst.mapping, *empty, options);
  WSFLOW_CHECK(r.ok()) << r.status().ToString();
  return r->mean_makespan;
}

}  // namespace
}  // namespace wsflow

int main(int argc, char** argv) {
  using namespace wsflow;

  double assert_min_completion = -1;
  std::string emit_trace;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--assert-min-completion" && i + 1 < argc) {
      assert_min_completion = std::atof(argv[++i]);
      if (assert_min_completion <= 0 || assert_min_completion > 1) {
        std::fprintf(stderr,
                     "--assert-min-completion needs a rate in (0, 1]\n");
        return 2;
      }
    } else if (arg == "--emit-trace" && i + 1 < argc) {
      emit_trace = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--assert-min-completion R] "
                   "[--emit-trace PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  Instance inst = MakeExemplarInstance();
  Result<FaultSchedule> committed = LoadCommittedSchedule();
  if (!committed.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", committed.status().ToString().c_str());
    return 2;
  }

  if (!emit_trace.empty()) {
    FaultSimOptions options;
    options.sim.seed = kSeed;
    options.sim.record_trace = true;
    Result<FaultSimResult> r = SimulateWithFaults(
        inst.workflow, inst.network, inst.mapping, *committed, options);
    WSFLOW_CHECK(r.ok()) << r.status().ToString();
    std::ofstream out(emit_trace);
    if (!out.good()) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", emit_trace.c_str());
      return 2;
    }
    out << r->trace.ToJson();
    std::printf("(trace -> %s)\n", emit_trace.c_str());
    return 0;
  }

  if (assert_min_completion > 0) {
    Cell gate = RunCell(inst, *committed, "exemplar", "committed_schedule",
                        LossPolicy::kRetryRedispatch);
    if (gate.result.completion_rate < assert_min_completion) {
      std::fprintf(stderr, "FAIL: completion rate %.4f < required %.4f\n",
                   gate.result.completion_rate, assert_min_completion);
      return 1;
    }
    std::printf("PASS: completion rate %.4f >= %.4f\n",
                gate.result.completion_rate, assert_min_completion);
    return 0;
  }

  bench::PrintBanner(
      "CHAOS-REPLAY",
      "fault-aware simulation: availability vs churn rate, measured "
      "degraded makespan vs analytic masked T_execute");

  std::vector<Cell> cells;
  const LossPolicy kPolicies[] = {LossPolicy::kNone, LossPolicy::kRetry,
                                  LossPolicy::kRetryRedispatch};

  std::printf("\n--- committed exemplar (%zu runs) ---\n", kRuns);
  PrintHeader();
  for (LossPolicy policy : kPolicies) {
    cells.push_back(
        RunCell(inst, *committed, "exemplar", "committed_schedule", policy));
    PrintCell(cells.back());
  }

  // A crash that never heals: backoff retries alone cannot finish, only
  // re-dispatch onto the surviving servers can — the one cell where the
  // redispatch counter must be non-zero.
  Result<FaultSchedule> dead = FaultSchedule::FromEvents(
      kExemplarServers,
      {FaultEvent{0.075, ServerId(1), FaultKind::kCrash, 1.0}});
  WSFLOW_CHECK(dead.ok()) << dead.status().ToString();
  for (LossPolicy policy : kPolicies) {
    cells.push_back(
        RunCell(inst, *dead, "exemplar", "unrecovered_crash", policy));
    PrintCell(cells.back());
  }

  const double horizon = 2.0 * NominalMakespan(inst);
  std::printf("\n--- churn sweep (horizon %.3fs, %zu runs/cell) ---\n",
              horizon, kRuns);
  PrintHeader();
  for (size_t crashes : {size_t{0}, size_t{1}, size_t{2}, size_t{4},
                         size_t{8}}) {
    FaultScheduleOptions schedule_options;
    schedule_options.seed = kSeed ^ (0xC4A05ull + crashes);
    schedule_options.horizon_s = horizon;
    schedule_options.crashes = crashes;
    schedule_options.min_downtime_s = 0.05 * horizon;
    schedule_options.max_downtime_s = 0.20 * horizon;
    schedule_options.slowdowns = crashes / 2;
    Result<FaultSchedule> schedule =
        FaultSchedule::Generate(inst.network, schedule_options);
    WSFLOW_CHECK(schedule.ok()) << schedule.status().ToString();
    const std::string label = "churn_" + std::to_string(crashes);
    for (LossPolicy policy : kPolicies) {
      cells.push_back(RunCell(inst, *schedule, "sweep", label, policy));
      PrintCell(cells.back());
    }
  }

  WriteJson(cells);
  return 0;
}
