// Reproduces Fig. 6 of the paper: Line-Bus algorithms on Class C workloads
// with 19 operations over 5 servers, one panel per bus speed. Each panel
// plots T_execute (x) against TimePenalty (y); here each algorithm's marker
// is its per-trial mean, with the raw scatter dumped as CSV.
//
// Expected shape (paper §4.2): the Tie Resolver algorithms improve both
// dimensions slightly over Fair Load; FL-Merge-Messages'-Ends improves
// execution time while deteriorating balance; HeavyOps-LargeMsgs gives
// consistently good execution times, most visibly on slow buses.

#include "bench/bench_util.h"
#include "src/exp/config.h"

int main() {
  using namespace wsflow;
  bench::PrintBanner("FIG6",
                     "Line-Bus, Class C (Table 6), M=19 operations, N=5 "
                     "servers, 50 trials per bus speed");

  for (double bus : PaperBusSweepBps()) {
    ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
    cfg.fixed_bus_speed_bps = bus;
    cfg.name = "fig6-" + bench::BusLabel(bus);
    Result<ExperimentResult> result =
        RunExperiment(cfg, PaperBusAlgorithms());
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    bench::PrintPanel(bench::BusLabel(bus), *result);
    bench::DumpScatterCsv(*result, cfg.name);
  }

  std::printf(
      "\nreading guide: lower-left is better (closer to (0,0) in the "
      "paper's plots).\n");
  return 0;
}
