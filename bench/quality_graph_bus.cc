// Reproduces the §4.2 Graph-Bus solution-quality numbers: worst-case
// percentage deviations from the best of 32 000 sampled solutions over 50
// experiments (hybrid random graphs, 5 servers, 19 operations).
//
// Paper reference points for HeavyOps-LargeMsgs: (29%, 1.8%) exec/penalty
// deviation on the 1 Mbps bus and (0%, 0%) on the 100 Mbps bus.

#include "bench/quality_common.h"

int main() {
  using namespace wsflow;
  bench::PrintBanner("QUAL-GB",
                     "Graph-Bus quality vs 32000-sample best; hybrid graphs, "
                     "M=19, N=5, 50 experiments (paper §4.2)");
  return bench::RunQualityStudy(WorkloadKind::kHybridGraph, /*trials=*/50,
                                /*samples=*/32000);
}
