// Objective-weight study (paper §4.2: "Assuming different weights for the
// two measures, different distance measures could also be considered").
// On instances small enough to solve exactly, sweep the execution-time
// weight w from 0 to 1 (fairness weight 1-w) and trace how the optimal
// deployment moves across the Pareto front, then measure which heuristic
// lands closest to the optimum at each weight.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/cost/pareto.h"
#include "src/deploy/algorithm.h"
#include "src/deploy/exhaustive.h"
#include "src/exp/config.h"

int main() {
  using namespace wsflow;
  RegisterBuiltinAlgorithms();
  bench::PrintBanner("WEIGHTS",
                     "objective-weight sweep with exact optima; Class C "
                     "line workloads, M=8, N=3, 20 trials, 10 Mbps bus");

  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  cfg.num_operations = 8;
  cfg.num_servers = 3;
  cfg.fixed_bus_speed_bps = paperconst::kBus10Mbps;
  const double kWeights[] = {0.0, 0.25, 0.5, 0.75, 1.0};

  std::printf("\noptimal deployment as the execution weight grows (means "
              "over 20 trials):\n");
  std::printf("%8s %16s %16s %18s\n", "w_exec", "opt exec (ms)",
              "opt penalty (ms)", "distinct servers");
  for (double weight : kWeights) {
    SummaryStats exec, penalty, servers_used;
    for (size_t trial = 0; trial < 20; ++trial) {
      Result<TrialInstance> t = DrawTrial(cfg, trial);
      WSFLOW_CHECK(t.ok());
      CostModel model(t->workflow, t->network);
      DeployContext ctx;
      ctx.workflow = &t->workflow;
      ctx.network = &t->network;
      ctx.cost_options.execution_weight = weight;
      ctx.cost_options.fairness_weight = 1.0 - weight;
      Result<Mapping> opt = ExhaustiveAlgorithm().Run(ctx);
      WSFLOW_CHECK(opt.ok());
      Result<CostBreakdown> cost = model.Evaluate(*opt, ctx.cost_options);
      WSFLOW_CHECK(cost.ok());
      exec.Add(cost->execution_time);
      penalty.Add(cost->time_penalty);
      size_t used = 0;
      for (const Server& s : t->network.servers()) {
        if (!opt->OperationsOn(s.id()).empty()) ++used;
      }
      servers_used.Add(static_cast<double>(used));
    }
    std::printf("%8.2f %16.3f %16.3f %18.2f\n", weight, exec.mean() * 1e3,
                penalty.mean() * 1e3, servers_used.mean());
  }

  // Absolute excess: percentages explode at w=0, where the optimal
  // combined cost (pure fairness) is often ~0.
  std::printf("\nmean excess combined cost over the exact optimum (ms), per "
              "heuristic and weight:\n");
  std::printf("%-12s", "algorithm");
  for (double weight : kWeights) std::printf(" %9.2fw", weight);
  std::printf("\n");
  for (const std::string& name : PaperBusAlgorithms()) {
    std::printf("%-12s", name.c_str());
    for (double weight : kWeights) {
      SummaryStats excess;
      for (size_t trial = 0; trial < 20; ++trial) {
        Result<TrialInstance> t = DrawTrial(cfg, trial);
        WSFLOW_CHECK(t.ok());
        CostModel model(t->workflow, t->network);
        DeployContext ctx;
        ctx.workflow = &t->workflow;
        ctx.network = &t->network;
        ctx.seed = trial;
        ctx.cost_options.execution_weight = weight;
        ctx.cost_options.fairness_weight = 1.0 - weight;
        Result<Mapping> opt = ExhaustiveAlgorithm().Run(ctx);
        Result<Mapping> heuristic = RunAlgorithm(name, ctx);
        if (!opt.ok() || !heuristic.ok()) continue;
        double opt_cost =
            model.Evaluate(*opt, ctx.cost_options).value().combined;
        double h_cost =
            model.Evaluate(*heuristic, ctx.cost_options).value().combined;
        excess.Add((h_cost - opt_cost) * 1e3);
      }
      std::printf(" %10.2f", excess.mean());
    }
    std::printf("\n");
  }
  std::printf(
      "\nreading: w=0 optimizes fairness only (all servers used, penalty "
      "~0); w=1 optimizes execution only (operations collapse onto few "
      "servers). The fair family excels at low w, the message-aware "
      "algorithms at high w; the paper's equal weighting sits in between.\n");
  return 0;
}
