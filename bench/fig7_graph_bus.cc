// Reproduces Fig. 7 of the paper: overall Random-Graph-Bus results. Class C
// workloads, 19 operations, 5 servers; the three graph families (bushy,
// lengthy, hybrid) are pooled, one panel per bus speed.
//
// Expected shape (paper §4.2): HeavyOps-LargeMsgs is the clear winner on
// execution time and close to best on fairness; FL-Merge-Messages'-Ends is
// close on execution time but unstable on fairness.

#include "bench/bench_util.h"
#include "src/exp/config.h"

int main() {
  using namespace wsflow;
  bench::PrintBanner("FIG7",
                     "Random Graph-Bus, Class C, M=19, N=5; bushy+lengthy+"
                     "hybrid pooled (50 trials each) per bus speed");

  const WorkloadKind kShapes[] = {WorkloadKind::kBushyGraph,
                                  WorkloadKind::kLengthyGraph,
                                  WorkloadKind::kHybridGraph};

  for (double bus : PaperBusSweepBps()) {
    // Pool the three families into one ExperimentResult.
    ExperimentResult pooled;
    pooled.name = "fig7-" + bench::BusLabel(bus);
    for (const std::string& algo : PaperBusAlgorithms()) {
      AlgorithmSummary s;
      s.algorithm = algo;
      pooled.per_algorithm.push_back(s);
    }
    for (WorkloadKind shape : kShapes) {
      ExperimentConfig cfg = MakeClassCConfig(shape);
      cfg.fixed_bus_speed_bps = bus;
      Result<ExperimentResult> result =
          RunExperiment(cfg, PaperBusAlgorithms());
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      for (size_t i = 0; i < pooled.per_algorithm.size(); ++i) {
        AlgorithmSummary& dst = pooled.per_algorithm[i];
        const AlgorithmSummary& src = result->per_algorithm[i];
        dst.execution_time.Merge(src.execution_time);
        dst.time_penalty.Merge(src.time_penalty);
        dst.points.insert(dst.points.end(), src.points.begin(),
                          src.points.end());
        dst.failures += src.failures;
      }
    }
    bench::PrintPanel(bench::BusLabel(bus), pooled);
    bench::DumpScatterCsv(pooled, pooled.name);
  }
  return 0;
}
