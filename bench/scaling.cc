// Algorithm runtime scaling (google-benchmark): measures each deployment
// heuristic as the workflow (M) and the server farm (N) grow, backing the
// paper's complexity claims — O(M logM + N logN + MN) for Fair Load,
// O(M * (...)) for the tie-resolver family, and near-O(M^2) for
// HeavyOps-LargeMsgs on a line of messages.

#include <benchmark/benchmark.h>

#include "src/deploy/algorithm.h"
#include "src/exp/config.h"

namespace {

using namespace wsflow;

struct ScalingFixture {
  Workflow workflow;
  Network network;
  std::optional<ExecutionProfile> profile;

  static ScalingFixture Make(size_t ops, size_t servers, bool graph) {
    ExperimentConfig cfg = MakeClassCConfig(
        graph ? WorkloadKind::kHybridGraph : WorkloadKind::kLine);
    cfg.num_operations = ops;
    cfg.num_servers = servers;
    Result<TrialInstance> t = DrawTrial(cfg, 0);
    if (!t.ok()) {
      throw std::runtime_error(t.status().ToString());
    }
    return ScalingFixture{std::move(t->workflow), std::move(t->network),
                          std::move(t->profile)};
  }
};

void RunAlgorithmBenchmark(benchmark::State& state, const char* name,
                           bool graph) {
  RegisterBuiltinAlgorithms();
  size_t ops = static_cast<size_t>(state.range(0));
  size_t servers = static_cast<size_t>(state.range(1));
  ScalingFixture fx = ScalingFixture::Make(ops, servers, graph);
  auto algo = AlgorithmRegistry::Global().Create(name);
  if (!algo.ok()) {
    state.SkipWithError(algo.status().ToString().c_str());
    return;
  }
  DeployContext ctx;
  ctx.workflow = &fx.workflow;
  ctx.network = &fx.network;
  ctx.profile = fx.profile ? &*fx.profile : nullptr;
  ctx.seed = 1;
  for (auto _ : state) {
    Result<Mapping> m = (*algo)->Run(ctx);
    if (!m.ok()) {
      state.SkipWithError(m.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(m.value());
  }
  state.SetComplexityN(static_cast<int64_t>(ops));
}

void SweepArgs(benchmark::internal::Benchmark* b) {
  // Sweep M at N=5, then N at M=40.
  for (int m : {10, 20, 40, 80, 160}) b->Args({m, 5});
  for (int n : {2, 4, 8, 16}) b->Args({40, n});
}

#define WSFLOW_SCALING_BENCH(name, algo, graph)                  \
  void name(benchmark::State& state) {                           \
    RunAlgorithmBenchmark(state, algo, graph);                   \
  }                                                              \
  BENCHMARK(name)->Apply(SweepArgs)->Unit(benchmark::kMicrosecond)

WSFLOW_SCALING_BENCH(BM_FairLoad_Line, "fair-load", false);
WSFLOW_SCALING_BENCH(BM_Fltr_Line, "fltr", false);
WSFLOW_SCALING_BENCH(BM_Fltr2_Line, "fltr2", false);
WSFLOW_SCALING_BENCH(BM_FlMerge_Line, "fl-merge", false);
WSFLOW_SCALING_BENCH(BM_HeavyOps_Line, "heavy-ops", false);
WSFLOW_SCALING_BENCH(BM_FairLoad_Graph, "fair-load", true);
WSFLOW_SCALING_BENCH(BM_HeavyOps_Graph, "heavy-ops", true);

// The exhaustive baseline explodes: only tiny instances.
void BM_Exhaustive(benchmark::State& state) {
  RunAlgorithmBenchmark(state, "exhaustive", false);
}
BENCHMARK(BM_Exhaustive)
    ->Args({6, 3})
    ->Args({8, 3})
    ->Args({10, 3})
    ->Unit(benchmark::kMillisecond);

// Cost-model evaluation throughput (the inner loop of sampling and search).
void BM_EvaluateLine(benchmark::State& state) {
  ScalingFixture fx = ScalingFixture::Make(
      static_cast<size_t>(state.range(0)), 5, false);
  CostModel model(fx.workflow, fx.network);
  DeployContext ctx;
  ctx.workflow = &fx.workflow;
  ctx.network = &fx.network;
  Result<Mapping> m = RunAlgorithm("fair-load", ctx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Evaluate(*m));
  }
}
BENCHMARK(BM_EvaluateLine)->Arg(19)->Arg(80)->Unit(benchmark::kMicrosecond);

void BM_EvaluateGraph(benchmark::State& state) {
  ScalingFixture fx = ScalingFixture::Make(
      static_cast<size_t>(state.range(0)), 5, true);
  CostModel model(fx.workflow, fx.network,
                  fx.profile ? &*fx.profile : nullptr);
  DeployContext ctx;
  ctx.workflow = &fx.workflow;
  ctx.network = &fx.network;
  ctx.profile = fx.profile ? &*fx.profile : nullptr;
  Result<Mapping> m = RunAlgorithm("fair-load", ctx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Evaluate(*m));
  }
}
BENCHMARK(BM_EvaluateGraph)->Arg(19)->Arg(80)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
