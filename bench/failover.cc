// Failure-resilience study (the paper's §2.1 motivation for the fairness
// objective: a fair deployment means "whenever additional workflows are
// deployed, or a server fails, a reasonable load scale-up is still
// possible"). For each algorithm's deployment, every server is failed in
// turn, the orphans are redistributed worst-fit over the survivors, and the
// worst surviving-server load scale-up plus the post-failure execution time
// are recorded. Fair deployments should bound the scale-up near the ideal
// N/(N-1); execution-time-optimized deployments concentrate load and fail
// harder.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/deploy/algorithm.h"
#include "src/deploy/failover.h"
#include "src/exp/config.h"

int main() {
  using namespace wsflow;
  RegisterBuiltinAlgorithms();
  bench::PrintBanner("FAILOVER",
                     "server-failure impact per algorithm; Class C line "
                     "workloads, M=19, N=5, 30 trials, worst-fit repair");
  std::printf("(ideal scale-up on equal servers: N/(N-1) = 1.25; 'inf' "
              "means an idle server had to take work)\n\n");

  for (double bus : {paperconst::kBus1Mbps, paperconst::kBus100Mbps}) {
    ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
    cfg.fixed_bus_speed_bps = bus;
    cfg.trials = 30;
    std::printf("--- %s ---\n", bench::BusLabel(bus).c_str());
    std::printf("%-12s %18s %18s %14s\n", "algorithm",
                "mean worst scaleup", "exec after/before", "inf cases");

    for (const std::string& name : PaperBusAlgorithms()) {
      SummaryStats scaleup, exec_ratio;
      size_t infinite = 0;
      for (size_t trial = 0; trial < cfg.trials; ++trial) {
        Result<TrialInstance> t = DrawTrial(cfg, trial);
        WSFLOW_CHECK(t.ok());
        CostModel model(t->workflow, t->network);
        DeployContext ctx;
        ctx.workflow = &t->workflow;
        ctx.network = &t->network;
        ctx.seed = trial;
        Result<Mapping> m = RunAlgorithm(name, ctx);
        if (!m.ok()) continue;
        Result<std::vector<FailoverReport>> reports =
            AnalyzeAllFailovers(model, *m, FailoverStrategy::kWorstFit);
        if (!reports.ok()) continue;
        double worst = 1.0;
        double worst_exec_ratio = 1.0;
        bool has_inf = false;
        for (const FailoverReport& r : *reports) {
          if (std::isinf(r.worst_load_scale_up)) {
            has_inf = true;
          } else {
            worst = std::max(worst, r.worst_load_scale_up);
          }
          worst_exec_ratio =
              std::max(worst_exec_ratio,
                       r.execution_time_after / r.execution_time_before);
        }
        if (has_inf) ++infinite;
        scaleup.Add(worst);
        exec_ratio.Add(worst_exec_ratio);
      }
      std::printf("%-12s %18.3f %18.3f %11zu/30\n", name.c_str(),
                  scaleup.mean(), exec_ratio.mean(), infinite);
    }
    std::printf("\n");
  }
  std::printf(
      "reading: the fair family's scale-up stays near the ideal and no "
      "failure ever dumps work on an idle host; execution-time-focused "
      "deployments (fl-merge, heavy-ops on slow buses) leave servers idle "
      "in fair weather and overload them after a failure.\n");
  return 0;
}
