// The `wsflow` command-line tool: generate workflows and networks, deploy,
// evaluate, simulate, sample and compare. All logic lives in
// src/cli/commands.cc; this translation unit only dispatches.

#include <iostream>

#include "src/cli/commands.h"

int main(int argc, char** argv) {
  return wsflow::cli::RunCli(argc, argv, std::cout, std::cerr);
}
