#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/cli/commands.h"
#include "tests/testing/test_util.h"

namespace wsflow::cli {
namespace {

TEST(ExperimentCommandTest, RunsDefaultClassC) {
  std::ostringstream out;
  WSFLOW_ASSERT_OK(CmdExperiment(
      {"--trials", "3", "--ops", "9", "--servers", "3"}, out));
  std::string text = out.str();
  EXPECT_NE(text.find("class-c-line"), std::string::npos);
  EXPECT_NE(text.find("heavy-ops"), std::string::npos);
  EXPECT_NE(text.find("exec_mean_ms"), std::string::npos);
}

TEST(ExperimentCommandTest, GraphWorkloadAndClassSelection) {
  std::ostringstream out;
  WSFLOW_ASSERT_OK(CmdExperiment({"--class", "a", "--workload", "bushy",
                                  "--trials", "2", "--ops", "11",
                                  "--servers", "3"},
                                 out));
  EXPECT_NE(out.str().find("class-a-bushy"), std::string::npos);
}

TEST(ExperimentCommandTest, CustomAlgorithmList) {
  std::ostringstream out;
  WSFLOW_ASSERT_OK(CmdExperiment({"--trials", "2", "--ops", "7",
                                  "--servers", "2", "--algorithms",
                                  "round-robin, critical-path"},
                                 out));
  std::string text = out.str();
  EXPECT_NE(text.find("round-robin"), std::string::npos);
  EXPECT_NE(text.find("critical-path"), std::string::npos);
  EXPECT_EQ(text.find("fair-load"), std::string::npos);
}

TEST(ExperimentCommandTest, FixedBusOverride) {
  std::ostringstream out;
  WSFLOW_ASSERT_OK(CmdExperiment({"--trials", "2", "--ops", "7",
                                  "--servers", "2", "--bus", "1e6"},
                                 out));
  EXPECT_NE(out.str().find("trials"), std::string::npos);
}

TEST(ExperimentCommandTest, CsvOutput) {
  std::string path = ::testing::TempDir() + "/wsflow_exp.csv";
  std::ostringstream out;
  WSFLOW_ASSERT_OK(CmdExperiment({"--trials", "2", "--ops", "7",
                                  "--servers", "2", "--algorithms",
                                  "fair-load", "--csv", path},
                                 out));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "algorithm,trial,execution_time_s,time_penalty_s");
  size_t rows = 0;
  for (std::string line; std::getline(in, line);) ++rows;
  EXPECT_EQ(rows, 2u);  // one algorithm x two trials
  std::remove(path.c_str());
}

TEST(ExperimentCommandTest, BadInputsRejected) {
  std::ostringstream out;
  EXPECT_TRUE(CmdExperiment({"--class", "z"}, out).IsInvalidArgument());
  EXPECT_TRUE(
      CmdExperiment({"--workload", "circular"}, out).IsInvalidArgument());
  EXPECT_TRUE(CmdExperiment({"--trials", "1", "--algorithms", "bogus"}, out)
                  .IsNotFound());
}

TEST(ExperimentCommandTest, DeterministicAcrossRuns) {
  std::ostringstream a, b;
  std::vector<std::string> args{"--trials", "3", "--ops", "9",
                                "--servers", "3", "--seed", "7"};
  WSFLOW_ASSERT_OK(CmdExperiment(args, a));
  WSFLOW_ASSERT_OK(CmdExperiment(args, b));
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace wsflow::cli
