#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/cli/commands.h"
#include "tests/testing/test_util.h"

namespace wsflow::cli {
namespace {

std::string RunChaos(const std::vector<std::string>& extra) {
  std::vector<std::string> args = {"--servers", "6",    "--ops",  "12",
                                   "--requests", "20",  "--seed", "42",
                                   "--horizon",  "50"};
  args.insert(args.end(), extra.begin(), extra.end());
  std::ostringstream out;
  WSFLOW_EXPECT_OK(CmdChaos(args, out));
  return out.str();
}

TEST(ChaosCommandTest, AnswersEveryRequestUnderChurn) {
  std::string out = RunChaos({});
  EXPECT_NE(out.find("failed=0"), std::string::npos) << out;
  EXPECT_NE(out.find("repair quality"), std::string::npos) << out;
}

TEST(ChaosCommandTest, ReportsSimulatorSourcedLossColumns) {
  std::string out = RunChaos({});
  EXPECT_NE(out.find("completion-rate="), std::string::npos) << out;
  EXPECT_NE(out.find("tokens-lost="), std::string::npos) << out;
  EXPECT_EQ(out.find("unanswered="), std::string::npos) << out;
}

TEST(ChaosCommandTest, OutputIsIdenticalAcrossThreadCounts) {
  std::string one = RunChaos({"--threads", "1"});
  std::string two = RunChaos({"--threads", "2"});
  std::string four = RunChaos({"--threads", "4"});
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
}

TEST(ChaosCommandTest, SeedChangesTheSchedule) {
  std::string a = RunChaos({"--seed", "1"});
  std::string b = RunChaos({"--seed", "2"});
  EXPECT_NE(a, b);
}

TEST(ChaosCommandTest, RejectsBadFlags) {
  std::ostringstream out;
  EXPECT_FALSE(CmdChaos({"--servers", "0"}, out).ok());
  EXPECT_FALSE(CmdChaos({"--requests", "0"}, out).ok());
  EXPECT_FALSE(
      CmdChaos({"--requests", "1", "--algorithm", "no-such-algo"}, out).ok());
}

}  // namespace
}  // namespace wsflow::cli
