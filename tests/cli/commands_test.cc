#include "src/cli/commands.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/network/serialization.h"
#include "src/sim/trace.h"
#include "src/workflow/serialization.h"
#include "src/workflow/validate.h"
#include "tests/testing/test_util.h"

namespace wsflow::cli {
namespace {

class CommandsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir();
    workflow_path_ = dir_ + "/cmd_workflow.xml";
    network_path_ = dir_ + "/cmd_network.xml";
    std::ostringstream sink;
    WSFLOW_ASSERT_OK(CmdGenerate({"--type", "line", "--ops", "7", "--out",
                                  workflow_path_},
                                 sink));
    WSFLOW_ASSERT_OK(CmdMakeNetwork(
        {"--kind", "bus", "--powers", "1e9,2e9", "--speeds", "1e8", "--out",
         network_path_},
        sink));
  }

  void TearDown() override {
    std::remove(workflow_path_.c_str());
    std::remove(network_path_.c_str());
  }

  std::vector<std::string> InputArgs() const {
    return {"--workflow", workflow_path_, "--network", network_path_};
  }

  std::string dir_, workflow_path_, network_path_;
};

TEST_F(CommandsTest, GenerateWritesValidLineWorkflow) {
  Workflow w = WSFLOW_UNWRAP(LoadWorkflow(workflow_path_));
  EXPECT_EQ(w.num_operations(), 7u);
  EXPECT_TRUE(w.IsLine());
  WSFLOW_EXPECT_OK(ValidateAll(w));
}

TEST_F(CommandsTest, GenerateGraphShapes) {
  for (const char* type : {"bushy", "lengthy", "hybrid"}) {
    std::string path = dir_ + "/cmd_graph.xml";
    std::ostringstream out;
    WSFLOW_ASSERT_OK(CmdGenerate(
        {"--type", type, "--ops", "15", "--seed", "3", "--out", path}, out));
    Workflow w = WSFLOW_UNWRAP(LoadWorkflow(path));
    EXPECT_EQ(w.num_operations(), 15u) << type;
    WSFLOW_EXPECT_OK(ValidateAll(w));
    std::remove(path.c_str());
  }
}

TEST_F(CommandsTest, GenerateRejectsBadInputs) {
  std::ostringstream out;
  EXPECT_TRUE(CmdGenerate({"--type", "line"}, out).IsInvalidArgument());
  EXPECT_TRUE(
      CmdGenerate({"--type", "mesh", "--out", dir_ + "/x.xml"}, out)
          .IsInvalidArgument());
}

TEST_F(CommandsTest, MakeNetworkKinds) {
  std::ostringstream out;
  std::string path = dir_ + "/cmd_net2.xml";
  WSFLOW_ASSERT_OK(CmdMakeNetwork({"--kind", "line", "--powers", "1e9,2e9",
                                   "--speeds", "1e8", "--out", path},
                                  out));
  Network line = WSFLOW_UNWRAP(LoadNetwork(path));
  EXPECT_EQ(line.kind(), NetworkKind::kLine);

  WSFLOW_ASSERT_OK(CmdMakeNetwork({"--kind", "ring", "--powers",
                                   "1e9,1e9,1e9", "--speeds", "1e8,1e8,1e8",
                                   "--out", path},
                                  out));
  EXPECT_EQ(WSFLOW_UNWRAP(LoadNetwork(path)).kind(), NetworkKind::kRing);
  std::remove(path.c_str());
}

TEST_F(CommandsTest, MakeNetworkRejectsBusWithManySpeeds) {
  std::ostringstream out;
  EXPECT_TRUE(CmdMakeNetwork({"--kind", "bus", "--powers", "1e9,1e9",
                              "--speeds", "1e8,1e8", "--out",
                              dir_ + "/n.xml"},
                             out)
                  .IsInvalidArgument());
}

TEST_F(CommandsTest, DeployPrintsMappingAndCosts) {
  std::ostringstream out;
  std::vector<std::string> args = InputArgs();
  args.insert(args.end(), {"--algorithm", "heavy-ops"});
  WSFLOW_ASSERT_OK(CmdDeploy(args, out));
  std::string text = out.str();
  EXPECT_NE(text.find("mapping:"), std::string::npos);
  EXPECT_NE(text.find("T_execute:"), std::string::npos);
  EXPECT_NE(text.find("spec:"), std::string::npos);
}

TEST_F(CommandsTest, DeployUnknownAlgorithmFails) {
  std::ostringstream out;
  std::vector<std::string> args = InputArgs();
  args.insert(args.end(), {"--algorithm", "bogus"});
  EXPECT_TRUE(CmdDeploy(args, out).IsNotFound());
}

TEST_F(CommandsTest, EvaluateAcceptsSpec) {
  std::ostringstream out;
  std::vector<std::string> args = InputArgs();
  args.insert(args.end(), {"--mapping", "0,1,0,1,0,1,0"});
  WSFLOW_ASSERT_OK(CmdEvaluate(args, out));
  EXPECT_NE(out.str().find("TimePenalty:"), std::string::npos);
  EXPECT_NE(out.str().find("load s1"), std::string::npos);
}

TEST_F(CommandsTest, EvaluateRejectsBadSpecs) {
  std::ostringstream out;
  std::vector<std::string> args = InputArgs();
  args.insert(args.end(), {"--mapping", "0,1"});  // wrong length
  EXPECT_TRUE(CmdEvaluate(args, out).IsInvalidArgument());
  args = InputArgs();
  args.insert(args.end(), {"--mapping", "0,1,0,1,0,1,9"});  // bad server
  EXPECT_TRUE(CmdEvaluate(args, out).IsOutOfRange());
}

TEST_F(CommandsTest, SimulateAgreesWithAnalytic) {
  std::ostringstream out;
  std::vector<std::string> args = InputArgs();
  args.insert(args.end(), {"--runs", "5", "--trace"});
  WSFLOW_ASSERT_OK(CmdSimulate(args, out));
  std::string text = out.str();
  EXPECT_NE(text.find("mean makespan"), std::string::npos);
  EXPECT_NE(text.find("trace of run 1"), std::string::npos);
}

TEST_F(CommandsTest, SimulateWithGeneratedFaultsReportsRecovery) {
  std::ostringstream out;
  std::vector<std::string> args = InputArgs();
  args.insert(args.end(), {"--runs", "8", "--seed", "7", "--faults", "1",
                           "--fault-seed", "3", "--policy",
                           "retry+redispatch", "--stats"});
  WSFLOW_ASSERT_OK(CmdSimulate(args, out));
  std::string text = out.str();
  EXPECT_NE(text.find("fault schedule"), std::string::npos) << text;
  EXPECT_NE(text.find("completion:"), std::string::npos) << text;
  EXPECT_NE(text.find("tokens lost:"), std::string::npos) << text;
}

TEST_F(CommandsTest, SimulateReplaysAFaultScheduleFile) {
  std::string path = dir_ + "/cmd_faults.txt";
  {
    std::ofstream file(path);
    file << "# one transient crash\n"
         << "t=0.01s crash s0\n"
         << "t=0.2s recover s0\n";
  }
  std::ostringstream out;
  std::vector<std::string> args = InputArgs();
  args.insert(args.end(), {"--runs", "4", "--faults-file", path, "--policy",
                           "retry"});
  WSFLOW_ASSERT_OK(CmdSimulate(args, out));
  EXPECT_NE(out.str().find("crash s0"), std::string::npos) << out.str();
  std::remove(path.c_str());
}

TEST_F(CommandsTest, SimulateTraceJsonRoundTrips) {
  std::ostringstream out;
  std::vector<std::string> args = InputArgs();
  args.insert(args.end(), {"--runs", "2", "--trace-json"});
  WSFLOW_ASSERT_OK(CmdSimulate(args, out));
  Trace parsed = WSFLOW_UNWRAP(ParseTraceJson(out.str()));
  EXPECT_FALSE(parsed.events().empty());
  EXPECT_EQ(parsed.ToJson(), out.str());
}

TEST_F(CommandsTest, SimulateRejectsUnknownPolicy) {
  std::ostringstream out;
  std::vector<std::string> args = InputArgs();
  args.insert(args.end(), {"--faults", "1", "--policy", "bogus"});
  EXPECT_TRUE(CmdSimulate(args, out).IsInvalidArgument());
}

TEST_F(CommandsTest, SampleReportsBounds) {
  std::ostringstream out;
  std::vector<std::string> args = InputArgs();
  args.insert(args.end(), {"--samples", "500"});
  WSFLOW_ASSERT_OK(CmdSample(args, out));
  std::string text = out.str();
  EXPECT_NE(text.find("best T_execute"), std::string::npos);
  EXPECT_NE(text.find("best-combined spec"), std::string::npos);
}

TEST_F(CommandsTest, CompareListsAllPaperAlgorithms) {
  std::ostringstream out;
  WSFLOW_ASSERT_OK(CmdCompare(InputArgs(), out));
  std::string text = out.str();
  for (const char* name :
       {"fair-load", "fltr", "fltr2", "fl-merge", "heavy-ops"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  EXPECT_EQ(text.find("annealing"), std::string::npos);
}

TEST_F(CommandsTest, CompareWithExtensions) {
  std::ostringstream out;
  std::vector<std::string> args = InputArgs();
  args.push_back("--extensions");
  WSFLOW_ASSERT_OK(CmdCompare(args, out));
  EXPECT_NE(out.str().find("critical-path"), std::string::npos);
  EXPECT_NE(out.str().find("annealing"), std::string::npos);
}

TEST_F(CommandsTest, ListAlgorithms) {
  std::ostringstream out;
  WSFLOW_ASSERT_OK(CmdListAlgorithms({}, out));
  EXPECT_NE(out.str().find("heavy-ops"), std::string::npos);
  EXPECT_NE(out.str().find("exhaustive"), std::string::npos);
}

TEST_F(CommandsTest, MissingInputsRejected) {
  std::ostringstream out;
  EXPECT_TRUE(CmdDeploy({}, out).IsInvalidArgument());
  EXPECT_TRUE(CmdDeploy({"--workflow", workflow_path_}, out)
                  .IsInvalidArgument());
  EXPECT_TRUE(CmdDeploy({"--workflow", "/no/such.xml", "--network",
                         network_path_},
                        out)
                  .IsNotFound());
}

TEST(MappingSpecTest, RoundTrip) {
  Mapping m(4);
  m.Assign(OperationId(0), ServerId(2));
  m.Assign(OperationId(1), ServerId(0));
  m.Assign(OperationId(2), ServerId(1));
  m.Assign(OperationId(3), ServerId(1));
  std::string spec = FormatMappingSpec(m);
  EXPECT_EQ(spec, "2,0,1,1");
  Mapping parsed = WSFLOW_UNWRAP(ParseMappingSpec(spec, 4, 3));
  EXPECT_TRUE(parsed == m);
}

TEST(RunCliTest, DispatchesAndReportsErrors) {
  std::ostringstream out, err;
  const char* help[] = {"wsflow", "help"};
  EXPECT_EQ(RunCli(2, help, out, err), 0);
  EXPECT_NE(out.str().find("usage:"), std::string::npos);

  const char* unknown[] = {"wsflow", "frobnicate"};
  EXPECT_EQ(RunCli(2, unknown, out, err), 2);
  EXPECT_NE(err.str().find("unknown command"), std::string::npos);

  const char* none[] = {"wsflow"};
  EXPECT_EQ(RunCli(1, none, out, err), 2);

  std::ostringstream out2, err2;
  const char* list[] = {"wsflow", "list-algorithms"};
  EXPECT_EQ(RunCli(2, list, out2, err2), 0);
  EXPECT_NE(out2.str().find("fair-load"), std::string::npos);

  std::ostringstream out3, err3;
  const char* bad[] = {"wsflow", "deploy"};
  EXPECT_EQ(RunCli(2, bad, out3, err3), 1);
  EXPECT_NE(err3.str().find("--workflow is required"), std::string::npos);
}

}  // namespace
}  // namespace wsflow::cli
