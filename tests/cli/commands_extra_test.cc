// Tests for the CLI commands added by the extensions: stats, failover,
// dot, response-times, and structured-process workflow input.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/cli/commands.h"
#include "tests/testing/test_util.h"

namespace wsflow::cli {
namespace {

class CliExtraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir();
    workflow_path_ = dir_ + "/extra_workflow.xml";
    process_path_ = dir_ + "/extra_process.xml";
    network_path_ = dir_ + "/extra_network.xml";
    std::ostringstream sink;
    WSFLOW_ASSERT_OK(CmdGenerate({"--type", "hybrid", "--ops", "13",
                                  "--out", workflow_path_},
                                 sink));
    WSFLOW_ASSERT_OK(CmdMakeNetwork(
        {"--kind", "bus", "--powers", "1e9,2e9,3e9", "--speeds", "1e8",
         "--out", network_path_},
        sink));
    std::ofstream process(process_path_);
    process << "<process name=\"proc\" default_bits=\"1000\">"
               "<invoke name=\"a\" cycles=\"1e6\"/>"
               "<flow name=\"f\" cycles=\"1e6\">"
               "<invoke name=\"l\" cycles=\"2e6\"/>"
               "<invoke name=\"r\" cycles=\"3e6\"/>"
               "</flow>"
               "<invoke name=\"z\" cycles=\"1e6\"/>"
               "</process>";
  }

  void TearDown() override {
    std::remove(workflow_path_.c_str());
    std::remove(process_path_.c_str());
    std::remove(network_path_.c_str());
  }

  std::string dir_, workflow_path_, process_path_, network_path_;
};

TEST_F(CliExtraTest, StatsOnFlatWorkflow) {
  std::ostringstream out;
  WSFLOW_ASSERT_OK(CmdStats({"--workflow", workflow_path_}, out));
  std::string text = out.str();
  EXPECT_NE(text.find("operations:       13"), std::string::npos);
  EXPECT_NE(text.find("depth:"), std::string::npos);
  EXPECT_NE(text.find("E[ops per run]"), std::string::npos);
}

TEST_F(CliExtraTest, StatsOnStructuredProcess) {
  std::ostringstream out;
  WSFLOW_ASSERT_OK(CmdStats({"--workflow", process_path_}, out));
  // a, f, l, r, f__join, z = 6 operations.
  EXPECT_NE(out.str().find("operations:       6"), std::string::npos);
}

TEST_F(CliExtraTest, StatsRequiresWorkflow) {
  std::ostringstream out;
  EXPECT_TRUE(CmdStats({}, out).IsInvalidArgument());
}

TEST_F(CliExtraTest, DeployAcceptsStructuredProcess) {
  std::ostringstream out;
  WSFLOW_ASSERT_OK(CmdDeploy({"--workflow", process_path_, "--network",
                              network_path_, "--algorithm", "fair-load"},
                             out));
  EXPECT_NE(out.str().find("f__join->"), std::string::npos);
}

TEST_F(CliExtraTest, FailoverReportsEveryServer) {
  std::ostringstream out;
  WSFLOW_ASSERT_OK(CmdFailover({"--workflow", workflow_path_, "--network",
                                network_path_, "--algorithm", "fair-load"},
                               out));
  std::string text = out.str();
  EXPECT_NE(text.find("s1"), std::string::npos);
  EXPECT_NE(text.find("s3"), std::string::npos);
  EXPECT_NE(text.find("scale-up"), std::string::npos);
}

TEST_F(CliExtraTest, FailoverStrategies) {
  std::ostringstream out;
  WSFLOW_ASSERT_OK(CmdFailover({"--workflow", workflow_path_, "--network",
                                network_path_, "--strategy", "co-locate"},
                               out));
  EXPECT_TRUE(CmdFailover({"--workflow", workflow_path_, "--network",
                           network_path_, "--strategy", "panic"},
                          out)
                  .IsInvalidArgument());
}

TEST_F(CliExtraTest, ResponseTimesListEveryOperation) {
  std::ostringstream out;
  WSFLOW_ASSERT_OK(CmdResponseTimes(
      {"--workflow", process_path_, "--network", network_path_}, out));
  std::string text = out.str();
  for (const char* name : {"a", "f__join", "z"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  EXPECT_NE(text.find("completes at"), std::string::npos);
}

TEST_F(CliExtraTest, DotWorkflowOnly) {
  std::ostringstream out;
  WSFLOW_ASSERT_OK(CmdDot({"--workflow", workflow_path_}, out));
  EXPECT_EQ(out.str().find("digraph"), 0u);
}

TEST_F(CliExtraTest, DotNetworkOnly) {
  std::ostringstream out;
  WSFLOW_ASSERT_OK(CmdDot({"--network", network_path_}, out));
  EXPECT_EQ(out.str().find("graph"), 0u);
  EXPECT_NE(out.str().find("bus"), std::string::npos);
}

TEST_F(CliExtraTest, DotDeploymentColored) {
  std::ostringstream out;
  WSFLOW_ASSERT_OK(CmdDot({"--workflow", workflow_path_, "--network",
                           network_path_, "--algorithm", "heavy-ops"},
                          out));
  EXPECT_NE(out.str().find("style=filled"), std::string::npos);
  EXPECT_NE(out.str().find("cluster_legend"), std::string::npos);
}

TEST_F(CliExtraTest, DotWithoutInputsRejected) {
  std::ostringstream out;
  EXPECT_TRUE(CmdDot({}, out).IsInvalidArgument());
}

TEST_F(CliExtraTest, CompareIncludesPortfolioViaExtensions) {
  std::ostringstream out;
  std::vector<std::string> args{"--workflow", workflow_path_, "--network",
                                network_path_};
  WSFLOW_ASSERT_OK(CmdCompare(args, out));
  // The paper set only — portfolio is not among the default comparison.
  EXPECT_EQ(out.str().find("portfolio"), std::string::npos);
}

TEST_F(CliExtraTest, RunCliDispatchesNewCommands) {
  std::ostringstream out, err;
  std::string wf_flag = "--workflow=" + workflow_path_;
  const char* stats[] = {"wsflow", "stats", wf_flag.c_str()};
  EXPECT_EQ(RunCli(3, stats, out, err), 0) << err.str();
  EXPECT_NE(out.str().find("operations:"), std::string::npos);

  std::ostringstream out2, err2;
  std::string net_flag = "--network=" + network_path_;
  const char* failover[] = {"wsflow", "failover", wf_flag.c_str(),
                            net_flag.c_str()};
  EXPECT_EQ(RunCli(4, failover, out2, err2), 0) << err2.str();
  EXPECT_NE(out2.str().find("orphans"), std::string::npos);
}

}  // namespace
}  // namespace wsflow::cli
