#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/cli/commands.h"
#include "tests/testing/test_util.h"

namespace wsflow::cli {
namespace {

std::string RunFleet(const std::vector<std::string>& extra) {
  std::vector<std::string> args = {"--servers", "6",  "--ops",    "10",
                                   "--tenants", "60", "--epochs", "15",
                                   "--seed",    "42"};
  args.insert(args.end(), extra.begin(), extra.end());
  std::ostringstream out;
  WSFLOW_EXPECT_OK(CmdFleet(args, out));
  return out.str();
}

TEST(FleetCommandTest, ReportsEpochsTotalsAndCleanQuotaAudit) {
  std::string out = RunFleet({});
  EXPECT_NE(out.find("epoch"), std::string::npos) << out;
  EXPECT_NE(out.find("totals:"), std::string::npos) << out;
  // The independent audit recomputes every demand; it must come back clean.
  EXPECT_NE(out.find("quota violations: 0"), std::string::npos) << out;
}

TEST(FleetCommandTest, OutputIsIdenticalAcrossThreadCounts) {
  std::string one = RunFleet({"--threads", "1"});
  std::string two = RunFleet({"--threads", "2"});
  std::string four = RunFleet({"--threads", "4"});
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
}

TEST(FleetCommandTest, SeedChangesTheRun) {
  std::string a = RunFleet({"--seed", "1"});
  std::string b = RunFleet({"--seed", "2"});
  EXPECT_NE(a, b);
}

TEST(FleetCommandTest, DriftlessFleetNeverClamps) {
  std::string out = RunFleet({"--drift", "0"});
  EXPECT_NE(out.find(" clamps=0 "), std::string::npos) << out;
  EXPECT_NE(out.find("quota violations: 0"), std::string::npos) << out;
}

TEST(FleetCommandTest, RejectsBadFlags) {
  std::ostringstream out;
  EXPECT_FALSE(CmdFleet({"--servers", "0"}, out).ok());
  EXPECT_FALSE(CmdFleet({"--tenants", "0"}, out).ok());
  EXPECT_FALSE(CmdFleet({"--epochs", "0"}, out).ok());
  EXPECT_FALSE(CmdFleet({"--archetypes", "0"}, out).ok());
  EXPECT_FALSE(CmdFleet({"--max-share", "0"}, out).ok());
}

}  // namespace
}  // namespace wsflow::cli
