#include "src/cli/flags.h"

#include <gtest/gtest.h>

namespace wsflow::cli {
namespace {

FlagSet MakeFlags() {
  FlagSet flags;
  flags.AddString("name", "default", "a string");
  flags.AddDouble("rate", 1.5, "a double");
  flags.AddInt("count", 10, "an int");
  flags.AddBool("verbose", false, "a bool");
  return flags;
}

TEST(FlagSetTest, DefaultsBeforeParse) {
  FlagSet flags = MakeFlags();
  EXPECT_EQ(flags.GetString("name"), "default");
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 1.5);
  EXPECT_EQ(flags.GetInt("count"), 10);
  EXPECT_FALSE(flags.GetBool("verbose"));
  EXPECT_FALSE(flags.WasSet("name"));
}

TEST(FlagSetTest, SpaceSeparatedValues) {
  FlagSet flags = MakeFlags();
  auto positional =
      flags.Parse({"--name", "x", "--rate", "2.5", "--count", "3"});
  ASSERT_TRUE(positional.ok());
  EXPECT_EQ(flags.GetString("name"), "x");
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 2.5);
  EXPECT_EQ(flags.GetInt("count"), 3);
  EXPECT_TRUE(flags.WasSet("name"));
}

TEST(FlagSetTest, EqualsSeparatedValues) {
  FlagSet flags = MakeFlags();
  ASSERT_TRUE(flags.Parse({"--name=y", "--rate=0.5"}).ok());
  EXPECT_EQ(flags.GetString("name"), "y");
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.5);
}

TEST(FlagSetTest, BareBooleanSetsTrue) {
  FlagSet flags = MakeFlags();
  ASSERT_TRUE(flags.Parse({"--verbose"}).ok());
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagSetTest, ExplicitBooleanValues) {
  FlagSet flags = MakeFlags();
  ASSERT_TRUE(flags.Parse({"--verbose=true"}).ok());
  EXPECT_TRUE(flags.GetBool("verbose"));
  FlagSet flags2 = MakeFlags();
  ASSERT_TRUE(flags2.Parse({"--verbose=false"}).ok());
  EXPECT_FALSE(flags2.GetBool("verbose"));
  FlagSet flags3 = MakeFlags();
  EXPECT_TRUE(flags3.Parse({"--verbose=maybe"}).status().IsInvalidArgument());
}

TEST(FlagSetTest, PositionalArgumentsReturned) {
  FlagSet flags = MakeFlags();
  auto positional = flags.Parse({"one", "--count", "2", "two"});
  ASSERT_TRUE(positional.ok());
  EXPECT_EQ(*positional, (std::vector<std::string>{"one", "two"}));
}

TEST(FlagSetTest, UnknownFlagRejected) {
  FlagSet flags = MakeFlags();
  EXPECT_TRUE(flags.Parse({"--bogus", "1"}).status().IsInvalidArgument());
  EXPECT_TRUE(flags.Parse({"--bogus=1"}).status().IsInvalidArgument());
}

TEST(FlagSetTest, MissingValueRejected) {
  FlagSet flags = MakeFlags();
  EXPECT_TRUE(flags.Parse({"--name"}).status().IsInvalidArgument());
}

TEST(FlagSetTest, BadNumbersRejected) {
  FlagSet flags = MakeFlags();
  EXPECT_TRUE(flags.Parse({"--rate", "abc"}).status().IsParseError());
  FlagSet flags2 = MakeFlags();
  EXPECT_TRUE(flags2.Parse({"--count", "1.5"}).status().IsParseError());
}

TEST(FlagSetTest, HelpListsAllFlags) {
  FlagSet flags = MakeFlags();
  std::string help = flags.Help();
  EXPECT_NE(help.find("--name"), std::string::npos);
  EXPECT_NE(help.find("--rate"), std::string::npos);
  EXPECT_NE(help.find("a bool"), std::string::npos);
  EXPECT_NE(help.find("default: 'default'"), std::string::npos);
}

TEST(ParseDoubleListTest, Basic) {
  auto list = ParseDoubleList("1e9,2e9,3.5");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(*list, (std::vector<double>{1e9, 2e9, 3.5}));
}

TEST(ParseDoubleListTest, SingleValue) {
  EXPECT_EQ(ParseDoubleList("7").value(), std::vector<double>{7.0});
}

TEST(ParseDoubleListTest, BadFieldRejected) {
  EXPECT_TRUE(ParseDoubleList("1,abc").status().IsParseError());
  EXPECT_TRUE(ParseDoubleList("1,,2").status().IsParseError());
}

TEST(ThreadsFlagTest, DefaultsToHardwareConcurrency) {
  EXPECT_GE(DefaultThreadCount(), 1);
  FlagSet flags;
  AddThreadsFlag(&flags);
  EXPECT_EQ(flags.GetInt("threads"), DefaultThreadCount());
  EXPECT_FALSE(flags.WasSet("threads"));
  EXPECT_NE(flags.Help().find("--threads"), std::string::npos);
}

TEST(ThreadsFlagTest, ExplicitValueOverrides) {
  FlagSet flags;
  AddThreadsFlag(&flags);
  ASSERT_TRUE(flags.Parse({"--threads", "3"}).ok());
  EXPECT_EQ(flags.GetInt("threads"), 3);
  EXPECT_TRUE(flags.WasSet("threads"));
}

}  // namespace
}  // namespace wsflow::cli
