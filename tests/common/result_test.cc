#include "src/common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace wsflow {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "gone");
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  // Constructing a Result from an OK status is a bug; it must not silently
  // look like success.
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, ValueOrOnSuccess) {
  Result<int> r = 7;
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, ValueOrOnError) {
  Result<int> r = Status::Internal("x");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  std::unique_ptr<int> p = std::move(r).value();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 5);
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r = std::vector<int>{1, 2};
  r->push_back(3);
  EXPECT_EQ(r.value().size(), 3u);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoublePositive(int x) {
  WSFLOW_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultMacrosTest, AssignOrReturnSuccess) {
  Result<int> r = DoublePositive(4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 8);
}

TEST(ResultMacrosTest, AssignOrReturnPropagatesError) {
  Result<int> r = DoublePositive(-4);
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r = Status::Internal("boom");
  EXPECT_DEATH({ (void)r.value(); }, "boom");
}

}  // namespace
}  // namespace wsflow
