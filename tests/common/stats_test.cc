#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace wsflow {
namespace {

TEST(SummaryStatsTest, EmptyIsZero) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(SummaryStatsTest, SingleObservation) {
  SummaryStats s;
  s.Add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(SummaryStatsTest, KnownSample) {
  SummaryStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(SummaryStatsTest, NegativeValues) {
  SummaryStats s;
  s.Add(-3.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 3.0);
}

TEST(SummaryStatsTest, MergeMatchesCombinedStream) {
  SummaryStats all, left, right;
  for (double x : {1.0, 2.0, 3.0}) {
    all.Add(x);
    left.Add(x);
  }
  for (double x : {10.0, 20.0}) {
    all.Add(x);
    right.Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(SummaryStatsTest, MergeWithEmpty) {
  SummaryStats a, empty;
  a.Add(5.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 5.0);
}

TEST(SummaryStatsTest, ToStringMentionsFields) {
  SummaryStats s;
  s.Add(1.0);
  std::string str = s.ToString();
  EXPECT_NE(str.find("n=1"), std::string::npos);
  EXPECT_NE(str.find("mean="), std::string::npos);
}

TEST(QuantileTest, EmptyIsZero) {
  EXPECT_EQ(Quantile({}, 0.5), 0.0);
}

TEST(QuantileTest, SingleElement) {
  EXPECT_EQ(Quantile({7.0}, 0.0), 7.0);
  EXPECT_EQ(Quantile({7.0}, 0.5), 7.0);
  EXPECT_EQ(Quantile({7.0}, 1.0), 7.0);
}

TEST(QuantileTest, EndpointsAreMinMax) {
  std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_EQ(Quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, MedianInterpolates) {
  EXPECT_DOUBLE_EQ(Quantile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0, 3.0}), 2.0);
}

TEST(QuantileTest, TwentiethPercentile) {
  // Five sorted values: q=0.2 lands on index 0.8 -> between 1st and 2nd.
  EXPECT_DOUBLE_EQ(Quantile({10, 20, 30, 40, 50}, 0.2), 18.0);
}

TEST(QuantileTest, ClampsOutOfRangeQ) {
  std::vector<double> v{1.0, 2.0};
  EXPECT_EQ(Quantile(v, -0.5), 1.0);
  EXPECT_EQ(Quantile(v, 1.5), 2.0);
}

TEST(MeanTest, Basics) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0}), 3.0);
}

TEST(QuantilesTest, EmptyInputYieldsZeros) {
  std::vector<double> q = Quantiles({}, {0.5, 0.95, 0.99});
  EXPECT_EQ(q, (std::vector<double>{0.0, 0.0, 0.0}));
  EXPECT_TRUE(Quantiles({1.0}, {}).empty());
}

TEST(QuantilesTest, SingleValueIsEveryQuantile) {
  std::vector<double> q = Quantiles({42.0}, {0.0, 0.5, 0.99, 1.0});
  EXPECT_EQ(q, (std::vector<double>{42.0, 42.0, 42.0, 42.0}));
}

TEST(QuantilesTest, InterpolatesLikeQuantile) {
  std::vector<double> values{4.0, 1.0, 3.0, 2.0};
  std::vector<double> qs{0.0, 0.25, 0.5, 0.95, 1.0};
  std::vector<double> many = Quantiles(values, qs);
  ASSERT_EQ(many.size(), qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_DOUBLE_EQ(many[i], Quantile(values, qs[i])) << "q=" << qs[i];
  }
  EXPECT_DOUBLE_EQ(many[2], 2.5);    // interpolated median
  EXPECT_DOUBLE_EQ(many[3], 3.85);   // 0.95 * 3 = idx 2.85
}

TEST(QuantilesTest, ClampsOutOfRangeQ) {
  std::vector<double> q = Quantiles({1.0, 2.0}, {-1.0, 2.0});
  EXPECT_EQ(q, (std::vector<double>{1.0, 2.0}));
}

TEST(PercentileTest, MatchesQuantileScale) {
  std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 20), Quantile(v, 0.2));
  EXPECT_EQ(Percentile({}, 99), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 99), 7.0);
}

}  // namespace
}  // namespace wsflow
