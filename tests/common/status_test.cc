#include "src/common/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace wsflow {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad value");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad value");
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_FALSE(st.IsNotFound());
}

TEST(StatusTest, EveryFactoryMapsToItsCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::ConstraintViolation("x").IsConstraintViolation());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  Status st = Status::NotFound("missing thing");
  EXPECT_EQ(st.ToString(), "not-found: missing thing");
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "parse-error");
  EXPECT_EQ(StatusCodeToString(StatusCode::kConstraintViolation),
            "constraint-violation");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
            "deadline-exceeded");
}

TEST(StatusTest, CopyPreservesState) {
  Status st = Status::Internal("boom");
  Status copy = st;
  EXPECT_EQ(copy.code(), StatusCode::kInternal);
  EXPECT_EQ(copy.message(), "boom");
  EXPECT_EQ(st, copy);
}

TEST(StatusTest, CopyAssignOverError) {
  Status a = Status::Internal("one");
  Status b = Status::NotFound("two");
  a = b;
  EXPECT_TRUE(a.IsNotFound());
  EXPECT_EQ(a.message(), "two");
}

TEST(StatusTest, CopyAssignOkOverError) {
  Status a = Status::Internal("one");
  a = Status::OK();
  EXPECT_TRUE(a.ok());
}

TEST(StatusTest, MovePreservesState) {
  Status st = Status::OutOfRange("idx");
  Status moved = std::move(st);
  EXPECT_TRUE(moved.IsOutOfRange());
  EXPECT_EQ(moved.message(), "idx");
}

TEST(StatusTest, SelfAssignmentIsSafe) {
  Status st = Status::Internal("keep");
  Status& ref = st;
  st = ref;
  EXPECT_EQ(st.message(), "keep");
}

TEST(StatusTest, WithContextPrepends) {
  Status st = Status::ParseError("line 3");
  Status wrapped = st.WithContext("loading config");
  EXPECT_TRUE(wrapped.IsParseError());
  EXPECT_EQ(wrapped.message(), "loading config: line 3");
}

TEST(StatusTest, WithContextOnOkIsOk) {
  EXPECT_TRUE(Status::OK().WithContext("ignored").ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::Internal("x");
  EXPECT_EQ(os.str(), "internal: x");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Caller(int x) {
  WSFLOW_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Caller(1).ok());
  EXPECT_TRUE(Caller(-1).IsInvalidArgument());
}

}  // namespace
}  // namespace wsflow
