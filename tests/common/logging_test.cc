#include "src/common/logging.h"

#include <gtest/gtest.h>

namespace wsflow {
namespace {

/// RAII guard restoring the global log level after each test.
class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelRoundTrips) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST(LoggingTest, EmitsAtOrAboveLevel) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarning);
  ::testing::internal::CaptureStderr();
  WSFLOW_LOG(Warning) << "visible-warning";
  WSFLOW_LOG(Error) << "visible-error";
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("visible-warning"), std::string::npos);
  EXPECT_NE(out.find("visible-error"), std::string::npos);
  EXPECT_NE(out.find("[WARN"), std::string::npos);
  EXPECT_NE(out.find("[ERROR"), std::string::npos);
}

TEST(LoggingTest, SuppressesBelowLevel) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  WSFLOW_LOG(Debug) << "hidden-debug";
  WSFLOW_LOG(Info) << "hidden-info";
  WSFLOW_LOG(Warning) << "hidden-warning";
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out, "");
}

TEST(LoggingTest, SuppressedStatementsDoNotEvaluateOperands) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "costly";
  };
  WSFLOW_LOG(Debug) << expensive();
  EXPECT_EQ(evaluations, 0);
  ::testing::internal::CaptureStderr();
  WSFLOW_LOG(Error) << expensive();
  (void)::testing::internal::GetCapturedStderr();
  EXPECT_EQ(evaluations, 1);
}

TEST(LoggingTest, MessageIncludesFileBasename) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  WSFLOW_LOG(Info) << "locate-me";
  std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
  // Only the basename — no directory separators before it.
  EXPECT_EQ(out.find("tests/common"), std::string::npos);
}

TEST(LoggingTest, CheckPassesSilently) {
  ::testing::internal::CaptureStderr();
  WSFLOW_CHECK(1 + 1 == 2) << "never shown";
  WSFLOW_CHECK_EQ(4, 4);
  WSFLOW_CHECK_LT(1, 2);
  WSFLOW_CHECK_GE(2, 2);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ WSFLOW_CHECK(false) << "boom-note"; }, "Check failed");
  EXPECT_DEATH({ WSFLOW_CHECK_EQ(1, 2); }, "Check failed");
}

TEST(LoggingDeathTest, FatalLogAborts) {
  EXPECT_DEATH({ WSFLOW_LOG(Fatal) << "fatal-path"; }, "fatal-path");
}

}  // namespace
}  // namespace wsflow
