#include "src/common/backoff.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace wsflow {
namespace {

TEST(BackoffTest, SameSeedReplaysTheSameSchedule) {
  BackoffOptions options;
  options.jitter = 0.25;
  ExponentialBackoff a(options, 99);
  ExponentialBackoff b(options, 99);
  for (size_t i = 0; i < options.max_retries; ++i) {
    ASSERT_TRUE(a.ShouldRetry());
    ASSERT_TRUE(b.ShouldRetry());
    EXPECT_EQ(a.NextDelay(), b.NextDelay());
  }
  EXPECT_FALSE(a.ShouldRetry());
}

TEST(BackoffTest, DifferentSeedsJitterDifferently) {
  BackoffOptions options;
  options.jitter = 0.25;
  ExponentialBackoff a(options, 1);
  ExponentialBackoff b(options, 2);
  bool any_diff = false;
  for (size_t i = 0; i < options.max_retries; ++i) {
    if (a.NextDelay() != b.NextDelay()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(BackoffTest, ZeroJitterGrowsGeometricallyToTheCap) {
  BackoffOptions options;
  options.initial_delay_s = 0.01;
  options.multiplier = 2.0;
  options.max_delay_s = 0.05;
  options.max_retries = 6;
  options.jitter = 0.0;
  ExponentialBackoff backoff(options, 7);
  // 0.01, 0.02, 0.04, then capped at 0.05.
  EXPECT_DOUBLE_EQ(backoff.NextDelay(), 0.01);
  EXPECT_DOUBLE_EQ(backoff.NextDelay(), 0.02);
  EXPECT_DOUBLE_EQ(backoff.NextDelay(), 0.04);
  EXPECT_DOUBLE_EQ(backoff.NextDelay(), 0.05);
  EXPECT_DOUBLE_EQ(backoff.NextDelay(), 0.05);
}

TEST(BackoffTest, JitterStaysWithinTheFraction) {
  BackoffOptions options;
  options.initial_delay_s = 0.1;
  options.multiplier = 1.0;  // constant base isolates the jitter
  options.max_retries = 50;
  options.jitter = 0.2;
  ExponentialBackoff backoff(options, 3);
  while (backoff.ShouldRetry()) {
    double d = backoff.NextDelay();
    EXPECT_GE(d, 0.1 * 0.8);
    EXPECT_LE(d, 0.1 * 1.2);
  }
  EXPECT_EQ(backoff.attempts(), 50u);
}

TEST(BackoffTest, ZeroRetriesNeverRetries) {
  BackoffOptions options;
  options.max_retries = 0;
  ExponentialBackoff backoff(options, 5);
  EXPECT_FALSE(backoff.ShouldRetry());
  EXPECT_EQ(backoff.attempts(), 0u);
}

TEST(BackoffTest, ResetRestartsTheGrowthNotTheStream) {
  BackoffOptions options;
  options.jitter = 0.0;
  options.initial_delay_s = 0.01;
  options.multiplier = 2.0;
  ExponentialBackoff backoff(options, 11);
  EXPECT_DOUBLE_EQ(backoff.NextDelay(), 0.01);
  EXPECT_DOUBLE_EQ(backoff.NextDelay(), 0.02);
  backoff.Reset();
  EXPECT_EQ(backoff.attempts(), 0u);
  EXPECT_TRUE(backoff.ShouldRetry());
  EXPECT_DOUBLE_EQ(backoff.NextDelay(), 0.01);
}

}  // namespace
}  // namespace wsflow
