#include "src/common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace wsflow {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ZeroSeedWorks) {
  Rng rng(0);
  // Must not emit a degenerate all-zero stream.
  std::set<uint64_t> seen;
  for (int i = 0; i < 16; ++i) seen.insert(rng.NextUint64());
  EXPECT_GT(seen.size(), 10u);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(10), 10u);
  }
}

TEST(RngTest, BoundedOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, BoundedCoversAllValues) {
  Rng rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntRespectsClosedRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, NextIntDegenerateRange) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextInt(5, 5), 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, NextDoubleRange) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(31);
  std::vector<double> weights{1.0, 3.0};
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    size_t pick = rng.NextDiscrete(weights);
    ASSERT_LT(pick, 2u);
    if (pick == 1) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(RngTest, DiscreteSkipsZeroWeight) {
  Rng rng(37);
  std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.NextDiscrete(weights), 1u);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(43);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{9};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{9});
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(47);
  std::vector<int> v(32);
  for (int i = 0; i < 32; ++i) v[i] = i;
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // probability of identity is astronomically small
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(53);
  Rng child = parent.Fork();
  // The child must differ from a fresh parent continuation.
  bool all_equal = true;
  for (int i = 0; i < 16; ++i) {
    if (child.NextUint64() != parent.NextUint64()) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(61);
  Rng b(61);
  Rng ca = a.Fork();
  Rng cb = b.Fork();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(ca.NextUint64(), cb.NextUint64());
  }
}

}  // namespace
}  // namespace wsflow
