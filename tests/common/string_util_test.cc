#include "src/common/string_util.h"

#include <gtest/gtest.h>

namespace wsflow {
namespace {

TEST(SplitTest, Basic) {
  std::vector<std::string> parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split(",a,", ',').size(), 3u);
  EXPECT_EQ(Split("", ',').size(), 1u);
  EXPECT_EQ(Split("", ',')[0], "");
}

TEST(SplitTest, NoSeparator) {
  std::vector<std::string> parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(TrimTest, Whitespace) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"one"}, ","), "one");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("workflow.xml", "work"));
  EXPECT_FALSE(StartsWith("work", "workflow"));
  EXPECT_TRUE(EndsWith("workflow.xml", ".xml"));
  EXPECT_FALSE(EndsWith(".xml", "workflow.xml"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ParseInt64Test, Valid) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-17").value(), -17);
  EXPECT_EQ(ParseInt64("  8  ").value(), 8);
  EXPECT_EQ(ParseInt64("0").value(), 0);
}

TEST(ParseInt64Test, Invalid) {
  EXPECT_TRUE(ParseInt64("").status().IsParseError());
  EXPECT_TRUE(ParseInt64("12x").status().IsParseError());
  EXPECT_TRUE(ParseInt64("x12").status().IsParseError());
  EXPECT_TRUE(ParseInt64("1.5").status().IsParseError());
}

TEST(ParseDoubleTest, Valid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble(" 7 ").value(), 7.0);
  EXPECT_DOUBLE_EQ(ParseDouble("0.00666").value(), 0.00666);
}

TEST(ParseDoubleTest, Invalid) {
  EXPECT_TRUE(ParseDouble("").status().IsParseError());
  EXPECT_TRUE(ParseDouble("abc").status().IsParseError());
  EXPECT_TRUE(ParseDouble("1.2.3").status().IsParseError());
}

TEST(FormatDoubleTest, SignificantDigits) {
  EXPECT_EQ(FormatDouble(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(FormatDouble(12345.0, 3), "1.23e+04");
  EXPECT_EQ(FormatDouble(2.0, 6), "2");
}

TEST(FormatBitsTest, Units) {
  EXPECT_EQ(FormatBits(500), "500 bit");
  EXPECT_EQ(FormatBits(8000), "8 Kbit");
  EXPECT_EQ(FormatBits(2.5e6), "2.5 Mbit");
}

TEST(FormatSecondsTest, Units) {
  EXPECT_EQ(FormatSeconds(2.0), "2 s");
  EXPECT_EQ(FormatSeconds(0.0123), "12.3 ms");
  EXPECT_EQ(FormatSeconds(45e-6), "45 us");
  EXPECT_EQ(FormatSeconds(3e-9), "3 ns");
}

TEST(FormatSecondsTest, RoundTripParse) {
  // The numeric part of the rendering parses back.
  std::string s = FormatSeconds(0.5);
  EXPECT_EQ(s, "500 ms");
}

}  // namespace
}  // namespace wsflow
