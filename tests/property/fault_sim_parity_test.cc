// Zero-schedule bit-parity: SimulateWithFaults with an empty FaultSchedule
// must produce makespans, traces and busy accounting *byte-identical* to
// plain SimulateWorkflow — across every workload family, every topology
// family, and both contention switches. Both entry points drive the same
// event core, so this pins the fault machinery's zero-cost property: the
// fault hooks may not perturb a single double, RNG draw, or trace record
// when no fault ever fires.

#include <gtest/gtest.h>

#include <tuple>

#include "src/exp/config.h"
#include "src/sim/fault_sim.h"
#include "src/sim/faults.h"
#include "src/sim/simulator.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

using testing::RoundRobin;

void ExpectByteParity(const Workflow& w, const Network& n, const Mapping& m,
                      const SimOptions& sim_options) {
  FaultSchedule empty =
      WSFLOW_UNWRAP(FaultSchedule::FromEvents(n.num_servers(), {}));
  FaultSimOptions fault_options;
  fault_options.sim = sim_options;

  SimResult plain = WSFLOW_UNWRAP(SimulateWorkflow(w, n, m, sim_options));
  FaultSimResult faulted =
      WSFLOW_UNWRAP(SimulateWithFaults(w, n, m, empty, fault_options));

  ASSERT_EQ(faulted.completion_rate, 1.0);
  EXPECT_EQ(faulted.makespans, plain.makespans);
  EXPECT_EQ(faulted.mean_makespan, plain.mean_makespan);
  EXPECT_EQ(faulted.server_busy, plain.server_busy);
  EXPECT_EQ(faulted.trace, plain.trace);
  EXPECT_EQ(faulted.tokens_lost, 0u);
  EXPECT_EQ(faulted.messages_lost, 0u);
  EXPECT_EQ(faulted.retries, 0u);
  EXPECT_EQ(faulted.redispatches, 0u);
}

SimOptions ParitySimOptions(uint64_t seed, bool contention) {
  SimOptions options;
  options.num_runs = 5;
  options.seed = seed;
  options.record_trace = true;
  options.server_contention = contention;
  options.bus_contention = contention;
  return options;
}

TEST(FaultSimParityTest, HandBuiltWorkloads) {
  for (bool contention : {false, true}) {
    Workflow line = testing::SimpleLine(6, 50e6, 8000);
    Network bus = testing::SimpleBus(3);
    ExpectByteParity(line, bus, RoundRobin(6, 3),
                     ParitySimOptions(11, contention));

    Workflow graph = testing::AllDecisionGraph();
    Network wide = testing::SimpleBus(4);
    ExpectByteParity(graph, wide,
                     RoundRobin(graph.num_operations(), 4),
                     ParitySimOptions(12, contention));
  }
}

class FaultSimParityFamilyTest
    : public ::testing::TestWithParam<
          std::tuple<WorkloadKind, ExperimentTopology, uint64_t>> {};

TEST_P(FaultSimParityFamilyTest, EmptyScheduleIsByteIdentical) {
  auto [kind, topology, seed] = GetParam();
  ExperimentConfig cfg = MakeClassCConfig(kind);
  cfg.num_operations = 13;
  cfg.num_servers = 4;
  cfg.topology = topology;
  cfg.seed = seed;
  TrialInstance trial = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
  Mapping m = RoundRobin(trial.workflow.num_operations(),
                         trial.network.num_servers());
  ExpectByteParity(trial.workflow, trial.network, m,
                   ParitySimOptions(seed, false));
  ExpectByteParity(trial.workflow, trial.network, m,
                   ParitySimOptions(seed, true));
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, FaultSimParityFamilyTest,
    ::testing::Combine(
        ::testing::Values(WorkloadKind::kLine, WorkloadKind::kBushyGraph,
                          WorkloadKind::kLengthyGraph,
                          WorkloadKind::kHybridGraph),
        ::testing::Values(ExperimentTopology::kBus,
                          ExperimentTopology::kFatTree,
                          ExperimentTopology::kHierarchical),
        ::testing::Values(1u, 2u)),
    [](const ::testing::TestParamInfo<
        std::tuple<WorkloadKind, ExperimentTopology, uint64_t>>& info) {
      std::string name =
          std::string(WorkloadKindToString(std::get<0>(info.param))) + "_" +
          std::string(
              ExperimentTopologyToString(std::get<1>(info.param))) +
          "_s" + std::to_string(std::get<2>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace wsflow
