// Admissibility of the exact solvers' shared lower bound: for sampled
// prefix states, BoundTables::PrefixLowerBound must never exceed the cost
// of the best completion (found by exhaustively completing the prefix),
// and must be exact on total mappings. Masked variants check the same
// property against the surviving subnetwork.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/common/random.h"
#include "src/cost/cost_model.h"
#include "src/deploy/bound_tables.h"
#include "src/exp/config.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

DeployContext MakeContext(const TrialInstance& t) {
  DeployContext ctx;
  ctx.workflow = &t.workflow;
  ctx.network = &t.network;
  ctx.profile = t.profile.has_value() ? &*t.profile : nullptr;
  return ctx;
}

/// Minimum evaluated combined cost over every completion of `prefix_depth`
/// assigned positions, restricted to `servers`.
double BestCompletion(const BoundTables& tables, const CostModel& model,
                      const CostOptions& options, const ServerMask& mask,
                      Mapping m, size_t prefix_depth,
                      const std::vector<uint32_t>& servers) {
  const size_t free_ops = tables.num_ops() - prefix_depth;
  uint64_t combos = 1;
  for (size_t i = 0; i < free_ops; ++i) combos *= servers.size();
  double best = std::numeric_limits<double>::infinity();
  for (uint64_t code = 0; code < combos; ++code) {
    uint64_t rest = code;
    for (size_t i = 0; i < free_ops; ++i) {
      m.Assign(tables.order()[prefix_depth + i],
               ServerId(servers[rest % servers.size()]));
      rest /= servers.size();
    }
    Result<CostBreakdown> cost = mask.trivial()
                                     ? model.Evaluate(m, options)
                                     : model.Evaluate(m, options, mask);
    if (cost.ok()) best = std::min(best, cost->combined);
  }
  return best;
}

void CheckAdmissibleOnInstance(const TrialInstance& t, const ServerMask& mask,
                               uint64_t seed) {
  DeployContext ctx = MakeContext(t);
  BoundTables tables = WSFLOW_UNWRAP(BoundTables::Build(ctx, mask));
  CostModel model(t.workflow, t.network, ctx.profile);
  const std::vector<uint32_t>& servers = tables.alive_servers();
  Rng rng(seed);
  for (int sample = 0; sample < 12; ++sample) {
    const size_t depth = static_cast<size_t>(
        rng.NextInt(0, static_cast<int64_t>(tables.num_ops())));
    Mapping prefix(t.workflow.num_operations());
    for (size_t d = 0; d < depth; ++d) {
      prefix.Assign(tables.order()[d],
                    ServerId(servers[rng.NextBounded(servers.size())]));
    }
    const double h = tables.PrefixLowerBound(prefix, ctx.cost_options);
    const double best = BestCompletion(tables, model, ctx.cost_options, mask,
                                       prefix, depth, servers);
    if (std::isinf(best)) continue;  // No feasible completion to bound.
    EXPECT_LE(h, best + best * 1e-9 + 1e-12)
        << "depth " << depth << " sample " << sample;
    if (depth == tables.num_ops()) {
      // Total mapping: the bound collapses to the exact evaluated cost.
      EXPECT_NEAR(h, best, best * 1e-9 + 1e-12);
    }
  }
}

TEST(AStarAdmissibilityTest, LineBoundNeverExceedsBestCompletion) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
    cfg.num_operations = 6;
    cfg.num_servers = 3;
    cfg.seed = seed;
    TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
    CheckAdmissibleOnInstance(t, ServerMask(), 100 + seed);
  }
}

TEST(AStarAdmissibilityTest, GraphBoundNeverExceedsBestCompletion) {
  // AND (max), OR (min) and XOR (expectation) combinators all in play.
  TrialInstance t;
  t.workflow = testing::AllDecisionGraph();
  t.network = testing::SimpleBus(2, 1e9, 10e6);
  CheckAdmissibleOnInstance(t, ServerMask(), 7);

  ExperimentConfig cfg = MakeClassBConfig(WorkloadKind::kHybridGraph);
  cfg.num_operations = 8;
  cfg.num_servers = 3;
  TrialInstance drawn = WSFLOW_UNWRAP(DrawTrial(cfg, 1));
  CheckAdmissibleOnInstance(drawn, ServerMask(), 8);
}

TEST(AStarAdmissibilityTest, MaskedBoundNeverExceedsBestSurvivorCompletion) {
  // A non-trivial server mask: placements restricted to survivors, routes
  // through the down server severed, penalty averaged over survivors.
  Workflow w = testing::SimpleLine(6, 15e6, 40000);
  Network n = MakeLineNetwork({1e9, 2e9, 1.5e9, 1e9}, {1e7, 5e6, 8e6}).value();
  for (uint32_t down : {0u, 1u, 3u}) {
    ServerMask mask = ServerMask::AllAlive(4);
    mask.SetAlive(ServerId(down), false);
    TrialInstance t;
    t.workflow = w;
    t.network = n;
    CheckAdmissibleOnInstance(t, mask, 40 + down);
  }
}

TEST(AStarAdmissibilityTest, ExactOnTotalMappings) {
  // Dense check that the internal decomposed arithmetic agrees with the
  // canonical evaluator on total mappings, line and graph alike.
  for (WorkloadKind kind : {WorkloadKind::kLine, WorkloadKind::kBushyGraph}) {
    ExperimentConfig cfg = MakeClassAConfig(kind);
    cfg.num_operations = 7;
    cfg.num_servers = 3;
    TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
    DeployContext ctx = MakeContext(t);
    BoundTables tables = WSFLOW_UNWRAP(BoundTables::Build(ctx));
    CostModel model(t.workflow, t.network, ctx.profile);
    Rng rng(11);
    for (int sample = 0; sample < 25; ++sample) {
      Mapping m(t.workflow.num_operations());
      for (size_t i = 0; i < t.workflow.num_operations(); ++i) {
        m.Assign(OperationId(static_cast<uint32_t>(i)),
                 ServerId(static_cast<uint32_t>(
                     rng.NextBounded(cfg.num_servers))));
      }
      const double internal = tables.PrefixLowerBound(m, ctx.cost_options);
      const double evaluated =
          model.Evaluate(m, ctx.cost_options).value().combined;
      EXPECT_NEAR(internal, evaluated, evaluated * 1e-9 + 1e-15);
    }
  }
}

}  // namespace
}  // namespace wsflow
