// Property tests of the incremental evaluator: replay long random
// move/swap/undo sequences on every workload family and assert that the
// delta-evaluated state agrees with a cold CostModel::Evaluate at every
// step — the invariant the deploy-layer searches (hill climb, annealing,
// exhaustive) stand on. A separate suite walks mappings through
// disconnected (infinite-cost) states on a partitioned network and checks
// that delta and cold evaluation fail and recover together.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "src/common/random.h"
#include "src/cost/cost_model.h"
#include "src/cost/incremental.h"
#include "src/exp/config.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

/// Delta vs cold agreement bound (same terms summed in different orders).
constexpr double kTol = 1e-9;

void ExpectNear(double delta_value, double cold_value, size_t step) {
  EXPECT_LE(std::fabs(delta_value - cold_value),
            kTol * (1.0 + std::fabs(cold_value)))
      << "step " << step << ": delta=" << delta_value
      << " cold=" << cold_value;
}

void ExpectAgreement(IncrementalEvaluator& eval, const CostModel& model,
                     size_t step) {
  Result<CostBreakdown> cold = model.Evaluate(eval.mapping(), eval.options());
  Result<CostBreakdown> delta = eval.Evaluate();
  ASSERT_EQ(cold.ok(), delta.ok())
      << "step " << step << ": cold and delta disagree on evaluability";
  if (!cold.ok()) return;
  ExpectNear(delta->execution_time, cold->execution_time, step);
  ExpectNear(delta->time_penalty, cold->time_penalty, step);
  ExpectNear(delta->combined, cold->combined, step);
}

class IncrementalReplayTest
    : public ::testing::TestWithParam<std::tuple<WorkloadKind, uint64_t>> {};

TEST_P(IncrementalReplayTest, RandomReplayAgreesWithColdEvaluate) {
  auto [kind, seed] = GetParam();
  ExperimentConfig cfg = MakeClassCConfig(kind);
  cfg.num_operations = 13;
  cfg.num_servers = 4;
  cfg.seed = seed;
  TrialInstance trial = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
  const ExecutionProfile* profile =
      trial.profile.has_value() ? &*trial.profile : nullptr;
  CostModel model(trial.workflow, trial.network, profile);

  const size_t M = trial.workflow.num_operations();
  const size_t N = trial.network.num_servers();
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::RoundRobin(M, N)));
  ExpectAgreement(eval, model, 0);

  Rng rng(seed * 7919 + 17);
  for (size_t step = 1; step <= 300; ++step) {
    double dice = rng.NextDouble();
    if (dice < 0.55) {
      OperationId op(static_cast<uint32_t>(rng.NextBounded(M)));
      ServerId server(static_cast<uint32_t>(rng.NextBounded(N)));
      WSFLOW_ASSERT_OK(eval.Apply(op, server));
    } else if (dice < 0.75) {
      OperationId a(static_cast<uint32_t>(rng.NextBounded(M)));
      OperationId b(static_cast<uint32_t>(rng.NextBounded(M)));
      WSFLOW_ASSERT_OK(eval.Swap(a, b));
    } else if (eval.undo_depth() > 0) {
      WSFLOW_ASSERT_OK(eval.Undo());
    } else {
      OperationId op(static_cast<uint32_t>(rng.NextBounded(M)));
      WSFLOW_ASSERT_OK(eval.Move(op, ServerId(0)));
    }
    ExpectAgreement(eval, model, step);
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }

  // Unwind whatever history remains; agreement must survive the rewind too.
  size_t step = 301;
  while (eval.undo_depth() > 0) {
    WSFLOW_ASSERT_OK(eval.Undo());
    ExpectAgreement(eval, model, step++);
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, IncrementalReplayTest,
    ::testing::Combine(::testing::Values(WorkloadKind::kLine,
                                         WorkloadKind::kBushyGraph,
                                         WorkloadKind::kLengthyGraph,
                                         WorkloadKind::kHybridGraph),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<std::tuple<WorkloadKind, uint64_t>>&
           info) {
      return std::string(WorkloadKindToString(std::get<0>(info.param))) +
             "_s" + std::to_string(std::get<1>(info.param));
    });

/// Batch parity: ScoreMoves / ScoreSwaps must reproduce the per-candidate
/// Apply / Evaluate / Undo round-trip on every workload family, while a
/// random walk drags the working state through arbitrary mappings.
class IncrementalBatchParityTest
    : public ::testing::TestWithParam<std::tuple<WorkloadKind, uint64_t>> {};

TEST_P(IncrementalBatchParityTest, BatchScoresMatchRoundTrip) {
  auto [kind, seed] = GetParam();
  ExperimentConfig cfg = MakeClassCConfig(kind);
  cfg.num_operations = 13;
  cfg.num_servers = 4;
  cfg.seed = seed;
  TrialInstance trial = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
  const ExecutionProfile* profile =
      trial.profile.has_value() ? &*trial.profile : nullptr;
  CostModel model(trial.workflow, trial.network, profile);

  const size_t M = trial.workflow.num_operations();
  const size_t N = trial.network.num_servers();
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::RoundRobin(M, N)));

  std::vector<ServerId> fan;
  for (uint32_t s = 0; s < N; ++s) fan.push_back(ServerId(s));
  std::vector<double> move_costs(fan.size());

  Rng rng(seed * 6151 + 29);
  for (size_t step = 0; step < 60; ++step) {
    // Moves: every server (the current one included) for a random op.
    OperationId op(static_cast<uint32_t>(rng.NextBounded(M)));
    WSFLOW_ASSERT_OK(eval.ScoreMoves(op, fan, move_costs));
    for (size_t i = 0; i < fan.size(); ++i) {
      WSFLOW_ASSERT_OK(eval.Apply(op, fan[i]));
      Result<double> round_trip = eval.Combined();
      WSFLOW_ASSERT_OK(eval.Undo());
      if (round_trip.ok()) {
        ExpectNear(move_costs[i], *round_trip, step);
      } else {
        EXPECT_TRUE(std::isinf(move_costs[i]))
            << "step " << step << ": round trip failed ("
            << round_trip.status().ToString() << ") but batch scored "
            << move_costs[i];
      }
    }
    // Swaps: every partner (self and same-server partners included).
    OperationId a(static_cast<uint32_t>(rng.NextBounded(M)));
    std::vector<OperationId> partners;
    for (uint32_t b = 0; b < M; ++b) partners.push_back(OperationId(b));
    std::vector<double> swap_costs(partners.size());
    WSFLOW_ASSERT_OK(eval.ScoreSwaps(a, partners, swap_costs));
    for (size_t i = 0; i < partners.size(); ++i) {
      WSFLOW_ASSERT_OK(eval.Swap(a, partners[i]));
      Result<double> round_trip = eval.Combined();
      WSFLOW_ASSERT_OK(eval.Undo());
      if (round_trip.ok()) {
        ExpectNear(swap_costs[i], *round_trip, step);
      } else {
        EXPECT_TRUE(std::isinf(swap_costs[i]))
            << "step " << step << ": round trip failed but batch scored "
            << swap_costs[i];
      }
    }
    if (HasFatalFailure() || HasNonfatalFailure()) return;
    // Advance the walk and re-check the state batch scoring left behind.
    OperationId walk_op(static_cast<uint32_t>(rng.NextBounded(M)));
    ServerId walk_server(static_cast<uint32_t>(rng.NextBounded(N)));
    WSFLOW_ASSERT_OK(eval.Apply(walk_op, walk_server));
    eval.ClearHistory();
    ExpectAgreement(eval, model, step);
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, IncrementalBatchParityTest,
    ::testing::Combine(::testing::Values(WorkloadKind::kLine,
                                         WorkloadKind::kBushyGraph,
                                         WorkloadKind::kLengthyGraph,
                                         WorkloadKind::kHybridGraph),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<std::tuple<WorkloadKind, uint64_t>>&
           info) {
      return std::string(WorkloadKindToString(std::get<0>(info.param))) +
             "_s" + std::to_string(std::get<1>(info.param));
    });

TEST(IncrementalBatchDisconnectedTest, BatchAgreesAcrossIslands) {
  // Partitioned network: batch scores must go infinite exactly where the
  // round trip fails, and recover the moment a candidate reconnects.
  Workflow w = testing::SimpleLine(6, 20e6, 60648);
  Network n("islands");
  ServerId s0 = n.AddServer("s0", 1e9);
  ServerId s1 = n.AddServer("s1", 2e9);
  ServerId s2 = n.AddServer("s2", 1e9);
  ServerId s3 = n.AddServer("s3", 2e9);
  WSFLOW_UNWRAP(n.AddLink(s0, s1, 100e6));
  WSFLOW_UNWRAP(n.AddLink(s2, s3, 100e6));
  CostModel model(w, n);

  const size_t M = w.num_operations();
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::AllOnServer(M, s0)));
  std::vector<ServerId> fan = {s0, s1, s2, s3};
  std::vector<double> costs(fan.size());

  Rng rng(173);
  size_t infinite_candidates = 0;
  for (size_t step = 0; step < 80; ++step) {
    OperationId op(static_cast<uint32_t>(rng.NextBounded(M)));
    WSFLOW_ASSERT_OK(eval.ScoreMoves(op, fan, costs));
    for (size_t i = 0; i < fan.size(); ++i) {
      WSFLOW_ASSERT_OK(eval.Apply(op, fan[i]));
      Result<double> round_trip = eval.Combined();
      WSFLOW_ASSERT_OK(eval.Undo());
      if (round_trip.ok()) {
        ExpectNear(costs[i], *round_trip, step);
      } else {
        EXPECT_TRUE(std::isinf(costs[i])) << "step " << step;
        ++infinite_candidates;
      }
    }
    if (HasFatalFailure() || HasNonfatalFailure()) return;
    OperationId walk_op(static_cast<uint32_t>(rng.NextBounded(M)));
    ServerId walk_server(static_cast<uint32_t>(rng.NextBounded(4)));
    WSFLOW_ASSERT_OK(eval.Apply(walk_op, walk_server));
    eval.ClearHistory();
  }
  // The walk must actually have scored disconnected candidates.
  EXPECT_GT(infinite_candidates, 0u);
}

TEST(IncrementalDisconnectedReplayTest, FailsAndRecoversWithColdEvaluate) {
  // Two two-server islands: random replays routinely place linked
  // operations on different components, where both evaluators must report
  // FailedPrecondition, and must recover the moment the mapping reconnects.
  Workflow w = testing::SimpleLine(6, 20e6, 60648);
  Network n("islands");
  ServerId s0 = n.AddServer("s0", 1e9);
  ServerId s1 = n.AddServer("s1", 2e9);
  ServerId s2 = n.AddServer("s2", 1e9);
  ServerId s3 = n.AddServer("s3", 2e9);
  WSFLOW_UNWRAP(n.AddLink(s0, s1, 100e6));
  WSFLOW_UNWRAP(n.AddLink(s2, s3, 100e6));
  CostModel model(w, n);

  const size_t M = w.num_operations();
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::AllOnServer(M, s0)));

  Rng rng(99);
  size_t disconnected_steps = 0;
  for (size_t step = 1; step <= 200; ++step) {
    OperationId op(static_cast<uint32_t>(rng.NextBounded(M)));
    ServerId server(static_cast<uint32_t>(rng.NextBounded(4)));
    if (rng.NextDouble() < 0.7 || eval.undo_depth() == 0) {
      WSFLOW_ASSERT_OK(eval.Apply(op, server));
    } else {
      WSFLOW_ASSERT_OK(eval.Undo());
    }
    ExpectAgreement(eval, model, step);
    if (!model.Evaluate(eval.mapping()).ok()) ++disconnected_steps;
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }
  // The walk must actually have crossed infinite-cost territory.
  EXPECT_GT(disconnected_steps, 0u);
}

}  // namespace
}  // namespace wsflow
