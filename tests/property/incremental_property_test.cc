// Property tests of the incremental evaluator: replay long random
// move/swap/undo sequences on every workload family and assert that the
// delta-evaluated state agrees with a cold CostModel::Evaluate at every
// step — the invariant the deploy-layer searches (hill climb, annealing,
// exhaustive) stand on. A separate suite walks mappings through
// disconnected (infinite-cost) states on a partitioned network and checks
// that delta and cold evaluation fail and recover together.
//
// The load-index suites drive a default-tuned evaluator (O(log N) fairness
// penalty, per-fan edge memo) and a legacy-tuned twin (O(N) penalty, no
// memo) through identical walks: penalties must agree to 1e-9 everywhere —
// including across re-anchor boundaries — and batch scores with the memo
// enabled must be bit-identical to the memo-less path.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "src/common/random.h"
#include "src/cost/cost_model.h"
#include "src/cost/incremental.h"
#include "src/exp/config.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

/// Delta vs cold agreement bound (same terms summed in different orders).
constexpr double kTol = 1e-9;

void ExpectNear(double delta_value, double cold_value, size_t step) {
  EXPECT_LE(std::fabs(delta_value - cold_value),
            kTol * (1.0 + std::fabs(cold_value)))
      << "step " << step << ": delta=" << delta_value
      << " cold=" << cold_value;
}

void ExpectAgreement(IncrementalEvaluator& eval, const CostModel& model,
                     size_t step) {
  Result<CostBreakdown> cold = model.Evaluate(eval.mapping(), eval.options());
  Result<CostBreakdown> delta = eval.Evaluate();
  ASSERT_EQ(cold.ok(), delta.ok())
      << "step " << step << ": cold and delta disagree on evaluability";
  if (!cold.ok()) return;
  ExpectNear(delta->execution_time, cold->execution_time, step);
  ExpectNear(delta->time_penalty, cold->time_penalty, step);
  ExpectNear(delta->combined, cold->combined, step);
}

class IncrementalReplayTest
    : public ::testing::TestWithParam<std::tuple<WorkloadKind, uint64_t>> {};

TEST_P(IncrementalReplayTest, RandomReplayAgreesWithColdEvaluate) {
  auto [kind, seed] = GetParam();
  ExperimentConfig cfg = MakeClassCConfig(kind);
  cfg.num_operations = 13;
  cfg.num_servers = 4;
  cfg.seed = seed;
  TrialInstance trial = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
  const ExecutionProfile* profile =
      trial.profile.has_value() ? &*trial.profile : nullptr;
  CostModel model(trial.workflow, trial.network, profile);

  const size_t M = trial.workflow.num_operations();
  const size_t N = trial.network.num_servers();
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::RoundRobin(M, N)));
  ExpectAgreement(eval, model, 0);

  Rng rng(seed * 7919 + 17);
  for (size_t step = 1; step <= 300; ++step) {
    double dice = rng.NextDouble();
    if (dice < 0.55) {
      OperationId op(static_cast<uint32_t>(rng.NextBounded(M)));
      ServerId server(static_cast<uint32_t>(rng.NextBounded(N)));
      WSFLOW_ASSERT_OK(eval.Apply(op, server));
    } else if (dice < 0.75) {
      OperationId a(static_cast<uint32_t>(rng.NextBounded(M)));
      OperationId b(static_cast<uint32_t>(rng.NextBounded(M)));
      WSFLOW_ASSERT_OK(eval.Swap(a, b));
    } else if (eval.undo_depth() > 0) {
      WSFLOW_ASSERT_OK(eval.Undo());
    } else {
      OperationId op(static_cast<uint32_t>(rng.NextBounded(M)));
      WSFLOW_ASSERT_OK(eval.Move(op, ServerId(0)));
    }
    ExpectAgreement(eval, model, step);
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }

  // Unwind whatever history remains; agreement must survive the rewind too.
  size_t step = 301;
  while (eval.undo_depth() > 0) {
    WSFLOW_ASSERT_OK(eval.Undo());
    ExpectAgreement(eval, model, step++);
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, IncrementalReplayTest,
    ::testing::Combine(::testing::Values(WorkloadKind::kLine,
                                         WorkloadKind::kBushyGraph,
                                         WorkloadKind::kLengthyGraph,
                                         WorkloadKind::kHybridGraph),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<std::tuple<WorkloadKind, uint64_t>>&
           info) {
      return std::string(WorkloadKindToString(std::get<0>(info.param))) +
             "_s" + std::to_string(std::get<1>(info.param));
    });

/// Batch parity: ScoreMoves / ScoreSwaps must reproduce the per-candidate
/// Apply / Evaluate / Undo round-trip on every workload family, while a
/// random walk drags the working state through arbitrary mappings.
class IncrementalBatchParityTest
    : public ::testing::TestWithParam<std::tuple<WorkloadKind, uint64_t>> {};

TEST_P(IncrementalBatchParityTest, BatchScoresMatchRoundTrip) {
  auto [kind, seed] = GetParam();
  ExperimentConfig cfg = MakeClassCConfig(kind);
  cfg.num_operations = 13;
  cfg.num_servers = 4;
  cfg.seed = seed;
  TrialInstance trial = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
  const ExecutionProfile* profile =
      trial.profile.has_value() ? &*trial.profile : nullptr;
  CostModel model(trial.workflow, trial.network, profile);

  const size_t M = trial.workflow.num_operations();
  const size_t N = trial.network.num_servers();
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::RoundRobin(M, N)));

  std::vector<ServerId> fan;
  for (uint32_t s = 0; s < N; ++s) fan.push_back(ServerId(s));
  std::vector<double> move_costs(fan.size());

  Rng rng(seed * 6151 + 29);
  for (size_t step = 0; step < 60; ++step) {
    // Moves: every server (the current one included) for a random op.
    OperationId op(static_cast<uint32_t>(rng.NextBounded(M)));
    WSFLOW_ASSERT_OK(eval.ScoreMoves(op, fan, move_costs));
    for (size_t i = 0; i < fan.size(); ++i) {
      WSFLOW_ASSERT_OK(eval.Apply(op, fan[i]));
      Result<double> round_trip = eval.Combined();
      WSFLOW_ASSERT_OK(eval.Undo());
      if (round_trip.ok()) {
        ExpectNear(move_costs[i], *round_trip, step);
      } else {
        EXPECT_TRUE(std::isinf(move_costs[i]))
            << "step " << step << ": round trip failed ("
            << round_trip.status().ToString() << ") but batch scored "
            << move_costs[i];
      }
    }
    // Swaps: every partner (self and same-server partners included).
    OperationId a(static_cast<uint32_t>(rng.NextBounded(M)));
    std::vector<OperationId> partners;
    for (uint32_t b = 0; b < M; ++b) partners.push_back(OperationId(b));
    std::vector<double> swap_costs(partners.size());
    WSFLOW_ASSERT_OK(eval.ScoreSwaps(a, partners, swap_costs));
    for (size_t i = 0; i < partners.size(); ++i) {
      WSFLOW_ASSERT_OK(eval.Swap(a, partners[i]));
      Result<double> round_trip = eval.Combined();
      WSFLOW_ASSERT_OK(eval.Undo());
      if (round_trip.ok()) {
        ExpectNear(swap_costs[i], *round_trip, step);
      } else {
        EXPECT_TRUE(std::isinf(swap_costs[i]))
            << "step " << step << ": round trip failed but batch scored "
            << swap_costs[i];
      }
    }
    if (HasFatalFailure() || HasNonfatalFailure()) return;
    // Advance the walk and re-check the state batch scoring left behind.
    OperationId walk_op(static_cast<uint32_t>(rng.NextBounded(M)));
    ServerId walk_server(static_cast<uint32_t>(rng.NextBounded(N)));
    WSFLOW_ASSERT_OK(eval.Apply(walk_op, walk_server));
    eval.ClearHistory();
    ExpectAgreement(eval, model, step);
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, IncrementalBatchParityTest,
    ::testing::Combine(::testing::Values(WorkloadKind::kLine,
                                         WorkloadKind::kBushyGraph,
                                         WorkloadKind::kLengthyGraph,
                                         WorkloadKind::kHybridGraph),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<std::tuple<WorkloadKind, uint64_t>>&
           info) {
      return std::string(WorkloadKindToString(std::get<0>(info.param))) +
             "_s" + std::to_string(std::get<1>(info.param));
    });

TEST(IncrementalBatchDisconnectedTest, BatchAgreesAcrossIslands) {
  // Partitioned network: batch scores must go infinite exactly where the
  // round trip fails, and recover the moment a candidate reconnects.
  Workflow w = testing::SimpleLine(6, 20e6, 60648);
  Network n("islands");
  ServerId s0 = n.AddServer("s0", 1e9);
  ServerId s1 = n.AddServer("s1", 2e9);
  ServerId s2 = n.AddServer("s2", 1e9);
  ServerId s3 = n.AddServer("s3", 2e9);
  WSFLOW_UNWRAP(n.AddLink(s0, s1, 100e6));
  WSFLOW_UNWRAP(n.AddLink(s2, s3, 100e6));
  CostModel model(w, n);

  const size_t M = w.num_operations();
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::AllOnServer(M, s0)));
  std::vector<ServerId> fan = {s0, s1, s2, s3};
  std::vector<double> costs(fan.size());

  Rng rng(173);
  size_t infinite_candidates = 0;
  for (size_t step = 0; step < 80; ++step) {
    OperationId op(static_cast<uint32_t>(rng.NextBounded(M)));
    WSFLOW_ASSERT_OK(eval.ScoreMoves(op, fan, costs));
    for (size_t i = 0; i < fan.size(); ++i) {
      WSFLOW_ASSERT_OK(eval.Apply(op, fan[i]));
      Result<double> round_trip = eval.Combined();
      WSFLOW_ASSERT_OK(eval.Undo());
      if (round_trip.ok()) {
        ExpectNear(costs[i], *round_trip, step);
      } else {
        EXPECT_TRUE(std::isinf(costs[i])) << "step " << step;
        ++infinite_candidates;
      }
    }
    if (HasFatalFailure() || HasNonfatalFailure()) return;
    OperationId walk_op(static_cast<uint32_t>(rng.NextBounded(M)));
    ServerId walk_server(static_cast<uint32_t>(rng.NextBounded(4)));
    WSFLOW_ASSERT_OK(eval.Apply(walk_op, walk_server));
    eval.ClearHistory();
  }
  // The walk must actually have scored disconnected candidates.
  EXPECT_GT(infinite_candidates, 0u);
}

TEST(IncrementalDisconnectedReplayTest, FailsAndRecoversWithColdEvaluate) {
  // Two two-server islands: random replays routinely place linked
  // operations on different components, where both evaluators must report
  // FailedPrecondition, and must recover the moment the mapping reconnects.
  Workflow w = testing::SimpleLine(6, 20e6, 60648);
  Network n("islands");
  ServerId s0 = n.AddServer("s0", 1e9);
  ServerId s1 = n.AddServer("s1", 2e9);
  ServerId s2 = n.AddServer("s2", 1e9);
  ServerId s3 = n.AddServer("s3", 2e9);
  WSFLOW_UNWRAP(n.AddLink(s0, s1, 100e6));
  WSFLOW_UNWRAP(n.AddLink(s2, s3, 100e6));
  CostModel model(w, n);

  const size_t M = w.num_operations();
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::AllOnServer(M, s0)));

  Rng rng(99);
  size_t disconnected_steps = 0;
  for (size_t step = 1; step <= 200; ++step) {
    OperationId op(static_cast<uint32_t>(rng.NextBounded(M)));
    ServerId server(static_cast<uint32_t>(rng.NextBounded(4)));
    if (rng.NextDouble() < 0.7 || eval.undo_depth() == 0) {
      WSFLOW_ASSERT_OK(eval.Apply(op, server));
    } else {
      WSFLOW_ASSERT_OK(eval.Undo());
    }
    ExpectAgreement(eval, model, step);
    if (!model.Evaluate(eval.mapping()).ok()) ++disconnected_steps;
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }
  // The walk must actually have crossed infinite-cost territory.
  EXPECT_GT(disconnected_steps, 0u);
}

/// Legacy tuning: the PR 3 evaluation path — O(N) penalty, no edge memo.
EvalTuning LegacyTuning() {
  EvalTuning tuning;
  tuning.use_load_index = false;
  tuning.use_edge_memo = false;
  return tuning;
}

/// Load-index walks: a default-tuned evaluator and a legacy-tuned twin
/// replay the same random move/swap/undo sequence; the O(log N) penalty
/// must track the O(N) recompute to 1e-9 at every state. The fast twin
/// re-anchors every 17 moves so the walk crosses many rebuild points.
class IncrementalLoadIndexWalkTest
    : public ::testing::TestWithParam<std::tuple<WorkloadKind, uint64_t>> {};

TEST_P(IncrementalLoadIndexWalkTest, FastPenaltyTracksLegacyRecompute) {
  auto [kind, seed] = GetParam();
  ExperimentConfig cfg = MakeClassCConfig(kind);
  cfg.num_operations = 13;
  cfg.num_servers = 4;
  cfg.seed = seed;
  TrialInstance trial = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
  const ExecutionProfile* profile =
      trial.profile.has_value() ? &*trial.profile : nullptr;
  CostModel model(trial.workflow, trial.network, profile);

  const size_t M = trial.workflow.num_operations();
  const size_t N = trial.network.num_servers();
  EvalTuning fast_tuning;
  fast_tuning.reanchor_interval = 17;
  IncrementalEvaluator fast = WSFLOW_UNWRAP(IncrementalEvaluator::Bind(
      model, testing::RoundRobin(M, N), {}, fast_tuning));
  IncrementalEvaluator legacy = WSFLOW_UNWRAP(IncrementalEvaluator::Bind(
      model, testing::RoundRobin(M, N), {}, LegacyTuning()));
  ExpectNear(fast.TimePenalty(), legacy.TimePenalty(), 0);

  Rng rng(seed * 7919 + 17);
  for (size_t step = 1; step <= 300; ++step) {
    double dice = rng.NextDouble();
    if (dice < 0.55) {
      OperationId op(static_cast<uint32_t>(rng.NextBounded(M)));
      ServerId server(static_cast<uint32_t>(rng.NextBounded(N)));
      WSFLOW_ASSERT_OK(fast.Apply(op, server));
      WSFLOW_ASSERT_OK(legacy.Apply(op, server));
    } else if (dice < 0.75) {
      OperationId a(static_cast<uint32_t>(rng.NextBounded(M)));
      OperationId b(static_cast<uint32_t>(rng.NextBounded(M)));
      WSFLOW_ASSERT_OK(fast.Swap(a, b));
      WSFLOW_ASSERT_OK(legacy.Swap(a, b));
    } else if (fast.undo_depth() > 0) {
      WSFLOW_ASSERT_OK(fast.Undo());
      WSFLOW_ASSERT_OK(legacy.Undo());
    } else {
      OperationId op(static_cast<uint32_t>(rng.NextBounded(M)));
      WSFLOW_ASSERT_OK(fast.Move(op, ServerId(0)));
      WSFLOW_ASSERT_OK(legacy.Move(op, ServerId(0)));
    }
    ExpectNear(fast.TimePenalty(), legacy.TimePenalty(), step);
    // Combined() runs the re-anchor schedule (every 17 moves on the fast
    // twin); the two paths may re-sum at different points, so agreement is
    // to tolerance, not bitwise.
    Result<double> fast_cost = fast.Combined();
    Result<double> legacy_cost = legacy.Combined();
    ASSERT_EQ(fast_cost.ok(), legacy_cost.ok()) << "step " << step;
    if (fast_cost.ok()) ExpectNear(*fast_cost, *legacy_cost, step);
    ExpectAgreement(fast, model, step);
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }
  EXPECT_GT(fast.counters().penalty_fast, 0u);
  EXPECT_EQ(fast.counters().penalty_full, 0u);
  EXPECT_GT(legacy.counters().penalty_full, 0u);
  EXPECT_EQ(legacy.counters().penalty_fast, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, IncrementalLoadIndexWalkTest,
    ::testing::Combine(::testing::Values(WorkloadKind::kLine,
                                         WorkloadKind::kBushyGraph,
                                         WorkloadKind::kLengthyGraph,
                                         WorkloadKind::kHybridGraph),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<std::tuple<WorkloadKind, uint64_t>>&
           info) {
      return std::string(WorkloadKindToString(std::get<0>(info.param))) +
             "_s" + std::to_string(std::get<1>(info.param));
    });

TEST(IncrementalLoadIndexWalkTest, FastPenaltyTracksLegacyAcrossIslands) {
  // Disconnected states: the fairness penalty stays finite and well-defined
  // even where execution time is infinite, so the index must keep tracking
  // the O(N) recompute straight through infeasible territory.
  Workflow w = testing::SimpleLine(6, 20e6, 60648);
  Network n("islands");
  ServerId s0 = n.AddServer("s0", 1e9);
  ServerId s1 = n.AddServer("s1", 2e9);
  ServerId s2 = n.AddServer("s2", 1e9);
  ServerId s3 = n.AddServer("s3", 2e9);
  WSFLOW_UNWRAP(n.AddLink(s0, s1, 100e6));
  WSFLOW_UNWRAP(n.AddLink(s2, s3, 100e6));
  CostModel model(w, n);

  const size_t M = w.num_operations();
  IncrementalEvaluator fast = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::AllOnServer(M, s0)));
  IncrementalEvaluator legacy = WSFLOW_UNWRAP(IncrementalEvaluator::Bind(
      model, testing::AllOnServer(M, s0), {}, LegacyTuning()));

  Rng rng(99);
  size_t disconnected_steps = 0;
  for (size_t step = 1; step <= 200; ++step) {
    OperationId op(static_cast<uint32_t>(rng.NextBounded(M)));
    ServerId server(static_cast<uint32_t>(rng.NextBounded(4)));
    if (rng.NextDouble() < 0.7 || fast.undo_depth() == 0) {
      WSFLOW_ASSERT_OK(fast.Apply(op, server));
      WSFLOW_ASSERT_OK(legacy.Apply(op, server));
    } else {
      WSFLOW_ASSERT_OK(fast.Undo());
      WSFLOW_ASSERT_OK(legacy.Undo());
    }
    ExpectNear(fast.TimePenalty(), legacy.TimePenalty(), step);
    ExpectAgreement(fast, model, step);
    if (!model.Evaluate(fast.mapping()).ok()) ++disconnected_steps;
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }
  EXPECT_GT(disconnected_steps, 0u);
}

TEST(IncrementalLoadIndexReanchorTest, AgreementHoldsAcrossDefaultBoundary) {
  // The default tuning re-anchors (cold-order re-summation plus an index
  // rebuild) every 4096 moves; drift accumulated in the running sums and
  // the index resets there. Walk well past the boundary and hold the fast
  // penalty to the legacy recompute at every step, with cold-evaluation
  // spot checks concentrated around the re-anchor point.
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kHybridGraph);
  cfg.num_operations = 13;
  cfg.num_servers = 4;
  cfg.seed = 5;
  TrialInstance trial = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
  const ExecutionProfile* profile =
      trial.profile.has_value() ? &*trial.profile : nullptr;
  CostModel model(trial.workflow, trial.network, profile);

  const size_t M = trial.workflow.num_operations();
  const size_t N = trial.network.num_servers();
  IncrementalEvaluator fast = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::RoundRobin(M, N)));
  IncrementalEvaluator legacy = WSFLOW_UNWRAP(IncrementalEvaluator::Bind(
      model, testing::RoundRobin(M, N), {}, LegacyTuning()));
  ASSERT_EQ(fast.tuning().reanchor_interval, 4096u);

  Rng rng(515);
  for (size_t step = 1; step <= 4200; ++step) {
    OperationId op(static_cast<uint32_t>(rng.NextBounded(M)));
    ServerId server(static_cast<uint32_t>(rng.NextBounded(N)));
    WSFLOW_ASSERT_OK(fast.Apply(op, server));
    WSFLOW_ASSERT_OK(legacy.Apply(op, server));
    fast.ClearHistory();
    legacy.ClearHistory();
    // Combined() is what advances the re-anchor schedule.
    Result<double> fast_cost = fast.Combined();
    Result<double> legacy_cost = legacy.Combined();
    ASSERT_EQ(fast_cost.ok(), legacy_cost.ok()) << "step " << step;
    if (fast_cost.ok()) ExpectNear(*fast_cost, *legacy_cost, step);
    ExpectNear(fast.TimePenalty(), legacy.TimePenalty(), step);
    if (step % 64 == 0 || (step >= 4060 && step <= 4140)) {
      ExpectAgreement(fast, model, step);
    }
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }
}

/// Memo bit-identity: with the edge memo on, batch fans must return the
/// exact bit patterns of the memo-less path — the memo may only skip
/// recomputation, never change arithmetic.
class IncrementalMemoParityTest
    : public ::testing::TestWithParam<std::tuple<WorkloadKind, uint64_t>> {};

TEST_P(IncrementalMemoParityTest, BatchScoresBitIdenticalWithMemoOff) {
  auto [kind, seed] = GetParam();
  ExperimentConfig cfg = MakeClassCConfig(kind);
  cfg.num_operations = 13;
  cfg.num_servers = 4;
  cfg.seed = seed;
  TrialInstance trial = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
  const ExecutionProfile* profile =
      trial.profile.has_value() ? &*trial.profile : nullptr;
  CostModel model(trial.workflow, trial.network, profile);

  const size_t M = trial.workflow.num_operations();
  const size_t N = trial.network.num_servers();
  // The SoA grid supersedes the memo when on; pin it off on both sides so
  // this suite keeps exercising the memo fallback path.
  EvalTuning memo_tuning;
  memo_tuning.use_soa_fan = false;
  IncrementalEvaluator with_memo = WSFLOW_UNWRAP(IncrementalEvaluator::Bind(
      model, testing::RoundRobin(M, N), {}, memo_tuning));
  EvalTuning no_memo_tuning;
  no_memo_tuning.use_soa_fan = false;
  no_memo_tuning.use_edge_memo = false;
  IncrementalEvaluator no_memo = WSFLOW_UNWRAP(IncrementalEvaluator::Bind(
      model, testing::RoundRobin(M, N), {}, no_memo_tuning));

  // Duplicate fan entries force memo hits even on fans wider than the
  // server count.
  std::vector<ServerId> fan;
  for (uint32_t s = 0; s < N; ++s) fan.push_back(ServerId(s));
  for (uint32_t s = 0; s < N; ++s) fan.push_back(ServerId(s));
  std::vector<double> memo_costs(fan.size());
  std::vector<double> plain_costs(fan.size());

  Rng rng(seed * 6151 + 29);
  for (size_t step = 0; step < 60; ++step) {
    OperationId op(static_cast<uint32_t>(rng.NextBounded(M)));
    WSFLOW_ASSERT_OK(with_memo.ScoreMoves(op, fan, memo_costs));
    WSFLOW_ASSERT_OK(no_memo.ScoreMoves(op, fan, plain_costs));
    for (size_t i = 0; i < fan.size(); ++i) {
      EXPECT_EQ(memo_costs[i], plain_costs[i])
          << "step " << step << " move candidate " << i;
    }
    OperationId a(static_cast<uint32_t>(rng.NextBounded(M)));
    std::vector<OperationId> partners;
    for (uint32_t b = 0; b < M; ++b) partners.push_back(OperationId(b));
    std::vector<double> memo_swaps(partners.size());
    std::vector<double> plain_swaps(partners.size());
    WSFLOW_ASSERT_OK(with_memo.ScoreSwaps(a, partners, memo_swaps));
    WSFLOW_ASSERT_OK(no_memo.ScoreSwaps(a, partners, plain_swaps));
    for (size_t i = 0; i < partners.size(); ++i) {
      EXPECT_EQ(memo_swaps[i], plain_swaps[i])
          << "step " << step << " swap partner " << i;
    }
    if (HasFatalFailure() || HasNonfatalFailure()) return;
    OperationId walk_op(static_cast<uint32_t>(rng.NextBounded(M)));
    ServerId walk_server(static_cast<uint32_t>(rng.NextBounded(N)));
    WSFLOW_ASSERT_OK(with_memo.Apply(walk_op, walk_server));
    WSFLOW_ASSERT_OK(no_memo.Apply(walk_op, walk_server));
    with_memo.ClearHistory();
    no_memo.ClearHistory();
  }
  EXPECT_GT(with_memo.counters().edge_memo_hits, 0u);
  EXPECT_EQ(no_memo.counters().edge_memo_hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, IncrementalMemoParityTest,
    ::testing::Combine(::testing::Values(WorkloadKind::kLine,
                                         WorkloadKind::kBushyGraph,
                                         WorkloadKind::kLengthyGraph,
                                         WorkloadKind::kHybridGraph),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<std::tuple<WorkloadKind, uint64_t>>&
           info) {
      return std::string(WorkloadKindToString(std::get<0>(info.param))) +
             "_s" + std::to_string(std::get<1>(info.param));
    });

TEST(IncrementalMemoParityTest, BitIdenticalAcrossIslands) {
  // The memo caches the disconnected flag alongside the T_comm value, so
  // infinite candidates must stay bit-identical too.
  Workflow w = testing::SimpleLine(6, 20e6, 60648);
  Network n("islands");
  ServerId s0 = n.AddServer("s0", 1e9);
  ServerId s1 = n.AddServer("s1", 2e9);
  ServerId s2 = n.AddServer("s2", 1e9);
  ServerId s3 = n.AddServer("s3", 2e9);
  WSFLOW_UNWRAP(n.AddLink(s0, s1, 100e6));
  WSFLOW_UNWRAP(n.AddLink(s2, s3, 100e6));
  CostModel model(w, n);

  const size_t M = w.num_operations();
  EvalTuning memo_tuning;
  memo_tuning.use_soa_fan = false;  // exercise the memo, not the grid
  IncrementalEvaluator with_memo = WSFLOW_UNWRAP(IncrementalEvaluator::Bind(
      model, testing::AllOnServer(M, s0), {}, memo_tuning));
  EvalTuning no_memo_tuning;
  no_memo_tuning.use_soa_fan = false;
  no_memo_tuning.use_edge_memo = false;
  IncrementalEvaluator no_memo = WSFLOW_UNWRAP(IncrementalEvaluator::Bind(
      model, testing::AllOnServer(M, s0), {}, no_memo_tuning));

  std::vector<ServerId> fan = {s0, s1, s2, s3, s1, s3};
  std::vector<double> memo_costs(fan.size());
  std::vector<double> plain_costs(fan.size());

  Rng rng(173);
  size_t infinite_candidates = 0;
  for (size_t step = 0; step < 80; ++step) {
    OperationId op(static_cast<uint32_t>(rng.NextBounded(M)));
    WSFLOW_ASSERT_OK(with_memo.ScoreMoves(op, fan, memo_costs));
    WSFLOW_ASSERT_OK(no_memo.ScoreMoves(op, fan, plain_costs));
    for (size_t i = 0; i < fan.size(); ++i) {
      EXPECT_EQ(memo_costs[i], plain_costs[i])
          << "step " << step << " candidate " << i;
      if (std::isinf(memo_costs[i])) ++infinite_candidates;
    }
    if (HasFatalFailure() || HasNonfatalFailure()) return;
    OperationId walk_op(static_cast<uint32_t>(rng.NextBounded(M)));
    ServerId walk_server(static_cast<uint32_t>(rng.NextBounded(4)));
    WSFLOW_ASSERT_OK(with_memo.Apply(walk_op, walk_server));
    WSFLOW_ASSERT_OK(no_memo.Apply(walk_op, walk_server));
    with_memo.ClearHistory();
    no_memo.ClearHistory();
  }
  EXPECT_GT(infinite_candidates, 0u);
  EXPECT_GT(with_memo.counters().edge_memo_hits, 0u);
}

}  // namespace
}  // namespace wsflow
