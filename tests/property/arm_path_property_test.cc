// Property tests of the batched-fan fast paths added with the SoA fan
// grid and arm-only block-path invalidation.
//
// ArmPathParityTest drives a default-tuned evaluator (arm-only partial
// folds on) and a full-closure twin (use_arm_path off) through identical
// batch fans on every workload family: scores must agree to 1e-9 (the
// partial fold regroups sequence/XOR sums), and swap fans — which never
// annotate — must stay bit-identical.
//
// ArmPathMaskedTest exercises the DESIGN.md §9 hazard: under a
// non-trivial ServerMask only AND/OR branches may fold arm-only, and the
// frozen sibling fold must stay correct even when a masked walk flips a
// sibling arm to +infinity (severed route). Because max/min and the
// ok-AND are exact, masked parity is asserted bitwise.
//
// SoaGridParityTest pins the grid's bit-identity claim on the weighted
// topologies from the geo work (fat-tree, hierarchical WAN): grid-scored
// fans must reproduce the per-fan memo path bit-for-bit, and the
// default tuning must track the fully legacy path to 1e-9.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string_view>
#include <tuple>
#include <vector>

#include "src/common/random.h"
#include "src/cost/cost_model.h"
#include "src/cost/incremental.h"
#include "src/exp/config.h"
#include "src/network/server_mask.h"
#include "src/network/topology.h"
#include "src/workflow/probability.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

constexpr double kTol = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();

void ExpectNear(double lhs, double rhs, size_t step) {
  if (std::isinf(lhs) || std::isinf(rhs)) {
    EXPECT_EQ(lhs, rhs) << "step " << step;
    return;
  }
  EXPECT_LE(std::fabs(lhs - rhs), kTol * (1.0 + std::fabs(rhs)))
      << "step " << step << ": arm=" << lhs << " full=" << rhs;
}

/// Arm-only partial folds vs the full ancestor closure, over random
/// move/swap fans interleaved with a random walk of the working state.
class ArmPathParityTest
    : public ::testing::TestWithParam<std::tuple<WorkloadKind, uint64_t>> {};

TEST_P(ArmPathParityTest, PartialFoldsTrackFullClosure) {
  auto [kind, seed] = GetParam();
  ExperimentConfig cfg = MakeClassCConfig(kind);
  cfg.num_operations = 13;
  cfg.num_servers = 4;
  cfg.seed = seed;
  TrialInstance trial = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
  const ExecutionProfile* profile =
      trial.profile.has_value() ? &*trial.profile : nullptr;
  CostModel model(trial.workflow, trial.network, profile);

  const size_t M = trial.workflow.num_operations();
  const size_t N = trial.network.num_servers();
  IncrementalEvaluator arm_on = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::RoundRobin(M, N)));
  EvalTuning full_tuning;
  full_tuning.use_arm_path = false;
  IncrementalEvaluator arm_off = WSFLOW_UNWRAP(IncrementalEvaluator::Bind(
      model, testing::RoundRobin(M, N), {}, full_tuning));

  std::vector<ServerId> fan;
  for (uint32_t s = 0; s < N; ++s) fan.push_back(ServerId(s));
  std::vector<double> on_costs(fan.size());
  std::vector<double> off_costs(fan.size());

  Rng rng(seed * 6151 + 29);
  for (size_t step = 0; step < 60; ++step) {
    OperationId op(static_cast<uint32_t>(rng.NextBounded(M)));
    WSFLOW_ASSERT_OK(arm_on.ScoreMoves(op, fan, on_costs));
    WSFLOW_ASSERT_OK(arm_off.ScoreMoves(op, fan, off_costs));
    for (size_t i = 0; i < fan.size(); ++i) {
      ExpectNear(on_costs[i], off_costs[i], step);
    }
    // Swap fans rebuild the path per partner and never annotate, so the
    // flag must not change a single bit there.
    OperationId a(static_cast<uint32_t>(rng.NextBounded(M)));
    std::vector<OperationId> partners;
    for (uint32_t b = 0; b < M; ++b) partners.push_back(OperationId(b));
    std::vector<double> on_swaps(partners.size());
    std::vector<double> off_swaps(partners.size());
    WSFLOW_ASSERT_OK(arm_on.ScoreSwaps(a, partners, on_swaps));
    WSFLOW_ASSERT_OK(arm_off.ScoreSwaps(a, partners, off_swaps));
    for (size_t i = 0; i < partners.size(); ++i) {
      EXPECT_EQ(on_swaps[i], off_swaps[i])
          << "step " << step << " swap partner " << i;
    }
    if (HasFatalFailure() || HasNonfatalFailure()) return;
    OperationId walk_op(static_cast<uint32_t>(rng.NextBounded(M)));
    ServerId walk_server(static_cast<uint32_t>(rng.NextBounded(N)));
    WSFLOW_ASSERT_OK(arm_on.Apply(walk_op, walk_server));
    WSFLOW_ASSERT_OK(arm_off.Apply(walk_op, walk_server));
    arm_on.ClearHistory();
    arm_off.ClearHistory();
  }
  // Graph workloads must actually exercise the partial fold; the twin
  // must never take it. Line workflows skip the block path entirely.
  if (kind != WorkloadKind::kLine) {
    EXPECT_GT(arm_on.counters().arm_path_nodes, 0u);
    EXPECT_GT(arm_on.counters().full_path_nodes, 0u);
  }
  EXPECT_EQ(arm_off.counters().arm_path_nodes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ArmPathParityTest,
    ::testing::Combine(::testing::Values(WorkloadKind::kLine,
                                         WorkloadKind::kBushyGraph,
                                         WorkloadKind::kLengthyGraph,
                                         WorkloadKind::kHybridGraph),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<std::tuple<WorkloadKind, uint64_t>>&
           info) {
      return std::string(WorkloadKindToString(std::get<0>(info.param))) +
             "_s" + std::to_string(std::get<1>(info.param));
    });

ServerMask MaskWithout(size_t n, std::initializer_list<uint32_t> down) {
  ServerMask mask = ServerMask::AllAlive(n);
  for (uint32_t s : down) mask.SetAlive(ServerId(s), false);
  return mask;
}

/// s0 - s1 - s2 - s3 - s4 with s1 down: s0 stays alive but severed from
/// the {s2, s3, s4} component, so placements on s0 score +infinity.
Network SeveredLine() {
  std::vector<double> powers = {1e9, 2e9, 1e9, 2e9, 3e9};
  std::vector<double> speeds(4, 100e6);
  return WSFLOW_UNWRAP(MakeLineNetwork(powers, speeds));
}

TEST(ArmPathMaskedTest, SiblingArmAtInfinityFoldsBitIdentical) {
  // The §9 hazard, deterministically: freeze a branch whose sibling arm
  // is +infinity (AND sibling `c`, then OR sibling `g`, moved to the
  // severed survivor s0) and fan the other arm. The frozen rest carries
  // the infinite sibling; arm-only scores must match the full closure
  // bit-for-bit.
  Workflow w = testing::AllDecisionGraph();
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  Network n = SeveredLine();
  CostModel model(w, n, &profile);
  const size_t M = w.num_operations();

  EvalTuning arm_tuning;
  arm_tuning.mask = MaskWithout(5, {1});
  EvalTuning full_tuning = arm_tuning;
  full_tuning.use_arm_path = false;
  IncrementalEvaluator arm_on = WSFLOW_UNWRAP(IncrementalEvaluator::Bind(
      model, testing::AllOnServer(M, ServerId(2)), CostOptions{}, arm_tuning));
  IncrementalEvaluator arm_off = WSFLOW_UNWRAP(IncrementalEvaluator::Bind(
      model, testing::AllOnServer(M, ServerId(2)), CostOptions{},
      full_tuning));

  auto by_name = [&w](std::string_view name) {
    for (uint32_t i = 0; i < w.num_operations(); ++i) {
      if (w.operation(OperationId(i)).name() == name) return OperationId(i);
    }
    ADD_FAILURE() << "no operation named " << name;
    return OperationId(0);
  };
  const OperationId kAndArmB = by_name("b"), kAndArmC = by_name("c");
  const OperationId kOrArmF = by_name("f"), kOrArmG = by_name("g");
  std::vector<ServerId> fan = {ServerId(0), ServerId(2), ServerId(3),
                               ServerId(4)};
  std::vector<double> on_costs(fan.size());
  std::vector<double> off_costs(fan.size());

  struct Hazard {
    OperationId sever;  // sibling arm flipped to +infinity
    OperationId probe;  // op fanned in the other arm
  };
  for (const Hazard& h : {Hazard{kAndArmC, kAndArmB},
                          Hazard{kOrArmG, kOrArmF}}) {
    WSFLOW_ASSERT_OK(arm_on.Apply(h.sever, ServerId(0)));
    WSFLOW_ASSERT_OK(arm_off.Apply(h.sever, ServerId(0)));
    WSFLOW_ASSERT_OK(arm_on.ScoreMoves(h.probe, fan, on_costs));
    WSFLOW_ASSERT_OK(arm_off.ScoreMoves(h.probe, fan, off_costs));
    size_t infinite = 0;
    for (size_t i = 0; i < fan.size(); ++i) {
      EXPECT_EQ(on_costs[i], off_costs[i])
          << "sever op" << h.sever.value << " probe op" << h.probe.value
          << " candidate " << i;
      if (std::isinf(on_costs[i])) ++infinite;
    }
    // The severed sibling poisons the whole block: every candidate of the
    // probed arm is infinite, straight through the frozen rest.
    EXPECT_EQ(infinite, fan.size());
    WSFLOW_ASSERT_OK(arm_on.Undo());
    WSFLOW_ASSERT_OK(arm_off.Undo());
  }
}

TEST(ArmPathMaskedTest, MaskedWalkStaysBitIdenticalToFullClosure) {
  // Random masked walk over the alive servers, including severed states:
  // only AND/OR branches may fold arm-only under the mask, and those
  // folds are exact, so every batch score must stay bit-identical.
  Workflow w = testing::AllDecisionGraph();
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  Network n = SeveredLine();
  CostModel model(w, n, &profile);
  const size_t M = w.num_operations();

  EvalTuning arm_tuning;
  arm_tuning.mask = MaskWithout(5, {1});
  EvalTuning full_tuning = arm_tuning;
  full_tuning.use_arm_path = false;
  IncrementalEvaluator arm_on = WSFLOW_UNWRAP(IncrementalEvaluator::Bind(
      model, testing::AllOnServer(M, ServerId(2)), CostOptions{}, arm_tuning));
  IncrementalEvaluator arm_off = WSFLOW_UNWRAP(IncrementalEvaluator::Bind(
      model, testing::AllOnServer(M, ServerId(2)), CostOptions{},
      full_tuning));

  const std::vector<ServerId> alive = {ServerId(0), ServerId(2), ServerId(3),
                                       ServerId(4)};
  std::vector<double> on_costs(alive.size());
  std::vector<double> off_costs(alive.size());

  Rng rng(431);
  size_t infinite_candidates = 0;
  for (size_t step = 0; step < 80; ++step) {
    OperationId op(static_cast<uint32_t>(rng.NextBounded(M)));
    WSFLOW_ASSERT_OK(arm_on.ScoreMoves(op, alive, on_costs));
    WSFLOW_ASSERT_OK(arm_off.ScoreMoves(op, alive, off_costs));
    for (size_t i = 0; i < alive.size(); ++i) {
      EXPECT_EQ(on_costs[i], off_costs[i])
          << "step " << step << " candidate " << i;
      if (on_costs[i] == kInf) ++infinite_candidates;
    }
    if (HasFatalFailure() || HasNonfatalFailure()) return;
    OperationId walk_op(static_cast<uint32_t>(rng.NextBounded(M)));
    ServerId walk_server = alive[rng.NextBounded(alive.size())];
    WSFLOW_ASSERT_OK(arm_on.Apply(walk_op, walk_server));
    WSFLOW_ASSERT_OK(arm_off.Apply(walk_op, walk_server));
    arm_on.ClearHistory();
    arm_off.ClearHistory();
  }
  // The walk must have crossed +infinity territory, and the masked gate
  // must still have allowed some branch folds.
  EXPECT_GT(infinite_candidates, 0u);
  EXPECT_GT(arm_on.counters().arm_path_nodes, 0u);
  EXPECT_EQ(arm_off.counters().arm_path_nodes, 0u);
}

/// Weighted topologies from the geo work: heterogeneous powers plus
/// propagation-weighted links, where T_comm terms vary per server pair.
Network WeightedFatTree() {
  FatTreeOptions options;
  options.spines = 2;
  options.racks = 2;
  options.rack_size = 2;
  options.powers_hz = {1e9, 2e9, 1.5e9, 3e9, 2.5e9, 1e9};
  return WSFLOW_UNWRAP(MakeFatTreeNetwork(options));
}

Network WeightedHierarchical() {
  HierarchicalOptions options;
  options.regions = 2;
  options.clusters_per_region = 2;
  options.cluster_size = 2;
  options.powers_hz = {1e9, 2e9, 3e9, 1.5e9, 2.5e9, 1e9, 2e9, 3e9};
  return WSFLOW_UNWRAP(MakeHierarchicalNetwork(options));
}

/// Grid vs memo bit-identity and default vs legacy 1e-9 agreement on one
/// weighted network, over interleaved move/swap fans and a random walk.
void RunSoaGridParity(const Network& n, uint64_t seed) {
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kHybridGraph);
  cfg.num_operations = 13;
  cfg.num_servers = 4;  // trial network is discarded below
  cfg.seed = seed;
  TrialInstance trial = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
  const ExecutionProfile* profile =
      trial.profile.has_value() ? &*trial.profile : nullptr;
  CostModel model(trial.workflow, n, profile);

  const size_t M = trial.workflow.num_operations();
  const size_t N = n.num_servers();
  IncrementalEvaluator grid = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::RoundRobin(M, N)));
  EvalTuning memo_tuning;
  memo_tuning.use_soa_fan = false;
  IncrementalEvaluator memo = WSFLOW_UNWRAP(IncrementalEvaluator::Bind(
      model, testing::RoundRobin(M, N), {}, memo_tuning));
  EvalTuning legacy_tuning;
  legacy_tuning.use_load_index = false;
  legacy_tuning.use_edge_memo = false;
  legacy_tuning.use_soa_fan = false;
  legacy_tuning.use_arm_path = false;
  IncrementalEvaluator legacy = WSFLOW_UNWRAP(IncrementalEvaluator::Bind(
      model, testing::RoundRobin(M, N), {}, legacy_tuning));

  std::vector<ServerId> fan;
  for (uint32_t s = 0; s < N; ++s) fan.push_back(ServerId(s));
  std::vector<double> grid_costs(fan.size());
  std::vector<double> memo_costs(fan.size());
  std::vector<double> legacy_costs(fan.size());

  Rng rng(seed * 7919 + 17);
  for (size_t step = 0; step < 40; ++step) {
    OperationId op(static_cast<uint32_t>(rng.NextBounded(M)));
    WSFLOW_ASSERT_OK(grid.ScoreMoves(op, fan, grid_costs));
    WSFLOW_ASSERT_OK(memo.ScoreMoves(op, fan, memo_costs));
    WSFLOW_ASSERT_OK(legacy.ScoreMoves(op, fan, legacy_costs));
    for (size_t i = 0; i < fan.size(); ++i) {
      EXPECT_EQ(grid_costs[i], memo_costs[i])
          << "step " << step << " move candidate " << i;
      ExpectNear(grid_costs[i], legacy_costs[i], step);
    }
    OperationId a(static_cast<uint32_t>(rng.NextBounded(M)));
    std::vector<OperationId> partners;
    for (uint32_t b = 0; b < M; ++b) partners.push_back(OperationId(b));
    std::vector<double> grid_swaps(partners.size());
    std::vector<double> memo_swaps(partners.size());
    std::vector<double> legacy_swaps(partners.size());
    WSFLOW_ASSERT_OK(grid.ScoreSwaps(a, partners, grid_swaps));
    WSFLOW_ASSERT_OK(memo.ScoreSwaps(a, partners, memo_swaps));
    WSFLOW_ASSERT_OK(legacy.ScoreSwaps(a, partners, legacy_swaps));
    for (size_t i = 0; i < partners.size(); ++i) {
      EXPECT_EQ(grid_swaps[i], memo_swaps[i])
          << "step " << step << " swap partner " << i;
      ExpectNear(grid_swaps[i], legacy_swaps[i], step);
    }
    if (::testing::Test::HasFailure()) return;
    OperationId walk_op(static_cast<uint32_t>(rng.NextBounded(M)));
    ServerId walk_server(static_cast<uint32_t>(rng.NextBounded(N)));
    WSFLOW_ASSERT_OK(grid.Apply(walk_op, walk_server));
    WSFLOW_ASSERT_OK(memo.Apply(walk_op, walk_server));
    WSFLOW_ASSERT_OK(legacy.Apply(walk_op, walk_server));
    grid.ClearHistory();
    memo.ClearHistory();
    legacy.ClearHistory();
  }
  // Each twin must have taken its intended T_comm path.
  EXPECT_GT(grid.counters().grid_hits, 0u);
  EXPECT_GT(grid.counters().soa_fans, 0u);
  EXPECT_EQ(grid.counters().edge_memo_hits, 0u);
  EXPECT_GT(memo.counters().edge_memo_hits, 0u);
  EXPECT_EQ(memo.counters().grid_hits, 0u);
  EXPECT_EQ(legacy.counters().grid_hits, 0u);
  EXPECT_EQ(legacy.counters().edge_memo_hits, 0u);
}

TEST(SoaGridParityTest, BitIdenticalToMemoOnWeightedFatTree) {
  RunSoaGridParity(WeightedFatTree(), 11);
}

TEST(SoaGridParityTest, BitIdenticalToMemoOnWeightedHierarchical) {
  RunSoaGridParity(WeightedHierarchical(), 12);
}

}  // namespace
}  // namespace wsflow
