// Geo-distributed deployment properties.
//
// 1. The incremental evaluator's 1e-9 delta-vs-cold contract must hold on
//    general weighted graphs — fat trees, hierarchical WANs and random
//    connected networks — masked and unmasked, not just on the paper's
//    uniform bus/line topologies.
// 2. The "-geo" locality wrappers must never lose to their locality-blind
//    base algorithm on any hierarchical instance (argmin construction),
//    and must strictly win on the committed WAN exemplar.
// 3. The parallel searches stay thread-count invariant on WAN topologies:
//    the weighted route tables are deterministic, so annealing-par and
//    climb-par return identical mappings for any --threads.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/cost/cost_model.h"
#include "src/cost/incremental.h"
#include "src/deploy/algorithm.h"
#include "src/deploy/geo.h"
#include "src/deploy/parallel.h"
#include "src/exp/config.h"
#include "src/network/serialization.h"
#include "src/workflow/serialization.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

constexpr double kTol = 1e-9;

void ExpectNear(double delta_value, double cold_value, size_t step) {
  EXPECT_LE(std::fabs(delta_value - cold_value),
            kTol * (1.0 + std::fabs(cold_value)))
      << "step " << step << ": delta=" << delta_value
      << " cold=" << cold_value;
}

void ExpectAgreement(IncrementalEvaluator& eval, const CostModel& model,
                     const ServerMask& mask, size_t step) {
  Result<CostBreakdown> cold =
      mask.trivial() ? model.Evaluate(eval.mapping(), eval.options())
                     : model.Evaluate(eval.mapping(), eval.options(), mask);
  Result<CostBreakdown> delta = eval.Evaluate();
  ASSERT_EQ(cold.ok(), delta.ok())
      << "step " << step << ": cold and delta disagree on evaluability";
  if (!cold.ok()) return;
  ExpectNear(delta->execution_time, cold->execution_time, step);
  ExpectNear(delta->time_penalty, cold->time_penalty, step);
  ExpectNear(delta->combined, cold->combined, step);
}

enum class WanFamily { kFatTree, kHierarchical, kRandom };

const char* WanFamilyName(WanFamily f) {
  switch (f) {
    case WanFamily::kFatTree: return "fattree";
    case WanFamily::kHierarchical: return "hier";
    case WanFamily::kRandom: return "random";
  }
  return "unknown";
}

Network MakeWanNetwork(WanFamily family, uint64_t seed) {
  switch (family) {
    case WanFamily::kFatTree: {
      FatTreeOptions opts;
      opts.spines = 2;
      opts.racks = 2;
      opts.rack_size = 3;
      opts.powers_hz = {1e9, 2e9, 3e9, 1e9, 2e9, 3e9, 1e9, 2e9};
      return WSFLOW_UNWRAP(MakeFatTreeNetwork(opts));
    }
    case WanFamily::kHierarchical: {
      HierarchicalOptions opts;
      opts.regions = 2;
      opts.clusters_per_region = 2;
      opts.cluster_size = 2;
      opts.powers_hz = {1e9, 2e9, 3e9, 1e9, 2e9, 3e9, 1e9, 2e9};
      return WSFLOW_UNWRAP(MakeHierarchicalNetwork(opts));
    }
    case WanFamily::kRandom: {
      RandomNetworkParams params;
      params.num_servers = 8;
      params.extra_links = 6;
      params.seed = seed;
      return WSFLOW_UNWRAP(MakeRandomConnectedNetwork(params));
    }
  }
  WSFLOW_CHECK(false);
}

/// Random replay on weighted graphs: delta must match cold to 1e-9 at
/// every state, masked (one down leaf, moves restricted to survivors)
/// and unmasked.
class IncrementalWeightedNetworkTest
    : public ::testing::TestWithParam<
          std::tuple<WanFamily, uint64_t, bool>> {};

TEST_P(IncrementalWeightedNetworkTest, ReplayAgreesWithColdEvaluate) {
  auto [family, seed, masked] = GetParam();
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kHybridGraph);
  cfg.num_operations = 13;
  cfg.seed = seed;
  TrialInstance trial = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
  Network network = MakeWanNetwork(family, seed);
  const ExecutionProfile* profile =
      trial.profile.has_value() ? &*trial.profile : nullptr;
  CostModel model(trial.workflow, network, profile);

  const size_t M = trial.workflow.num_operations();
  const size_t N = network.num_servers();
  EvalTuning tuning;
  if (masked) {
    // Down the last server: a rack/cluster leaf on the structured
    // families, an arbitrary node on the random one.
    tuning.mask = ServerMask::AllAlive(N);
    tuning.mask.SetAlive(ServerId(static_cast<uint32_t>(N - 1)), false);
  }
  std::vector<ServerId> alive;
  for (uint32_t s = 0; s < N; ++s) {
    if (tuning.mask.alive(ServerId(s))) alive.push_back(ServerId(s));
  }
  Mapping initial(M);
  for (size_t i = 0; i < M; ++i) {
    initial.Assign(OperationId(static_cast<uint32_t>(i)),
                   alive[i % alive.size()]);
  }
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, initial, {}, tuning));
  ExpectAgreement(eval, model, tuning.mask, 0);

  Rng rng(seed * 7919 + 17);
  for (size_t step = 1; step <= 250; ++step) {
    double dice = rng.NextDouble();
    if (dice < 0.55) {
      OperationId op(static_cast<uint32_t>(rng.NextBounded(M)));
      ServerId server = alive[rng.NextBounded(alive.size())];
      WSFLOW_ASSERT_OK(eval.Apply(op, server));
    } else if (dice < 0.75) {
      OperationId a(static_cast<uint32_t>(rng.NextBounded(M)));
      OperationId b(static_cast<uint32_t>(rng.NextBounded(M)));
      WSFLOW_ASSERT_OK(eval.Swap(a, b));
    } else if (eval.undo_depth() > 0) {
      WSFLOW_ASSERT_OK(eval.Undo());
    } else {
      OperationId op(static_cast<uint32_t>(rng.NextBounded(M)));
      WSFLOW_ASSERT_OK(eval.Move(op, alive[0]));
    }
    ExpectAgreement(eval, model, tuning.mask, step);
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }
  while (eval.undo_depth() > 0) {
    WSFLOW_ASSERT_OK(eval.Undo());
  }
  ExpectAgreement(eval, model, tuning.mask, 9999);
}

INSTANTIATE_TEST_SUITE_P(
    WanFamilies, IncrementalWeightedNetworkTest,
    ::testing::Combine(::testing::Values(WanFamily::kFatTree,
                                         WanFamily::kHierarchical,
                                         WanFamily::kRandom),
                       ::testing::Values(1u, 2u, 3u),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<WanFamily, uint64_t, bool>>&
           info) {
      return std::string(WanFamilyName(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_masked" : "_full");
    });

/// Hierarchical instances for the geo properties, drawn through the
/// experiment harness so powers vary per server.
TrialInstance DrawHierTrial(WorkloadKind kind, uint64_t seed) {
  ExperimentConfig cfg = MakeClassCConfig(kind);
  cfg.num_operations = 13;
  cfg.seed = seed;
  cfg.topology = ExperimentTopology::kHierarchical;
  cfg.hierarchical.regions = 2;
  cfg.hierarchical.clusters_per_region = 2;
  cfg.hierarchical.cluster_size = 2;
  return WSFLOW_UNWRAP(DrawTrial(cfg, 0));
}

TEST(GeoSeedTest, NoZonesMeansNoSeed) {
  Workflow w = testing::SimpleLine(5);
  Network bus = testing::SimpleBus(4);
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &bus;
  EXPECT_FALSE(BuildZoneLocalitySeed(ctx).has_value());
  // A single zone carries no locality signal either.
  Network flat("flat");
  flat.AddServer("a", 1e9, "only");
  flat.AddServer("b", 1e9, "only");
  WSFLOW_UNWRAP(flat.AddLink(ServerId(0), ServerId(1), 1e8));
  ctx.network = &flat;
  EXPECT_FALSE(BuildZoneLocalitySeed(ctx).has_value());
}

TEST(GeoSeedTest, HierSeedIsTotalAndValid) {
  TrialInstance trial = DrawHierTrial(WorkloadKind::kHybridGraph, 5);
  DeployContext ctx;
  ctx.workflow = &trial.workflow;
  ctx.network = &trial.network;
  ctx.profile = trial.profile.has_value() ? &*trial.profile : nullptr;
  std::optional<Mapping> seed = BuildZoneLocalitySeed(ctx);
  ASSERT_TRUE(seed.has_value());
  WSFLOW_ASSERT_OK(seed->ValidateAgainst(trial.workflow, trial.network));
}

class GeoNeverLosesTest
    : public ::testing::TestWithParam<std::tuple<WorkloadKind, uint64_t>> {};

TEST_P(GeoNeverLosesTest, GeoVariantAtMostBaseCost) {
  auto [kind, seed] = GetParam();
  TrialInstance trial = DrawHierTrial(kind, seed);
  DeployContext ctx;
  ctx.workflow = &trial.workflow;
  ctx.network = &trial.network;
  ctx.profile = trial.profile.has_value() ? &*trial.profile : nullptr;
  ctx.seed = seed;
  CostModel model(trial.workflow, trial.network, ctx.profile);
  for (const char* base : {"heavy-ops", "fltr2", "fair-load"}) {
    Mapping base_m = WSFLOW_UNWRAP(RunAlgorithm(base, ctx));
    Mapping geo_m =
        WSFLOW_UNWRAP(RunAlgorithm(std::string(base) + "-geo", ctx));
    CostBreakdown base_cost =
        WSFLOW_UNWRAP(model.Evaluate(base_m, ctx.cost_options));
    CostBreakdown geo_cost =
        WSFLOW_UNWRAP(model.Evaluate(geo_m, ctx.cost_options));
    EXPECT_LE(geo_cost.combined, base_cost.combined)
        << base << "-geo lost to " << base << " on seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    HierInstances, GeoNeverLosesTest,
    ::testing::Combine(::testing::Values(WorkloadKind::kLine,
                                         WorkloadKind::kBushyGraph,
                                         WorkloadKind::kLengthyGraph,
                                         WorkloadKind::kHybridGraph),
                       ::testing::Values(1u, 2u, 3u, 4u)),
    [](const ::testing::TestParamInfo<std::tuple<WorkloadKind, uint64_t>>&
           info) {
      return std::string(WorkloadKindToString(std::get<0>(info.param))) +
             "_s" + std::to_string(std::get<1>(info.param));
    });

TEST(GeoExemplarTest, StrictWinOnCommittedWanInstance) {
  // The committed exemplar: a chatty pipeline on a two-region WAN where
  // locality-blind fair-load splits hot edges across the 30 ms WAN hop.
  // The geo wrapper must win strictly, not just tie.
  const std::string dir = std::string(WSFLOW_SOURCE_DIR) + "/examples/data";
  Workflow w = WSFLOW_UNWRAP(LoadWorkflow(dir + "/geo_wan_workflow.xml"));
  Network n = WSFLOW_UNWRAP(LoadNetwork(dir + "/geo_wan_network.xml"));
  ASSERT_GE(n.Zones().size(), 2u);
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  ctx.seed = 1;
  CostModel model(w, n);
  Mapping base = WSFLOW_UNWRAP(RunAlgorithm("fair-load", ctx));
  Mapping geo = WSFLOW_UNWRAP(RunAlgorithm("fair-load-geo", ctx));
  CostBreakdown base_cost =
      WSFLOW_UNWRAP(model.Evaluate(base, ctx.cost_options));
  CostBreakdown geo_cost =
      WSFLOW_UNWRAP(model.Evaluate(geo, ctx.cost_options));
  EXPECT_LT(geo_cost.combined, base_cost.combined)
      << "exemplar must show a strict locality win";
}

/// Thread-count invariance of the parallel searches on a WAN topology:
/// identical winners for 1 and 4 threads (the weighted route tables and
/// chain schedules are deterministic).
class GeoParallelDeterminismTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeoParallelDeterminismTest, ParallelSearchesThreadInvariantOnWan) {
  uint64_t seed = GetParam();
  TrialInstance trial = DrawHierTrial(WorkloadKind::kHybridGraph, seed);
  DeployContext ctx;
  ctx.workflow = &trial.workflow;
  ctx.network = &trial.network;
  ctx.profile = trial.profile.has_value() ? &*trial.profile : nullptr;
  ctx.seed = seed;

  ParallelSearchOptions one;
  one.chains = 4;
  one.threads = 1;
  one.total_iterations = 8000;
  ParallelSearchOptions four = one;
  four.threads = 4;

  Mapping a1 = WSFLOW_UNWRAP(ParallelAnnealingAlgorithm(one).Run(ctx));
  Mapping a4 = WSFLOW_UNWRAP(ParallelAnnealingAlgorithm(four).Run(ctx));
  EXPECT_TRUE(a1 == a4) << "annealing-par diverged across thread counts";

  Mapping c1 = WSFLOW_UNWRAP(ParallelHillClimbAlgorithm(one).Run(ctx));
  Mapping c4 = WSFLOW_UNWRAP(ParallelHillClimbAlgorithm(four).Run(ctx));
  EXPECT_TRUE(c1 == c4) << "climb-par diverged across thread counts";
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeoParallelDeterminismTest,
                         ::testing::Values(1u, 2u));

}  // namespace
}  // namespace wsflow
