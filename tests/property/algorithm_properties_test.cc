// Property tests: invariants every deployment algorithm must uphold on every
// workload family, swept via parameterized gtest.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/cost/cost_model.h"
#include "src/deploy/algorithm.h"
#include "src/deploy/exhaustive.h"
#include "src/deploy/random_baseline.h"
#include "src/exp/config.h"
#include "src/sim/simulator.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

// The heuristics under test (exhaustive and hill-climb are covered by their
// own suites; line-line requires line workflows and is swept separately).
const char* kBusAlgorithms[] = {"random",  "fair-load", "fltr",
                                "fltr2",   "fl-merge",  "heavy-ops"};

class AlgorithmPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<const char*, WorkloadKind, uint64_t>> {
 protected:
  void SetUp() override {
    RegisterBuiltinAlgorithms();
    auto [name, kind, seed] = GetParam();
    ExperimentConfig cfg = MakeClassCConfig(kind);
    cfg.num_operations = 13;
    cfg.num_servers = 4;
    cfg.seed = seed;
    TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
    workflow_ = std::move(t.workflow);
    network_ = std::move(t.network);
    profile_ = std::move(t.profile);
    ctx_.workflow = &workflow_;
    ctx_.network = &network_;
    ctx_.profile = profile_ ? &*profile_ : nullptr;
    ctx_.seed = seed;
    algorithm_ = std::get<0>(GetParam());
  }

  Workflow workflow_;
  Network network_;
  std::optional<ExecutionProfile> profile_;
  DeployContext ctx_;
  std::string algorithm_;
};

TEST_P(AlgorithmPropertyTest, MappingIsTotalAndValid) {
  Mapping m = WSFLOW_UNWRAP(RunAlgorithm(algorithm_, ctx_));
  WSFLOW_EXPECT_OK(m.ValidateAgainst(workflow_, network_));
}

TEST_P(AlgorithmPropertyTest, DeterministicGivenSeed) {
  Mapping a = WSFLOW_UNWRAP(RunAlgorithm(algorithm_, ctx_));
  Mapping b = WSFLOW_UNWRAP(RunAlgorithm(algorithm_, ctx_));
  EXPECT_TRUE(a == b);
}

TEST_P(AlgorithmPropertyTest, CostModelEvaluatesResult) {
  Mapping m = WSFLOW_UNWRAP(RunAlgorithm(algorithm_, ctx_));
  CostModel model(workflow_, network_, ctx_.profile);
  CostBreakdown cost = WSFLOW_UNWRAP(model.Evaluate(m));
  EXPECT_GT(cost.execution_time, 0.0);
  EXPECT_GE(cost.time_penalty, 0.0);
  EXPECT_TRUE(std::isfinite(cost.combined));
}

TEST_P(AlgorithmPropertyTest, SimulatorAcceptsResult) {
  Mapping m = WSFLOW_UNWRAP(RunAlgorithm(algorithm_, ctx_));
  SimOptions options;
  options.num_runs = 3;
  options.seed = 11;
  SimResult r = WSFLOW_UNWRAP(SimulateWorkflow(workflow_, network_, m,
                                               options));
  EXPECT_GT(r.mean_makespan, 0.0);
}

TEST_P(AlgorithmPropertyTest, LoadConservation) {
  // Total probability-weighted load is mapping-independent for fixed
  // server powers... but powers differ per server, so instead check that
  // the sum of per-server cycle shares equals the workflow's weighted
  // cycles (conservation of work).
  Mapping m = WSFLOW_UNWRAP(RunAlgorithm(algorithm_, ctx_));
  CostModel model(workflow_, network_, ctx_.profile);
  double total_weighted_seconds = 0;
  std::vector<double> loads = model.Loads(m);
  for (size_t s = 0; s < loads.size(); ++s) {
    total_weighted_seconds +=
        loads[s] * network_.server(ServerId(static_cast<uint32_t>(s)))
                       .power_hz();
  }
  double expected = 0;
  for (const Operation& op : workflow_.operations()) {
    double p = ctx_.profile ? ctx_.profile->OperationProb(op.id()) : 1.0;
    expected += p * op.cycles();
  }
  EXPECT_NEAR(total_weighted_seconds, expected, expected * 1e-9);
}

std::string PropertyTestName(
    const ::testing::TestParamInfo<
        std::tuple<const char*, WorkloadKind, uint64_t>>& info) {
  std::string name = std::get<0>(info.param);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_" +
         std::string(WorkloadKindToString(std::get<1>(info.param))) + "_s" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    BusWorkloads, AlgorithmPropertyTest,
    ::testing::Combine(::testing::ValuesIn(kBusAlgorithms),
                       ::testing::Values(WorkloadKind::kLine,
                                         WorkloadKind::kBushyGraph,
                                         WorkloadKind::kLengthyGraph,
                                         WorkloadKind::kHybridGraph),
                       ::testing::Values<uint64_t>(1, 2, 3)),
    PropertyTestName);

// Line-Line variants need line workflows.
class LineLinePropertyTest
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {};

TEST_P(LineLinePropertyTest, TotalDeterministicEvaluable) {
  RegisterBuiltinAlgorithms();
  auto [name, seed] = GetParam();
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  cfg.num_operations = 17;
  cfg.seed = seed;
  TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
  Network line = WSFLOW_UNWRAP(MakeLineNetwork(
      {1e9, 2e9, 3e9, 2e9, 1e9}, {1e7, 1e8, 1e8, 1e6}));
  DeployContext ctx;
  ctx.workflow = &t.workflow;
  ctx.network = &line;
  ctx.seed = seed;
  Mapping a = WSFLOW_UNWRAP(RunAlgorithm(name, ctx));
  Mapping b = WSFLOW_UNWRAP(RunAlgorithm(name, ctx));
  WSFLOW_EXPECT_OK(a.ValidateAgainst(t.workflow, line));
  EXPECT_TRUE(a == b);
  CostModel model(t.workflow, line);
  EXPECT_TRUE(model.Evaluate(a).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Variants, LineLinePropertyTest,
    ::testing::Combine(::testing::Values("line-line", "line-line-nofix",
                                         "line-line-bidir",
                                         "line-line-bidir-nofix"),
                       ::testing::Values<uint64_t>(1, 2, 3)),
    [](const ::testing::TestParamInfo<std::tuple<const char*, uint64_t>>&
           info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_s" + std::to_string(std::get<1>(info.param));
    });

// Heuristics can never beat the exhaustive optimum (small instances).
class OptimalityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(OptimalityTest, NeverBeatsExhaustive) {
  RegisterBuiltinAlgorithms();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
    cfg.num_operations = 6;
    cfg.num_servers = 3;
    cfg.seed = seed;
    TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
    CostModel model(t.workflow, t.network);
    DeployContext ctx;
    ctx.workflow = &t.workflow;
    ctx.network = &t.network;
    ctx.seed = seed;
    Mapping opt = WSFLOW_UNWRAP(ExhaustiveAlgorithm().Run(ctx));
    double opt_cost = model.Evaluate(opt).value().combined;
    Mapping m = WSFLOW_UNWRAP(RunAlgorithm(GetParam(), ctx));
    EXPECT_GE(model.Evaluate(m).value().combined, opt_cost - 1e-12)
        << GetParam() << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllHeuristics, OptimalityTest,
                         ::testing::ValuesIn(kBusAlgorithms),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string name = i.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// Fairness property: the FairLoad family beats random on time penalty when
// averaged over seeds.
class FairnessTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FairnessTest, BeatsRandomPenaltyOnAverage) {
  RegisterBuiltinAlgorithms();
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  cfg.num_operations = 19;
  cfg.num_servers = 5;
  double algo_total = 0, random_total = 0;
  const int kTrials = 10;
  for (int trial = 0; trial < kTrials; ++trial) {
    TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, trial));
    CostModel model(t.workflow, t.network);
    DeployContext ctx;
    ctx.workflow = &t.workflow;
    ctx.network = &t.network;
    ctx.seed = trial;
    Mapping a = WSFLOW_UNWRAP(RunAlgorithm(GetParam(), ctx));
    Mapping r = WSFLOW_UNWRAP(RunAlgorithm("random", ctx));
    algo_total += model.TimePenalty(a);
    random_total += model.TimePenalty(r);
  }
  EXPECT_LT(algo_total, random_total);
}

INSTANTIATE_TEST_SUITE_P(FairLoadFamily, FairnessTest,
                         ::testing::Values("fair-load", "fltr", "fltr2"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string name = i.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace wsflow
