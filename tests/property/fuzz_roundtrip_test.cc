// Randomized sweep tests: invariants that must hold for *every* generated
// workflow, exercised across many seeds, shapes and sizes.

#include <gtest/gtest.h>

#include "src/cost/cost_model.h"
#include "src/cost/response_time.h"
#include "src/deploy/random_baseline.h"
#include "src/exp/config.h"
#include "src/sim/simulator.h"
#include "src/workflow/blocks.h"
#include "src/workflow/dot.h"
#include "src/workflow/serialization.h"
#include "src/workflow/validate.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

class GeneratedWorkflowSweep
    : public ::testing::TestWithParam<std::tuple<WorkloadKind, uint64_t>> {
 protected:
  void SetUp() override {
    auto [kind, seed] = GetParam();
    ExperimentConfig cfg = MakeClassCConfig(kind);
    cfg.num_operations = 17;
    cfg.num_servers = 4;
    cfg.seed = seed;
    TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
    workflow_ = std::move(t.workflow);
    network_ = std::move(t.network);
    profile_ = std::move(t.profile);
  }

  Workflow workflow_;
  Network network_;
  std::optional<ExecutionProfile> profile_;
};

TEST_P(GeneratedWorkflowSweep, SerializationRoundTripsExactly) {
  Workflow loaded =
      WSFLOW_UNWRAP(WorkflowFromXmlString(WorkflowToXmlString(workflow_)));
  ASSERT_EQ(loaded.num_operations(), workflow_.num_operations());
  ASSERT_EQ(loaded.num_transitions(), workflow_.num_transitions());
  for (size_t i = 0; i < workflow_.num_operations(); ++i) {
    OperationId id(static_cast<uint32_t>(i));
    EXPECT_EQ(loaded.operation(id).name(), workflow_.operation(id).name());
    EXPECT_EQ(loaded.operation(id).type(), workflow_.operation(id).type());
    EXPECT_EQ(loaded.operation(id).cycles(),
              workflow_.operation(id).cycles());
  }
  for (size_t i = 0; i < workflow_.num_transitions(); ++i) {
    TransitionId id(static_cast<uint32_t>(i));
    EXPECT_EQ(loaded.transition(id).message_bits,
              workflow_.transition(id).message_bits);
    EXPECT_EQ(loaded.transition(id).branch_weight,
              workflow_.transition(id).branch_weight);
  }
  WSFLOW_EXPECT_OK(ValidateAll(loaded));
}

TEST_P(GeneratedWorkflowSweep, BlockDecompositionCoversAllOperations) {
  Block root = WSFLOW_UNWRAP(DecomposeBlocks(workflow_));
  EXPECT_EQ(root.CountOperations(), workflow_.num_operations());
}

TEST_P(GeneratedWorkflowSweep, ProbabilityInvariants) {
  ExecutionProfile profile =
      WSFLOW_UNWRAP(ComputeExecutionProfile(workflow_));
  // Source and sink always execute; everything lies in (0, 1].
  EXPECT_DOUBLE_EQ(profile.OperationProb(workflow_.Sources()[0]), 1.0);
  EXPECT_DOUBLE_EQ(profile.OperationProb(workflow_.Sinks()[0]), 1.0);
  for (double p : profile.op_prob) {
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  // XOR splits: arm probabilities sum to the split's own probability.
  for (const Operation& op : workflow_.operations()) {
    if (op.type() != OperationType::kXorSplit) continue;
    double sum = 0;
    for (TransitionId t : workflow_.out_edges(op.id())) {
      sum += profile.TransitionProb(t);
    }
    EXPECT_NEAR(sum, profile.OperationProb(op.id()), 1e-12) << op.name();
  }
}

TEST_P(GeneratedWorkflowSweep, ResponseTimesAreCausallyOrdered) {
  CostModel model(workflow_, network_, profile_ ? &*profile_ : nullptr);
  Rng rng(7);
  Mapping m = RandomMapping(workflow_.num_operations(),
                            network_.num_servers(), &rng);
  ResponseTimes times = WSFLOW_UNWRAP(ComputeResponseTimes(model, m));
  // Every operation completes no earlier than any of its predecessors
  // (conditional XOR expectations can only delay the join further).
  for (const Transition& t : workflow_.transitions()) {
    OperationType from_type = workflow_.operation(t.from).type();
    if (from_type == OperationType::kOrSplit ||
        from_type == OperationType::kXorSplit) {
      // OR joins take the fastest branch and XOR joins an expectation, so
      // a *specific* slow branch may finish after the join; skip edges
      // into such joins.
      continue;
    }
    if (IsJoin(workflow_.operation(t.to).type()) &&
        workflow_.operation(t.to).type() != OperationType::kAndJoin) {
      continue;
    }
    EXPECT_LE(times[t.from.value], times[t.to.value] + 1e-12)
        << workflow_.operation(t.from).name() << " -> "
        << workflow_.operation(t.to).name();
  }
  // The sink's response time is the analytic T_execute.
  double exec = WSFLOW_UNWRAP(model.ExecutionTime(m));
  EXPECT_NEAR(times[workflow_.Sinks()[0].value], exec,
              exec * 1e-9 + 1e-15);
}

TEST_P(GeneratedWorkflowSweep, SimulatorMeanTracksAnalytic) {
  CostModel model(workflow_, network_, profile_ ? &*profile_ : nullptr);
  Rng rng(11);
  Mapping m = RandomMapping(workflow_.num_operations(),
                            network_.num_servers(), &rng);
  double analytic = WSFLOW_UNWRAP(model.ExecutionTime(m));
  SimOptions options;
  options.num_runs = workflow_.IsLine() ? 1 : 800;
  options.seed = 13;
  SimResult sim =
      WSFLOW_UNWRAP(SimulateWorkflow(workflow_, network_, m, options));
  double tolerance = workflow_.IsLine() ? analytic * 1e-12 : analytic * 0.2;
  EXPECT_NEAR(sim.mean_makespan, analytic, tolerance);
}

TEST_P(GeneratedWorkflowSweep, DotExportAlwaysRenders) {
  std::string dot = WorkflowToDot(workflow_);
  EXPECT_EQ(dot.find("digraph"), 0u);
  // One node line per operation, one edge line per transition.
  size_t arrows = 0;
  for (size_t pos = dot.find(" -> "); pos != std::string::npos;
       pos = dot.find(" -> ", pos + 1)) {
    ++arrows;
  }
  EXPECT_EQ(arrows, workflow_.num_transitions());
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSeeds, GeneratedWorkflowSweep,
    ::testing::Combine(::testing::Values(WorkloadKind::kLine,
                                         WorkloadKind::kBushyGraph,
                                         WorkloadKind::kLengthyGraph,
                                         WorkloadKind::kHybridGraph),
                       ::testing::Values<uint64_t>(11, 22, 33, 44, 55)),
    [](const ::testing::TestParamInfo<std::tuple<WorkloadKind, uint64_t>>&
           info) {
      return std::string(WorkloadKindToString(std::get<0>(info.param))) +
             "_s" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace wsflow
