// Trace JSON round-trip: ToJson/ParseTraceJson are exact inverses (times
// print with %.17g, so every double survives bit-for-bit), and the
// committed chaos exemplar trace both re-parses to a byte-identical dump
// and matches what the fault simulator emits for the committed schedule —
// keeping the on-disk exemplar in lockstep with the simulator.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/sim/fault_sim.h"
#include "src/sim/faults.h"
#include "src/sim/trace.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

using testing::RoundRobin;

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string ExemplarPath(const char* name) {
  return std::string(WSFLOW_SOURCE_DIR) + "/examples/data/" + name;
}

TEST(TraceJsonTest, RoundTripsEveryEventKind) {
  Trace trace;
  trace.Record({0.0, TraceEventType::kOperationStart, OperationId(0),
                OperationId(), ServerId(0)});
  trace.Record({0.012345678901234567, TraceEventType::kMessageSent,
                OperationId(0), OperationId(1), ServerId(0)});
  trace.Record({0.05, TraceEventType::kMessageDelivered, OperationId(0),
                OperationId(1), ServerId(0)});
  trace.Record({0.06, TraceEventType::kServerCrash, OperationId(),
                OperationId(), ServerId(1)});
  trace.Record({0.06, TraceEventType::kTokenLost, OperationId(1),
                OperationId(), ServerId(1)});
  trace.Record({0.07, TraceEventType::kServerSlowdown, OperationId(),
                OperationId(), ServerId(2)});
  trace.Record({0.1, TraceEventType::kServerRecover, OperationId(),
                OperationId(), ServerId(1)});
  trace.Record({0.11, TraceEventType::kRetry, OperationId(1), OperationId(),
                ServerId(1)});
  trace.Record({0.2, TraceEventType::kRedispatch, OperationId(1),
                OperationId(), ServerId(2)});
  trace.Record({0.25, TraceEventType::kOperationComplete, OperationId(1),
                OperationId(), ServerId(2)});

  Trace parsed = WSFLOW_UNWRAP(ParseTraceJson(trace.ToJson()));
  EXPECT_EQ(parsed, trace);
  EXPECT_EQ(parsed.ToJson(), trace.ToJson());
}

TEST(TraceJsonTest, RoundTripsEmptyTrace) {
  Trace empty;
  Trace parsed = WSFLOW_UNWRAP(ParseTraceJson(empty.ToJson()));
  EXPECT_EQ(parsed, empty);
}

TEST(TraceJsonTest, CommittedExemplarIsAFixedPoint) {
  std::string json = ReadFileOrDie(ExemplarPath("chaos_trace.json"));
  Trace parsed = WSFLOW_UNWRAP(ParseTraceJson(json));
  EXPECT_FALSE(parsed.empty());
  EXPECT_EQ(parsed.ToJson(), json);
}

TEST(TraceJsonTest, CommittedExemplarMatchesSimulatorOutput) {
  // Regenerate the committed trace: the exemplar schedule replayed on the
  // exemplar instance (8-op line over a 4-server bus, seed 7, run 0) must
  // emit the committed bytes. `bench/chaos_replay --emit-trace` writes
  // this file.
  Workflow w = testing::SimpleLine(8, 50e6, 8000);
  Network n = testing::SimpleBus(4);
  Mapping m = RoundRobin(8, 4);
  FaultSchedule schedule = WSFLOW_UNWRAP(FaultSchedule::Parse(
      4, ReadFileOrDie(ExemplarPath("chaos_schedule.txt"))));
  FaultSimOptions options;
  options.sim.seed = 7;
  options.sim.record_trace = true;

  FaultSimResult r =
      WSFLOW_UNWRAP(SimulateWithFaults(w, n, m, schedule, options));
  EXPECT_EQ(r.trace.ToJson(), ReadFileOrDie(ExemplarPath("chaos_trace.json")));
}

TEST(TraceJsonTest, ParseRejectsMalformedDumps) {
  EXPECT_FALSE(ParseTraceJson("").ok());
  EXPECT_FALSE(ParseTraceJson("{}").ok());
  EXPECT_FALSE(ParseTraceJson("{\"events\": [").ok());
  EXPECT_FALSE(
      ParseTraceJson("{\"events\": [{\"t\": 1, \"type\": \"warp\", "
                     "\"op\": 0, \"peer\": -1, \"server\": 0}]}")
          .ok());
  EXPECT_FALSE(ParseTraceJson("{\"events\": []} trailing").ok());
  EXPECT_TRUE(ParseTraceJson("{\"events\": []}").ok());
}

}  // namespace
}  // namespace wsflow
