#include "src/sim/faults.h"

#include <gtest/gtest.h>

#include <vector>

#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

FaultScheduleOptions ChurnOptions(uint64_t seed, size_t crashes,
                                  size_t min_alive = 1) {
  FaultScheduleOptions options;
  options.seed = seed;
  options.horizon_s = 100.0;
  options.crashes = crashes;
  options.min_alive = min_alive;
  return options;
}

TEST(FaultScheduleTest, GenerationIsDeterministic) {
  Network n = testing::SimpleBus(6);
  FaultSchedule a =
      WSFLOW_UNWRAP(FaultSchedule::Generate(n, ChurnOptions(42, 3)));
  FaultSchedule b =
      WSFLOW_UNWRAP(FaultSchedule::Generate(n, ChurnOptions(42, 3)));
  ASSERT_EQ(a.events().size(), b.events().size());
  for (size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].time_s, b.events()[i].time_s);
    EXPECT_EQ(a.events()[i].server, b.events()[i].server);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].severity, b.events()[i].severity);
  }
  EXPECT_EQ(a.ToString(), b.ToString());
}

TEST(FaultScheduleTest, DifferentSeedsDiffer) {
  Network n = testing::SimpleBus(6);
  FaultSchedule a =
      WSFLOW_UNWRAP(FaultSchedule::Generate(n, ChurnOptions(1, 3)));
  FaultSchedule b =
      WSFLOW_UNWRAP(FaultSchedule::Generate(n, ChurnOptions(2, 3)));
  EXPECT_NE(a.ToString(), b.ToString());
}

TEST(FaultScheduleTest, EveryCrashPairsWithARecoveryInsideTheHorizon) {
  Network n = testing::SimpleBus(8);
  FaultScheduleOptions options = ChurnOptions(7, 4);
  FaultSchedule s = WSFLOW_UNWRAP(FaultSchedule::Generate(n, options));
  size_t crashes = 0, recoveries = 0;
  for (const FaultEvent& e : s.events()) {
    EXPECT_GE(e.time_s, 0.0);
    EXPECT_LE(e.time_s, 0.95 * options.horizon_s);
    if (e.kind == FaultKind::kCrash) ++crashes;
    if (e.kind == FaultKind::kRecover) ++recoveries;
  }
  EXPECT_EQ(crashes, recoveries);
  EXPECT_EQ(s.num_crashes(), crashes);
  EXPECT_GT(crashes, 0u);
}

TEST(FaultScheduleTest, RespectsMinAlive) {
  // Saturate a 4-server farm with far more crash requests than fit; at no
  // instant may more than one server (min_alive = 3) be down.
  Network n = testing::SimpleBus(4);
  FaultSchedule s = WSFLOW_UNWRAP(
      FaultSchedule::Generate(n, ChurnOptions(13, 16, /*min_alive=*/3)));
  FaultTimeline timeline(s);
  for (const FaultEvent& e : s.events()) {
    timeline.AdvanceTo(e.time_s);
    EXPECT_GE(timeline.alive().num_alive(), 3u) << "at t=" << e.time_s;
  }
}

TEST(FaultScheduleTest, SlowdownsCarrySeverity) {
  Network n = testing::SimpleBus(4);
  FaultScheduleOptions options = ChurnOptions(21, 0);
  options.slowdowns = 5;
  options.max_severity = 3.0;
  FaultSchedule s = WSFLOW_UNWRAP(FaultSchedule::Generate(n, options));
  ASSERT_EQ(s.events().size(), 5u);
  for (const FaultEvent& e : s.events()) {
    EXPECT_EQ(e.kind, FaultKind::kSlowdown);
    EXPECT_GT(e.severity, 1.0);
    EXPECT_LE(e.severity, 3.0);
  }
}

TEST(FaultScheduleTest, FromEventsRejectsInvalidSequences) {
  // Double crash.
  EXPECT_FALSE(FaultSchedule::FromEvents(
                   3, {{1.0, ServerId(0), FaultKind::kCrash},
                       {2.0, ServerId(0), FaultKind::kCrash}})
                   .ok());
  // Recovery of an alive server.
  EXPECT_FALSE(
      FaultSchedule::FromEvents(3, {{1.0, ServerId(1), FaultKind::kRecover}})
          .ok());
  // Unknown server.
  EXPECT_FALSE(
      FaultSchedule::FromEvents(3, {{1.0, ServerId(9), FaultKind::kCrash}})
          .ok());
  // Every server down at once.
  EXPECT_FALSE(FaultSchedule::FromEvents(
                   2, {{1.0, ServerId(0), FaultKind::kCrash},
                       {2.0, ServerId(1), FaultKind::kCrash}})
                   .ok());
  // Negative time.
  EXPECT_FALSE(
      FaultSchedule::FromEvents(3, {{-1.0, ServerId(0), FaultKind::kCrash}})
          .ok());
  // Slowdown severity must exceed 1.
  EXPECT_FALSE(FaultSchedule::FromEvents(
                   3, {{1.0, ServerId(0), FaultKind::kSlowdown, 1.0}})
                   .ok());
}

TEST(FaultScheduleTest, FromEventsSortsCanonically) {
  FaultSchedule s = WSFLOW_UNWRAP(FaultSchedule::FromEvents(
      3, {{5.0, ServerId(1), FaultKind::kRecover},
          {1.0, ServerId(1), FaultKind::kCrash},
          {3.0, ServerId(0), FaultKind::kSlowdown, 2.0}}));
  ASSERT_EQ(s.events().size(), 3u);
  EXPECT_EQ(s.events()[0].time_s, 1.0);
  EXPECT_EQ(s.events()[1].time_s, 3.0);
  EXPECT_EQ(s.events()[2].time_s, 5.0);
}

TEST(FaultTimelineTest, TracksTheAliveMaskThroughChurn) {
  FaultSchedule s = WSFLOW_UNWRAP(FaultSchedule::FromEvents(
      3, {{1.0, ServerId(2), FaultKind::kCrash},
          {2.0, ServerId(0), FaultKind::kCrash},
          {3.0, ServerId(2), FaultKind::kRecover},
          {4.0, ServerId(0), FaultKind::kRecover}}));
  FaultTimeline timeline(s);
  EXPECT_TRUE(timeline.alive().trivial());

  auto applied = timeline.AdvanceTo(1.5);
  EXPECT_EQ(applied.size(), 1u);
  EXPECT_FALSE(timeline.alive().alive(ServerId(2)));
  EXPECT_TRUE(timeline.alive().alive(ServerId(0)));

  applied = timeline.AdvanceTo(2.0);  // inclusive boundary
  EXPECT_EQ(applied.size(), 1u);
  EXPECT_EQ(timeline.alive().num_alive(), 1u);

  applied = timeline.AdvanceTo(10.0);
  EXPECT_EQ(applied.size(), 2u);
  EXPECT_EQ(timeline.alive().num_down(), 0u);
  EXPECT_TRUE(timeline.done());

  // Advancing further applies nothing.
  EXPECT_EQ(timeline.AdvanceTo(11.0).size(), 0u);
}

}  // namespace
}  // namespace wsflow
