#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include "src/cost/cost_model.h"
#include "src/workflow/builder.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

using testing::AllOnServer;
using testing::RoundRobin;

TEST(SimulatorTest, LineAllOnOneServer) {
  Workflow w = testing::SimpleLine(3, 2e9, 1e6);
  Network n = testing::SimpleBus(2);
  Mapping m = AllOnServer(3, ServerId(0));
  SimResult r = WSFLOW_UNWRAP(SimulateWorkflow(w, n, m));
  EXPECT_DOUBLE_EQ(r.mean_makespan, 6.0);
  EXPECT_DOUBLE_EQ(r.server_busy[0], 6.0);
  EXPECT_DOUBLE_EQ(r.server_busy[1], 0.0);
}

TEST(SimulatorTest, LineWithCrossingMessages) {
  Workflow w = testing::SimpleLine(3, 2e9, 1e6);
  Network n = MakeBusNetwork({1e9, 1e9}, 1e6).value();
  SimResult r = WSFLOW_UNWRAP(SimulateWorkflow(w, n, RoundRobin(3, 2)));
  EXPECT_DOUBLE_EQ(r.mean_makespan, 8.0);  // 6 s work + two 1 s messages
}

TEST(SimulatorTest, MatchesAnalyticLineModel) {
  Workflow w = testing::SimpleLine(7, 20e6, 60648);
  Network n = MakeBusNetwork({1e9, 2e9, 3e9}, 1e7).value();
  CostModel model(w, n);
  for (uint32_t variant = 0; variant < 3; ++variant) {
    Mapping m(7);
    for (uint32_t i = 0; i < 7; ++i) {
      m.Assign(OperationId(i), ServerId((i + variant) % 3));
    }
    double analytic = model.ExecutionTime(m).value();
    SimResult r = WSFLOW_UNWRAP(SimulateWorkflow(w, n, m));
    EXPECT_NEAR(r.mean_makespan, analytic, 1e-12) << "variant " << variant;
  }
}

TEST(SimulatorTest, AndJoinWaitsForSlowestBranch) {
  WorkflowBuilder b("and");
  b.Split(OperationType::kAndSplit, "s", 0);
  b.Branch().Op("fast", 1e9);
  b.Branch().Op("slow", 5e9);
  b.Join("j", 0);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  Network n = testing::SimpleBus(1);
  SimResult r = WSFLOW_UNWRAP(
      SimulateWorkflow(w, n, AllOnServer(4, ServerId(0))));
  EXPECT_DOUBLE_EQ(r.mean_makespan, 5.0);
}

TEST(SimulatorTest, OrJoinFiresOnFirstArrival) {
  WorkflowBuilder b("or");
  b.Split(OperationType::kOrSplit, "s", 0);
  b.Branch().Op("fast", 1e9);
  b.Branch().Op("slow", 5e9);
  b.Join("j", 0);
  b.Op("after", 1e9, 0);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  Network n = testing::SimpleBus(1);
  SimResult r = WSFLOW_UNWRAP(
      SimulateWorkflow(w, n, AllOnServer(5, ServerId(0))));
  // join at t=1, after at t=2; the slow branch still burns CPU.
  EXPECT_DOUBLE_EQ(r.mean_makespan, 2.0);
  EXPECT_DOUBLE_EQ(r.server_busy[0], 7.0);  // 1 + 5 + 1
}

TEST(SimulatorTest, XorTakesExactlyOneBranch) {
  WorkflowBuilder b("xor");
  b.Split(OperationType::kXorSplit, "s", 0);
  b.Branch(1.0).Op("always", 2e9);
  b.Branch(0.0).Op("never", 7e9);
  b.Join("j", 0);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  Network n = testing::SimpleBus(1);
  SimResult r = WSFLOW_UNWRAP(
      SimulateWorkflow(w, n, AllOnServer(4, ServerId(0))));
  EXPECT_DOUBLE_EQ(r.mean_makespan, 2.0);
  EXPECT_DOUBLE_EQ(r.server_busy[0], 2.0);  // "never" never ran
}

TEST(SimulatorTest, XorMonteCarloConvergesToExpectation) {
  WorkflowBuilder b("xor-mc");
  b.Split(OperationType::kXorSplit, "s", 0);
  b.Branch(0.7).Op("cheap", 1e9);
  b.Branch(0.3).Op("dear", 11e9);
  b.Join("j", 0);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  Network n = testing::SimpleBus(1);
  CostModel model(w, n);
  Mapping m = AllOnServer(4, ServerId(0));
  double analytic = model.ExecutionTime(m).value();  // 0.7*1 + 0.3*11 = 4
  EXPECT_DOUBLE_EQ(analytic, 4.0);

  SimOptions options;
  options.num_runs = 4000;
  options.seed = 17;
  SimResult r = WSFLOW_UNWRAP(SimulateWorkflow(w, n, m, options));
  EXPECT_NEAR(r.mean_makespan, analytic, 0.25);
  EXPECT_EQ(r.makespans.size(), 4000u);
}

TEST(SimulatorTest, MatchesAnalyticOnDeterministicGraph) {
  // AND/OR graph without XOR: analytic and simulated must agree exactly,
  // across several mappings.
  WorkflowBuilder b("det-graph");
  b.Op("a", 1e9);
  b.Split(OperationType::kAndSplit, "s", 5e8, 1e6);
  b.Branch().Op("l1", 2e9, 1e6).Op("l2", 1e9, 1e6);
  b.Branch().Op("r", 3e9, 1e6);
  b.Join("j", 5e8, 1e6);
  b.Op("z", 1e9, 1e6);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  Network n = MakeBusNetwork({1e9, 2e9}, 1e6).value();
  CostModel model(w, n);
  for (uint32_t variant = 0; variant < 4; ++variant) {
    Mapping m(w.num_operations());
    for (uint32_t i = 0; i < w.num_operations(); ++i) {
      m.Assign(OperationId(i), ServerId((i / (variant + 1)) % 2));
    }
    double analytic = model.ExecutionTime(m).value();
    SimResult r = WSFLOW_UNWRAP(SimulateWorkflow(w, n, m));
    EXPECT_NEAR(r.mean_makespan, analytic, 1e-9) << "variant " << variant;
  }
}

TEST(SimulatorTest, ServerContentionSerializesSharedHost) {
  // Two parallel 1 s branches on the same server: 1 s without contention,
  // 2 s with it.
  WorkflowBuilder b("contended");
  b.Split(OperationType::kAndSplit, "s", 0);
  b.Branch().Op("l", 1e9);
  b.Branch().Op("r", 1e9);
  b.Join("j", 0);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  Network n = testing::SimpleBus(1);
  Mapping m = AllOnServer(4, ServerId(0));

  SimResult free = WSFLOW_UNWRAP(SimulateWorkflow(w, n, m));
  SimOptions contended;
  contended.server_contention = true;
  SimResult serial = WSFLOW_UNWRAP(SimulateWorkflow(w, n, m, contended));
  EXPECT_DOUBLE_EQ(free.mean_makespan, 1.0);
  EXPECT_DOUBLE_EQ(serial.mean_makespan, 2.0);
}

TEST(SimulatorTest, BusContentionSerializesTransfers) {
  // Two branch messages racing over the bus: with contention the second
  // transfer queues behind the first.
  WorkflowBuilder b("bus");
  b.Split(OperationType::kAndSplit, "s", 0);
  b.Branch().Op("l", 0, 1e6);
  b.Branch().Op("r", 0, 1e6);
  b.Join("j", 0, 1e6);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  Network n = MakeBusNetwork({1e9, 1e9}, 1e6).value();
  Mapping m(4);
  m.Assign(WSFLOW_UNWRAP(b.Id("s")), ServerId(0));
  m.Assign(WSFLOW_UNWRAP(b.Id("l")), ServerId(1));
  m.Assign(WSFLOW_UNWRAP(b.Id("r")), ServerId(1));
  m.Assign(WSFLOW_UNWRAP(b.Id("j")), ServerId(0));

  SimResult free = WSFLOW_UNWRAP(SimulateWorkflow(w, n, m));
  SimOptions contended;
  contended.bus_contention = true;
  SimResult serial = WSFLOW_UNWRAP(SimulateWorkflow(w, n, m, contended));
  EXPECT_DOUBLE_EQ(free.mean_makespan, 2.0);   // entry + exit, in parallel
  // Entry transfers serialize (1 + 1), exits serialize again.
  EXPECT_GT(serial.mean_makespan, free.mean_makespan);
}

TEST(SimulatorTest, TraceRecordsLifecycle) {
  Workflow w = testing::SimpleLine(2, 1e9, 1e6);
  Network n = MakeBusNetwork({1e9, 1e9}, 1e6).value();
  SimOptions options;
  options.record_trace = true;
  SimResult r =
      WSFLOW_UNWRAP(SimulateWorkflow(w, n, RoundRobin(2, 2), options));
  EXPECT_FALSE(r.trace.empty());
  EXPECT_EQ(r.trace.EventsOfType(TraceEventType::kOperationStart).size(), 2u);
  EXPECT_EQ(r.trace.EventsOfType(TraceEventType::kOperationComplete).size(),
            2u);
  EXPECT_EQ(r.trace.EventsOfType(TraceEventType::kMessageSent).size(), 1u);
  EXPECT_EQ(r.trace.EventsOfType(TraceEventType::kMessageDelivered).size(),
            1u);
  // Events are chronological.
  for (size_t i = 1; i < r.trace.events().size(); ++i) {
    EXPECT_LE(r.trace.events()[i - 1].time, r.trace.events()[i].time);
  }
  std::string rendered = r.trace.ToString(w, n);
  EXPECT_NE(rendered.find("start op1"), std::string::npos);
}

TEST(SimulatorTest, SeedMakesXorRunsReproducible) {
  Workflow w = testing::AllDecisionGraph();
  Network n = testing::SimpleBus(2);
  Mapping m = RoundRobin(w.num_operations(), 2);
  SimOptions options;
  options.num_runs = 20;
  options.seed = 5;
  SimResult a = WSFLOW_UNWRAP(SimulateWorkflow(w, n, m, options));
  SimResult b = WSFLOW_UNWRAP(SimulateWorkflow(w, n, m, options));
  EXPECT_EQ(a.makespans, b.makespans);
}

TEST(SimulatorTest, InvalidInputsRejected) {
  Workflow w = testing::SimpleLine(3);
  Network n = testing::SimpleBus(2);
  Mapping partial(3);
  EXPECT_FALSE(SimulateWorkflow(w, n, partial).ok());

  SimOptions zero_runs;
  zero_runs.num_runs = 0;
  EXPECT_TRUE(SimulateWorkflow(w, n, testing::RoundRobin(3, 2), zero_runs)
                  .status()
                  .IsInvalidArgument());

  Workflow malformed;
  malformed.AddOperation("a", OperationType::kOperational, 1.0);
  malformed.AddOperation("b", OperationType::kOperational, 1.0);
  Mapping m2 = testing::RoundRobin(2, 2);
  EXPECT_FALSE(SimulateWorkflow(malformed, n, m2).ok());
}

}  // namespace
}  // namespace wsflow
