#include "src/sim/stream.h"

#include <gtest/gtest.h>

#include "src/cost/cost_model.h"
#include "src/sim/simulator.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

using testing::AllOnServer;
using testing::RoundRobin;

StreamOptions Opts(size_t instances, double rate, uint64_t seed = 1) {
  StreamOptions o;
  o.num_instances = instances;
  o.arrival_rate = rate;
  o.seed = seed;
  return o;
}

TEST(StreamTest, SingleInstanceMatchesAnalytic) {
  Workflow w = testing::SimpleLine(4, 2e9, 1e6);
  Network n = MakeBusNetwork({1e9, 1e9}, 1e6).value();
  CostModel model(w, n);
  Mapping m = RoundRobin(4, 2);
  StreamResult r =
      WSFLOW_UNWRAP(SimulateWorkflowStream(w, n, m, Opts(1, 1.0)));
  ASSERT_EQ(r.latencies.size(), 1u);
  EXPECT_NEAR(r.latencies[0], model.ExecutionTime(m).value(), 1e-12);
}

TEST(StreamTest, LowRateLatencyApproachesMakespan) {
  // With arrivals far apart, instances never overlap: every latency equals
  // the single-instance makespan.
  Workflow w = testing::SimpleLine(4, 1e9, 0);
  Network n = testing::SimpleBus(2);
  CostModel model(w, n);
  Mapping m = RoundRobin(4, 2);
  double makespan = model.ExecutionTime(m).value();  // 4 s
  StreamResult r = WSFLOW_UNWRAP(
      SimulateWorkflowStream(w, n, m, Opts(20, /*rate=*/0.01)));
  for (double latency : r.latencies) {
    EXPECT_NEAR(latency, makespan, 1e-9);
  }
}

TEST(StreamTest, HighRateQueueingInflatesLatency) {
  // Service demand per instance: 4 s of CPU over 2 servers => capacity
  // 0.5/s. Offered load 5/s drives the queue length up: later instances
  // wait far longer than the bare makespan.
  Workflow w = testing::SimpleLine(4, 1e9, 0);
  Network n = testing::SimpleBus(2);
  Mapping m = RoundRobin(4, 2);
  StreamResult r = WSFLOW_UNWRAP(
      SimulateWorkflowStream(w, n, m, Opts(50, /*rate=*/5.0)));
  EXPECT_GT(r.p95_latency, 4.0 * 3);
  EXPECT_GT(r.mean_latency, 4.0);
}

TEST(StreamTest, ThroughputCapsAtServiceCapacity) {
  // 2 s CPU per instance on two 1 GHz servers (balanced): capacity 1/s.
  Workflow w = testing::SimpleLine(2, 1e9, 0);
  Network n = testing::SimpleBus(2);
  Mapping m = RoundRobin(2, 2);
  StreamResult r = WSFLOW_UNWRAP(
      SimulateWorkflowStream(w, n, m, Opts(100, /*rate=*/50.0)));
  EXPECT_LE(r.throughput, 1.05);  // capacity plus epsilon
  EXPECT_GE(r.throughput, 0.8);   // but the system stays busy
}

TEST(StreamTest, BalancedBeatsPackedUnderLoad) {
  // The fairness argument under sustained load: the packed deployment
  // (faster for one instance when messages are dear) saturates one server
  // and loses on throughput to the balanced one.
  Workflow w = testing::SimpleLine(4, 1e9, 100.0);
  Network n = testing::SimpleBus(2, 1e9, 1e9);
  Mapping packed = AllOnServer(4, ServerId(0));
  Mapping balanced = RoundRobin(4, 2);
  StreamOptions opts = Opts(60, /*rate=*/2.0);
  StreamResult rp = WSFLOW_UNWRAP(SimulateWorkflowStream(w, n, packed, opts));
  StreamResult rb =
      WSFLOW_UNWRAP(SimulateWorkflowStream(w, n, balanced, opts));
  EXPECT_GT(rb.throughput, rp.throughput);
  EXPECT_LT(rb.mean_latency, rp.mean_latency);
}

TEST(StreamTest, UtilizationBoundedByOne) {
  Workflow w = testing::SimpleLine(5, 2e9, 8000);
  Network n = MakeBusNetwork({1e9, 2e9}, 1e8).value();
  Mapping m = RoundRobin(5, 2);
  StreamResult r = WSFLOW_UNWRAP(
      SimulateWorkflowStream(w, n, m, Opts(80, /*rate=*/3.0)));
  ASSERT_EQ(r.server_utilization.size(), 2u);
  for (double u : r.server_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
  EXPECT_GT(r.total_time, 0.0);
}

TEST(StreamTest, DeterministicGivenSeed) {
  Workflow w = testing::AllDecisionGraph();
  Network n = testing::SimpleBus(3);
  Mapping m = RoundRobin(w.num_operations(), 3);
  StreamResult a = WSFLOW_UNWRAP(
      SimulateWorkflowStream(w, n, m, Opts(30, 100.0, 9)));
  StreamResult b = WSFLOW_UNWRAP(
      SimulateWorkflowStream(w, n, m, Opts(30, 100.0, 9)));
  EXPECT_EQ(a.latencies, b.latencies);
  StreamResult c = WSFLOW_UNWRAP(
      SimulateWorkflowStream(w, n, m, Opts(30, 100.0, 10)));
  EXPECT_NE(a.latencies, c.latencies);
}

TEST(StreamTest, XorGraphInstancesDiverge) {
  Workflow w = testing::AllDecisionGraph(1e9);
  Network n = testing::SimpleBus(4);
  Mapping m = RoundRobin(w.num_operations(), 4);
  StreamResult r = WSFLOW_UNWRAP(
      SimulateWorkflowStream(w, n, m, Opts(50, 0.001, 3)));
  // With XOR arms of different lengths (same cycles here, so same time) —
  // all latencies equal; but the run must complete all 50.
  EXPECT_EQ(r.latencies.size(), 50u);
}

TEST(StreamTest, InvalidInputsRejected) {
  Workflow w = testing::SimpleLine(3);
  Network n = testing::SimpleBus(2);
  Mapping m = RoundRobin(3, 2);
  EXPECT_TRUE(SimulateWorkflowStream(w, n, m, Opts(0, 1.0))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(SimulateWorkflowStream(w, n, m, Opts(5, 0.0))
                  .status()
                  .IsInvalidArgument());
  Mapping partial(3);
  EXPECT_FALSE(SimulateWorkflowStream(w, n, partial, Opts(5, 1.0)).ok());
}

}  // namespace
}  // namespace wsflow
