// Fault-aware simulation: crash/slowdown/recovery semantics, the recovery
// policies (backoff retry, re-dispatch, mid-run repair), the committed
// chaos exemplar's acceptance gate, and determinism of the per-run seed
// substreams. The empty-schedule byte-parity property lives in
// tests/property/fault_sim_parity_test.cc.

#include "src/sim/fault_sim.h"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "src/sim/faults.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

using testing::AllOnServer;
using testing::RoundRobin;

/// The committed exemplar instance: an 8-op line round-robined over a
/// 4-server bus; see examples/data/chaos_schedule.txt.
constexpr size_t kExemplarOps = 8;
constexpr size_t kExemplarServers = 4;

Workflow ExemplarWorkflow() {
  return testing::SimpleLine(kExemplarOps, 50e6, 8000);
}

Network ExemplarNetwork() { return testing::SimpleBus(kExemplarServers); }

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

FaultSchedule LoadExemplarSchedule() {
  const std::string path =
      std::string(WSFLOW_SOURCE_DIR) + "/examples/data/chaos_schedule.txt";
  return WSFLOW_UNWRAP(
      FaultSchedule::Parse(kExemplarServers, ReadFileOrDie(path)));
}

TEST(FaultSimTest, EmptyScheduleMatchesPlainSimulator) {
  Workflow w = testing::SimpleLine(4, 50e6, 8000);
  Network n = testing::SimpleBus(2);
  Mapping m = RoundRobin(4, 2);
  FaultSchedule empty = WSFLOW_UNWRAP(FaultSchedule::FromEvents(2, {}));
  FaultSimOptions options;
  options.sim.record_trace = true;
  SimOptions plain_options;
  plain_options.record_trace = true;

  FaultSimResult faulted =
      WSFLOW_UNWRAP(SimulateWithFaults(w, n, m, empty, options));
  SimResult plain = WSFLOW_UNWRAP(SimulateWorkflow(w, n, m, plain_options));
  EXPECT_EQ(faulted.completion_rate, 1.0);
  EXPECT_EQ(faulted.makespans, plain.makespans);
  EXPECT_EQ(faulted.server_busy, plain.server_busy);
  EXPECT_EQ(faulted.trace, plain.trace);
  EXPECT_EQ(faulted.tokens_lost, 0u);
  EXPECT_EQ(faulted.messages_lost, 0u);
  EXPECT_EQ(faulted.analytic_masked_makespan, 0.0);
}

TEST(FaultSimTest, CrashWithoutPolicyLosesTheRun) {
  // op1 runs on s1 in [0.05, 0.10]; the crash at 0.06 destroys it and
  // kNone never recovers, so the sink is unreachable.
  Workflow w = testing::SimpleLine(4, 50e6, 8000);
  Network n = testing::SimpleBus(2);
  Mapping m = RoundRobin(4, 2);
  FaultSchedule schedule = WSFLOW_UNWRAP(FaultSchedule::FromEvents(
      2, {FaultEvent{0.06, ServerId(1), FaultKind::kCrash, 1.0},
          FaultEvent{0.20, ServerId(1), FaultKind::kRecover, 1.0}}));
  FaultSimOptions options;
  options.policy = LossPolicy::kNone;

  FaultSimResult r =
      WSFLOW_UNWRAP(SimulateWithFaults(w, n, m, schedule, options));
  EXPECT_EQ(r.completed_runs, 0u);
  EXPECT_EQ(r.completion_rate, 0.0);
  EXPECT_TRUE(r.makespans.empty());
  EXPECT_GE(r.tokens_lost, 1u);
  EXPECT_GE(r.gave_up, 1u);
  EXPECT_EQ(r.retries, 0u);
  EXPECT_EQ(r.redispatches, 0u);
}

TEST(FaultSimTest, RetryRestartsOnRecoveredServer) {
  Workflow w = testing::SimpleLine(4, 50e6, 8000);
  Network n = testing::SimpleBus(2);
  Mapping m = RoundRobin(4, 2);
  FaultSchedule schedule = WSFLOW_UNWRAP(FaultSchedule::FromEvents(
      2, {FaultEvent{0.06, ServerId(1), FaultKind::kCrash, 1.0},
          FaultEvent{0.10, ServerId(1), FaultKind::kRecover, 1.0}}));
  FaultSimOptions options;
  options.policy = LossPolicy::kRetry;
  options.sim.record_trace = true;

  FaultSimResult r =
      WSFLOW_UNWRAP(SimulateWithFaults(w, n, m, schedule, options));
  EXPECT_EQ(r.completion_rate, 1.0);
  EXPECT_GE(r.retries, 1u);
  EXPECT_EQ(r.redispatches, 0u);
  EXPECT_GE(r.tokens_lost, 1u);
  // The lost execution replays after the recovery: strictly slower than
  // the crash-free run, and never finished before the server came back.
  SimResult plain = WSFLOW_UNWRAP(SimulateWorkflow(w, n, m));
  EXPECT_GT(r.mean_makespan, plain.mean_makespan);
  EXPECT_GT(r.mean_makespan, 0.10);
  EXPECT_EQ(r.trace.EventsOfType(TraceEventType::kServerCrash).size(), 1u);
  EXPECT_EQ(r.trace.EventsOfType(TraceEventType::kServerRecover).size(), 1u);
  EXPECT_GE(r.trace.EventsOfType(TraceEventType::kRetry).size(), 1u);
}

TEST(FaultSimTest, RedispatchMovesWorkOffDeadServer) {
  // s1 never recovers: only re-dispatch can finish the line.
  Workflow w = testing::SimpleLine(4, 50e6, 8000);
  Network n = testing::SimpleBus(2);
  Mapping m = RoundRobin(4, 2);
  FaultSchedule schedule = WSFLOW_UNWRAP(FaultSchedule::FromEvents(
      2, {FaultEvent{0.06, ServerId(1), FaultKind::kCrash, 1.0}}));
  FaultSimOptions options;
  options.policy = LossPolicy::kRetryRedispatch;
  options.sim.record_trace = true;

  FaultSimResult r =
      WSFLOW_UNWRAP(SimulateWithFaults(w, n, m, schedule, options));
  EXPECT_EQ(r.completion_rate, 1.0);
  EXPECT_GE(r.redispatches, 1u);
  // Every re-dispatch lands on the only alive server.
  for (const TraceEvent& e :
       r.trace.EventsOfType(TraceEventType::kRedispatch)) {
    EXPECT_EQ(e.server, ServerId(0));
  }
}

TEST(FaultSimTest, SlowdownStretchesRemainingServiceTime) {
  // ops 1 and 3 live on s1; the slowdown lands mid-execution of op1
  // (remaining 0.025 s doubles to 0.05 s) and op3 runs fully degraded.
  Workflow w = testing::SimpleLine(4, 50e6, 8000);
  Network n = testing::SimpleBus(2);
  Mapping m = RoundRobin(4, 2);
  FaultSchedule schedule = WSFLOW_UNWRAP(FaultSchedule::FromEvents(
      2, {FaultEvent{0.075, ServerId(1), FaultKind::kSlowdown, 2.0}}));

  FaultSimResult r = WSFLOW_UNWRAP(SimulateWithFaults(w, n, m, schedule));
  SimResult plain = WSFLOW_UNWRAP(SimulateWorkflow(w, n, m));
  EXPECT_EQ(r.completion_rate, 1.0);
  EXPECT_EQ(r.tokens_lost, 0u);
  EXPECT_EQ(r.messages_lost, 0u);
  // op1 starts at 0.05008 (one 8e-5 s message after op0), so 0.02508 s of
  // it plus all 0.05 s of op3 stretch by 2x: +0.07508 s end to end.
  EXPECT_NEAR(r.mean_makespan, plain.mean_makespan + 0.07508, 1e-9);
  EXPECT_NEAR(r.server_busy[1], plain.server_busy[1] + 0.07508, 1e-9);
}

TEST(FaultSimTest, RepairHookMovesColdOperationsBeforeLoss) {
  // s1 dies before any token reaches it; the crash-epoch repair relocates
  // the still-cold ops 1 and 3, so the run completes with zero losses
  // even under the no-recovery policy.
  Workflow w = testing::SimpleLine(4, 50e6, 8000);
  Network n = testing::SimpleBus(2);
  Mapping m = RoundRobin(4, 2);
  FaultSchedule schedule = WSFLOW_UNWRAP(FaultSchedule::FromEvents(
      2, {FaultEvent{0.01, ServerId(1), FaultKind::kCrash, 1.0}}));
  FaultSimOptions options;
  options.policy = LossPolicy::kNone;
  options.repair = true;
  options.sim.record_trace = true;

  FaultSimResult r =
      WSFLOW_UNWRAP(SimulateWithFaults(w, n, m, schedule, options));
  EXPECT_EQ(r.completion_rate, 1.0);
  EXPECT_GE(r.repairs, 1u);
  EXPECT_EQ(r.tokens_lost, 0u);
  EXPECT_GE(r.trace.EventsOfType(TraceEventType::kRedispatch).size(), 2u);
}

TEST(FaultSimTest, CommittedExemplarCompletesWithBoundedGap) {
  // The acceptance gate: 100% completion under the default
  // retry+re-dispatch budget, and a measured degraded makespan within a
  // small factor of the analytic masked T_execute at peak churn.
  Workflow w = ExemplarWorkflow();
  Network n = ExemplarNetwork();
  Mapping m = RoundRobin(kExemplarOps, kExemplarServers);
  FaultSchedule schedule = LoadExemplarSchedule();
  FaultSimOptions options;
  options.sim.num_runs = 16;
  options.sim.seed = 7;

  FaultSimResult r =
      WSFLOW_UNWRAP(SimulateWithFaults(w, n, m, schedule, options));
  EXPECT_EQ(r.completion_rate, 1.0);
  EXPECT_EQ(r.completed_runs, 16u);
  EXPECT_GE(r.tokens_lost, 1u);
  ASSERT_TRUE(std::isfinite(r.analytic_masked_makespan));
  ASSERT_GT(r.analytic_masked_makespan, 0.0);
  double gap = r.mean_makespan / r.analytic_masked_makespan;
  EXPECT_GE(gap, 1.0) << "degraded run beat the crash-free analytic bound";
  EXPECT_LE(gap, 4.0) << "measured makespan drifted from the masked model";
}

TEST(FaultSimTest, ExemplarScheduleRoundTripsThroughToString) {
  FaultSchedule parsed = LoadExemplarSchedule();
  EXPECT_EQ(parsed.events().size(), 5u);
  EXPECT_EQ(parsed.num_crashes(), 2u);
  FaultSchedule again = WSFLOW_UNWRAP(
      FaultSchedule::Parse(kExemplarServers, parsed.ToString()));
  EXPECT_EQ(parsed.ToString(), again.ToString());
}

TEST(FaultSimTest, ParseRejectsMalformedLines) {
  EXPECT_FALSE(FaultSchedule::Parse(2, "t=1s crash").ok());
  EXPECT_FALSE(FaultSchedule::Parse(2, "1.0 crash s1").ok());
  EXPECT_FALSE(FaultSchedule::Parse(2, "t=1s explode s1").ok());
  EXPECT_FALSE(FaultSchedule::Parse(2, "t=1s crash s7").ok());
  EXPECT_FALSE(FaultSchedule::Parse(2, "t=1s slowdown s1").ok());
  EXPECT_FALSE(FaultSchedule::Parse(2, "t=1s crash s1 x2").ok());
  EXPECT_TRUE(FaultSchedule::Parse(2, "# only a comment\n\n").ok());
}

TEST(FaultSimTest, InvalidInputsRejected) {
  Workflow w = testing::SimpleLine(3, 50e6, 8000);
  Network n = testing::SimpleBus(2);
  FaultSchedule schedule = WSFLOW_UNWRAP(FaultSchedule::FromEvents(2, {}));

  Mapping partial(3);
  EXPECT_FALSE(SimulateWithFaults(w, n, partial, schedule).ok());

  FaultSimOptions zero_runs;
  zero_runs.sim.num_runs = 0;
  EXPECT_TRUE(SimulateWithFaults(w, n, RoundRobin(3, 2), schedule, zero_runs)
                  .status()
                  .IsInvalidArgument());

  FaultSchedule wrong_size = WSFLOW_UNWRAP(FaultSchedule::FromEvents(5, {}));
  EXPECT_TRUE(SimulateWithFaults(w, n, RoundRobin(3, 2), wrong_size)
                  .status()
                  .IsInvalidArgument());

  FaultSimOptions bad_timeout;
  bad_timeout.redispatch_timeout_s = 0;
  EXPECT_TRUE(SimulateWithFaults(w, n, RoundRobin(3, 2), schedule, bad_timeout)
                  .status()
                  .IsInvalidArgument());
}

TEST(FaultSimTest, LossPolicyStringsRoundTrip) {
  for (LossPolicy policy :
       {LossPolicy::kNone, LossPolicy::kRetry, LossPolicy::kRedispatch,
        LossPolicy::kRetryRedispatch}) {
    EXPECT_EQ(WSFLOW_UNWRAP(
                  LossPolicyFromString(LossPolicyToString(policy))),
              policy);
  }
  EXPECT_FALSE(LossPolicyFromString("crash-only").ok());
}

// --- determinism of the per-run substreams (also run under TSan) --------

FaultSimOptions ExemplarMonteCarloOptions(size_t runs) {
  FaultSimOptions options;
  options.sim.num_runs = runs;
  options.sim.seed = 21;
  options.sim.record_trace = true;
  return options;
}

TEST(FaultSimDeterminismTest, RepeatedRunsAreBitIdentical) {
  Workflow w = testing::AllDecisionGraph();
  Network n = testing::SimpleBus(kExemplarServers);
  Mapping m = RoundRobin(w.num_operations(), kExemplarServers);
  FaultSchedule schedule = WSFLOW_UNWRAP(FaultSchedule::FromEvents(
      kExemplarServers,
      {FaultEvent{0.02, ServerId(1), FaultKind::kCrash, 1.0},
       FaultEvent{0.05, ServerId(1), FaultKind::kRecover, 1.0}}));

  FaultSimResult a = WSFLOW_UNWRAP(
      SimulateWithFaults(w, n, m, schedule, ExemplarMonteCarloOptions(16)));
  FaultSimResult b = WSFLOW_UNWRAP(
      SimulateWithFaults(w, n, m, schedule, ExemplarMonteCarloOptions(16)));
  EXPECT_EQ(a.makespans, b.makespans);
  EXPECT_EQ(a.server_busy, b.server_busy);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.redispatches, b.redispatches);
  EXPECT_EQ(a.tokens_lost, b.tokens_lost);
  EXPECT_EQ(a.trace, b.trace);
}

TEST(FaultSimDeterminismTest, RunPrefixAgreesAcrossRunCountGroupings) {
  // Run i draws from substream PerRunSeed(seed, i) whatever num_runs is,
  // so a 4-run batch is a prefix of a 16-run batch — retry and backoff
  // sampling in later runs never perturbs earlier ones.
  Workflow w = testing::AllDecisionGraph();
  Network n = testing::SimpleBus(kExemplarServers);
  Mapping m = RoundRobin(w.num_operations(), kExemplarServers);
  FaultSchedule schedule = WSFLOW_UNWRAP(FaultSchedule::FromEvents(
      kExemplarServers,
      {FaultEvent{0.02, ServerId(1), FaultKind::kCrash, 1.0},
       FaultEvent{0.05, ServerId(1), FaultKind::kRecover, 1.0}}));

  FaultSimResult small = WSFLOW_UNWRAP(
      SimulateWithFaults(w, n, m, schedule, ExemplarMonteCarloOptions(4)));
  FaultSimResult big = WSFLOW_UNWRAP(
      SimulateWithFaults(w, n, m, schedule, ExemplarMonteCarloOptions(16)));
  ASSERT_EQ(small.makespans.size(), 4u);
  ASSERT_EQ(big.makespans.size(), 16u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(small.makespans[i], big.makespans[i]) << "run " << i;
  }
  EXPECT_EQ(small.trace, big.trace);  // both trace run 0
}

TEST(FaultSimDeterminismTest, PlainSimulatorSharesThePrefixProperty) {
  Workflow w = testing::AllDecisionGraph();
  Network n = testing::SimpleBus(2);
  Mapping m = RoundRobin(w.num_operations(), 2);
  SimOptions small_options;
  small_options.num_runs = 5;
  small_options.seed = 3;
  SimOptions big_options = small_options;
  big_options.num_runs = 20;
  SimResult small = WSFLOW_UNWRAP(SimulateWorkflow(w, n, m, small_options));
  SimResult big = WSFLOW_UNWRAP(SimulateWorkflow(w, n, m, big_options));
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(small.makespans[i], big.makespans[i]) << "run " << i;
  }
}

TEST(FaultSimDeterminismTest, PerRunSeedsAreDistinct) {
  EXPECT_NE(PerRunSeed(0, 0), PerRunSeed(0, 1));
  EXPECT_NE(PerRunSeed(0, 0), PerRunSeed(1, 0));
  EXPECT_EQ(PerRunSeed(42, 7), PerRunSeed(42, 7));
}

}  // namespace
}  // namespace wsflow
