// Cross-command consistency: what one CLI command emits, another must
// consume and agree with.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "src/cli/commands.h"
#include "src/exp/config.h"
#include "tests/testing/test_util.h"

namespace wsflow::cli {
namespace {

/// Extracts the value following `label` up to end of line.
std::string LineAfter(const std::string& text, const std::string& label) {
  size_t pos = text.find(label);
  if (pos == std::string::npos) return "";
  pos += label.size();
  while (pos < text.size() && text[pos] == ' ') ++pos;
  size_t end = text.find('\n', pos);
  return text.substr(pos, end - pos);
}

class CliRoundTripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workflow_path_ = ::testing::TempDir() + "/rt_workflow.xml";
    network_path_ = ::testing::TempDir() + "/rt_network.xml";
    std::ostringstream sink;
    WSFLOW_ASSERT_OK(CmdGenerate({"--type", "line", "--ops", "11", "--seed",
                                  "5", "--out", workflow_path_},
                                 sink));
    WSFLOW_ASSERT_OK(CmdMakeNetwork(
        {"--kind", "bus", "--powers", "1e9,2e9,3e9", "--speeds", "1e7",
         "--out", network_path_},
        sink));
  }

  void TearDown() override {
    std::remove(workflow_path_.c_str());
    std::remove(network_path_.c_str());
  }

  std::vector<std::string> InputArgs() const {
    return {"--workflow", workflow_path_, "--network", network_path_};
  }

  std::string workflow_path_, network_path_;
};

TEST_F(CliRoundTripTest, DeploySpecFeedsEvaluateConsistently) {
  // deploy prints a mapping spec and its costs; evaluate on that exact
  // spec must report the same T_execute and TimePenalty strings.
  std::ostringstream deploy_out;
  std::vector<std::string> args = InputArgs();
  args.insert(args.end(), {"--algorithm", "heavy-ops"});
  WSFLOW_ASSERT_OK(CmdDeploy(args, deploy_out));
  std::string spec = LineAfter(deploy_out.str(), "spec:");
  ASSERT_FALSE(spec.empty());

  std::ostringstream eval_out;
  std::vector<std::string> eval_args = InputArgs();
  eval_args.insert(eval_args.end(), {"--mapping", spec});
  WSFLOW_ASSERT_OK(CmdEvaluate(eval_args, eval_out));

  EXPECT_EQ(LineAfter(deploy_out.str(), "T_execute:"),
            LineAfter(eval_out.str(), "T_execute:"));
  EXPECT_EQ(LineAfter(deploy_out.str(), "TimePenalty:"),
            LineAfter(eval_out.str(), "TimePenalty:"));
}

TEST_F(CliRoundTripTest, SimulateMatchesDeployedMappingAnalytics) {
  // simulate on an explicit spec must print an analytic expectation equal
  // to evaluate's T_execute (line workflows are deterministic, so the
  // simulated mean matches too).
  std::ostringstream deploy_out;
  std::vector<std::string> args = InputArgs();
  args.insert(args.end(), {"--algorithm", "fltr2"});
  WSFLOW_ASSERT_OK(CmdDeploy(args, deploy_out));
  std::string spec = LineAfter(deploy_out.str(), "spec:");

  std::ostringstream sim_out;
  std::vector<std::string> sim_args = InputArgs();
  sim_args.insert(sim_args.end(), {"--mapping", spec, "--runs", "3"});
  WSFLOW_ASSERT_OK(CmdSimulate(sim_args, sim_out));
  std::string mean = LineAfter(sim_out.str(), "runs:");
  std::string analytic = LineAfter(sim_out.str(), "analytic expectation:");
  EXPECT_EQ(mean, analytic);
}

TEST_F(CliRoundTripTest, SampleBestSpecEvaluatesToReportedCombined) {
  std::ostringstream sample_out;
  std::vector<std::string> args = InputArgs();
  args.insert(args.end(), {"--samples", "300", "--seed", "4"});
  WSFLOW_ASSERT_OK(CmdSample(args, sample_out));
  std::string spec = LineAfter(sample_out.str(), "best-combined spec:");
  ASSERT_FALSE(spec.empty());

  std::ostringstream eval_out;
  std::vector<std::string> eval_args = InputArgs();
  eval_args.insert(eval_args.end(), {"--mapping", spec});
  WSFLOW_ASSERT_OK(CmdEvaluate(eval_args, eval_out));
  EXPECT_EQ(LineAfter(sample_out.str(), "best combined:"),
            LineAfter(eval_out.str(), "combined:"));
}

TEST_F(CliRoundTripTest, FailoverAcceptsDeployedSpec) {
  std::ostringstream deploy_out;
  std::vector<std::string> args = InputArgs();
  WSFLOW_ASSERT_OK(CmdDeploy(args, deploy_out));
  std::string spec = LineAfter(deploy_out.str(), "spec:");

  std::ostringstream failover_out;
  std::vector<std::string> failover_args = InputArgs();
  failover_args.insert(failover_args.end(), {"--mapping", spec});
  WSFLOW_ASSERT_OK(CmdFailover(failover_args, failover_out));
  EXPECT_NE(failover_out.str().find("scale-up"), std::string::npos);
}

}  // namespace
}  // namespace wsflow::cli
