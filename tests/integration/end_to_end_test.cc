// Integration tests spanning generator -> validation -> deployment ->
// analytic cost -> simulation -> serialization.

#include <gtest/gtest.h>

#include <cstdio>

#include "src/cost/cost_model.h"
#include "src/deploy/algorithm.h"
#include "src/deploy/local_search.h"
#include "src/exp/config.h"
#include "src/exp/runner.h"
#include "src/exp/sampling.h"
#include "src/sim/simulator.h"
#include "src/workflow/serialization.h"
#include "src/workflow/validate.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

TEST(EndToEndTest, AnalyticEqualsSimulatedForAllAlgorithmsOnLines) {
  // The closed-form line T_execute and the event simulation must agree for
  // every algorithm's output mapping.
  RegisterBuiltinAlgorithms();
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  cfg.num_operations = 11;
  cfg.num_servers = 4;
  TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 1));
  CostModel model(t.workflow, t.network);
  DeployContext ctx;
  ctx.workflow = &t.workflow;
  ctx.network = &t.network;
  ctx.seed = 2;
  for (const std::string& name : PaperBusAlgorithms()) {
    Mapping m = WSFLOW_UNWRAP(RunAlgorithm(name, ctx));
    double analytic = WSFLOW_UNWRAP(model.ExecutionTime(m));
    SimResult sim = WSFLOW_UNWRAP(SimulateWorkflow(t.workflow, t.network, m));
    EXPECT_NEAR(sim.mean_makespan, analytic, analytic * 1e-12) << name;
  }
}

TEST(EndToEndTest, XorGraphSimulationConvergesToAnalyticExpectation) {
  // Monte-Carlo over XOR branch draws approaches the analytic expected
  // T_execute. OR blocks use min (first success) in both worlds; AND uses
  // max — only XOR is stochastic.
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kHybridGraph);
  cfg.num_operations = 15;
  cfg.num_servers = 3;
  TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 2));
  ASSERT_TRUE(t.profile.has_value());
  CostModel model(t.workflow, t.network, &*t.profile);
  DeployContext ctx;
  ctx.workflow = &t.workflow;
  ctx.network = &t.network;
  ctx.profile = &*t.profile;
  Mapping m = WSFLOW_UNWRAP(RunAlgorithm("heavy-ops", ctx));
  double analytic = WSFLOW_UNWRAP(model.ExecutionTime(m));

  SimOptions options;
  options.num_runs = 3000;
  options.seed = 77;
  SimResult sim =
      WSFLOW_UNWRAP(SimulateWorkflow(t.workflow, t.network, m, options));
  EXPECT_NEAR(sim.mean_makespan, analytic, analytic * 0.1);
}

TEST(EndToEndTest, SerializedWorkflowDeploysIdentically) {
  // Round-tripping through XML must not change any algorithm decision.
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kBushyGraph);
  cfg.num_operations = 13;
  TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 4));
  std::string path = ::testing::TempDir() + "/wsflow_e2e.xml";
  WSFLOW_ASSERT_OK(SaveWorkflow(t.workflow, path));
  Workflow loaded = WSFLOW_UNWRAP(LoadWorkflow(path));
  std::remove(path.c_str());
  WSFLOW_ASSERT_OK(ValidateAll(loaded));
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(loaded));

  DeployContext original_ctx;
  original_ctx.workflow = &t.workflow;
  original_ctx.network = &t.network;
  original_ctx.profile = &*t.profile;
  original_ctx.seed = 5;
  DeployContext loaded_ctx = original_ctx;
  loaded_ctx.workflow = &loaded;
  loaded_ctx.profile = &profile;

  for (const std::string& name : PaperBusAlgorithms()) {
    Mapping a = WSFLOW_UNWRAP(RunAlgorithm(name, original_ctx));
    Mapping b = WSFLOW_UNWRAP(RunAlgorithm(name, loaded_ctx));
    EXPECT_TRUE(a == b) << name;
  }
}

TEST(EndToEndTest, LocalSearchImprovesEveryHeuristic) {
  // Hill climbing from a heuristic's output never worsens it (headroom
  // measurement used by the ablation bench).
  RegisterBuiltinAlgorithms();
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  cfg.num_operations = 10;
  cfg.num_servers = 3;
  TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 6));
  CostModel model(t.workflow, t.network);
  DeployContext ctx;
  ctx.workflow = &t.workflow;
  ctx.network = &t.network;
  for (const std::string& name : PaperBusAlgorithms()) {
    Mapping start = WSFLOW_UNWRAP(RunAlgorithm(name, ctx));
    LocalSearchStats stats;
    (void)WSFLOW_UNWRAP(HillClimb(model, start, {}, {}, &stats));
    EXPECT_LE(stats.final_cost, stats.initial_cost + 1e-12) << name;
  }
}

TEST(EndToEndTest, HeuristicsLandWithinSampledEnvelope) {
  // Every heuristic's combined cost lies between the sampled best and the
  // sampled-space maximum envelope (loose sanity bound: within 10x best).
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  cfg.num_operations = 9;
  cfg.num_servers = 3;
  TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 7));
  CostModel model(t.workflow, t.network);
  SamplingOptions soptions;
  soptions.samples = 32000;
  SampleBest best = WSFLOW_UNWRAP(SampleSolutionSpace(model, soptions));
  DeployContext ctx;
  ctx.workflow = &t.workflow;
  ctx.network = &t.network;
  for (const std::string& name : PaperBusAlgorithms()) {
    Mapping m = WSFLOW_UNWRAP(RunAlgorithm(name, ctx));
    double cost = model.Evaluate(m).value().combined;
    EXPECT_GE(cost, best.best_combined - 1e-12) << name;
    EXPECT_LE(cost, best.best_combined * 10 + 1e-9) << name;
  }
}

TEST(EndToEndTest, FullExperimentPipelineRuns) {
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLengthyGraph);
  cfg.trials = 3;
  cfg.num_operations = 13;
  cfg.num_servers = 4;
  ExperimentResult result =
      WSFLOW_UNWRAP(RunExperiment(cfg, PaperBusAlgorithms()));
  for (const AlgorithmSummary& s : result.per_algorithm) {
    EXPECT_EQ(s.failures, 0u) << s.algorithm;
    EXPECT_EQ(s.points.size(), 3u) << s.algorithm;
  }
}

}  // namespace
}  // namespace wsflow
