// wsflow: shared fixtures and helpers for the test suite.

#ifndef WSFLOW_TESTS_TESTING_TEST_UTIL_H_
#define WSFLOW_TESTS_TESTING_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/deploy/mapping.h"
#include "src/network/topology.h"
#include "src/workflow/builder.h"
#include "src/workflow/workflow.h"

namespace wsflow::testing {

/// ASSERT that a Status is OK, printing it otherwise.
#define WSFLOW_ASSERT_OK(expr)                          \
  do {                                                  \
    ::wsflow::Status _st = (expr);                      \
    ASSERT_TRUE(_st.ok()) << _st.ToString();            \
  } while (0)

#define WSFLOW_EXPECT_OK(expr)                          \
  do {                                                  \
    ::wsflow::Status _st = (expr);                      \
    EXPECT_TRUE(_st.ok()) << _st.ToString();            \
  } while (0)

/// Unwraps a Result<T> or fails the test. Usage:
///   auto v = WSFLOW_UNWRAP(SomeResult());
template <typename T>
T UnwrapOrDie(Result<T> result, const char* expr) {
  if (!result.ok()) {
    ADD_FAILURE() << expr << " failed: " << result.status().ToString();
  }
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

#define WSFLOW_UNWRAP(expr) ::wsflow::testing::UnwrapOrDie((expr), #expr)

/// Line workflow op1 -> ... -> opM with uniform cycles and message sizes.
inline Workflow SimpleLine(size_t ops, double cycles = 10e6,
                           double msg_bits = 8000) {
  std::vector<double> c(ops, cycles);
  std::vector<double> m(ops > 0 ? ops - 1 : 0, msg_bits);
  Result<Workflow> w = MakeLineWorkflow("line", c, m);
  EXPECT_TRUE(w.ok()) << w.status().ToString();
  return std::move(w).value();
}

/// Bus network with `servers` hosts of uniform power.
inline Network SimpleBus(size_t servers, double power_hz = 1e9,
                         double bus_bps = 100e6) {
  std::vector<double> powers(servers, power_hz);
  Result<Network> n = MakeBusNetwork(powers, bus_bps);
  EXPECT_TRUE(n.ok()) << n.status().ToString();
  return std::move(n).value();
}

/// A small well-formed graph exercising all three decision types:
///
///   a -> AND( b | c ) -> XOR( d @0.7 | e @0.3 ) -> OR( f | g ) -> h
inline Workflow AllDecisionGraph(double cycles = 10e6,
                                 double msg_bits = 8000) {
  WorkflowBuilder b("all-decisions");
  b.Op("a", cycles);
  b.Split(OperationType::kAndSplit, "and", cycles, msg_bits);
  b.Branch().Op("b", cycles, msg_bits);
  b.Branch().Op("c", cycles, msg_bits);
  b.Join("and_j", cycles, msg_bits);
  b.Split(OperationType::kXorSplit, "xor", cycles, msg_bits);
  b.Branch(0.7).Op("d", cycles, msg_bits);
  b.Branch(0.3).Op("e", cycles, msg_bits);
  b.Join("xor_j", cycles, msg_bits);
  b.Split(OperationType::kOrSplit, "or", cycles, msg_bits);
  b.Branch().Op("f", cycles, msg_bits);
  b.Branch().Op("g", cycles, msg_bits);
  b.Join("or_j", cycles, msg_bits);
  b.Op("h", cycles, msg_bits);
  Result<Workflow> w = b.Build();
  EXPECT_TRUE(w.ok()) << w.status().ToString();
  return std::move(w).value();
}

/// Mapping that puts every operation on one server.
inline Mapping AllOnServer(size_t ops, ServerId s) {
  Mapping m(ops);
  for (size_t i = 0; i < ops; ++i) {
    m.Assign(OperationId(static_cast<uint32_t>(i)), s);
  }
  return m;
}

/// Mapping that round-robins operations over `servers` hosts.
inline Mapping RoundRobin(size_t ops, size_t servers) {
  Mapping m(ops);
  for (size_t i = 0; i < ops; ++i) {
    m.Assign(OperationId(static_cast<uint32_t>(i)),
             ServerId(static_cast<uint32_t>(i % servers)));
  }
  return m;
}

}  // namespace wsflow::testing

#endif  // WSFLOW_TESTS_TESTING_TEST_UTIL_H_
