#include "src/network/routing.h"

#include <gtest/gtest.h>

#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

TEST(RouteTest, EmptyRouteIsCoLocated) {
  Route r;
  EXPECT_TRUE(r.co_located());
  Network n = MakeBusNetwork({1e9}, 1e8).value();
  EXPECT_EQ(r.TotalPropagation(n), 0.0);
  EXPECT_EQ(r.TransmissionTime(n, 1e6), 0.0);
}

TEST(RouterTest, SameServerEmptyRoute) {
  Network n = MakeBusNetwork({1e9, 1e9}, 1e8).value();
  Router router(n);
  Route r = router.FindRoute(ServerId(0), ServerId(0)).value();
  EXPECT_TRUE(r.co_located());
  EXPECT_EQ(router.HopCount(ServerId(0), ServerId(0)).value(), 0u);
}

TEST(RouterTest, BusIsOneHopForAllPairs) {
  Network n = MakeBusNetwork({1e9, 1e9, 1e9, 1e9}, 1e8).value();
  Router router(n);
  for (uint32_t a = 0; a < 4; ++a) {
    for (uint32_t b = 0; b < 4; ++b) {
      if (a == b) continue;
      Route r = router.FindRoute(ServerId(a), ServerId(b)).value();
      ASSERT_EQ(r.links.size(), 1u);
      EXPECT_EQ(r.links[0], n.bus());
    }
  }
}

TEST(RouterTest, LineRouteFollowsChain) {
  Network n = MakeLineNetwork({1e9, 1e9, 1e9, 1e9}, {1e8, 1e7, 1e6}).value();
  Router router(n);
  Route r = router.FindRoute(ServerId(0), ServerId(3)).value();
  ASSERT_EQ(r.links.size(), 3u);
  // Links must be in path order: s0-s1, s1-s2, s2-s3.
  EXPECT_EQ(n.link(r.links[0]).speed_bps, 1e8);
  EXPECT_EQ(n.link(r.links[1]).speed_bps, 1e7);
  EXPECT_EQ(n.link(r.links[2]).speed_bps, 1e6);
}

TEST(RouterTest, ReverseRouteSameLength) {
  Network n = MakeLineNetwork({1e9, 1e9, 1e9}, {1e8, 1e7}).value();
  Router router(n);
  EXPECT_EQ(router.HopCount(ServerId(0), ServerId(2)).value(), 2u);
  EXPECT_EQ(router.HopCount(ServerId(2), ServerId(0)).value(), 2u);
}

TEST(RouterTest, TransmissionAndPropagationAccumulate) {
  Network n =
      MakeLineNetwork({1e9, 1e9, 1e9}, {1e6, 2e6}, /*propagation_s=*/0.01)
          .value();
  Router router(n);
  Route r = router.FindRoute(ServerId(0), ServerId(2)).value();
  EXPECT_DOUBLE_EQ(r.TotalPropagation(n), 0.02);
  // 1e6 bits over 1 Mbps + over 2 Mbps = 1.0 + 0.5 s.
  EXPECT_DOUBLE_EQ(r.TransmissionTime(n, 1e6), 1.5);
}

TEST(RouterTest, StarRoutesThroughHub) {
  Network n = MakeStarNetwork({1e9, 1e9, 1e9}, {1e8, 1e8}).value();
  Router router(n);
  EXPECT_EQ(router.HopCount(ServerId(1), ServerId(2)).value(), 2u);
  EXPECT_EQ(router.HopCount(ServerId(0), ServerId(2)).value(), 1u);
}

TEST(RouterTest, RingUsesShorterArc) {
  // 5-server ring: 0 -> 4 is one hop around the closing link.
  std::vector<double> powers(5, 1e9);
  std::vector<double> speeds(5, 1e8);
  Network n = MakeRingNetwork(powers, speeds).value();
  Router router(n);
  EXPECT_EQ(router.HopCount(ServerId(0), ServerId(4)).value(), 1u);
  EXPECT_EQ(router.HopCount(ServerId(0), ServerId(2)).value(), 2u);
}

TEST(RouterTest, DisconnectedFails) {
  Network n;
  n.AddServer("a", 1e9);
  n.AddServer("b", 1e9);
  Router router(n);
  EXPECT_TRUE(router.FindRoute(ServerId(0), ServerId(1))
                  .status()
                  .IsFailedPrecondition());
}

TEST(RouterTest, UnknownServerFails) {
  Network n = MakeBusNetwork({1e9}, 1e8).value();
  Router router(n);
  EXPECT_TRUE(
      router.FindRoute(ServerId(0), ServerId(9)).status().IsNotFound());
}

TEST(RouterTest, RepeatedQueriesConsistent) {
  Network n = MakeLineNetwork({1e9, 1e9, 1e9, 1e9}, {1e8, 1e8, 1e8}).value();
  Router router(n);
  Route first = router.FindRoute(ServerId(0), ServerId(3)).value();
  Route second = router.FindRoute(ServerId(0), ServerId(3)).value();
  EXPECT_EQ(first.links.size(), second.links.size());
  for (size_t i = 0; i < first.links.size(); ++i) {
    EXPECT_EQ(first.links[i], second.links[i]);
  }
}

}  // namespace
}  // namespace wsflow
