#include "src/network/topology.h"

#include <gtest/gtest.h>

#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

TEST(ServerIdTest, Validity) {
  EXPECT_FALSE(ServerId().valid());
  EXPECT_TRUE(ServerId(0).valid());
  EXPECT_LT(ServerId(1), ServerId(2));
}

TEST(NetworkTest, AddServer) {
  Network n;
  ServerId s = n.AddServer("alpha", 2e9);
  EXPECT_EQ(n.num_servers(), 1u);
  EXPECT_EQ(n.server(s).name(), "alpha");
  EXPECT_EQ(n.server(s).power_hz(), 2e9);
  EXPECT_TRUE(n.Contains(s));
  EXPECT_FALSE(n.Contains(ServerId(7)));
}

TEST(NetworkTest, AddLink) {
  Network n;
  ServerId a = n.AddServer("a", 1e9);
  ServerId b = n.AddServer("b", 1e9);
  LinkId l = n.AddLink(a, b, 1e8, 0.001).value();
  EXPECT_EQ(n.num_links(), 1u);
  EXPECT_EQ(n.link(l).speed_bps, 1e8);
  EXPECT_EQ(n.link(l).propagation_s, 0.001);
  EXPECT_FALSE(n.link(l).is_shared_medium());
  EXPECT_EQ(n.FindLink(a, b).value(), l);
  EXPECT_EQ(n.FindLink(b, a).value(), l);  // undirected
  EXPECT_EQ(n.incident_links(a).size(), 1u);
}

TEST(NetworkTest, DuplicateLinkRejected) {
  Network n;
  ServerId a = n.AddServer("a", 1e9);
  ServerId b = n.AddServer("b", 1e9);
  ASSERT_TRUE(n.AddLink(a, b, 1e8).ok());
  EXPECT_TRUE(n.AddLink(a, b, 2e8).status().IsAlreadyExists());
  EXPECT_TRUE(n.AddLink(b, a, 2e8).status().IsAlreadyExists());
}

TEST(NetworkTest, InvalidLinksRejected) {
  Network n;
  ServerId a = n.AddServer("a", 1e9);
  ServerId b = n.AddServer("b", 1e9);
  EXPECT_TRUE(n.AddLink(a, a, 1e8).status().IsInvalidArgument());
  EXPECT_TRUE(n.AddLink(a, ServerId(9), 1e8).status().IsNotFound());
  EXPECT_TRUE(n.AddLink(a, b, 0).status().IsInvalidArgument());
  EXPECT_TRUE(n.AddLink(a, b, -5).status().IsInvalidArgument());
  EXPECT_TRUE(n.AddLink(a, b, 1e8, -1).status().IsInvalidArgument());
}

TEST(NetworkTest, BusInstall) {
  Network n;
  n.AddServer("a", 1e9);
  n.AddServer("b", 1e9);
  LinkId bus = n.SetBus(1e8, 0.0).value();
  EXPECT_TRUE(n.has_bus());
  EXPECT_EQ(n.bus(), bus);
  EXPECT_TRUE(n.link(bus).is_shared_medium());
  EXPECT_TRUE(n.SetBus(1e8).status().IsAlreadyExists());
}

TEST(NetworkTest, BusAndPointToPointExclusive) {
  Network n;
  ServerId a = n.AddServer("a", 1e9);
  ServerId b = n.AddServer("b", 1e9);
  ASSERT_TRUE(n.SetBus(1e8).ok());
  EXPECT_TRUE(n.AddLink(a, b, 1e8).status().IsFailedPrecondition());

  Network n2;
  ServerId c = n2.AddServer("c", 1e9);
  ServerId d = n2.AddServer("d", 1e9);
  ASSERT_TRUE(n2.AddLink(c, d, 1e8).ok());
  EXPECT_TRUE(n2.SetBus(1e8).status().IsFailedPrecondition());
}

TEST(NetworkTest, TotalPower) {
  Network n;
  n.AddServer("a", 1e9);
  n.AddServer("b", 2e9);
  n.AddServer("c", 3e9);
  EXPECT_DOUBLE_EQ(n.TotalPowerHz(), 6e9);
}

TEST(NetworkKindTest, Names) {
  EXPECT_EQ(NetworkKindToString(NetworkKind::kBus), "bus");
  EXPECT_EQ(NetworkKindToString(NetworkKind::kLine), "line");
  EXPECT_EQ(NetworkKindToString(NetworkKind::kStar), "star");
  EXPECT_EQ(NetworkKindToString(NetworkKind::kRing), "ring");
  EXPECT_EQ(NetworkKindToString(NetworkKind::kGeneral), "general");
}

TEST(MakeLineNetworkTest, Structure) {
  Network n =
      MakeLineNetwork({1e9, 2e9, 3e9}, {1e7, 1e8}).value();
  EXPECT_EQ(n.kind(), NetworkKind::kLine);
  EXPECT_EQ(n.num_servers(), 3u);
  EXPECT_EQ(n.num_links(), 2u);
  EXPECT_TRUE(n.FindLink(ServerId(0), ServerId(1)).ok());
  EXPECT_TRUE(n.FindLink(ServerId(1), ServerId(2)).ok());
  EXPECT_TRUE(n.FindLink(ServerId(0), ServerId(2)).status().IsNotFound());
}

TEST(MakeLineNetworkTest, SizeMismatchRejected) {
  EXPECT_TRUE(MakeLineNetwork({1e9, 1e9}, {}).status().IsInvalidArgument());
  EXPECT_TRUE(
      MakeLineNetwork({}, {}).status().IsInvalidArgument());
}

TEST(MakeLineNetworkTest, SingleServerLine) {
  Network n = MakeLineNetwork({1e9}, {}).value();
  EXPECT_EQ(n.num_servers(), 1u);
  EXPECT_EQ(n.num_links(), 0u);
}

TEST(MakeBusNetworkTest, Structure) {
  Network n = MakeBusNetwork({1e9, 2e9}, 1e8, 0.002).value();
  EXPECT_EQ(n.kind(), NetworkKind::kBus);
  EXPECT_TRUE(n.has_bus());
  EXPECT_EQ(n.link(n.bus()).speed_bps, 1e8);
  EXPECT_EQ(n.link(n.bus()).propagation_s, 0.002);
}

TEST(MakeBusNetworkTest, BadInputsRejected) {
  EXPECT_TRUE(MakeBusNetwork({}, 1e8).status().IsInvalidArgument());
  EXPECT_TRUE(MakeBusNetwork({1e9}, 0).status().IsInvalidArgument());
  EXPECT_TRUE(MakeBusNetwork({-1.0}, 1e8).status().IsInvalidArgument());
}

TEST(MakeStarNetworkTest, HubAndSpokes) {
  Network n = MakeStarNetwork({3e9, 1e9, 1e9, 1e9}, {1e8, 1e8, 1e7}).value();
  EXPECT_EQ(n.kind(), NetworkKind::kStar);
  EXPECT_EQ(n.num_links(), 3u);
  EXPECT_EQ(n.incident_links(ServerId(0)).size(), 3u);
  EXPECT_EQ(n.incident_links(ServerId(1)).size(), 1u);
}

TEST(MakeStarNetworkTest, BadInputsRejected) {
  EXPECT_TRUE(
      MakeStarNetwork({1e9}, {}).status().IsInvalidArgument());
  EXPECT_TRUE(
      MakeStarNetwork({1e9, 1e9}, {1e8, 1e8}).status().IsInvalidArgument());
}

TEST(MakeRingNetworkTest, ClosedChain) {
  Network n = MakeRingNetwork({1e9, 1e9, 1e9}, {1e8, 1e8, 1e8}).value();
  EXPECT_EQ(n.kind(), NetworkKind::kRing);
  EXPECT_EQ(n.num_links(), 3u);
  EXPECT_TRUE(n.FindLink(ServerId(2), ServerId(0)).ok());
  for (const Server& s : n.servers()) {
    EXPECT_EQ(n.incident_links(s.id()).size(), 2u);
  }
}

TEST(MakeRingNetworkTest, BadInputsRejected) {
  EXPECT_TRUE(
      MakeRingNetwork({1e9, 1e9}, {1e8, 1e8}).status().IsInvalidArgument());
  EXPECT_TRUE(MakeRingNetwork({1e9, 1e9, 1e9}, {1e8, 1e8})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace wsflow
