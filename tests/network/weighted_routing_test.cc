// Weighted routing: Dijkstra over LinkRoutingWeight must detour around
// slow/high-latency links, break equal-cost ties deterministically, and
// keep the severed-not-rerouted masked-route semantics on multi-hop
// weighted routes.

#include "src/network/routing.h"

#include <gtest/gtest.h>

#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

// Triangle where the direct link is a high-latency WAN hop and the
// two-hop path through the middle server is far cheaper.
Network DetourTriangle() {
  Network n("triangle");
  ServerId a = n.AddServer("a", 1e9);
  ServerId b = n.AddServer("b", 1e9);
  ServerId c = n.AddServer("c", 1e9);
  // Direct a-c: weight 0.1 + 1e-6.
  WSFLOW_UNWRAP(n.AddLink(a, c, 1e6, 0.1));
  // a-b and b-c: weight 1e-6 + 1e-9 each.
  WSFLOW_UNWRAP(n.AddLink(a, b, 1e9, 1e-6));
  WSFLOW_UNWRAP(n.AddLink(b, c, 1e9, 1e-6));
  return n;
}

TEST(RoutingWeightedTest, DetoursAroundSlowDirectLink) {
  Network n = DetourTriangle();
  Router router(n);
  Route r = WSFLOW_UNWRAP(router.FindRoute(ServerId(0), ServerId(2)));
  ASSERT_EQ(r.links.size(), 2u);  // via b, not the 1-hop direct link
  EXPECT_DOUBLE_EQ(r.RoutingWeight(n), 2 * (1e-6 + 1e-9));
  EXPECT_DOUBLE_EQ(WSFLOW_UNWRAP(router.RouteWeight(ServerId(0), ServerId(2))),
                   r.RoutingWeight(n));
}

TEST(RoutingWeightedTest, UniformSpeedsDegenerateToHopCount) {
  // On the paper's uniform line/ring the weighted rule equals hop count.
  std::vector<double> powers(5, 1e9);
  std::vector<double> speeds(5, 1e8);
  Network n = WSFLOW_UNWRAP(MakeRingNetwork(powers, speeds));
  Router router(n);
  EXPECT_EQ(WSFLOW_UNWRAP(router.HopCount(ServerId(0), ServerId(4))), 1u);
  EXPECT_EQ(WSFLOW_UNWRAP(router.HopCount(ServerId(0), ServerId(2))), 2u);
}

TEST(RoutingWeightedTest, PrefersFewerHopsAmongEqualWeight) {
  // Two equal-weight routes a->d: a-d direct (weight 2w) and a-b-d
  // (weight w + w). Make them exactly equal; the 1-hop route must win.
  Network n("hops");
  ServerId a = n.AddServer("a", 1e9);
  ServerId b = n.AddServer("b", 1e9);
  ServerId d = n.AddServer("d", 1e9);
  // w(l) = propagation + 1/speed. Use speed 1 bps so weights are exact
  // small integers: direct = 2.0, each detour hop = 1.0.
  WSFLOW_UNWRAP(n.AddLink(a, d, 1.0, 1.0));  // weight 2.0
  WSFLOW_UNWRAP(n.AddLink(a, b, 1.0, 0.0));  // weight 1.0
  WSFLOW_UNWRAP(n.AddLink(b, d, 1.0, 0.0));  // weight 1.0
  Router router(n);
  Route r = WSFLOW_UNWRAP(router.FindRoute(a, d));
  EXPECT_EQ(r.links.size(), 1u);
}

TEST(RoutingWeightedTest, FatTreeEqualCostMultipathPinsSmallestLink) {
  // Two spines give two equal-weight equal-hop paths between rack heads;
  // the deterministic tie-break must pin the smallest upstream link id,
  // i.e. the spine whose link to the destination head was added first.
  FatTreeOptions opts;
  opts.spines = 2;
  opts.racks = 2;
  opts.rack_size = 2;
  Network n = WSFLOW_UNWRAP(MakeFatTreeNetwork(opts));
  Router router(n);
  // Canonical order: spine0=0, spine1=1, rack0 = {2,3}, rack1 = {4,5}.
  ServerId rack0_head(2), rack1_head(4);
  Route r = WSFLOW_UNWRAP(router.FindRoute(rack0_head, rack1_head));
  ASSERT_EQ(r.links.size(), 2u);
  // Middle node of the route is the spine; both hops touch it.
  const Link& last = n.link(r.links[1]);
  ServerId spine = last.a == rack1_head ? last.b : last.a;
  EXPECT_EQ(spine, ServerId(0)) << "tie must resolve to spine0";
}

TEST(RoutingDeterminismTest, RouteTablesIdenticalAcrossRouters) {
  // Independently constructed routers over the same weighted graph must
  // produce byte-identical routes for every ordered pair, warm or lazy.
  RandomNetworkParams params;
  params.num_servers = 12;
  params.extra_links = 10;
  params.seed = 7;
  Network n = WSFLOW_UNWRAP(MakeRandomConnectedNetwork(params));
  Router warm(n), lazy(n);
  warm.WarmAllPairs();
  for (uint32_t a = 0; a < n.num_servers(); ++a) {
    for (uint32_t b = 0; b < n.num_servers(); ++b) {
      Route ra = WSFLOW_UNWRAP(warm.FindRoute(ServerId(a), ServerId(b)));
      Route rb = WSFLOW_UNWRAP(lazy.FindRoute(ServerId(a), ServerId(b)));
      ASSERT_EQ(ra.links.size(), rb.links.size())
          << "pair " << a << "->" << b;
      for (size_t i = 0; i < ra.links.size(); ++i) {
        EXPECT_EQ(ra.links[i], rb.links[i]) << "pair " << a << "->" << b;
      }
    }
  }
}

TEST(RoutingDeterminismTest, HierarchicalRoutesStable) {
  HierarchicalOptions opts;
  Network n = WSFLOW_UNWRAP(MakeHierarchicalNetwork(opts));
  Router r1(n), r2(n);
  r2.WarmAllPairs();
  for (uint32_t a = 0; a < n.num_servers(); ++a) {
    for (uint32_t b = 0; b < n.num_servers(); ++b) {
      Route ra = WSFLOW_UNWRAP(r1.FindRoute(ServerId(a), ServerId(b)));
      Route rb = WSFLOW_UNWRAP(r2.FindRoute(ServerId(a), ServerId(b)));
      ASSERT_EQ(ra.links.size(), rb.links.size());
      for (size_t i = 0; i < ra.links.size(); ++i) {
        EXPECT_EQ(ra.links[i], rb.links[i]);
      }
    }
  }
}

TEST(RoutingMaskTest, DownTransitSeversDespiteAliveDetour) {
  // The weighted route a->c runs through b. With b down, the route is
  // severed — RouteAvoidsDown must NOT fall back to the all-alive (but
  // heavier) direct link.
  Network n = DetourTriangle();
  Router router(n);
  Route r = WSFLOW_UNWRAP(router.FindRoute(ServerId(0), ServerId(2)));
  ASSERT_EQ(r.links.size(), 2u);
  ServerMask mask = ServerMask::AllAlive(n.num_servers());
  mask.SetAlive(ServerId(1), false);
  EXPECT_FALSE(RouteAvoidsDown(r, n, ServerId(0), ServerId(2), mask));
  mask.SetAlive(ServerId(1), true);
  EXPECT_TRUE(RouteAvoidsDown(r, n, ServerId(0), ServerId(2), mask));
}

TEST(RoutingMaskTest, MultiHopWanRouteChecksEveryTransit) {
  // Hierarchical route member -> member across regions transits cluster
  // heads and gateways; downing any transit severs it, downing an
  // unrelated server does not.
  HierarchicalOptions opts;
  opts.regions = 2;
  opts.clusters_per_region = 2;
  opts.cluster_size = 3;
  Network n = WSFLOW_UNWRAP(MakeHierarchicalNetwork(opts));
  Router router(n);
  // r0.c1 member (id 5) -> r1.c1 member (id 11).
  ServerId from(5), to(11);
  Route r = WSFLOW_UNWRAP(router.FindRoute(from, to));
  ASSERT_GE(r.links.size(), 3u);
  // Collect the transit servers by walking the route.
  std::vector<ServerId> transits;
  ServerId cur = from;
  for (LinkId l : r.links) {
    const Link& link = n.link(l);
    cur = link.a == cur ? link.b : link.a;
    if (cur != to) transits.push_back(cur);
  }
  ASSERT_FALSE(transits.empty());
  for (ServerId t : transits) {
    ServerMask mask = ServerMask::AllAlive(n.num_servers());
    mask.SetAlive(t, false);
    EXPECT_FALSE(RouteAvoidsDown(r, n, from, to, mask))
        << "down transit " << t << " must sever the route";
  }
  // A down server that is not on the route leaves it intact.
  ServerMask mask = ServerMask::AllAlive(n.num_servers());
  ServerId unrelated(4);  // r0.c1 head's sibling member, not a transit
  bool is_transit = false;
  for (ServerId t : transits) is_transit = is_transit || t == unrelated;
  ASSERT_FALSE(is_transit);
  mask.SetAlive(unrelated, false);
  EXPECT_TRUE(RouteAvoidsDown(r, n, from, to, mask));
}

TEST(RoutingMaskTest, DownEndpointSevers) {
  Network n = DetourTriangle();
  Router router(n);
  Route r = WSFLOW_UNWRAP(router.FindRoute(ServerId(0), ServerId(2)));
  ServerMask mask = ServerMask::AllAlive(n.num_servers());
  mask.SetAlive(ServerId(2), false);
  EXPECT_FALSE(RouteAvoidsDown(r, n, ServerId(0), ServerId(2), mask));
}

}  // namespace
}  // namespace wsflow
