// Hierarchical topology builders: canonical server order, zone labels,
// link structure, deterministic random graphs, and XML round-trips of
// heterogeneous weighted links and zones.

#include <gtest/gtest.h>

#include "src/network/routing.h"
#include "src/network/serialization.h"
#include "src/network/topology.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

bool SameNetworkWithZones(const Network& a, const Network& b) {
  if (a.num_servers() != b.num_servers()) return false;
  if (a.num_links() != b.num_links()) return false;
  if (a.kind() != b.kind()) return false;
  for (size_t i = 0; i < a.num_servers(); ++i) {
    ServerId id(static_cast<uint32_t>(i));
    if (a.server(id).name() != b.server(id).name()) return false;
    if (a.server(id).power_hz() != b.server(id).power_hz()) return false;
    if (a.server(id).zone() != b.server(id).zone()) return false;
  }
  for (size_t i = 0; i < a.num_links(); ++i) {
    LinkId id(static_cast<uint32_t>(i));
    if (a.link(id).a != b.link(id).a) return false;
    if (a.link(id).b != b.link(id).b) return false;
    if (a.link(id).speed_bps != b.link(id).speed_bps) return false;
    if (a.link(id).propagation_s != b.link(id).propagation_s) return false;
  }
  return true;
}

TEST(TopologyFatTreeTest, CanonicalOrderAndZones) {
  FatTreeOptions opts;
  opts.spines = 2;
  opts.racks = 3;
  opts.rack_size = 4;
  Network n = WSFLOW_UNWRAP(MakeFatTreeNetwork(opts));
  EXPECT_EQ(n.kind(), NetworkKind::kFatTree);
  ASSERT_EQ(n.num_servers(), 2u + 3u * 4u);
  EXPECT_EQ(n.server(ServerId(0)).zone(), "spine");
  EXPECT_EQ(n.server(ServerId(1)).zone(), "spine");
  EXPECT_EQ(n.server(ServerId(2)).zone(), "rack0");
  EXPECT_EQ(n.server(ServerId(5)).zone(), "rack0");
  EXPECT_EQ(n.server(ServerId(6)).zone(), "rack1");
  EXPECT_EQ(n.server(ServerId(13)).zone(), "rack2");
  std::vector<std::string> zones = n.Zones();
  ASSERT_EQ(zones.size(), 4u);
  EXPECT_EQ(zones[0], "spine");
  EXPECT_EQ(zones[1], "rack0");
  EXPECT_EQ(zones[3], "rack2");
  // racks * (rack_size - 1) edge links + racks * spines uplinks.
  EXPECT_EQ(n.num_links(), 3u * 3u + 3u * 2u);
}

TEST(TopologyFatTreeTest, PerServerPowersAndBroadcast) {
  FatTreeOptions opts;
  opts.spines = 1;
  opts.racks = 1;
  opts.rack_size = 2;
  opts.powers_hz = {3e9, 1e9, 2e9};
  Network n = WSFLOW_UNWRAP(MakeFatTreeNetwork(opts));
  EXPECT_EQ(n.server(ServerId(0)).power_hz(), 3e9);  // spine
  EXPECT_EQ(n.server(ServerId(1)).power_hz(), 1e9);  // rack head
  EXPECT_EQ(n.server(ServerId(2)).power_hz(), 2e9);
  opts.powers_hz = {2e9};
  Network broadcast = WSFLOW_UNWRAP(MakeFatTreeNetwork(opts));
  for (const Server& s : broadcast.servers()) {
    EXPECT_EQ(s.power_hz(), 2e9);
  }
  opts.powers_hz = {1e9, 2e9};  // neither 1 nor server count
  EXPECT_TRUE(MakeFatTreeNetwork(opts).status().IsInvalidArgument());
}

TEST(TopologyFatTreeTest, AllPairsConnected) {
  FatTreeOptions opts;
  Network n = WSFLOW_UNWRAP(MakeFatTreeNetwork(opts));
  Router router(n);
  for (uint32_t a = 0; a < n.num_servers(); ++a) {
    for (uint32_t b = 0; b < n.num_servers(); ++b) {
      WSFLOW_ASSERT_OK(
          router.FindRoute(ServerId(a), ServerId(b)).status());
    }
  }
}

TEST(TopologyHierTest, CanonicalOrderZonesAndLinks) {
  HierarchicalOptions opts;
  opts.regions = 3;
  opts.clusters_per_region = 2;
  opts.cluster_size = 3;
  Network n = WSFLOW_UNWRAP(MakeHierarchicalNetwork(opts));
  EXPECT_EQ(n.kind(), NetworkKind::kHierarchical);
  ASSERT_EQ(n.num_servers(), 3u * 2u * 3u);
  EXPECT_EQ(n.server(ServerId(0)).zone(), "r0.c0");
  EXPECT_EQ(n.server(ServerId(3)).zone(), "r0.c1");
  EXPECT_EQ(n.server(ServerId(6)).zone(), "r1.c0");
  EXPECT_EQ(n.server(ServerId(17)).zone(), "r2.c1");
  EXPECT_EQ(n.Zones().size(), 6u);
  // Per region: clusters * (size-1) member links + (clusters-1) region
  // links; plus a full WAN mesh over the 3 gateways.
  size_t per_region = 2 * 2 + 1;
  EXPECT_EQ(n.num_links(), 3 * per_region + 3);
  // Intra-cluster link fast, WAN link slow and high-latency.
  LinkId intra = WSFLOW_UNWRAP(n.FindLink(ServerId(0), ServerId(1)));
  LinkId wan = WSFLOW_UNWRAP(n.FindLink(ServerId(0), ServerId(6)));
  EXPECT_GT(n.link(intra).speed_bps, n.link(wan).speed_bps);
  EXPECT_LT(n.link(intra).propagation_s, n.link(wan).propagation_s);
  EXPECT_GT(LinkRoutingWeight(n.link(wan)),
            LinkRoutingWeight(n.link(intra)));
}

TEST(TopologyHierTest, CrossRegionRouteTransitsGateways) {
  HierarchicalOptions opts;
  Network n = WSFLOW_UNWRAP(MakeHierarchicalNetwork(opts));
  Router router(n);
  // Member of r0.c1 to member of r1.c1: must pass both region gateways.
  ServerId from(4), to(10);
  Route r = WSFLOW_UNWRAP(router.FindRoute(from, to));
  bool crosses_wan = false;
  for (LinkId l : r.links) {
    if (n.link(l).speed_bps == opts.wan_speed_bps) crosses_wan = true;
  }
  EXPECT_TRUE(crosses_wan);
  // Intra-cluster stays local: one hop member -> head.
  EXPECT_EQ(WSFLOW_UNWRAP(router.HopCount(ServerId(1), ServerId(0))), 1u);
}

TEST(TopologyRandomTest, DeterministicInSeedAndConnected) {
  RandomNetworkParams params;
  params.num_servers = 10;
  params.extra_links = 5;
  params.seed = 42;
  Network a = WSFLOW_UNWRAP(MakeRandomConnectedNetwork(params));
  Network b = WSFLOW_UNWRAP(MakeRandomConnectedNetwork(params));
  EXPECT_TRUE(SameNetworkWithZones(a, b));
  EXPECT_GE(a.num_links(), params.num_servers - 1);
  Router router(a);
  for (uint32_t i = 1; i < a.num_servers(); ++i) {
    WSFLOW_ASSERT_OK(router.FindRoute(ServerId(0), ServerId(i)).status());
  }
  params.seed = 43;
  Network c = WSFLOW_UNWRAP(MakeRandomConnectedNetwork(params));
  EXPECT_FALSE(SameNetworkWithZones(a, c));
}

TEST(TopologySerializationTest, HierRoundTripPreservesZonesAndWeights) {
  HierarchicalOptions opts;
  opts.powers_hz = {1e9};
  Network n = WSFLOW_UNWRAP(MakeHierarchicalNetwork(opts));
  Network loaded = WSFLOW_UNWRAP(NetworkFromXmlString(NetworkToXmlString(n)));
  EXPECT_TRUE(SameNetworkWithZones(n, loaded));
  EXPECT_EQ(loaded.kind(), NetworkKind::kHierarchical);
  EXPECT_EQ(loaded.Zones(), n.Zones());
}

TEST(TopologySerializationTest, FatTreeRoundTrip) {
  FatTreeOptions opts;
  opts.powers_hz = {1e9, 2e9, 3e9, 1e9, 2e9, 3e9, 1e9, 2e9, 3e9, 1e9};
  Network n = WSFLOW_UNWRAP(MakeFatTreeNetwork(opts));
  Network loaded = WSFLOW_UNWRAP(NetworkFromXmlString(NetworkToXmlString(n)));
  EXPECT_TRUE(SameNetworkWithZones(n, loaded));
  EXPECT_EQ(loaded.kind(), NetworkKind::kFatTree);
}

TEST(TopologySerializationTest, HeterogeneousWeightedGeneralRoundTrip) {
  RandomNetworkParams params;
  params.num_servers = 9;
  params.extra_links = 7;
  params.seed = 11;
  Network n = WSFLOW_UNWRAP(MakeRandomConnectedNetwork(params));
  n.mutable_server(ServerId(0)).set_zone("edge");
  n.mutable_server(ServerId(1)).set_zone("core");
  Network loaded = WSFLOW_UNWRAP(NetworkFromXmlString(NetworkToXmlString(n)));
  EXPECT_TRUE(SameNetworkWithZones(n, loaded));
  // Routes over the reloaded network are identical: same weights.
  Router ra(n), rb(loaded);
  for (uint32_t a = 0; a < n.num_servers(); ++a) {
    for (uint32_t b = 0; b < n.num_servers(); ++b) {
      Route r1 = WSFLOW_UNWRAP(ra.FindRoute(ServerId(a), ServerId(b)));
      Route r2 = WSFLOW_UNWRAP(rb.FindRoute(ServerId(a), ServerId(b)));
      ASSERT_EQ(r1.links.size(), r2.links.size());
      for (size_t i = 0; i < r1.links.size(); ++i) {
        EXPECT_EQ(r1.links[i], r2.links[i]);
      }
    }
  }
}

TEST(TopologySerializationTest, EmptyZoneOmittedFromXml) {
  Network n = WSFLOW_UNWRAP(MakeBusNetwork({1e9, 2e9}, 1e8));
  std::string xml = NetworkToXmlString(n);
  EXPECT_EQ(xml.find("zone"), std::string::npos);
  Network loaded = WSFLOW_UNWRAP(NetworkFromXmlString(xml));
  EXPECT_TRUE(loaded.server(ServerId(0)).zone().empty());
}

}  // namespace
}  // namespace wsflow
