#include "src/network/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

bool SameNetwork(const Network& a, const Network& b) {
  if (a.num_servers() != b.num_servers()) return false;
  if (a.num_links() != b.num_links()) return false;
  if (a.kind() != b.kind()) return false;
  for (size_t i = 0; i < a.num_servers(); ++i) {
    ServerId id(static_cast<uint32_t>(i));
    if (a.server(id).name() != b.server(id).name()) return false;
    if (a.server(id).power_hz() != b.server(id).power_hz()) return false;
    if (a.server(id).zone() != b.server(id).zone()) return false;
  }
  for (size_t i = 0; i < a.num_links(); ++i) {
    LinkId id(static_cast<uint32_t>(i));
    if (a.link(id).a != b.link(id).a) return false;
    if (a.link(id).b != b.link(id).b) return false;
    if (a.link(id).speed_bps != b.link(id).speed_bps) return false;
    if (a.link(id).propagation_s != b.link(id).propagation_s) return false;
  }
  return true;
}

TEST(NetworkSerializationTest, BusRoundTrip) {
  Network n = MakeBusNetwork({1e9, 2e9, 3e9}, 1e8, 0.001).value();
  Network loaded =
      WSFLOW_UNWRAP(NetworkFromXmlString(NetworkToXmlString(n)));
  EXPECT_TRUE(SameNetwork(n, loaded));
  EXPECT_TRUE(loaded.has_bus());
  EXPECT_EQ(loaded.kind(), NetworkKind::kBus);
}

TEST(NetworkSerializationTest, LineRoundTrip) {
  Network n = MakeLineNetwork({1e9, 2e9, 3e9}, {1e7, 1e8}, 0.002).value();
  Network loaded =
      WSFLOW_UNWRAP(NetworkFromXmlString(NetworkToXmlString(n)));
  EXPECT_TRUE(SameNetwork(n, loaded));
  EXPECT_EQ(loaded.kind(), NetworkKind::kLine);
}

TEST(NetworkSerializationTest, StarAndRingRoundTrip) {
  Network star = MakeStarNetwork({3e9, 1e9, 1e9}, {1e8, 1e7}).value();
  EXPECT_TRUE(SameNetwork(
      star, WSFLOW_UNWRAP(NetworkFromXmlString(NetworkToXmlString(star)))));
  Network ring = MakeRingNetwork({1e9, 1e9, 1e9}, {1e8, 1e8, 1e8}).value();
  EXPECT_TRUE(SameNetwork(
      ring, WSFLOW_UNWRAP(NetworkFromXmlString(NetworkToXmlString(ring)))));
}

TEST(NetworkSerializationTest, WrongRootRejected) {
  EXPECT_TRUE(NetworkFromXmlString("<workflow/>").status().IsParseError());
}

TEST(NetworkSerializationTest, NonDenseServerIdsRejected) {
  const char* xml =
      "<network name=\"n\" kind=\"bus\">"
      "<server id=\"1\" name=\"a\" power_hz=\"1e9\"/>"
      "</network>";
  EXPECT_TRUE(NetworkFromXmlString(xml).status().IsParseError());
}

TEST(NetworkSerializationTest, NonPositivePowerRejected) {
  const char* xml =
      "<network name=\"n\" kind=\"bus\">"
      "<server id=\"0\" name=\"a\" power_hz=\"0\"/>"
      "</network>";
  EXPECT_TRUE(NetworkFromXmlString(xml).status().IsParseError());
}

TEST(NetworkSerializationTest, UnknownKindRejected) {
  const char* xml = "<network name=\"n\" kind=\"mesh\"/>";
  EXPECT_TRUE(NetworkFromXmlString(xml).status().IsParseError());
}

TEST(NetworkSerializationTest, LinkOutOfRangeRejected) {
  const char* xml =
      "<network name=\"n\" kind=\"line\">"
      "<server id=\"0\" name=\"a\" power_hz=\"1e9\"/>"
      "<link a=\"0\" b=\"5\" speed_bps=\"1e8\"/>"
      "</network>";
  EXPECT_TRUE(NetworkFromXmlString(xml).status().IsParseError());
}

TEST(NetworkSerializationTest, MissingKindDefaultsToGeneral) {
  const char* xml =
      "<network name=\"n\">"
      "<server id=\"0\" name=\"a\" power_hz=\"1e9\"/>"
      "</network>";
  Network n = WSFLOW_UNWRAP(NetworkFromXmlString(xml));
  EXPECT_EQ(n.kind(), NetworkKind::kGeneral);
}

TEST(NetworkSerializationTest, FileRoundTrip) {
  Network n = MakeBusNetwork({1e9, 2e9}, 1e7).value();
  std::string path = ::testing::TempDir() + "/wsflow_network.xml";
  WSFLOW_ASSERT_OK(SaveNetwork(n, path));
  Network loaded = WSFLOW_UNWRAP(LoadNetwork(path));
  EXPECT_TRUE(SameNetwork(n, loaded));
  std::remove(path.c_str());
}

TEST(NetworkSerializationTest, LoadMissingFileFails) {
  EXPECT_TRUE(LoadNetwork("/no/such/net.xml").status().IsNotFound());
}

}  // namespace
}  // namespace wsflow
