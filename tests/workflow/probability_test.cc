#include "src/workflow/probability.h"

#include <gtest/gtest.h>

#include "src/workflow/builder.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

TEST(ProbabilityTest, LineIsAllOnes) {
  Workflow w = testing::SimpleLine(5);
  ExecutionProfile p = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  for (double v : p.op_prob) EXPECT_EQ(v, 1.0);
  for (double v : p.edge_prob) EXPECT_EQ(v, 1.0);
}

TEST(ProbabilityTest, UnitProfileShape) {
  Workflow w = testing::AllDecisionGraph();
  ExecutionProfile p = UnitProfile(w);
  EXPECT_EQ(p.op_prob.size(), w.num_operations());
  EXPECT_EQ(p.edge_prob.size(), w.num_transitions());
  for (double v : p.op_prob) EXPECT_EQ(v, 1.0);
}

TEST(ProbabilityTest, XorSplitsProbability) {
  WorkflowBuilder b("xor");
  b.Op("start", 1.0);
  b.Split(OperationType::kXorSplit, "s", 1.0, 1.0);
  b.Branch(0.7).Op("hot", 1.0, 1.0);
  b.Branch(0.3).Op("cold", 1.0, 1.0);
  b.Join("j", 1.0, 1.0);
  b.Op("end", 1.0, 1.0);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  ExecutionProfile p = WSFLOW_UNWRAP(ComputeExecutionProfile(w));

  EXPECT_DOUBLE_EQ(p.OperationProb(WSFLOW_UNWRAP(b.Id("start"))), 1.0);
  EXPECT_DOUBLE_EQ(p.OperationProb(WSFLOW_UNWRAP(b.Id("s"))), 1.0);
  EXPECT_DOUBLE_EQ(p.OperationProb(WSFLOW_UNWRAP(b.Id("hot"))), 0.7);
  EXPECT_DOUBLE_EQ(p.OperationProb(WSFLOW_UNWRAP(b.Id("cold"))), 0.3);
  EXPECT_DOUBLE_EQ(p.OperationProb(WSFLOW_UNWRAP(b.Id("j"))), 1.0);
  EXPECT_DOUBLE_EQ(p.OperationProb(WSFLOW_UNWRAP(b.Id("end"))), 1.0);
}

TEST(ProbabilityTest, AndOrBranchesInheritProbability) {
  Workflow w = testing::AllDecisionGraph();
  ExecutionProfile p = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  // AND and OR branches are always started; only the XOR arms dip below 1.
  size_t below_one = 0;
  for (const Operation& op : w.operations()) {
    double prob = p.OperationProb(op.id());
    if (op.name() == "d") EXPECT_DOUBLE_EQ(prob, 0.7);
    else if (op.name() == "e") EXPECT_DOUBLE_EQ(prob, 0.3);
    else EXPECT_DOUBLE_EQ(prob, 1.0);
    if (prob < 1.0) ++below_one;
  }
  EXPECT_EQ(below_one, 2u);
}

TEST(ProbabilityTest, NestedXorMultiplies) {
  WorkflowBuilder b("nested");
  b.Split(OperationType::kXorSplit, "outer", 1.0);
  b.Branch(0.5);
  b.Split(OperationType::kXorSplit, "inner", 1.0, 1.0);
  b.Branch(0.4).Op("deep", 1.0, 1.0);
  b.Branch(0.6).Op("deep2", 1.0, 1.0);
  b.Join("inner_j", 1.0, 1.0);
  b.Branch(0.5).Op("flat", 1.0, 1.0);
  b.Join("outer_j", 1.0, 1.0);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  ExecutionProfile p = WSFLOW_UNWRAP(ComputeExecutionProfile(w));

  EXPECT_DOUBLE_EQ(p.OperationProb(WSFLOW_UNWRAP(b.Id("inner"))), 0.5);
  EXPECT_DOUBLE_EQ(p.OperationProb(WSFLOW_UNWRAP(b.Id("deep"))), 0.2);
  EXPECT_DOUBLE_EQ(p.OperationProb(WSFLOW_UNWRAP(b.Id("deep2"))), 0.3);
  EXPECT_DOUBLE_EQ(p.OperationProb(WSFLOW_UNWRAP(b.Id("flat"))), 0.5);
  EXPECT_DOUBLE_EQ(p.OperationProb(WSFLOW_UNWRAP(b.Id("outer_j"))), 1.0);
}

TEST(ProbabilityTest, EmptyXorBranchEdgeCarriesBranchProbability) {
  // The direct split->join message of an empty XOR branch executes only
  // when that branch is picked, even though both endpoints always execute.
  WorkflowBuilder b("skip");
  b.Split(OperationType::kXorSplit, "s", 1.0);
  b.Branch(0.9).Op("work", 1.0, 1.0);
  b.Branch(0.1);
  b.Join("j", 1.0, 1.0);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  ExecutionProfile p = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  TransitionId skip = WSFLOW_UNWRAP(
      w.FindTransition(WSFLOW_UNWRAP(b.Id("s")), WSFLOW_UNWRAP(b.Id("j"))));
  EXPECT_DOUBLE_EQ(p.TransitionProb(skip), 0.1);
}

TEST(ProbabilityTest, BranchEdgesCarryBranchProbability) {
  WorkflowBuilder b("edges");
  b.Split(OperationType::kXorSplit, "s", 1.0);
  b.Branch(0.25).Op("rare", 1.0, 1.0);
  b.Branch(0.75).Op("common", 1.0, 1.0);
  b.Join("j", 1.0, 1.0);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  ExecutionProfile p = WSFLOW_UNWRAP(ComputeExecutionProfile(w));

  OperationId s = WSFLOW_UNWRAP(b.Id("s"));
  OperationId rare = WSFLOW_UNWRAP(b.Id("rare"));
  OperationId j = WSFLOW_UNWRAP(b.Id("j"));
  TransitionId entry = WSFLOW_UNWRAP(w.FindTransition(s, rare));
  TransitionId exit = WSFLOW_UNWRAP(w.FindTransition(rare, j));
  EXPECT_DOUBLE_EQ(p.TransitionProb(entry), 0.25);
  EXPECT_DOUBLE_EQ(p.TransitionProb(exit), 0.25);
}

TEST(ProbabilityTest, WeightedHelpers) {
  WorkflowBuilder b("weights");
  b.Split(OperationType::kXorSplit, "s", 8.0);
  b.Branch(0.5).Op("a", 10.0, 100.0);
  b.Branch(0.5).Op("bb", 20.0, 200.0);
  b.Join("j", 8.0, 100.0);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  ExecutionProfile p = WSFLOW_UNWRAP(ComputeExecutionProfile(w));

  OperationId a = WSFLOW_UNWRAP(b.Id("a"));
  EXPECT_DOUBLE_EQ(p.WeightedCycles(w, a), 5.0);  // 0.5 * 10
  TransitionId entry =
      WSFLOW_UNWRAP(w.FindTransition(WSFLOW_UNWRAP(b.Id("s")), a));
  EXPECT_DOUBLE_EQ(p.WeightedMessageBits(w, entry), 50.0);  // 0.5 * 100
}

TEST(ProbabilityTest, ProbabilitiesSumToOneAcrossXorArms) {
  Workflow w = testing::AllDecisionGraph();
  ExecutionProfile p = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  // d and e are the two XOR arms: their probabilities sum to the split's.
  double d = 0, e = 0;
  for (const Operation& op : w.operations()) {
    if (op.name() == "d") d = p.OperationProb(op.id());
    if (op.name() == "e") e = p.OperationProb(op.id());
  }
  EXPECT_DOUBLE_EQ(d + e, 1.0);
}

TEST(ProbabilityTest, MalformedWorkflowFails) {
  Workflow w;
  w.AddOperation("a", OperationType::kOperational, 1.0);
  w.AddOperation("stray", OperationType::kOperational, 1.0);
  EXPECT_FALSE(ComputeExecutionProfile(w).ok());
}

}  // namespace
}  // namespace wsflow
