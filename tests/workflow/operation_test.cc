#include "src/workflow/operation.h"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace wsflow {
namespace {

TEST(OperationIdTest, DefaultIsInvalid) {
  OperationId id;
  EXPECT_FALSE(id.valid());
}

TEST(OperationIdTest, ExplicitIsValid) {
  OperationId id(3);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value, 3u);
}

TEST(OperationIdTest, Comparisons) {
  EXPECT_EQ(OperationId(1), OperationId(1));
  EXPECT_NE(OperationId(1), OperationId(2));
  EXPECT_LT(OperationId(1), OperationId(2));
}

TEST(OperationIdTest, Hashable) {
  std::unordered_set<OperationId> set;
  set.insert(OperationId(1));
  set.insert(OperationId(1));
  set.insert(OperationId(2));
  EXPECT_EQ(set.size(), 2u);
}

TEST(OperationIdTest, StreamFormat) {
  std::ostringstream os;
  os << OperationId(5) << " " << OperationId();
  EXPECT_EQ(os.str(), "O5 O<invalid>");
}

TEST(OperationTypeTest, DecisionClassification) {
  EXPECT_FALSE(IsDecision(OperationType::kOperational));
  for (OperationType t :
       {OperationType::kAndSplit, OperationType::kAndJoin,
        OperationType::kOrSplit, OperationType::kOrJoin,
        OperationType::kXorSplit, OperationType::kXorJoin}) {
    EXPECT_TRUE(IsDecision(t)) << OperationTypeToString(t);
  }
}

TEST(OperationTypeTest, SplitJoinClassification) {
  EXPECT_TRUE(IsSplit(OperationType::kAndSplit));
  EXPECT_TRUE(IsSplit(OperationType::kOrSplit));
  EXPECT_TRUE(IsSplit(OperationType::kXorSplit));
  EXPECT_FALSE(IsSplit(OperationType::kAndJoin));
  EXPECT_FALSE(IsSplit(OperationType::kOperational));

  EXPECT_TRUE(IsJoin(OperationType::kAndJoin));
  EXPECT_TRUE(IsJoin(OperationType::kOrJoin));
  EXPECT_TRUE(IsJoin(OperationType::kXorJoin));
  EXPECT_FALSE(IsJoin(OperationType::kXorSplit));
  EXPECT_FALSE(IsJoin(OperationType::kOperational));
}

TEST(OperationTypeTest, ComplementIsInvolution) {
  for (OperationType t :
       {OperationType::kOperational, OperationType::kAndSplit,
        OperationType::kAndJoin, OperationType::kOrSplit,
        OperationType::kOrJoin, OperationType::kXorSplit,
        OperationType::kXorJoin}) {
    EXPECT_EQ(ComplementType(ComplementType(t)), t);
  }
}

TEST(OperationTypeTest, ComplementPairsSplitWithJoin) {
  EXPECT_EQ(ComplementType(OperationType::kAndSplit),
            OperationType::kAndJoin);
  EXPECT_EQ(ComplementType(OperationType::kOrSplit), OperationType::kOrJoin);
  EXPECT_EQ(ComplementType(OperationType::kXorSplit),
            OperationType::kXorJoin);
}

TEST(OperationTypeTest, Names) {
  EXPECT_EQ(OperationTypeToString(OperationType::kOperational),
            "operational");
  EXPECT_EQ(OperationTypeToString(OperationType::kXorSplit), "xor-split");
  EXPECT_EQ(OperationTypeToString(OperationType::kOrJoin), "or-join");
}

TEST(OperationTest, Accessors) {
  Operation op(OperationId(2), "book", OperationType::kOperational, 5e6);
  EXPECT_EQ(op.id(), OperationId(2));
  EXPECT_EQ(op.name(), "book");
  EXPECT_EQ(op.type(), OperationType::kOperational);
  EXPECT_EQ(op.cycles(), 5e6);
  EXPECT_FALSE(op.is_decision());
}

TEST(OperationTest, DecisionFlags) {
  Operation split(OperationId(0), "x", OperationType::kXorSplit, 1e6);
  EXPECT_TRUE(split.is_decision());
  EXPECT_TRUE(split.is_split());
  EXPECT_FALSE(split.is_join());
}

TEST(OperationTest, SetCycles) {
  Operation op(OperationId(0), "x", OperationType::kOperational, 1.0);
  op.set_cycles(2.0);
  EXPECT_EQ(op.cycles(), 2.0);
}

}  // namespace
}  // namespace wsflow
