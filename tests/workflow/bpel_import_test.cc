#include "src/workflow/bpel_import.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/workflow/metrics.h"
#include "src/workflow/probability.h"
#include "src/workflow/validate.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

TEST(ProcessImportTest, FlatSequence) {
  const char* xml =
      "<process name=\"p\" default_bits=\"1000\">"
      "  <invoke name=\"a\" cycles=\"1e6\"/>"
      "  <invoke name=\"b\" cycles=\"2e6\"/>"
      "  <invoke name=\"c\" cycles=\"3e6\" in_bits=\"7777\"/>"
      "</process>";
  Workflow w = WSFLOW_UNWRAP(WorkflowFromProcessString(xml));
  EXPECT_EQ(w.name(), "p");
  EXPECT_EQ(w.num_operations(), 3u);
  EXPECT_TRUE(w.IsLine());
  // Default and explicit in_bits.
  EXPECT_DOUBLE_EQ(w.transition(TransitionId(0)).message_bits, 1000.0);
  EXPECT_DOUBLE_EQ(w.transition(TransitionId(1)).message_bits, 7777.0);
}

TEST(ProcessImportTest, FlowMakesAndBlock) {
  const char* xml =
      "<process name=\"p\">"
      "  <flow name=\"par\" cycles=\"1e6\">"
      "    <invoke name=\"left\" cycles=\"2e6\"/>"
      "    <sequence>"
      "      <invoke name=\"r1\" cycles=\"3e6\"/>"
      "      <invoke name=\"r2\" cycles=\"4e6\"/>"
      "    </sequence>"
      "  </flow>"
      "</process>";
  Workflow w = WSFLOW_UNWRAP(WorkflowFromProcessString(xml));
  WSFLOW_EXPECT_OK(ValidateAll(w));
  // par(split) + left + r1 + r2 + par__join.
  EXPECT_EQ(w.num_operations(), 5u);
}

TEST(ProcessImportTest, FlowOperationCount) {
  const char* xml =
      "<process name=\"p\">"
      "  <flow name=\"par\" cycles=\"1e6\">"
      "    <invoke name=\"left\" cycles=\"2e6\"/>"
      "    <invoke name=\"right\" cycles=\"3e6\"/>"
      "  </flow>"
      "</process>";
  Workflow w = WSFLOW_UNWRAP(WorkflowFromProcessString(xml));
  EXPECT_EQ(w.num_operations(), 4u);  // split + 2 + join
  OperationId split(0);
  EXPECT_EQ(w.operation(split).type(), OperationType::kAndSplit);
  bool has_join = false;
  for (const Operation& op : w.operations()) {
    if (op.name() == "par__join") {
      has_join = true;
      EXPECT_EQ(op.type(), OperationType::kAndJoin);
      EXPECT_EQ(op.cycles(), 1e6);  // defaults to the split's cycles
    }
  }
  EXPECT_TRUE(has_join);
}

TEST(ProcessImportTest, SwitchMakesXorWithProbabilities) {
  const char* xml =
      "<process name=\"p\">"
      "  <switch name=\"s\" cycles=\"1e6\">"
      "    <case probability=\"0.8\"><invoke name=\"hot\" cycles=\"1e6\"/>"
      "    </case>"
      "    <case probability=\"0.2\"><invoke name=\"cold\" cycles=\"1e6\"/>"
      "    </case>"
      "  </switch>"
      "</process>";
  Workflow w = WSFLOW_UNWRAP(WorkflowFromProcessString(xml));
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  for (const Operation& op : w.operations()) {
    if (op.name() == "hot") {
      EXPECT_DOUBLE_EQ(profile.OperationProb(op.id()), 0.8);
    }
    if (op.name() == "cold") {
      EXPECT_DOUBLE_EQ(profile.OperationProb(op.id()), 0.2);
    }
  }
}

TEST(ProcessImportTest, EmptyCaseIsSkipBranch) {
  const char* xml =
      "<process name=\"p\">"
      "  <switch name=\"s\" cycles=\"1e6\" join_bits=\"500\">"
      "    <case probability=\"0.9\"><invoke name=\"work\" cycles=\"1e6\"/>"
      "    </case>"
      "    <case probability=\"0.1\"/>"
      "  </switch>"
      "</process>";
  Workflow w = WSFLOW_UNWRAP(WorkflowFromProcessString(xml));
  WSFLOW_EXPECT_OK(ValidateAll(w));
  // Direct split -> join edge exists.
  OperationId split, join;
  for (const Operation& op : w.operations()) {
    if (op.name() == "s") split = op.id();
    if (op.name() == "s__join") join = op.id();
  }
  TransitionId direct = WSFLOW_UNWRAP(w.FindTransition(split, join));
  EXPECT_DOUBLE_EQ(w.transition(direct).branch_weight, 0.1);
  EXPECT_DOUBLE_EQ(w.transition(direct).message_bits, 500.0);
}

TEST(ProcessImportTest, PickMakesOrBlock) {
  const char* xml =
      "<process name=\"p\">"
      "  <pick name=\"race\" cycles=\"0\">"
      "    <branch><invoke name=\"sms\" cycles=\"1e6\"/></branch>"
      "    <branch><invoke name=\"mail\" cycles=\"2e6\"/></branch>"
      "  </pick>"
      "</process>";
  Workflow w = WSFLOW_UNWRAP(WorkflowFromProcessString(xml));
  EXPECT_EQ(w.operation(OperationId(0)).type(), OperationType::kOrSplit);
}

TEST(ProcessImportTest, NestedBlocksValidate) {
  const char* xml =
      "<process name=\"p\" default_bits=\"100\">"
      "  <invoke name=\"start\" cycles=\"1e6\"/>"
      "  <flow name=\"outer\" cycles=\"1e6\">"
      "    <switch name=\"inner\" cycles=\"1e6\">"
      "      <case probability=\"0.5\"><invoke name=\"x\" cycles=\"1e6\"/>"
      "      </case>"
      "      <case probability=\"0.5\"><invoke name=\"y\" cycles=\"1e6\"/>"
      "      </case>"
      "    </switch>"
      "    <invoke name=\"z\" cycles=\"1e6\"/>"
      "  </flow>"
      "  <invoke name=\"end\" cycles=\"1e6\"/>"
      "</process>";
  Workflow w = WSFLOW_UNWRAP(WorkflowFromProcessString(xml));
  WSFLOW_EXPECT_OK(ValidateAll(w));
  WorkflowMetrics metrics = WSFLOW_UNWRAP(ComputeWorkflowMetrics(w));
  EXPECT_EQ(metrics.max_nesting, 2u);
  // start, outer, inner, x, y, inner__join, z, outer__join, end.
  EXPECT_EQ(metrics.num_operations, 9u);
}

TEST(ProcessImportTest, ErrorsAreDiagnosed) {
  EXPECT_TRUE(
      WorkflowFromProcessString("<flow name=\"x\" cycles=\"1\"/>")
          .status()
          .IsParseError());  // wrong root
  EXPECT_TRUE(WorkflowFromProcessString(
                  "<process name=\"p\"><frobnicate/></process>")
                  .status()
                  .IsParseError());  // unknown element
  EXPECT_TRUE(WorkflowFromProcessString(
                  "<process name=\"p\">"
                  "<invoke name=\"a\"/>"
                  "</process>")
                  .status()
                  .IsNotFound());  // missing cycles attribute
  EXPECT_TRUE(WorkflowFromProcessString(
                  "<process name=\"p\">"
                  "<flow name=\"f\" cycles=\"1\"/>"
                  "</process>")
                  .status()
                  .IsParseError());  // block without branches
  EXPECT_TRUE(WorkflowFromProcessString(
                  "<process name=\"p\">"
                  "<switch name=\"s\" cycles=\"1\">"
                  "<invoke name=\"a\" cycles=\"1\"/>"
                  "</switch>"
                  "</process>")
                  .status()
                  .IsParseError());  // switch child must be <case>
}

TEST(ProcessImportTest, SingleBranchFlowRejectedByBuilder) {
  const char* xml =
      "<process name=\"p\">"
      "  <flow name=\"f\" cycles=\"1\">"
      "    <invoke name=\"only\" cycles=\"1\"/>"
      "  </flow>"
      "</process>";
  Result<Workflow> w = WorkflowFromProcessString(xml);
  ASSERT_FALSE(w.ok());
  EXPECT_TRUE(w.status().IsFailedPrecondition());
}

TEST(ProcessImportTest, FileLoading) {
  std::string path = ::testing::TempDir() + "/wsflow_process.xml";
  {
    std::ofstream out(path);
    out << "<process name=\"filed\">"
           "<invoke name=\"a\" cycles=\"1e6\"/>"
           "<invoke name=\"b\" cycles=\"1e6\"/>"
           "</process>";
  }
  Workflow w = WSFLOW_UNWRAP(LoadProcessWorkflow(path));
  EXPECT_EQ(w.name(), "filed");
  EXPECT_EQ(w.num_operations(), 2u);
  std::remove(path.c_str());
  EXPECT_TRUE(LoadProcessWorkflow(path).status().IsNotFound());
}

}  // namespace
}  // namespace wsflow
