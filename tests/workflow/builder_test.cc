#include "src/workflow/builder.h"

#include <gtest/gtest.h>

#include "src/workflow/validate.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

TEST(BuilderTest, LinearSequence) {
  WorkflowBuilder b("seq");
  b.Op("a", 1.0).Op("b", 2.0, 10.0).Op("c", 3.0, 20.0);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  EXPECT_EQ(w.num_operations(), 3u);
  EXPECT_EQ(w.num_transitions(), 2u);
  EXPECT_TRUE(w.IsLine());
  EXPECT_EQ(w.transition(TransitionId(0)).message_bits, 10.0);
}

TEST(BuilderTest, SingleOperation) {
  WorkflowBuilder b("one");
  b.Op("only", 5.0);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  EXPECT_EQ(w.num_operations(), 1u);
  EXPECT_TRUE(w.IsLine());
}

TEST(BuilderTest, AndBlock) {
  WorkflowBuilder b("and");
  b.Op("start", 1.0);
  b.Split(OperationType::kAndSplit, "split", 1.0, 5.0);
  b.Branch().Op("left", 1.0, 5.0);
  b.Branch().Op("right", 1.0, 5.0);
  b.Join("join", 1.0, 5.0);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  EXPECT_EQ(w.num_operations(), 5u);
  EXPECT_EQ(w.num_transitions(), 5u);
  WSFLOW_EXPECT_OK(ValidateAll(w));

  OperationId split = w.Sources().size() == 1
                          ? w.operation(OperationId(1)).id()
                          : OperationId();
  EXPECT_EQ(w.operation(split).type(), OperationType::kAndSplit);
  EXPECT_EQ(w.out_degree(split), 2u);
}

TEST(BuilderTest, XorWeightsOnEntryEdges) {
  WorkflowBuilder b("xor");
  b.Split(OperationType::kXorSplit, "split", 1.0);
  b.Branch(0.7).Op("hot", 1.0, 5.0);
  b.Branch(0.3).Op("cold", 1.0, 5.0);
  b.Join("join", 1.0, 5.0);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  OperationId split(0);
  const auto& outs = w.out_edges(split);
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_DOUBLE_EQ(w.transition(outs[0]).branch_weight, 0.7);
  EXPECT_DOUBLE_EQ(w.transition(outs[1]).branch_weight, 0.3);
}

TEST(BuilderTest, EmptyBranchWiresSplitToJoin) {
  WorkflowBuilder b("empty-branch");
  b.Split(OperationType::kXorSplit, "split", 1.0);
  b.Branch(0.9).Op("work", 1.0, 5.0);
  b.Branch(0.1);  // nothing: skip path
  b.Join("join", 1.0, 5.0);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  OperationId split(0);
  OperationId join = WSFLOW_UNWRAP(b.Id("join"));
  (void)join;
  // There must be a direct split -> join transition.
  bool direct = false;
  for (TransitionId t : w.out_edges(split)) {
    if (w.operation(w.transition(t).to).type() == OperationType::kXorJoin) {
      direct = true;
      EXPECT_DOUBLE_EQ(w.transition(t).branch_weight, 0.1);
    }
  }
  EXPECT_TRUE(direct);
  WSFLOW_EXPECT_OK(ValidateAll(w));
}

TEST(BuilderTest, NestedBlocks) {
  WorkflowBuilder b("nested");
  b.Op("start", 1.0);
  b.Split(OperationType::kAndSplit, "outer", 1.0, 5.0);
  b.Branch();
  b.Split(OperationType::kXorSplit, "inner", 1.0, 5.0);
  b.Branch(0.5).Op("x", 1.0, 5.0);
  b.Branch(0.5).Op("y", 1.0, 5.0);
  b.Join("inner_j", 1.0, 5.0);
  b.Branch().Op("z", 1.0, 5.0);
  b.Join("outer_j", 1.0, 5.0);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  EXPECT_EQ(w.num_operations(), 8u);
  WSFLOW_EXPECT_OK(ValidateAll(w));
}

TEST(BuilderTest, ThreeWayBranch) {
  WorkflowBuilder b("three");
  b.Split(OperationType::kOrSplit, "split", 1.0);
  b.Branch().Op("a", 1.0, 5.0);
  b.Branch().Op("bb", 1.0, 5.0);
  b.Branch().Op("ccc", 1.0, 5.0);
  b.Join("join", 1.0, 5.0);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  EXPECT_EQ(w.out_degree(OperationId(0)), 3u);
  EXPECT_EQ(w.in_degree(WSFLOW_UNWRAP(b.Id("join"))), 3u);
}

TEST(BuilderTest, IdLookup) {
  WorkflowBuilder b("lookup");
  b.Op("first", 1.0).Op("second", 1.0, 1.0);
  EXPECT_EQ(WSFLOW_UNWRAP(b.Id("first")).value, 0u);
  EXPECT_EQ(WSFLOW_UNWRAP(b.Id("second")).value, 1u);
  EXPECT_TRUE(b.Id("third").status().IsNotFound());
}

TEST(BuilderTest, DuplicateNameRejected) {
  WorkflowBuilder b("dup");
  b.Op("x", 1.0).Op("x", 1.0, 1.0);
  EXPECT_TRUE(b.Build().status().IsAlreadyExists());
}

TEST(BuilderTest, UnclosedSplitRejected) {
  WorkflowBuilder b("open");
  b.Split(OperationType::kAndSplit, "split", 1.0);
  b.Branch().Op("a", 1.0);
  EXPECT_TRUE(b.Build().status().IsFailedPrecondition());
}

TEST(BuilderTest, JoinWithoutSplitRejected) {
  WorkflowBuilder b("noj");
  b.Op("a", 1.0);
  b.Join("j", 1.0);
  EXPECT_TRUE(b.Build().status().IsFailedPrecondition());
}

TEST(BuilderTest, BranchWithoutSplitRejected) {
  WorkflowBuilder b("nob");
  b.Branch();
  EXPECT_TRUE(b.Build().status().IsFailedPrecondition());
}

TEST(BuilderTest, ElementAfterSplitWithoutBranchRejected) {
  WorkflowBuilder b("nobranch");
  b.Split(OperationType::kAndSplit, "split", 1.0);
  b.Op("a", 1.0);
  EXPECT_TRUE(b.Build().status().IsFailedPrecondition());
}

TEST(BuilderTest, SingleBranchBlockRejected) {
  WorkflowBuilder b("single");
  b.Split(OperationType::kAndSplit, "split", 1.0);
  b.Branch().Op("a", 1.0, 1.0);
  b.Join("j", 1.0, 1.0);
  EXPECT_TRUE(b.Build().status().IsFailedPrecondition());
}

TEST(BuilderTest, TwoEmptyBranchesRejected) {
  // Two empty branches would need two identical split->join messages,
  // which the one-message-per-pair rule forbids.
  WorkflowBuilder b("twoempty");
  b.Split(OperationType::kXorSplit, "split", 1.0);
  b.Branch(0.5);
  b.Branch(0.5);
  b.Join("j", 1.0, 1.0);
  EXPECT_FALSE(b.Build().ok());
}

TEST(BuilderTest, NonSplitTypeRejected) {
  WorkflowBuilder b("badtype");
  b.Split(OperationType::kAndJoin, "notasplit", 1.0);
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(BuilderTest, NegativeWeightRejected) {
  WorkflowBuilder b("negw");
  b.Split(OperationType::kXorSplit, "split", 1.0);
  b.Branch(-0.5).Op("a", 1.0, 1.0);
  b.Branch(0.5).Op("b", 1.0, 1.0);
  b.Join("j", 1.0, 1.0);
  EXPECT_TRUE(b.Build().status().IsInvalidArgument());
}

TEST(BuilderTest, ErrorIsSticky) {
  WorkflowBuilder b("sticky");
  b.Join("j", 1.0);          // error
  b.Op("a", 1.0);            // ignored
  Result<Workflow> w = b.Build();
  ASSERT_FALSE(w.ok());
  EXPECT_TRUE(w.status().IsFailedPrecondition());
}

TEST(BuilderTest, HelperGraphIsWellFormed) {
  Workflow w = testing::AllDecisionGraph();
  WSFLOW_EXPECT_OK(ValidateAll(w));
  EXPECT_EQ(w.num_operations(), 14u);
}

}  // namespace
}  // namespace wsflow
