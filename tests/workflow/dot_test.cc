#include "src/workflow/dot.h"

#include <gtest/gtest.h>

#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

TEST(DotTest, WorkflowContainsAllNodesAndEdges) {
  Workflow w = testing::SimpleLine(3, 10e6, 8000);
  std::string dot = WorkflowToDot(w);
  EXPECT_EQ(dot.find("digraph"), 0u);
  EXPECT_NE(dot.find("op0"), std::string::npos);
  EXPECT_NE(dot.find("op2"), std::string::npos);
  EXPECT_NE(dot.find("op0 -> op1"), std::string::npos);
  EXPECT_NE(dot.find("op1 -> op2"), std::string::npos);
  EXPECT_NE(dot.find("8 Kbit"), std::string::npos);
}

TEST(DotTest, DecisionNodesAreDiamonds) {
  Workflow w = testing::AllDecisionGraph();
  std::string dot = WorkflowToDot(w);
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("(xor-split)"), std::string::npos);
}

TEST(DotTest, XorEdgesCarryWeights) {
  Workflow w = testing::AllDecisionGraph();
  std::string dot = WorkflowToDot(w);
  EXPECT_NE(dot.find("w=0.7"), std::string::npos);
  EXPECT_NE(dot.find("w=0.3"), std::string::npos);
}

TEST(DotTest, NamesAreEscaped) {
  Workflow w("has \"quotes\"");
  w.AddOperation("op \"x\"", OperationType::kOperational, 1.0);
  std::string dot = WorkflowToDot(w);
  EXPECT_NE(dot.find("\\\"x\\\""), std::string::npos);
}

TEST(DotTest, DeploymentColorsByServer) {
  Workflow w = testing::SimpleLine(4);
  Network n = testing::SimpleBus(2);
  Mapping m = testing::RoundRobin(4, 2);
  std::string dot = DeploymentToDot(w, n, m);
  EXPECT_NE(dot.find("style=filled"), std::string::npos);
  EXPECT_NE(dot.find("cluster_legend"), std::string::npos);
  EXPECT_NE(dot.find("s1"), std::string::npos);
  EXPECT_NE(dot.find("s2"), std::string::npos);
}

TEST(DotTest, UnassignedOperationsUncolored) {
  Workflow w = testing::SimpleLine(2);
  Network n = testing::SimpleBus(2);
  Mapping m(2);
  m.Assign(OperationId(0), ServerId(0));
  std::string dot = DeploymentToDot(w, n, m);
  // The assigned node is filled, the unassigned one is not. Search for the
  // node-definition lines (ids "op0"/"op1"), not the labels, which happen
  // to also read "op1"/"op2".
  size_t first = dot.find("\n  op0 ");
  size_t second = dot.find("\n  op1 ");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  std::string op0_line = dot.substr(first, dot.find('\n', first + 1) - first);
  std::string op1_line =
      dot.substr(second, dot.find('\n', second + 1) - second);
  EXPECT_NE(op0_line.find("style=filled"), std::string::npos);
  EXPECT_EQ(op1_line.find("style=filled"), std::string::npos);
}

TEST(DotTest, BusNetworkHasSharedNode) {
  Network n = testing::SimpleBus(3, 1e9, 1e8);
  std::string dot = NetworkToDot(n);
  EXPECT_EQ(dot.find("graph"), 0u);
  EXPECT_NE(dot.find("bus"), std::string::npos);
  EXPECT_NE(dot.find("100 Mbps"), std::string::npos);
  EXPECT_NE(dot.find("s0 -- bus"), std::string::npos);
}

TEST(DotTest, LineNetworkHasPointToPointEdges) {
  Network n = MakeLineNetwork({1e9, 2e9}, {1e7}).value();
  std::string dot = NetworkToDot(n);
  EXPECT_NE(dot.find("s0 -- s1"), std::string::npos);
  EXPECT_NE(dot.find("10 Mbps"), std::string::npos);
  EXPECT_NE(dot.find("2 GHz"), std::string::npos);
}

}  // namespace
}  // namespace wsflow
