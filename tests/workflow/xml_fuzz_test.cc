// Robustness sweep for the XML parser and the two workflow loaders:
// deterministic random corruptions of valid documents must never crash or
// hang — every input either parses or fails with a clean ParseError-class
// Status.

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/workflow/bpel_import.h"
#include "src/workflow/serialization.h"
#include "src/workflow/xml.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

std::string Corrupt(const std::string& base, Rng* rng, int edits) {
  std::string out = base;
  for (int e = 0; e < edits && !out.empty(); ++e) {
    size_t pos = rng->NextBounded(out.size());
    switch (rng->NextBounded(4)) {
      case 0:  // flip to a random printable character
        out[pos] = static_cast<char>(32 + rng->NextBounded(95));
        break;
      case 1:  // delete
        out.erase(pos, 1);
        break;
      case 2:  // duplicate a structural character
        out.insert(pos, 1, "<>&\"="[rng->NextBounded(5)]);
        break;
      case 3: {  // transpose with a neighbour
        if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
        break;
      }
    }
  }
  return out;
}

TEST(XmlFuzzTest, CorruptedDocumentsNeverCrashParser) {
  std::string base = WorkflowToXmlString(testing::AllDecisionGraph());
  Rng rng(2024);
  int parsed = 0, rejected = 0;
  for (int i = 0; i < 500; ++i) {
    std::string mutated = Corrupt(base, &rng, 1 + static_cast<int>(i % 7));
    Result<XmlNode> r = ParseXml(mutated);
    if (r.ok()) {
      ++parsed;
    } else {
      ++rejected;
      EXPECT_TRUE(r.status().IsParseError()) << r.status().ToString();
    }
  }
  // Structural corruption must overwhelmingly be caught.
  EXPECT_GT(rejected, 250);
  EXPECT_EQ(parsed + rejected, 500);
}

TEST(XmlFuzzTest, CorruptedWorkflowsLoadOrFailCleanly) {
  std::string base = WorkflowToXmlString(testing::AllDecisionGraph());
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    std::string mutated = Corrupt(base, &rng, 1 + static_cast<int>(i % 5));
    Result<Workflow> r = WorkflowFromXmlString(mutated);
    if (!r.ok()) {
      // Any error category is fine (parse, validation, range); the point
      // is a clean Status instead of a crash.
      EXPECT_FALSE(r.status().ok());
    }
  }
}

TEST(XmlFuzzTest, CorruptedProcessesLoadOrFailCleanly) {
  const std::string base =
      "<process name=\"p\" default_bits=\"100\">"
      "<invoke name=\"a\" cycles=\"1e6\"/>"
      "<switch name=\"s\" cycles=\"1e6\">"
      "<case probability=\"0.5\"><invoke name=\"x\" cycles=\"1e6\"/></case>"
      "<case probability=\"0.5\"><invoke name=\"y\" cycles=\"1e6\"/></case>"
      "</switch>"
      "</process>";
  Rng rng(99);
  for (int i = 0; i < 300; ++i) {
    std::string mutated = Corrupt(base, &rng, 1 + static_cast<int>(i % 5));
    Result<Workflow> r = WorkflowFromProcessString(mutated);
    if (!r.ok()) {
      EXPECT_FALSE(r.status().ok());
    }
  }
}

TEST(XmlFuzzTest, PathologicalInputs) {
  // Hand-picked nasties: each must return, not hang or crash.
  const char* inputs[] = {
      "",
      "   ",
      "<",
      "<>",
      "<a",
      "<a/",
      "<a b=/>",
      "<a b=\">",
      "<!---->",
      "<!--",
      "<?xml",
      "<?xml?><a/>",
      "<a>&;</a>",
      "<a>&#x41;</a>",  // numeric entities are unsupported -> error
      "<a><a><a><a></a></a></a></a>",
      "<a xmlns:b=\"urn:x\" b:c=\"1\"/>",
  };
  for (const char* input : inputs) {
    Result<XmlNode> r = ParseXml(input);
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsParseError()) << input;
    }
  }
}

TEST(XmlFuzzTest, DeeplyNestedDocumentParses) {
  // 2000 levels of nesting: recursion depth must be manageable and the
  // structure preserved.
  std::string open, close;
  const int kDepth = 2000;
  for (int i = 0; i < kDepth; ++i) {
    open += "<n>";
    close += "</n>";
  }
  Result<XmlNode> r = ParseXml(open + close);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const XmlNode* node = &*r;
  int depth = 1;
  while (!node->children().empty()) {
    node = &node->children()[0];
    ++depth;
  }
  EXPECT_EQ(depth, kDepth);
}

}  // namespace
}  // namespace wsflow
