#include "src/workflow/xml.h"

#include <gtest/gtest.h>

#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

TEST(XmlNodeTest, AttributesSetAndGet) {
  XmlNode node("op");
  node.SetAttr("name", std::string("request"));
  node.SetAttr("cycles", 5e6);
  node.SetAttr("id", static_cast<int64_t>(3));
  EXPECT_EQ(node.Attr("name").value(), "request");
  EXPECT_DOUBLE_EQ(node.DoubleAttr("cycles").value(), 5e6);
  EXPECT_EQ(node.IntAttr("id").value(), 3);
  EXPECT_TRUE(node.HasAttr("name"));
  EXPECT_FALSE(node.HasAttr("nope"));
  EXPECT_TRUE(node.Attr("nope").status().IsNotFound());
}

TEST(XmlNodeTest, SetAttrOverwrites) {
  XmlNode node("x");
  node.SetAttr("k", std::string("a"));
  node.SetAttr("k", std::string("b"));
  EXPECT_EQ(node.Attr("k").value(), "b");
  EXPECT_EQ(node.attributes().size(), 1u);
}

TEST(XmlNodeTest, ChildrenNavigation) {
  XmlNode root("workflow");
  root.AddChild("operation").SetAttr("name", std::string("a"));
  root.AddChild("operation").SetAttr("name", std::string("b"));
  root.AddChild("transition");
  EXPECT_EQ(root.Children("operation").size(), 2u);
  EXPECT_EQ(root.Children("transition").size(), 1u);
  EXPECT_EQ(root.Child("operation").value()->Attr("name").value(), "a");
  EXPECT_TRUE(root.Child("missing").status().IsNotFound());
}

TEST(XmlEscapeTest, EscapesSpecials) {
  EXPECT_EQ(XmlEscape("a<b>&\"'c"), "a&lt;b&gt;&amp;&quot;&apos;c");
  EXPECT_EQ(XmlEscape("plain"), "plain");
}

TEST(XmlWriteTest, SelfClosingEmptyElement) {
  XmlNode node("empty");
  node.SetAttr("k", std::string("v"));
  EXPECT_EQ(node.ToString(), "<empty k=\"v\"/>\n");
}

TEST(XmlWriteTest, DeclarationHeader) {
  XmlNode node("root");
  std::string doc = WriteXml(node);
  EXPECT_EQ(doc.find("<?xml version=\"1.0\""), 0u);
}

TEST(XmlParseTest, SimpleElement) {
  XmlNode root = WSFLOW_UNWRAP(ParseXml("<a k=\"v\"/>"));
  EXPECT_EQ(root.tag(), "a");
  EXPECT_EQ(root.Attr("k").value(), "v");
}

TEST(XmlParseTest, NestedElements) {
  XmlNode root = WSFLOW_UNWRAP(ParseXml("<a><b x=\"1\"/><c/></a>"));
  ASSERT_EQ(root.children().size(), 2u);
  EXPECT_EQ(root.children()[0].tag(), "b");
  EXPECT_EQ(root.children()[1].tag(), "c");
}

TEST(XmlParseTest, TextContent) {
  XmlNode root = WSFLOW_UNWRAP(ParseXml("<a>  hello world  </a>"));
  EXPECT_EQ(root.text(), "hello world");
}

TEST(XmlParseTest, EntitiesUnescaped) {
  XmlNode root =
      WSFLOW_UNWRAP(ParseXml("<a k=\"&lt;&amp;&gt;\">&quot;x&apos;</a>"));
  EXPECT_EQ(root.Attr("k").value(), "<&>");
  EXPECT_EQ(root.text(), "\"x'");
}

TEST(XmlParseTest, SingleQuotedAttributes) {
  XmlNode root = WSFLOW_UNWRAP(ParseXml("<a k='v'/>"));
  EXPECT_EQ(root.Attr("k").value(), "v");
}

TEST(XmlParseTest, DeclarationAndCommentsSkipped) {
  XmlNode root = WSFLOW_UNWRAP(ParseXml(
      "<?xml version=\"1.0\"?>\n<!-- header -->\n<a><!-- inner --><b/></a>"));
  EXPECT_EQ(root.tag(), "a");
  ASSERT_EQ(root.children().size(), 1u);
}

TEST(XmlParseTest, WhitespaceBetweenElementsIgnored) {
  XmlNode root = WSFLOW_UNWRAP(ParseXml("<a>\n  <b/>\n  <c/>\n</a>"));
  EXPECT_EQ(root.children().size(), 2u);
  EXPECT_EQ(root.text(), "");
}

TEST(XmlParseTest, MismatchedCloseTagRejected) {
  Result<XmlNode> r = ParseXml("<a><b></a></b>");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
}

TEST(XmlParseTest, UnterminatedElementRejected) {
  EXPECT_TRUE(ParseXml("<a><b/>").status().IsParseError());
}

TEST(XmlParseTest, TrailingContentRejected) {
  EXPECT_TRUE(ParseXml("<a/><b/>").status().IsParseError());
}

TEST(XmlParseTest, UnknownEntityRejected) {
  EXPECT_TRUE(ParseXml("<a>&bogus;</a>").status().IsParseError());
}

TEST(XmlParseTest, UnterminatedAttributeRejected) {
  EXPECT_TRUE(ParseXml("<a k=\"v/>").status().IsParseError());
}

TEST(XmlParseTest, ErrorMentionsLineNumber) {
  Status st = ParseXml("<a>\n<b>\n</c>\n</a>").status();
  ASSERT_TRUE(st.IsParseError());
  EXPECT_NE(st.message().find("line 3"), std::string::npos);
}

TEST(XmlRoundTripTest, WriteParsePreservesStructure) {
  XmlNode root("workflow");
  root.SetAttr("name", std::string("demo & test"));
  XmlNode& op = root.AddChild("operation");
  op.SetAttr("name", std::string("a<b"));
  op.SetAttr("cycles", 12345.678);
  root.AddChild("transition").SetAttr("bits", static_cast<int64_t>(100));

  XmlNode parsed = WSFLOW_UNWRAP(ParseXml(WriteXml(root)));
  EXPECT_EQ(parsed.tag(), "workflow");
  EXPECT_EQ(parsed.Attr("name").value(), "demo & test");
  ASSERT_EQ(parsed.children().size(), 2u);
  EXPECT_EQ(parsed.children()[0].Attr("name").value(), "a<b");
  EXPECT_DOUBLE_EQ(parsed.children()[0].DoubleAttr("cycles").value(),
                   12345.678);
}

TEST(XmlRoundTripTest, DoubleAttrExactRoundTrip) {
  XmlNode node("x");
  double value = 0.1 + 0.2;  // not exactly representable in decimal
  node.SetAttr("v", value);
  XmlNode parsed = WSFLOW_UNWRAP(ParseXml(node.ToString()));
  EXPECT_EQ(parsed.DoubleAttr("v").value(), value);
}

}  // namespace
}  // namespace wsflow
