#include "src/workflow/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/workflow/validate.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

bool SameWorkflow(const Workflow& a, const Workflow& b) {
  if (a.num_operations() != b.num_operations()) return false;
  if (a.num_transitions() != b.num_transitions()) return false;
  for (size_t i = 0; i < a.num_operations(); ++i) {
    OperationId id(static_cast<uint32_t>(i));
    if (a.operation(id).name() != b.operation(id).name()) return false;
    if (a.operation(id).type() != b.operation(id).type()) return false;
    if (a.operation(id).cycles() != b.operation(id).cycles()) return false;
  }
  for (size_t i = 0; i < a.num_transitions(); ++i) {
    TransitionId id(static_cast<uint32_t>(i));
    if (a.transition(id).from != b.transition(id).from) return false;
    if (a.transition(id).to != b.transition(id).to) return false;
    if (a.transition(id).message_bits != b.transition(id).message_bits) {
      return false;
    }
    if (a.transition(id).branch_weight != b.transition(id).branch_weight) {
      return false;
    }
  }
  return true;
}

TEST(SerializationTest, LineRoundTrip) {
  Workflow original = testing::SimpleLine(5, 10e6, 8000);
  std::string xml = WorkflowToXmlString(original);
  Workflow loaded = WSFLOW_UNWRAP(WorkflowFromXmlString(xml));
  EXPECT_TRUE(SameWorkflow(original, loaded));
  EXPECT_EQ(loaded.name(), original.name());
}

TEST(SerializationTest, GraphRoundTripPreservesTypesAndWeights) {
  Workflow original = testing::AllDecisionGraph();
  Workflow loaded =
      WSFLOW_UNWRAP(WorkflowFromXmlString(WorkflowToXmlString(original)));
  EXPECT_TRUE(SameWorkflow(original, loaded));
  WSFLOW_EXPECT_OK(ValidateAll(loaded));
}

TEST(SerializationTest, XmlMentionsAllOperations) {
  Workflow w = testing::SimpleLine(3);
  std::string xml = WorkflowToXmlString(w);
  EXPECT_NE(xml.find("op1"), std::string::npos);
  EXPECT_NE(xml.find("op3"), std::string::npos);
  EXPECT_NE(xml.find("<workflow"), std::string::npos);
}

TEST(SerializationTest, WrongRootTagRejected) {
  EXPECT_TRUE(WorkflowFromXmlString("<network/>").status().IsParseError());
}

TEST(SerializationTest, NonDenseIdsRejected) {
  const char* xml =
      "<workflow name=\"w\">"
      "<operation id=\"1\" name=\"a\" type=\"operational\" cycles=\"1\"/>"
      "</workflow>";
  EXPECT_TRUE(WorkflowFromXmlString(xml).status().IsParseError());
}

TEST(SerializationTest, UnknownTypeRejected) {
  const char* xml =
      "<workflow name=\"w\">"
      "<operation id=\"0\" name=\"a\" type=\"quantum\" cycles=\"1\"/>"
      "</workflow>";
  EXPECT_TRUE(WorkflowFromXmlString(xml).status().IsParseError());
}

TEST(SerializationTest, NegativeCyclesRejected) {
  const char* xml =
      "<workflow name=\"w\">"
      "<operation id=\"0\" name=\"a\" type=\"operational\" cycles=\"-5\"/>"
      "</workflow>";
  EXPECT_TRUE(WorkflowFromXmlString(xml).status().IsParseError());
}

TEST(SerializationTest, TransitionOutOfRangeRejected) {
  const char* xml =
      "<workflow name=\"w\">"
      "<operation id=\"0\" name=\"a\" type=\"operational\" cycles=\"1\"/>"
      "<transition from=\"0\" to=\"5\" bits=\"1\"/>"
      "</workflow>";
  EXPECT_TRUE(WorkflowFromXmlString(xml).status().IsParseError());
}

TEST(SerializationTest, MissingWeightDefaultsToOne) {
  const char* xml =
      "<workflow name=\"w\">"
      "<operation id=\"0\" name=\"a\" type=\"operational\" cycles=\"1\"/>"
      "<operation id=\"1\" name=\"b\" type=\"operational\" cycles=\"1\"/>"
      "<transition from=\"0\" to=\"1\" bits=\"9\"/>"
      "</workflow>";
  Workflow w = WSFLOW_UNWRAP(WorkflowFromXmlString(xml));
  EXPECT_DOUBLE_EQ(w.transition(TransitionId(0)).branch_weight, 1.0);
}

TEST(SerializationTest, FileRoundTrip) {
  Workflow original = testing::AllDecisionGraph();
  std::string path = ::testing::TempDir() + "/wsflow_roundtrip.xml";
  WSFLOW_ASSERT_OK(SaveWorkflow(original, path));
  Workflow loaded = WSFLOW_UNWRAP(LoadWorkflow(path));
  EXPECT_TRUE(SameWorkflow(original, loaded));
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadMissingFileFails) {
  EXPECT_TRUE(
      LoadWorkflow("/nonexistent/dir/w.xml").status().IsNotFound());
}

TEST(SerializationTest, SaveToUnwritablePathFails) {
  Workflow w = testing::SimpleLine(2);
  EXPECT_FALSE(SaveWorkflow(w, "/nonexistent/dir/w.xml").ok());
}

TEST(SerializationTest, SpecialCharactersInNamesSurvive) {
  Workflow w("name with \"quotes\" & <angles>");
  w.AddOperation("op <1>", OperationType::kOperational, 1.0);
  Workflow loaded =
      WSFLOW_UNWRAP(WorkflowFromXmlString(WorkflowToXmlString(w)));
  EXPECT_EQ(loaded.name(), "name with \"quotes\" & <angles>");
  EXPECT_EQ(loaded.operation(OperationId(0)).name(), "op <1>");
}

}  // namespace
}  // namespace wsflow
