#include "src/workflow/generator.h"

#include <gtest/gtest.h>

#include "src/workflow/validate.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

Sampler Fixed(double v) { return ConstantSampler(v); }

LineWorkflowParams LineParams(size_t ops) {
  LineWorkflowParams p;
  p.num_operations = ops;
  p.cycles = Fixed(10e6);
  p.message_bits = Fixed(8000);
  return p;
}

RandomGraphParams GraphParams(GraphShape shape, size_t ops) {
  RandomGraphParams p = ParamsForShape(shape, ops);
  p.cycles = Fixed(10e6);
  p.message_bits = Fixed(8000);
  return p;
}

TEST(LineGeneratorTest, ProducesRequestedSize) {
  Rng rng(1);
  Workflow w = WSFLOW_UNWRAP(GenerateLineWorkflow(LineParams(19), &rng));
  EXPECT_EQ(w.num_operations(), 19u);
  EXPECT_EQ(w.num_transitions(), 18u);
  EXPECT_TRUE(w.IsLine());
}

TEST(LineGeneratorTest, UsesSamplers) {
  Rng rng(1);
  LineWorkflowParams p = LineParams(5);
  p.cycles = [](Rng*) { return 42.0; };
  p.message_bits = [](Rng*) { return 7.0; };
  Workflow w = WSFLOW_UNWRAP(GenerateLineWorkflow(p, &rng));
  for (const Operation& op : w.operations()) EXPECT_EQ(op.cycles(), 42.0);
  for (const Transition& t : w.transitions()) {
    EXPECT_EQ(t.message_bits, 7.0);
  }
}

TEST(LineGeneratorTest, ZeroOperationsRejected) {
  Rng rng(1);
  EXPECT_TRUE(GenerateLineWorkflow(LineParams(0), &rng)
                  .status()
                  .IsInvalidArgument());
}

TEST(LineGeneratorTest, MissingSamplerRejected) {
  Rng rng(1);
  LineWorkflowParams p = LineParams(3);
  p.cycles = nullptr;
  EXPECT_TRUE(
      GenerateLineWorkflow(p, &rng).status().IsInvalidArgument());
}

TEST(ParamsForShapeTest, PaperFractions) {
  EXPECT_DOUBLE_EQ(ParamsForShape(GraphShape::kBushy, 19).decision_fraction,
                   0.50);
  EXPECT_DOUBLE_EQ(ParamsForShape(GraphShape::kLengthy, 19).decision_fraction,
                   0.16);
  EXPECT_DOUBLE_EQ(ParamsForShape(GraphShape::kHybrid, 19).decision_fraction,
                   0.35);
}

TEST(GraphShapeTest, Names) {
  EXPECT_EQ(GraphShapeToString(GraphShape::kBushy), "bushy");
  EXPECT_EQ(GraphShapeToString(GraphShape::kLengthy), "lengthy");
  EXPECT_EQ(GraphShapeToString(GraphShape::kHybrid), "hybrid");
}

class GraphGeneratorShapeTest
    : public ::testing::TestWithParam<std::tuple<GraphShape, size_t>> {};

TEST_P(GraphGeneratorShapeTest, GeneratesWellFormedExactSize) {
  auto [shape, ops] = GetParam();
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    Result<Workflow> w =
        GenerateRandomGraphWorkflow(GraphParams(shape, ops), &rng);
    ASSERT_TRUE(w.ok()) << w.status().ToString() << " seed=" << seed;
    EXPECT_EQ(w->num_operations(), ops) << "seed=" << seed;
    WSFLOW_EXPECT_OK(ValidateAll(*w));
  }
}

TEST_P(GraphGeneratorShapeTest, DecisionFractionMatches) {
  auto [shape, ops] = GetParam();
  double fraction = ParamsForShape(shape, ops).decision_fraction;
  size_t expected_decisions =
      2 * static_cast<size_t>(fraction * static_cast<double>(ops) / 2.0);
  Rng rng(7);
  Workflow w =
      WSFLOW_UNWRAP(GenerateRandomGraphWorkflow(GraphParams(shape, ops), &rng));
  EXPECT_EQ(w.NumDecisionNodes(), expected_decisions);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSizes, GraphGeneratorShapeTest,
    ::testing::Combine(::testing::Values(GraphShape::kBushy,
                                         GraphShape::kLengthy,
                                         GraphShape::kHybrid),
                       ::testing::Values<size_t>(7, 13, 19, 31, 53)),
    [](const ::testing::TestParamInfo<std::tuple<GraphShape, size_t>>& info) {
      return std::string(GraphShapeToString(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param));
    });

TEST(GraphGeneratorTest, DeterministicGivenSeed) {
  Rng rng1(99);
  Rng rng2(99);
  Workflow a = WSFLOW_UNWRAP(
      GenerateRandomGraphWorkflow(GraphParams(GraphShape::kHybrid, 19), &rng1));
  Workflow b = WSFLOW_UNWRAP(
      GenerateRandomGraphWorkflow(GraphParams(GraphShape::kHybrid, 19), &rng2));
  ASSERT_EQ(a.num_operations(), b.num_operations());
  ASSERT_EQ(a.num_transitions(), b.num_transitions());
  for (size_t i = 0; i < a.num_operations(); ++i) {
    OperationId id(static_cast<uint32_t>(i));
    EXPECT_EQ(a.operation(id).type(), b.operation(id).type());
    EXPECT_EQ(a.operation(id).cycles(), b.operation(id).cycles());
  }
  for (size_t i = 0; i < a.num_transitions(); ++i) {
    TransitionId id(static_cast<uint32_t>(i));
    EXPECT_EQ(a.transition(id).from, b.transition(id).from);
    EXPECT_EQ(a.transition(id).to, b.transition(id).to);
  }
}

TEST(GraphGeneratorTest, DifferentSeedsProduceDifferentGraphs) {
  Rng rng1(1);
  Rng rng2(2);
  Workflow a = WSFLOW_UNWRAP(
      GenerateRandomGraphWorkflow(GraphParams(GraphShape::kBushy, 19), &rng1));
  Workflow b = WSFLOW_UNWRAP(
      GenerateRandomGraphWorkflow(GraphParams(GraphShape::kBushy, 19), &rng2));
  bool differs = a.num_transitions() != b.num_transitions();
  if (!differs) {
    for (size_t i = 0; i < a.num_transitions(); ++i) {
      TransitionId id(static_cast<uint32_t>(i));
      if (a.transition(id).from != b.transition(id).from ||
          a.transition(id).to != b.transition(id).to) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(GraphGeneratorTest, ZeroDecisionFractionIsALine) {
  RandomGraphParams p = GraphParams(GraphShape::kHybrid, 10);
  p.decision_fraction = 0.0;
  Rng rng(3);
  Workflow w = WSFLOW_UNWRAP(GenerateRandomGraphWorkflow(p, &rng));
  EXPECT_TRUE(w.IsLine());
  EXPECT_EQ(w.NumDecisionNodes(), 0u);
}

TEST(GraphGeneratorTest, DecisionCyclesSamplerUsed) {
  RandomGraphParams p = GraphParams(GraphShape::kBushy, 15);
  p.cycles = Fixed(100.0);
  p.decision_cycles = Fixed(7.0);
  Rng rng(5);
  Workflow w = WSFLOW_UNWRAP(GenerateRandomGraphWorkflow(p, &rng));
  for (const Operation& op : w.operations()) {
    if (op.is_decision()) {
      EXPECT_EQ(op.cycles(), 7.0) << op.name();
    } else {
      EXPECT_EQ(op.cycles(), 100.0) << op.name();
    }
  }
}

TEST(GraphGeneratorTest, XorWeightsPositive) {
  RandomGraphParams p = GraphParams(GraphShape::kBushy, 19);
  p.and_weight = 0;
  p.or_weight = 0;
  p.xor_weight = 1;  // all blocks XOR
  Rng rng(11);
  Workflow w = WSFLOW_UNWRAP(GenerateRandomGraphWorkflow(p, &rng));
  for (const Operation& op : w.operations()) {
    if (op.type() == OperationType::kXorSplit) {
      for (TransitionId t : w.out_edges(op.id())) {
        EXPECT_GT(w.transition(t).branch_weight, 0.0);
      }
    }
    // With and/or weights zero, no AND or OR splits may appear.
    EXPECT_NE(op.type(), OperationType::kAndSplit);
    EXPECT_NE(op.type(), OperationType::kOrSplit);
  }
}

TEST(GraphGeneratorTest, InvalidParamsRejected) {
  Rng rng(1);
  RandomGraphParams p = GraphParams(GraphShape::kHybrid, 0);
  EXPECT_TRUE(
      GenerateRandomGraphWorkflow(p, &rng).status().IsInvalidArgument());

  p = GraphParams(GraphShape::kHybrid, 10);
  p.decision_fraction = 1.5;
  EXPECT_TRUE(
      GenerateRandomGraphWorkflow(p, &rng).status().IsInvalidArgument());

  p = GraphParams(GraphShape::kHybrid, 10);
  p.max_branches = 1;
  EXPECT_TRUE(
      GenerateRandomGraphWorkflow(p, &rng).status().IsInvalidArgument());
}

TEST(GraphGeneratorTest, AllDecisionFractionInfeasible) {
  RandomGraphParams p = GraphParams(GraphShape::kHybrid, 4);
  p.decision_fraction = 1.0;  // 2 blocks, 0 operational nodes
  Rng rng(1);
  EXPECT_TRUE(
      GenerateRandomGraphWorkflow(p, &rng).status().IsInvalidArgument());
}

}  // namespace
}  // namespace wsflow
