#include "src/workflow/workflow.h"

#include <gtest/gtest.h>

#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

using testing::SimpleLine;

TEST(WorkflowTest, EmptyWorkflow) {
  Workflow w("empty");
  EXPECT_EQ(w.name(), "empty");
  EXPECT_EQ(w.num_operations(), 0u);
  EXPECT_EQ(w.num_transitions(), 0u);
  EXPECT_FALSE(w.IsLine());
}

TEST(WorkflowTest, AddOperationAssignsDenseIds) {
  Workflow w;
  OperationId a = w.AddOperation("a", OperationType::kOperational, 1.0);
  OperationId b = w.AddOperation("b", OperationType::kOperational, 2.0);
  EXPECT_EQ(a.value, 0u);
  EXPECT_EQ(b.value, 1u);
  EXPECT_EQ(w.operation(a).name(), "a");
  EXPECT_EQ(w.operation(b).cycles(), 2.0);
}

TEST(WorkflowTest, AddTransitionLinks) {
  Workflow w;
  OperationId a = w.AddOperation("a", OperationType::kOperational, 1.0);
  OperationId b = w.AddOperation("b", OperationType::kOperational, 1.0);
  TransitionId t = w.AddTransition(a, b, 100.0).value();
  EXPECT_EQ(w.transition(t).from, a);
  EXPECT_EQ(w.transition(t).to, b);
  EXPECT_EQ(w.transition(t).message_bits, 100.0);
  EXPECT_EQ(w.out_degree(a), 1u);
  EXPECT_EQ(w.in_degree(b), 1u);
  EXPECT_EQ(w.in_degree(a), 0u);
  EXPECT_EQ(w.out_degree(b), 0u);
}

TEST(WorkflowTest, DuplicateTransitionRejected) {
  Workflow w;
  OperationId a = w.AddOperation("a", OperationType::kOperational, 1.0);
  OperationId b = w.AddOperation("b", OperationType::kOperational, 1.0);
  ASSERT_TRUE(w.AddTransition(a, b, 1.0).ok());
  // Paper §2.2: at most one message per operation pair.
  EXPECT_TRUE(w.AddTransition(a, b, 2.0).status().IsAlreadyExists());
  // The reverse edge is a different pair.
  EXPECT_TRUE(w.AddTransition(b, a, 2.0).ok());
}

TEST(WorkflowTest, SelfTransitionRejected) {
  Workflow w;
  OperationId a = w.AddOperation("a", OperationType::kOperational, 1.0);
  EXPECT_TRUE(w.AddTransition(a, a, 1.0).status().IsInvalidArgument());
}

TEST(WorkflowTest, TransitionToUnknownOperationRejected) {
  Workflow w;
  OperationId a = w.AddOperation("a", OperationType::kOperational, 1.0);
  EXPECT_TRUE(w.AddTransition(a, OperationId(9), 1.0).status().IsNotFound());
}

TEST(WorkflowTest, NegativeMessageRejected) {
  Workflow w;
  OperationId a = w.AddOperation("a", OperationType::kOperational, 1.0);
  OperationId b = w.AddOperation("b", OperationType::kOperational, 1.0);
  EXPECT_TRUE(w.AddTransition(a, b, -1.0).status().IsInvalidArgument());
  EXPECT_TRUE(w.AddTransition(a, b, 1.0, -0.5).status().IsInvalidArgument());
}

TEST(WorkflowTest, FindTransition) {
  Workflow w;
  OperationId a = w.AddOperation("a", OperationType::kOperational, 1.0);
  OperationId b = w.AddOperation("b", OperationType::kOperational, 1.0);
  OperationId c = w.AddOperation("c", OperationType::kOperational, 1.0);
  TransitionId ab = w.AddTransition(a, b, 1.0).value();
  EXPECT_EQ(w.FindTransition(a, b).value(), ab);
  EXPECT_TRUE(w.FindTransition(a, c).status().IsNotFound());
  EXPECT_TRUE(w.FindTransition(b, a).status().IsNotFound());
}

TEST(WorkflowTest, SourcesAndSinks) {
  Workflow w = SimpleLine(4);
  ASSERT_EQ(w.Sources().size(), 1u);
  ASSERT_EQ(w.Sinks().size(), 1u);
  EXPECT_EQ(w.Sources()[0].value, 0u);
  EXPECT_EQ(w.Sinks()[0].value, 3u);
}

TEST(WorkflowTest, LineDetection) {
  EXPECT_TRUE(SimpleLine(1).IsLine());
  EXPECT_TRUE(SimpleLine(5).IsLine());
}

TEST(WorkflowTest, LineOrderReturnsPathOrder) {
  Workflow w = SimpleLine(5);
  std::vector<OperationId> order = w.LineOrder().value();
  ASSERT_EQ(order.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(order[i].value, i);
}

TEST(WorkflowTest, BranchingIsNotLine) {
  Workflow w;
  OperationId a = w.AddOperation("a", OperationType::kAndSplit, 1.0);
  OperationId b = w.AddOperation("b", OperationType::kOperational, 1.0);
  OperationId c = w.AddOperation("c", OperationType::kOperational, 1.0);
  ASSERT_TRUE(w.AddTransition(a, b, 1.0).ok());
  ASSERT_TRUE(w.AddTransition(a, c, 1.0).ok());
  EXPECT_FALSE(w.IsLine());
}

TEST(WorkflowTest, DisconnectedIsNotLine) {
  Workflow w;
  w.AddOperation("a", OperationType::kOperational, 1.0);
  w.AddOperation("b", OperationType::kOperational, 1.0);
  EXPECT_FALSE(w.IsLine());
}

TEST(WorkflowTest, CycleIsNotLineAndFailsTopo) {
  Workflow w;
  OperationId a = w.AddOperation("a", OperationType::kOperational, 1.0);
  OperationId b = w.AddOperation("b", OperationType::kOperational, 1.0);
  OperationId c = w.AddOperation("c", OperationType::kOperational, 1.0);
  ASSERT_TRUE(w.AddTransition(a, b, 1.0).ok());
  ASSERT_TRUE(w.AddTransition(b, c, 1.0).ok());
  ASSERT_TRUE(w.AddTransition(c, b, 1.0).ok());
  EXPECT_FALSE(w.IsLine());
  EXPECT_TRUE(w.TopologicalOrder().status().IsFailedPrecondition());
}

TEST(WorkflowTest, TopologicalOrderRespectsEdges) {
  Workflow w = testing::AllDecisionGraph();
  std::vector<OperationId> order = w.TopologicalOrder().value();
  ASSERT_EQ(order.size(), w.num_operations());
  std::vector<size_t> position(w.num_operations());
  for (size_t i = 0; i < order.size(); ++i) position[order[i].value] = i;
  for (const Transition& t : w.transitions()) {
    EXPECT_LT(position[t.from.value], position[t.to.value]);
  }
}

TEST(WorkflowTest, Totals) {
  Workflow w = SimpleLine(3, 10.0, 100.0);
  EXPECT_DOUBLE_EQ(w.TotalCycles(), 30.0);
  EXPECT_DOUBLE_EQ(w.TotalMessageBits(), 200.0);
}

TEST(WorkflowTest, DecisionNodeCounts) {
  Workflow w = testing::AllDecisionGraph();
  EXPECT_EQ(w.NumDecisionNodes(), 6u);  // 3 splits + 3 joins
  EXPECT_EQ(w.NumOperationalNodes(), w.num_operations() - 6);
}

TEST(MakeLineWorkflowTest, SizesMustMatch) {
  EXPECT_TRUE(MakeLineWorkflow("w", {1.0, 2.0}, {})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      MakeLineWorkflow("w", {}, {}).status().IsInvalidArgument());
  EXPECT_TRUE(MakeLineWorkflow("w", {1.0}, {}).ok());
}

TEST(MakeLineWorkflowTest, PreservesValues) {
  Workflow w = MakeLineWorkflow("w", {1.0, 2.0, 3.0}, {10.0, 20.0}).value();
  EXPECT_EQ(w.operation(OperationId(1)).cycles(), 2.0);
  EXPECT_EQ(w.transition(TransitionId(1)).message_bits, 20.0);
  EXPECT_TRUE(w.IsLine());
}

}  // namespace
}  // namespace wsflow
