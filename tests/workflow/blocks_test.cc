#include "src/workflow/blocks.h"

#include <gtest/gtest.h>

#include "src/workflow/builder.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

using testing::SimpleLine;

TEST(BlocksTest, LineDecomposesToSequenceOfLeaves) {
  Workflow w = SimpleLine(4);
  Block root = WSFLOW_UNWRAP(DecomposeBlocks(w));
  ASSERT_EQ(root.kind, Block::Kind::kSequence);
  ASSERT_EQ(root.children.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(root.children[i].kind, Block::Kind::kLeaf);
    EXPECT_EQ(root.children[i].op.value, i);
  }
  EXPECT_EQ(root.CountOperations(), 4u);
}

TEST(BlocksTest, SingleOperation) {
  Workflow w = SimpleLine(1);
  Block root = WSFLOW_UNWRAP(DecomposeBlocks(w));
  ASSERT_EQ(root.kind, Block::Kind::kSequence);
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.CountOperations(), 1u);
}

TEST(BlocksTest, EmptyWorkflowRejected) {
  Workflow w;
  EXPECT_TRUE(DecomposeBlocks(w).status().IsFailedPrecondition());
}

TEST(BlocksTest, AndBlockStructure) {
  WorkflowBuilder b("and");
  b.Split(OperationType::kAndSplit, "s", 1.0);
  b.Branch().Op("l", 1.0, 1.0);
  b.Branch().Op("r", 1.0, 1.0);
  b.Join("j", 1.0, 1.0);
  Workflow w = WSFLOW_UNWRAP(b.Build());

  Block root = WSFLOW_UNWRAP(DecomposeBlocks(w));
  ASSERT_EQ(root.kind, Block::Kind::kSequence);
  ASSERT_EQ(root.children.size(), 1u);
  const Block& blk = root.children[0];
  EXPECT_EQ(blk.kind, Block::Kind::kBranch);
  EXPECT_EQ(blk.branch_type, OperationType::kAndSplit);
  EXPECT_EQ(w.operation(blk.split).name(), "s");
  EXPECT_EQ(w.operation(blk.join).name(), "j");
  ASSERT_EQ(blk.children.size(), 2u);
  EXPECT_EQ(blk.branch_probs, (std::vector<double>{1.0, 1.0}));
  EXPECT_EQ(blk.CountOperations(), 4u);
}

TEST(BlocksTest, XorProbabilitiesNormalized) {
  WorkflowBuilder b("xor");
  b.Split(OperationType::kXorSplit, "s", 1.0);
  b.Branch(3.0).Op("hot", 1.0, 1.0);
  b.Branch(1.0).Op("cold", 1.0, 1.0);
  b.Join("j", 1.0, 1.0);
  Workflow w = WSFLOW_UNWRAP(b.Build());

  Block root = WSFLOW_UNWRAP(DecomposeBlocks(w));
  const Block& blk = root.children[0];
  ASSERT_EQ(blk.branch_probs.size(), 2u);
  EXPECT_DOUBLE_EQ(blk.branch_probs[0], 0.75);
  EXPECT_DOUBLE_EQ(blk.branch_probs[1], 0.25);
}

TEST(BlocksTest, EmptyBranchGivesEmptySequenceBody) {
  WorkflowBuilder b("empty");
  b.Split(OperationType::kXorSplit, "s", 1.0);
  b.Branch(0.5).Op("work", 1.0, 1.0);
  b.Branch(0.5);
  b.Join("j", 1.0, 1.0);
  Workflow w = WSFLOW_UNWRAP(b.Build());

  Block root = WSFLOW_UNWRAP(DecomposeBlocks(w));
  const Block& blk = root.children[0];
  ASSERT_EQ(blk.children.size(), 2u);
  bool found_empty = false;
  for (const Block& body : blk.children) {
    if (body.kind == Block::Kind::kSequence && body.children.empty()) {
      found_empty = true;
    }
  }
  EXPECT_TRUE(found_empty);
  EXPECT_EQ(blk.CountOperations(), 3u);
}

TEST(BlocksTest, NestedBlocksCounted) {
  Workflow w = testing::AllDecisionGraph();
  Block root = WSFLOW_UNWRAP(DecomposeBlocks(w));
  EXPECT_EQ(root.CountOperations(), w.num_operations());
  // a, AND-block, XOR-block, OR-block, h -> 5 top-level children.
  EXPECT_EQ(root.children.size(), 5u);
  EXPECT_EQ(root.children[1].branch_type, OperationType::kAndSplit);
  EXPECT_EQ(root.children[2].branch_type, OperationType::kXorSplit);
  EXPECT_EQ(root.children[3].branch_type, OperationType::kOrSplit);
}

TEST(BlocksTest, MismatchedComplementRejected) {
  // AND split closed by an XOR join.
  Workflow w;
  OperationId s = w.AddOperation("s", OperationType::kAndSplit, 1.0);
  OperationId a = w.AddOperation("a", OperationType::kOperational, 1.0);
  OperationId b = w.AddOperation("b", OperationType::kOperational, 1.0);
  OperationId j = w.AddOperation("j", OperationType::kXorJoin, 1.0);
  ASSERT_TRUE(w.AddTransition(s, a, 1.0).ok());
  ASSERT_TRUE(w.AddTransition(s, b, 1.0).ok());
  ASSERT_TRUE(w.AddTransition(a, j, 1.0).ok());
  ASSERT_TRUE(w.AddTransition(b, j, 1.0).ok());
  EXPECT_TRUE(DecomposeBlocks(w).status().IsFailedPrecondition());
}

TEST(BlocksTest, BranchesNotReconvergingRejected) {
  // Split whose branches end in two different sinks.
  Workflow w;
  OperationId s = w.AddOperation("s", OperationType::kAndSplit, 1.0);
  OperationId a = w.AddOperation("a", OperationType::kOperational, 1.0);
  OperationId b = w.AddOperation("b", OperationType::kOperational, 1.0);
  ASSERT_TRUE(w.AddTransition(s, a, 1.0).ok());
  ASSERT_TRUE(w.AddTransition(s, b, 1.0).ok());
  EXPECT_FALSE(DecomposeBlocks(w).ok());
}

TEST(BlocksTest, OperationalBranchingRejected) {
  // An operational node with two successors is not allowed.
  Workflow w;
  OperationId a = w.AddOperation("a", OperationType::kOperational, 1.0);
  OperationId b = w.AddOperation("b", OperationType::kOperational, 1.0);
  OperationId c = w.AddOperation("c", OperationType::kOperational, 1.0);
  OperationId j = w.AddOperation("j", OperationType::kAndJoin, 1.0);
  ASSERT_TRUE(w.AddTransition(a, b, 1.0).ok());
  ASSERT_TRUE(w.AddTransition(a, c, 1.0).ok());
  ASSERT_TRUE(w.AddTransition(b, j, 1.0).ok());
  ASSERT_TRUE(w.AddTransition(c, j, 1.0).ok());
  EXPECT_TRUE(DecomposeBlocks(w).status().IsFailedPrecondition());
}

TEST(BlocksTest, MultipleSourcesRejected) {
  Workflow w;
  OperationId a = w.AddOperation("a", OperationType::kOperational, 1.0);
  OperationId b = w.AddOperation("b", OperationType::kOperational, 1.0);
  OperationId j = w.AddOperation("j", OperationType::kAndJoin, 1.0);
  ASSERT_TRUE(w.AddTransition(a, j, 1.0).ok());
  ASSERT_TRUE(w.AddTransition(b, j, 1.0).ok());
  EXPECT_TRUE(DecomposeBlocks(w).status().IsFailedPrecondition());
}

TEST(BlocksTest, CycleRejected) {
  Workflow w;
  OperationId a = w.AddOperation("a", OperationType::kOperational, 1.0);
  OperationId b = w.AddOperation("b", OperationType::kOperational, 1.0);
  OperationId c = w.AddOperation("c", OperationType::kOperational, 1.0);
  ASSERT_TRUE(w.AddTransition(a, b, 1.0).ok());
  ASSERT_TRUE(w.AddTransition(b, c, 1.0).ok());
  ASSERT_TRUE(w.AddTransition(c, a, 1.0).ok());
  EXPECT_FALSE(DecomposeBlocks(w).ok());
}

TEST(BlocksTest, ZeroWeightXorRejected) {
  Workflow w;
  OperationId s = w.AddOperation("s", OperationType::kXorSplit, 1.0);
  OperationId a = w.AddOperation("a", OperationType::kOperational, 1.0);
  OperationId b = w.AddOperation("b", OperationType::kOperational, 1.0);
  OperationId j = w.AddOperation("j", OperationType::kXorJoin, 1.0);
  ASSERT_TRUE(w.AddTransition(s, a, 1.0, 0.0).ok());
  ASSERT_TRUE(w.AddTransition(s, b, 1.0, 0.0).ok());
  ASSERT_TRUE(w.AddTransition(a, j, 1.0).ok());
  ASSERT_TRUE(w.AddTransition(b, j, 1.0).ok());
  EXPECT_TRUE(DecomposeBlocks(w).status().IsFailedPrecondition());
}

TEST(BlocksTest, ToStringRendersTree) {
  Workflow w = testing::AllDecisionGraph();
  Block root = WSFLOW_UNWRAP(DecomposeBlocks(w));
  std::string str = root.ToString(w);
  EXPECT_NE(str.find("sequence"), std::string::npos);
  EXPECT_NE(str.find("branch and-split"), std::string::npos);
  EXPECT_NE(str.find("leaf a"), std::string::npos);
}

}  // namespace
}  // namespace wsflow
