#include "src/workflow/validate.h"

#include <gtest/gtest.h>

#include "src/workflow/builder.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

TEST(ValidateTest, LineIsWellFormed) {
  WSFLOW_EXPECT_OK(ValidateWorkflow(testing::SimpleLine(5)));
}

TEST(ValidateTest, AllDecisionGraphIsWellFormed) {
  WSFLOW_EXPECT_OK(ValidateAll(testing::AllDecisionGraph()));
}

TEST(ValidateTest, EmptyRejected) {
  Workflow w;
  EXPECT_TRUE(ValidateWorkflow(w).IsFailedPrecondition());
}

TEST(ValidateTest, TwoSinksRejected) {
  Workflow w;
  OperationId a = w.AddOperation("a", OperationType::kOperational, 1.0);
  OperationId b = w.AddOperation("b", OperationType::kOperational, 1.0);
  OperationId c = w.AddOperation("c", OperationType::kOperational, 1.0);
  ASSERT_TRUE(w.AddTransition(a, b, 1.0).ok());
  ASSERT_TRUE(w.AddTransition(b, c, 1.0).ok());
  w.AddOperation("stray", OperationType::kOperational, 1.0);
  // The stray node is both a second source and a second sink.
  EXPECT_TRUE(ValidateWorkflow(w).IsFailedPrecondition());
}

TEST(ValidateTest, QuantitiesAcceptZeroCycles) {
  Workflow w;
  w.AddOperation("free", OperationType::kOperational, 0.0);
  WSFLOW_EXPECT_OK(ValidateQuantities(w));
}

TEST(ValidateTest, ValidateAllComposesBothChecks) {
  // Structurally fine but an XOR with all-zero weights must fail.
  Workflow w;
  OperationId s = w.AddOperation("s", OperationType::kXorSplit, 1.0);
  OperationId a = w.AddOperation("a", OperationType::kOperational, 1.0);
  OperationId b = w.AddOperation("b", OperationType::kOperational, 1.0);
  OperationId j = w.AddOperation("j", OperationType::kXorJoin, 1.0);
  ASSERT_TRUE(w.AddTransition(s, a, 1.0, 0.0).ok());
  ASSERT_TRUE(w.AddTransition(s, b, 1.0, 0.0).ok());
  ASSERT_TRUE(w.AddTransition(a, j, 1.0).ok());
  ASSERT_TRUE(w.AddTransition(b, j, 1.0).ok());
  EXPECT_FALSE(ValidateAll(w).ok());
}

TEST(ValidateTest, XorWithPositiveWeightSumAccepted) {
  WorkflowBuilder b("ok");
  b.Split(OperationType::kXorSplit, "s", 1.0);
  b.Branch(1.0).Op("a", 1.0, 1.0);
  b.Branch(2.0).Op("bb", 1.0, 1.0);
  b.Join("j", 1.0, 1.0);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  WSFLOW_EXPECT_OK(ValidateAll(w));
}

TEST(ValidateTest, JoinReachedOutsideBlockRejected) {
  // A bare join with a single predecessor: unbalanced complement.
  Workflow w;
  OperationId a = w.AddOperation("a", OperationType::kOperational, 1.0);
  OperationId j = w.AddOperation("j", OperationType::kAndJoin, 1.0);
  ASSERT_TRUE(w.AddTransition(a, j, 1.0).ok());
  EXPECT_TRUE(ValidateWorkflow(w).IsFailedPrecondition());
}

TEST(ValidateTest, SplitNeverClosedRejected) {
  Workflow w;
  OperationId s = w.AddOperation("s", OperationType::kOrSplit, 1.0);
  OperationId a = w.AddOperation("a", OperationType::kOperational, 1.0);
  OperationId b = w.AddOperation("b", OperationType::kOperational, 1.0);
  OperationId z = w.AddOperation("z", OperationType::kOperational, 1.0);
  ASSERT_TRUE(w.AddTransition(s, a, 1.0).ok());
  ASSERT_TRUE(w.AddTransition(s, b, 1.0).ok());
  ASSERT_TRUE(w.AddTransition(a, z, 1.0).ok());
  ASSERT_TRUE(w.AddTransition(b, z, 1.0).ok());
  // z is operational, not /OR: complement missing.
  EXPECT_TRUE(ValidateWorkflow(w).IsFailedPrecondition());
}

}  // namespace
}  // namespace wsflow
