#include "src/workflow/metrics.h"

#include <gtest/gtest.h>

#include "src/exp/config.h"
#include "src/workflow/builder.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

TEST(MetricsTest, LineWorkflow) {
  Workflow w = testing::SimpleLine(5, 10e6, 8000);
  WorkflowMetrics m = WSFLOW_UNWRAP(ComputeWorkflowMetrics(w));
  EXPECT_EQ(m.num_operations, 5u);
  EXPECT_EQ(m.num_transitions, 4u);
  EXPECT_EQ(m.num_decision_nodes, 0u);
  EXPECT_DOUBLE_EQ(m.decision_fraction, 0.0);
  EXPECT_EQ(m.depth, 5u);
  EXPECT_EQ(m.max_fan_out, 0u);
  EXPECT_EQ(m.max_nesting, 0u);
  EXPECT_DOUBLE_EQ(m.expected_executed_operations, 5.0);
  EXPECT_DOUBLE_EQ(m.total_cycles, 50e6);
  EXPECT_DOUBLE_EQ(m.expected_cycles, 50e6);
  EXPECT_DOUBLE_EQ(m.total_message_bits, 32000.0);
  EXPECT_DOUBLE_EQ(m.expected_message_bits, 32000.0);
}

TEST(MetricsTest, AllDecisionGraph) {
  Workflow w = testing::AllDecisionGraph(10e6, 8000);
  WorkflowMetrics m = WSFLOW_UNWRAP(ComputeWorkflowMetrics(w));
  EXPECT_EQ(m.num_operations, 14u);
  EXPECT_EQ(m.num_decision_nodes, 6u);
  EXPECT_NEAR(m.decision_fraction, 6.0 / 14.0, 1e-12);
  // Longest path: a, AND(split,b,join), XOR(split,d,join), OR(split,f,join),
  // h = 1 + 3 + 3 + 3 + 1 = 11.
  EXPECT_EQ(m.depth, 11u);
  EXPECT_EQ(m.max_fan_out, 2u);
  EXPECT_EQ(m.max_nesting, 1u);
  // 12 unconditional ops + XOR arms at 0.7/0.3.
  EXPECT_NEAR(m.expected_executed_operations, 13.0, 1e-12);
  EXPECT_NEAR(m.expected_cycles, 13.0 * 10e6, 1e-3);
  EXPECT_LT(m.expected_message_bits, m.total_message_bits);
}

TEST(MetricsTest, NestedBlocksCountNesting) {
  WorkflowBuilder b("nested");
  b.Split(OperationType::kAndSplit, "outer", 1.0);
  b.Branch();
  b.Split(OperationType::kXorSplit, "inner", 1.0, 1.0);
  b.Branch(0.5).Op("x", 1.0, 1.0);
  b.Branch(0.5).Op("y", 1.0, 1.0);
  b.Join("inner_j", 1.0, 1.0);
  b.Branch().Op("z", 1.0, 1.0);
  b.Join("outer_j", 1.0, 1.0);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  WorkflowMetrics m = WSFLOW_UNWRAP(ComputeWorkflowMetrics(w));
  EXPECT_EQ(m.max_nesting, 2u);
  // Longest path: outer split, inner split, x, inner join, outer join = 5.
  EXPECT_EQ(m.depth, 5u);
}

TEST(MetricsTest, FanOutTracksWidestSplit) {
  WorkflowBuilder b("wide");
  b.Split(OperationType::kOrSplit, "s", 1.0);
  b.Branch().Op("a", 1.0, 1.0);
  b.Branch().Op("bb", 1.0, 1.0);
  b.Branch().Op("c", 1.0, 1.0);
  b.Branch().Op("d", 1.0, 1.0);
  b.Join("j", 1.0, 1.0);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  WorkflowMetrics m = WSFLOW_UNWRAP(ComputeWorkflowMetrics(w));
  EXPECT_EQ(m.max_fan_out, 4u);
  EXPECT_EQ(m.depth, 3u);  // split, one op, join
}

TEST(MetricsTest, BushyShallowerThanLengthy) {
  // The §4.2 taxonomy in numbers: for equal operation counts, bushy graphs
  // are shallower than lengthy ones (averaged over seeds).
  double bushy_depth = 0, lengthy_depth = 0;
  const int kTrials = 10;
  for (int trial = 0; trial < kTrials; ++trial) {
    ExperimentConfig bushy = MakeClassCConfig(WorkloadKind::kBushyGraph);
    ExperimentConfig lengthy = MakeClassCConfig(WorkloadKind::kLengthyGraph);
    TrialInstance tb = WSFLOW_UNWRAP(DrawTrial(bushy, trial));
    TrialInstance tl = WSFLOW_UNWRAP(DrawTrial(lengthy, trial));
    bushy_depth += static_cast<double>(
        WSFLOW_UNWRAP(ComputeWorkflowMetrics(tb.workflow)).depth);
    lengthy_depth += static_cast<double>(
        WSFLOW_UNWRAP(ComputeWorkflowMetrics(tl.workflow)).depth);
  }
  EXPECT_LT(bushy_depth, lengthy_depth);
}

TEST(MetricsTest, MalformedWorkflowRejected) {
  Workflow w;
  w.AddOperation("a", OperationType::kOperational, 1.0);
  w.AddOperation("stray", OperationType::kOperational, 1.0);
  EXPECT_FALSE(ComputeWorkflowMetrics(w).ok());
}

TEST(MetricsTest, ToStringMentionsKeyFields) {
  Workflow w = testing::SimpleLine(3);
  WorkflowMetrics m = WSFLOW_UNWRAP(ComputeWorkflowMetrics(w));
  std::string s = m.ToString();
  EXPECT_NE(s.find("ops=3"), std::string::npos);
  EXPECT_NE(s.find("depth=3"), std::string::npos);
}

}  // namespace
}  // namespace wsflow
