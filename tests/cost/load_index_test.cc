// Unit tests of the order-statistic load index: the O(log N) fairness
// penalty must track a naive O(N) recompute through arbitrary update
// histories, and — because node priorities are hashed from the key bits —
// the tree shape, and therefore every returned bit pattern, must be a
// pure function of the stored loads, never of how they were reached.

#include "src/cost/load_index.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/random.h"

namespace wsflow {
namespace {

double NaivePenalty(const std::vector<double>& loads) {
  if (loads.empty()) return 0.0;
  double avg = 0;
  for (double l : loads) avg += l;
  avg /= static_cast<double>(loads.size());
  double penalty = 0;
  for (double l : loads) penalty += std::fabs(l - avg) / 2.0;
  return penalty;
}

void ExpectNear(double index_value, double naive_value) {
  EXPECT_LE(std::fabs(index_value - naive_value),
            1e-12 * (1.0 + std::fabs(naive_value)))
      << "index=" << index_value << " naive=" << naive_value;
}

TEST(LoadIndexTest, EmptyIndexHasZeroPenalty) {
  LoadIndex index;
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.TotalLoad(), 0.0);
  EXPECT_EQ(index.Penalty(), 0.0);
}

TEST(LoadIndexTest, SingleServerHasZeroPenalty) {
  LoadIndex index;
  index.Rebuild(std::vector<double>{3.5});
  EXPECT_EQ(index.size(), 1u);
  EXPECT_EQ(index.Penalty(), 0.0);
}

TEST(LoadIndexTest, EqualLoadsHaveZeroPenalty) {
  LoadIndex index;
  index.Rebuild(std::vector<double>(16, 2.25));
  EXPECT_EQ(index.Penalty(), 0.0);
}

TEST(LoadIndexTest, MatchesNaivePenaltyAfterRebuild) {
  for (size_t n : {2u, 3u, 5u, 8u, 64u, 256u}) {
    Rng rng(n * 31 + 7);
    std::vector<double> loads(n);
    for (double& l : loads) l = rng.NextDouble() * 10.0;
    LoadIndex index;
    index.Rebuild(loads);
    EXPECT_EQ(index.size(), n);
    ExpectNear(index.Penalty(), NaivePenalty(loads));
  }
}

TEST(LoadIndexTest, TracksNaivePenaltyThroughRandomUpdates) {
  constexpr size_t kServers = 24;
  Rng rng(4242);
  std::vector<double> loads(kServers);
  for (double& l : loads) l = rng.NextDouble() * 5.0;
  LoadIndex index;
  index.Rebuild(loads);
  for (size_t step = 0; step < 2000; ++step) {
    uint32_t s = static_cast<uint32_t>(rng.NextBounded(kServers));
    // Mix fresh values with duplicates of other cells and exact zeros so
    // equal keys and ties get exercised, not just generic doubles.
    double next;
    double dice = rng.NextDouble();
    if (dice < 0.1) {
      next = 0.0;
    } else if (dice < 0.3) {
      next = loads[rng.NextBounded(kServers)];
    } else {
      next = rng.NextDouble() * 5.0;
    }
    index.Update(s, loads[s], next);
    loads[s] = next;
    ExpectNear(index.Penalty(), NaivePenalty(loads));
    ExpectNear(index.TotalLoad(), [&] {
      double sum = 0;
      for (double l : loads) sum += l;
      return sum;
    }());
    if (HasNonfatalFailure()) {
      ADD_FAILURE() << "diverged at step " << step;
      return;
    }
  }
}

TEST(LoadIndexTest, PenaltyIsAPureFunctionOfTheStoredLoads) {
  // Drive two indexes to the same load vector along different update
  // histories; every aggregate must come back bit-identical, because the
  // treap shape depends only on the stored keys.
  constexpr size_t kServers = 17;
  Rng rng(99);
  std::vector<double> start(kServers), target(kServers);
  for (double& l : start) l = rng.NextDouble();
  for (double& l : target) l = rng.NextDouble();

  LoadIndex direct;
  direct.Rebuild(target);

  LoadIndex updated;
  updated.Rebuild(start);
  std::vector<double> current = start;
  // Walk to the target in a scrambled order, with a detour per cell.
  for (size_t i = 0; i < kServers; ++i) {
    uint32_t s = static_cast<uint32_t>((i * 5 + 3) % kServers);
    double detour = rng.NextDouble() * 7.0;
    updated.Update(s, current[s], detour);
    updated.Update(s, detour, target[s]);
    current[s] = target[s];
  }

  EXPECT_EQ(direct.Penalty(), updated.Penalty());
  EXPECT_EQ(direct.TotalLoad(), updated.TotalLoad());
  EXPECT_EQ(direct.size(), updated.size());
}

TEST(LoadIndexTest, PatchedPenaltyMatchesNaiveOnPatchedLoads) {
  // The tree stays at a snapshot while a handful of cells move on; the
  // patched query must equal a naive recompute over the current values.
  constexpr size_t kServers = 32;
  Rng rng(777);
  std::vector<double> stored(kServers);
  for (double& l : stored) l = rng.NextDouble() * 4.0;
  LoadIndex index;
  index.Rebuild(stored);

  std::vector<double> current = stored;
  for (size_t round = 0; round < 200; ++round) {
    std::vector<uint32_t> patched;
    size_t k = rng.NextBounded(9);  // 0..8 patched cells
    for (size_t i = 0; i < k; ++i) {
      uint32_t s = static_cast<uint32_t>(rng.NextBounded(kServers));
      bool seen = false;
      for (uint32_t p : patched) seen = seen || p == s;
      if (seen) continue;
      patched.push_back(s);
      current[s] = rng.NextDouble() * 4.0;
    }
    ExpectNear(index.PenaltyPatched(patched, stored, current),
               NaivePenalty(current));
    // An empty patch set must degrade to the plain query.
    if (patched.empty()) {
      EXPECT_EQ(index.PenaltyPatched(patched, stored, current),
                index.Penalty());
    }
    for (uint32_t s : patched) current[s] = stored[s];
    if (HasNonfatalFailure()) {
      ADD_FAILURE() << "diverged at round " << round;
      return;
    }
  }
}

TEST(LoadIndexTest, HandlesNegativeZeroUpdates) {
  LoadIndex index;
  std::vector<double> loads = {0.0, 1.0, 2.0};
  index.Rebuild(loads);
  // A drifted running sum can leave -0.0 in a cell; removing it again must
  // find the key (-0.0 == 0.0 under the ordering).
  index.Update(0, 0.0, -0.0);
  ExpectNear(index.Penalty(), NaivePenalty(loads));
  index.Update(0, -0.0, 3.0);
  loads[0] = 3.0;
  ExpectNear(index.Penalty(), NaivePenalty(loads));
}

}  // namespace
}  // namespace wsflow
