// Regression test of the per-fan edge memo on wide swap fans. With M
// operations spread over N << M servers, every partner of a swap fan
// lands `a` on one of at most N - 1 distinct servers, so stage-1 T_comm
// terms (a's own edges against the partner's server) repeat massively:
// the memo must compute each (edge slot, landing server) pair exactly
// once and serve every repeat from cache. The expected hit rate is
// asserted, not just reported — a memo that silently stopped caching
// would still score correctly but fail here.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/cost/cost_model.h"
#include "src/cost/incremental.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

TEST(SwapFanMemoTest, WideSwapFanHitsMemoAtExpectedRate) {
  // 24 line operations round-robined over 3 servers: a's stage-1 terms
  // see only 2 distinct landing servers across 23 partners.
  constexpr size_t kOps = 24;
  constexpr size_t kServers = 3;
  Workflow w = testing::SimpleLine(kOps, 20e6, 60648);
  Network n = testing::SimpleBus(kServers);
  CostModel model(w, n);

  // The SoA grid supersedes the memo; pin it off so the memo is the
  // stage-1 fast path under test.
  EvalTuning tuning;
  tuning.use_soa_fan = false;
  ASSERT_TRUE(tuning.use_edge_memo);
  Mapping start = testing::RoundRobin(kOps, kServers);
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, start, CostOptions{}, tuning));

  // Interior operation: two incident transitions, both stage-1 slots.
  const OperationId a(5);
  const size_t a_edges = w.in_degree(a) + w.out_degree(a);
  ASSERT_EQ(a_edges, 2u);
  const ServerId sa = start.ServerOf(a);

  std::vector<OperationId> partners;
  size_t off_server_partners = 0;
  std::set<uint32_t> landing_servers;
  for (uint32_t b = 0; b < kOps; ++b) {
    if (OperationId(b) == a) continue;
    partners.push_back(OperationId(b));
    const ServerId sb = start.ServerOf(OperationId(b));
    if (sb != sa) {
      ++off_server_partners;
      landing_servers.insert(sb.value);
    }
  }
  ASSERT_EQ(landing_servers.size(), kServers - 1);
  ASSERT_GT(off_server_partners, 4 * landing_servers.size())
      << "the fan must be wide enough that repeats dominate";

  std::vector<double> costs(partners.size());
  WSFLOW_ASSERT_OK(eval.ScoreSwaps(a, partners, costs));

  // Same-server partners are no-op swaps and never consult the memo;
  // every off-server partner looks up each of a's edge slots once.
  // Stage-2 terms (the partner's own edges with `a` displaced) are never
  // memoized, so the counters below are exact.
  const size_t lookups = a_edges * off_server_partners;
  const size_t expected_misses = a_edges * landing_servers.size();
  EXPECT_EQ(eval.counters().edge_memo_misses, expected_misses);
  EXPECT_EQ(eval.counters().edge_memo_hits, lookups - expected_misses);
  const double hit_rate =
      static_cast<double>(eval.counters().edge_memo_hits) / lookups;
  EXPECT_GE(hit_rate, 0.85) << "hits=" << eval.counters().edge_memo_hits
                            << " of " << lookups << " stage-1 lookups";

  // A second fan opens a fresh memo epoch: the counts double exactly.
  WSFLOW_ASSERT_OK(eval.ScoreSwaps(a, partners, costs));
  EXPECT_EQ(eval.counters().edge_memo_misses, 2 * expected_misses);
  EXPECT_EQ(eval.counters().edge_memo_hits, 2 * (lookups - expected_misses));
}

}  // namespace
}  // namespace wsflow
