#include "src/cost/pareto.h"

#include <gtest/gtest.h>

namespace wsflow {
namespace {

TEST(DominatesTest, StrictBothDimensions) {
  EXPECT_TRUE(Dominates({1, 1}, {2, 2}));
  EXPECT_FALSE(Dominates({2, 2}, {1, 1}));
}

TEST(DominatesTest, OneDimensionTied) {
  EXPECT_TRUE(Dominates({1, 2}, {2, 2}));
  EXPECT_TRUE(Dominates({2, 1}, {2, 2}));
}

TEST(DominatesTest, EqualPointsDoNotDominate) {
  EXPECT_FALSE(Dominates({1, 1}, {1, 1}));
}

TEST(DominatesTest, TradeoffPointsIncomparable) {
  EXPECT_FALSE(Dominates({1, 3}, {3, 1}));
  EXPECT_FALSE(Dominates({3, 1}, {1, 3}));
}

TEST(ParetoFrontTest, EmptyInput) {
  EXPECT_TRUE(ParetoFrontIndices({}).empty());
}

TEST(ParetoFrontTest, SinglePoint) {
  std::vector<size_t> front = ParetoFrontIndices({{1, 1}});
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0], 0u);
}

TEST(ParetoFrontTest, DominatedPointsExcluded) {
  std::vector<ObjectivePoint> pts{{1, 3}, {3, 1}, {2, 2}, {4, 4}};
  std::vector<size_t> front = ParetoFrontIndices(pts);
  // (4,4) is dominated by (2,2); the rest trade off.
  EXPECT_EQ(front, (std::vector<size_t>{0, 1, 2}));
}

TEST(ParetoFrontTest, DuplicatesKeptOnce) {
  std::vector<ObjectivePoint> pts{{1, 1}, {1, 1}, {2, 2}};
  std::vector<size_t> front = ParetoFrontIndices(pts);
  EXPECT_EQ(front, std::vector<size_t>{0});
}

TEST(ParetoFrontTest, ChainCollapsesToBest) {
  std::vector<ObjectivePoint> pts{{3, 3}, {2, 2}, {1, 1}};
  EXPECT_EQ(ParetoFrontIndices(pts), std::vector<size_t>{2});
}

TEST(DistanceTest, Euclidean) {
  EXPECT_DOUBLE_EQ(DistanceToOrigin({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(DistanceToOrigin({0, 0}), 0.0);
}

TEST(WeightedSumTest, Weights) {
  EXPECT_DOUBLE_EQ(WeightedSum({2, 4}, 0.5, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(WeightedSum({2, 4}, 1.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(WeightedSum({2, 4}, 0.0, 1.0), 4.0);
}

}  // namespace
}  // namespace wsflow
