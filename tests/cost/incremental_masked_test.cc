// Masked scoring: the IncrementalEvaluator and CostModel overloads bound
// to a ServerMask must agree with each other bit-for-bit and implement the
// surviving-subnetwork semantics (down hosts reject placements, severed
// routes score +infinity, the fairness penalty averages over survivors).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "src/cost/cost_model.h"
#include "src/cost/incremental.h"
#include "src/network/routing.h"
#include "src/network/server_mask.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ServerMask MaskWithout(size_t n, std::initializer_list<uint32_t> down) {
  ServerMask mask = ServerMask::AllAlive(n);
  for (uint32_t s : down) mask.SetAlive(ServerId(s), false);
  return mask;
}

Network TransitLine(size_t servers) {
  std::vector<double> powers(servers, 1e9);
  std::vector<double> speeds(servers - 1, 100e6);
  return WSFLOW_UNWRAP(MakeLineNetwork(powers, speeds));
}

TEST(IncrementalMaskedTest, ServerMaskBasics) {
  ServerMask trivial;
  EXPECT_TRUE(trivial.trivial());
  EXPECT_TRUE(trivial.alive(ServerId(7)));
  EXPECT_EQ(trivial.Digest(), 0u);
  EXPECT_EQ(trivial.ToString(), "all-alive");

  ServerMask mask = MaskWithout(8, {2, 5});
  EXPECT_FALSE(mask.trivial());
  EXPECT_EQ(mask.num_alive(), 6u);
  EXPECT_EQ(mask.num_down(), 2u);
  EXPECT_FALSE(mask.alive(ServerId(2)));
  EXPECT_TRUE(mask.alive(ServerId(3)));
  EXPECT_NE(mask.Digest(), 0u);
  EXPECT_EQ(mask.ToString(), "alive=6/8 down=[2,5]");
  EXPECT_EQ(mask.DownServers(),
            (std::vector<ServerId>{ServerId(2), ServerId(5)}));

  // All-alive sized mask is still trivial and digests to 0.
  EXPECT_TRUE(ServerMask::AllAlive(8).trivial());
  EXPECT_EQ(ServerMask::AllAlive(8).Digest(), 0u);
  // Digests distinguish masks.
  EXPECT_NE(mask.Digest(), MaskWithout(8, {2}).Digest());
}

TEST(IncrementalMaskedTest, RouteAvoidsDownOnTransitLines) {
  Network n = TransitLine(4);  // s0 - s1 - s2 - s3
  Router router(n);
  Route route = WSFLOW_UNWRAP(router.FindRoute(ServerId(0), ServerId(3)));
  EXPECT_TRUE(RouteAvoidsDown(route, n, ServerId(0), ServerId(3),
                              ServerMask()));
  EXPECT_FALSE(RouteAvoidsDown(route, n, ServerId(0), ServerId(3),
                               MaskWithout(4, {1})));
  EXPECT_FALSE(RouteAvoidsDown(route, n, ServerId(0), ServerId(3),
                               MaskWithout(4, {2})));
  // Down endpoints fail too.
  EXPECT_FALSE(RouteAvoidsDown(route, n, ServerId(0), ServerId(3),
                               MaskWithout(4, {0})));
  // A bus hop has no transit servers: only endpoints matter.
  Network bus = testing::SimpleBus(4);
  Router bus_router(bus);
  Route hop = WSFLOW_UNWRAP(bus_router.FindRoute(ServerId(0), ServerId(3)));
  EXPECT_TRUE(RouteAvoidsDown(hop, bus, ServerId(0), ServerId(3),
                              MaskWithout(4, {1, 2})));
}

TEST(IncrementalMaskedTest, TrivialMaskScoresExactlyUnmasked) {
  Workflow w = testing::SimpleLine(8);
  Network n = testing::SimpleBus(4);
  CostModel model(w, n);
  Mapping m = testing::RoundRobin(8, 4);

  CostBreakdown plain = WSFLOW_UNWRAP(model.Evaluate(m));
  CostBreakdown masked =
      WSFLOW_UNWRAP(model.Evaluate(m, CostOptions{}, ServerMask::AllAlive(4)));
  EXPECT_EQ(plain.combined, masked.combined);
  EXPECT_EQ(plain.execution_time, masked.execution_time);
  EXPECT_EQ(plain.time_penalty, masked.time_penalty);
}

TEST(IncrementalMaskedTest, EvaluatorAgreesWithColdModelUnderMask) {
  Workflow w = testing::SimpleLine(9);
  Network n = testing::SimpleBus(5);
  CostModel model(w, n);
  ServerMask mask = MaskWithout(5, {3});
  Mapping m = Mapping(9);
  for (uint32_t i = 0; i < 9; ++i) {
    // Round-robin over the alive servers {0, 1, 2, 4}.
    static constexpr uint32_t kAlive[] = {0, 1, 2, 4};
    m.Assign(OperationId(i), ServerId(kAlive[i % 4]));
  }

  CostBreakdown cold =
      WSFLOW_UNWRAP(model.Evaluate(m, CostOptions{}, mask));

  // The linear masked path reproduces the cold model bit-for-bit.
  EvalTuning linear;
  linear.mask = mask;
  linear.use_load_index = false;
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, m, CostOptions{}, linear));
  EXPECT_EQ(WSFLOW_UNWRAP(eval.Combined()), cold.combined);
  EXPECT_EQ(eval.TimePenalty(), cold.time_penalty);
  EXPECT_EQ(WSFLOW_UNWRAP(eval.ExecutionTime()), cold.execution_time);

  // The survivor load index sums deviations in tree order — same statistic
  // to rounding, exact on the execution time (same guarantee the unmasked
  // index tests assert).
  EvalTuning indexed;
  indexed.mask = mask;
  IncrementalEvaluator fast = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, m, CostOptions{}, indexed));
  EXPECT_NEAR(fast.TimePenalty(), cold.time_penalty,
              1e-12 * (1 + std::fabs(cold.time_penalty)));
  EXPECT_NEAR(WSFLOW_UNWRAP(fast.Combined()), cold.combined,
              1e-12 * (1 + std::fabs(cold.combined)));
  EXPECT_EQ(WSFLOW_UNWRAP(fast.ExecutionTime()), cold.execution_time);
}

TEST(IncrementalMaskedTest, MaskedPenaltyAveragesOverSurvivors) {
  Workflow w = testing::SimpleLine(6, 10e6, 0);
  Network n = testing::SimpleBus(4);
  CostModel model(w, n);
  Mapping m = testing::AllOnServer(6, ServerId(0));
  ServerMask mask = MaskWithout(4, {3});

  std::vector<double> loads = model.Loads(m);
  double avg = (loads[0] + loads[1] + loads[2]) / 3.0;
  double expected = (std::fabs(loads[0] - avg) + std::fabs(loads[1] - avg) +
                     std::fabs(loads[2] - avg)) /
                    2.0;
  EXPECT_NEAR(model.TimePenalty(m, mask), expected, 1e-12);
  EXPECT_NE(model.TimePenalty(m, mask), model.TimePenalty(m))
      << "the survivor average must differ from the all-server average";
}

TEST(IncrementalMaskedTest, BindRejectsAnOperationOnADownServer) {
  Workflow w = testing::SimpleLine(4);
  Network n = testing::SimpleBus(3);
  CostModel model(w, n);
  EvalTuning tuning;
  tuning.mask = MaskWithout(3, {1});
  Result<IncrementalEvaluator> eval = IncrementalEvaluator::Bind(
      model, testing::RoundRobin(4, 3), CostOptions{}, tuning);
  ASSERT_FALSE(eval.ok());
  EXPECT_TRUE(eval.status().IsFailedPrecondition());
  // The masked CostModel overload agrees.
  Result<CostBreakdown> cold = model.Evaluate(
      testing::RoundRobin(4, 3), CostOptions{}, tuning.mask);
  EXPECT_FALSE(cold.ok());
}

TEST(IncrementalMaskedTest, MovesToDownServersAreRejectedAndScoreInfinite) {
  Workflow w = testing::SimpleLine(5);
  Network n = testing::SimpleBus(4);
  CostModel model(w, n);
  EvalTuning tuning;
  tuning.mask = MaskWithout(4, {2});
  IncrementalEvaluator eval = WSFLOW_UNWRAP(IncrementalEvaluator::Bind(
      model, testing::AllOnServer(5, ServerId(0)), CostOptions{}, tuning));

  Status st = eval.Apply(OperationId(0), ServerId(2));
  EXPECT_TRUE(st.IsFailedPrecondition()) << st.ToString();

  std::vector<ServerId> candidates = {ServerId(1), ServerId(2), ServerId(3)};
  std::vector<double> costs(candidates.size());
  WSFLOW_ASSERT_OK(eval.ScoreMoves(OperationId(0), candidates, costs));
  EXPECT_TRUE(std::isfinite(costs[0]));
  EXPECT_EQ(costs[1], kInf);
  EXPECT_TRUE(std::isfinite(costs[2]));
}

TEST(IncrementalMaskedTest, SeveredCandidatesScoreInfinite) {
  // s0 - s1 - s2: with s1 down, an op moved to s2 cannot talk to s0.
  Workflow w = testing::SimpleLine(4);
  Network n = TransitLine(3);
  CostModel model(w, n);
  EvalTuning tuning;
  tuning.mask = MaskWithout(3, {1});
  IncrementalEvaluator eval = WSFLOW_UNWRAP(IncrementalEvaluator::Bind(
      model, testing::AllOnServer(4, ServerId(0)), CostOptions{}, tuning));

  std::vector<ServerId> candidates = {ServerId(0), ServerId(2)};
  std::vector<double> costs(candidates.size());
  WSFLOW_ASSERT_OK(eval.ScoreMoves(OperationId(1), candidates, costs));
  EXPECT_TRUE(std::isfinite(costs[0]));
  EXPECT_EQ(costs[1], kInf);

  // The cold model overload reports the severed mapping as an error.
  Mapping severed = testing::AllOnServer(4, ServerId(0));
  severed.Assign(OperationId(1), ServerId(2));
  EXPECT_FALSE(model.Evaluate(severed, CostOptions{}, tuning.mask).ok());
}

TEST(IncrementalMaskedTest, BatchScoresMatchApplyEvaluateUndoUnderMask) {
  Workflow w = testing::AllDecisionGraph();
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  Network n = testing::SimpleBus(5);
  CostModel model(w, n, &profile);
  ServerMask mask = MaskWithout(5, {4});

  Mapping m(w.num_operations());
  static constexpr uint32_t kAlive[] = {0, 1, 2, 3};
  for (uint32_t i = 0; i < w.num_operations(); ++i) {
    m.Assign(OperationId(i), ServerId(kAlive[i % 4]));
  }
  EvalTuning tuning;
  tuning.mask = mask;
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, m, CostOptions{}, tuning));

  std::vector<ServerId> candidates = {ServerId(0), ServerId(1), ServerId(2),
                                      ServerId(3)};
  std::vector<double> costs(candidates.size());
  for (uint32_t op = 0; op < w.num_operations(); ++op) {
    WSFLOW_ASSERT_OK(eval.ScoreMoves(OperationId(op), candidates, costs));
    for (size_t i = 0; i < candidates.size(); ++i) {
      WSFLOW_ASSERT_OK(eval.Apply(OperationId(op), candidates[i]));
      double reference = WSFLOW_UNWRAP(eval.Combined());
      WSFLOW_ASSERT_OK(eval.Undo());
      EXPECT_EQ(costs[i], reference)
          << "op " << op << " -> s" << candidates[i].value;
    }
  }
}

TEST(IncrementalMaskedTest, MaskedLoadIndexStaysOnAndAnswersFast) {
  // A non-trivial mask no longer forces the evaluator off the load index:
  // the treap is rebuilt over the survivor cells, so masked fairness keeps
  // the O(log N) path.
  Workflow w = testing::SimpleLine(6);
  Network n = testing::SimpleBus(4);
  CostModel model(w, n);
  EvalTuning tuning;
  tuning.use_load_index = true;
  tuning.mask = MaskWithout(4, {3});
  Mapping m(6);
  for (uint32_t i = 0; i < 6; ++i) {
    m.Assign(OperationId(i), ServerId(i % 3));
  }
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, m, CostOptions{}, tuning));
  EXPECT_TRUE(eval.tuning().use_load_index);
  std::vector<ServerId> candidates = {ServerId(0), ServerId(1), ServerId(2)};
  std::vector<double> costs(candidates.size());
  WSFLOW_ASSERT_OK(eval.ScoreMoves(OperationId(0), candidates, costs));
  EXPECT_GT(eval.counters().penalty_fast, 0u);
  EXPECT_EQ(eval.counters().penalty_full, 0u);
}

TEST(IncrementalMaskedTest, MaskedIndexMatchesMaskedLinearPathBitForBit) {
  // Bit-parity of the survivor-treap fast path against the masked O(N)
  // reference: same mapping, same move sequence, every batched score and
  // every applied Combined() must agree exactly — not approximately.
  Workflow w = testing::AllDecisionGraph();
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  Network n = testing::SimpleBus(6);
  CostModel model(w, n, &profile);
  ServerMask mask = MaskWithout(6, {2, 5});

  Mapping m(w.num_operations());
  static constexpr uint32_t kAlive[] = {0, 1, 3, 4};
  for (uint32_t i = 0; i < w.num_operations(); ++i) {
    m.Assign(OperationId(i), ServerId(kAlive[i % 4]));
  }
  EvalTuning with_index;
  with_index.mask = mask;
  with_index.use_load_index = true;
  EvalTuning linear;
  linear.mask = mask;
  linear.use_load_index = false;
  IncrementalEvaluator fast = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, m, CostOptions{}, with_index));
  IncrementalEvaluator slow = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, m, CostOptions{}, linear));

  std::vector<ServerId> candidates = {ServerId(0), ServerId(1), ServerId(3),
                                      ServerId(4)};
  std::vector<double> fast_costs(candidates.size());
  std::vector<double> slow_costs(candidates.size());
  for (uint32_t op = 0; op < w.num_operations(); ++op) {
    WSFLOW_ASSERT_OK(fast.ScoreMoves(OperationId(op), candidates, fast_costs));
    WSFLOW_ASSERT_OK(slow.ScoreMoves(OperationId(op), candidates, slow_costs));
    for (size_t i = 0; i < candidates.size(); ++i) {
      EXPECT_EQ(fast_costs[i], slow_costs[i])
          << "op " << op << " -> s" << candidates[i].value;
    }
    // Walk both evaluators through the same accepted move.
    ServerId pick = candidates[op % candidates.size()];
    WSFLOW_ASSERT_OK(fast.Apply(OperationId(op), pick));
    WSFLOW_ASSERT_OK(slow.Apply(OperationId(op), pick));
    fast.ClearHistory();
    slow.ClearHistory();
    EXPECT_EQ(WSFLOW_UNWRAP(fast.Combined()), WSFLOW_UNWRAP(slow.Combined()));
    EXPECT_EQ(fast.TimePenalty(), slow.TimePenalty());
  }
  EXPECT_GT(fast.counters().penalty_fast, 0u);
  EXPECT_GT(slow.counters().penalty_full, 0u);
}

}  // namespace
}  // namespace wsflow
