// Unit tests of IncrementalEvaluator: the delta-evaluated state must agree
// with a cold CostModel::Evaluate after any Apply/Move/Swap/Undo sequence,
// the undo log must be exact, and the counters must separate cold binds
// from delta scores. The long randomized replays live in
// tests/property/incremental_property_test.cc.

#include "src/cost/incremental.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/cost/cost_model.h"
#include "src/workflow/probability.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

/// Agreement bound for delta vs cold evaluation: the two sum the same terms
/// in different orders (and the evaluator's route table multiplies
/// seconds-per-bit instead of dividing per link), so they differ by ulps.
constexpr double kTol = 1e-9;

void ExpectNear(double delta_value, double cold_value) {
  EXPECT_LE(std::fabs(delta_value - cold_value),
            kTol * (1.0 + std::fabs(cold_value)))
      << "delta=" << delta_value << " cold=" << cold_value;
}

void ExpectAgreesWithCold(IncrementalEvaluator& eval, const CostModel& model) {
  CostBreakdown cold =
      WSFLOW_UNWRAP(model.Evaluate(eval.mapping(), eval.options()));
  CostBreakdown delta = WSFLOW_UNWRAP(eval.Evaluate());
  ExpectNear(delta.execution_time, cold.execution_time);
  ExpectNear(delta.time_penalty, cold.time_penalty);
  ExpectNear(delta.combined, cold.combined);
}

TEST(IncrementalEvalTest, LineBindMatchesCold) {
  Workflow w = testing::SimpleLine(8, 20e6, 60648);
  Network n = testing::SimpleBus(3, 1e9, 100e6);
  CostModel model(w, n);
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::RoundRobin(8, 3)));
  ExpectAgreesWithCold(eval, model);
  EXPECT_EQ(eval.counters().full_evaluations, 1u);
}

TEST(IncrementalEvalTest, GraphBindMatchesCold) {
  Workflow w = testing::AllDecisionGraph(50e6, 60648);
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  Network n = testing::SimpleBus(4, 1e9, 100e6);
  CostModel model(w, n, &profile);
  IncrementalEvaluator eval = WSFLOW_UNWRAP(IncrementalEvaluator::Bind(
      model, testing::RoundRobin(w.num_operations(), 4)));
  ExpectAgreesWithCold(eval, model);
}

TEST(IncrementalEvalTest, ApplyTracksColdAndUndoRestores) {
  Workflow w = testing::SimpleLine(8, 20e6, 60648);
  Network n = testing::SimpleBus(3, 1e9, 100e6);
  CostModel model(w, n);
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::RoundRobin(8, 3)));
  double initial = WSFLOW_UNWRAP(eval.Combined());

  WSFLOW_EXPECT_OK(eval.Apply(OperationId(2), ServerId(0)));
  EXPECT_EQ(eval.mapping().ServerOf(OperationId(2)), ServerId(0));
  ExpectAgreesWithCold(eval, model);

  WSFLOW_EXPECT_OK(eval.Apply(OperationId(5), ServerId(1)));
  ExpectAgreesWithCold(eval, model);
  EXPECT_EQ(eval.undo_depth(), 2u);

  WSFLOW_EXPECT_OK(eval.Undo());
  WSFLOW_EXPECT_OK(eval.Undo());
  EXPECT_EQ(eval.undo_depth(), 0u);
  EXPECT_EQ(eval.mapping().ServerOf(OperationId(2)), ServerId(2));
  ExpectNear(WSFLOW_UNWRAP(eval.Combined()), initial);
}

TEST(IncrementalEvalTest, SwapTracksColdAndUndoRestores) {
  Workflow w = testing::AllDecisionGraph(50e6, 60648);
  Network n = testing::SimpleBus(4, 1e9, 100e6);
  CostModel model(w, n);
  const size_t M = w.num_operations();
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::RoundRobin(M, 4)));
  Mapping before = eval.mapping();

  WSFLOW_EXPECT_OK(eval.Swap(OperationId(0), OperationId(3)));
  EXPECT_EQ(eval.mapping().ServerOf(OperationId(0)),
            before.ServerOf(OperationId(3)));
  EXPECT_EQ(eval.mapping().ServerOf(OperationId(3)),
            before.ServerOf(OperationId(0)));
  ExpectAgreesWithCold(eval, model);

  WSFLOW_EXPECT_OK(eval.Undo());
  EXPECT_TRUE(eval.mapping() == before);
  ExpectAgreesWithCold(eval, model);
}

TEST(IncrementalEvalTest, MoveRecordsNoHistory) {
  Workflow w = testing::SimpleLine(6);
  Network n = testing::SimpleBus(3);
  CostModel model(w, n);
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::RoundRobin(6, 3)));
  WSFLOW_EXPECT_OK(eval.Move(OperationId(1), ServerId(0)));
  EXPECT_EQ(eval.undo_depth(), 0u);
  EXPECT_TRUE(eval.Undo().IsFailedPrecondition());
  ExpectAgreesWithCold(eval, model);
}

TEST(IncrementalEvalTest, LoadsAndPenaltyMatchCold) {
  Workflow w = testing::SimpleLine(9, 20e6, 60648);
  Network n = WSFLOW_UNWRAP(MakeBusNetwork({1e9, 2e9, 4e9}, 100e6));
  CostModel model(w, n);
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::RoundRobin(9, 3)));
  WSFLOW_EXPECT_OK(eval.Apply(OperationId(4), ServerId(2)));
  std::vector<double> cold = model.Loads(eval.mapping());
  ASSERT_EQ(eval.Loads().size(), cold.size());
  for (size_t s = 0; s < cold.size(); ++s) {
    ExpectNear(eval.Loads()[s], cold[s]);
  }
  ExpectNear(eval.TimePenalty(), model.TimePenalty(eval.mapping()));
}

TEST(IncrementalEvalTest, CountersSeparateFullAndDelta) {
  Workflow w = testing::SimpleLine(6);
  Network n = testing::SimpleBus(2);
  CostModel model(w, n);
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::RoundRobin(6, 2)));
  EXPECT_EQ(eval.counters().full_evaluations, 1u);
  EXPECT_EQ(eval.counters().delta_evaluations, 0u);
  WSFLOW_EXPECT_OK(eval.Apply(OperationId(0), ServerId(1)));
  (void)WSFLOW_UNWRAP(eval.Evaluate());
  (void)WSFLOW_UNWRAP(eval.Combined());
  EXPECT_EQ(eval.counters().full_evaluations, 1u);
  EXPECT_EQ(eval.counters().delta_evaluations, 2u);
}

TEST(IncrementalEvalTest, RebindReplacesMappingAndClearsHistory) {
  Workflow w = testing::SimpleLine(6);
  Network n = testing::SimpleBus(3);
  CostModel model(w, n);
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::RoundRobin(6, 3)));
  WSFLOW_EXPECT_OK(eval.Apply(OperationId(0), ServerId(1)));
  WSFLOW_EXPECT_OK(eval.Rebind(testing::AllOnServer(6, ServerId(2))));
  EXPECT_EQ(eval.undo_depth(), 0u);
  EXPECT_EQ(eval.counters().full_evaluations, 2u);
  ExpectAgreesWithCold(eval, model);
}

TEST(IncrementalEvalTest, RebindRejectsInvalidMappingAndKeepsState) {
  Workflow w = testing::SimpleLine(6);
  Network n = testing::SimpleBus(3);
  CostModel model(w, n);
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::RoundRobin(6, 3)));
  EXPECT_FALSE(eval.Rebind(Mapping(6)).ok());  // partial mapping
  ExpectAgreesWithCold(eval, model);           // old state intact
}

TEST(IncrementalEvalTest, RejectsUnknownOperationOrServer) {
  Workflow w = testing::SimpleLine(4);
  Network n = testing::SimpleBus(2);
  CostModel model(w, n);
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::RoundRobin(4, 2)));
  EXPECT_TRUE(eval.Apply(OperationId(99), ServerId(0)).IsInvalidArgument());
  EXPECT_TRUE(eval.Apply(OperationId(0), ServerId(9)).IsInvalidArgument());
  EXPECT_TRUE(eval.Swap(OperationId(0), OperationId(77)).IsInvalidArgument());
  EXPECT_EQ(eval.undo_depth(), 0u);
  ExpectAgreesWithCold(eval, model);
}

TEST(IncrementalEvalTest, ScoreMovesMatchesRoundTripOnLine) {
  Workflow w = testing::SimpleLine(8, 20e6, 60648);
  Network n = WSFLOW_UNWRAP(MakeBusNetwork({1e9, 2e9, 4e9}, 100e6));
  CostModel model(w, n);
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::RoundRobin(8, 3)));
  std::vector<ServerId> fan = {ServerId(0), ServerId(1), ServerId(2)};
  std::vector<double> costs(fan.size());
  for (uint32_t op = 0; op < 8; ++op) {
    WSFLOW_ASSERT_OK(eval.ScoreMoves(OperationId(op), fan, costs));
    for (size_t i = 0; i < fan.size(); ++i) {
      WSFLOW_ASSERT_OK(eval.Apply(OperationId(op), fan[i]));
      double round_trip = WSFLOW_UNWRAP(eval.Combined());
      WSFLOW_ASSERT_OK(eval.Undo());
      ExpectNear(costs[i], round_trip);
    }
  }
}

TEST(IncrementalEvalTest, ScoreMovesMatchesRoundTripOnGraph) {
  Workflow w = testing::AllDecisionGraph(50e6, 60648);
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  Network n = testing::SimpleBus(4, 1e9, 100e6);
  CostModel model(w, n, &profile);
  const size_t M = w.num_operations();
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::RoundRobin(M, 4)));
  std::vector<ServerId> fan = {ServerId(0), ServerId(1), ServerId(2),
                               ServerId(3)};
  std::vector<double> costs(fan.size());
  for (uint32_t op = 0; op < M; ++op) {
    WSFLOW_ASSERT_OK(eval.ScoreMoves(OperationId(op), fan, costs));
    for (size_t i = 0; i < fan.size(); ++i) {
      WSFLOW_ASSERT_OK(eval.Apply(OperationId(op), fan[i]));
      double round_trip = WSFLOW_UNWRAP(eval.Combined());
      WSFLOW_ASSERT_OK(eval.Undo());
      ExpectNear(costs[i], round_trip);
    }
  }
}

TEST(IncrementalEvalTest, ScoreSwapsMatchesRoundTrip) {
  Workflow w = testing::AllDecisionGraph(50e6, 60648);
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  Network n = testing::SimpleBus(4, 1e9, 100e6);
  CostModel model(w, n, &profile);
  const size_t M = w.num_operations();
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::RoundRobin(M, 4)));
  for (uint32_t a = 0; a < M; ++a) {
    std::vector<OperationId> partners;
    for (uint32_t b = 0; b < M; ++b) {
      if (b != a) partners.push_back(OperationId(b));
    }
    std::vector<double> costs(partners.size());
    WSFLOW_ASSERT_OK(eval.ScoreSwaps(OperationId(a), partners, costs));
    for (size_t i = 0; i < partners.size(); ++i) {
      WSFLOW_ASSERT_OK(eval.Swap(OperationId(a), partners[i]));
      double round_trip = WSFLOW_UNWRAP(eval.Combined());
      WSFLOW_ASSERT_OK(eval.Undo());
      ExpectNear(costs[i], round_trip);
    }
  }
}

TEST(IncrementalEvalTest, ScoreSwapsNoOpPartnerScoresCurrentState) {
  Workflow w = testing::SimpleLine(6, 20e6, 60648);
  Network n = testing::SimpleBus(3, 1e9, 100e6);
  CostModel model(w, n);
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::RoundRobin(6, 3)));
  double current = WSFLOW_UNWRAP(eval.Combined());
  // Operations 0 and 3 share server 0 under round-robin: the swap is a
  // no-op, and swapping 0 with itself is too.
  std::vector<OperationId> partners = {OperationId(3), OperationId(0)};
  std::vector<double> costs(partners.size());
  WSFLOW_ASSERT_OK(eval.ScoreSwaps(OperationId(0), partners, costs));
  EXPECT_EQ(costs[0], current);
  EXPECT_EQ(costs[1], current);
}

TEST(IncrementalEvalTest, BatchScoringLeavesStateUntouched) {
  Workflow w = testing::AllDecisionGraph(50e6, 60648);
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  Network n = testing::SimpleBus(4, 1e9, 100e6);
  CostModel model(w, n, &profile);
  const size_t M = w.num_operations();
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::RoundRobin(M, 4)));
  WSFLOW_EXPECT_OK(eval.Apply(OperationId(1), ServerId(3)));
  Mapping before = eval.mapping();
  double cost_before = WSFLOW_UNWRAP(eval.Combined());

  std::vector<ServerId> fan = {ServerId(0), ServerId(1), ServerId(2)};
  std::vector<OperationId> partners = {OperationId(0), OperationId(2)};
  std::vector<double> costs(3);
  std::vector<double> swap_costs(2);
  WSFLOW_ASSERT_OK(eval.ScoreMoves(OperationId(1), fan, costs));
  WSFLOW_ASSERT_OK(eval.ScoreSwaps(OperationId(1), partners, swap_costs));

  EXPECT_TRUE(eval.mapping() == before);
  EXPECT_EQ(eval.undo_depth(), 1u);  // the Apply above is still undoable
  EXPECT_EQ(WSFLOW_UNWRAP(eval.Combined()), cost_before);
  WSFLOW_EXPECT_OK(eval.Undo());
  ExpectAgreesWithCold(eval, model);
}

TEST(IncrementalEvalTest, BatchScoringCountsDeltaEvaluations) {
  Workflow w = testing::SimpleLine(6);
  Network n = testing::SimpleBus(3);
  CostModel model(w, n);
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::RoundRobin(6, 3)));
  std::vector<ServerId> fan = {ServerId(0), ServerId(1), ServerId(2)};
  std::vector<double> costs(fan.size());
  WSFLOW_ASSERT_OK(eval.ScoreMoves(OperationId(2), fan, costs));
  EXPECT_EQ(eval.counters().full_evaluations, 1u);
  EXPECT_EQ(eval.counters().delta_evaluations, fan.size());
}

TEST(IncrementalEvalTest, BatchScoringRejectsBadArguments) {
  Workflow w = testing::SimpleLine(4);
  Network n = testing::SimpleBus(2);
  CostModel model(w, n);
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::RoundRobin(4, 2)));
  std::vector<ServerId> fan = {ServerId(0), ServerId(1)};
  std::vector<double> too_small(1);
  EXPECT_TRUE(eval.ScoreMoves(OperationId(0), fan, too_small)
                  .IsInvalidArgument());
  std::vector<double> costs(2);
  EXPECT_TRUE(eval.ScoreMoves(OperationId(99), fan, costs)
                  .IsInvalidArgument());
  std::vector<ServerId> bad_fan = {ServerId(0), ServerId(9)};
  EXPECT_TRUE(eval.ScoreMoves(OperationId(0), bad_fan, costs)
                  .IsInvalidArgument());
  std::vector<OperationId> bad_partners = {OperationId(77)};
  std::vector<double> one(1);
  EXPECT_TRUE(eval.ScoreSwaps(OperationId(0), bad_partners, one)
                  .IsInvalidArgument());
  ExpectAgreesWithCold(eval, model);
}

TEST(IncrementalEvalTest, ScoreMovesDisconnectedCandidateIsInfinite) {
  // Two islands; moving operation 3 to the far island must score +infinity
  // in the batch where Apply + Evaluate would fail, and the connected
  // candidates must still match their round trips.
  Workflow w = testing::SimpleLine(4, 20e6, 60648);
  Network n("split");
  ServerId s0 = n.AddServer("s0", 1e9);
  ServerId s1 = n.AddServer("s1", 1e9);
  ServerId s2 = n.AddServer("s2", 1e9);
  ServerId s3 = n.AddServer("s3", 1e9);
  WSFLOW_UNWRAP(n.AddLink(s0, s1, 100e6));
  WSFLOW_UNWRAP(n.AddLink(s2, s3, 100e6));
  CostModel model(w, n);
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::AllOnServer(4, s0)));
  std::vector<ServerId> fan = {s1, s2, s3};
  std::vector<double> costs(fan.size());
  WSFLOW_ASSERT_OK(eval.ScoreMoves(OperationId(3), fan, costs));
  WSFLOW_ASSERT_OK(eval.Apply(OperationId(3), s1));
  double connected = WSFLOW_UNWRAP(eval.Combined());
  WSFLOW_ASSERT_OK(eval.Undo());
  ExpectNear(costs[0], connected);
  EXPECT_TRUE(std::isinf(costs[1]));
  EXPECT_TRUE(std::isinf(costs[2]));
}

TEST(IncrementalEvalTest, DisconnectedStateFailsAndRecovers) {
  // Two linked pairs with no path between them: mappings that split a
  // message across components must fail like the cold evaluator, and moving
  // back must restore a finite cost.
  Workflow w = testing::SimpleLine(4, 20e6, 60648);
  Network n("split");
  ServerId s0 = n.AddServer("s0", 1e9);
  ServerId s1 = n.AddServer("s1", 1e9);
  ServerId s2 = n.AddServer("s2", 1e9);
  ServerId s3 = n.AddServer("s3", 1e9);
  WSFLOW_UNWRAP(n.AddLink(s0, s1, 100e6));
  WSFLOW_UNWRAP(n.AddLink(s2, s3, 100e6));
  CostModel model(w, n);

  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, testing::AllOnServer(4, s0)));
  ExpectAgreesWithCold(eval, model);

  WSFLOW_EXPECT_OK(eval.Apply(OperationId(3), s2));
  EXPECT_TRUE(eval.ExecutionTime().status().IsFailedPrecondition());
  EXPECT_FALSE(model.Evaluate(eval.mapping()).ok());  // cold agrees

  WSFLOW_EXPECT_OK(eval.Undo());
  ExpectAgreesWithCold(eval, model);
}

}  // namespace
}  // namespace wsflow
