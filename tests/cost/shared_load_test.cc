// Shared-load cost model: tenant load vectors, the farm ledger and the
// cold SharedEvaluate reference, plus agreement with the base_loads /
// load_scale tuning of the IncrementalEvaluator.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/cost/cost_model.h"
#include "src/cost/incremental.h"
#include "src/cost/shared_load.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

TEST(SharedLoadTest, TenantLoadVectorIsSparseSortedAndSumsToLoads) {
  Workflow w = testing::SimpleLine(6);
  Network n = testing::SimpleBus(4);
  CostModel model(w, n);
  Mapping m(6);
  // Only servers 0 and 2 host anything.
  for (uint32_t i = 0; i < 6; ++i) {
    m.Assign(OperationId(i), ServerId(i % 2 == 0 ? 0 : 2));
  }
  TenantLoadVector v = ComputeTenantLoad(model, m);
  ASSERT_EQ(v.servers.size(), 2u);
  EXPECT_EQ(v.servers[0], 0u);
  EXPECT_EQ(v.servers[1], 2u);
  std::vector<double> dense = model.Loads(m);
  EXPECT_DOUBLE_EQ(v.loads[0], dense[0]);
  EXPECT_DOUBLE_EQ(v.loads[1], dense[2]);
  EXPECT_DOUBLE_EQ(v.total, dense[0] + dense[2]);
}

TEST(SharedLoadTest, LedgerCombinesWeightedTenantsAndExcludes) {
  Workflow w = testing::SimpleLine(4);
  Network n = testing::SimpleBus(3);
  CostModel model(w, n);
  Mapping a = testing::RoundRobin(4, 3);
  Mapping b = testing::AllOnServer(4, ServerId(1));
  TenantLoadVector va = ComputeTenantLoad(model, a);
  TenantLoadVector vb = ComputeTenantLoad(model, b);

  FarmLoadLedger ledger(3);
  ledger.Add(va, 2.0);
  ledger.Add(vb, 0.5);
  std::vector<double> la = model.Loads(a);
  std::vector<double> lb = model.Loads(b);
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_NEAR(ledger.loads()[s], 2.0 * la[s] + 0.5 * lb[s], 1e-15);
  }
  // Excluding tenant b leaves exactly tenant a's weighted loads.
  std::vector<double> base = ledger.Excluding(vb, 0.5);
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_NEAR(base[s], 2.0 * la[s], 1e-12);
  }
  // Penalty matches the hand-computed fairness statistic.
  double avg = ledger.TotalLoad() / 3.0;
  double expected = 0;
  for (double l : ledger.loads()) expected += std::fabs(l - avg) / 2.0;
  EXPECT_DOUBLE_EQ(ledger.FarmPenalty(), expected);

  ledger.Clear();
  EXPECT_EQ(ledger.TotalLoad(), 0.0);
}

TEST(SharedLoadTest, SharedEvaluateMatchesPlainEvaluateWhenAlone) {
  // One tenant at weight 1 with no background load is exactly the paper's
  // single-workflow evaluation.
  Workflow w = testing::AllDecisionGraph();
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  Network n = testing::SimpleBus(4);
  CostModel model(w, n, &profile);
  Mapping m = testing::RoundRobin(w.num_operations(), 4);

  CostBreakdown plain = WSFLOW_UNWRAP(model.Evaluate(m));
  CostBreakdown shared = WSFLOW_UNWRAP(SharedEvaluate(model, m, 1.0, {}));
  EXPECT_EQ(shared.execution_time, plain.execution_time);
  EXPECT_EQ(shared.time_penalty, plain.time_penalty);
  EXPECT_EQ(shared.combined, plain.combined);
}

TEST(SharedLoadTest, WeightScalesLoadButNeverExecutionTime) {
  Workflow w = testing::SimpleLine(6);
  Network n = testing::SimpleBus(3);
  CostModel model(w, n);
  Mapping m = testing::AllOnServer(6, ServerId(0));

  CostBreakdown one = WSFLOW_UNWRAP(SharedEvaluate(model, m, 1.0, {}));
  CostBreakdown four = WSFLOW_UNWRAP(SharedEvaluate(model, m, 4.0, {}));
  EXPECT_EQ(four.execution_time, one.execution_time)
      << "QPS weight must not change per-request latency";
  EXPECT_NEAR(four.time_penalty, 4.0 * one.time_penalty, 1e-12)
      << "an all-on-one-server load profile scales linearly in the weight";
}

TEST(SharedLoadTest, BaseLoadsShiftThePenaltyOnly) {
  Workflow w = testing::SimpleLine(4);
  Network n = testing::SimpleBus(2);
  CostModel model(w, n);
  Mapping m = testing::AllOnServer(4, ServerId(0));

  // Background load exactly mirroring the tenant's own profile onto the
  // other server flattens the farm: penalty drops to zero.
  std::vector<double> own = model.Loads(m);
  std::vector<double> base = {0.0, own[0]};
  CostBreakdown balanced = WSFLOW_UNWRAP(SharedEvaluate(model, m, 1.0, base));
  EXPECT_NEAR(balanced.time_penalty, 0.0, 1e-15);
  CostBreakdown alone = WSFLOW_UNWRAP(SharedEvaluate(model, m, 1.0, {}));
  EXPECT_EQ(balanced.execution_time, alone.execution_time);
  EXPECT_GT(alone.time_penalty, 0.0);
}

TEST(SharedLoadTest, SharedEvaluateRejectsBadArguments) {
  Workflow w = testing::SimpleLine(3);
  Network n = testing::SimpleBus(2);
  CostModel model(w, n);
  Mapping m = testing::AllOnServer(3, ServerId(0));
  EXPECT_FALSE(SharedEvaluate(model, m, 0.0, {}).ok());
  EXPECT_FALSE(SharedEvaluate(model, m, -1.0, {}).ok());
  std::vector<double> short_base = {1.0};
  EXPECT_FALSE(SharedEvaluate(model, m, 1.0, short_base).ok());
}

TEST(SharedLoadTest, EvaluatorWithSharedTuningMatchesColdReference) {
  // The delta evaluator bound with base_loads + load_scale must report the
  // exact shared breakdown for every scored candidate.
  Workflow w = testing::AllDecisionGraph();
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  Network n = testing::SimpleBus(4);
  CostModel model(w, n, &profile);
  Mapping m = testing::RoundRobin(w.num_operations(), 4);
  const double weight = 2.5;
  std::vector<double> base = {0.01, 0.0, 0.004, 0.02};

  EvalTuning tuning;
  tuning.base_loads = base;
  tuning.load_scale = weight;
  IncrementalEvaluator eval = WSFLOW_UNWRAP(
      IncrementalEvaluator::Bind(model, m, CostOptions{}, tuning));
  CostBreakdown cold = WSFLOW_UNWRAP(SharedEvaluate(model, m, weight, base));
  EXPECT_NEAR(WSFLOW_UNWRAP(eval.Combined()), cold.combined, 1e-12);
  EXPECT_NEAR(eval.TimePenalty(), cold.time_penalty, 1e-12);

  // Every batched move score equals the cold shared evaluation of the
  // moved mapping.
  std::vector<ServerId> candidates = {ServerId(0), ServerId(1), ServerId(2),
                                      ServerId(3)};
  std::vector<double> costs(candidates.size());
  for (uint32_t op = 0; op < w.num_operations(); ++op) {
    WSFLOW_ASSERT_OK(eval.ScoreMoves(OperationId(op), candidates, costs));
    for (size_t i = 0; i < candidates.size(); ++i) {
      Mapping moved = m;
      moved.Assign(OperationId(op), candidates[i]);
      CostBreakdown ref =
          WSFLOW_UNWRAP(SharedEvaluate(model, moved, weight, base));
      EXPECT_NEAR(costs[i], ref.combined, 1e-9)
          << "op " << op << " -> s" << candidates[i].value;
    }
  }
}

TEST(SharedLoadTest, EvaluatorRejectsBadSharedTuning) {
  Workflow w = testing::SimpleLine(3);
  Network n = testing::SimpleBus(2);
  CostModel model(w, n);
  Mapping m = testing::AllOnServer(3, ServerId(0));
  {
    EvalTuning tuning;
    tuning.load_scale = 0.0;
    EXPECT_FALSE(
        IncrementalEvaluator::Bind(model, m, CostOptions{}, tuning).ok());
  }
  {
    EvalTuning tuning;
    tuning.base_loads = {1.0};  // wrong size
    EXPECT_FALSE(
        IncrementalEvaluator::Bind(model, m, CostOptions{}, tuning).ok());
  }
  {
    EvalTuning tuning;
    tuning.base_loads = {1.0, -0.5};  // negative
    EXPECT_FALSE(
        IncrementalEvaluator::Bind(model, m, CostOptions{}, tuning).ok());
  }
}

}  // namespace
}  // namespace wsflow
