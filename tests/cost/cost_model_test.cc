#include "src/cost/cost_model.h"

#include <gtest/gtest.h>

#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

using testing::AllOnServer;
using testing::RoundRobin;
using testing::SimpleBus;
using testing::SimpleLine;

TEST(CostModelTest, TprocIsCyclesOverPower) {
  Workflow w = SimpleLine(2, /*cycles=*/4e9);
  Network n = SimpleBus(2, /*power_hz=*/2e9);
  CostModel model(w, n);
  Mapping m = AllOnServer(2, ServerId(0));
  EXPECT_DOUBLE_EQ(model.Tproc(OperationId(0), m), 2.0);
  EXPECT_DOUBLE_EQ(model.TprocOn(OperationId(0), ServerId(1)), 2.0);
}

TEST(CostModelTest, TprocDependsOnServerPower) {
  Workflow w = SimpleLine(1, 6e9);
  Network n;
  n.AddServer("slow", 1e9);
  n.AddServer("fast", 3e9);
  ASSERT_TRUE(n.SetBus(1e8).ok());
  CostModel model(w, n);
  EXPECT_DOUBLE_EQ(model.TprocOn(OperationId(0), ServerId(0)), 6.0);
  EXPECT_DOUBLE_EQ(model.TprocOn(OperationId(0), ServerId(1)), 2.0);
}

TEST(CostModelTest, TcommZeroWhenCoLocated) {
  Workflow w = SimpleLine(2, 1e6, /*msg_bits=*/1e6);
  Network n = SimpleBus(2);
  CostModel model(w, n);
  Mapping m = AllOnServer(2, ServerId(1));
  EXPECT_DOUBLE_EQ(model.Tcomm(TransitionId(0), m).value(), 0.0);
}

TEST(CostModelTest, TcommOverBus) {
  Workflow w = SimpleLine(2, 1e6, /*msg_bits=*/1e6);
  Network n = MakeBusNetwork({1e9, 1e9}, /*bus=*/1e6, /*prop=*/0.5).value();
  CostModel model(w, n);
  Mapping m = RoundRobin(2, 2);
  // 1e6 bits over 1 Mbps = 1 s, plus 0.5 s propagation.
  EXPECT_DOUBLE_EQ(model.Tcomm(TransitionId(0), m).value(), 1.5);
}

TEST(CostModelTest, TcommOverMultiHopLine) {
  Workflow w = SimpleLine(2, 1e6, 1e6);
  Network n = MakeLineNetwork({1e9, 1e9, 1e9}, {1e6, 2e6}).value();
  CostModel model(w, n);
  Mapping m(2);
  m.Assign(OperationId(0), ServerId(0));
  m.Assign(OperationId(1), ServerId(2));
  // Store-and-forward over both links: 1.0 + 0.5 s.
  EXPECT_DOUBLE_EQ(model.Tcomm(TransitionId(0), m).value(), 1.5);
}

TEST(CostModelTest, TcommUnassignedFails) {
  Workflow w = SimpleLine(2);
  Network n = SimpleBus(2);
  CostModel model(w, n);
  Mapping m(2);
  m.Assign(OperationId(0), ServerId(0));
  EXPECT_TRUE(
      model.Tcomm(TransitionId(0), m).status().IsFailedPrecondition());
}

TEST(CostModelTest, LoadSumsAssignedTproc) {
  Workflow w = SimpleLine(4, 2e9);
  Network n = SimpleBus(2, 1e9);
  CostModel model(w, n);
  Mapping m = RoundRobin(4, 2);
  EXPECT_DOUBLE_EQ(model.Load(ServerId(0), m), 4.0);  // ops 0,2: 2s each
  EXPECT_DOUBLE_EQ(model.Load(ServerId(1), m), 4.0);
  std::vector<double> loads = model.Loads(m);
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_DOUBLE_EQ(loads[0], 4.0);
}

TEST(CostModelTest, LoadUsesExecutionProbabilities) {
  Workflow w = testing::AllDecisionGraph(/*cycles=*/1e9);
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  Network n = SimpleBus(1, 1e9);
  CostModel model(w, n, &profile);
  Mapping m = AllOnServer(w.num_operations(), ServerId(0));
  // 12 always-executed ops at 1 s + the XOR arms at 0.7 and 0.3.
  EXPECT_NEAR(model.Load(ServerId(0), m), 13.0, 1e-9);
}

TEST(CostModelTest, TimePenaltyZeroWhenBalanced) {
  Workflow w = SimpleLine(4, 1e9);
  Network n = SimpleBus(2, 1e9);
  CostModel model(w, n);
  EXPECT_DOUBLE_EQ(model.TimePenalty(RoundRobin(4, 2)), 0.0);
}

TEST(CostModelTest, TimePenaltyMeasuresImbalance) {
  Workflow w = SimpleLine(4, 1e9);  // 4 ops, 1 s each on 1 GHz
  Network n = SimpleBus(2, 1e9);
  CostModel model(w, n);
  Mapping m = AllOnServer(4, ServerId(0));
  // Loads (4, 0), average 2: penalty = (2 + 2) / 2 = 2.
  EXPECT_DOUBLE_EQ(model.TimePenalty(m), 2.0);
}

TEST(CostModelTest, TimePenaltyProportionalCapacityIsFair) {
  // Servers of power 1 and 3 GHz; cycles split 1:3 gives equal times.
  Workflow w = SimpleLine(4, 1e9);
  Network n;
  n.AddServer("weak", 1e9);
  n.AddServer("strong", 3e9);
  ASSERT_TRUE(n.SetBus(1e8).ok());
  CostModel model(w, n);
  Mapping m(4);
  m.Assign(OperationId(0), ServerId(0));   // 1 s
  m.Assign(OperationId(1), ServerId(1));   // 1/3 s each
  m.Assign(OperationId(2), ServerId(1));
  m.Assign(OperationId(3), ServerId(1));
  EXPECT_NEAR(model.TimePenalty(m), 0.0, 1e-12);
}

TEST(CostModelTest, LineExecutionTimeAllOnOneServer) {
  Workflow w = SimpleLine(3, 2e9, 1e6);
  Network n = SimpleBus(2, 1e9);
  CostModel model(w, n);
  // No communication: 3 ops x 2 s.
  EXPECT_DOUBLE_EQ(model.ExecutionTime(AllOnServer(3, ServerId(0))).value(),
                   6.0);
}

TEST(CostModelTest, LineExecutionTimeWithMessages) {
  Workflow w = SimpleLine(3, 2e9, 1e6);
  Network n = MakeBusNetwork({1e9, 1e9}, 1e6).value();
  CostModel model(w, n);
  // Alternating servers: both messages cross the 1 Mbps bus (1 s each).
  EXPECT_DOUBLE_EQ(model.ExecutionTime(RoundRobin(3, 2)).value(), 8.0);
}

TEST(CostModelTest, EvaluateCombinesWeights) {
  Workflow w = SimpleLine(4, 1e9);
  Network n = SimpleBus(2, 1e9);
  CostModel model(w, n);
  Mapping m = AllOnServer(4, ServerId(0));
  CostBreakdown cost = model.Evaluate(m).value();
  EXPECT_DOUBLE_EQ(cost.execution_time, 4.0);
  EXPECT_DOUBLE_EQ(cost.time_penalty, 2.0);
  EXPECT_DOUBLE_EQ(cost.combined, 3.0);  // equally weighted

  CostOptions exec_only;
  exec_only.execution_weight = 1.0;
  exec_only.fairness_weight = 0.0;
  EXPECT_DOUBLE_EQ(model.Evaluate(m, exec_only).value().combined, 4.0);
}

TEST(CostModelTest, EvaluatePartialMappingFails) {
  Workflow w = SimpleLine(3);
  Network n = SimpleBus(2);
  CostModel model(w, n);
  Mapping m(3);
  m.Assign(OperationId(0), ServerId(0));
  EXPECT_TRUE(model.Evaluate(m).status().IsFailedPrecondition());
}

TEST(CostModelTest, AntagonisticMetricsOnLine) {
  // The paper's §3.1 observation: all-on-one-server optimizes execution
  // time (no messages) but destroys fairness; spreading does the reverse.
  Workflow w = SimpleLine(4, 1e9, 1e6);
  Network n = MakeBusNetwork({1e9, 1e9}, 1e6).value();
  CostModel model(w, n);

  CostBreakdown packed = model.Evaluate(AllOnServer(4, ServerId(0))).value();
  CostBreakdown spread = model.Evaluate(RoundRobin(4, 2)).value();
  EXPECT_LT(packed.execution_time, spread.execution_time);
  EXPECT_GT(packed.time_penalty, spread.time_penalty);
}

TEST(CostModelTest, WeightedTcommScalesByProbability) {
  Workflow w = testing::AllDecisionGraph(1e9, /*msg_bits=*/1e6);
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  Network n = MakeBusNetwork({1e9, 1e9}, 1e6).value();
  CostModel model(w, n, &profile);

  // Find the xor -> d entry edge (probability 0.7).
  TransitionId edge;
  for (const Transition& t : w.transitions()) {
    if (w.operation(t.from).name() == "xor" &&
        w.operation(t.to).name() == "d") {
      edge = t.id;
    }
  }
  ASSERT_TRUE(edge.valid());
  Mapping m = RoundRobin(w.num_operations(), 2);
  double raw = model.Tcomm(edge, m).value();
  double weighted = model.WeightedTcomm(edge, m).value();
  if (raw > 0) {
    EXPECT_NEAR(weighted / raw, 0.7, 1e-12);
  } else {
    EXPECT_DOUBLE_EQ(weighted, 0.0);
  }
}

}  // namespace
}  // namespace wsflow
