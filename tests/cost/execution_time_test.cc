#include "src/cost/execution_time.h"

#include <gtest/gtest.h>

#include "src/workflow/builder.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

using testing::AllOnServer;
using testing::SimpleBus;

/// Builds a two-branch block of the given type with per-branch cycle costs
/// (1 GHz servers make cycles == seconds). Message sizes are zero so only
/// processing time matters.
Workflow TwoBranchBlock(OperationType split_type, double left_cycles,
                        double right_cycles, double w_left = 1.0,
                        double w_right = 1.0) {
  WorkflowBuilder b("two-branch");
  b.Split(split_type, "s", 0);
  b.Branch(w_left).Op("left", left_cycles);
  b.Branch(w_right).Op("right", right_cycles);
  b.Join("j", 0);
  Result<Workflow> w = b.Build();
  EXPECT_TRUE(w.ok()) << w.status().ToString();
  return std::move(w).value();
}

TEST(LineExecutionTest, MatchesClosedForm) {
  Workflow w = testing::SimpleLine(4, 2e9, 1e6);
  Network n = MakeBusNetwork({1e9, 1e9}, 1e6).value();
  CostModel model(w, n);
  Mapping m(4);
  m.Assign(OperationId(0), ServerId(0));
  m.Assign(OperationId(1), ServerId(0));
  m.Assign(OperationId(2), ServerId(1));
  m.Assign(OperationId(3), ServerId(1));
  // 4 x 2 s processing + one crossing message of 1 s.
  EXPECT_DOUBLE_EQ(LineExecutionTime(model, m).value(), 9.0);
}

TEST(LineExecutionTest, RejectsGraphWorkflow) {
  Workflow w = testing::AllDecisionGraph();
  Network n = SimpleBus(2);
  CostModel model(w, n);
  Mapping m = AllOnServer(w.num_operations(), ServerId(0));
  EXPECT_TRUE(LineExecutionTime(model, m).status().IsFailedPrecondition());
}

TEST(GraphExecutionTest, AndBlockIsMax) {
  Workflow w = TwoBranchBlock(OperationType::kAndSplit, 2e9, 5e9);
  Network n = SimpleBus(1, 1e9);
  CostModel model(w, n);
  Mapping m = AllOnServer(w.num_operations(), ServerId(0));
  // Rendezvous: split(0) + max(2, 5) + join(0) = 5.
  EXPECT_DOUBLE_EQ(GraphExecutionTime(model, m).value(), 5.0);
}

TEST(GraphExecutionTest, OrBlockIsMin) {
  Workflow w = TwoBranchBlock(OperationType::kOrSplit, 2e9, 5e9);
  Network n = SimpleBus(1, 1e9);
  CostModel model(w, n);
  Mapping m = AllOnServer(w.num_operations(), ServerId(0));
  // First success: min(2, 5) = 2.
  EXPECT_DOUBLE_EQ(GraphExecutionTime(model, m).value(), 2.0);
}

TEST(GraphExecutionTest, XorBlockIsExpectation) {
  Workflow w =
      TwoBranchBlock(OperationType::kXorSplit, 2e9, 6e9, /*w_left=*/0.75,
                     /*w_right=*/0.25);
  Network n = SimpleBus(1, 1e9);
  CostModel model(w, n);
  Mapping m = AllOnServer(w.num_operations(), ServerId(0));
  // 0.75 * 2 + 0.25 * 6 = 3.
  EXPECT_DOUBLE_EQ(GraphExecutionTime(model, m).value(), 3.0);
}

TEST(GraphExecutionTest, SplitAndJoinProcessingCounted) {
  WorkflowBuilder b("with-decision-cost");
  b.Split(OperationType::kAndSplit, "s", 1e9);
  b.Branch().Op("l", 2e9);
  b.Branch().Op("r", 3e9);
  b.Join("j", 1e9);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  Network n = SimpleBus(1, 1e9);
  CostModel model(w, n);
  Mapping m = AllOnServer(4, ServerId(0));
  EXPECT_DOUBLE_EQ(GraphExecutionTime(model, m).value(), 5.0);  // 1+3+1
}

TEST(GraphExecutionTest, BranchMessagesCounted) {
  // Split and join on server 0, branch bodies on server 1: every branch
  // pays its entry and exit message.
  WorkflowBuilder b("msgs");
  b.Split(OperationType::kAndSplit, "s", 0);
  b.Branch().Op("l", 0, /*in_msg=*/1e6);
  b.Branch().Op("r", 0, /*in_msg=*/1e6);
  b.Join("j", 0, /*in_msg=*/1e6);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  Network n = MakeBusNetwork({1e9, 1e9}, 1e6).value();
  CostModel model(w, n);
  Mapping m(4);
  m.Assign(WSFLOW_UNWRAP(b.Id("s")), ServerId(0));
  m.Assign(WSFLOW_UNWRAP(b.Id("l")), ServerId(1));
  m.Assign(WSFLOW_UNWRAP(b.Id("r")), ServerId(1));
  m.Assign(WSFLOW_UNWRAP(b.Id("j")), ServerId(0));
  // Each branch: 1 s entry + 0 processing + 1 s exit = 2 s; AND max = 2 s.
  EXPECT_DOUBLE_EQ(GraphExecutionTime(model, m).value(), 2.0);
}

TEST(GraphExecutionTest, EmptyBranchUsesDirectMessage) {
  WorkflowBuilder b("empty");
  b.Split(OperationType::kOrSplit, "s", 0);
  b.Branch().Op("slow", 5e9, 1e6);
  b.Branch();  // empty: direct split -> join message
  b.Join("j", 0, 1e6);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  Network n = MakeBusNetwork({1e9, 1e9}, 1e6).value();
  CostModel model(w, n);
  Mapping m(3);
  m.Assign(WSFLOW_UNWRAP(b.Id("s")), ServerId(0));
  m.Assign(WSFLOW_UNWRAP(b.Id("slow")), ServerId(0));
  m.Assign(WSFLOW_UNWRAP(b.Id("j")), ServerId(1));
  // OR: min(slow branch, direct 1 s message) = 1 s.
  EXPECT_DOUBLE_EQ(GraphExecutionTime(model, m).value(), 1.0);
}

TEST(GraphExecutionTest, SequenceMessagesBetweenBlocks) {
  Workflow w = testing::AllDecisionGraph(/*cycles=*/1e9, /*msg_bits=*/0);
  Network n = SimpleBus(1, 1e9);
  CostModel model(w, n);
  Mapping m = AllOnServer(w.num_operations(), ServerId(0));
  // a(1) + AND(1+1+1) + XOR(1+1+1) + OR(1+1+1) + h(1) = 11 s.
  EXPECT_DOUBLE_EQ(GraphExecutionTime(model, m).value(), 11.0);
}

TEST(GraphExecutionTest, NestedBlocks) {
  WorkflowBuilder b("nested");
  b.Split(OperationType::kAndSplit, "outer", 0);
  b.Branch();
  b.Split(OperationType::kXorSplit, "inner", 0);
  b.Branch(0.5).Op("fast", 2e9);
  b.Branch(0.5).Op("slow", 4e9);
  b.Join("inner_j", 0);
  b.Branch().Op("other", 1e9);
  b.Join("outer_j", 0);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  Network n = SimpleBus(1, 1e9);
  CostModel model(w, n);
  Mapping m = AllOnServer(w.num_operations(), ServerId(0));
  // Inner XOR expectation = 3; outer AND = max(3, 1) = 3.
  EXPECT_DOUBLE_EQ(GraphExecutionTime(model, m).value(), 3.0);
}

TEST(GraphExecutionTest, MappingAffectsBranchViaComm) {
  Workflow w = TwoBranchBlock(OperationType::kAndSplit, 1e9, 1e9);
  // Non-uniform: placing "left" remotely adds 2 message seconds.
  WorkflowBuilder b("with-msgs");
  b.Split(OperationType::kAndSplit, "s", 0);
  b.Branch().Op("left", 1e9, 1e6);
  b.Branch().Op("right", 1e9, 1e6);
  b.Join("j", 0, 1e6);
  Workflow w2 = WSFLOW_UNWRAP(b.Build());
  Network n = MakeBusNetwork({1e9, 1e9}, 1e6).value();
  CostModel model(w2, n);

  Mapping local = AllOnServer(4, ServerId(0));
  Mapping remote = local;
  remote.Assign(WSFLOW_UNWRAP(b.Id("left")), ServerId(1));
  double t_local = GraphExecutionTime(model, local).value();
  double t_remote = GraphExecutionTime(model, remote).value();
  EXPECT_DOUBLE_EQ(t_local, 1.0);
  EXPECT_DOUBLE_EQ(t_remote, 3.0);  // entry + proc + exit on the slow bus
  (void)w;
}

TEST(GraphExecutionTest, CostModelDispatchesGraphs) {
  Workflow w = testing::AllDecisionGraph(1e9, 0);
  Network n = SimpleBus(1, 1e9);
  CostModel model(w, n);
  Mapping m = AllOnServer(w.num_operations(), ServerId(0));
  EXPECT_DOUBLE_EQ(model.ExecutionTime(m).value(), 11.0);
}

}  // namespace
}  // namespace wsflow
