#include "src/cost/response_time.h"

#include <gtest/gtest.h>

#include "src/deploy/constraints.h"
#include "src/workflow/builder.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

using testing::AllOnServer;
using testing::RoundRobin;
using testing::SimpleBus;

TEST(ResponseTimeTest, LinePrefixSums) {
  Workflow w = testing::SimpleLine(3, 2e9, 1e6);  // 2 s ops
  Network n = MakeBusNetwork({1e9, 1e9}, 1e6).value();  // 1 s messages
  CostModel model(w, n);
  Mapping m = RoundRobin(3, 2);
  ResponseTimes times = WSFLOW_UNWRAP(ComputeResponseTimes(model, m));
  EXPECT_DOUBLE_EQ(times[0], 2.0);
  EXPECT_DOUBLE_EQ(times[1], 5.0);  // 2 + msg 1 + 2
  EXPECT_DOUBLE_EQ(times[2], 8.0);
}

TEST(ResponseTimeTest, SinkEqualsExecutionTime) {
  Workflow w = testing::AllDecisionGraph(50e6, 60648);
  Network n = MakeBusNetwork({1e9, 2e9, 3e9}, 1e7).value();
  CostModel model(w, n);
  Mapping m = RoundRobin(w.num_operations(), 3);
  ResponseTimes times = WSFLOW_UNWRAP(ComputeResponseTimes(model, m));
  double exec = WSFLOW_UNWRAP(model.ExecutionTime(m));
  OperationId sink = w.Sinks()[0];
  EXPECT_NEAR(times[sink.value], exec, exec * 1e-12);
}

TEST(ResponseTimeTest, AndBranchTimesIndependent) {
  WorkflowBuilder b("and");
  b.Split(OperationType::kAndSplit, "s", 0);
  b.Branch().Op("fast", 1e9);
  b.Branch().Op("slow", 5e9);
  b.Join("j", 0);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  Network n = SimpleBus(1, 1e9);
  CostModel model(w, n);
  Mapping m = AllOnServer(4, ServerId(0));
  ResponseTimes times = WSFLOW_UNWRAP(ComputeResponseTimes(model, m));
  EXPECT_DOUBLE_EQ(times[WSFLOW_UNWRAP(b.Id("fast")).value], 1.0);
  EXPECT_DOUBLE_EQ(times[WSFLOW_UNWRAP(b.Id("slow")).value], 5.0);
  // The AND join waits for the slowest branch.
  EXPECT_DOUBLE_EQ(times[WSFLOW_UNWRAP(b.Id("j")).value], 5.0);
}

TEST(ResponseTimeTest, OrJoinUsesFastestBranch) {
  WorkflowBuilder b("or");
  b.Split(OperationType::kOrSplit, "s", 0);
  b.Branch().Op("fast", 1e9);
  b.Branch().Op("slow", 5e9);
  b.Join("j", 0);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  Network n = SimpleBus(1, 1e9);
  CostModel model(w, n);
  ResponseTimes times = WSFLOW_UNWRAP(
      ComputeResponseTimes(model, AllOnServer(4, ServerId(0))));
  EXPECT_DOUBLE_EQ(times[WSFLOW_UNWRAP(b.Id("j")).value], 1.0);
  // The slow branch's own completion is still its conditional time.
  EXPECT_DOUBLE_EQ(times[WSFLOW_UNWRAP(b.Id("slow")).value], 5.0);
}

TEST(ResponseTimeTest, XorJoinIsExpectation) {
  WorkflowBuilder b("xor");
  b.Split(OperationType::kXorSplit, "s", 0);
  b.Branch(0.75).Op("cheap", 2e9);
  b.Branch(0.25).Op("dear", 6e9);
  b.Join("j", 0);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  Network n = SimpleBus(1, 1e9);
  CostModel model(w, n);
  ResponseTimes times = WSFLOW_UNWRAP(
      ComputeResponseTimes(model, AllOnServer(4, ServerId(0))));
  // Conditional completions.
  EXPECT_DOUBLE_EQ(times[WSFLOW_UNWRAP(b.Id("cheap")).value], 2.0);
  EXPECT_DOUBLE_EQ(times[WSFLOW_UNWRAP(b.Id("dear")).value], 6.0);
  // Join expectation: 0.75*2 + 0.25*6 = 3.
  EXPECT_DOUBLE_EQ(times[WSFLOW_UNWRAP(b.Id("j")).value], 3.0);
}

TEST(ResponseTimeTest, MessagesDelayDownstream) {
  Workflow w = testing::SimpleLine(2, 1e9, 1e6);
  Network n = MakeBusNetwork({1e9, 1e9}, 1e6).value();
  CostModel model(w, n);
  ResponseTimes local = WSFLOW_UNWRAP(
      ComputeResponseTimes(model, AllOnServer(2, ServerId(0))));
  ResponseTimes remote =
      WSFLOW_UNWRAP(ComputeResponseTimes(model, RoundRobin(2, 2)));
  EXPECT_DOUBLE_EQ(local[1], 2.0);
  EXPECT_DOUBLE_EQ(remote[1], 3.0);  // + 1 s message
}

TEST(ResponseTimeTest, PartialMappingRejected) {
  Workflow w = testing::SimpleLine(3);
  Network n = SimpleBus(2);
  CostModel model(w, n);
  Mapping partial(3);
  EXPECT_FALSE(ComputeResponseTimes(model, partial).ok());
}

TEST(ResponseTimeConstraintTest, CeilingEnforced) {
  Workflow w = testing::SimpleLine(3, 1e9, 1e6);  // 1 s ops
  Network n = MakeBusNetwork({1e9, 1e9}, 1e6).value();
  CostModel model(w, n);
  DeploymentConstraints c;
  // op2 must complete within 2.5 s: co-located it finishes at 2 s,
  // split across servers at 3 s.
  c.max_response_time.push_back({OperationId(1), 2.5});
  EXPECT_FALSE(c.empty());
  WSFLOW_EXPECT_OK(
      CheckConstraints(model, AllOnServer(3, ServerId(0)), c));
  Status st = CheckConstraints(model, RoundRobin(3, 2), c);
  EXPECT_TRUE(st.IsConstraintViolation());
  EXPECT_DOUBLE_EQ(
      ConstraintViolation(model, RoundRobin(3, 2), c).value(), 0.5);
}

}  // namespace
}  // namespace wsflow
