// FleetController: admission lifecycle, quota invariants, churn bounds and
// the cross-thread determinism contract.
//
// Suite names all start with "Fleet" on purpose: CI runs them under TSan
// with -R '^Fleet', and the FleetDeterminism suite additionally runs under
// ASan/UBSan next to the evaluator parity suites.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/random.h"

#include "src/cost/cost_model.h"
#include "src/deploy/graph_view.h"
#include "src/fleet/controller.h"
#include "src/serve/metrics.h"
#include "tests/testing/test_util.h"

namespace wsflow::fleet {
namespace {

/// Two archetypes (a line and a decision graph) on one 6-server bus, plus
/// a deterministic tenant roster — the shared scaffolding of every
/// controller test.
class FleetFixture {
 public:
  FleetFixture()
      : line_(testing::SimpleLine(8)),
        graph_(testing::AllDecisionGraph()),
        graph_profile_(WSFLOW_UNWRAP(ComputeExecutionProfile(graph_))),
        network_(testing::SimpleBus(6)),
        line_model_(line_, network_),
        graph_model_(graph_, network_, &graph_profile_) {
    WSFLOW_EXPECT_OK(line_model_.Warm());
    WSFLOW_EXPECT_OK(graph_model_.Warm());
  }

  std::vector<const CostModel*> archetypes() const {
    return {&line_model_, &graph_model_};
  }

  /// Unit (weight-1) demand of an archetype, recomputed from first
  /// principles so the controller's bookkeeping is audited, not echoed.
  double UnitDemandOf(size_t archetype) const {
    if (archetype == 0) {
      return WorkflowView(line_, nullptr).TotalCycles();
    }
    return WorkflowView(graph_, &graph_profile_).TotalCycles();
  }

  /// Submits `n` tenants with seeded weights alternating archetypes.
  static void SubmitRoster(FleetController& fc, size_t n) {
    Rng rng(0xF1EE7ull);
    for (size_t i = 0; i < n; ++i) {
      TenantSpec spec;
      spec.archetype = i % 2;
      spec.weight = rng.NextDouble(0.5, 2.0);
      spec.drift_seed = rng.NextUint64();
      WSFLOW_ASSERT_OK(fc.Submit(spec).status());
    }
  }

 private:
  Workflow line_;
  Workflow graph_;
  ExecutionProfile graph_profile_;
  Network network_;
  CostModel line_model_;
  CostModel graph_model_;
};

FleetOptions SmallFleetOptions() {
  FleetOptions options;
  options.drift.sigma = 0.25;
  options.max_migrations_per_epoch = 4;
  options.migration_eval_budget = 64;
  options.deploy_eval_budget = 128;
  options.threads = 1;
  return options;
}

TEST(FleetControllerTest, SubmitDeploysWithinQuotaAndBudget) {
  FleetFixture fx;
  FleetController fc(fx.archetypes(), SmallFleetOptions());
  TenantSpec spec;
  spec.weight = 1.0;
  size_t id = WSFLOW_UNWRAP(fc.Submit(spec));
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(fc.tenant(id).status, TenantStatus::kDeployed);
  EXPECT_TRUE(fc.tenant(id).mapping.IsTotal());
  EXPECT_GT(fc.tenant(id).execution_time, 0.0);
  EXPECT_GT(fc.admission().committed_hz(), 0.0);
}

TEST(FleetControllerTest, SubmitRejectsOversizedAndQueuesOverflow) {
  FleetFixture fx;
  FleetOptions options = SmallFleetOptions();
  options.budget.max_tenant_share = 0.05;
  options.budget.max_utilization = 0.2;
  FleetController fc(fx.archetypes(), options);

  // A tenant whose lone demand breaches the 5% quota is rejected outright.
  TenantSpec whale;
  whale.weight = 1e6;
  size_t whale_id = WSFLOW_UNWRAP(fc.Submit(whale));
  EXPECT_EQ(fc.tenant(whale_id).status, TenantStatus::kRejected);
  EXPECT_EQ(fc.total_rejections(), 1u);

  // Small tenants are admitted until the 20% utilization budget fills,
  // then queue.
  size_t deployed = 0, queued = 0;
  for (int i = 0; i < 200; ++i) {
    TenantSpec spec;
    spec.weight = 0.5;
    size_t id = WSFLOW_UNWRAP(fc.Submit(spec));
    if (fc.tenant(id).status == TenantStatus::kDeployed) ++deployed;
    if (fc.tenant(id).status == TenantStatus::kQueued) ++queued;
  }
  EXPECT_GT(deployed, 0u);
  EXPECT_GT(queued, 0u);
  double cap = fc.admission().capacity_hz();
  EXPECT_LE(fc.admission().committed_hz(),
            options.budget.max_utilization * cap * (1 + 1e-9));
}

TEST(FleetControllerTest, QuotaInvariantsHoldUnderDrift) {
  FleetFixture fx;
  FleetOptions options = SmallFleetOptions();
  options.drift.sigma = 0.4;  // violent traffic swings
  options.drift.max_weight = 100.0;
  FleetController fc(fx.archetypes(), options);
  FleetFixture::SubmitRoster(fc, 60);

  const double cap = fc.admission().capacity_hz();
  const double tol = 1 + 1e-9;
  for (int e = 0; e < 25; ++e) {
    EpochReport report = WSFLOW_UNWRAP(fc.RunEpoch());
    // Farm budget: committed demand never exceeds max_utilization.
    EXPECT_LE(fc.admission().committed_hz(),
              options.budget.max_utilization * cap * tol)
        << "epoch " << report.epoch;
    // Per-tenant quota: recompute every deployed tenant's demand from its
    // archetype view — the controller's own bookkeeping is not trusted.
    double committed = 0;
    for (size_t id = 0; id < fc.num_tenants(); ++id) {
      const TenantState& t = fc.tenant(id);
      if (t.status != TenantStatus::kDeployed) continue;
      double demand = fx.UnitDemandOf(t.spec.archetype) * t.weight;
      EXPECT_LE(demand, options.budget.max_tenant_share * cap * tol)
          << "tenant " << id << " epoch " << report.epoch;
      committed += demand;
    }
    EXPECT_NEAR(committed, fc.admission().committed_hz(),
                1e-6 * (1 + committed))
        << "bookkeeping drifted from recomputed demand, epoch "
        << report.epoch;
  }
}

TEST(FleetControllerTest, MigrationChurnIsBoundedPerEpoch) {
  FleetFixture fx;
  FleetOptions options = SmallFleetOptions();
  options.drift.sigma = 0.5;
  options.drift_threshold = 0.01;  // hair trigger: many regressions
  options.max_migrations_per_epoch = 3;
  FleetController fc(fx.archetypes(), options);
  FleetFixture::SubmitRoster(fc, 40);

  for (int e = 0; e < 20; ++e) {
    EpochReport report = WSFLOW_UNWRAP(fc.RunEpoch());
    EXPECT_LE(report.migration_attempts, options.max_migrations_per_epoch)
        << "epoch " << report.epoch;
    EXPECT_LE(report.migrations, report.migration_attempts);
  }
  // The hair trigger must have actually exercised the wave.
  EXPECT_GT(fc.total_migrations(), 0u);
}

TEST(FleetControllerTest, FrozenWeightsSettleAndNeverClamp) {
  // With sigma = 0 nothing clamps, and once the settling waves triggered
  // by deployment-time baselines have re-anchored every tenant, the
  // watcher goes quiet for good.
  FleetFixture fx;
  FleetOptions options = SmallFleetOptions();
  options.drift.sigma = 0.0;
  FleetController fc(fx.archetypes(), options);
  FleetFixture::SubmitRoster(fc, 20);
  for (int e = 0; e < 12; ++e) {
    EpochReport report = WSFLOW_UNWRAP(fc.RunEpoch());
    EXPECT_EQ(report.weight_clamps, 0u);
    // 20 tenants at 4 attempts per epoch re-anchor within 5 epochs; after
    // that every baseline matches the current cost exactly.
    if (e >= 6) {
      EXPECT_EQ(report.migration_attempts, 0u) << "epoch " << report.epoch;
    }
  }
  EXPECT_EQ(fc.total_clamps(), 0u);
}

TEST(FleetControllerTest, MetricsRecordAdmissionAndMigrationEvents) {
  FleetFixture fx;
  serve::ServeMetrics metrics;
  FleetOptions options = SmallFleetOptions();
  options.drift.sigma = 0.5;
  options.drift_threshold = 0.01;
  FleetController fc(fx.archetypes(), options, &metrics);
  FleetFixture::SubmitRoster(fc, 30);
  for (int e = 0; e < 15; ++e) {
    WSFLOW_ASSERT_OK(fc.RunEpoch().status());
  }
  serve::MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_GT(snap.tenants_admitted, 0u);
  EXPECT_EQ(snap.migrations, fc.total_migrations());
  EXPECT_GT(snap.migrations + snap.migration_stalls, 0u);
}

TEST(FleetControllerTest, ReportsCostPercentilesAndUtilization) {
  FleetFixture fx;
  FleetController fc(fx.archetypes(), SmallFleetOptions());
  FleetFixture::SubmitRoster(fc, 25);
  EpochReport report = WSFLOW_UNWRAP(fc.RunEpoch());
  EXPECT_EQ(report.epoch, 1u);
  EXPECT_GT(report.deployed, 0u);
  EXPECT_GT(report.p50, 0.0);
  EXPECT_LE(report.p50, report.p95);
  EXPECT_LE(report.p95, report.p99);
  EXPECT_GT(report.utilization, 0.0);
  EXPECT_LE(report.utilization, 1.0);
}

void ExpectReportsEqual(const EpochReport& a, const EpochReport& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.deployed, b.deployed);
  EXPECT_EQ(a.queued, b.queued);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.migration_attempts, b.migration_attempts);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.weight_clamps, b.weight_clamps);
  EXPECT_EQ(a.polish_evaluations, b.polish_evaluations);
  // Bitwise double equality — the determinism contract is byte-identity,
  // not approximate agreement.
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p95, b.p95);
  EXPECT_EQ(a.p99, b.p99);
  EXPECT_EQ(a.farm_penalty, b.farm_penalty);
  EXPECT_EQ(a.utilization, b.utilization);
}

TEST(FleetDeterminismTest, EpochReportsAreIdenticalAcrossThreadCounts) {
  FleetFixture fx;
  FleetOptions options;
  options.drift.sigma = 0.35;
  options.drift_threshold = 0.05;
  options.max_migrations_per_epoch = 6;
  options.migration_eval_budget = 64;
  options.deploy_eval_budget = 128;

  std::vector<EpochReport> reference;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    options.threads = threads;
    FleetController fc(fx.archetypes(), options);
    FleetFixture::SubmitRoster(fc, 50);
    std::vector<EpochReport> reports;
    for (int e = 0; e < 20; ++e) {
      reports.push_back(WSFLOW_UNWRAP(fc.RunEpoch()));
    }
    if (reference.empty()) {
      reference = reports;
      continue;
    }
    ASSERT_EQ(reports.size(), reference.size());
    for (size_t i = 0; i < reports.size(); ++i) {
      SCOPED_TRACE(::testing::Message() << "threads=" << threads
                                        << " epoch " << i + 1);
      ExpectReportsEqual(reference[i], reports[i]);
    }
  }
}

TEST(FleetDeterminismTest, ReplayFromTheSameSeedsIsIdentical) {
  FleetFixture fx;
  FleetOptions options;
  options.drift.sigma = 0.3;
  options.threads = 2;
  std::vector<EpochReport> first, second;
  for (int run = 0; run < 2; ++run) {
    FleetController fc(fx.archetypes(), options);
    FleetFixture::SubmitRoster(fc, 30);
    auto& sink = run == 0 ? first : second;
    for (int e = 0; e < 12; ++e) {
      sink.push_back(WSFLOW_UNWRAP(fc.RunEpoch()));
    }
  }
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "epoch " << i + 1);
    ExpectReportsEqual(first[i], second[i]);
  }
}

TEST(FleetDeterminismTest, TenantMappingsMatchAcrossThreadCounts) {
  // Beyond the reports: every tenant's final mapping and weight must agree
  // bit-for-bit between a serial and a parallel run.
  FleetFixture fx;
  FleetOptions options;
  options.drift.sigma = 0.35;
  options.drift_threshold = 0.05;

  auto run = [&](size_t threads) {
    options.threads = threads;
    auto fc = std::make_unique<FleetController>(fx.archetypes(), options);
    FleetFixture::SubmitRoster(*fc, 40);
    for (int e = 0; e < 15; ++e) {
      WSFLOW_EXPECT_OK(fc->RunEpoch().status());
    }
    return fc;
  };
  auto serial = run(1);
  auto parallel = run(4);
  ASSERT_EQ(serial->num_tenants(), parallel->num_tenants());
  for (size_t id = 0; id < serial->num_tenants(); ++id) {
    const TenantState& a = serial->tenant(id);
    const TenantState& b = parallel->tenant(id);
    EXPECT_EQ(a.status, b.status) << "tenant " << id;
    EXPECT_EQ(a.weight, b.weight) << "tenant " << id;
    EXPECT_TRUE(a.mapping == b.mapping) << "tenant " << id;
    EXPECT_EQ(a.current_cost, b.current_cost) << "tenant " << id;
    EXPECT_EQ(a.migrations, b.migrations) << "tenant " << id;
  }
}

}  // namespace
}  // namespace wsflow::fleet
