// AdmissionController: quota and capacity-budget decisions.

#include <gtest/gtest.h>

#include <cmath>

#include "src/cost/cost_model.h"
#include "src/deploy/graph_view.h"
#include "src/fleet/admission.h"
#include "tests/testing/test_util.h"

namespace wsflow::fleet {
namespace {

TEST(FleetAdmissionTest, TenantDemandScalesWithWeightAndMatchesView) {
  Workflow w = testing::AllDecisionGraph();
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  WorkflowView view(w, &profile);
  double unit = TenantDemandHz(view, 1.0);
  EXPECT_GT(unit, 0.0);
  EXPECT_DOUBLE_EQ(unit, view.TotalCycles());
  EXPECT_DOUBLE_EQ(TenantDemandHz(view, 2.5), 2.5 * unit);
}

TEST(FleetAdmissionTest, DecideClassifiesAgainstQuotaAndBudget) {
  FarmBudget budget;
  budget.max_utilization = 0.8;
  budget.max_tenant_share = 0.25;
  AdmissionController ac(1000.0, budget);

  // Over the per-tenant quota: rejected regardless of free capacity.
  EXPECT_EQ(ac.Decide(251.0), AdmissionDecision::kRejected);
  // Within quota and budget: admitted.
  EXPECT_EQ(ac.Decide(250.0), AdmissionDecision::kAdmitted);

  // Fill the farm to the utilization budget; further tenants queue.
  ac.Commit(250.0);
  ac.Commit(250.0);
  ac.Commit(250.0);
  EXPECT_DOUBLE_EQ(ac.committed_hz(), 750.0);
  EXPECT_EQ(ac.Decide(100.0), AdmissionDecision::kQueued);
  EXPECT_EQ(ac.Decide(50.0), AdmissionDecision::kAdmitted);
}

TEST(FleetAdmissionTest, ReleaseFreesCapacityAndClampsAtZero) {
  AdmissionController ac(1000.0, FarmBudget{});
  ac.Commit(400.0);
  EXPECT_DOUBLE_EQ(ac.utilization(), 0.4);
  ac.Release(150.0);
  EXPECT_DOUBLE_EQ(ac.committed_hz(), 250.0);
  // Releasing more than committed never goes negative.
  ac.Release(1e9);
  EXPECT_DOUBLE_EQ(ac.committed_hz(), 0.0);
}

TEST(FleetAdmissionTest, MaxWeightForQuotaBoundsTheDriftClamp) {
  FarmBudget budget;
  budget.max_tenant_share = 0.2;
  AdmissionController ac(1000.0, budget);
  // Quota is 200 Hz; a tenant of unit demand 50 Hz may grow to weight 4.
  EXPECT_DOUBLE_EQ(ac.MaxWeightForQuota(50.0), 4.0);
  // A weight at the cap passes Decide exactly.
  EXPECT_EQ(ac.Decide(50.0 * ac.MaxWeightForQuota(50.0)),
            AdmissionDecision::kAdmitted);
  EXPECT_TRUE(std::isinf(ac.MaxWeightForQuota(0.0)));
}

}  // namespace
}  // namespace wsflow::fleet
