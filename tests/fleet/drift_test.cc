// DriftStream: seeded multiplicative traffic drift.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/fleet/tenant.h"

namespace wsflow::fleet {
namespace {

TEST(FleetDriftTest, SameSeedReplaysTheSameTrajectory) {
  DriftOptions opts;
  DriftStream a(1234, opts);
  DriftStream b(1234, opts);
  double wa = 1.0, wb = 1.0;
  for (int i = 0; i < 200; ++i) {
    wa = a.Next(wa);
    wb = b.Next(wb);
    ASSERT_EQ(wa, wb) << "step " << i;
  }
}

TEST(FleetDriftTest, DifferentSeedsDiverge) {
  DriftOptions opts;
  DriftStream a(1, opts);
  DriftStream b(2, opts);
  double wa = 1.0, wb = 1.0;
  bool diverged = false;
  for (int i = 0; i < 50 && !diverged; ++i) {
    wa = a.Next(wa);
    wb = b.Next(wb);
    diverged = (wa != wb);
  }
  EXPECT_TRUE(diverged);
}

TEST(FleetDriftTest, StepsStayWithinOneSigmaFactorAndClamp) {
  DriftOptions opts;
  opts.sigma = 0.3;
  opts.min_weight = 0.5;
  opts.max_weight = 3.0;
  DriftStream s(99, opts);
  double w = 1.0;
  const double max_factor = std::exp(opts.sigma);
  for (int i = 0; i < 500; ++i) {
    double next = s.Next(w);
    EXPECT_GE(next, opts.min_weight);
    EXPECT_LE(next, opts.max_weight);
    // Unclamped, one step moves by at most exp(+-sigma).
    if (next > opts.min_weight && next < opts.max_weight) {
      EXPECT_LE(next, w * max_factor * (1 + 1e-12));
      EXPECT_GE(next, w / max_factor * (1 - 1e-12));
    }
    w = next;
  }
}

TEST(FleetDriftTest, ZeroSigmaFreezesTheWeight) {
  DriftOptions opts;
  opts.sigma = 0.0;
  DriftStream s(7, opts);
  double w = 1.7;
  for (int i = 0; i < 20; ++i) {
    w = s.Next(w);
    EXPECT_DOUBLE_EQ(w, 1.7);
  }
}

TEST(FleetDriftTest, WalkEventuallyMovesBothDirections) {
  DriftOptions opts;
  DriftStream s(5, opts);
  double w = 1.0;
  bool up = false, down = false;
  for (int i = 0; i < 200 && !(up && down); ++i) {
    double next = s.Next(w);
    up = up || next > w;
    down = down || next < w;
    w = next;
  }
  EXPECT_TRUE(up);
  EXPECT_TRUE(down);
}

}  // namespace
}  // namespace wsflow::fleet
