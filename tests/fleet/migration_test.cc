// Warm-start tenant migration vs the from-scratch yardstick.
//
// FleetMigrationTest.WarmStartMeetsTheRepairBar is the acceptance bound of
// the fleet subsystem: a drift-triggered warm migration must reach <= 110%
// of the from-scratch re-deployment cost while spending <= 20% of its
// evaluations.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/cost/cost_model.h"
#include "src/cost/shared_load.h"
#include "src/fleet/migration.h"
#include "tests/testing/test_util.h"

namespace wsflow::fleet {
namespace {

class FleetMigrationTest : public ::testing::Test {
 protected:
  FleetMigrationTest()
      : workflow_(testing::AllDecisionGraph()),
        profile_(WSFLOW_UNWRAP(ComputeExecutionProfile(workflow_))),
        network_(testing::SimpleBus(6)),
        model_(workflow_, network_, &profile_) {
    WSFLOW_EXPECT_OK(model_.Warm());
    // A lopsided background farm: other tenants crowd servers 0-2.
    base_ = {0.03, 0.02, 0.015, 0.0, 0.001, 0.0};
  }

  Workflow workflow_;
  ExecutionProfile profile_;
  Network network_;
  CostModel model_;
  std::vector<double> base_;
};

TEST_F(FleetMigrationTest, SeedIsTotalAndAvoidsLoadedServers) {
  Mapping seed = SeedSharedMapping(model_, 1.0, base_);
  EXPECT_TRUE(seed.IsTotal());
  // With heavy background load on server 0 and idle capacity elsewhere,
  // the greedy seed should not pile everything onto server 0.
  size_t on_zero = 0;
  for (uint32_t op = 0; op < workflow_.num_operations(); ++op) {
    if (seed.ServerOf(OperationId(op)).value == 0) ++on_zero;
  }
  EXPECT_LT(on_zero, workflow_.num_operations());
}

TEST_F(FleetMigrationTest, FromScratchBeatsOrMatchesItsOwnSeed) {
  MigrationOptions opts;
  opts.eval_budget = 0;  // unlimited
  MigrationResult r =
      WSFLOW_UNWRAP(RedeployTenantFromScratch(model_, 1.0, base_, opts));
  EXPECT_TRUE(r.mapping.IsTotal());
  Mapping seed = SeedSharedMapping(model_, 1.0, base_);
  CostBreakdown seed_cost =
      WSFLOW_UNWRAP(SharedEvaluate(model_, seed, 1.0, base_));
  EXPECT_LE(r.cost.combined, seed_cost.combined);
  EXPECT_GT(r.polish_evaluations, 0u);
  EXPECT_FALSE(r.budget_exhausted);
}

TEST_F(FleetMigrationTest, MigrationIsDeterministic) {
  Mapping warm = SeedSharedMapping(model_, 1.0, base_);
  MigrationOptions opts;
  opts.eval_budget = 64;
  MigrationResult a =
      WSFLOW_UNWRAP(MigrateTenant(model_, warm, 3.0, base_, opts));
  MigrationResult b =
      WSFLOW_UNWRAP(MigrateTenant(model_, warm, 3.0, base_, opts));
  EXPECT_TRUE(a.mapping == b.mapping);
  EXPECT_EQ(a.cost.combined, b.cost.combined);
  EXPECT_EQ(a.polish_evaluations, b.polish_evaluations);
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted);
}

TEST_F(FleetMigrationTest, BudgetIsRespectedAndReported) {
  Mapping warm = testing::AllOnServer(workflow_.num_operations(), ServerId(0));
  MigrationOptions opts;
  opts.eval_budget = 24;
  MigrationResult r =
      WSFLOW_UNWRAP(MigrateTenant(model_, warm, 2.0, base_, opts));
  EXPECT_LE(r.polish_evaluations, opts.eval_budget);
  // The all-on-one-server warm seed is bad enough that 24 evals cannot
  // finish the descent on this instance.
  EXPECT_TRUE(r.budget_exhausted);
}

TEST_F(FleetMigrationTest, AlreadyOptimalMappingDoesNotMove) {
  MigrationOptions opts;
  opts.eval_budget = 0;
  MigrationResult scratch =
      WSFLOW_UNWRAP(RedeployTenantFromScratch(model_, 1.5, base_, opts));
  MigrationResult again = WSFLOW_UNWRAP(
      MigrateTenant(model_, scratch.mapping, 1.5, base_, opts));
  EXPECT_FALSE(again.moved);
  EXPECT_EQ(again.cost.combined, scratch.cost.combined);
}

TEST_F(FleetMigrationTest, RejectsInvalidInputs) {
  Mapping partial(workflow_.num_operations());
  EXPECT_FALSE(MigrateTenant(model_, partial, 1.0, base_).ok());
  Mapping warm = SeedSharedMapping(model_, 1.0, base_);
  EXPECT_FALSE(MigrateTenant(model_, warm, 0.0, base_).ok());
  EXPECT_FALSE(MigrateTenant(model_, warm, -2.0, base_).ok());
  std::vector<double> short_base = {1.0};
  EXPECT_FALSE(MigrateTenant(model_, warm, 1.0, short_base).ok());
  std::vector<double> negative_base = {0, 0, 0, 0, 0, -1.0};
  EXPECT_FALSE(MigrateTenant(model_, warm, 1.0, negative_base).ok());
}

TEST_F(FleetMigrationTest, WarmStartMeetsTheRepairBar) {
  // A tenant deployed at weight 1 whose traffic then grows ~60% over a few
  // drift epochs while the background farm shifts — the magnitude the
  // 10%-regression watcher actually fires on.
  MigrationOptions unbudgeted;
  unbudgeted.eval_budget = 0;
  MigrationResult deployed =
      WSFLOW_UNWRAP(RedeployTenantFromScratch(model_, 1.0, base_, unbudgeted));

  const double drifted_weight = 1.6;
  std::vector<double> drifted_base = {0.02, 0.03, 0.01, 0.005, 0.002, 0.0};

  // Yardstick: from-scratch re-deployment under the new conditions.
  MigrationResult scratch = WSFLOW_UNWRAP(RedeployTenantFromScratch(
      model_, drifted_weight, drifted_base, unbudgeted));
  ASSERT_GE(scratch.polish_evaluations, 5u)
      << "instance too small to make the 20% budget meaningful";

  // Warm migration at one fifth of the from-scratch evaluation spend.
  MigrationOptions budgeted;
  budgeted.eval_budget = scratch.polish_evaluations / 5;
  MigrationResult warm = WSFLOW_UNWRAP(MigrateTenant(
      model_, deployed.mapping, drifted_weight, drifted_base, budgeted));

  EXPECT_LE(warm.polish_evaluations, scratch.polish_evaluations / 5)
      << "warm start must spend <= 20% of the from-scratch evaluations";
  EXPECT_LE(warm.cost.combined, 1.10 * scratch.cost.combined)
      << "warm start must land within 110% of the from-scratch cost "
      << "(warm=" << warm.cost.combined
      << " scratch=" << scratch.cost.combined << ")";
}

TEST_F(FleetMigrationTest, WarmBarHoldsAcrossWeightsAndSwaps) {
  // The bar is not a lucky instance: sweep drift magnitudes and the swap
  // toggle.
  MigrationOptions unbudgeted;
  unbudgeted.eval_budget = 0;
  MigrationResult deployed =
      WSFLOW_UNWRAP(RedeployTenantFromScratch(model_, 1.0, base_, unbudgeted));
  for (double weight : {0.7, 1.3, 2.0}) {
    for (bool swaps : {false, true}) {
      MigrationOptions opts;
      opts.eval_budget = 0;
      opts.use_swaps = swaps;
      MigrationResult scratch = WSFLOW_UNWRAP(
          RedeployTenantFromScratch(model_, weight, base_, opts));
      if (scratch.polish_evaluations < 5) continue;
      MigrationOptions budgeted = opts;
      budgeted.eval_budget = scratch.polish_evaluations / 5;
      MigrationResult warm = WSFLOW_UNWRAP(MigrateTenant(
          model_, deployed.mapping, weight, base_, budgeted));
      EXPECT_LE(warm.cost.combined, 1.10 * scratch.cost.combined)
          << "weight=" << weight << " swaps=" << swaps;
    }
  }
}

}  // namespace
}  // namespace wsflow::fleet
