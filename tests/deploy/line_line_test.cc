#include "src/deploy/line_line.h"

#include <gtest/gtest.h>

#include "src/cost/cost_model.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

DeployContext MakeContext(const Workflow& w, const Network& n) {
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  return ctx;
}

Network UniformLineNetwork(size_t servers, double power = 1e9,
                           double speed = 1e8) {
  std::vector<double> powers(servers, power);
  std::vector<double> speeds(servers > 0 ? servers - 1 : 0, speed);
  Result<Network> n = MakeLineNetwork(powers, speeds);
  EXPECT_TRUE(n.ok()) << n.status().ToString();
  return std::move(n).value();
}

TEST(LineLineTest, ProducesTotalMapping) {
  Workflow w = testing::SimpleLine(19);
  Network n = UniformLineNetwork(5);
  LineLineAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_TRUE(m.IsTotal());
}

TEST(LineLineTest, RequiresLineWorkflow) {
  Workflow w = testing::AllDecisionGraph();
  Network n = UniformLineNetwork(3);
  LineLineAlgorithm algo;
  EXPECT_TRUE(
      algo.Run(MakeContext(w, n)).status().IsFailedPrecondition());
}

TEST(LineLineTest, AssignmentsAreContiguousSegments) {
  // Phase 1 walks the line: each server hosts one contiguous stretch of
  // operations (before bridge fixing).
  Workflow w = testing::SimpleLine(19, 20e6);
  Network n = UniformLineNetwork(5);
  LineLineOptions opt;
  opt.fix_bridges = false;
  LineLineAlgorithm algo(opt);
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));

  uint32_t previous = m.ServerOf(OperationId(0)).value;
  for (uint32_t i = 1; i < 19; ++i) {
    uint32_t current = m.ServerOf(OperationId(i)).value;
    EXPECT_GE(current, previous) << "op " << i;
    EXPECT_LE(current, previous + 1) << "op " << i;
    previous = current;
  }
}

TEST(LineLineTest, EveryServerGetsWork) {
  Workflow w = testing::SimpleLine(19, 20e6);
  Network n = UniformLineNetwork(5);
  LineLineAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  for (uint32_t s = 0; s < 5; ++s) {
    EXPECT_FALSE(m.OperationsOn(ServerId(s)).empty()) << "server " << s;
  }
}

TEST(LineLineTest, TailModeOneOpPerServer) {
  // Exactly as many operations as servers: one each.
  Workflow w = testing::SimpleLine(4, 20e6);
  Network n = UniformLineNetwork(4);
  LineLineAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(m.OperationsOn(ServerId(s)).size(), 1u);
  }
}

TEST(LineLineTest, FewerOpsThanServersStillTotal) {
  Workflow w = testing::SimpleLine(3);
  Network n = UniformLineNetwork(5);
  LineLineAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_TRUE(m.IsTotal());
}

TEST(LineLineTest, RoughlyFairOnUniformWork) {
  Workflow w = testing::SimpleLine(20, 10e6);
  Network n = UniformLineNetwork(4);
  LineLineOptions opt;
  opt.fix_bridges = false;
  LineLineAlgorithm algo(opt);
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  // Ideal is 5 ops per server; the 20% slack bounds the drift.
  for (uint32_t s = 0; s < 4; ++s) {
    size_t count = m.OperationsOn(ServerId(s)).size();
    EXPECT_GE(count, 3u) << "server " << s;
    EXPECT_LE(count, 7u) << "server " << s;
  }
}

TEST(LineLineTest, StrongServerGetsLargerSegment) {
  Workflow w = testing::SimpleLine(12, 10e6);
  Network n =
      MakeLineNetwork({3e9, 1e9, 1e9}, {1e8, 1e8}).value();
  LineLineOptions opt;
  opt.fix_bridges = false;
  LineLineAlgorithm algo(opt);
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_GT(m.OperationsOn(ServerId(0)).size(),
            m.OperationsOn(ServerId(1)).size());
}

TEST(LineLineTest, CriticalBridgeShiftsBoundaryOp) {
  // A slow middle link carrying a huge crossing message, with a tiny
  // message just behind the sender: phase 2 shifts the boundary operation
  // so the huge message stays local.
  std::vector<double> cycles(6, 10e6);
  // Messages: op3 -> op4 is huge; op2 -> op3 is tiny.
  std::vector<double> msgs{60648, 60648, 100, 1e7, 60648};
  Workflow w = MakeLineWorkflow("bridge", cycles, msgs).value();
  // Two servers; the single link is trivially in the slowest 20%.
  Network n = MakeLineNetwork({1e9, 1e9}, {1e6}).value();
  CostModel model(w, n);

  LineLineOptions nofix;
  nofix.fix_bridges = false;
  Mapping before =
      WSFLOW_UNWRAP(LineLineAlgorithm(nofix).Run(MakeContext(w, n)));
  Mapping after =
      WSFLOW_UNWRAP(LineLineAlgorithm().Run(MakeContext(w, n)));

  double exec_before = model.Evaluate(before).value().execution_time;
  double exec_after = model.Evaluate(after).value().execution_time;
  EXPECT_LE(exec_after, exec_before);
}

TEST(LineLineTest, BothDirectionsNeverWorse) {
  std::vector<double> cycles{5e6, 5e6, 5e6, 500e6, 500e6, 500e6};
  std::vector<double> msgs(5, 60648);
  Workflow w = MakeLineWorkflow("skewed", cycles, msgs).value();
  Network n = MakeLineNetwork({3e9, 1e9}, {1e7}).value();
  CostModel model(w, n);

  LineLineOptions fwd;
  fwd.both_directions = false;
  LineLineOptions both;
  both.both_directions = true;
  Mapping f = WSFLOW_UNWRAP(LineLineAlgorithm(fwd).Run(MakeContext(w, n)));
  Mapping b = WSFLOW_UNWRAP(LineLineAlgorithm(both).Run(MakeContext(w, n)));
  EXPECT_LE(model.Evaluate(b).value().combined,
            model.Evaluate(f).value().combined + 1e-12);
}

TEST(LineLineTest, WorksOnBusNetworkWithoutBridgeFix) {
  // Phase 2 needs line bridges; on a bus it must silently skip.
  Workflow w = testing::SimpleLine(10);
  Network n = testing::SimpleBus(3);
  LineLineAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_TRUE(m.IsTotal());
}

TEST(LineLineTest, SingleServerTakesAll) {
  Workflow w = testing::SimpleLine(5);
  Network n = UniformLineNetwork(1);
  LineLineAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_EQ(m.OperationsOn(ServerId(0)).size(), 5u);
}

TEST(LineLineTest, Deterministic) {
  Workflow w = testing::SimpleLine(19, 20e6, 60648);
  Network n = UniformLineNetwork(5);
  LineLineAlgorithm algo;
  Mapping a = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  Mapping b = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace wsflow
