#include "src/deploy/failover.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/deploy/algorithm.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

using testing::AllOnServer;
using testing::RoundRobin;

TEST(FailoverTest, ReassignsEveryOrphan) {
  Workflow w = testing::SimpleLine(6, 10e6, 8000);
  Network n = testing::SimpleBus(3);
  CostModel model(w, n);
  Mapping m = RoundRobin(6, 3);
  FailoverReport report = WSFLOW_UNWRAP(
      AnalyzeFailover(model, m, ServerId(1), FailoverStrategy::kWorstFit));
  EXPECT_EQ(report.orphaned_operations, 2u);
  EXPECT_TRUE(report.repaired.IsTotal());
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_NE(report.repaired.ServerOf(OperationId(static_cast<uint32_t>(i))),
              ServerId(1));
  }
}

TEST(FailoverTest, UnaffectedOperationsStayPut) {
  Workflow w = testing::SimpleLine(6, 10e6, 8000);
  Network n = testing::SimpleBus(3);
  CostModel model(w, n);
  Mapping m = RoundRobin(6, 3);
  FailoverReport report = WSFLOW_UNWRAP(
      AnalyzeFailover(model, m, ServerId(2), FailoverStrategy::kWorstFit));
  for (size_t i = 0; i < 6; ++i) {
    OperationId op(static_cast<uint32_t>(i));
    if (m.ServerOf(op) != ServerId(2)) {
      EXPECT_EQ(report.repaired.ServerOf(op), m.ServerOf(op));
    }
  }
}

TEST(FailoverTest, NoOrphansIsNoOp) {
  Workflow w = testing::SimpleLine(4);
  Network n = testing::SimpleBus(3);
  CostModel model(w, n);
  Mapping m = AllOnServer(4, ServerId(0));
  FailoverReport report = WSFLOW_UNWRAP(
      AnalyzeFailover(model, m, ServerId(2), FailoverStrategy::kWorstFit));
  EXPECT_EQ(report.orphaned_operations, 0u);
  EXPECT_TRUE(report.repaired == m);
  EXPECT_DOUBLE_EQ(report.execution_time_after,
                   report.execution_time_before);
  EXPECT_DOUBLE_EQ(report.worst_load_scale_up, 1.0);
}

TEST(FailoverTest, WorstFitBalancesSurvivors) {
  // 8 equal ops on 2-of-4 servers; failing one of them must spread its 4
  // ops over the three survivors proportionally.
  Workflow w = testing::SimpleLine(8, 10e6, 0);
  Network n = testing::SimpleBus(4);
  CostModel model(w, n);
  Mapping m(8);
  for (uint32_t i = 0; i < 8; ++i) {
    m.Assign(OperationId(i), ServerId(i % 2));
  }
  FailoverReport report = WSFLOW_UNWRAP(
      AnalyzeFailover(model, m, ServerId(0), FailoverStrategy::kWorstFit));
  EXPECT_EQ(report.orphaned_operations, 4u);
  // Survivors s1..s3: s1 already has 4; the orphans land on s2/s3.
  EXPECT_EQ(report.repaired.OperationsOn(ServerId(1)).size(), 4u);
  EXPECT_EQ(report.repaired.OperationsOn(ServerId(2)).size(), 2u);
  EXPECT_EQ(report.repaired.OperationsOn(ServerId(3)).size(), 2u);
}

TEST(FailoverTest, CoLocateFollowsHeaviestMessage) {
  // op1 on the failed server exchanges a huge message with op0 on s1;
  // co-locate must send it there even though s2 has more headroom.
  std::vector<double> cycles{10e6, 10e6, 10e6};
  std::vector<double> msgs{1e9, 100.0};
  Workflow w = MakeLineWorkflow("chain", cycles, msgs).value();
  Network n = testing::SimpleBus(3);
  CostModel model(w, n);
  Mapping m(3);
  m.Assign(OperationId(0), ServerId(1));
  m.Assign(OperationId(1), ServerId(0));  // will fail
  m.Assign(OperationId(2), ServerId(2));
  FailoverReport report = WSFLOW_UNWRAP(
      AnalyzeFailover(model, m, ServerId(0), FailoverStrategy::kCoLocate));
  EXPECT_EQ(report.repaired.ServerOf(OperationId(1)), ServerId(1));
}

TEST(FailoverTest, CoLocateFallsBackWhenNeighborsOrphaned) {
  // The whole chain lives on the failing server: no surviving neighbours,
  // so co-locate degrades to worst-fit and still repairs totally.
  Workflow w = testing::SimpleLine(4, 10e6, 8000);
  Network n = testing::SimpleBus(3);
  CostModel model(w, n);
  Mapping m = AllOnServer(4, ServerId(0));
  FailoverReport report = WSFLOW_UNWRAP(
      AnalyzeFailover(model, m, ServerId(0), FailoverStrategy::kCoLocate));
  EXPECT_TRUE(report.repaired.IsTotal());
  EXPECT_EQ(report.orphaned_operations, 4u);
}

TEST(FailoverTest, ScaleUpReflectsAddedLoad) {
  // Two servers, balanced 2/2; failing one doubles the survivor's load.
  Workflow w = testing::SimpleLine(4, 10e6, 0);
  Network n = testing::SimpleBus(2);
  CostModel model(w, n);
  Mapping m = RoundRobin(4, 2);
  FailoverReport report = WSFLOW_UNWRAP(
      AnalyzeFailover(model, m, ServerId(0), FailoverStrategy::kWorstFit));
  EXPECT_DOUBLE_EQ(report.worst_load_scale_up, 2.0);
  EXPECT_DOUBLE_EQ(report.time_penalty_after, 0.0);  // one survivor: fair
}

TEST(FailoverTest, EmptySurvivorGettingWorkIsInfiniteScaleUp) {
  Workflow w = testing::SimpleLine(2, 10e6, 0);
  Network n = testing::SimpleBus(2);
  CostModel model(w, n);
  Mapping m = AllOnServer(2, ServerId(0));
  FailoverReport report = WSFLOW_UNWRAP(
      AnalyzeFailover(model, m, ServerId(0), FailoverStrategy::kWorstFit));
  EXPECT_TRUE(std::isinf(report.worst_load_scale_up));
}

TEST(FailoverTest, AllFailoversSweepsEveryServer) {
  Workflow w = testing::SimpleLine(9, 20e6, 8000);
  Network n = MakeBusNetwork({1e9, 2e9, 3e9}, 1e8).value();
  CostModel model(w, n);
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  Mapping m = WSFLOW_UNWRAP(RunAlgorithm("fair-load", ctx));
  std::vector<FailoverReport> reports = WSFLOW_UNWRAP(
      AnalyzeAllFailovers(model, m, FailoverStrategy::kWorstFit));
  ASSERT_EQ(reports.size(), 3u);
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(reports[s].failed_server, ServerId(static_cast<uint32_t>(s)));
    EXPECT_TRUE(reports[s].repaired.IsTotal());
  }
}

TEST(FailoverTest, FairDeploymentBoundsScaleUpBetterThanPacked) {
  // The paper's §2.1 motivation quantified: a fair deployment keeps the
  // failure scale-up bounded; a packed one sends everything to one
  // surviving host.
  Workflow w = testing::SimpleLine(12, 20e6, 100.0);
  Network n = testing::SimpleBus(4);
  CostModel model(w, n);
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  Mapping fair = WSFLOW_UNWRAP(RunAlgorithm("fair-load", ctx));
  Mapping packed = AllOnServer(12, ServerId(0));

  double fair_worst = 1.0;
  for (const FailoverReport& r : WSFLOW_UNWRAP(
           AnalyzeAllFailovers(model, fair, FailoverStrategy::kWorstFit))) {
    fair_worst = std::max(fair_worst, r.worst_load_scale_up);
  }
  FailoverReport packed_report = WSFLOW_UNWRAP(AnalyzeFailover(
      model, packed, ServerId(0), FailoverStrategy::kWorstFit));
  // Fair: each survivor absorbs one third of one quarter -> 4/3 scale-up.
  EXPECT_NEAR(fair_worst, 4.0 / 3.0, 1e-9);
  EXPECT_TRUE(std::isinf(packed_report.worst_load_scale_up));
}

TEST(FailoverTest, InvalidInputsRejected) {
  Workflow w = testing::SimpleLine(3);
  Network n = testing::SimpleBus(1);
  CostModel model(w, n);
  Mapping m = AllOnServer(3, ServerId(0));
  EXPECT_TRUE(AnalyzeFailover(model, m, ServerId(0),
                              FailoverStrategy::kWorstFit)
                  .status()
                  .IsFailedPrecondition());  // no survivor
  Network n2 = testing::SimpleBus(2);
  CostModel model2(w, n2);
  EXPECT_TRUE(AnalyzeFailover(model2, m, ServerId(7),
                              FailoverStrategy::kWorstFit)
                  .status()
                  .IsNotFound());
  Mapping partial(3);
  EXPECT_FALSE(AnalyzeFailover(model2, partial, ServerId(0),
                               FailoverStrategy::kWorstFit)
                   .ok());
}

}  // namespace
}  // namespace wsflow
