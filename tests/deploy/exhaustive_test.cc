#include "src/deploy/exhaustive.h"

#include <gtest/gtest.h>

#include "src/deploy/random_baseline.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

DeployContext MakeContext(const Workflow& w, const Network& n) {
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  return ctx;
}

TEST(ExhaustiveTest, FindsTotalMapping) {
  Workflow w = testing::SimpleLine(4);
  Network n = testing::SimpleBus(2);
  ExhaustiveAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_TRUE(m.IsTotal());
}

TEST(ExhaustiveTest, SingleServerTrivial) {
  Workflow w = testing::SimpleLine(3);
  Network n = testing::SimpleBus(1);
  ExhaustiveAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(m.ServerOf(OperationId(i)), ServerId(0));
  }
}

TEST(ExhaustiveTest, BeatsOrMatchesEveryRandomMapping) {
  Workflow w = testing::SimpleLine(5, 10e6, 60648);
  Network n = MakeBusNetwork({1e9, 2e9, 3e9}, 1e7).value();
  CostModel model(w, n);
  DeployContext ctx = MakeContext(w, n);
  ExhaustiveAlgorithm algo;
  Mapping best = WSFLOW_UNWRAP(algo.Run(ctx));
  double best_cost = model.Evaluate(best).value().combined;

  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    Mapping m = RandomMapping(5, 3, &rng);
    EXPECT_LE(best_cost, model.Evaluate(m).value().combined + 1e-12);
  }
}

TEST(ExhaustiveTest, OptimizesObjectiveWeights) {
  // With execution-only weights, the best line deployment on a slow bus
  // avoids all communication: everything on the fastest server.
  Workflow w = testing::SimpleLine(4, 10e6, 171136);
  Network n = MakeBusNetwork({1e9, 3e9}, 1e6).value();
  DeployContext ctx = MakeContext(w, n);
  ctx.cost_options.execution_weight = 1.0;
  ctx.cost_options.fairness_weight = 0.0;
  ExhaustiveAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(ctx));
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(m.ServerOf(OperationId(i)), ServerId(1));
  }
}

TEST(ExhaustiveTest, FairnessOnlyBalancesLoad) {
  // Equal servers, 4 equal ops, fairness-only: 2/2 split is optimal.
  Workflow w = testing::SimpleLine(4, 10e6, 0);
  Network n = testing::SimpleBus(2);
  DeployContext ctx = MakeContext(w, n);
  ctx.cost_options.execution_weight = 0.0;
  ctx.cost_options.fairness_weight = 1.0;
  ExhaustiveAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(ctx));
  CostModel model(w, n);
  EXPECT_DOUBLE_EQ(model.TimePenalty(m), 0.0);
}

TEST(ExhaustiveTest, GraphWorkflowSupported) {
  Workflow w = testing::AllDecisionGraph();
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  Network n = testing::SimpleBus(2);
  DeployContext ctx = MakeContext(w, n);
  ctx.profile = &profile;
  ExhaustiveAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(ctx));
  EXPECT_TRUE(m.IsTotal());
}

TEST(ExhaustiveTest, RefusesHugeSearchSpace) {
  Workflow w = testing::SimpleLine(19);
  Network n = testing::SimpleBus(5);  // 5^19 ~ 1.9e13
  ExhaustiveAlgorithm algo;
  EXPECT_TRUE(
      algo.Run(MakeContext(w, n)).status().IsResourceExhausted());
}

TEST(ExhaustiveTest, CapIsConfigurable) {
  Workflow w = testing::SimpleLine(3);
  Network n = testing::SimpleBus(2);  // 8 configurations
  ExhaustiveAlgorithm tight(4.0);
  EXPECT_TRUE(
      tight.Run(MakeContext(w, n)).status().IsResourceExhausted());
  ExhaustiveAlgorithm loose(8.0);
  EXPECT_TRUE(loose.Run(MakeContext(w, n)).ok());
}

TEST(RandomBaselineTest, TotalAndSeeded) {
  Workflow w = testing::SimpleLine(10);
  Network n = testing::SimpleBus(3);
  RandomDeployment algo;
  DeployContext ctx = MakeContext(w, n);
  ctx.seed = 7;
  Mapping a = WSFLOW_UNWRAP(algo.Run(ctx));
  Mapping b = WSFLOW_UNWRAP(algo.Run(ctx));
  EXPECT_TRUE(a.IsTotal());
  EXPECT_TRUE(a == b);  // same seed, same mapping
  ctx.seed = 8;
  Mapping c = WSFLOW_UNWRAP(algo.Run(ctx));
  EXPECT_FALSE(a == c);
}

TEST(RandomBaselineTest, UsesAllServersEventually) {
  Rng rng(3);
  Mapping m = RandomMapping(100, 4, &rng);
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_FALSE(m.OperationsOn(ServerId(s)).empty());
  }
}

}  // namespace
}  // namespace wsflow
