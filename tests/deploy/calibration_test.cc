// Ground-truth calibration of the heuristic suite: on instances small
// enough for certified optima, every registered heuristic must score at or
// above the A* optimum, and the A* optimum must equal the exhaustive one.
// The per-heuristic optimality gap is recorded as a test property so runs
// leave a calibration trail in the ctest XML.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/cost/cost_model.h"
#include "src/deploy/astar.h"
#include "src/deploy/exhaustive.h"
#include "src/exp/config.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

DeployContext MakeContext(const TrialInstance& t) {
  DeployContext ctx;
  ctx.workflow = &t.workflow;
  ctx.network = &t.network;
  ctx.profile = t.profile.has_value() ? &*t.profile : nullptr;
  ctx.seed = 7;
  return ctx;
}

/// Exact solvers and wrappers that need special topologies are not part of
/// the calibrated heuristic pool.
bool SkipForCalibration(const std::string& name) {
  return name == "exhaustive" || name == "branch-bound" || name == "astar" ||
         name == "astar-anytime";
}

struct CalibrationCase {
  const char* label;
  ExperimentConfig config;
};

std::vector<CalibrationCase> Cases() {
  std::vector<CalibrationCase> cases;
  for (auto [label, maker] :
       {std::pair{"class_a", &MakeClassAConfig},
        std::pair{"class_b", &MakeClassBConfig},
        std::pair{"class_c", &MakeClassCConfig}}) {
    ExperimentConfig line = maker(WorkloadKind::kLine);
    line.num_operations = 8;
    line.num_servers = 3;
    cases.push_back({label, line});
  }
  ExperimentConfig graph = MakeClassBConfig(WorkloadKind::kBushyGraph);
  graph.num_operations = 9;
  graph.num_servers = 3;
  cases.push_back({"class_b_graph", graph});
  return cases;
}

TEST(CalibrationTest, HeuristicsNeverBeatCertifiedOptimum) {
  RegisterBuiltinAlgorithms();
  const std::vector<std::string> names = AlgorithmRegistry::Global().Names();
  double worst_gap = 0;
  std::string worst_label;
  for (const CalibrationCase& c : Cases()) {
    TrialInstance t = WSFLOW_UNWRAP(DrawTrial(c.config, 0));
    DeployContext ctx = MakeContext(t);
    CostModel model(t.workflow, t.network, ctx.profile);
    Mapping opt = WSFLOW_UNWRAP(AStarAlgorithm().Run(ctx));
    const double opt_cost =
        model.Evaluate(opt, ctx.cost_options).value().combined;
    for (const std::string& name : names) {
      if (SkipForCalibration(name)) continue;
      Result<Mapping> m = RunAlgorithm(name, ctx);
      // Heuristics with topology or shape preconditions (line-only, zoned
      // networks) legitimately refuse some instances.
      if (!m.ok()) continue;
      Result<CostBreakdown> cost = model.Evaluate(*m, ctx.cost_options);
      ASSERT_TRUE(cost.ok()) << name << " on " << c.label;
      EXPECT_GE(cost->combined, opt_cost - opt_cost * 1e-9 - 1e-15)
          << name << " beat the certified optimum on " << c.label;
      const double gap = cost->combined / opt_cost - 1.0;
      ::testing::Test::RecordProperty(
          std::string("gap_") + c.label + "_" + name,
          std::to_string(gap));
      if (gap > worst_gap) {
        worst_gap = gap;
        worst_label = name + " on " + c.label;
      }
    }
  }
  ::testing::Test::RecordProperty("worst_gap", std::to_string(worst_gap));
  ::testing::Test::RecordProperty("worst_case", worst_label);
}

TEST(CalibrationTest, AStarMatchesExhaustiveWhereOdometerFeasible) {
  for (const CalibrationCase& c : Cases()) {
    for (size_t trial = 0; trial < 2; ++trial) {
      TrialInstance t = WSFLOW_UNWRAP(DrawTrial(c.config, trial));
      DeployContext ctx = MakeContext(t);
      CostModel model(t.workflow, t.network, ctx.profile);
      Mapping exhaustive = WSFLOW_UNWRAP(ExhaustiveAlgorithm(5e7).Run(ctx));
      Mapping astar = WSFLOW_UNWRAP(AStarAlgorithm().Run(ctx));
      const double exact_cost =
          model.Evaluate(exhaustive, ctx.cost_options).value().combined;
      EXPECT_NEAR(model.Evaluate(astar, ctx.cost_options).value().combined,
                  exact_cost, exact_cost * 1e-9 + 1e-15)
          << c.label << " trial " << trial;
    }
  }
}

}  // namespace
}  // namespace wsflow
