#include "src/deploy/repair.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "src/deploy/algorithm.h"
#include "src/deploy/failover.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ServerMask MaskWithout(size_t n, std::initializer_list<uint32_t> down) {
  ServerMask mask = ServerMask::AllAlive(n);
  for (uint32_t s : down) mask.SetAlive(ServerId(s), false);
  return mask;
}

// ---------------------------------------------------------------------------
// RepairParity: the failover report's after-numbers must equal a cold
// re-scoring of its repaired mapping on the surviving subnetwork.
// ---------------------------------------------------------------------------

void ExpectReportMatchesColdRescore(const CostModel& model, const Mapping& m,
                                    FailoverStrategy strategy) {
  const size_t N = model.network().num_servers();
  for (uint32_t failed = 0; failed < N; ++failed) {
    FailoverReport report = WSFLOW_UNWRAP(
        AnalyzeFailover(model, m, ServerId(failed), strategy));
    ServerMask alive = MaskWithout(N, {failed});

    Result<double> exec = model.ExecutionTime(report.repaired, alive);
    if (exec.ok()) {
      EXPECT_NEAR(report.execution_time_after, *exec, 1e-9)
          << "failed=s" << failed;
    } else {
      EXPECT_EQ(report.execution_time_after, kInf) << "failed=s" << failed;
    }
    EXPECT_NEAR(report.time_penalty_after,
                model.TimePenalty(report.repaired, alive), 1e-9)
        << "failed=s" << failed;
  }
}

TEST(RepairParityTest, FailoverReportMatchesColdRescoreOnLines) {
  Workflow w = testing::SimpleLine(9, 12e6, 9000);
  Network n = testing::SimpleBus(4);
  CostModel model(w, n);
  Mapping m = testing::RoundRobin(9, 4);
  ExpectReportMatchesColdRescore(model, m, FailoverStrategy::kWorstFit);
  ExpectReportMatchesColdRescore(model, m, FailoverStrategy::kCoLocate);
}

TEST(RepairParityTest, FailoverReportMatchesColdRescoreOnGraphs) {
  Workflow w = testing::AllDecisionGraph();
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  std::vector<double> powers = {1e9, 2e9, 1.5e9, 0.8e9, 1.2e9};
  Network n = WSFLOW_UNWRAP(MakeBusNetwork(powers, 80e6));
  CostModel model(w, n, &profile);
  Mapping m = testing::RoundRobin(w.num_operations(), 5);
  ExpectReportMatchesColdRescore(model, m, FailoverStrategy::kWorstFit);
  ExpectReportMatchesColdRescore(model, m, FailoverStrategy::kCoLocate);
}

TEST(RepairParityTest, RedistributeOrphansHandlesUnassignedAndDownHosts) {
  Workflow w = testing::SimpleLine(6);
  Network n = testing::SimpleBus(3);
  CostModel model(w, n);
  ExecutionProfile profile = model.ProfileSnapshot();
  WorkflowView view(w, &profile);

  Mapping m(6);  // everything unassigned
  m.Assign(OperationId(0), ServerId(1));  // one op on a soon-down server
  ServerMask alive = MaskWithout(3, {1});
  size_t moved = WSFLOW_UNWRAP(RedistributeOrphans(
      view, n, alive, FailoverStrategy::kWorstFit, &m));
  EXPECT_EQ(moved, 6u);
  EXPECT_TRUE(m.IsTotal());
  for (uint32_t i = 0; i < 6; ++i) {
    EXPECT_NE(m.ServerOf(OperationId(i)), ServerId(1));
  }
}

// ---------------------------------------------------------------------------
// RepairSearch: seeding + budgeted polish.
// ---------------------------------------------------------------------------

TEST(RepairSearchTest, HealsOrphansOntoAliveServersWithFiniteCost) {
  Workflow w = testing::SimpleLine(10);
  Network n = testing::SimpleBus(5);
  CostModel model(w, n);
  Mapping m = testing::RoundRobin(10, 5);
  ServerMask alive = MaskWithout(5, {2});

  RepairResult r = WSFLOW_UNWRAP(RepairMapping(model, m, alive));
  EXPECT_EQ(r.orphans_reassigned, 2u);
  EXPECT_TRUE(r.mapping.IsTotal());
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_NE(r.mapping.ServerOf(OperationId(i)), ServerId(2));
  }
  EXPECT_TRUE(std::isfinite(r.cost.combined));
  // The reported cost is exactly the masked cold evaluation.
  CostBreakdown cold =
      WSFLOW_UNWRAP(model.Evaluate(r.mapping, CostOptions{}, alive));
  EXPECT_EQ(r.cost.combined, cold.combined);
}

TEST(RepairSearchTest, IsDeterministic) {
  Workflow w = testing::AllDecisionGraph();
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  Network n = testing::SimpleBus(6);
  CostModel model(w, n, &profile);
  Mapping m = testing::RoundRobin(w.num_operations(), 6);
  ServerMask alive = MaskWithout(6, {0, 4});

  RepairResult a = WSFLOW_UNWRAP(RepairMapping(model, m, alive));
  RepairResult b = WSFLOW_UNWRAP(RepairMapping(model, m, alive));
  EXPECT_TRUE(a.mapping == b.mapping);
  EXPECT_EQ(a.cost.combined, b.cost.combined);
  EXPECT_EQ(a.polish_evaluations, b.polish_evaluations);
  EXPECT_EQ(a.seed_strategy, b.seed_strategy);
}

TEST(RepairSearchTest, TinyBudgetExhaustsAndStillReturnsASeed) {
  Workflow w = testing::SimpleLine(12);
  Network n = testing::SimpleBus(6);
  CostModel model(w, n);
  Mapping m = testing::RoundRobin(12, 6);
  ServerMask alive = MaskWithout(6, {1});

  RepairOptions options;
  options.eval_budget = 1;  // room for the incumbent, not for any fan
  RepairResult r = WSFLOW_UNWRAP(RepairMapping(model, m, alive, options));
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_LE(r.polish_evaluations, 1u);
  EXPECT_TRUE(r.mapping.IsTotal());
  EXPECT_TRUE(std::isfinite(r.cost.combined));
}

TEST(RepairSearchTest, BudgetedRepairStaysCloseToFromScratchQuality) {
  // The acceptance bar of the chaos issue: repairing a previously
  // optimized deployment after a crash must land within 10% of a full
  // from-scratch re-optimization while consuming at most 20% of its
  // evaluations.
  Workflow w = testing::SimpleLine(16, 14e6, 12000);
  std::vector<double> powers = {1e9, 2e9, 1.2e9, 0.9e9, 1.6e9, 1.1e9,
                                1.4e9, 0.8e9};
  Network n = WSFLOW_UNWRAP(MakeBusNetwork(powers, 90e6));
  CostModel model(w, n);

  // Full-health optimum (the deployment that was serving traffic).
  RepairOptions unbounded;
  unbounded.eval_budget = 0;
  RepairResult healthy = WSFLOW_UNWRAP(
      ReoptimizeFromScratch(model, ServerMask::AllAlive(8), unbounded));

  ServerMask alive = MaskWithout(8, {1});  // the strongest server dies
  RepairResult scratch =
      WSFLOW_UNWRAP(ReoptimizeFromScratch(model, alive, unbounded));
  ASSERT_TRUE(std::isfinite(scratch.cost.combined));
  ASSERT_GT(scratch.polish_evaluations, 0u);

  RepairOptions budgeted;
  budgeted.eval_budget = scratch.polish_evaluations / 5;
  RepairResult repaired =
      WSFLOW_UNWRAP(RepairMapping(model, healthy.mapping, alive, budgeted));
  ASSERT_TRUE(std::isfinite(repaired.cost.combined));
  EXPECT_LE(repaired.polish_evaluations, budgeted.eval_budget);
  EXPECT_LE(repaired.cost.combined, 1.10 * scratch.cost.combined)
      << "repaired=" << repaired.cost.combined
      << " scratch=" << scratch.cost.combined
      << " budget=" << budgeted.eval_budget;
}

TEST(RepairSearchTest, RecoveryRebalancesWithoutOrphans) {
  // After a crash everything sits on 2 of 3 servers; when the third comes
  // back, a repair with the full mask is the re-balance pass.
  Workflow w = testing::SimpleLine(9, 10e6, 0);
  Network n = testing::SimpleBus(3);
  CostModel model(w, n);
  Mapping crammed(9);
  for (uint32_t i = 0; i < 9; ++i) {
    crammed.Assign(OperationId(i), ServerId(i % 2));
  }
  CostBreakdown before = WSFLOW_UNWRAP(model.Evaluate(crammed));

  RepairResult r = WSFLOW_UNWRAP(
      RepairMapping(model, crammed, ServerMask::AllAlive(3)));
  EXPECT_EQ(r.orphans_reassigned, 0u);
  EXPECT_LT(r.cost.combined, before.combined);
  EXPECT_FALSE(r.mapping.OperationsOn(ServerId(2)).empty())
      << "the recovered server must take load back";
}

TEST(RepairSearchTest, SeveredSeedIsHealedByCoLocation) {
  // s0 - s1 - s2 with the transit server down: any mapping that talks
  // across the cut is severed, so the repair must converge onto one side.
  Workflow w = testing::SimpleLine(6);
  std::vector<double> powers(3, 1e9);
  std::vector<double> speeds(2, 100e6);
  Network n = WSFLOW_UNWRAP(MakeLineNetwork(powers, speeds));
  CostModel model(w, n);
  Mapping split(6);
  for (uint32_t i = 0; i < 6; ++i) {
    split.Assign(OperationId(i), ServerId(i < 3 ? 0 : 2));
  }
  ServerMask alive = MaskWithout(3, {1});

  RepairResult r = WSFLOW_UNWRAP(RepairMapping(model, split, alive));
  ASSERT_TRUE(std::isfinite(r.cost.combined))
      << "repair must escape the severed seed";
  ServerId host = r.mapping.ServerOf(OperationId(0));
  for (uint32_t i = 1; i < 6; ++i) {
    EXPECT_EQ(r.mapping.ServerOf(OperationId(i)), host)
        << "every op must land on one side of the cut";
  }
}

TEST(RepairSearchTest, RejectsAnAllDownMask) {
  Workflow w = testing::SimpleLine(4);
  Network n = testing::SimpleBus(2);
  CostModel model(w, n);
  ServerMask alive = MaskWithout(2, {0, 1});
  Result<RepairResult> r =
      RepairMapping(model, testing::RoundRobin(4, 2), alive);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsFailedPrecondition());
}

TEST(RepairSearchTest, SwapsCanOnlyImproveTheResult) {
  Workflow w = testing::AllDecisionGraph();
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  Network n = testing::SimpleBus(5);
  CostModel model(w, n, &profile);
  Mapping m = testing::RoundRobin(w.num_operations(), 5);
  ServerMask alive = MaskWithout(5, {3});

  RepairOptions moves_only;
  RepairOptions with_swaps;
  with_swaps.use_swaps = true;
  RepairResult a = WSFLOW_UNWRAP(RepairMapping(model, m, alive, moves_only));
  RepairResult b = WSFLOW_UNWRAP(RepairMapping(model, m, alive, with_swaps));
  EXPECT_LE(b.cost.combined, a.cost.combined + 1e-12);
}

}  // namespace
}  // namespace wsflow
