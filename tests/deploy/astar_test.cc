#include "src/deploy/astar.h"

#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

#include "src/cost/cost_model.h"
#include "src/deploy/branch_bound.h"
#include "src/deploy/exhaustive.h"
#include "src/exp/config.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

DeployContext MakeContext(const Workflow& w, const Network& n,
                          const ExecutionProfile* profile = nullptr) {
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  ctx.profile = profile;
  return ctx;
}

TEST(AStarTest, MatchesExhaustiveOnRandomLineInstances) {
  // The certified optimum must equal brute force's on every small
  // instance, across objective weights.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
    cfg.num_operations = 7;
    cfg.num_servers = 3;
    cfg.seed = seed;
    TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
    CostModel model(t.workflow, t.network);
    for (double weight : {0.0, 0.5, 1.0}) {
      DeployContext ctx = MakeContext(t.workflow, t.network);
      ctx.cost_options.execution_weight = weight;
      ctx.cost_options.fairness_weight = 1.0 - weight;
      Mapping exact = WSFLOW_UNWRAP(ExhaustiveAlgorithm().Run(ctx));
      AStarAlgorithm astar;
      Mapping found = WSFLOW_UNWRAP(astar.Run(ctx));
      double exact_cost =
          model.Evaluate(exact, ctx.cost_options).value().combined;
      double astar_cost =
          model.Evaluate(found, ctx.cost_options).value().combined;
      EXPECT_NEAR(astar_cost, exact_cost, exact_cost * 1e-9 + 1e-15)
          << "seed " << seed << " weight " << weight;
      EXPECT_TRUE(astar.last_stats().proven_optimal);
    }
  }
}

TEST(AStarTest, MatchesExhaustiveOnGraphWorkflows) {
  // Graph workflows take the mixed block-recursion bound; the optimum must
  // still match brute force (AND/OR/XOR combinators included).
  Workflow w = testing::AllDecisionGraph();
  Network n = testing::SimpleBus(3, /*power_hz=*/1e9, /*bus_bps=*/10e6);
  CostModel model(w, n);
  DeployContext ctx = MakeContext(w, n);
  Mapping exact = WSFLOW_UNWRAP(ExhaustiveAlgorithm(5e7).Run(ctx));
  AStarAlgorithm astar;
  Mapping found = WSFLOW_UNWRAP(astar.Run(ctx));
  EXPECT_NEAR(model.Evaluate(found).value().combined,
              model.Evaluate(exact).value().combined,
              model.Evaluate(exact).value().combined * 1e-9);
  EXPECT_TRUE(astar.last_stats().proven_optimal);
}

TEST(AStarTest, MatchesExhaustiveOnDrawnGraphTrials) {
  for (WorkloadKind kind :
       {WorkloadKind::kBushyGraph, WorkloadKind::kLengthyGraph}) {
    ExperimentConfig cfg = MakeClassBConfig(kind);
    cfg.num_operations = 9;
    cfg.num_servers = 3;
    TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
    const ExecutionProfile* profile =
        t.profile.has_value() ? &*t.profile : nullptr;
    CostModel model(t.workflow, t.network, profile);
    DeployContext ctx = MakeContext(t.workflow, t.network, profile);
    Mapping exact = WSFLOW_UNWRAP(ExhaustiveAlgorithm(5e7).Run(ctx));
    Mapping found = WSFLOW_UNWRAP(AStarAlgorithm().Run(ctx));
    double exact_cost = model.Evaluate(exact).value().combined;
    EXPECT_NEAR(model.Evaluate(found).value().combined, exact_cost,
                exact_cost * 1e-9 + 1e-15)
        << "kind " << static_cast<int>(kind);
  }
}

TEST(AStarTest, MatchesExhaustiveOnLineNetworks) {
  // Multi-hop communication: no bus symmetry, dominance still sound.
  Workflow w = testing::SimpleLine(6, 20e6, 60648);
  Network n = MakeLineNetwork({1e9, 2e9, 1e9}, {1e7, 1e6}).value();
  CostModel model(w, n);
  DeployContext ctx = MakeContext(w, n);
  Mapping exact = WSFLOW_UNWRAP(ExhaustiveAlgorithm().Run(ctx));
  Mapping found = WSFLOW_UNWRAP(AStarAlgorithm().Run(ctx));
  EXPECT_NEAR(model.Evaluate(found).value().combined,
              model.Evaluate(exact).value().combined, 1e-12);
}

TEST(AStarTest, MaskedOptimumMatchesMaskedBruteForce) {
  // With a server down, the solver must place only on survivors and find
  // the best mapping of the surviving subnetwork.
  Workflow w = testing::SimpleLine(5, 15e6, 40000);
  Network n = MakeLineNetwork({1e9, 2e9, 1.5e9}, {1e7, 5e6}).value();
  ServerMask mask = ServerMask::AllAlive(3);
  mask.SetAlive(ServerId(1), false);
  CostModel model(w, n);
  DeployContext ctx = MakeContext(w, n);

  AStarOptions options;
  options.mask = mask;
  AStarAlgorithm astar(options);
  Mapping found = WSFLOW_UNWRAP(astar.Run(ctx));
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NE(found.ServerOf(OperationId(static_cast<uint32_t>(i))).value,
              1u);
  }
  double found_cost =
      model.Evaluate(found, ctx.cost_options, mask).value().combined;

  // Brute force over the survivors {0, 2}.
  double best = std::numeric_limits<double>::infinity();
  const uint32_t alive[] = {0, 2};
  for (uint32_t code = 0; code < 32; ++code) {
    Mapping m(5);
    for (uint32_t i = 0; i < 5; ++i) {
      m.Assign(OperationId(i), ServerId(alive[(code >> i) & 1]));
    }
    Result<CostBreakdown> cost = model.Evaluate(m, ctx.cost_options, mask);
    if (cost.ok()) best = std::min(best, cost->combined);
  }
  EXPECT_NEAR(found_cost, best, best * 1e-9);
}

TEST(AStarTest, HandlesPaperScaleInstance) {
  // M=19, N=5 — the paper's configuration, far beyond exhaustive's reach
  // (5^19 ~ 1.9e13). Must certify an optimum and never lose to a
  // heuristic.
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  cfg.fixed_bus_speed_bps = paperconst::kBus10Mbps;
  TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
  CostModel model(t.workflow, t.network);
  DeployContext ctx = MakeContext(t.workflow, t.network);
  AStarAlgorithm astar;
  Mapping opt = WSFLOW_UNWRAP(astar.Run(ctx));
  EXPECT_TRUE(astar.last_stats().proven_optimal);
  EXPECT_GT(astar.last_stats().expanded, 0u);
  double opt_cost = model.Evaluate(opt).value().combined;
  for (const char* name : {"fair-load", "fltr2", "fl-merge", "heavy-ops"}) {
    ctx.seed = 3;
    Mapping m = WSFLOW_UNWRAP(RunAlgorithm(name, ctx));
    EXPECT_LE(opt_cost, model.Evaluate(m).value().combined + 1e-12) << name;
  }
}

TEST(AStarTest, ExpandsFarFewerNodesThanBranchBound) {
  // The headline property: best-first expansion + dominance merging must
  // beat depth-first branch-and-bound by a wide node margin.
  ExperimentConfig cfg = MakeClassAConfig(WorkloadKind::kLine);
  cfg.num_operations = 16;
  cfg.num_servers = 5;
  cfg.fixed_bus_speed_bps = paperconst::kBus10Mbps;
  TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
  DeployContext ctx = MakeContext(t.workflow, t.network);
  BranchBoundAlgorithm bb;
  Mapping bb_m = WSFLOW_UNWRAP(bb.Run(ctx));
  AStarAlgorithm astar;
  AStarStats stats;
  Mapping astar_m = WSFLOW_UNWRAP(astar.RunWithStats(ctx, &stats));
  CostModel model(t.workflow, t.network);
  EXPECT_NEAR(model.Evaluate(astar_m).value().combined,
              model.Evaluate(bb_m).value().combined,
              model.Evaluate(bb_m).value().combined * 1e-9);
  EXPECT_LT(stats.generated * 5, bb.last_nodes())
      << "astar generated " << stats.generated << " vs branch-bound "
      << bb.last_nodes();
  EXPECT_GT(stats.pruned_dominance, 0u);
}

TEST(AStarTest, NodeBudgetEnforcedInExactMode) {
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  cfg.fixed_bus_speed_bps = paperconst::kBus100Mbps;
  TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 1));
  AStarOptions options;
  options.max_nodes = 16;
  AStarAlgorithm tiny(options);
  EXPECT_TRUE(tiny.Run(MakeContext(t.workflow, t.network))
                  .status()
                  .IsResourceExhausted());
}

TEST(AStarTest, AnytimeReturnsIncumbentOnBudget) {
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  cfg.fixed_bus_speed_bps = paperconst::kBus100Mbps;
  TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 1));
  AStarOptions options;
  options.max_nodes = 16;
  options.anytime = true;
  AStarAlgorithm astar(options);
  AStarStats stats;
  Mapping m = WSFLOW_UNWRAP(
      astar.RunWithStats(MakeContext(t.workflow, t.network), &stats));
  EXPECT_TRUE(m.IsTotal());
  EXPECT_FALSE(stats.proven_optimal);
  EXPECT_LT(stats.incumbent_cost, std::numeric_limits<double>::infinity());
}

TEST(AStarTest, AnytimeCertifiesHeuristicWithFullBudget) {
  // Run to exhaustion the anytime search is an optimality certificate: it
  // must return a mapping whose cost matches the exact solver's.
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  cfg.num_operations = 10;
  cfg.num_servers = 4;
  TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 2));
  CostModel model(t.workflow, t.network);
  DeployContext ctx = MakeContext(t.workflow, t.network);
  AStarOptions options;
  options.anytime = true;
  AStarAlgorithm anytime(options);
  AStarStats stats;
  Mapping m = WSFLOW_UNWRAP(anytime.RunWithStats(ctx, &stats));
  EXPECT_TRUE(stats.proven_optimal);
  Mapping exact = WSFLOW_UNWRAP(AStarAlgorithm().Run(ctx));
  EXPECT_NEAR(model.Evaluate(m).value().combined,
              model.Evaluate(exact).value().combined,
              model.Evaluate(exact).value().combined * 1e-9);
}

TEST(AStarTest, SingleServer) {
  Workflow w = testing::SimpleLine(5);
  Network n = testing::SimpleBus(1);
  Mapping m = WSFLOW_UNWRAP(AStarAlgorithm().Run(MakeContext(w, n)));
  EXPECT_EQ(m.OperationsOn(ServerId(0)).size(), 5u);
}

TEST(AStarTest, StatsPopulated) {
  Workflow w = testing::SimpleLine(6);
  Network n = testing::SimpleBus(3);
  AStarAlgorithm astar;
  AStarStats stats;
  WSFLOW_UNWRAP(astar.RunWithStats(MakeContext(w, n), &stats));
  EXPECT_GT(stats.expanded, 0u);
  EXPECT_GT(stats.generated, stats.expanded / 4);
  EXPECT_TRUE(stats.proven_optimal);
  EXPECT_LT(stats.best_cost, std::numeric_limits<double>::infinity());
}

TEST(AStarTest, Registered) {
  RegisterBuiltinAlgorithms();
  EXPECT_TRUE(AlgorithmRegistry::Global().Contains("astar"));
  EXPECT_TRUE(AlgorithmRegistry::Global().Contains("astar-anytime"));
}

// Run under TSan in CI: concurrent anytime searches over shared immutable
// inputs must race-free produce bit-identical mappings and node counts.
TEST(AStarDeterminismTest, ConcurrentAnytimeRunsAgree) {
  ExperimentConfig cfg = MakeClassBConfig(WorkloadKind::kLine);
  cfg.num_operations = 12;
  cfg.num_servers = 4;
  TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 3));
  DeployContext ctx = MakeContext(t.workflow, t.network);

  AStarOptions options;
  options.anytime = true;
  AStarAlgorithm reference(options);
  AStarStats ref_stats;
  Mapping ref = WSFLOW_UNWRAP(reference.RunWithStats(ctx, &ref_stats));

  constexpr int kThreads = 4;
  std::vector<Mapping> results(kThreads);
  std::vector<AStarStats> stats(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      AStarAlgorithm astar(options);
      Result<Mapping> m = astar.RunWithStats(ctx, &stats[i]);
      ASSERT_TRUE(m.ok()) << m.status().ToString();
      results[i] = std::move(*m);
    });
  }
  for (std::thread& th : threads) th.join();

  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(stats[i].expanded, ref_stats.expanded);
    EXPECT_EQ(stats[i].generated, ref_stats.generated);
    EXPECT_EQ(stats[i].pruned_dominance, ref_stats.pruned_dominance);
    EXPECT_EQ(stats[i].best_cost, ref_stats.best_cost);
    for (size_t op = 0; op < t.workflow.num_operations(); ++op) {
      EXPECT_EQ(results[i].ServerOf(OperationId(static_cast<uint32_t>(op))),
                ref.ServerOf(OperationId(static_cast<uint32_t>(op))))
          << "thread " << i << " op " << op;
    }
  }
}

}  // namespace
}  // namespace wsflow
