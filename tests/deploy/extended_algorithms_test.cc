// Tests for the extension algorithms: round-robin, simulated annealing and
// the critical-path (HEFT-style) list scheduler.

#include <gtest/gtest.h>

#include "src/cost/cost_model.h"
#include "src/deploy/annealing.h"
#include "src/deploy/critical_path.h"
#include "src/deploy/exhaustive.h"
#include "src/deploy/round_robin.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

DeployContext MakeContext(const Workflow& w, const Network& n,
                          uint64_t seed = 1,
                          const ExecutionProfile* profile = nullptr) {
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  ctx.profile = profile;
  ctx.seed = seed;
  return ctx;
}

TEST(RoundRobinTest, CyclesThroughServers) {
  Workflow w = testing::SimpleLine(7);
  Network n = testing::SimpleBus(3);
  RoundRobinAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_TRUE(m.IsTotal());
  for (uint32_t i = 0; i < 7; ++i) {
    EXPECT_EQ(m.ServerOf(OperationId(i)).value, i % 3);
  }
}

TEST(RoundRobinTest, RegisteredAndRunnable) {
  Workflow w = testing::SimpleLine(5);
  Network n = testing::SimpleBus(2);
  Mapping m = WSFLOW_UNWRAP(RunAlgorithm("round-robin", MakeContext(w, n)));
  EXPECT_TRUE(m.IsTotal());
}

TEST(AnnealingTest, TotalAndDeterministic) {
  Workflow w = testing::SimpleLine(10, 20e6, 60648);
  Network n = MakeBusNetwork({1e9, 2e9, 3e9}, 1e7).value();
  AnnealingOptions options;
  options.iterations = 2000;
  AnnealingAlgorithm algo(options);
  Mapping a = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n, 9)));
  Mapping b = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n, 9)));
  EXPECT_TRUE(a.IsTotal());
  EXPECT_TRUE(a == b);
}

TEST(AnnealingTest, BeatsItsRandomStart) {
  Workflow w = testing::SimpleLine(12, 20e6, 60648);
  Network n = MakeBusNetwork({1e9, 2e9, 3e9}, 1e6).value();
  CostModel model(w, n);
  // The annealer starts from RandomMapping(ctx.seed) by construction, so
  // compare against the same random mapping.
  Mapping random = WSFLOW_UNWRAP(RunAlgorithm("random", MakeContext(w, n, 4)));
  AnnealingOptions options;
  options.iterations = 3000;
  AnnealingAlgorithm algo(options);
  Mapping annealed = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n, 4)));
  EXPECT_LE(model.Evaluate(annealed).value().combined,
            model.Evaluate(random).value().combined);
}

TEST(AnnealingTest, NearExhaustiveOnTinyInstance) {
  Workflow w = testing::SimpleLine(6, 20e6, 60648);
  Network n = MakeBusNetwork({1e9, 2e9}, 1e7).value();
  CostModel model(w, n);
  DeployContext ctx = MakeContext(w, n, 3);
  Mapping opt = WSFLOW_UNWRAP(ExhaustiveAlgorithm().Run(ctx));
  double opt_cost = model.Evaluate(opt).value().combined;
  AnnealingOptions options;
  options.iterations = 5000;
  Mapping annealed = WSFLOW_UNWRAP(AnnealingAlgorithm(options).Run(ctx));
  double cost = model.Evaluate(annealed).value().combined;
  EXPECT_GE(cost, opt_cost - 1e-12);
  EXPECT_LE(cost, opt_cost * 1.10);  // within 10% of optimal
}

TEST(AnnealingTest, SingleServerTrivial) {
  Workflow w = testing::SimpleLine(4);
  Network n = testing::SimpleBus(1);
  AnnealingAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_EQ(m.OperationsOn(ServerId(0)).size(), 4u);
}

TEST(CriticalPathTest, TotalAndDeterministic) {
  Workflow w = testing::AllDecisionGraph(50e6, 60648);
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  Network n = MakeBusNetwork({1e9, 2e9, 3e9}, 1e7).value();
  CriticalPathAlgorithm algo;
  Mapping a = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n, 1, &profile)));
  Mapping b = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n, 2, &profile)));
  EXPECT_TRUE(a.IsTotal());
  EXPECT_TRUE(a == b);  // seed-independent
}

TEST(CriticalPathTest, CoLocatesChattyChainOnSlowBus) {
  // Huge messages, tiny ops: earliest-finish placement keeps the chain on
  // one server.
  std::vector<double> cycles(6, 1e6);
  std::vector<double> msgs(5, 1e7);
  Workflow w = MakeLineWorkflow("chatty", cycles, msgs).value();
  Network n = MakeBusNetwork({1e9, 1e9}, 1e6).value();
  CriticalPathAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  for (uint32_t i = 0; i + 1 < 6; ++i) {
    EXPECT_TRUE(m.CoLocated(OperationId(i), OperationId(i + 1)));
  }
}

TEST(CriticalPathTest, PrefersFastServerForSerialChain) {
  // A serial line with free messages: everything belongs on the fastest
  // server (no parallelism to exploit).
  Workflow w = testing::SimpleLine(5, 100e6, 0);
  Network n;
  n.AddServer("slow", 1e9);
  n.AddServer("fast", 4e9);
  ASSERT_TRUE(n.SetBus(1e9).ok());
  CriticalPathAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(m.ServerOf(OperationId(i)), ServerId(1));
  }
}

TEST(CriticalPathTest, ExploitsAndParallelism) {
  // Two heavy AND branches, cheap messages, two equal servers: the
  // branches must land on different servers.
  WorkflowBuilder b("par");
  b.Split(OperationType::kAndSplit, "s", 1e6);
  b.Branch().Op("left", 500e6, 100);
  b.Branch().Op("right", 500e6, 100);
  b.Join("j", 1e6, 100);
  Workflow w = WSFLOW_UNWRAP(b.Build());
  Network n = MakeBusNetwork({1e9, 1e9}, 1e9).value();
  CriticalPathAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_NE(m.ServerOf(WSFLOW_UNWRAP(b.Id("left"))),
            m.ServerOf(WSFLOW_UNWRAP(b.Id("right"))));
}

TEST(CriticalPathTest, GoodExecutionTimeOnLines) {
  // Against the fairness-blind objective it optimizes, critical-path must
  // beat round-robin's execution time on a slow bus.
  Workflow w = testing::SimpleLine(12, 20e6, 171136);
  Network n = MakeBusNetwork({1e9, 2e9, 3e9}, 1e6).value();
  CostModel model(w, n);
  Mapping cp = WSFLOW_UNWRAP(RunAlgorithm("critical-path", MakeContext(w, n)));
  Mapping rr = WSFLOW_UNWRAP(RunAlgorithm("round-robin", MakeContext(w, n)));
  EXPECT_LT(model.Evaluate(cp).value().execution_time,
            model.Evaluate(rr).value().execution_time);
}

TEST(ExtendedRegistryTest, AllExtensionAlgorithmsRegistered) {
  RegisterBuiltinAlgorithms();
  AlgorithmRegistry& r = AlgorithmRegistry::Global();
  for (const char* name : {"round-robin", "annealing", "critical-path"}) {
    EXPECT_TRUE(r.Contains(name)) << name;
  }
}

}  // namespace
}  // namespace wsflow
