#include "src/deploy/mapping.h"

#include <gtest/gtest.h>

#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

TEST(MappingTest, StartsUnassigned) {
  Mapping m(3);
  EXPECT_EQ(m.num_operations(), 3u);
  EXPECT_FALSE(m.IsTotal());
  EXPECT_EQ(m.NumAssigned(), 0u);
  EXPECT_FALSE(m.IsAssigned(OperationId(0)));
  EXPECT_FALSE(m.ServerOf(OperationId(0)).valid());
}

TEST(MappingTest, AssignAndReassign) {
  Mapping m(2);
  m.Assign(OperationId(0), ServerId(1));
  EXPECT_EQ(m.ServerOf(OperationId(0)), ServerId(1));
  m.Assign(OperationId(0), ServerId(0));
  EXPECT_EQ(m.ServerOf(OperationId(0)), ServerId(0));
  EXPECT_EQ(m.NumAssigned(), 1u);
}

TEST(MappingTest, Unassign) {
  Mapping m(2);
  m.Assign(OperationId(0), ServerId(1));
  m.Unassign(OperationId(0));
  EXPECT_FALSE(m.IsAssigned(OperationId(0)));
  m.Unassign(OperationId(1));  // no-op on unassigned
  EXPECT_EQ(m.NumAssigned(), 0u);
}

TEST(MappingTest, TotalWhenAllAssigned) {
  Mapping m(2);
  m.Assign(OperationId(0), ServerId(0));
  EXPECT_FALSE(m.IsTotal());
  m.Assign(OperationId(1), ServerId(1));
  EXPECT_TRUE(m.IsTotal());
}

TEST(MappingTest, EmptyMappingIsNotTotal) {
  Mapping m;
  EXPECT_FALSE(m.IsTotal());
}

TEST(MappingTest, CoLocated) {
  Mapping m(3);
  m.Assign(OperationId(0), ServerId(1));
  m.Assign(OperationId(1), ServerId(1));
  m.Assign(OperationId(2), ServerId(0));
  EXPECT_TRUE(m.CoLocated(OperationId(0), OperationId(1)));
  EXPECT_FALSE(m.CoLocated(OperationId(0), OperationId(2)));
}

TEST(MappingTest, UnassignedNeverCoLocated) {
  Mapping m(2);
  EXPECT_FALSE(m.CoLocated(OperationId(0), OperationId(1)));
  m.Assign(OperationId(0), ServerId(0));
  EXPECT_FALSE(m.CoLocated(OperationId(0), OperationId(1)));
}

TEST(MappingTest, OperationsOn) {
  Mapping m = testing::RoundRobin(5, 2);
  std::vector<OperationId> on0 = m.OperationsOn(ServerId(0));
  ASSERT_EQ(on0.size(), 3u);
  EXPECT_EQ(on0[0].value, 0u);
  EXPECT_EQ(on0[1].value, 2u);
  EXPECT_EQ(on0[2].value, 4u);
  EXPECT_EQ(m.OperationsOn(ServerId(1)).size(), 2u);
  EXPECT_TRUE(m.OperationsOn(ServerId(9)).empty());
}

TEST(MappingTest, ValidateAgainst) {
  Workflow w = testing::SimpleLine(3);
  Network n = testing::SimpleBus(2);
  Mapping good = testing::RoundRobin(3, 2);
  WSFLOW_EXPECT_OK(good.ValidateAgainst(w, n));

  Mapping wrong_size(2);
  EXPECT_TRUE(wrong_size.ValidateAgainst(w, n).IsFailedPrecondition());

  Mapping partial(3);
  partial.Assign(OperationId(0), ServerId(0));
  EXPECT_TRUE(partial.ValidateAgainst(w, n).IsFailedPrecondition());

  Mapping bad_server(3);
  for (uint32_t i = 0; i < 3; ++i) {
    bad_server.Assign(OperationId(i), ServerId(9));
  }
  EXPECT_TRUE(bad_server.ValidateAgainst(w, n).IsFailedPrecondition());
}

TEST(MappingTest, Equality) {
  Mapping a = testing::RoundRobin(3, 2);
  Mapping b = testing::RoundRobin(3, 2);
  EXPECT_TRUE(a == b);
  b.Assign(OperationId(0), ServerId(1));
  EXPECT_FALSE(a == b);
}

TEST(MappingTest, ToStringListsAssignments) {
  Workflow w = testing::SimpleLine(2);
  Network n = testing::SimpleBus(2);
  Mapping m = testing::RoundRobin(2, 2);
  std::string s = m.ToString(w, n);
  EXPECT_NE(s.find("op1->s1"), std::string::npos);
  EXPECT_NE(s.find("op2->s2"), std::string::npos);
}

}  // namespace
}  // namespace wsflow
