#include "src/deploy/portfolio.h"

#include <gtest/gtest.h>

#include "src/cost/cost_model.h"
#include "src/exp/config.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

DeployContext MakeContext(const Workflow& w, const Network& n,
                          uint64_t seed = 1) {
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  ctx.seed = seed;
  return ctx;
}

TEST(PortfolioTest, DefaultMembers) {
  PortfolioAlgorithm algo;
  EXPECT_EQ(algo.members().size(), 6u);
  EXPECT_EQ(algo.members().front(), "fair-load");
  EXPECT_EQ(algo.members().back(), "critical-path");
}

TEST(PortfolioTest, RegisteredInRegistry) {
  RegisterBuiltinAlgorithms();
  EXPECT_TRUE(AlgorithmRegistry::Global().Contains("portfolio"));
}

TEST(PortfolioTest, NeverWorseThanAnyMember) {
  RegisterBuiltinAlgorithms();
  for (uint64_t trial = 0; trial < 8; ++trial) {
    ExperimentConfig cfg = MakeClassCConfig(
        trial % 2 == 0 ? WorkloadKind::kLine : WorkloadKind::kHybridGraph);
    cfg.num_operations = 13;
    cfg.seed = trial;
    TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
    const ExecutionProfile* profile = t.profile ? &*t.profile : nullptr;
    CostModel model(t.workflow, t.network, profile);
    DeployContext ctx = MakeContext(t.workflow, t.network, trial);
    ctx.profile = profile;

    PortfolioAlgorithm portfolio;
    Mapping best = WSFLOW_UNWRAP(portfolio.Run(ctx));
    double best_cost = model.Evaluate(best).value().combined;
    for (const std::string& member : portfolio.members()) {
      Mapping m = WSFLOW_UNWRAP(RunAlgorithm(member, ctx));
      EXPECT_LE(best_cost, model.Evaluate(m).value().combined + 1e-12)
          << member << " trial " << trial;
    }
  }
}

TEST(PortfolioTest, RespectsObjectiveWeights) {
  // With execution-only weights the portfolio must pick a mapping at least
  // as fast as fair-load's; with fairness-only weights at least as fair as
  // heavy-ops'.
  Workflow w = testing::SimpleLine(12, 20e6, 171136);
  Network n = MakeBusNetwork({1e9, 2e9, 3e9}, 1e6).value();
  CostModel model(w, n);
  PortfolioAlgorithm portfolio;

  DeployContext exec_ctx = MakeContext(w, n);
  exec_ctx.cost_options.execution_weight = 1.0;
  exec_ctx.cost_options.fairness_weight = 0.0;
  Mapping fast = WSFLOW_UNWRAP(portfolio.Run(exec_ctx));
  Mapping fl = WSFLOW_UNWRAP(RunAlgorithm("fair-load", exec_ctx));
  EXPECT_LE(model.Evaluate(fast).value().execution_time,
            model.Evaluate(fl).value().execution_time + 1e-12);

  DeployContext fair_ctx = MakeContext(w, n);
  fair_ctx.cost_options.execution_weight = 0.0;
  fair_ctx.cost_options.fairness_weight = 1.0;
  Mapping fair = WSFLOW_UNWRAP(portfolio.Run(fair_ctx));
  Mapping holm = WSFLOW_UNWRAP(RunAlgorithm("heavy-ops", fair_ctx));
  EXPECT_LE(model.Evaluate(fair).value().time_penalty,
            model.Evaluate(holm).value().time_penalty + 1e-12);
}

TEST(PortfolioTest, CustomMembers) {
  Workflow w = testing::SimpleLine(8);
  Network n = testing::SimpleBus(2);
  PortfolioAlgorithm algo({"round-robin", "random"});
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_TRUE(m.IsTotal());
}

TEST(PortfolioTest, UnknownMemberIsConfigError) {
  Workflow w = testing::SimpleLine(4);
  Network n = testing::SimpleBus(2);
  PortfolioAlgorithm algo({"fair-load", "nope"});
  EXPECT_TRUE(algo.Run(MakeContext(w, n)).status().IsNotFound());
}

TEST(PortfolioTest, FailingMembersSkipped) {
  // Exhaustive refuses the 5^19 space but fair-load succeeds: the
  // portfolio must still return a mapping.
  Workflow w = testing::SimpleLine(19);
  Network n = testing::SimpleBus(5);
  PortfolioAlgorithm algo({"exhaustive", "fair-load"});
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_TRUE(m.IsTotal());
}

TEST(PortfolioTest, AllMembersFailingReportsLastError) {
  Workflow w = testing::SimpleLine(19);
  Network n = testing::SimpleBus(5);
  PortfolioAlgorithm algo({"exhaustive"});
  EXPECT_TRUE(algo.Run(MakeContext(w, n)).status().IsResourceExhausted());
}

TEST(PortfolioTest, TieBreakGoesToEarliestMember) {
  // With both weights zero every mapping costs exactly 0.0, so every
  // member ties and the portfolio must keep the first member's mapping
  // (strict < comparison). Run with both member orders on an instance
  // where the two candidates genuinely disagree, under non-default
  // weights, to pin the tie-breaking rule.
  Workflow w = testing::SimpleLine(9, 20e6, 171136);
  Network n = MakeBusNetwork({1e9, 2e9, 4e9}, 1e6).value();

  DeployContext ctx = MakeContext(w, n);
  ctx.cost_options.execution_weight = 0.0;
  ctx.cost_options.fairness_weight = 0.0;

  Mapping heavy = WSFLOW_UNWRAP(RunAlgorithm("heavy-ops", ctx));
  Mapping fair = WSFLOW_UNWRAP(RunAlgorithm("fair-load", ctx));
  ASSERT_FALSE(heavy == fair)
      << "instance too easy: members agree, tie-break unobservable";

  PortfolioAlgorithm heavy_first({"heavy-ops", "fair-load"});
  EXPECT_TRUE(WSFLOW_UNWRAP(heavy_first.Run(ctx)) == heavy);

  PortfolioAlgorithm fair_first({"fair-load", "heavy-ops"});
  EXPECT_TRUE(WSFLOW_UNWRAP(fair_first.Run(ctx)) == fair);
}

TEST(PortfolioDeathTest, SelfNestingForbidden) {
  EXPECT_DEATH(PortfolioAlgorithm({"portfolio"}), "portfolio");
}

}  // namespace
}  // namespace wsflow
