#include "src/deploy/fair_load.h"

#include <gtest/gtest.h>

#include "src/cost/cost_model.h"
#include "src/deploy/random_baseline.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

DeployContext MakeContext(const Workflow& w, const Network& n,
                          const ExecutionProfile* profile = nullptr) {
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  ctx.profile = profile;
  return ctx;
}

TEST(ServerLedgerTest, TopIsNeediest) {
  Workflow w = testing::SimpleLine(4, 12e6);
  Network n;
  n.AddServer("weak", 1e9);
  n.AddServer("strong", 3e9);
  ASSERT_TRUE(n.SetBus(1e8).ok());
  WorkflowView view(w, nullptr);
  ServerLedger ledger(view, n);
  // Ideal cycles: 12e6 for weak, 36e6 for strong.
  EXPECT_EQ(ledger.Top(), ServerId(1));
  EXPECT_DOUBLE_EQ(ledger.Remaining(ServerId(0)), 12e6);
  EXPECT_DOUBLE_EQ(ledger.Remaining(ServerId(1)), 36e6);
  ledger.Charge(ServerId(1), 30e6);
  EXPECT_EQ(ledger.Top(), ServerId(0));
}

TEST(ServerLedgerTest, TopTiesGroupsEqualRemaining) {
  Workflow w = testing::SimpleLine(4, 10e6);
  Network n = testing::SimpleBus(3);
  WorkflowView view(w, nullptr);
  ServerLedger ledger(view, n);
  EXPECT_EQ(ledger.TopTies().size(), 3u);  // all equal
  ledger.Charge(ServerId(0), 1e6);
  EXPECT_EQ(ledger.TopTies().size(), 2u);
}

TEST(OperationSortTest, DescendingWithStableTies) {
  Workflow w;
  w.AddOperation("small", OperationType::kOperational, 1.0);
  w.AddOperation("big", OperationType::kOperational, 9.0);
  w.AddOperation("mid1", OperationType::kOperational, 5.0);
  w.AddOperation("mid2", OperationType::kOperational, 5.0);
  WorkflowView view(w, nullptr);
  std::vector<OperationId> order = OperationsByDescendingCycles(view);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0].value, 1u);
  EXPECT_EQ(order[1].value, 2u);  // ties in id order
  EXPECT_EQ(order[2].value, 3u);
  EXPECT_EQ(order[3].value, 0u);
}

TEST(FairLoadTest, ProducesTotalMapping) {
  Workflow w = testing::SimpleLine(19);
  Network n = testing::SimpleBus(5);
  FairLoadAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_TRUE(m.IsTotal());
}

TEST(FairLoadTest, PerfectBalanceWhenPossible) {
  // 4 equal ops over 2 equal servers: worst-fit gives a 2/2 split.
  Workflow w = testing::SimpleLine(4, 10e6);
  Network n = testing::SimpleBus(2);
  FairLoadAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  CostModel model(w, n);
  EXPECT_DOUBLE_EQ(model.TimePenalty(m), 0.0);
}

TEST(FairLoadTest, RespectsHeterogeneousCapacity) {
  // Servers of 1 and 3 GHz: the strong server should take ~3x the cycles.
  Workflow w = testing::SimpleLine(8, 10e6);
  Network n;
  n.AddServer("weak", 1e9);
  n.AddServer("strong", 3e9);
  ASSERT_TRUE(n.SetBus(1e8).ok());
  FairLoadAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_EQ(m.OperationsOn(ServerId(0)).size(), 2u);
  EXPECT_EQ(m.OperationsOn(ServerId(1)).size(), 6u);
}

TEST(FairLoadTest, FairerThanRandomOnAverage) {
  Workflow w = testing::SimpleLine(19, 20e6);
  Network n = MakeBusNetwork({1e9, 2e9, 3e9, 2e9, 1e9}, 1e8).value();
  CostModel model(w, n);
  FairLoadAlgorithm algo;
  Mapping fl = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  double fl_penalty = model.TimePenalty(fl);

  Rng rng(11);
  double random_total = 0;
  const int kRuns = 50;
  for (int i = 0; i < kRuns; ++i) {
    random_total += model.TimePenalty(RandomMapping(19, 5, &rng));
  }
  EXPECT_LT(fl_penalty, random_total / kRuns);
}

TEST(FairLoadTest, HeaviestOperationGoesToLargestShare) {
  Workflow w;
  w.AddOperation("heavy", OperationType::kOperational, 500e6);
  w.AddOperation("light", OperationType::kOperational, 5e6);
  Result<TransitionId> t =
      w.AddTransition(OperationId(0), OperationId(1), 8000);
  ASSERT_TRUE(t.ok());
  Network n;
  n.AddServer("weak", 1e9);
  n.AddServer("strong", 3e9);
  ASSERT_TRUE(n.SetBus(1e8).ok());
  FairLoadAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_EQ(m.ServerOf(OperationId(0)), ServerId(1));
}

TEST(FairLoadTest, DeterministicAcrossRuns) {
  Workflow w = testing::SimpleLine(19);
  Network n = testing::SimpleBus(5);
  FairLoadAlgorithm algo;
  Mapping a = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  Mapping b = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_TRUE(a == b);
}

TEST(FairLoadTest, GraphProfileWeightsLoads) {
  // The rare XOR arm (p=0.3) weighs less; FairLoad balances weighted
  // cycles, so penalties computed under the profile stay small.
  Workflow w = testing::AllDecisionGraph(100e6);
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  Network n = testing::SimpleBus(3);
  FairLoadAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n, &profile)));
  EXPECT_TRUE(m.IsTotal());
  CostModel model(w, n, &profile);
  CostModel unweighted(w, n);
  // Weighted balancing cannot be worse than 3x the unweighted's fairness.
  EXPECT_LE(model.TimePenalty(m), unweighted.TimePenalty(m) + 1e-9);
}

TEST(FairLoadTest, WorksWithMoreServersThanOps) {
  Workflow w = testing::SimpleLine(2);
  Network n = testing::SimpleBus(5);
  FairLoadAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_TRUE(m.IsTotal());
  // Two ops land on two distinct servers (worst-fit never doubles up
  // while empty servers remain, given equal ideals).
  EXPECT_NE(m.ServerOf(OperationId(0)), m.ServerOf(OperationId(1)));
}

}  // namespace
}  // namespace wsflow
