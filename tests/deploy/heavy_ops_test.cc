#include "src/deploy/heavy_ops.h"

#include <gtest/gtest.h>

#include "src/cost/cost_model.h"
#include "src/deploy/graph_view.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

DeployContext MakeContext(const Workflow& w, const Network& n,
                          const ExecutionProfile* profile = nullptr) {
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  ctx.profile = profile;
  return ctx;
}

TEST(HeavyOpsTest, ProducesTotalMapping) {
  Workflow w = testing::SimpleLine(19);
  Network n = testing::SimpleBus(5);
  HeavyOpsAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_TRUE(m.IsTotal());
}

TEST(HeavyOpsTest, Deterministic) {
  Workflow w = testing::SimpleLine(19, 20e6, 60648);
  Network n = MakeBusNetwork({1e9, 2e9, 3e9}, 1e7).value();
  HeavyOpsAlgorithm algo;
  Mapping a = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  Mapping b = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_TRUE(a == b);
}

TEST(HeavyOpsTest, LargeMessageEndsCoLocated) {
  // A 1 Mbps bus makes even medium messages expensive relative to the tiny
  // operations, so communicating pairs must merge.
  std::vector<double> cycles(6, 1e6);  // 1 ms of work each on 1 GHz
  std::vector<double> msgs(5, 171136); // ~171 ms on the bus
  Workflow w = MakeLineWorkflow("chatty", cycles, msgs).value();
  Network n = MakeBusNetwork({1e9, 1e9, 1e9}, 1e6).value();
  HeavyOpsAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  // Every message is large: the whole line collapses onto one server.
  for (uint32_t i = 0; i + 1 < 6; ++i) {
    EXPECT_TRUE(m.CoLocated(OperationId(i), OperationId(i + 1)))
        << "edge " << i;
  }
}

TEST(HeavyOpsTest, FastBusSpreadsHeavyOps) {
  // On a 1 Gbps bus messages are nearly free: heavy operations dominate
  // and the groups spread over the servers for fairness.
  std::vector<double> cycles(6, 500e6);
  std::vector<double> msgs(5, 6984);
  Workflow w = MakeLineWorkflow("heavy", cycles, msgs).value();
  Network n = MakeBusNetwork({1e9, 1e9, 1e9}, 1e9).value();
  HeavyOpsAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  for (uint32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(m.OperationsOn(ServerId(s)).size(), 2u);
  }
}

TEST(HeavyOpsTest, GroupsNeverSplit) {
  // Mixed workload: wherever two ops exchange a message that is large
  // relative to their processing, they must end on the same server.
  std::vector<double> cycles{1e6, 1e6, 500e6, 500e6, 1e6, 1e6};
  std::vector<double> msgs{171136, 6984, 6984, 6984, 171136};
  Workflow w = MakeLineWorkflow("mixed", cycles, msgs).value();
  Network n = MakeBusNetwork({1e9, 2e9}, 1e6).value();
  HeavyOpsAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_TRUE(m.IsTotal());
  // The 171 ms messages join cheap (1 ms) operations: both pairs merge.
  EXPECT_TRUE(m.CoLocated(OperationId(0), OperationId(1)));
  EXPECT_TRUE(m.CoLocated(OperationId(4), OperationId(5)));
}

TEST(HeavyOpsTest, GraphWorkflowSupported) {
  Workflow w = testing::AllDecisionGraph();
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  Network n = testing::SimpleBus(3);
  HeavyOpsAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n, &profile)));
  EXPECT_TRUE(m.IsTotal());
}

TEST(HeavyOpsTest, SingleServer) {
  Workflow w = testing::SimpleLine(5);
  Network n = testing::SimpleBus(1);
  HeavyOpsAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_EQ(m.OperationsOn(ServerId(0)).size(), 5u);
}

TEST(HeavyOpsTest, SingleOperation) {
  Workflow w = testing::SimpleLine(1);
  Network n = testing::SimpleBus(3);
  HeavyOpsAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_TRUE(m.IsTotal());
}

TEST(HeavyOpsTest, ThresholdScaleShiftsDecision) {
  // Scaling message transfer time up makes the algorithm merge more; a
  // scale of ~0 makes it behave like pure load balancing.
  std::vector<double> cycles(6, 50e6);
  std::vector<double> msgs(5, 171136);
  Workflow w = MakeLineWorkflow("scale", cycles, msgs).value();
  Network n = MakeBusNetwork({1e9, 1e9, 1e9}, 1e7).value();
  CostModel model(w, n);

  HeavyOpsAlgorithm merge_prone(/*large_message_scale=*/100.0);
  HeavyOpsAlgorithm spread_prone(/*large_message_scale=*/1e-9);
  Mapping merged = WSFLOW_UNWRAP(merge_prone.Run(MakeContext(w, n)));
  Mapping spread = WSFLOW_UNWRAP(spread_prone.Run(MakeContext(w, n)));
  // The merge-prone variant keeps more pairs local.
  size_t merged_crossings = 0, spread_crossings = 0;
  for (const Transition& t : w.transitions()) {
    if (!merged.CoLocated(t.from, t.to)) ++merged_crossings;
    if (!spread.CoLocated(t.from, t.to)) ++spread_crossings;
  }
  EXPECT_LE(merged_crossings, spread_crossings);
  EXPECT_LE(model.TimePenalty(spread), model.TimePenalty(merged) + 1e-9);
}

TEST(HeavyOpsTest, LedgerVariantRejectsBadLedger) {
  Workflow w = testing::SimpleLine(4);
  Network n = testing::SimpleBus(2);
  HeavyOpsAlgorithm algo;
  std::vector<double> wrong_size(5, 1.0);
  EXPECT_TRUE(algo.RunWithLedger(MakeContext(w, n), &wrong_size)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(algo.RunWithLedger(MakeContext(w, n), nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST(HeavyOpsTest, LedgerCarriesAcrossRuns) {
  // Preloading server 0 as "already full" pushes work to server 1.
  Workflow w = testing::SimpleLine(4, 10e6, 100);
  Network n = MakeBusNetwork({1e9, 1e9}, 1e9).value();
  HeavyOpsAlgorithm algo;
  std::vector<double> ledger{-100e6, 40e6};  // s0 deeply over budget
  Mapping m = WSFLOW_UNWRAP(algo.RunWithLedger(MakeContext(w, n), &ledger));
  EXPECT_EQ(m.OperationsOn(ServerId(1)).size(), 4u);
  EXPECT_DOUBLE_EQ(ledger[1], 0.0);
}

TEST(HeavyOpsTest, MergedGroupMovesWholesaleInCaseB1) {
  // The prose-over-pseudocode deviation (DESIGN.md §7.1): once O1 and O2
  // merge (their message is large), the later co-location with the already
  // placed O0 must move the *whole* group, not just the message endpoint.
  //
  // Construction: O0 is heavy (0.5 s processing > 0.31 s top message), so
  // iteration 1 places it via option (a). Iteration 2 sees the 0.31 s
  // O1-O2 message with both ends free -> merge (b2). Iteration 3 sees the
  // 0.30 s O0-O1 message with O0 placed -> co-locate (b1): O1 *and* O2
  // must land on O0's server.
  std::vector<double> cycles{500e6, 1e6, 1e6};
  std::vector<double> msgs{3.0e5, 3.1e5};
  Workflow w = MakeLineWorkflow("group-move", cycles, msgs).value();
  Network n = MakeBusNetwork({1e9, 1e9}, 1e6).value();
  HeavyOpsAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  ServerId host = m.ServerOf(OperationId(0));
  EXPECT_EQ(m.ServerOf(OperationId(1)), host);
  EXPECT_EQ(m.ServerOf(OperationId(2)), host);
}

TEST(HeavyOpsTest, PointToPointNetworkFallsBackToSlowestLink) {
  // HOLM is defined for buses; on a line it must still terminate and
  // produce a total mapping using the conservative link estimate.
  Workflow w = testing::SimpleLine(6, 20e6, 60648);
  Network n = MakeLineNetwork({1e9, 1e9, 1e9}, {1e7, 1e6}).value();
  HeavyOpsAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_TRUE(m.IsTotal());
}

}  // namespace
}  // namespace wsflow
