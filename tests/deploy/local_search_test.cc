#include "src/deploy/local_search.h"

#include <gtest/gtest.h>

#include "src/deploy/exhaustive.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

using testing::AllOnServer;

TEST(HillClimbTest, NeverWorsensCost) {
  Workflow w = testing::SimpleLine(6, 20e6, 60648);
  Network n = MakeBusNetwork({1e9, 2e9}, 1e7).value();
  CostModel model(w, n);
  Mapping start = AllOnServer(6, ServerId(0));
  LocalSearchStats stats;
  Mapping end =
      WSFLOW_UNWRAP(HillClimb(model, start, {}, {}, &stats));
  EXPECT_LE(stats.final_cost, stats.initial_cost);
  EXPECT_TRUE(end.IsTotal());
}

TEST(HillClimbTest, ReachesLocalOptimum) {
  Workflow w = testing::SimpleLine(5, 20e6, 60648);
  Network n = MakeBusNetwork({1e9, 1e9}, 1e7).value();
  CostModel model(w, n);
  LocalSearchStats stats;
  Mapping end = WSFLOW_UNWRAP(
      HillClimb(model, AllOnServer(5, ServerId(0)), {}, {}, &stats));
  // At a local optimum no single move or swap improves: re-climbing from
  // the end point takes zero steps.
  LocalSearchStats again;
  Mapping same = WSFLOW_UNWRAP(HillClimb(model, end, {}, {}, &again));
  EXPECT_EQ(again.steps, 0u);
  EXPECT_TRUE(same == end);
}

TEST(HillClimbTest, MatchesExhaustiveOnTinyInstance) {
  Workflow w = testing::SimpleLine(4, 20e6, 60648);
  Network n = MakeBusNetwork({1e9, 2e9}, 1e7).value();
  CostModel model(w, n);

  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  Mapping best = WSFLOW_UNWRAP(ExhaustiveAlgorithm().Run(ctx));
  double best_cost = model.Evaluate(best).value().combined;

  // Climbs from several starts: at least one reaches the global optimum
  // on this tiny landscape, none beat it.
  double reached = 1e300;
  for (uint32_t s = 0; s < 2; ++s) {
    LocalSearchStats stats;
    Mapping end = WSFLOW_UNWRAP(
        HillClimb(model, AllOnServer(4, ServerId(s)), {}, {}, &stats));
    (void)end;
    EXPECT_GE(stats.final_cost, best_cost - 1e-12);
    reached = std::min(reached, stats.final_cost);
  }
  EXPECT_NEAR(reached, best_cost, 1e-9);
}

TEST(HillClimbTest, MaxStepsBounds) {
  Workflow w = testing::SimpleLine(8, 20e6, 60648);
  Network n = MakeBusNetwork({1e9, 1e9, 1e9}, 1e6).value();
  CostModel model(w, n);
  LocalSearchOptions options;
  options.max_steps = 1;
  LocalSearchStats stats;
  Mapping end = WSFLOW_UNWRAP(
      HillClimb(model, AllOnServer(8, ServerId(0)), {}, options, &stats));
  EXPECT_LE(stats.steps, 1u);
  EXPECT_TRUE(end.IsTotal());
}

TEST(HillClimbTest, SwapsCanEscapeMovePlateaus) {
  // Sanity: enabling swaps never yields a worse local optimum than moves
  // alone from the same start.
  Workflow w = testing::SimpleLine(7, 20e6, 171136);
  Network n = MakeBusNetwork({1e9, 2e9}, 1e6).value();
  CostModel model(w, n);
  LocalSearchOptions moves_only;
  moves_only.use_swaps = false;
  LocalSearchStats s1, s2;
  (void)WSFLOW_UNWRAP(
      HillClimb(model, AllOnServer(7, ServerId(0)), {}, moves_only, &s1));
  (void)WSFLOW_UNWRAP(
      HillClimb(model, AllOnServer(7, ServerId(0)), {}, {}, &s2));
  EXPECT_LE(s2.final_cost, s1.final_cost + 1e-12);
}

TEST(HillClimbTest, RespectsConstraints) {
  Workflow w = testing::SimpleLine(4, 20e6, 60648);
  Network n = MakeBusNetwork({1e9, 1e9}, 1e7).value();
  CostModel model(w, n);
  DeploymentConstraints constraints;
  constraints.pinned.push_back({OperationId(0), ServerId(1)});
  LocalSearchOptions options;
  options.constraints = &constraints;

  Mapping start = AllOnServer(4, ServerId(1));
  Mapping end = WSFLOW_UNWRAP(HillClimb(model, start, {}, options));
  EXPECT_EQ(end.ServerOf(OperationId(0)), ServerId(1));
}

TEST(HillClimbTest, ViolatingStartRejected) {
  Workflow w = testing::SimpleLine(4);
  Network n = testing::SimpleBus(2);
  CostModel model(w, n);
  DeploymentConstraints constraints;
  constraints.pinned.push_back({OperationId(0), ServerId(1)});
  LocalSearchOptions options;
  options.constraints = &constraints;
  Mapping bad_start = AllOnServer(4, ServerId(0));
  EXPECT_TRUE(HillClimb(model, bad_start, {}, options)
                  .status()
                  .IsConstraintViolation());
}

TEST(HillClimbAlgorithmTest, RegistryRunIsTotalAndSeeded) {
  Workflow w = testing::SimpleLine(8, 20e6, 60648);
  Network n = MakeBusNetwork({1e9, 2e9, 3e9}, 1e7).value();
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  ctx.seed = 9;
  HillClimbAlgorithm algo;
  Mapping a = WSFLOW_UNWRAP(algo.Run(ctx));
  Mapping b = WSFLOW_UNWRAP(algo.Run(ctx));
  EXPECT_TRUE(a.IsTotal());
  EXPECT_TRUE(a == b);
}

TEST(HillClimbTest, EvaluationsCounted) {
  Workflow w = testing::SimpleLine(4);
  Network n = testing::SimpleBus(2);
  CostModel model(w, n);
  LocalSearchStats stats;
  (void)WSFLOW_UNWRAP(
      HillClimb(model, AllOnServer(4, ServerId(0)), {}, {}, &stats));
  EXPECT_GT(stats.evaluations, 0u);
}

}  // namespace
}  // namespace wsflow
