// Algebraic relationships between the paper's algorithms: the tie-resolver
// family differs from Fair Load *only* in tie handling, so when no ties can
// occur they must produce identical mappings; conversely, constructed ties
// must make them diverge.

#include <gtest/gtest.h>

#include "src/deploy/fair_load.h"
#include "src/deploy/fltr.h"
#include "src/deploy/fltr2.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

DeployContext MakeContext(const Workflow& w, const Network& n,
                          uint64_t seed = 1) {
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  ctx.seed = seed;
  return ctx;
}

/// A line workflow with strictly distinct cycle costs (no operation ties).
Workflow DistinctCyclesLine(size_t ops) {
  std::vector<double> cycles;
  for (size_t i = 0; i < ops; ++i) {
    cycles.push_back(10e6 + static_cast<double>(i) * 1.37e6);
  }
  std::vector<double> msgs(ops - 1, 60648);
  return MakeLineWorkflow("distinct", cycles, msgs).value();
}

TEST(EquivalenceTest, FltrEqualsFairLoadWithoutTies) {
  // With all cycle costs distinct, FLTR's tie group is always a singleton
  // and its gain function never fires: the mapping must equal Fair Load's,
  // whatever the random init.
  Workflow w = DistinctCyclesLine(13);
  Network n = MakeBusNetwork({1e9, 2.3e9, 3.1e9}, 1e7).value();
  Mapping fair =
      WSFLOW_UNWRAP(FairLoadAlgorithm().Run(MakeContext(w, n)));
  for (uint64_t seed : {1ull, 9ull, 77ull}) {
    Mapping fltr = WSFLOW_UNWRAP(FltrAlgorithm().Run(MakeContext(w, n, seed)));
    EXPECT_TRUE(fltr == fair) << "seed " << seed;
  }
}

TEST(EquivalenceTest, Fltr2EqualsFairLoadWithoutAnyTies) {
  // Distinct cycles *and* distinct server powers: neither tie group ever
  // has more than one element.
  Workflow w = DistinctCyclesLine(13);
  Network n = MakeBusNetwork({1.0e9, 2.3e9, 3.7e9}, 1e7).value();
  Mapping fair =
      WSFLOW_UNWRAP(FairLoadAlgorithm().Run(MakeContext(w, n)));
  Mapping fltr2 =
      WSFLOW_UNWRAP(Fltr2Algorithm().Run(MakeContext(w, n, 123)));
  EXPECT_TRUE(fltr2 == fair);
}

TEST(EquivalenceTest, TiesMakeFltrDiverge) {
  // All-equal cycles with large messages on a *heterogeneous* farm: the
  // strong server absorbs several consecutive assignments, so the gain
  // function can pull workflow neighbours onto it. FLTR (empty-init,
  // deterministic) must co-locate at least as many neighbouring pairs as
  // Fair Load's id-order placement, and strictly some.
  Workflow w = testing::SimpleLine(12, 10e6, 171136);
  Network n = MakeBusNetwork({3e9, 1e9, 1e9}, 1e6).value();
  Mapping fair =
      WSFLOW_UNWRAP(FairLoadAlgorithm().Run(MakeContext(w, n)));
  Mapping fltr = WSFLOW_UNWRAP(
      FltrAlgorithm(/*random_init=*/false).Run(MakeContext(w, n)));
  size_t fair_local = 0, fltr_local = 0;
  for (const Transition& t : w.transitions()) {
    if (fair.CoLocated(t.from, t.to)) ++fair_local;
    if (fltr.CoLocated(t.from, t.to)) ++fltr_local;
  }
  EXPECT_GE(fltr_local, fair_local);
  EXPECT_GT(fltr_local, 0u);
}

TEST(EquivalenceTest, RandomInitOnlyAffectsTies) {
  // Without ties the seed is irrelevant even for the merge algorithm's
  // base selection... but FLMME's veto can still use random neighbours, so
  // restrict the check to FLTR/FLTR2.
  Workflow w = DistinctCyclesLine(10);
  Network n = MakeBusNetwork({1.1e9, 2.2e9}, 1e8).value();
  Mapping a = WSFLOW_UNWRAP(FltrAlgorithm().Run(MakeContext(w, n, 1)));
  Mapping b = WSFLOW_UNWRAP(FltrAlgorithm().Run(MakeContext(w, n, 2)));
  EXPECT_TRUE(a == b);
  Mapping c = WSFLOW_UNWRAP(Fltr2Algorithm().Run(MakeContext(w, n, 1)));
  Mapping d = WSFLOW_UNWRAP(Fltr2Algorithm().Run(MakeContext(w, n, 2)));
  EXPECT_TRUE(c == d);
}

}  // namespace
}  // namespace wsflow
