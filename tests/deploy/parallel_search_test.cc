// Tests of the parallel multi-chain searches: the determinism contract
// (identical winners for any thread count), the truthfulness of the
// aggregated statistics, and the registry / portfolio wiring. Suite names
// start with "Parallel" so CI can select them for the TSan build with
// `ctest -R '^Parallel'`.

#include "src/deploy/parallel.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/deploy/algorithm.h"
#include "src/workflow/probability.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

ParallelSearchOptions SmallOptions(size_t chains, size_t threads) {
  ParallelSearchOptions options;
  options.chains = chains;
  options.threads = threads;
  options.total_iterations = 2000;
  options.exchange_rounds = 4;
  options.climb.max_steps = 50;
  return options;
}

TEST(ParallelRegistryTest, ParallelAlgorithmsRegistered) {
  RegisterBuiltinAlgorithms();
  AlgorithmRegistry& r = AlgorithmRegistry::Global();
  for (const char* name : {"annealing-par", "climb-par", "portfolio-par"}) {
    EXPECT_TRUE(r.Contains(name)) << name;
  }
  auto annealing = WSFLOW_UNWRAP(r.Create("annealing-par"));
  EXPECT_EQ(annealing->name(), "annealing-par");
  auto climb = WSFLOW_UNWRAP(r.Create("climb-par"));
  EXPECT_EQ(climb->name(), "climb-par");
}

TEST(ParallelAnnealingTest, DeterministicAcrossThreadCounts) {
  Workflow w = testing::SimpleLine(10, 20e6, 60648);
  Network n = testing::SimpleBus(4, 1e9, 100e6);
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  ctx.seed = 11;

  ParallelSearchStats stats1;
  ParallelSearchStats stats4;
  Mapping one_thread = WSFLOW_UNWRAP(
      ParallelAnnealingAlgorithm(SmallOptions(4, 1)).RunWithStats(ctx,
                                                                  &stats1));
  Mapping four_threads = WSFLOW_UNWRAP(
      ParallelAnnealingAlgorithm(SmallOptions(4, 4)).RunWithStats(ctx,
                                                                  &stats4));
  EXPECT_TRUE(one_thread == four_threads);
  EXPECT_EQ(stats1.best_cost, stats4.best_cost);
  EXPECT_EQ(stats1.winner_chain, stats4.winner_chain);
  EXPECT_EQ(stats1.proposals, stats4.proposals);
  EXPECT_EQ(stats1.accepted, stats4.accepted);
  EXPECT_EQ(stats1.exchanges, stats4.exchanges);

  // Repeating the run must reproduce the winner byte for byte.
  Mapping again = WSFLOW_UNWRAP(
      ParallelAnnealingAlgorithm(SmallOptions(4, 4)).Run(ctx));
  EXPECT_TRUE(again == one_thread);
}

TEST(ParallelAnnealingTest, DeterministicOnGraphWorkflow) {
  Workflow w = testing::AllDecisionGraph(50e6, 60648);
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  Network n = testing::SimpleBus(4, 1e9, 100e6);
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  ctx.profile = &profile;
  ctx.seed = 23;

  Mapping one_thread = WSFLOW_UNWRAP(
      ParallelAnnealingAlgorithm(SmallOptions(3, 1)).Run(ctx));
  Mapping four_threads = WSFLOW_UNWRAP(
      ParallelAnnealingAlgorithm(SmallOptions(3, 4)).Run(ctx));
  EXPECT_TRUE(one_thread == four_threads);
  EXPECT_TRUE(one_thread.IsTotal());
}

TEST(ParallelAnnealingTest, StatsAggregateAcrossChains) {
  Workflow w = testing::SimpleLine(10, 20e6, 60648);
  Network n = testing::SimpleBus(4, 1e9, 100e6);
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  ctx.seed = 5;

  ParallelSearchStats stats;
  Mapping m = WSFLOW_UNWRAP(
      ParallelAnnealingAlgorithm(SmallOptions(4, 2)).RunWithStats(ctx,
                                                                  &stats));
  EXPECT_TRUE(m.IsTotal());
  EXPECT_EQ(stats.chains, 4u);
  EXPECT_EQ(stats.threads, 2u);
  EXPECT_EQ(stats.rounds, 4u);
  // The total proposal budget is split exactly across the chains.
  EXPECT_EQ(stats.proposals, 2000u);
  EXPECT_GE(stats.accepted, 1u);
  EXPECT_LE(stats.accepted, stats.proposals);
  // Each chain binds once cold; adoption rebinds add to the full count.
  EXPECT_GE(stats.full_evaluations, 4u);
  // Every proposal is delta-scored (plus the per-chain start scores).
  EXPECT_GE(stats.delta_evaluations, stats.proposals);
  EXPECT_LT(stats.winner_chain, 4u);
  EXPECT_LE(stats.best_cost, stats.initial_cost);
  EXPECT_TRUE(std::isfinite(stats.best_cost));
}

TEST(ParallelAnnealingTest, BudgetSplitsAcrossUnevenChains) {
  Workflow w = testing::SimpleLine(8, 20e6, 60648);
  Network n = testing::SimpleBus(3, 1e9, 100e6);
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  ctx.seed = 3;

  ParallelSearchOptions options = SmallOptions(3, 2);
  options.total_iterations = 1000;  // not divisible by 3
  ParallelSearchStats stats;
  (void)WSFLOW_UNWRAP(
      ParallelAnnealingAlgorithm(options).RunWithStats(ctx, &stats));
  EXPECT_EQ(stats.proposals, 1000u);
}

TEST(ParallelAnnealingTest, SingleServerDegeneratesGracefully) {
  Workflow w = testing::SimpleLine(5);
  Network n = testing::SimpleBus(1);
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  ctx.seed = 1;
  ParallelSearchStats stats;
  Mapping m = WSFLOW_UNWRAP(
      ParallelAnnealingAlgorithm(SmallOptions(2, 2)).RunWithStats(ctx,
                                                                  &stats));
  EXPECT_TRUE(m.IsTotal());
  EXPECT_EQ(stats.proposals, 0u);  // no alternative servers to propose
}

TEST(ParallelClimbTest, DeterministicAcrossThreadCounts) {
  Workflow w = testing::SimpleLine(10, 20e6, 60648);
  Network n = testing::SimpleBus(4, 1e9, 100e6);
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  ctx.seed = 17;

  ParallelSearchStats stats1;
  ParallelSearchStats stats4;
  Mapping one_thread = WSFLOW_UNWRAP(
      ParallelHillClimbAlgorithm(SmallOptions(4, 1)).RunWithStats(ctx,
                                                                  &stats1));
  Mapping four_threads = WSFLOW_UNWRAP(
      ParallelHillClimbAlgorithm(SmallOptions(4, 4)).RunWithStats(ctx,
                                                                  &stats4));
  EXPECT_TRUE(one_thread == four_threads);
  EXPECT_EQ(stats1.best_cost, stats4.best_cost);
  EXPECT_EQ(stats1.winner_chain, stats4.winner_chain);
  EXPECT_EQ(stats1.steps, stats4.steps);
  EXPECT_EQ(stats1.evaluations, stats4.evaluations);
}

TEST(ParallelClimbTest, StatsAggregateAcrossRestarts) {
  Workflow w = testing::AllDecisionGraph(50e6, 60648);
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  Network n = testing::SimpleBus(4, 1e9, 100e6);
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  ctx.profile = &profile;
  ctx.seed = 7;

  ParallelSearchStats stats;
  Mapping m = WSFLOW_UNWRAP(
      ParallelHillClimbAlgorithm(SmallOptions(4, 2)).RunWithStats(ctx,
                                                                  &stats));
  EXPECT_TRUE(m.IsTotal());
  EXPECT_EQ(stats.chains, 4u);
  // One cold bind per restart; every candidate was delta-scored.
  EXPECT_EQ(stats.full_evaluations, 4u);
  EXPECT_GE(stats.evaluations, 1u);
  EXPECT_GE(stats.delta_evaluations, stats.evaluations);
  EXPECT_LE(stats.best_cost, stats.initial_cost);
}

TEST(ParallelClimbTest, MoreRestartsNeverLoseToFewer) {
  // Chain seeds are drawn sequentially from the context seed, so a K-chain
  // run's restart set is a superset of a 1-chain run's: with the reduction
  // keeping the minimum, more chains can only match or improve the winner.
  Workflow w = testing::SimpleLine(10, 20e6, 60648);
  Network n = WSFLOW_UNWRAP(MakeBusNetwork({1e9, 2e9, 4e9, 2e9}, 100e6));
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  ctx.seed = 29;

  ParallelSearchStats one;
  ParallelSearchStats six;
  (void)WSFLOW_UNWRAP(
      ParallelHillClimbAlgorithm(SmallOptions(1, 1)).RunWithStats(ctx, &one));
  (void)WSFLOW_UNWRAP(
      ParallelHillClimbAlgorithm(SmallOptions(6, 2)).RunWithStats(ctx, &six));
  EXPECT_LE(six.best_cost, one.best_cost);
}

TEST(ParallelPortfolioTest, PortfolioParRunsAndIsTotal) {
  RegisterBuiltinAlgorithms();
  Workflow w = testing::AllDecisionGraph(50e6, 60648);
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  Network n = testing::SimpleBus(3, 1e9, 100e6);
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  ctx.profile = &profile;
  ctx.seed = 2;
  Mapping m = WSFLOW_UNWRAP(RunAlgorithm("portfolio-par", ctx));
  EXPECT_TRUE(m.IsTotal());
}

}  // namespace
}  // namespace wsflow
