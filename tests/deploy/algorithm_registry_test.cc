#include "src/deploy/algorithm.h"

#include <gtest/gtest.h>

#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

TEST(RegistryTest, BuiltinsRegistered) {
  RegisterBuiltinAlgorithms();
  AlgorithmRegistry& r = AlgorithmRegistry::Global();
  for (const char* name :
       {"exhaustive", "random", "line-line", "line-line-nofix",
        "line-line-bidir", "line-line-bidir-nofix", "fair-load", "fltr",
        "fltr2", "fl-merge", "heavy-ops", "hill-climb", "annealing-par",
        "climb-par", "portfolio-par"}) {
    EXPECT_TRUE(r.Contains(name)) << name;
  }
}

TEST(RegistryTest, RegistrationIsIdempotent) {
  RegisterBuiltinAlgorithms();
  size_t before = AlgorithmRegistry::Global().Names().size();
  RegisterBuiltinAlgorithms();
  EXPECT_EQ(AlgorithmRegistry::Global().Names().size(), before);
}

TEST(RegistryTest, CreateReturnsNamedAlgorithm) {
  RegisterBuiltinAlgorithms();
  auto algo = WSFLOW_UNWRAP(AlgorithmRegistry::Global().Create("heavy-ops"));
  EXPECT_EQ(algo->name(), "heavy-ops");
}

TEST(RegistryTest, UnknownNameFails) {
  RegisterBuiltinAlgorithms();
  EXPECT_TRUE(
      AlgorithmRegistry::Global().Create("nope").status().IsNotFound());
}

TEST(RegistryTest, DuplicateRegistrationRejected) {
  RegisterBuiltinAlgorithms();
  Status st = AlgorithmRegistry::Global().Register(
      "fair-load", [] {
        return std::unique_ptr<DeploymentAlgorithm>(nullptr);
      });
  EXPECT_TRUE(st.IsAlreadyExists());
}

TEST(RegistryTest, NamesAreSorted) {
  RegisterBuiltinAlgorithms();
  std::vector<std::string> names = AlgorithmRegistry::Global().Names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(RunAlgorithmTest, RunsByName) {
  Workflow w = testing::SimpleLine(6);
  Network n = testing::SimpleBus(3);
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  Mapping m = WSFLOW_UNWRAP(RunAlgorithm("fair-load", ctx));
  EXPECT_TRUE(m.IsTotal());
}

TEST(RunAlgorithmTest, ChecksContext) {
  DeployContext ctx;  // null workflow/network
  EXPECT_TRUE(RunAlgorithm("fair-load", ctx).status().IsInvalidArgument());
}

TEST(RunAlgorithmTest, RejectsMismatchedProfile) {
  Workflow w = testing::SimpleLine(4);
  Network n = testing::SimpleBus(2);
  ExecutionProfile profile;  // wrong sizes
  profile.op_prob = {1.0};
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  ctx.profile = &profile;
  EXPECT_TRUE(RunAlgorithm("fair-load", ctx).status().IsInvalidArgument());
}

}  // namespace
}  // namespace wsflow
