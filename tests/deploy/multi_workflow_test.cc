#include "src/deploy/multi_workflow.h"

#include <gtest/gtest.h>

#include "src/deploy/graph_view.h"

#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

TEST(MultiWorkflowTest, EmptyBatchRejected) {
  Network n = testing::SimpleBus(2);
  EXPECT_TRUE(DeployMultipleWorkflows({}, n).status().IsInvalidArgument());
}

TEST(MultiWorkflowTest, NullWorkflowRejected) {
  Network n = testing::SimpleBus(2);
  EXPECT_TRUE(DeployMultipleWorkflows({nullptr}, n)
                  .status()
                  .IsInvalidArgument());
}

TEST(MultiWorkflowTest, ProfileCountMustMatch) {
  Workflow w = testing::SimpleLine(4);
  Network n = testing::SimpleBus(2);
  MultiWorkflowOptions options;
  options.profiles = {nullptr, nullptr};  // two profiles, one workflow
  EXPECT_TRUE(DeployMultipleWorkflows({&w}, n, options)
                  .status()
                  .IsInvalidArgument());
}

class MultiWorkflowStrategyTest
    : public ::testing::TestWithParam<MultiWorkflowStrategy> {};

TEST_P(MultiWorkflowStrategyTest, AllMappingsTotal) {
  Workflow w1 = testing::SimpleLine(6, 20e6);
  Workflow w2 = testing::SimpleLine(9, 10e6);
  Workflow w3 = testing::SimpleLine(3, 50e6);
  Network n = MakeBusNetwork({1e9, 2e9, 3e9}, 1e8).value();
  MultiWorkflowOptions options;
  options.strategy = GetParam();
  MultiWorkflowResult result = WSFLOW_UNWRAP(
      DeployMultipleWorkflows({&w1, &w2, &w3}, n, options));
  ASSERT_EQ(result.mappings.size(), 3u);
  EXPECT_TRUE(result.mappings[0].IsTotal());
  EXPECT_TRUE(result.mappings[1].IsTotal());
  EXPECT_TRUE(result.mappings[2].IsTotal());
  ASSERT_EQ(result.execution_times.size(), 3u);
  for (double t : result.execution_times) EXPECT_GT(t, 0.0);
}

TEST_P(MultiWorkflowStrategyTest, FairerThanIndependentGreedy) {
  // Deploying each workflow independently (ignoring the others' load)
  // piles everything onto the same servers; shared-state deployment must
  // produce a fairer combined load.
  Workflow w1 = testing::SimpleLine(8, 20e6);
  Workflow w2 = testing::SimpleLine(8, 20e6);
  Network n = MakeBusNetwork({1e9, 1e9}, 1e9).value();

  MultiWorkflowOptions options;
  options.strategy = GetParam();
  MultiWorkflowResult joint =
      WSFLOW_UNWRAP(DeployMultipleWorkflows({&w1, &w2}, n, options));

  // "Independent": both workflows entirely on server 0.
  std::vector<Mapping> naive{testing::AllOnServer(8, ServerId(0)),
                             testing::AllOnServer(8, ServerId(0))};
  double naive_penalty = CombinedTimePenalty({&w1, &w2}, naive, n, {});
  EXPECT_LT(joint.combined_time_penalty, naive_penalty);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, MultiWorkflowStrategyTest,
    ::testing::Values(MultiWorkflowStrategy::kJointFairLoad,
                      MultiWorkflowStrategy::kSequentialHeavyOps),
    [](const ::testing::TestParamInfo<MultiWorkflowStrategy>& info) {
      return info.param == MultiWorkflowStrategy::kJointFairLoad
                 ? "JointFairLoad"
                 : "SequentialHeavyOps";
    });

TEST(MultiWorkflowTest, JointFairLoadBalancesCombinedLoad) {
  // Two identical workflows on two identical servers: perfectly fair.
  Workflow w1 = testing::SimpleLine(4, 10e6);
  Workflow w2 = testing::SimpleLine(4, 10e6);
  Network n = testing::SimpleBus(2);
  MultiWorkflowOptions options;
  options.strategy = MultiWorkflowStrategy::kJointFairLoad;
  MultiWorkflowResult result =
      WSFLOW_UNWRAP(DeployMultipleWorkflows({&w1, &w2}, n, options));
  EXPECT_NEAR(result.combined_time_penalty, 0.0, 1e-9);
}

TEST(MultiWorkflowTest, GraphProfilesSupported) {
  Workflow g = testing::AllDecisionGraph();
  Workflow l = testing::SimpleLine(5);
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(g));
  Network n = testing::SimpleBus(3);
  MultiWorkflowOptions options;
  options.profiles = {&profile, nullptr};
  MultiWorkflowResult result =
      WSFLOW_UNWRAP(DeployMultipleWorkflows({&g, &l}, n, options));
  EXPECT_TRUE(result.mappings[0].IsTotal());
  EXPECT_TRUE(result.mappings[1].IsTotal());
}

TEST(MultiWorkflowTest, WeightsMustBeValid) {
  Workflow w1 = testing::SimpleLine(4);
  Workflow w2 = testing::SimpleLine(4);
  Network n = testing::SimpleBus(2);
  MultiWorkflowOptions options;
  options.weights = {1.0};  // two workflows, one weight
  EXPECT_TRUE(DeployMultipleWorkflows({&w1, &w2}, n, options)
                  .status()
                  .IsInvalidArgument());
  options.weights = {1.0, 0.0};
  EXPECT_TRUE(DeployMultipleWorkflows({&w1, &w2}, n, options)
                  .status()
                  .IsInvalidArgument());
  options.weights = {1.0, -2.0};
  EXPECT_TRUE(DeployMultipleWorkflows({&w1, &w2}, n, options)
                  .status()
                  .IsInvalidArgument());
}

TEST(MultiWorkflowTest, UnitWeightsMatchUnweightedExactly) {
  // weights = {1, 1, 1} must reproduce the unweighted deployment: same
  // mappings, penalties within 1e-9.
  Workflow w1 = testing::SimpleLine(6, 20e6);
  Workflow w2 = testing::SimpleLine(9, 10e6);
  Workflow w3 = testing::SimpleLine(3, 50e6);
  Network n = MakeBusNetwork({1e9, 2e9, 3e9}, 1e8).value();
  for (MultiWorkflowStrategy strategy :
       {MultiWorkflowStrategy::kJointFairLoad,
        MultiWorkflowStrategy::kSequentialHeavyOps}) {
    MultiWorkflowOptions plain;
    plain.strategy = strategy;
    MultiWorkflowOptions unit = plain;
    unit.weights = {1.0, 1.0, 1.0};
    MultiWorkflowResult a =
        WSFLOW_UNWRAP(DeployMultipleWorkflows({&w1, &w2, &w3}, n, plain));
    MultiWorkflowResult b =
        WSFLOW_UNWRAP(DeployMultipleWorkflows({&w1, &w2, &w3}, n, unit));
    ASSERT_EQ(a.mappings.size(), b.mappings.size());
    for (size_t i = 0; i < a.mappings.size(); ++i) {
      EXPECT_TRUE(a.mappings[i] == b.mappings[i]) << "workflow " << i;
      EXPECT_NEAR(a.execution_times[i], b.execution_times[i], 1e-9);
    }
    EXPECT_NEAR(a.combined_time_penalty, b.combined_time_penalty, 1e-9);
  }
}

TEST(MultiWorkflowTest, WeightedPenaltyCountsLoadsByWeight) {
  // Two identical 4-op lines pinned to opposite servers: unweighted the
  // farm is perfectly fair; at weights {3, 1} the imbalance is exactly one
  // unit load L = 4 * 10e6 / 1e9.
  Workflow w1 = testing::SimpleLine(4, 10e6);
  Workflow w2 = testing::SimpleLine(4, 10e6);
  Network n = testing::SimpleBus(2);
  std::vector<Mapping> pinned{testing::AllOnServer(4, ServerId(0)),
                              testing::AllOnServer(4, ServerId(1))};
  double unweighted = CombinedTimePenalty({&w1, &w2}, pinned, n, {});
  EXPECT_NEAR(unweighted, 0.0, 1e-12);
  double weighted =
      CombinedTimePenalty({&w1, &w2}, pinned, n, {}, {3.0, 1.0});
  EXPECT_NEAR(weighted, 4 * 10e6 / 1e9, 1e-12);
}

// Farm-load share of workflow `t` under the deployed mappings: its
// weighted per-server load (recomputed from the actual placements) over
// the whole farm's.
double FarmLoadShare(const std::vector<const Workflow*>& workflows,
                     const MultiWorkflowResult& result, const Network& n,
                     const std::vector<double>& weights, size_t t) {
  double own = 0, total = 0;
  for (size_t i = 0; i < workflows.size(); ++i) {
    WorkflowView view(*workflows[i], nullptr);
    double load = 0;
    for (const Operation& op : workflows[i]->operations()) {
      ServerId s = result.mappings[i].ServerOf(op.id());
      load += view.Cycles(op.id()) / n.server(s).power_hz();
    }
    total += weights[i] * load;
    if (i == t) own = weights[i] * load;
  }
  return own / total;
}

TEST(MultiWorkflowTest, DoublingAWeightNeverShrinksItsFarmLoadShare) {
  // The satellite property: doubling one tenant's QPS weight never
  // decreases its share of the deployed farm load, whichever strategy
  // placed it. Server powers stay within a factor sqrt(2) so the property
  // is required, not incidental, while the shares are still measured from
  // the real placements.
  Workflow w1 = testing::SimpleLine(6, 20e6);
  Workflow w2 = testing::SimpleLine(8, 10e6);
  Workflow w3 = testing::SimpleLine(4, 30e6);
  std::vector<const Workflow*> batch = {&w1, &w2, &w3};
  Network n = MakeBusNetwork({1e9, 1.2e9, 1.4e9}, 1e8).value();

  const std::vector<std::vector<double>> bases = {
      {1.0, 1.0, 1.0}, {0.5, 2.0, 1.0}, {4.0, 0.25, 1.5}};
  for (MultiWorkflowStrategy strategy :
       {MultiWorkflowStrategy::kJointFairLoad,
        MultiWorkflowStrategy::kSequentialHeavyOps}) {
    for (const std::vector<double>& base : bases) {
      for (size_t t = 0; t < batch.size(); ++t) {
        MultiWorkflowOptions before;
        before.strategy = strategy;
        before.weights = base;
        MultiWorkflowOptions after = before;
        after.weights[t] *= 2.0;

        MultiWorkflowResult rb =
            WSFLOW_UNWRAP(DeployMultipleWorkflows(batch, n, before));
        MultiWorkflowResult ra =
            WSFLOW_UNWRAP(DeployMultipleWorkflows(batch, n, after));
        double share_before =
            FarmLoadShare(batch, rb, n, before.weights, t);
        double share_after = FarmLoadShare(batch, ra, n, after.weights, t);
        EXPECT_GE(share_after, share_before - 1e-12)
            << "strategy " << static_cast<int>(strategy) << " base {"
            << base[0] << "," << base[1] << "," << base[2] << "} tenant "
            << t;
      }
    }
  }
}

TEST(MultiWorkflowTest, CombinedPenaltyIsNonNegative) {
  Workflow w1 = testing::SimpleLine(7, 30e6);
  Workflow w2 = testing::SimpleLine(2, 500e6);
  Network n = MakeBusNetwork({1e9, 3e9}, 1e7).value();
  for (MultiWorkflowStrategy strategy :
       {MultiWorkflowStrategy::kJointFairLoad,
        MultiWorkflowStrategy::kSequentialHeavyOps}) {
    MultiWorkflowOptions options;
    options.strategy = strategy;
    MultiWorkflowResult result =
        WSFLOW_UNWRAP(DeployMultipleWorkflows({&w1, &w2}, n, options));
    EXPECT_GE(result.combined_time_penalty, 0.0);
  }
}

}  // namespace
}  // namespace wsflow
