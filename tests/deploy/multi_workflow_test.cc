#include "src/deploy/multi_workflow.h"

#include <gtest/gtest.h>

#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

TEST(MultiWorkflowTest, EmptyBatchRejected) {
  Network n = testing::SimpleBus(2);
  EXPECT_TRUE(DeployMultipleWorkflows({}, n).status().IsInvalidArgument());
}

TEST(MultiWorkflowTest, NullWorkflowRejected) {
  Network n = testing::SimpleBus(2);
  EXPECT_TRUE(DeployMultipleWorkflows({nullptr}, n)
                  .status()
                  .IsInvalidArgument());
}

TEST(MultiWorkflowTest, ProfileCountMustMatch) {
  Workflow w = testing::SimpleLine(4);
  Network n = testing::SimpleBus(2);
  MultiWorkflowOptions options;
  options.profiles = {nullptr, nullptr};  // two profiles, one workflow
  EXPECT_TRUE(DeployMultipleWorkflows({&w}, n, options)
                  .status()
                  .IsInvalidArgument());
}

class MultiWorkflowStrategyTest
    : public ::testing::TestWithParam<MultiWorkflowStrategy> {};

TEST_P(MultiWorkflowStrategyTest, AllMappingsTotal) {
  Workflow w1 = testing::SimpleLine(6, 20e6);
  Workflow w2 = testing::SimpleLine(9, 10e6);
  Workflow w3 = testing::SimpleLine(3, 50e6);
  Network n = MakeBusNetwork({1e9, 2e9, 3e9}, 1e8).value();
  MultiWorkflowOptions options;
  options.strategy = GetParam();
  MultiWorkflowResult result = WSFLOW_UNWRAP(
      DeployMultipleWorkflows({&w1, &w2, &w3}, n, options));
  ASSERT_EQ(result.mappings.size(), 3u);
  EXPECT_TRUE(result.mappings[0].IsTotal());
  EXPECT_TRUE(result.mappings[1].IsTotal());
  EXPECT_TRUE(result.mappings[2].IsTotal());
  ASSERT_EQ(result.execution_times.size(), 3u);
  for (double t : result.execution_times) EXPECT_GT(t, 0.0);
}

TEST_P(MultiWorkflowStrategyTest, FairerThanIndependentGreedy) {
  // Deploying each workflow independently (ignoring the others' load)
  // piles everything onto the same servers; shared-state deployment must
  // produce a fairer combined load.
  Workflow w1 = testing::SimpleLine(8, 20e6);
  Workflow w2 = testing::SimpleLine(8, 20e6);
  Network n = MakeBusNetwork({1e9, 1e9}, 1e9).value();

  MultiWorkflowOptions options;
  options.strategy = GetParam();
  MultiWorkflowResult joint =
      WSFLOW_UNWRAP(DeployMultipleWorkflows({&w1, &w2}, n, options));

  // "Independent": both workflows entirely on server 0.
  std::vector<Mapping> naive{testing::AllOnServer(8, ServerId(0)),
                             testing::AllOnServer(8, ServerId(0))};
  double naive_penalty = CombinedTimePenalty({&w1, &w2}, naive, n, {});
  EXPECT_LT(joint.combined_time_penalty, naive_penalty);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, MultiWorkflowStrategyTest,
    ::testing::Values(MultiWorkflowStrategy::kJointFairLoad,
                      MultiWorkflowStrategy::kSequentialHeavyOps),
    [](const ::testing::TestParamInfo<MultiWorkflowStrategy>& info) {
      return info.param == MultiWorkflowStrategy::kJointFairLoad
                 ? "JointFairLoad"
                 : "SequentialHeavyOps";
    });

TEST(MultiWorkflowTest, JointFairLoadBalancesCombinedLoad) {
  // Two identical workflows on two identical servers: perfectly fair.
  Workflow w1 = testing::SimpleLine(4, 10e6);
  Workflow w2 = testing::SimpleLine(4, 10e6);
  Network n = testing::SimpleBus(2);
  MultiWorkflowOptions options;
  options.strategy = MultiWorkflowStrategy::kJointFairLoad;
  MultiWorkflowResult result =
      WSFLOW_UNWRAP(DeployMultipleWorkflows({&w1, &w2}, n, options));
  EXPECT_NEAR(result.combined_time_penalty, 0.0, 1e-9);
}

TEST(MultiWorkflowTest, GraphProfilesSupported) {
  Workflow g = testing::AllDecisionGraph();
  Workflow l = testing::SimpleLine(5);
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(g));
  Network n = testing::SimpleBus(3);
  MultiWorkflowOptions options;
  options.profiles = {&profile, nullptr};
  MultiWorkflowResult result =
      WSFLOW_UNWRAP(DeployMultipleWorkflows({&g, &l}, n, options));
  EXPECT_TRUE(result.mappings[0].IsTotal());
  EXPECT_TRUE(result.mappings[1].IsTotal());
}

TEST(MultiWorkflowTest, CombinedPenaltyIsNonNegative) {
  Workflow w1 = testing::SimpleLine(7, 30e6);
  Workflow w2 = testing::SimpleLine(2, 500e6);
  Network n = MakeBusNetwork({1e9, 3e9}, 1e7).value();
  for (MultiWorkflowStrategy strategy :
       {MultiWorkflowStrategy::kJointFairLoad,
        MultiWorkflowStrategy::kSequentialHeavyOps}) {
    MultiWorkflowOptions options;
    options.strategy = strategy;
    MultiWorkflowResult result =
        WSFLOW_UNWRAP(DeployMultipleWorkflows({&w1, &w2}, n, options));
    EXPECT_GE(result.combined_time_penalty, 0.0);
  }
}

}  // namespace
}  // namespace wsflow
