#include "src/deploy/branch_bound.h"

#include <gtest/gtest.h>

#include "src/cost/cost_model.h"
#include "src/deploy/exhaustive.h"
#include "src/exp/config.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

DeployContext MakeContext(const Workflow& w, const Network& n) {
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  return ctx;
}

TEST(BranchBoundTest, MatchesExhaustiveOnRandomInstances) {
  // The certified optimum must equal brute force's on every small
  // instance, across weights.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
    cfg.num_operations = 7;
    cfg.num_servers = 3;
    cfg.seed = seed;
    TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
    CostModel model(t.workflow, t.network);
    for (double weight : {0.0, 0.5, 1.0}) {
      DeployContext ctx = MakeContext(t.workflow, t.network);
      ctx.cost_options.execution_weight = weight;
      ctx.cost_options.fairness_weight = 1.0 - weight;
      Mapping exact = WSFLOW_UNWRAP(ExhaustiveAlgorithm().Run(ctx));
      Mapping bb = WSFLOW_UNWRAP(BranchBoundAlgorithm().Run(ctx));
      double exact_cost =
          model.Evaluate(exact, ctx.cost_options).value().combined;
      double bb_cost = model.Evaluate(bb, ctx.cost_options).value().combined;
      EXPECT_NEAR(bb_cost, exact_cost, exact_cost * 1e-9 + 1e-15)
          << "seed " << seed << " weight " << weight;
    }
  }
}

TEST(BranchBoundTest, MatchesExhaustiveOnLineNetworks) {
  // Multi-hop communication (no bus symmetry breaking) must stay exact.
  Workflow w = testing::SimpleLine(6, 20e6, 60648);
  Network n = MakeLineNetwork({1e9, 2e9, 1e9}, {1e7, 1e6}).value();
  CostModel model(w, n);
  DeployContext ctx = MakeContext(w, n);
  Mapping exact = WSFLOW_UNWRAP(ExhaustiveAlgorithm().Run(ctx));
  Mapping bb = WSFLOW_UNWRAP(BranchBoundAlgorithm().Run(ctx));
  EXPECT_NEAR(model.Evaluate(bb).value().combined,
              model.Evaluate(exact).value().combined, 1e-12);
}

TEST(BranchBoundTest, HandlesPaperScaleInstance) {
  // M=19, N=5 — the paper's configuration, far beyond exhaustive's reach
  // (5^19 ~ 1.9e13). Must certify an optimum within the node budget and
  // never be beaten by any heuristic.
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  cfg.fixed_bus_speed_bps = paperconst::kBus10Mbps;
  TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
  CostModel model(t.workflow, t.network);
  DeployContext ctx = MakeContext(t.workflow, t.network);
  BranchBoundAlgorithm bb;
  Mapping opt = WSFLOW_UNWRAP(bb.Run(ctx));
  double opt_cost = model.Evaluate(opt).value().combined;
  EXPECT_GT(bb.last_nodes(), 0u);
  for (const char* name : {"fair-load", "fltr2", "fl-merge", "heavy-ops"}) {
    ctx.seed = 3;
    Mapping m = WSFLOW_UNWRAP(RunAlgorithm(name, ctx));
    EXPECT_LE(opt_cost, model.Evaluate(m).value().combined + 1e-12) << name;
  }
}

TEST(BranchBoundTest, GraphWorkflowRejected) {
  Workflow w = testing::AllDecisionGraph();
  Network n = testing::SimpleBus(2);
  BranchBoundAlgorithm bb;
  EXPECT_TRUE(bb.Run(MakeContext(w, n)).status().IsFailedPrecondition());
}

TEST(BranchBoundTest, NodeBudgetEnforced) {
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  cfg.fixed_bus_speed_bps = paperconst::kBus100Mbps;
  TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 1));
  BranchBoundAlgorithm tiny(/*max_nodes=*/10);
  EXPECT_TRUE(tiny.Run(MakeContext(t.workflow, t.network))
                  .status()
                  .IsResourceExhausted());
}

TEST(BranchBoundTest, PrunesFarBelowExhaustive) {
  // The whole point: on M=12, N=4 the tree has 4^12 ~ 1.7e7 leaves; with
  // bounds and symmetry the search must explore far fewer nodes.
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  cfg.num_operations = 12;
  cfg.num_servers = 4;
  TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 2));
  BranchBoundAlgorithm bb;
  Mapping m = WSFLOW_UNWRAP(bb.Run(MakeContext(t.workflow, t.network)));
  EXPECT_TRUE(m.IsTotal());
  EXPECT_LT(bb.last_nodes(), 4'000'000u);
}

TEST(BranchBoundTest, SingleServer) {
  Workflow w = testing::SimpleLine(5);
  Network n = testing::SimpleBus(1);
  BranchBoundAlgorithm bb;
  Mapping m = WSFLOW_UNWRAP(bb.Run(MakeContext(w, n)));
  EXPECT_EQ(m.OperationsOn(ServerId(0)).size(), 5u);
}

TEST(BranchBoundTest, Registered) {
  RegisterBuiltinAlgorithms();
  EXPECT_TRUE(AlgorithmRegistry::Global().Contains("branch-bound"));
}

}  // namespace
}  // namespace wsflow
