// Tests for the tie-resolver family: FLTR, FLTR2 and FL-Merge-Messages'-Ends.

#include <gtest/gtest.h>

#include "src/cost/cost_model.h"
#include "src/deploy/fair_load.h"
#include "src/deploy/fl_merge.h"
#include "src/deploy/fltr.h"
#include "src/deploy/fltr2.h"
#include "src/deploy/graph_view.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

DeployContext MakeContext(const Workflow& w, const Network& n,
                          uint64_t seed = 1,
                          const ExecutionProfile* profile = nullptr) {
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  ctx.profile = profile;
  ctx.seed = seed;
  return ctx;
}

TEST(GraphViewTest, UnitProfileCyclesAndBits) {
  Workflow w = testing::SimpleLine(3, 10e6, 8000);
  WorkflowView view(w, nullptr);
  EXPECT_DOUBLE_EQ(view.Cycles(OperationId(0)), 10e6);
  EXPECT_DOUBLE_EQ(view.MessageBits(TransitionId(0)), 8000);
  EXPECT_DOUBLE_EQ(view.TotalCycles(), 30e6);
}

TEST(GraphViewTest, ProfileWeighting) {
  Workflow w = testing::AllDecisionGraph(10e6, 8000);
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  WorkflowView view(w, &profile);
  for (const Operation& op : w.operations()) {
    if (op.name() == "d") {
      EXPECT_DOUBLE_EQ(view.Cycles(op.id()), 7e6);
    }
  }
}

TEST(GraphViewTest, IncidentTransitionsAndNeighbors) {
  Workflow w = testing::SimpleLine(3);
  WorkflowView view(w, nullptr);
  std::vector<TransitionId> mid = view.IncidentTransitions(OperationId(1));
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_EQ(view.Neighbor(mid[0], OperationId(1)), OperationId(0));
  EXPECT_EQ(view.Neighbor(mid[1], OperationId(1)), OperationId(2));
  EXPECT_EQ(view.IncidentTransitions(OperationId(0)).size(), 1u);
}

TEST(GraphViewTest, GainCountsOnlyNeighborsOnServer) {
  Workflow w = testing::SimpleLine(3, 10e6, 500);
  WorkflowView view(w, nullptr);
  Mapping m(3);
  m.Assign(OperationId(0), ServerId(0));
  m.Assign(OperationId(2), ServerId(1));
  // op1's gain at s0 counts only the op0-op1 message.
  EXPECT_DOUBLE_EQ(view.GainAtServer(OperationId(1), ServerId(0), m), 500);
  EXPECT_DOUBLE_EQ(view.GainAtServer(OperationId(1), ServerId(1), m), 500);
  m.Assign(OperationId(2), ServerId(0));
  EXPECT_DOUBLE_EQ(view.GainAtServer(OperationId(1), ServerId(0), m), 1000);
}

TEST(IdealCyclesTest, ProportionalToPower) {
  Workflow w = testing::SimpleLine(4, 10e6);
  Network n;
  n.AddServer("a", 1e9);
  n.AddServer("b", 3e9);
  ASSERT_TRUE(n.SetBus(1e8).ok());
  WorkflowView view(w, nullptr);
  std::vector<double> ideal = IdealCycles(view, n);
  EXPECT_DOUBLE_EQ(ideal[0], 10e6);
  EXPECT_DOUBLE_EQ(ideal[1], 30e6);
}

template <typename Algo>
class TieResolverTest : public ::testing::Test {};

using TieResolverTypes =
    ::testing::Types<FltrAlgorithm, Fltr2Algorithm, FlMergeAlgorithm>;
TYPED_TEST_SUITE(TieResolverTest, TieResolverTypes);

TYPED_TEST(TieResolverTest, ProducesTotalMapping) {
  Workflow w = testing::SimpleLine(19);
  Network n = testing::SimpleBus(5);
  TypeParam algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_TRUE(m.IsTotal());
}

TYPED_TEST(TieResolverTest, DeterministicGivenSeed) {
  Workflow w = testing::SimpleLine(19);
  Network n = MakeBusNetwork({1e9, 2e9, 3e9, 2e9, 1e9}, 1e7).value();
  TypeParam algo;
  Mapping a = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n, 42)));
  Mapping b = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n, 42)));
  EXPECT_TRUE(a == b);
}

TYPED_TEST(TieResolverTest, GraphWorkflowSupported) {
  Workflow w = testing::AllDecisionGraph();
  ExecutionProfile profile = WSFLOW_UNWRAP(ComputeExecutionProfile(w));
  Network n = testing::SimpleBus(3);
  TypeParam algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n, 1, &profile)));
  EXPECT_TRUE(m.IsTotal());
}

template <typename Algo>
void ExpectLoadBalanceMatchesFairLoad() {
  // With every operation equal, tie resolution changes *which* operation
  // lands where, not how many: per-server loads must equal FairLoad's.
  // (FL-Merge is excluded: its big-message veto deliberately departs from
  // the fair counts.)
  Workflow w = testing::SimpleLine(12, 10e6, 8000);
  Network n = testing::SimpleBus(3);
  CostModel model(w, n);
  FairLoadAlgorithm fair;
  Algo algo;
  Mapping fl = WSFLOW_UNWRAP(fair.Run(MakeContext(w, n)));
  Mapping tr = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_NEAR(model.TimePenalty(tr), model.TimePenalty(fl), 1e-9);
}

TEST(FltrTest, LoadBalanceMatchesFairLoadOnUniformOps) {
  ExpectLoadBalanceMatchesFairLoad<FltrAlgorithm>();
}

TEST(Fltr2Test, LoadBalanceMatchesFairLoadOnUniformOps) {
  ExpectLoadBalanceMatchesFairLoad<Fltr2Algorithm>();
}

TEST(FltrTest, TieBreakPrefersNeighborOfPlacedOp) {
  // Equal-cost operations: after op placements accumulate, the gain
  // function must pull workflow-adjacent operations onto the same server,
  // reducing communication vs plain FairLoad on average.
  Workflow w = testing::SimpleLine(12, 10e6, 171136);
  Network n = MakeBusNetwork({1e9, 1e9, 1e9}, 1e6).value();
  CostModel model(w, n);
  FairLoadAlgorithm fair;
  FltrAlgorithm fltr(/*random_init=*/false);
  Mapping fl = WSFLOW_UNWRAP(fair.Run(MakeContext(w, n)));
  Mapping tr = WSFLOW_UNWRAP(fltr.Run(MakeContext(w, n)));
  double fl_exec = model.Evaluate(fl).value().execution_time;
  double tr_exec = model.Evaluate(tr).value().execution_time;
  EXPECT_LE(tr_exec, fl_exec + 1e-9);
}

TEST(Fltr2Test, SelectByGainPicksBestPair) {
  Workflow w = testing::SimpleLine(4, 10e6, 1000);
  Network n = testing::SimpleBus(2);
  WorkflowView view(w, nullptr);
  ServerLedger ledger(view, n);
  Mapping m(4);
  m.Assign(OperationId(0), ServerId(1));  // op0 placed on s1
  std::vector<OperationId> pending{OperationId(1), OperationId(2),
                                   OperationId(3)};
  TieSelection sel = SelectByGain(view, ledger, pending, m);
  // op1 next to placed op0 on s1 has gain 1000; everything else 0.
  EXPECT_EQ(pending[sel.pending_index], OperationId(1));
  EXPECT_EQ(sel.server, ServerId(1));
  EXPECT_DOUBLE_EQ(sel.gain, 1000);
}

TEST(Fltr2Test, ZeroGainStillSelectsFirstPair) {
  Workflow w = testing::SimpleLine(3, 10e6, 1000);
  Network n = testing::SimpleBus(2);
  WorkflowView view(w, nullptr);
  ServerLedger ledger(view, n);
  Mapping m(3);  // nothing placed: all gains zero
  std::vector<OperationId> pending{OperationId(0), OperationId(1),
                                   OperationId(2)};
  TieSelection sel = SelectByGain(view, ledger, pending, m);
  EXPECT_EQ(sel.pending_index, 0u);
  EXPECT_EQ(sel.server, ServerId(0));
}

TEST(FlMergeTest, BigMessageEndsMerged) {
  // One huge message dwarfing the rest: FLMME must co-locate its ends.
  std::vector<double> cycles(8, 10e6);
  std::vector<double> msgs(7, 1000);
  msgs[3] = 1e9;  // op4 -> op5 is enormous
  Workflow w = MakeLineWorkflow("big", cycles, msgs).value();
  Network n = MakeBusNetwork({1e9, 1e9, 1e9}, 1e6).value();
  FlMergeAlgorithm algo(/*random_init=*/false);
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_TRUE(m.IsTotal());
  EXPECT_TRUE(m.CoLocated(OperationId(3), OperationId(4)));
}

TEST(FlMergeTest, ImprovesExecutionOverFltr2OnSlowBus) {
  // The paper: FLMME trades fairness for execution time on slow buses.
  std::vector<double> cycles(10, 20e6);
  std::vector<double> msgs(9, 6984);
  msgs[2] = 171136;
  msgs[6] = 171136;
  Workflow w = MakeLineWorkflow("mixed", cycles, msgs).value();
  Network n = MakeBusNetwork({1e9, 2e9, 1e9}, 1e6).value();
  CostModel model(w, n);
  Fltr2Algorithm fltr2;
  FlMergeAlgorithm merge;
  double exec2 = 0, execm = 0;
  const int kSeeds = 10;
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    Mapping a = WSFLOW_UNWRAP(fltr2.Run(MakeContext(w, n, seed)));
    Mapping b = WSFLOW_UNWRAP(merge.Run(MakeContext(w, n, seed)));
    exec2 += model.Evaluate(a).value().execution_time;
    execm += model.Evaluate(b).value().execution_time;
  }
  EXPECT_LE(execm, exec2 + 1e-9);
}

TEST(FlMergeTest, NoMessagesDegeneratesToFltr2) {
  // Single-operation workflow has no messages: nothing is "big".
  Workflow w = testing::SimpleLine(1);
  Network n = testing::SimpleBus(2);
  FlMergeAlgorithm algo;
  Mapping m = WSFLOW_UNWRAP(algo.Run(MakeContext(w, n)));
  EXPECT_TRUE(m.IsTotal());
}

}  // namespace
}  // namespace wsflow
