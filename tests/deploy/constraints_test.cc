#include "src/deploy/constraints.h"

#include <gtest/gtest.h>

#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

using testing::AllOnServer;
using testing::RoundRobin;

class ConstraintsTest : public ::testing::Test {
 protected:
  ConstraintsTest()
      : w_(testing::SimpleLine(4, 1e9, 1e6)),          // 1 s per op at 1 GHz
        n_(MakeBusNetwork({1e9, 1e9}, 1e6).value()),   // 1 s per message
        model_(w_, n_) {}

  Workflow w_;
  Network n_;
  CostModel model_;
};

TEST_F(ConstraintsTest, EmptyConstraintsAlwaysPass) {
  DeploymentConstraints c;
  EXPECT_TRUE(c.empty());
  WSFLOW_EXPECT_OK(CheckConstraints(model_, RoundRobin(4, 2), c));
  EXPECT_DOUBLE_EQ(
      ConstraintViolation(model_, RoundRobin(4, 2), c).value(), 0.0);
}

TEST_F(ConstraintsTest, MaxExecutionTime) {
  DeploymentConstraints c;
  // All-on-one runs in 4 s; round-robin in 4 + 3 = 7 s.
  c.max_execution_time = 5.0;
  WSFLOW_EXPECT_OK(CheckConstraints(model_, AllOnServer(4, ServerId(0)), c));
  Status st = CheckConstraints(model_, RoundRobin(4, 2), c);
  EXPECT_TRUE(st.IsConstraintViolation());
  EXPECT_DOUBLE_EQ(ConstraintViolation(model_, RoundRobin(4, 2), c).value(),
                   2.0);
}

TEST_F(ConstraintsTest, MaxTimePenalty) {
  DeploymentConstraints c;
  c.max_time_penalty = 1.0;
  // All-on-one: penalty 2 s. Round-robin: 0.
  WSFLOW_EXPECT_OK(CheckConstraints(model_, RoundRobin(4, 2), c));
  EXPECT_TRUE(CheckConstraints(model_, AllOnServer(4, ServerId(0)), c)
                  .IsConstraintViolation());
  EXPECT_DOUBLE_EQ(
      ConstraintViolation(model_, AllOnServer(4, ServerId(0)), c).value(),
      1.0);
}

TEST_F(ConstraintsTest, MaxServerLoad) {
  DeploymentConstraints c;
  c.max_server_load = 3.0;
  WSFLOW_EXPECT_OK(CheckConstraints(model_, RoundRobin(4, 2), c));
  // All-on-one: load 4 s on server 0 -> excess 1.
  EXPECT_DOUBLE_EQ(
      ConstraintViolation(model_, AllOnServer(4, ServerId(0)), c).value(),
      1.0);
}

TEST_F(ConstraintsTest, PinnedPlacement) {
  DeploymentConstraints c;
  c.pinned.push_back({OperationId(2), ServerId(1)});
  EXPECT_FALSE(c.empty());
  Mapping m = AllOnServer(4, ServerId(0));
  EXPECT_TRUE(CheckConstraints(model_, m, c).IsConstraintViolation());
  m.Assign(OperationId(2), ServerId(1));
  WSFLOW_EXPECT_OK(CheckConstraints(model_, m, c));
}

TEST_F(ConstraintsTest, ForbiddenPlacement) {
  DeploymentConstraints c;
  c.forbidden.push_back({OperationId(0), ServerId(0)});
  EXPECT_TRUE(CheckConstraints(model_, AllOnServer(4, ServerId(0)), c)
                  .IsConstraintViolation());
  WSFLOW_EXPECT_OK(CheckConstraints(model_, AllOnServer(4, ServerId(1)), c));
}

TEST_F(ConstraintsTest, ViolationsAccumulate) {
  DeploymentConstraints c;
  c.pinned.push_back({OperationId(0), ServerId(1)});
  c.pinned.push_back({OperationId(1), ServerId(1)});
  c.forbidden.push_back({OperationId(2), ServerId(0)});
  Mapping m = AllOnServer(4, ServerId(0));
  // Two unpinned + one forbidden = 3.
  EXPECT_DOUBLE_EQ(ConstraintViolation(model_, m, c).value(), 3.0);
}

TEST_F(ConstraintsTest, ApplyPinsRewrites) {
  DeploymentConstraints c;
  c.pinned.push_back({OperationId(1), ServerId(1)});
  c.pinned.push_back({OperationId(3), ServerId(1)});
  Mapping m = AllOnServer(4, ServerId(0));
  ApplyPins(c, &m);
  EXPECT_EQ(m.ServerOf(OperationId(1)), ServerId(1));
  EXPECT_EQ(m.ServerOf(OperationId(3)), ServerId(1));
  EXPECT_EQ(m.ServerOf(OperationId(0)), ServerId(0));
}

TEST_F(ConstraintsTest, PartialMappingRejected) {
  DeploymentConstraints c;
  Mapping partial(4);
  EXPECT_FALSE(ConstraintViolation(model_, partial, c).ok());
}

}  // namespace
}  // namespace wsflow
