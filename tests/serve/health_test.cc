#include "src/serve/health.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace wsflow::serve {
namespace {

TEST(HealthTrackerTest, StartsAllHealthyWithATrivialMask) {
  HealthTracker tracker(4);
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(tracker.StateOf(ServerId(s)), ServerHealth::kHealthy);
  }
  EXPECT_TRUE(tracker.AliveMask().trivial());
  EXPECT_EQ(tracker.epoch(), 0u);
}

TEST(HealthTrackerTest, CrashTakesTheServerDownImmediately) {
  HealthTracker tracker(4);
  tracker.ReportCrash(ServerId(2));
  EXPECT_EQ(tracker.StateOf(ServerId(2)), ServerHealth::kDown);
  ServerMask mask = tracker.AliveMask();
  EXPECT_FALSE(mask.trivial());
  EXPECT_FALSE(mask.alive(ServerId(2)));
  EXPECT_EQ(mask.num_alive(), 3u);
  EXPECT_EQ(tracker.epoch(), 1u);
}

TEST(HealthTrackerTest, SoftFailuresDebounceThroughSuspected) {
  HealthOptions options;
  options.failure_threshold = 3;
  HealthTracker tracker(2, options);
  ServerId s(0);
  tracker.ReportFailure(s);  // streak 1: healthy -> suspected
  EXPECT_EQ(tracker.StateOf(s), ServerHealth::kSuspected);
  EXPECT_TRUE(tracker.AliveMask().trivial()) << "suspected is still alive";
  tracker.ReportFailure(s);  // streak 2
  EXPECT_EQ(tracker.StateOf(s), ServerHealth::kSuspected);
  tracker.ReportFailure(s);  // streak 3: suspected -> down
  EXPECT_EQ(tracker.StateOf(s), ServerHealth::kDown);
  EXPECT_FALSE(tracker.AliveMask().alive(s));
}

TEST(HealthTrackerTest, SuccessClearsSuspicion) {
  HealthTracker tracker(2);
  ServerId s(1);
  tracker.ReportFailure(s);
  tracker.ReportFailure(s);
  tracker.ReportSuccess(s);  // back to healthy, streak cleared
  EXPECT_EQ(tracker.StateOf(s), ServerHealth::kHealthy);
  tracker.ReportFailure(s);
  tracker.ReportFailure(s);
  EXPECT_EQ(tracker.StateOf(s), ServerHealth::kSuspected)
      << "the old streak must not carry over";
}

TEST(HealthTrackerTest, RecoveryWalksBackThroughRecovering) {
  HealthOptions options;
  options.recovery_threshold = 2;
  HealthTracker tracker(3, options);
  ServerId s(0);
  tracker.ReportCrash(s);
  uint64_t epoch_down = tracker.epoch();
  tracker.ReportRecovery(s);
  EXPECT_EQ(tracker.StateOf(s), ServerHealth::kRecovering);
  EXPECT_TRUE(tracker.AliveMask().trivial())
      << "a recovering server takes load again";
  EXPECT_GT(tracker.epoch(), epoch_down);
  tracker.ReportSuccess(s);
  EXPECT_EQ(tracker.StateOf(s), ServerHealth::kRecovering);
  tracker.ReportSuccess(s);
  EXPECT_EQ(tracker.StateOf(s), ServerHealth::kHealthy);
}

TEST(HealthTrackerTest, RelapseDuringRecoveryGoesStraightDown) {
  HealthTracker tracker(2);
  ServerId s(0);
  tracker.ReportCrash(s);
  tracker.ReportRecovery(s);
  tracker.ReportFailure(s);
  EXPECT_EQ(tracker.StateOf(s), ServerHealth::kDown);
}

TEST(HealthTrackerTest, RecoveryOfAnAliveServerIsANoOp) {
  HealthTracker tracker(2);
  tracker.ReportRecovery(ServerId(0));
  EXPECT_EQ(tracker.StateOf(ServerId(0)), ServerHealth::kHealthy);
  EXPECT_EQ(tracker.epoch(), 0u);
}

TEST(HealthTrackerTest, EpochBumpsOnlyWhenTheAliveSetChanges) {
  HealthTracker tracker(3);
  tracker.ReportFailure(ServerId(0));  // healthy -> suspected: still alive
  tracker.ReportSuccess(ServerId(0));  // suspected -> healthy
  EXPECT_EQ(tracker.epoch(), 0u);
  tracker.ReportCrash(ServerId(1));
  EXPECT_EQ(tracker.epoch(), 1u);
  tracker.ReportCrash(ServerId(1));  // already down: no change
  EXPECT_EQ(tracker.epoch(), 1u);
  tracker.ReportRecovery(ServerId(1));
  EXPECT_EQ(tracker.epoch(), 2u);
}

TEST(HealthTrackerTest, ToStringCountsStates) {
  HealthTracker tracker(4);
  tracker.ReportCrash(ServerId(0));
  tracker.ReportFailure(ServerId(1));
  EXPECT_EQ(tracker.ToString(),
            "healthy=2 suspected=1 down=1 recovering=0 epoch=1");
}

TEST(HealthTrackerTest, ConcurrentReportsKeepTheInvariants) {
  // TSan target: hammer the tracker from many threads; afterwards every
  // cell must be in a legal state and the mask consistent with it.
  HealthTracker tracker(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&tracker, t] {
      for (int i = 0; i < 500; ++i) {
        ServerId s(static_cast<uint32_t>((t + i) % 8));
        switch (i % 5) {
          case 0: tracker.ReportFailure(s); break;
          case 1: tracker.ReportSuccess(s); break;
          case 2: tracker.ReportCrash(s); break;
          case 3: tracker.ReportRecovery(s); break;
          default: (void)tracker.AliveMask(); break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ServerMask mask = tracker.AliveMask();
  for (uint32_t s = 0; s < 8; ++s) {
    bool down = tracker.StateOf(ServerId(s)) == ServerHealth::kDown;
    EXPECT_EQ(mask.alive(ServerId(s)), !down);
  }
}

}  // namespace
}  // namespace wsflow::serve
