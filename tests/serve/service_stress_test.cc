// Multi-threaded stress of the deployment service: many producers over a
// deliberately tiny bounded queue, workers racing on the shared cache and
// metrics. Asserts the service's core delivery guarantee — every accepted
// request resolves to exactly one response, none lost, none duplicated —
// and that cache hits replay the cold payload byte-for-byte. Run under
// -fsanitize=thread in CI to certify the queue/cache/metrics locking.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/serve/service.h"
#include "tests/testing/test_util.h"

namespace wsflow::serve {
namespace {

struct SharedInstance {
  std::shared_ptr<const Workflow> workflow;
  std::shared_ptr<const Network> network;
};

std::vector<SharedInstance> MakeInstancePool(size_t n) {
  std::vector<SharedInstance> pool;
  pool.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pool.push_back(
        {std::make_shared<Workflow>(testing::SimpleLine(4 + i)),
         std::make_shared<Network>(testing::SimpleBus(3))});
  }
  return pool;
}

TEST(ServeStressTest, NoLostOrDuplicatedResponses) {
  constexpr size_t kProducers = 8;
  constexpr size_t kPerProducer = 150;
  constexpr size_t kInstances = 6;

  ServiceOptions options;
  options.num_threads = 4;
  options.queue_capacity = 8;  // small on purpose: force backpressure
  options.cache_capacity = 32;
  options.cache_shards = 4;
  DeploymentService service(options);
  WSFLOW_ASSERT_OK(service.Start());

  std::vector<SharedInstance> pool = MakeInstancePool(kInstances);
  std::atomic<uint64_t> rejections{0};
  std::vector<std::vector<std::future<DeployResponse>>> futures(kProducers);
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      futures[p].reserve(kPerProducer);
      for (size_t i = 0; i < kPerProducer; ++i) {
        const SharedInstance& inst = pool[(p + i) % kInstances];
        for (;;) {
          DeployRequest req;
          req.workflow = inst.workflow;
          req.network = inst.network;
          req.algorithm = "heavy-ops";
          Result<std::future<DeployResponse>> f =
              service.Submit(std::move(req));
          if (f.ok()) {
            futures[p].push_back(std::move(*f));
            break;
          }
          ASSERT_TRUE(f.status().IsResourceExhausted())
              << f.status().ToString();
          rejections.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();

  // Exactly one response per accepted request, all successful. A lost
  // request would hang here (futures never resolve); a duplicated
  // response would have thrown inside promise::set_value.
  size_t responses = 0;
  for (auto& per_producer : futures) {
    for (auto& f : per_producer) {
      DeployResponse resp = f.get();
      WSFLOW_ASSERT_OK(resp.status);
      EXPECT_TRUE(resp.mapping.IsTotal());
      ++responses;
    }
  }
  EXPECT_EQ(responses, kProducers * kPerProducer);

  service.Stop();
  MetricsSnapshot snap = service.metrics().Snapshot();
  EXPECT_EQ(snap.submitted, kProducers * kPerProducer);
  EXPECT_EQ(snap.completed, kProducers * kPerProducer);
  EXPECT_EQ(snap.cache_hits + snap.cache_misses,
            kProducers * kPerProducer);
  EXPECT_EQ(snap.rejected_queue_full,
            rejections.load(std::memory_order_relaxed));
  // Six distinct fingerprints over 1200 requests: overwhelmingly hits.
  EXPECT_GE(snap.cache_hits, snap.cache_misses);
}

TEST(ServeStressTest, CacheHitsAreByteIdenticalUnderConcurrency) {
  constexpr size_t kProducers = 8;
  constexpr size_t kPerProducer = 60;
  constexpr size_t kInstances = 4;

  ServiceOptions options;
  options.num_threads = 4;
  options.queue_capacity = 16;
  DeploymentService service(options);
  WSFLOW_ASSERT_OK(service.Start());

  std::vector<SharedInstance> pool = MakeInstancePool(kInstances);
  std::vector<std::vector<std::pair<size_t, std::future<DeployResponse>>>>
      futures(kProducers);
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = 0; i < kPerProducer; ++i) {
        size_t which = (p * kPerProducer + i) % kInstances;
        for (;;) {
          DeployRequest req;
          req.workflow = pool[which].workflow;
          req.network = pool[which].network;
          req.algorithm = "fair-load";
          Result<std::future<DeployResponse>> f =
              service.Submit(std::move(req));
          if (f.ok()) {
            futures[p].emplace_back(which, std::move(*f));
            break;
          }
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();

  // Every response for one instance — cold or hit, any worker — must
  // render the identical payload bytes.
  std::unordered_map<size_t, std::string> reference;
  size_t hits = 0;
  for (auto& per_producer : futures) {
    for (auto& [which, f] : per_producer) {
      DeployResponse resp = f.get();
      WSFLOW_ASSERT_OK(resp.status);
      if (resp.cache_hit) ++hits;
      std::string payload = resp.CanonicalPayload();
      auto [it, inserted] = reference.emplace(which, payload);
      if (!inserted) {
        EXPECT_EQ(it->second, payload) << "instance " << which;
      }
    }
  }
  EXPECT_GT(hits, 0u);
  service.Stop();
}

}  // namespace
}  // namespace wsflow::serve
