#include "src/serve/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace wsflow::serve {
namespace {

TEST(ServeMetricsTest, FreshSnapshotIsAllZero) {
  ServeMetrics metrics;
  MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.submitted, 0u);
  EXPECT_EQ(snap.cache_hits, 0u);
  EXPECT_EQ(snap.cache_misses, 0u);
  EXPECT_EQ(snap.hit_latency.count, 0u);
  EXPECT_DOUBLE_EQ(snap.HitRate(), 0.0);
}

TEST(ServeMetricsTest, CountersAccumulate) {
  ServeMetrics metrics;
  metrics.RecordSubmitted();
  metrics.RecordSubmitted();
  metrics.RecordRejected();
  metrics.RecordDeadlineExceeded();
  metrics.RecordFailure();
  metrics.RecordCompleted();
  MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.submitted, 2u);
  EXPECT_EQ(snap.rejected_queue_full, 1u);
  EXPECT_EQ(snap.deadline_exceeded, 1u);
  EXPECT_EQ(snap.failures, 1u);
  EXPECT_EQ(snap.completed, 1u);
}

TEST(ServeMetricsTest, HitRate) {
  ServeMetrics metrics;
  metrics.RecordHit(0.001);
  metrics.RecordHit(0.001);
  metrics.RecordHit(0.001);
  metrics.RecordMiss(0.010);
  MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.cache_hits, 3u);
  EXPECT_EQ(snap.cache_misses, 1u);
  EXPECT_DOUBLE_EQ(snap.HitRate(), 0.75);
}

TEST(ServeMetricsTest, LatencyPercentiles) {
  ServeMetrics metrics;
  // 1..100 ms: p50 = 50.5ms (interpolated), p99 = 99.01ms, max = 100ms.
  for (int i = 1; i <= 100; ++i) {
    metrics.RecordMiss(static_cast<double>(i) / 1000.0);
  }
  MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.miss_latency.count, 100u);
  EXPECT_NEAR(snap.miss_latency.mean, 0.0505, 1e-9);
  EXPECT_NEAR(snap.miss_latency.p50, 0.0505, 1e-9);
  EXPECT_NEAR(snap.miss_latency.p95, 0.09505, 1e-9);
  EXPECT_NEAR(snap.miss_latency.p99, 0.09901, 1e-9);
  EXPECT_NEAR(snap.miss_latency.max, 0.100, 1e-12);
}

TEST(ServeMetricsTest, QueueWaitTrackedSeparately) {
  ServeMetrics metrics;
  metrics.RecordQueueWait(0.002);
  MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.queue_wait.count, 1u);
  EXPECT_DOUBLE_EQ(snap.queue_wait.p50, 0.002);
  EXPECT_EQ(snap.hit_latency.count, 0u);
}

TEST(ServeMetricsTest, ReportMentionsEverySection) {
  ServeMetrics metrics;
  metrics.RecordSubmitted();
  metrics.RecordHit(0.0001);
  metrics.RecordMiss(0.01);
  std::string report = metrics.Snapshot().ToString();
  EXPECT_NE(report.find("hit-rate"), std::string::npos);
  EXPECT_NE(report.find("p95"), std::string::npos);
  EXPECT_NE(report.find("queue wait"), std::string::npos);
  EXPECT_NE(report.find("submitted=1"), std::string::npos);
}

TEST(ServeMetricsTest, ConcurrentRecordingIsConsistent) {
  ServeMetrics metrics;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metrics] {
      for (int i = 0; i < kPerThread; ++i) {
        metrics.RecordSubmitted();
        if (i % 2 == 0) {
          metrics.RecordHit(0.001);
        } else {
          metrics.RecordMiss(0.002);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.submitted, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(snap.cache_hits + snap.cache_misses,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(snap.hit_latency.count + snap.miss_latency.count,
            static_cast<size_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace wsflow::serve
