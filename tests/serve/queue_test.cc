#include "src/serve/queue.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "tests/testing/test_util.h"

namespace wsflow::serve {
namespace {

TEST(ServeQueueTest, FifoOrder) {
  BoundedQueue<int> q(4);
  WSFLOW_EXPECT_OK(q.TryPush(1));
  WSFLOW_EXPECT_OK(q.TryPush(2));
  WSFLOW_EXPECT_OK(q.TryPush(3));
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 3);
}

TEST(ServeQueueTest, BackpressureWhenFull) {
  BoundedQueue<int> q(2);
  WSFLOW_EXPECT_OK(q.TryPush(1));
  WSFLOW_EXPECT_OK(q.TryPush(2));
  Status st = q.TryPush(3);
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_EQ(q.size(), 2u);
  // Popping frees a slot.
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));
  WSFLOW_EXPECT_OK(q.TryPush(3));
}

TEST(ServeQueueTest, LvaluePushKeepsItemOnFailure) {
  BoundedQueue<std::string> q(1);
  std::string a = "first";
  WSFLOW_EXPECT_OK(q.TryPush(a));
  std::string b = "second";
  Status st = q.TryPush(b);
  EXPECT_TRUE(st.IsResourceExhausted());
  EXPECT_EQ(b, "second");  // untouched, caller can retry
}

TEST(ServeQueueTest, CloseRejectsPushesButDrains) {
  BoundedQueue<int> q(4);
  WSFLOW_EXPECT_OK(q.TryPush(7));
  q.Close();
  EXPECT_TRUE(q.closed());
  Status st = q.TryPush(8);
  EXPECT_TRUE(st.IsFailedPrecondition()) << st.ToString();
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));  // accepted item still poppable
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(q.Pop(&out));  // drained + closed
}

TEST(ServeQueueTest, CloseWakesBlockedConsumers) {
  BoundedQueue<int> q(4);
  std::thread consumer([&q] {
    int out = 0;
    EXPECT_FALSE(q.Pop(&out));
  });
  // Give the consumer a chance to block, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
}

TEST(ServeQueueTest, TryPopNonBlocking) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.TryPop().has_value());
  WSFLOW_EXPECT_OK(q.TryPush(5));
  std::optional<int> out = q.TryPop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, 5);
}

TEST(ServeQueueTest, ManyProducersOneConsumerLosesNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(8);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int item = p * kPerProducer + i;
        while (!q.TryPush(item).ok()) std::this_thread::yield();
      }
    });
  }
  std::vector<bool> seen(kProducers * kPerProducer, false);
  int received = 0;
  while (received < kProducers * kPerProducer) {
    int out = -1;
    ASSERT_TRUE(q.Pop(&out));
    ASSERT_GE(out, 0);
    ASSERT_LT(out, kProducers * kPerProducer);
    EXPECT_FALSE(seen[out]) << "duplicate item " << out;
    seen[out] = true;
    ++received;
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace wsflow::serve
