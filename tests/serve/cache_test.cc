#include "src/serve/cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace wsflow::serve {
namespace {

Fingerprint Key(uint64_t i) {
  // Distinct hi values spread keys across shards deterministically.
  return Fingerprint{i * 0x9E3779B97F4A7C15ull + 1, i};
}

CacheEntry EntryWithCost(double combined) {
  CacheEntry e;
  e.cost.combined = combined;
  return e;
}

TEST(ServeCacheTest, MissThenHit) {
  ResultCache cache({.capacity = 8, .shards = 2});
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);
  cache.Insert(Key(1), EntryWithCost(1.5));
  auto entry = cache.Lookup(Key(1));
  ASSERT_NE(entry, nullptr);
  EXPECT_DOUBLE_EQ(entry->cost.combined, 1.5);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ServeCacheTest, InsertRefreshesExistingKey) {
  ResultCache cache({.capacity = 8, .shards = 1});
  cache.Insert(Key(1), EntryWithCost(1.0));
  cache.Insert(Key(1), EntryWithCost(2.0));
  EXPECT_EQ(cache.size(), 1u);
  auto entry = cache.Lookup(Key(1));
  ASSERT_NE(entry, nullptr);
  EXPECT_DOUBLE_EQ(entry->cost.combined, 2.0);
}

TEST(ServeCacheTest, EvictsLeastRecentlyUsed) {
  // One shard of capacity 2: inserting a third key evicts the LRU one.
  ResultCache cache({.capacity = 2, .shards = 1});
  cache.Insert(Key(1), EntryWithCost(1));
  cache.Insert(Key(2), EntryWithCost(2));
  ASSERT_NE(cache.Lookup(Key(1)), nullptr);  // 1 is now most recent
  cache.Insert(Key(3), EntryWithCost(3));    // evicts 2
  EXPECT_NE(cache.Lookup(Key(1)), nullptr);
  EXPECT_EQ(cache.Lookup(Key(2)), nullptr);
  EXPECT_NE(cache.Lookup(Key(3)), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ServeCacheTest, CapacityIsRespectedAcrossManyInserts) {
  ResultCache cache({.capacity = 16, .shards = 4});
  for (uint64_t i = 0; i < 1000; ++i) {
    cache.Insert(Key(i), EntryWithCost(static_cast<double>(i)));
  }
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_GT(cache.size(), 0u);
}

TEST(ServeCacheTest, ShardCountClampedToCapacity) {
  ResultCache cache({.capacity = 2, .shards = 64});
  EXPECT_LE(cache.num_shards(), 2u);
  EXPECT_GE(cache.capacity(), 2u);
}

TEST(ServeCacheTest, ClearDropsEverything) {
  ResultCache cache({.capacity = 8, .shards = 2});
  cache.Insert(Key(1), EntryWithCost(1));
  cache.Insert(Key(2), EntryWithCost(2));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);
}

TEST(ServeCacheTest, EntryOutlivesEviction) {
  ResultCache cache({.capacity = 1, .shards = 1});
  cache.Insert(Key(1), EntryWithCost(1.25));
  auto held = cache.Lookup(Key(1));
  ASSERT_NE(held, nullptr);
  cache.Insert(Key(2), EntryWithCost(2));  // evicts key 1
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);
  EXPECT_DOUBLE_EQ(held->cost.combined, 1.25);  // still valid
}

TEST(ServeCacheTest, ConcurrentReadersAndWriters) {
  ResultCache cache({.capacity = 64, .shards = 8});
  constexpr int kThreads = 8;
  constexpr uint64_t kKeys = 32;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int round = 0; round < 200; ++round) {
        uint64_t k = static_cast<uint64_t>((round * (t + 1)) % kKeys);
        if ((round + t) % 3 == 0) {
          cache.Insert(Key(k), EntryWithCost(static_cast<double>(k)));
        } else if (auto e = cache.Lookup(Key(k))) {
          EXPECT_DOUBLE_EQ(e->cost.combined, static_cast<double>(k));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(cache.size(), cache.capacity());
}

}  // namespace
}  // namespace wsflow::serve
