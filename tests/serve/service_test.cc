#include "src/serve/service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>

#include "src/cost/cost_model.h"
#include "src/deploy/algorithm.h"
#include "tests/testing/test_util.h"

namespace wsflow::serve {
namespace {

DeployRequest MakeRequest(size_t ops = 6, size_t servers = 3,
                          const std::string& algorithm = "heavy-ops") {
  DeployRequest req;
  req.workflow = std::make_shared<Workflow>(testing::SimpleLine(ops));
  req.network = std::make_shared<Network>(testing::SimpleBus(servers));
  req.algorithm = algorithm;
  return req;
}

ServiceOptions SmallService(size_t threads = 2) {
  ServiceOptions options;
  options.num_threads = threads;
  options.queue_capacity = 16;
  options.cache_capacity = 64;
  options.cache_shards = 4;
  return options;
}

TEST(ServeServiceTest, AnswersMatchDirectAlgorithmRun) {
  DeploymentService service(SmallService());
  WSFLOW_ASSERT_OK(service.Start());
  DeployRequest req = MakeRequest();
  // Keep handles for the reference computation before the move.
  auto workflow = req.workflow;
  auto network = req.network;
  auto future = WSFLOW_UNWRAP(service.Submit(std::move(req)));
  DeployResponse resp = future.get();
  WSFLOW_ASSERT_OK(resp.status);
  EXPECT_FALSE(resp.cache_hit);

  DeployContext ctx;
  ctx.workflow = workflow.get();
  ctx.network = network.get();
  Mapping expected = WSFLOW_UNWRAP(RunAlgorithm("heavy-ops", ctx));
  EXPECT_TRUE(resp.mapping == expected);
  CostModel model(*workflow, *network);
  CostBreakdown cost = WSFLOW_UNWRAP(model.Evaluate(expected));
  EXPECT_DOUBLE_EQ(resp.cost.combined, cost.combined);
}

TEST(ServeServiceTest, SecondIdenticalRequestHitsTheCache) {
  DeploymentService service(SmallService());
  WSFLOW_ASSERT_OK(service.Start());
  DeployResponse cold =
      WSFLOW_UNWRAP(service.Submit(MakeRequest())).get();
  WSFLOW_ASSERT_OK(cold.status);
  EXPECT_FALSE(cold.cache_hit);

  DeployResponse hot = WSFLOW_UNWRAP(service.Submit(MakeRequest())).get();
  WSFLOW_ASSERT_OK(hot.status);
  EXPECT_TRUE(hot.cache_hit);

  MetricsSnapshot snap = service.metrics().Snapshot();
  EXPECT_EQ(snap.cache_hits, 1u);
  EXPECT_EQ(snap.cache_misses, 1u);
  EXPECT_EQ(snap.completed, 2u);
}

TEST(ServeServiceTest, CacheHitPayloadIsByteIdenticalToColdPayload) {
  DeploymentService service(SmallService());
  WSFLOW_ASSERT_OK(service.Start());
  DeployResponse cold =
      WSFLOW_UNWRAP(service.Submit(MakeRequest())).get();
  DeployResponse hot = WSFLOW_UNWRAP(service.Submit(MakeRequest())).get();
  ASSERT_TRUE(hot.cache_hit);
  EXPECT_EQ(cold.CanonicalPayload(), hot.CanonicalPayload());
}

TEST(ServeServiceTest, GraphWorkflowComputesProfileOnColdPath) {
  DeploymentService service(SmallService());
  WSFLOW_ASSERT_OK(service.Start());
  DeployRequest req;
  req.workflow = std::make_shared<Workflow>(testing::AllDecisionGraph());
  req.network = std::make_shared<Network>(testing::SimpleBus(3));
  req.algorithm = "heavy-ops";
  DeployResponse resp = WSFLOW_UNWRAP(service.Submit(std::move(req))).get();
  WSFLOW_ASSERT_OK(resp.status);
  EXPECT_TRUE(resp.mapping.IsTotal());
}

TEST(ServeServiceTest, ExpiredDeadlineSkipsExecution) {
  DeploymentService service(SmallService());
  WSFLOW_ASSERT_OK(service.Start());
  DeployRequest req = MakeRequest();
  req.deadline = ServiceClock::now() - std::chrono::milliseconds(1);
  DeployResponse resp = WSFLOW_UNWRAP(service.Submit(std::move(req))).get();
  EXPECT_TRUE(resp.status.IsDeadlineExceeded()) << resp.status.ToString();
  MetricsSnapshot snap = service.metrics().Snapshot();
  EXPECT_EQ(snap.deadline_exceeded, 1u);
  // The algorithm never ran: neither hit nor miss was recorded.
  EXPECT_EQ(snap.cache_hits + snap.cache_misses, 0u);
}

TEST(ServeServiceTest, FullQueueRejectsWithResourceExhausted) {
  ServiceOptions options = SmallService();
  options.queue_capacity = 2;
  DeploymentService service(options);
  // Not started: nothing drains the queue while we fill it.
  auto f1 = WSFLOW_UNWRAP(service.Submit(MakeRequest()));
  auto f2 = WSFLOW_UNWRAP(service.Submit(MakeRequest(7)));
  Result<std::future<DeployResponse>> rejected =
      service.Submit(MakeRequest(8));
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted())
      << rejected.status().ToString();
  MetricsSnapshot snap = service.metrics().Snapshot();
  EXPECT_EQ(snap.submitted, 2u);
  EXPECT_EQ(snap.rejected_queue_full, 1u);

  // Accepted requests are still answered at shutdown.
  service.Stop();
  WSFLOW_EXPECT_OK(f1.get().status);
  WSFLOW_EXPECT_OK(f2.get().status);
}

TEST(ServeServiceTest, SubmitValidatesRequest) {
  DeploymentService service(SmallService());
  DeployRequest no_workflow;
  no_workflow.network = std::make_shared<Network>(testing::SimpleBus(2));
  EXPECT_TRUE(service.Submit(std::move(no_workflow))
                  .status()
                  .IsInvalidArgument());

  DeployRequest unknown = MakeRequest();
  unknown.algorithm = "no-such-algorithm";
  EXPECT_TRUE(service.Submit(std::move(unknown)).status().IsNotFound());
}

TEST(ServeServiceTest, AlgorithmFailureSurfacesInResponse) {
  DeploymentService service(SmallService());
  WSFLOW_ASSERT_OK(service.Start());
  // Exhaustive refuses the 5^19 mapping space with ResourceExhausted.
  DeployRequest req = MakeRequest(19, 5, "exhaustive");
  DeployResponse resp = WSFLOW_UNWRAP(service.Submit(std::move(req))).get();
  EXPECT_TRUE(resp.status.IsResourceExhausted()) << resp.status.ToString();
  MetricsSnapshot snap = service.metrics().Snapshot();
  EXPECT_EQ(snap.failures, 1u);
  EXPECT_EQ(snap.completed, 0u);
}

TEST(ServeServiceTest, FailedRunsAreNotCached) {
  DeploymentService service(SmallService());
  WSFLOW_ASSERT_OK(service.Start());
  DeployResponse first =
      WSFLOW_UNWRAP(service.Submit(MakeRequest(19, 5, "exhaustive"))).get();
  EXPECT_FALSE(first.status.ok());
  DeployResponse second =
      WSFLOW_UNWRAP(service.Submit(MakeRequest(19, 5, "exhaustive"))).get();
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(service.metrics().Snapshot().cache_misses, 2u);
}

TEST(ServeServiceTest, StartTwiceFails) {
  DeploymentService service(SmallService(1));
  WSFLOW_ASSERT_OK(service.Start());
  EXPECT_TRUE(service.Start().IsFailedPrecondition());
  service.Stop();
  EXPECT_TRUE(service.Start().IsFailedPrecondition());
}

TEST(ServeServiceTest, SubmitAfterStopFails) {
  DeploymentService service(SmallService(1));
  WSFLOW_ASSERT_OK(service.Start());
  service.Stop();
  Result<std::future<DeployResponse>> r = service.Submit(MakeRequest());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsFailedPrecondition());
}

TEST(ServeServiceTest, HonorsRequestWeightsInEvaluation) {
  DeploymentService service(SmallService());
  WSFLOW_ASSERT_OK(service.Start());
  DeployRequest req = MakeRequest();
  req.cost_options.execution_weight = 1.0;
  req.cost_options.fairness_weight = 0.0;
  auto workflow = req.workflow;
  auto network = req.network;
  DeployResponse resp = WSFLOW_UNWRAP(service.Submit(std::move(req))).get();
  WSFLOW_ASSERT_OK(resp.status);
  // With w_f = 0 the combined cost equals the execution time.
  EXPECT_DOUBLE_EQ(resp.cost.combined, resp.cost.execution_time);
}

}  // namespace
}  // namespace wsflow::serve
