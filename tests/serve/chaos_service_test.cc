#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "src/deploy/algorithm.h"
#include "src/serve/health.h"
#include "src/serve/service.h"
#include "src/sim/faults.h"
#include "tests/testing/test_util.h"

namespace wsflow::serve {
namespace {

DeployRequest MakeRequest(size_t ops = 6, size_t servers = 3,
                          const std::string& algorithm = "heavy-ops") {
  DeployRequest req;
  req.workflow = std::make_shared<Workflow>(testing::SimpleLine(ops));
  req.network = std::make_shared<Network>(testing::SimpleBus(servers));
  req.algorithm = algorithm;
  return req;
}

ServiceOptions ChurnService(std::shared_ptr<HealthTracker> health,
                            size_t threads = 2) {
  ServiceOptions options;
  options.num_threads = threads;
  options.queue_capacity = 32;
  options.cache_capacity = 64;
  options.cache_shards = 4;
  options.health = std::move(health);
  return options;
}

DeployResponse Ask(DeploymentService& service, size_t ops = 6,
                   size_t servers = 3) {
  return WSFLOW_UNWRAP(service.Submit(MakeRequest(ops, servers))).get();
}

TEST(ChaosServiceTest, HealthyTrackerServesExactlyLikeNoTracker) {
  auto health = std::make_shared<HealthTracker>(3);
  DeploymentService with(ChurnService(health));
  DeploymentService without(ChurnService(nullptr));
  WSFLOW_ASSERT_OK(with.Start());
  WSFLOW_ASSERT_OK(without.Start());
  DeployResponse a = Ask(with);
  DeployResponse b = Ask(without);
  WSFLOW_ASSERT_OK(a.status);
  EXPECT_FALSE(a.degraded);
  EXPECT_FALSE(a.repaired);
  EXPECT_EQ(a.CanonicalPayload(), b.CanonicalPayload());
}

TEST(ChaosServiceTest, CrashServesStaleDegradedThenRepairedFromCache) {
  auto health = std::make_shared<HealthTracker>(3);
  DeploymentService service(ChurnService(health));
  WSFLOW_ASSERT_OK(service.Start());

  DeployResponse cold = Ask(service);
  WSFLOW_ASSERT_OK(cold.status);
  ASSERT_FALSE(cold.degraded);

  // Kill the server hosting the first operation: the cached mapping no
  // longer validates against the surviving subnetwork.
  ServerId victim = cold.mapping.ServerOf(OperationId(0));
  health->ReportCrash(victim);

  DeployResponse stale = Ask(service);
  ASSERT_TRUE(stale.status.ok()) << "degraded answers keep status OK: "
                                 << stale.status.ToString();
  EXPECT_TRUE(stale.degraded);
  EXPECT_FALSE(stale.repaired);
  EXPECT_TRUE(stale.mapping == cold.mapping) << "stale = last good";

  DeployResponse healed = Ask(service);
  WSFLOW_ASSERT_OK(healed.status);
  EXPECT_TRUE(healed.cache_hit);
  EXPECT_FALSE(healed.degraded);
  EXPECT_TRUE(healed.repaired);
  for (uint32_t i = 0; i < 6; ++i) {
    EXPECT_NE(healed.mapping.ServerOf(OperationId(i)), victim);
  }

  MetricsSnapshot snap = service.metrics().Snapshot();
  EXPECT_EQ(snap.degraded, 1u);
  EXPECT_EQ(snap.repairs, 1u);
  EXPECT_EQ(snap.repair_failures, 0u);
}

TEST(ChaosServiceTest, SurvivingCachedMappingIsRecostedNotDegraded) {
  auto health = std::make_shared<HealthTracker>(3);
  DeploymentService service(ChurnService(health));
  WSFLOW_ASSERT_OK(service.Start());

  // Two operations over three servers: at least one server is unused, so
  // its crash leaves the cached mapping routable (a bus network keeps
  // every surviving pair connected).
  DeployResponse cold = Ask(service, /*ops=*/2);
  WSFLOW_ASSERT_OK(cold.status);
  ServerId unused(0);
  for (uint32_t s = 0; s < 3; ++s) {
    if (cold.mapping.OperationsOn(ServerId(s)).empty()) {
      unused = ServerId(s);
      break;
    }
  }
  health->ReportCrash(unused);

  DeployResponse resp = Ask(service, /*ops=*/2);
  WSFLOW_ASSERT_OK(resp.status);
  EXPECT_FALSE(resp.degraded);
  EXPECT_FALSE(resp.repaired);
  EXPECT_TRUE(resp.mapping == cold.mapping);
}

TEST(ChaosServiceTest, RecoveryFallsBackToTheFullHealthEntry) {
  auto health = std::make_shared<HealthTracker>(3);
  DeploymentService service(ChurnService(health));
  WSFLOW_ASSERT_OK(service.Start());

  DeployResponse cold = Ask(service);
  ServerId victim = cold.mapping.ServerOf(OperationId(0));
  health->ReportCrash(victim);
  (void)Ask(service);  // degraded + synchronous repair
  DeployResponse repaired = Ask(service);
  EXPECT_TRUE(repaired.repaired);

  // The server comes back: the mask turns trivial and the original
  // full-health entry answers again, untouched by the churn.
  health->ReportRecovery(victim);
  DeployResponse back = Ask(service);
  WSFLOW_ASSERT_OK(back.status);
  EXPECT_TRUE(back.cache_hit);
  EXPECT_FALSE(back.degraded);
  EXPECT_FALSE(back.repaired);
  EXPECT_EQ(back.CanonicalPayload(), cold.CanonicalPayload());
}

TEST(ChaosServiceTest, MismatchedTrackerSizeServesUnmasked) {
  auto health = std::make_shared<HealthTracker>(8);  // requests use 3
  DeploymentService service(ChurnService(health));
  WSFLOW_ASSERT_OK(service.Start());
  health->ReportCrash(ServerId(1));

  DeployResponse resp = Ask(service);
  WSFLOW_ASSERT_OK(resp.status);
  EXPECT_FALSE(resp.degraded);
  EXPECT_FALSE(resp.repaired);
}

TEST(ChaosServiceTest, ColdRequestUnderChurnAvoidsDownServers) {
  auto health = std::make_shared<HealthTracker>(4);
  DeploymentService service(ChurnService(health));
  WSFLOW_ASSERT_OK(service.Start());
  health->ReportCrash(ServerId(2));

  DeployResponse resp = Ask(service, /*ops=*/8, /*servers=*/4);
  WSFLOW_ASSERT_OK(resp.status);
  EXPECT_FALSE(resp.degraded) << "a cold run has no stale answer to serve";
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_NE(resp.mapping.ServerOf(OperationId(i)), ServerId(2));
  }
}

TEST(ChaosServiceTest, DeadlineShedReportsTimeInQueue) {
  DeploymentService service(ChurnService(nullptr));
  WSFLOW_ASSERT_OK(service.Start());
  DeployRequest req = MakeRequest();
  req.deadline = ServiceClock::now() - std::chrono::seconds(1);
  DeployResponse resp =
      WSFLOW_UNWRAP(service.Submit(std::move(req))).get();
  ASSERT_TRUE(resp.status.IsDeadlineExceeded());
  EXPECT_NE(resp.status.message().find("queued"), std::string::npos)
      << resp.status.message();
  EXPECT_GE(resp.queue_wait_s, 0.0);
  MetricsSnapshot snap = service.metrics().Snapshot();
  EXPECT_EQ(snap.deadline_exceeded, 1u);
}

// The chaos acceptance bar: a seeded churn run answers every request, and
// the answer transcript is byte-identical whatever the worker count.
std::string ChurnTranscript(size_t num_threads) {
  FaultScheduleOptions fopts;
  fopts.seed = 17;
  fopts.horizon_s = 100.0;
  fopts.crashes = 2;  // ceil(8/4) on the 8-server farm
  Network farm = testing::SimpleBus(8);
  FaultSchedule schedule =
      WSFLOW_UNWRAP(FaultSchedule::Generate(farm, fopts));
  FaultTimeline timeline(schedule);

  auto health = std::make_shared<HealthTracker>(8);
  DeploymentService service(ChurnService(health, num_threads));
  WSFLOW_EXPECT_OK(service.Start());

  std::ostringstream transcript;
  size_t unanswered = 0;
  constexpr size_t kRequests = 24;
  for (size_t i = 0; i < kRequests; ++i) {
    double t = (i + 1) * fopts.horizon_s / kRequests;
    for (const FaultEvent& e : timeline.AdvanceTo(t)) {
      if (e.kind == FaultKind::kCrash) health->ReportCrash(e.server);
      if (e.kind == FaultKind::kRecover) health->ReportRecovery(e.server);
    }
    auto future = service.Submit(MakeRequest(/*ops=*/10, /*servers=*/8));
    if (!future.ok()) {
      ++unanswered;
      continue;
    }
    DeployResponse resp = future->get();
    transcript << "req " << i << " ok=" << resp.status.ok()
               << " degraded=" << resp.degraded
               << " repaired=" << resp.repaired << "\n"
               << resp.CanonicalPayload() << "\n";
  }
  EXPECT_EQ(unanswered, 0u) << "threads=" << num_threads;
  return transcript.str();
}

TEST(ChaosServiceTest, SeededChurnRunIsByteIdenticalAcrossThreadCounts) {
  std::string one = ChurnTranscript(1);
  std::string two = ChurnTranscript(2);
  std::string four = ChurnTranscript(4);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
  EXPECT_NE(one.find("ok=1"), std::string::npos);
}

}  // namespace
}  // namespace wsflow::serve
