#include "src/serve/fingerprint.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/serve/request.h"
#include "tests/testing/test_util.h"

namespace wsflow::serve {
namespace {

DeployRequest MakeRequest(size_t ops = 5, size_t servers = 3) {
  DeployRequest req;
  req.workflow = std::make_shared<Workflow>(testing::SimpleLine(ops));
  req.network = std::make_shared<Network>(testing::SimpleBus(servers));
  req.algorithm = "heavy-ops";
  return req;
}

TEST(ServeFingerprintTest, DeterministicForEqualRequests) {
  DeployRequest a = MakeRequest();
  DeployRequest b = MakeRequest();
  EXPECT_EQ(RequestFingerprint(a), RequestFingerprint(b));
}

TEST(ServeFingerprintTest, LogicallyEqualObjectsFingerprintEqually) {
  // Two independently built but identical workflows digest equally because
  // the digest goes through the canonical XML serialization.
  Workflow w1 = testing::SimpleLine(7);
  Workflow w2 = testing::SimpleLine(7);
  EXPECT_EQ(WorkflowDigest(w1), WorkflowDigest(w2));
  Network n1 = testing::SimpleBus(4);
  Network n2 = testing::SimpleBus(4);
  EXPECT_EQ(NetworkDigest(n1), NetworkDigest(n2));
}

TEST(ServeFingerprintTest, SensitiveToEveryKeyComponent) {
  DeployRequest base = MakeRequest();
  Fingerprint fp = RequestFingerprint(base);

  DeployRequest different_workflow = MakeRequest(/*ops=*/6);
  EXPECT_NE(RequestFingerprint(different_workflow), fp);

  DeployRequest different_network = MakeRequest(5, /*servers=*/4);
  EXPECT_NE(RequestFingerprint(different_network), fp);

  DeployRequest different_algorithm = MakeRequest();
  different_algorithm.algorithm = "fair-load";
  EXPECT_NE(RequestFingerprint(different_algorithm), fp);

  DeployRequest different_weights = MakeRequest();
  different_weights.cost_options.execution_weight = 0.9;
  different_weights.cost_options.fairness_weight = 0.1;
  EXPECT_NE(RequestFingerprint(different_weights), fp);

  DeployRequest different_seed = MakeRequest();
  different_seed.seed = 99;
  EXPECT_NE(RequestFingerprint(different_seed), fp);
}

TEST(ServeFingerprintTest, DeadlineDoesNotPerturbTheKey) {
  // The deadline changes delivery, never the answer — two requests that
  // differ only in deadline must share a cache line.
  DeployRequest a = MakeRequest();
  DeployRequest b = MakeRequest();
  b.deadline = ServiceClock::now() + std::chrono::seconds(5);
  EXPECT_EQ(RequestFingerprint(a), RequestFingerprint(b));
}

TEST(ServeFingerprintTest, PrecomputedDigestsMatchComputed) {
  DeployRequest computed = MakeRequest();
  DeployRequest precomputed = MakeRequest();
  precomputed.workflow_digest = WorkflowDigest(*precomputed.workflow);
  precomputed.network_digest = NetworkDigest(*precomputed.network);
  EXPECT_EQ(RequestFingerprint(computed), RequestFingerprint(precomputed));
}

TEST(ServeFingerprintTest, DigestsAreNeverZero) {
  // 0 is the "not precomputed" sentinel in DeployRequest.
  EXPECT_NE(WorkflowDigest(testing::SimpleLine(1)), 0u);
  EXPECT_NE(NetworkDigest(testing::SimpleBus(1)), 0u);
}

TEST(ServeFingerprintTest, ToHexRendersBothWords) {
  Fingerprint fp{0x0123456789ABCDEFull, 0xFEDCBA9876543210ull};
  EXPECT_EQ(fp.ToHex(), "fedcba98765432100123456789abcdef");
  EXPECT_EQ(Fingerprint{}.ToHex(), std::string(32, '0'));
}

TEST(ServeFingerprintTest, Fnv1a64MatchesReferenceVector) {
  // Standard FNV-1a test vectors (offset basis as seed).
  constexpr uint64_t kOffset = 0xCBF29CE484222325ull;
  EXPECT_EQ(Fnv1a64("", kOffset), kOffset);
  EXPECT_EQ(Fnv1a64("a", kOffset), 0xAF63DC4C8601EC8Cull);
  EXPECT_EQ(Fnv1a64("foobar", kOffset), 0x85944171F73967E8ull);
}

}  // namespace
}  // namespace wsflow::serve
