#include "src/exp/sampling.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/deploy/exhaustive.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

TEST(SamplingTest, SmallSpaceEnumeratedExactly) {
  Workflow w = testing::SimpleLine(3, 20e6, 60648);  // 2^3 = 8 mappings
  Network n = MakeBusNetwork({1e9, 2e9}, 1e7).value();
  CostModel model(w, n);
  SamplingOptions options;
  options.samples = 100;
  SampleBest best = WSFLOW_UNWRAP(SampleSolutionSpace(model, options));
  EXPECT_TRUE(best.exhaustive);
  EXPECT_EQ(best.evaluated, 8u);

  // The combined best must agree with the exhaustive algorithm's optimum.
  DeployContext ctx;
  ctx.workflow = &w;
  ctx.network = &n;
  Mapping opt = WSFLOW_UNWRAP(ExhaustiveAlgorithm().Run(ctx));
  EXPECT_NEAR(best.best_combined, model.Evaluate(opt).value().combined,
              1e-12);
  EXPECT_TRUE(best.best_combined_mapping.IsTotal());
}

TEST(SamplingTest, PerObjectiveBestsCanComeFromDifferentMappings) {
  Workflow w = testing::SimpleLine(4, 20e6, 171136);
  Network n = MakeBusNetwork({1e9, 1e9}, 1e6).value();
  CostModel model(w, n);
  SamplingOptions options;
  options.samples = 100;  // 16 < 100: exhaustive
  SampleBest best = WSFLOW_UNWRAP(SampleSolutionSpace(model, options));
  // Best execution: all co-located (no messages). Best penalty: balanced.
  Mapping packed = testing::AllOnServer(4, ServerId(0));
  EXPECT_NEAR(best.best_execution_time,
              model.Evaluate(packed).value().execution_time, 1e-12);
  EXPECT_NEAR(best.best_time_penalty, 0.0, 1e-12);
}

TEST(SamplingTest, LargeSpaceSamples) {
  Workflow w = testing::SimpleLine(19, 20e6, 60648);
  Network n = MakeBusNetwork({1e9, 2e9, 3e9, 2e9, 1e9}, 1e7).value();
  CostModel model(w, n);
  SamplingOptions options;
  options.samples = 2000;
  options.seed = 3;
  SampleBest best = WSFLOW_UNWRAP(SampleSolutionSpace(model, options));
  EXPECT_FALSE(best.exhaustive);
  EXPECT_EQ(best.evaluated, 2000u);
  EXPECT_GT(best.best_execution_time, 0.0);
  EXPECT_LE(best.best_combined,
            0.5 * best.best_execution_time + 0.5 * best.best_time_penalty +
                1e9);  // sanity: finite
}

TEST(SamplingTest, MoreSamplesNeverWorse) {
  Workflow w = testing::SimpleLine(10, 20e6, 60648);
  Network n = MakeBusNetwork({1e9, 2e9, 3e9}, 1e7).value();
  CostModel model(w, n);
  SamplingOptions small;
  small.samples = 200;
  small.seed = 9;
  SamplingOptions large;
  large.samples = 2000;
  large.seed = 9;  // same stream: the first 200 draws coincide
  SampleBest a = WSFLOW_UNWRAP(SampleSolutionSpace(model, small));
  SampleBest b = WSFLOW_UNWRAP(SampleSolutionSpace(model, large));
  EXPECT_LE(b.best_combined, a.best_combined + 1e-12);
  EXPECT_LE(b.best_execution_time, a.best_execution_time + 1e-12);
  EXPECT_LE(b.best_time_penalty, a.best_time_penalty + 1e-12);
}

TEST(SamplingTest, ZeroBudgetRejected) {
  Workflow w = testing::SimpleLine(3);
  Network n = testing::SimpleBus(2);
  CostModel model(w, n);
  SamplingOptions options;
  options.samples = 0;
  EXPECT_TRUE(
      SampleSolutionSpace(model, options).status().IsInvalidArgument());
}

TEST(DeviationTest, Percentages) {
  EXPECT_DOUBLE_EQ(DeviationPct(110, 100), 10.0);
  EXPECT_DOUBLE_EQ(DeviationPct(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(DeviationPct(90, 100), 0.0);  // better than best: clamp
  EXPECT_DOUBLE_EQ(DeviationPct(0, 0), 0.0);
  EXPECT_TRUE(std::isinf(DeviationPct(1, 0)));
}

TEST(DeviationTest, AccumulateTracksRangeRegret) {
  // Ranges: execution [100, 200], penalty [10, 20]. Regret is normalized
  // by the sampled range.
  SampleBest best;
  best.best_execution_time = 100;
  best.worst_execution_time = 200;
  best.best_time_penalty = 10;
  best.worst_time_penalty = 20;
  QualityDeviation record;
  AccumulateDeviation({110, 10}, best, &record);   // 10%, 0%
  AccumulateDeviation({105, 12}, best, &record);   // 5%, 20%
  AccumulateDeviation({100, 11}, best, &record);   // 0%, 10%
  EXPECT_EQ(record.trials, 3u);
  EXPECT_DOUBLE_EQ(record.worst_execution_pct, 10.0);
  EXPECT_DOUBLE_EQ(record.worst_penalty_pct, 20.0);
  EXPECT_NEAR(record.mean_execution_pct, 5.0, 1e-12);
  EXPECT_NEAR(record.mean_penalty_pct, 10.0, 1e-12);
}

TEST(DeviationTest, DegenerateRangeIsZero) {
  SampleBest best;
  best.best_execution_time = 100;
  best.worst_execution_time = 100;  // all samples identical
  best.best_time_penalty = 0;
  best.worst_time_penalty = 0;
  QualityDeviation record;
  AccumulateDeviation({150, 5}, best, &record);
  EXPECT_DOUBLE_EQ(record.worst_execution_pct, 0.0);
  EXPECT_DOUBLE_EQ(record.worst_penalty_pct, 0.0);
}

TEST(SamplingTest, WorstTracksAboveBest) {
  Workflow w = testing::SimpleLine(4, 20e6, 171136);
  Network n = MakeBusNetwork({1e9, 1e9}, 1e6).value();
  CostModel model(w, n);
  SamplingOptions options;
  options.samples = 100;
  SampleBest best = WSFLOW_UNWRAP(SampleSolutionSpace(model, options));
  EXPECT_GE(best.worst_execution_time, best.best_execution_time);
  EXPECT_GE(best.worst_time_penalty, best.best_time_penalty);
  EXPECT_GT(best.worst_execution_time, best.best_execution_time);
}

}  // namespace
}  // namespace wsflow
