#include "src/exp/config.h"

#include <gtest/gtest.h>

#include "src/workflow/validate.h"
#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

TEST(PaperConstantsTest, MessageSizesAreBytesTimesEight) {
  EXPECT_DOUBLE_EQ(paperconst::kSimpleMessageBits, 6984.0);
  EXPECT_DOUBLE_EQ(paperconst::kMediumMessageBits, 60648.0);
  EXPECT_DOUBLE_EQ(paperconst::kComplexMessageBits, 171136.0);
  // The paper quotes ~0.00666 / 0.057838 / 0.163208 Mbit with Mbit = 2^20.
  EXPECT_NEAR(paperconst::kSimpleMessageBits / 1048576.0, 0.00666, 1e-4);
  EXPECT_NEAR(paperconst::kComplexMessageBits / 1048576.0, 0.163208, 1e-4);
}

TEST(WorkloadKindTest, Names) {
  EXPECT_EQ(WorkloadKindToString(WorkloadKind::kLine), "line");
  EXPECT_EQ(WorkloadKindToString(WorkloadKind::kBushyGraph), "bushy");
  EXPECT_EQ(WorkloadKindToString(WorkloadKind::kLengthyGraph), "lengthy");
  EXPECT_EQ(WorkloadKindToString(WorkloadKind::kHybridGraph), "hybrid");
}

TEST(ClassCConfigTest, Table6Distributions) {
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  EXPECT_EQ(cfg.num_operations, 19u);
  EXPECT_EQ(cfg.num_servers, 5u);
  EXPECT_EQ(cfg.trials, 50u);
  EXPECT_DOUBLE_EQ(cfg.operation_cycles.Mean(), 20e6);
  EXPECT_DOUBLE_EQ(cfg.server_power.Mean(), 2e9);
  ASSERT_EQ(cfg.bus_speed.values().size(), 3u);
  EXPECT_EQ(cfg.name, "class-c-line");
}

TEST(ClassAConfigTest, ComputePinned) {
  ExperimentConfig cfg = MakeClassAConfig(WorkloadKind::kLine);
  EXPECT_EQ(cfg.operation_cycles.values().size(), 1u);
  EXPECT_EQ(cfg.server_power.values().size(), 1u);
  EXPECT_EQ(cfg.message_bits.values().size(), 3u);
  EXPECT_EQ(cfg.bus_speed.values().size(), 3u);
}

TEST(ClassBConfigTest, NetworkPinned) {
  ExperimentConfig cfg = MakeClassBConfig(WorkloadKind::kLine);
  EXPECT_EQ(cfg.operation_cycles.values().size(), 3u);
  EXPECT_EQ(cfg.server_power.values().size(), 3u);
  EXPECT_EQ(cfg.message_bits.values().size(), 1u);
  ASSERT_TRUE(cfg.fixed_bus_speed_bps.has_value());
}

TEST(PaperBusSweepTest, FourSpeeds) {
  std::vector<double> sweep = PaperBusSweepBps();
  ASSERT_EQ(sweep.size(), 4u);
  EXPECT_EQ(sweep[0], 1e6);
  EXPECT_EQ(sweep[3], 1e9);
}

TEST(DrawTrialTest, LineTrialShape) {
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
  EXPECT_EQ(t.workflow.num_operations(), 19u);
  EXPECT_TRUE(t.workflow.IsLine());
  EXPECT_EQ(t.network.num_servers(), 5u);
  EXPECT_TRUE(t.network.has_bus());
  EXPECT_FALSE(t.profile.has_value());
}

TEST(DrawTrialTest, GraphTrialHasProfile) {
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kBushyGraph);
  TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 3));
  EXPECT_EQ(t.workflow.num_operations(), 19u);
  EXPECT_FALSE(t.workflow.IsLine());
  WSFLOW_EXPECT_OK(ValidateAll(t.workflow));
  ASSERT_TRUE(t.profile.has_value());
  EXPECT_EQ(t.profile->op_prob.size(), 19u);
}

TEST(DrawTrialTest, DeterministicPerIndex) {
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  TrialInstance a = WSFLOW_UNWRAP(DrawTrial(cfg, 5));
  TrialInstance b = WSFLOW_UNWRAP(DrawTrial(cfg, 5));
  EXPECT_EQ(a.workflow.operation(OperationId(3)).cycles(),
            b.workflow.operation(OperationId(3)).cycles());
  EXPECT_EQ(a.network.server(ServerId(2)).power_hz(),
            b.network.server(ServerId(2)).power_hz());
  EXPECT_EQ(a.network.link(a.network.bus()).speed_bps,
            b.network.link(b.network.bus()).speed_bps);
}

TEST(DrawTrialTest, TrialsDiffer) {
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  TrialInstance a = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
  TrialInstance b = WSFLOW_UNWRAP(DrawTrial(cfg, 1));
  bool differs = false;
  for (uint32_t i = 0; i < 19 && !differs; ++i) {
    if (a.workflow.operation(OperationId(i)).cycles() !=
        b.workflow.operation(OperationId(i)).cycles()) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(DrawTrialTest, ValuesComeFromTable6) {
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  for (size_t trial = 0; trial < 5; ++trial) {
    TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, trial));
    for (const Operation& op : t.workflow.operations()) {
      EXPECT_TRUE(op.cycles() == 10e6 || op.cycles() == 20e6 ||
                  op.cycles() == 30e6)
          << op.cycles();
    }
    for (const Transition& tr : t.workflow.transitions()) {
      EXPECT_TRUE(tr.message_bits == paperconst::kSimpleMessageBits ||
                  tr.message_bits == paperconst::kMediumMessageBits ||
                  tr.message_bits == paperconst::kComplexMessageBits);
    }
    for (const Server& s : t.network.servers()) {
      EXPECT_TRUE(s.power_hz() == 1e9 || s.power_hz() == 2e9 ||
                  s.power_hz() == 3e9);
    }
  }
}

TEST(DrawTrialTest, FixedBusOverridesDistribution) {
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  cfg.fixed_bus_speed_bps = 123456.0;
  TrialInstance t = WSFLOW_UNWRAP(DrawTrial(cfg, 0));
  EXPECT_EQ(t.network.link(t.network.bus()).speed_bps, 123456.0);
}

TEST(DrawTrialTest, MissingDistributionRejected) {
  ExperimentConfig cfg;
  EXPECT_TRUE(DrawTrial(cfg, 0).status().IsInvalidArgument());
}

}  // namespace
}  // namespace wsflow
