#include "src/exp/distributions.h"

#include <gtest/gtest.h>

namespace wsflow {
namespace {

TEST(DiscreteDistributionTest, MakeNormalizes) {
  DiscreteDistribution d =
      DiscreteDistribution::Make({{1.0, 25}, {2.0, 50}, {3.0, 25}}).value();
  ASSERT_EQ(d.values().size(), 3u);
  EXPECT_DOUBLE_EQ(d.probabilities()[0], 0.25);
  EXPECT_DOUBLE_EQ(d.probabilities()[1], 0.50);
  EXPECT_DOUBLE_EQ(d.probabilities()[2], 0.25);
}

TEST(DiscreteDistributionTest, InvalidInputsRejected) {
  EXPECT_TRUE(DiscreteDistribution::Make({}).status().IsInvalidArgument());
  EXPECT_TRUE(DiscreteDistribution::Make({{1.0, -1.0}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(DiscreteDistribution::Make({{1.0, 0.0}, {2.0, 0.0}})
                  .status()
                  .IsInvalidArgument());
}

TEST(DiscreteDistributionTest, ConstantAlwaysSame) {
  DiscreteDistribution d = DiscreteDistribution::Constant(7.0);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(d.Sample(&rng), 7.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 7.0);
}

TEST(DiscreteDistributionTest, Mean) {
  DiscreteDistribution d =
      DiscreteDistribution::Make({{10.0, 0.25}, {20.0, 0.5}, {30.0, 0.25}})
          .value();
  EXPECT_DOUBLE_EQ(d.Mean(), 20.0);
}

TEST(DiscreteDistributionTest, SampleFrequenciesMatch) {
  DiscreteDistribution d =
      DiscreteDistribution::Make({{1.0, 0.25}, {2.0, 0.5}, {3.0, 0.25}})
          .value();
  Rng rng(42);
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    double v = d.Sample(&rng);
    counts[static_cast<int>(v) - 1]++;
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.50, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.25, 0.02);
}

TEST(DiscreteDistributionTest, SamplerAdapter) {
  DiscreteDistribution d = DiscreteDistribution::Constant(5.0);
  Sampler s = d.ToSampler();
  Rng rng(1);
  EXPECT_EQ(s(&rng), 5.0);
}

TEST(DiscreteDistributionTest, ToStringShowsEntries) {
  DiscreteDistribution d =
      DiscreteDistribution::Make({{10.0, 0.25}, {20.0, 0.75}}).value();
  std::string s = d.ToString();
  EXPECT_NE(s.find("10@25%"), std::string::npos);
  EXPECT_NE(s.find("20@75%"), std::string::npos);
}

TEST(DiscreteDistributionTest, EmptyDefault) {
  DiscreteDistribution d;
  EXPECT_TRUE(d.empty());
}

}  // namespace
}  // namespace wsflow
