#include "src/exp/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "2"});
  std::string s = t.ToString();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTableTest, RowCount) {
  TextTable t({"x"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(SummaryTableTest, OneRowPerAlgorithm) {
  ExperimentResult result;
  result.name = "demo";
  AlgorithmSummary s1;
  s1.algorithm = "fair-load";
  s1.execution_time.Add(0.5);
  s1.time_penalty.Add(0.1);
  s1.points.push_back({0.5, 0.1});
  result.per_algorithm.push_back(s1);
  TextTable table = SummaryTable(result);
  EXPECT_EQ(table.num_rows(), 1u);
  std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("fair-load"), std::string::npos);
  EXPECT_NE(rendered.find("500"), std::string::npos);  // 0.5 s = 500 ms
}

TEST(WriteCsvTest, RoundTrip) {
  std::string path = ::testing::TempDir() + "/wsflow_report.csv";
  WSFLOW_ASSERT_OK(WriteCsv(path, {"a", "b"},
                            {{"1", "x,y"}, {"2", "with \"quote\""}}));
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string content = buffer.str();
  EXPECT_NE(content.find("a,b\n"), std::string::npos);
  EXPECT_NE(content.find("\"x,y\""), std::string::npos);
  EXPECT_NE(content.find("\"with \"\"quote\"\"\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(WriteCsvTest, WidthMismatchRejected) {
  std::string path = ::testing::TempDir() + "/wsflow_badwidth.csv";
  EXPECT_TRUE(
      WriteCsv(path, {"a", "b"}, {{"only-one"}}).IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(WriteCsvTest, UnwritablePathFails) {
  EXPECT_FALSE(WriteCsv("/nonexistent/x.csv", {"a"}, {}).ok());
}

TEST(ScatterRowsTest, OneRowPerPoint) {
  ExperimentResult result;
  AlgorithmSummary s;
  s.algorithm = "heavy-ops";
  s.points.push_back({1.0, 2.0});
  s.points.push_back({3.0, 4.0});
  result.per_algorithm.push_back(s);
  std::vector<std::vector<std::string>> rows = ScatterRows(result);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "heavy-ops");
  EXPECT_EQ(rows[1][1], "1");
  EXPECT_EQ(rows[0][2], "1");
  EXPECT_EQ(rows[1][3], "4");
}

}  // namespace
}  // namespace wsflow
