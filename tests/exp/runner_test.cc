#include "src/exp/runner.h"

#include <gtest/gtest.h>

#include "tests/testing/test_util.h"

namespace wsflow {
namespace {

ExperimentConfig SmallConfig(WorkloadKind kind) {
  ExperimentConfig cfg = MakeClassCConfig(kind);
  cfg.trials = 5;
  cfg.num_operations = 9;
  cfg.num_servers = 3;
  return cfg;
}

TEST(RunnerTest, RunsAllAlgorithmsOverAllTrials) {
  ExperimentResult result = WSFLOW_UNWRAP(
      RunExperiment(SmallConfig(WorkloadKind::kLine), PaperBusAlgorithms()));
  ASSERT_EQ(result.per_algorithm.size(), 5u);
  for (const AlgorithmSummary& s : result.per_algorithm) {
    EXPECT_EQ(s.points.size(), 5u) << s.algorithm;
    EXPECT_EQ(s.failures, 0u) << s.algorithm;
    EXPECT_GT(s.execution_time.mean(), 0.0) << s.algorithm;
    EXPECT_GE(s.time_penalty.mean(), 0.0) << s.algorithm;
  }
}

TEST(RunnerTest, GraphWorkloadRuns) {
  ExperimentResult result = WSFLOW_UNWRAP(RunExperiment(
      SmallConfig(WorkloadKind::kHybridGraph), PaperBusAlgorithms()));
  for (const AlgorithmSummary& s : result.per_algorithm) {
    EXPECT_EQ(s.failures, 0u) << s.algorithm;
  }
}

TEST(RunnerTest, UnknownAlgorithmFatal) {
  EXPECT_TRUE(RunExperiment(SmallConfig(WorkloadKind::kLine), {"bogus"})
                  .status()
                  .IsNotFound());
}

TEST(RunnerTest, FindLocatesSummary) {
  ExperimentResult result = WSFLOW_UNWRAP(
      RunExperiment(SmallConfig(WorkloadKind::kLine), {"heavy-ops"}));
  EXPECT_TRUE(result.Find("heavy-ops").ok());
  EXPECT_TRUE(result.Find("fair-load").status().IsNotFound());
}

TEST(RunnerTest, DeterministicAcrossRuns) {
  ExperimentConfig cfg = SmallConfig(WorkloadKind::kLine);
  ExperimentResult a = WSFLOW_UNWRAP(RunExperiment(cfg, {"fltr2"}));
  ExperimentResult b = WSFLOW_UNWRAP(RunExperiment(cfg, {"fltr2"}));
  ASSERT_EQ(a.per_algorithm[0].points.size(),
            b.per_algorithm[0].points.size());
  for (size_t i = 0; i < a.per_algorithm[0].points.size(); ++i) {
    EXPECT_EQ(a.per_algorithm[0].points[i].execution_time,
              b.per_algorithm[0].points[i].execution_time);
  }
}

TEST(RunnerTest, MeanPointAggregates) {
  AlgorithmSummary s;
  s.execution_time.Add(1.0);
  s.execution_time.Add(3.0);
  s.time_penalty.Add(0.5);
  s.time_penalty.Add(1.5);
  ObjectivePoint p = s.MeanPoint();
  EXPECT_DOUBLE_EQ(p.execution_time, 2.0);
  EXPECT_DOUBLE_EQ(p.time_penalty, 1.0);
}

TEST(RunnerTest, AlgorithmFailuresAreCountedNotFatal) {
  // Exhaustive refuses every 19-operation trial (5^19 space); the runner
  // must record the failures and keep the experiment alive.
  ExperimentConfig cfg = MakeClassCConfig(WorkloadKind::kLine);
  cfg.trials = 3;
  ExperimentResult result =
      WSFLOW_UNWRAP(RunExperiment(cfg, {"exhaustive", "fair-load"}));
  const AlgorithmSummary* exhaustive =
      WSFLOW_UNWRAP(result.Find("exhaustive"));
  const AlgorithmSummary* fair = WSFLOW_UNWRAP(result.Find("fair-load"));
  EXPECT_EQ(exhaustive->failures, 3u);
  EXPECT_TRUE(exhaustive->points.empty());
  EXPECT_EQ(fair->failures, 0u);
  EXPECT_EQ(fair->points.size(), 3u);
}

TEST(PaperBusAlgorithmsTest, PaperOrder) {
  std::vector<std::string> algos = PaperBusAlgorithms();
  ASSERT_EQ(algos.size(), 5u);
  EXPECT_EQ(algos.front(), "fair-load");
  EXPECT_EQ(algos.back(), "heavy-ops");
}

}  // namespace
}  // namespace wsflow
