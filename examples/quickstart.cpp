// wsflow quickstart: build a workflow, describe the server farm, deploy.
//
// Builds a small order-processing workflow, deploys it onto a three-server
// bus with the paper's winning heuristic (Heavy Operations - Large
// Messages), and prints the mapping and both cost measures.

#include <cstdio>
#include <iostream>

#include "src/cost/cost_model.h"
#include "src/deploy/algorithm.h"
#include "src/workflow/builder.h"

int main() {
  using namespace wsflow;

  // 1. Describe the workflow: operations cost CPU cycles, the messages
  //    between them have sizes in bits.
  WorkflowBuilder builder("order-processing");
  builder.Op("receive_order", /*cycles=*/5e6)
      .Op("validate", 20e6, /*in_msg_bits=*/60648)
      .Split(OperationType::kXorSplit, "in_stock", 1e6, 6984)
      .Branch(0.8)
      .Op("reserve_items", 50e6, 60648)
      .Branch(0.2)
      .Op("backorder", 10e6, 6984)
      .Join("stock_done", 1e6, 6984)
      .Op("charge_card", 100e6, 60648)
      .Op("confirm", 5e6, 6984);
  Result<Workflow> workflow = builder.Build();
  if (!workflow.ok()) {
    std::cerr << "workflow error: " << workflow.status() << "\n";
    return 1;
  }

  // 2. Describe the provider's servers: powers in Hz, one shared bus.
  Result<Network> network =
      MakeBusNetwork(/*powers_hz=*/{1e9, 2e9, 3e9}, /*bus_speed_bps=*/100e6);
  if (!network.ok()) {
    std::cerr << "network error: " << network.status() << "\n";
    return 1;
  }

  // 3. Execution probabilities (the XOR takes the 0.8 branch 80% of the
  //    time) feed the graph-aware algorithms.
  Result<ExecutionProfile> profile = ComputeExecutionProfile(*workflow);
  if (!profile.ok()) {
    std::cerr << "profile error: " << profile.status() << "\n";
    return 1;
  }

  // 4. Deploy with the paper's overall winner.
  DeployContext ctx;
  ctx.workflow = &*workflow;
  ctx.network = &*network;
  ctx.profile = &*profile;
  Result<Mapping> mapping = RunAlgorithm("heavy-ops", ctx);
  if (!mapping.ok()) {
    std::cerr << "deploy error: " << mapping.status() << "\n";
    return 1;
  }

  // 5. Inspect the result.
  std::cout << "deployment: " << mapping->ToString(*workflow, *network)
            << "\n\n";
  CostModel model(*workflow, *network, &*profile);
  Result<CostBreakdown> cost = model.Evaluate(*mapping);
  if (!cost.ok()) {
    std::cerr << "evaluation error: " << cost.status() << "\n";
    return 1;
  }
  std::printf("expected execution time: %.3f ms\n",
              cost->execution_time * 1e3);
  std::printf("fairness time penalty:   %.3f ms\n", cost->time_penalty * 1e3);
  std::printf("combined objective:      %.3f ms\n", cost->combined * 1e3);
  for (const Server& s : network->servers()) {
    std::printf("  load on %-3s %.3f ms\n", s.name().c_str(),
                model.Load(s.id(), *mapping) * 1e3);
  }
  return 0;
}
