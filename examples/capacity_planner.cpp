// Capacity planning with wsflow: given a workflow, how does the best
// deployment change as the provider upgrades the network bus?
//
// Sweeps the bus speed from 1 Mbps to 1 Gbps, deploys with every paper
// algorithm at each speed, and reports the winner and the crossover: on a
// slow bus message locality dominates (operations cluster), on a fast bus
// load balance dominates (operations spread). Also demonstrates workflow
// persistence: the workflow is saved to XML and reloaded before planning.

#include <cstdio>
#include <iostream>

#include "src/cost/cost_model.h"
#include "src/deploy/algorithm.h"
#include "src/exp/config.h"
#include "src/exp/runner.h"
#include "src/workflow/generator.h"
#include "src/workflow/serialization.h"

int main() {
  using namespace wsflow;

  // A hybrid random graph stands in for the customer's workflow.
  Rng rng(7);
  RandomGraphParams params = ParamsForShape(GraphShape::kHybrid, 19);
  params.cycles = [](Rng* r) {
    return r->NextBool(0.25) ? 30e6 : (r->NextBool(2.0 / 3.0) ? 20e6 : 10e6);
  };
  params.message_bits = [](Rng* r) {
    double u = r->NextDouble();
    if (u < 0.25) return paperconst::kSimpleMessageBits;
    if (u < 0.75) return paperconst::kMediumMessageBits;
    return paperconst::kComplexMessageBits;
  };
  Result<Workflow> generated = GenerateRandomGraphWorkflow(params, &rng);
  if (!generated.ok()) {
    std::cerr << generated.status() << "\n";
    return 1;
  }

  // Persist and reload, as a deployment tool would.
  const std::string path = "/tmp/wsflow_capacity_plan.xml";
  if (Status st = SaveWorkflow(*generated, path); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  Result<Workflow> workflow = LoadWorkflow(path);
  if (!workflow.ok()) {
    std::cerr << workflow.status() << "\n";
    return 1;
  }
  std::printf("planning for workflow '%s' (saved+reloaded via %s)\n",
              workflow->name().c_str(), path.c_str());

  Result<ExecutionProfile> profile = ComputeExecutionProfile(*workflow);
  if (!profile.ok()) {
    std::cerr << profile.status() << "\n";
    return 1;
  }

  std::printf("\n%10s  %-12s %14s %14s  %s\n", "bus", "winner",
              "T_exec (ms)", "penalty (ms)", "runner-up");
  for (double bus : PaperBusSweepBps()) {
    Result<Network> network =
        MakeBusNetwork({1e9, 2e9, 2e9, 3e9, 1e9}, bus);
    if (!network.ok()) continue;
    CostModel model(*workflow, *network, &*profile);
    DeployContext ctx;
    ctx.workflow = &*workflow;
    ctx.network = &*network;
    ctx.profile = &*profile;
    ctx.seed = 11;

    std::string winner, runner_up;
    CostBreakdown winner_cost{};
    double best = 0, second = 0;
    bool have = false;
    for (const std::string& name : PaperBusAlgorithms()) {
      Result<Mapping> m = RunAlgorithm(name, ctx);
      if (!m.ok()) continue;
      Result<CostBreakdown> cost = model.Evaluate(*m);
      if (!cost.ok()) continue;
      if (!have || cost->combined < best) {
        second = best;
        runner_up = winner;
        best = cost->combined;
        winner = name;
        winner_cost = *cost;
        have = true;
      } else if (runner_up.empty() || cost->combined < second) {
        second = cost->combined;
        runner_up = name;
      }
    }
    std::printf("%7.0f Mbps  %-12s %14.3f %14.3f  %s\n", bus / 1e6,
                winner.c_str(), winner_cost.execution_time * 1e3,
                winner_cost.time_penalty * 1e3, runner_up.c_str());
  }

  std::printf(
      "\nreading: slower buses reward message locality (merge-style "
      "algorithms);\nfaster buses make fairness nearly free, so the "
      "fair-load family closes the gap.\n");
  return 0;
}
