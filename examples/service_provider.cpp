// A provider's day with wsflow, end to end:
//
//   1. the workflow arrives as a structured BPEL-style <process> document;
//   2. the portfolio deployer places it on the farm;
//   3. a Poisson stream of requests is simulated at increasing load to
//      find the sustainable rate;
//   4. every server failure is rehearsed to check the §2.1 promise —
//      "a reasonable load scale-up is still possible".

#include <cstdio>
#include <iostream>

#include "src/cost/cost_model.h"
#include "src/deploy/algorithm.h"
#include "src/deploy/failover.h"
#include "src/sim/stream.h"
#include "src/workflow/bpel_import.h"
#include "src/workflow/metrics.h"

namespace {

constexpr const char* kProcessXml = R"(
<process name="claims" default_bits="6984">
  <invoke name="receive_claim" cycles="5e6"/>
  <invoke name="verify_policy" cycles="50e6" in_bits="60648"/>
  <switch name="auto_approve" cycles="1e6">
    <case probability="0.65">
      <invoke name="pay_out" cycles="50e6" in_bits="60648"/>
    </case>
    <case probability="0.35">
      <sequence>
        <invoke name="assign_adjuster" cycles="5e6"/>
        <invoke name="assess_damage" cycles="500e6" in_bits="171136"/>
        <invoke name="negotiate" cycles="50e6" in_bits="60648"/>
      </sequence>
    </case>
  </switch>
  <flow name="wrap_up" cycles="1e6">
    <invoke name="archive" cycles="50e6" in_bits="171136"/>
    <invoke name="notify_customer" cycles="5e6"/>
  </flow>
  <invoke name="close_case" cycles="5e6"/>
</process>
)";

}  // namespace

int main() {
  using namespace wsflow;

  // 1. Import the structured process description.
  Result<Workflow> workflow = WorkflowFromProcessString(kProcessXml);
  if (!workflow.ok()) {
    std::cerr << workflow.status() << "\n";
    return 1;
  }
  Result<WorkflowMetrics> metrics = ComputeWorkflowMetrics(*workflow);
  if (metrics.ok()) {
    std::printf("imported '%s': %s\n", workflow->name().c_str(),
                metrics->ToString().c_str());
  }

  Result<Network> network = MakeBusNetwork({1e9, 2e9, 2e9, 3e9}, 100e6);
  Result<ExecutionProfile> profile = ComputeExecutionProfile(*workflow);
  if (!network.ok() || !profile.ok()) {
    std::cerr << "setup failed\n";
    return 1;
  }

  // 2. Deploy with the portfolio (best of all greedy heuristics).
  DeployContext ctx;
  ctx.workflow = &*workflow;
  ctx.network = &*network;
  ctx.profile = &*profile;
  Result<Mapping> mapping = RunAlgorithm("portfolio", ctx);
  if (!mapping.ok()) {
    std::cerr << mapping.status() << "\n";
    return 1;
  }
  CostModel model(*workflow, *network, &*profile);
  Result<CostBreakdown> cost = model.Evaluate(*mapping);
  std::printf("\nportfolio deployment: %s\n",
              mapping->ToString(*workflow, *network).c_str());
  if (cost.ok()) {
    std::printf("single case: T_execute %.3f ms, penalty %.3f ms\n",
                cost->execution_time * 1e3, cost->time_penalty * 1e3);
  }

  // 3. Sustained load: sweep the arrival rate.
  std::printf("\nsustained load (400 cases per rate):\n");
  std::printf("%12s %14s %14s %14s\n", "rate (/s)", "mean lat (ms)",
              "p95 lat (ms)", "served (/s)");
  for (double rate : {2.0, 5.0, 10.0, 20.0, 40.0}) {
    StreamOptions options;
    options.num_instances = 400;
    options.arrival_rate = rate;
    options.seed = 17;
    Result<StreamResult> r =
        SimulateWorkflowStream(*workflow, *network, *mapping, options);
    if (!r.ok()) continue;
    std::printf("%12.0f %14.2f %14.2f %14.2f\n", rate,
                r->mean_latency * 1e3, r->p95_latency * 1e3, r->throughput);
  }

  // 4. Failure rehearsal.
  std::printf("\nfailure rehearsal (worst-fit repair):\n");
  Result<std::vector<FailoverReport>> reports =
      AnalyzeAllFailovers(model, *mapping, FailoverStrategy::kWorstFit);
  if (!reports.ok()) {
    std::cerr << reports.status() << "\n";
    return 1;
  }
  for (const FailoverReport& r : *reports) {
    std::printf(
        "  losing %-3s orphans %zu ops, T_execute %.3f -> %.3f ms, worst "
        "survivor scale-up %.2fx\n",
        network->server(r.failed_server).name().c_str(),
        r.orphaned_operations, r.execution_time_before * 1e3,
        r.execution_time_after * 1e3, r.worst_load_scale_up);
  }
  return 0;
}
