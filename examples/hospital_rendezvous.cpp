// The paper's motivating example (§2.1, Fig. 1): an electronic system of a
// ministry of health that books doctor appointments, registers prescribed
// medicines and notifies social-security agencies. The workflow has 15
// web-service operations (decision nodes included) and the ministry owns 5
// servers — 5^15 possible deployments.
//
// This example builds that workflow, deploys it with every algorithm of the
// paper, compares the two cost measures, and replays the best deployment in
// the discrete-event simulator to show the patient case unfolding.

#include <cstdio>
#include <iostream>

#include "src/cost/cost_model.h"
#include "src/deploy/algorithm.h"
#include "src/exp/runner.h"
#include "src/sim/simulator.h"
#include "src/workflow/builder.h"

namespace {

// Cycle weights per §4.1: simple 5M, medium 50M, heavy 500M; decision
// nodes are light (1M). Messages: simple 6984, medium 60648, complex
// 171136 bits.
wsflow::Result<wsflow::Workflow> BuildRendezvousWorkflow() {
  using wsflow::OperationType;
  wsflow::WorkflowBuilder b("hospital-rendezvous");
  b.Op("receive_request", 5e6);
  b.Op("lookup_patient", 50e6, 60648);
  b.Split(OperationType::kXorSplit, "doctor_available", 1e6, 6984);
  // 70%: a slot is free — book it and prepare the visit.
  b.Branch(0.7)
      .Op("book_slot", 50e6, 60648)
      .Op("fetch_history", 500e6, 171136);
  // 30%: no slot — queue the patient and propose alternatives.
  b.Branch(0.3)
      .Op("enqueue_waitlist", 5e6, 6984)
      .Op("propose_alternatives", 50e6, 60648);
  b.Join("scheduling_done", 1e6, 6984);
  b.Op("conduct_visit", 500e6, 171136);
  b.Split(OperationType::kAndSplit, "close_case", 1e6, 6984);
  // Both post-visit tasks must complete: register prescriptions with
  // social security, and archive the medical record.
  b.Branch()
      .Op("register_prescription", 50e6, 60648)
      .Op("notify_social_security", 50e6, 60648);
  b.Branch().Op("archive_record", 500e6, 171136);
  b.Join("case_closed", 1e6, 6984);
  b.Op("send_confirmation", 5e6, 6984);
  return b.Build();
}

}  // namespace

int main() {
  using namespace wsflow;
  Result<Workflow> workflow = BuildRendezvousWorkflow();
  if (!workflow.ok()) {
    std::cerr << workflow.status() << "\n";
    return 1;
  }
  std::printf("workflow '%s': %zu operations (%zu decision), %zu messages\n",
              workflow->name().c_str(), workflow->num_operations(),
              workflow->NumDecisionNodes(), workflow->num_transitions());

  // The ministry's farm: five servers, 100 Mbps bus.
  Result<Network> network =
      MakeBusNetwork({1e9, 2e9, 2e9, 3e9, 1e9}, 100e6);
  if (!network.ok()) {
    std::cerr << network.status() << "\n";
    return 1;
  }
  Result<ExecutionProfile> profile = ComputeExecutionProfile(*workflow);
  if (!profile.ok()) {
    std::cerr << profile.status() << "\n";
    return 1;
  }
  CostModel model(*workflow, *network, &*profile);

  DeployContext ctx;
  ctx.workflow = &*workflow;
  ctx.network = &*network;
  ctx.profile = &*profile;
  ctx.seed = 2007;

  std::printf("\n%-12s %16s %16s\n", "algorithm", "T_execute (ms)",
              "TimePenalty (ms)");
  std::string best_name;
  Mapping best_mapping;
  double best_combined = 0;
  bool have_best = false;
  for (const std::string& name : PaperBusAlgorithms()) {
    Result<Mapping> m = RunAlgorithm(name, ctx);
    if (!m.ok()) {
      std::cerr << name << ": " << m.status() << "\n";
      continue;
    }
    Result<CostBreakdown> cost = model.Evaluate(*m);
    if (!cost.ok()) {
      std::cerr << name << ": " << cost.status() << "\n";
      continue;
    }
    std::printf("%-12s %16.3f %16.3f\n", name.c_str(),
                cost->execution_time * 1e3, cost->time_penalty * 1e3);
    if (!have_best || cost->combined < best_combined) {
      have_best = true;
      best_combined = cost->combined;
      best_name = name;
      best_mapping = *m;
    }
  }
  if (!have_best) return 1;

  std::printf("\nbest by combined objective: %s\n", best_name.c_str());
  std::printf("mapping: %s\n",
              best_mapping.ToString(*workflow, *network).c_str());

  // Replay one patient case through the event simulator.
  SimOptions options;
  options.num_runs = 1;
  options.seed = 42;
  options.record_trace = true;
  Result<SimResult> sim =
      SimulateWorkflow(*workflow, *network, best_mapping, options);
  if (!sim.ok()) {
    std::cerr << sim.status() << "\n";
    return 1;
  }
  std::printf("\none simulated case (%0.3f ms):\n",
              sim->mean_makespan * 1e3);
  std::cout << sim->trace.ToString(*workflow, *network);

  // And the long-run average over many cases (XOR branches vary).
  options.num_runs = 2000;
  options.record_trace = false;
  sim = SimulateWorkflow(*workflow, *network, best_mapping, options);
  if (sim.ok()) {
    std::printf("mean over %zu cases: %.3f ms (analytic expectation %.3f ms)\n",
                sim->makespans.size(), sim->mean_makespan * 1e3,
                model.ExecutionTime(best_mapping).value() * 1e3);
  }
  return 0;
}
