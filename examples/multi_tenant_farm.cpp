// Multi-workflow deployment (the paper's §6 future work): a provider hosts
// several tenants' workflows on one server farm. Deploying each workflow in
// isolation piles the big operations onto the strongest servers; the
// shared-ledger strategies keep the *combined* load fair.

#include <cstdio>
#include <iostream>

#include "src/deploy/multi_workflow.h"
#include "src/exp/config.h"
#include "src/workflow/generator.h"

namespace {

wsflow::Result<wsflow::Workflow> Tenant(const std::string& name, size_t ops,
                                        uint64_t seed) {
  using namespace wsflow;
  Rng rng(seed);
  LineWorkflowParams params;
  params.name = name;
  params.num_operations = ops;
  params.cycles = [](Rng* r) {
    double u = r->NextDouble();
    if (u < 0.25) return paperconst::kClassCOpCyclesLow;
    if (u < 0.75) return paperconst::kClassCOpCyclesMid;
    return paperconst::kClassCOpCyclesHigh;
  };
  params.message_bits = [](Rng* r) {
    return r->NextBool(0.5) ? paperconst::kMediumMessageBits
                            : paperconst::kSimpleMessageBits;
  };
  return GenerateLineWorkflow(params, &rng);
}

}  // namespace

int main() {
  using namespace wsflow;

  Result<Workflow> bookings = Tenant("bookings", 14, 1);
  Result<Workflow> billing = Tenant("billing", 9, 2);
  Result<Workflow> reporting = Tenant("reporting", 21, 3);
  if (!bookings.ok() || !billing.ok() || !reporting.ok()) {
    std::cerr << "tenant generation failed\n";
    return 1;
  }
  std::vector<const Workflow*> tenants{&*bookings, &*billing, &*reporting};

  Result<Network> network = MakeBusNetwork({1e9, 2e9, 3e9, 2e9}, 100e6);
  if (!network.ok()) {
    std::cerr << network.status() << "\n";
    return 1;
  }

  for (auto [strategy, label] :
       {std::pair{MultiWorkflowStrategy::kJointFairLoad, "joint-fair-load"},
        std::pair{MultiWorkflowStrategy::kSequentialHeavyOps,
                  "sequential-heavy-ops"}}) {
    MultiWorkflowOptions options;
    options.strategy = strategy;
    Result<MultiWorkflowResult> result =
        DeployMultipleWorkflows(tenants, *network, options);
    if (!result.ok()) {
      std::cerr << label << ": " << result.status() << "\n";
      continue;
    }
    std::printf("strategy %s\n", label);
    for (size_t i = 0; i < tenants.size(); ++i) {
      std::printf("  %-10s T_execute %8.3f ms over servers:",
                  tenants[i]->name().c_str(),
                  result->execution_times[i] * 1e3);
      for (const Server& s : network->servers()) {
        std::printf(" %s=%zu", s.name().c_str(),
                    result->mappings[i].OperationsOn(s.id()).size());
      }
      std::printf("\n");
    }
    std::printf("  combined fairness penalty: %.3f ms\n\n",
                result->combined_time_penalty * 1e3);
  }

  std::printf(
      "joint-fair-load optimizes only the combined balance; "
      "sequential-heavy-ops\nalso keeps each tenant's chatty operations "
      "co-located, trading a little\nfairness for execution time.\n");
  return 0;
}
