// Constrained deployment (the paper's §6 future work, implemented as a
// wsflow extension): deploy a workflow subject to user constraints — a
// fairness ceiling and placement pins — by seeding local search with a
// heuristic mapping and climbing within the feasible region.

#include <cstdio>
#include <iostream>

#include "src/cost/cost_model.h"
#include "src/deploy/algorithm.h"
#include "src/deploy/constraints.h"
#include "src/deploy/local_search.h"
#include "src/workflow/builder.h"

int main() {
  using namespace wsflow;

  // A payments workflow where one operation must stay on the PCI-certified
  // server and the archival step may not share a host with it.
  WorkflowBuilder b("payments");
  b.Op("ingest", 20e6)
      .Op("fraud_check", 500e6, 171136)
      .Op("charge", 100e6, 60648)   // must run on the PCI server
      .Op("receipt", 20e6, 6984)
      .Op("archive", 50e6, 60648);  // must NOT run on the PCI server
  Result<Workflow> workflow = b.Build();
  if (!workflow.ok()) {
    std::cerr << workflow.status() << "\n";
    return 1;
  }

  Result<Network> network = MakeBusNetwork({2e9, 2e9, 1e9}, 100e6);
  if (!network.ok()) {
    std::cerr << network.status() << "\n";
    return 1;
  }
  const ServerId kPciServer(0);
  CostModel model(*workflow, *network);

  OperationId charge = b.Id("charge").value();
  OperationId archive = b.Id("archive").value();

  DeploymentConstraints constraints;
  constraints.pinned.push_back({charge, kPciServer});
  constraints.forbidden.push_back({archive, kPciServer});
  constraints.max_time_penalty = 0.25;  // seconds

  // Unconstrained heuristic first.
  DeployContext ctx;
  ctx.workflow = &*workflow;
  ctx.network = &*network;
  Result<Mapping> heuristic = RunAlgorithm("heavy-ops", ctx);
  if (!heuristic.ok()) {
    std::cerr << heuristic.status() << "\n";
    return 1;
  }
  std::printf("heuristic mapping:   %s\n",
              heuristic->ToString(*workflow, *network).c_str());
  Status feasible = CheckConstraints(model, *heuristic, constraints);
  std::printf("constraint check:    %s\n", feasible.ToString().c_str());

  // Repair: enforce the pins, then climb within the feasible region.
  Mapping start = *heuristic;
  ApplyPins(constraints, &start);
  if (start.ServerOf(archive) == kPciServer) {
    start.Assign(archive, ServerId(1));  // clear the placement ban
  }
  if (!CheckConstraints(model, start, constraints).ok()) {
    // The quantitative ceiling may still be violated; spread the two
    // heaviest operations before climbing.
    start.Assign(b.Id("fraud_check").value(), ServerId(1));
  }
  LocalSearchOptions options;
  options.constraints = &constraints;
  LocalSearchStats stats;
  Result<Mapping> repaired = HillClimb(model, start, {}, options, &stats);
  if (!repaired.ok()) {
    std::cerr << "repair failed: " << repaired.status() << "\n";
    return 1;
  }

  std::printf("constrained mapping: %s\n",
              repaired->ToString(*workflow, *network).c_str());
  std::printf("constraint check:    %s\n",
              CheckConstraints(model, *repaired, constraints).ToString()
                  .c_str());
  Result<CostBreakdown> cost = model.Evaluate(*repaired);
  if (cost.ok()) {
    std::printf(
        "T_execute %.3f ms, penalty %.3f ms after %zu improvement steps "
        "(%zu mappings evaluated)\n",
        cost->execution_time * 1e3, cost->time_penalty * 1e3, stats.steps,
        stats.evaluations);
  }
  return 0;
}
