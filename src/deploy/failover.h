// wsflow: server-failure analysis (motivated by the paper's §2.1: a fair
// deployment means that "whenever additional workflows are deployed, or a
// server fails, a reasonable load scale-up is still possible").
//
// Given a deployed workflow and a failed server, the orphaned operations
// are redistributed over the survivors and the damage is quantified: the
// post-failure execution time, the surviving servers' load scale-up, and
// the new fairness penalty. Two redistribution strategies:
//
//   * kWorstFit   — orphaned operations go one by one (heaviest first) to
//                   the survivor with the most remaining capacity-
//                   proportional headroom (Fair Load's rule);
//   * kCoLocate   — each orphaned operation follows its heaviest-message
//                   neighbour when that neighbour survived, falling back
//                   to worst-fit (message-locality preserving).
//
// AnalyzeAllFailovers sweeps every server, yielding the worst case — the
// number a capacity planner cares about.

#ifndef WSFLOW_DEPLOY_FAILOVER_H_
#define WSFLOW_DEPLOY_FAILOVER_H_

#include <vector>

#include "src/common/result.h"
#include "src/cost/cost_model.h"
#include "src/deploy/graph_view.h"
#include "src/deploy/mapping.h"
#include "src/network/server_mask.h"

namespace wsflow {

enum class FailoverStrategy {
  kWorstFit,
  kCoLocate,
};

struct FailoverReport {
  ServerId failed_server;
  /// The repaired mapping (orphans reassigned; unaffected operations keep
  /// their hosts).
  Mapping repaired;
  size_t orphaned_operations = 0;
  /// T_execute before and after the failure. The post-failure value is
  /// scored against the surviving subnetwork: +infinity when some message
  /// has no route clear of the failed server (a severed mapping).
  double execution_time_before = 0;
  double execution_time_after = 0;
  /// Fairness penalty among the *surviving* servers after repair.
  double time_penalty_after = 0;
  /// Largest relative load increase over the surviving servers:
  /// max_s load_after(s) / load_before(s) (survivors with zero prior load
  /// that receive work report as +infinity; ones that stay empty as 1).
  double worst_load_scale_up = 1.0;
};

/// Reassigns every orphaned operation of `m` — unassigned, or hosted on a
/// server `alive` marks down — onto the alive servers, heaviest
/// (probability-weighted cycles) first. kWorstFit sends each orphan to the
/// alive server with the most capacity-proportional headroom; kCoLocate
/// follows the heaviest-message neighbour sitting on an alive server,
/// falling back to worst fit. Deterministic. Returns the number of orphans
/// reassigned. The repair search (src/deploy/repair.h) uses this as its
/// seeding phase; AnalyzeFailover as its redistribution step.
Result<size_t> RedistributeOrphans(const WorkflowView& view, const Network& n,
                                   const ServerMask& alive,
                                   FailoverStrategy strategy, Mapping* m);

/// Analyzes the failure of `failed` under `m`. The network must keep at
/// least one surviving server.
Result<FailoverReport> AnalyzeFailover(const CostModel& model,
                                       const Mapping& m, ServerId failed,
                                       FailoverStrategy strategy);

/// Sweeps every server; reports are ordered by ServerId.
Result<std::vector<FailoverReport>> AnalyzeAllFailovers(
    const CostModel& model, const Mapping& m, FailoverStrategy strategy);

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_FAILOVER_H_
