#include "src/deploy/critical_path.h"

#include <algorithm>

#include "src/deploy/graph_view.h"
#include "src/network/routing.h"

namespace wsflow {

namespace {

/// Mean server power (Hz) used for mapping-independent ranks.
double MeanPower(const Network& n) {
  return n.TotalPowerHz() / static_cast<double>(n.num_servers());
}

/// Reference per-bit time for ranks: the bus when present, else the mean
/// point-to-point link.
double ReferenceSecondsPerBit(const Network& n) {
  if (n.num_links() == 0) return 0.0;
  if (n.has_bus()) return 1.0 / n.link(n.bus()).speed_bps;
  double total = 0;
  for (const Link& link : n.links()) total += 1.0 / link.speed_bps;
  return total / static_cast<double>(n.num_links());
}

}  // namespace

Result<Mapping> CriticalPathAlgorithm::Run(const DeployContext& ctx) const {
  WSFLOW_RETURN_IF_ERROR(CheckContext(ctx));
  const Workflow& w = *ctx.workflow;
  const Network& n = *ctx.network;
  WorkflowView view(w, ctx.profile);
  Router router(n);

  WSFLOW_ASSIGN_OR_RETURN(std::vector<OperationId> topo,
                          w.TopologicalOrder());

  // Upward rank: longest expected path from the operation to the sink.
  const double mean_power = MeanPower(n);
  const double ref_bit_time = ReferenceSecondsPerBit(n);
  std::vector<double> rank(w.num_operations(), 0.0);
  for (size_t i = topo.size(); i-- > 0;) {
    OperationId op = topo[i];
    double best_successor = 0;
    for (TransitionId t : w.out_edges(op)) {
      const Transition& edge = w.transition(t);
      double path = view.MessageBits(t) * ref_bit_time + rank[edge.to.value];
      best_successor = std::max(best_successor, path);
    }
    rank[op.value] = view.Cycles(op) / mean_power + best_successor;
  }

  // Schedule in decreasing rank (ties: topological position, so
  // predecessors are always placed before their successors).
  std::vector<OperationId> order = topo;
  std::stable_sort(order.begin(), order.end(),
                   [&rank](OperationId a, OperationId b) {
                     return rank[a.value] > rank[b.value];
                   });

  Mapping m(w.num_operations());
  std::vector<double> finish(w.num_operations(), 0.0);
  std::vector<double> server_ready(n.num_servers(), 0.0);
  for (OperationId op : order) {
    ServerId best_server;
    double best_finish = 0;
    for (const Server& server : n.servers()) {
      // Latest input arrival if `op` ran on this server.
      double arrival = 0;
      for (TransitionId t : w.in_edges(op)) {
        const Transition& edge = w.transition(t);
        ServerId pred_server = m.ServerOf(edge.from);
        double comm = 0;
        if (pred_server.valid() && pred_server != server.id()) {
          WSFLOW_ASSIGN_OR_RETURN(Route route,
                                  router.FindRoute(pred_server, server.id()));
          comm = route.TotalPropagation(n) +
                 route.TransmissionTime(n, view.MessageBits(t));
        }
        arrival = std::max(arrival, finish[edge.from.value] + comm);
      }
      double start = std::max(arrival, server_ready[server.id().value]);
      double end = start + view.Cycles(op) / server.power_hz();
      if (!best_server.valid() || end < best_finish) {
        best_server = server.id();
        best_finish = end;
      }
    }
    m.Assign(op, best_server);
    finish[op.value] = best_finish;
    server_ready[best_server.value] = best_finish;
  }
  return m;
}

}  // namespace wsflow
