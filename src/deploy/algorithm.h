// wsflow: deployment algorithm interface and registry.
//
// Every algorithm of the paper is a DeploymentAlgorithm: given the workflow,
// the server network and (for graph workflows) an execution profile, produce
// a total Mapping. Algorithms register themselves in a global string-keyed
// registry so experiments and examples can iterate "all algorithms".

#ifndef WSFLOW_DEPLOY_ALGORITHM_H_
#define WSFLOW_DEPLOY_ALGORITHM_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/cost/cost_model.h"
#include "src/deploy/mapping.h"
#include "src/network/topology.h"
#include "src/workflow/probability.h"
#include "src/workflow/workflow.h"

namespace wsflow {

/// Everything an algorithm may consult. The referenced objects must outlive
/// the Run() call.
struct DeployContext {
  const Workflow* workflow = nullptr;
  const Network* network = nullptr;
  /// Execution probabilities for graph workflows (paper §3.4); null means
  /// probability 1 everywhere (line semantics).
  const ExecutionProfile* profile = nullptr;
  /// Seed for any randomized step (e.g. the FLTR family's random initial
  /// mapping). Equal seeds give identical outputs.
  uint64_t seed = 0;
  /// Objective weights for algorithms that evaluate candidate mappings
  /// (exhaustive, local search).
  CostOptions cost_options;
};

class DeploymentAlgorithm {
 public:
  virtual ~DeploymentAlgorithm() = default;

  /// Stable registry name, e.g. "heavy-ops".
  virtual std::string_view name() const = 0;

  /// Computes a total mapping. Implementations must not retain `ctx`.
  virtual Result<Mapping> Run(const DeployContext& ctx) const = 0;

 protected:
  /// Shared argument validation: non-null workflow/network, at least one
  /// server, positive server powers.
  static Status CheckContext(const DeployContext& ctx);
};

using AlgorithmFactory = std::function<std::unique_ptr<DeploymentAlgorithm>()>;

/// Global algorithm registry.
class AlgorithmRegistry {
 public:
  static AlgorithmRegistry& Global();

  /// Registers a factory under `name`; duplicate names are rejected.
  Status Register(const std::string& name, AlgorithmFactory factory);

  /// Instantiates the algorithm registered under `name`.
  Result<std::unique_ptr<DeploymentAlgorithm>> Create(
      const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  std::vector<std::pair<std::string, AlgorithmFactory>> entries_;
};

/// Registers all built-in algorithms (idempotent): the paper's exhaustive,
/// Line-Line variants, fair-load, fltr, fltr2, fl-merge and heavy-ops, plus
/// the extension set — random, round-robin, hill-climb, annealing and
/// critical-path. Called lazily by RunAlgorithm and the experiment harness.
void RegisterBuiltinAlgorithms();

/// Convenience: create + run a registered algorithm by name.
Result<Mapping> RunAlgorithm(const std::string& name,
                             const DeployContext& ctx);

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_ALGORITHM_H_
