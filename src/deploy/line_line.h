// wsflow: algorithm Line-Line and its variants (paper §3.2, appendix).
//
// Both the workflow and the server network are lines. Phase 1 walks the
// workflow left to right, filling servers in order up to a 20% slack over
// their ideal cycle share (Sum_Cycles * P(s) / Sum_Capacity); once the
// remaining operations are no more numerous than the remaining servers it
// degrades to one-operation-per-server so nobody is left idle. Phase 2
// (Fix_Bad_Bridges) scans every server boundary for a *critical bridge* — a
// link in the slowest 20% carrying a crossing message in the largest 20% —
// and shifts the boundary operation across it when the message freed by the
// shift is in the smallest 20% (Fig. 3). Complexity O(M) + O(N).
//
// Variants (paper §3.2): with/without phase 2, and optionally running the
// fill both left-to-right and right-to-left, keeping the better mapping
// under the context's objective weights.

#ifndef WSFLOW_DEPLOY_LINE_LINE_H_
#define WSFLOW_DEPLOY_LINE_LINE_H_

#include "src/deploy/algorithm.h"

namespace wsflow {

struct LineLineOptions {
  /// Run phase 2 (critical-bridge fixing).
  bool fix_bridges = true;
  /// Try both fill directions and keep the cheaper mapping.
  bool both_directions = false;
  /// Phase-1 slack over the ideal share (paper: 0.2).
  double slack = 0.2;
  /// "Slow link" and "small message" quantile for the bridge test
  /// (paper: 20%).
  double bridge_quantile = 0.2;
};

class LineLineAlgorithm : public DeploymentAlgorithm {
 public:
  explicit LineLineAlgorithm(LineLineOptions options = {})
      : options_(options) {}

  std::string_view name() const override { return "line-line"; }

  /// Requires a line workflow; the network may be a line (full algorithm)
  /// or any other topology (phase 2 is skipped — there are no bridges).
  Result<Mapping> Run(const DeployContext& ctx) const override;

 private:
  LineLineOptions options_;
};

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_LINE_LINE_H_
