#include "src/deploy/heavy_ops.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/logging.h"
#include "src/deploy/graph_view.h"
#include "src/deploy/local_search.h"

namespace wsflow {

namespace {

/// Union-find over operations with per-root cycle totals.
class Groups {
 public:
  explicit Groups(const WorkflowView& view) : parent_(view.num_operations()) {
    std::iota(parent_.begin(), parent_.end(), 0u);
    cycles_.resize(view.num_operations());
    for (size_t i = 0; i < parent_.size(); ++i) {
      cycles_[i] = view.Cycles(OperationId(static_cast<uint32_t>(i)));
    }
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the groups of a and b; returns the surviving root.
  uint32_t Union(uint32_t a, uint32_t b) {
    uint32_t ra = Find(a);
    uint32_t rb = Find(b);
    if (ra == rb) return ra;
    parent_[rb] = ra;
    cycles_[ra] += cycles_[rb];
    return ra;
  }

  double CyclesOf(uint32_t root) { return cycles_[Find(root)]; }

  bool SameGroup(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

 private:
  std::vector<uint32_t> parent_;
  std::vector<double> cycles_;
};

/// Transfer time of one message over the network's shared medium (or the
/// slowest point-to-point link as the conservative stand-in).
double TransferTime(const Network& n, double bits) {
  if (n.num_links() == 0) return 0.0;
  const Link* slowest = nullptr;
  if (n.has_bus()) {
    slowest = &n.link(n.bus());
  } else {
    for (const Link& link : n.links()) {
      if (slowest == nullptr || link.speed_bps < slowest->speed_bps) {
        slowest = &link;
      }
    }
  }
  return slowest->propagation_s + bits / slowest->speed_bps;
}

}  // namespace

Result<Mapping> HeavyOpsAlgorithm::Run(const DeployContext& ctx) const {
  WSFLOW_RETURN_IF_ERROR(CheckContext(ctx));
  WorkflowView view(*ctx.workflow, ctx.profile);
  std::vector<double> remaining = IdealCycles(view, *ctx.network);
  WSFLOW_ASSIGN_OR_RETURN(Mapping m, RunWithLedger(ctx, &remaining));
  return PolishMapping(ctx, std::move(m), polish_steps_);
}

Result<Mapping> HeavyOpsAlgorithm::RunWithLedger(
    const DeployContext& ctx, std::vector<double>* remaining_cycles,
    double ledger_scale) const {
  WSFLOW_RETURN_IF_ERROR(CheckContext(ctx));
  const Workflow& w = *ctx.workflow;
  const Network& n = *ctx.network;
  if (remaining_cycles == nullptr ||
      remaining_cycles->size() != n.num_servers()) {
    return Status::InvalidArgument(
        "remaining-cycles ledger must have one entry per server");
  }
  if (!std::isfinite(ledger_scale) || ledger_scale <= 0) {
    return Status::InvalidArgument("ledger scale must be finite and > 0");
  }
  WorkflowView view(w, ctx.profile);
  std::vector<double>& remaining = *remaining_cycles;

  Groups groups(view);
  const size_t num_ops = w.num_operations();
  Mapping m(num_ops);
  size_t unassigned = num_ops;

  // Members per group root; updated on merges.
  std::vector<std::vector<OperationId>> members(num_ops);
  for (size_t i = 0; i < num_ops; ++i) {
    members[i].push_back(OperationId(static_cast<uint32_t>(i)));
  }

  // Live messages: both endpoints unassigned and in different groups.
  std::vector<TransitionId> messages;
  messages.reserve(w.num_transitions());
  for (const Transition& t : w.transitions()) messages.push_back(t.id);

  auto purge_messages = [&] {
    messages.erase(
        std::remove_if(messages.begin(), messages.end(),
                       [&](TransitionId t) {
                         const Transition& edge = w.transition(t);
                         if (m.IsAssigned(edge.from) &&
                             m.IsAssigned(edge.to)) {
                           return true;
                         }
                         return groups.SameGroup(edge.from.value,
                                                 edge.to.value);
                       }),
        messages.end());
  };

  auto assign_group = [&](uint32_t root, ServerId server) {
    root = groups.Find(root);
    for (OperationId op : members[root]) {
      m.Assign(op, server);
      --unassigned;
    }
    remaining[server.value] -= ledger_scale * groups.CyclesOf(root);
    members[root].clear();
  };

  purge_messages();
  while (unassigned > 0) {
    // s1: neediest server.
    size_t s1 = 0;
    for (size_t i = 1; i < remaining.size(); ++i) {
      if (remaining[i] > remaining[s1]) s1 = i;
    }
    // g1: costliest unassigned group.
    uint32_t g1 = 0;
    double g1_cycles = -1;
    for (size_t i = 0; i < num_ops; ++i) {
      uint32_t root = groups.Find(static_cast<uint32_t>(i));
      if (root == i && !members[i].empty() &&
          groups.CyclesOf(root) > g1_cycles) {
        g1 = root;
        g1_cycles = groups.CyclesOf(root);
      }
    }
    WSFLOW_CHECK_GE(g1_cycles, 0.0);
    // m1: biggest live message.
    TransitionId m1;
    double m1_bits = -1;
    for (TransitionId t : messages) {
      double bits = view.MessageBits(t);
      if (bits > m1_bits) {
        m1 = t;
        m1_bits = bits;
      }
    }

    double proc_time = g1_cycles / n.server(ServerId(static_cast<uint32_t>(s1)))
                                       .power_hz();
    double send_time =
        m1.valid() ? large_message_scale_ * TransferTime(n, m1_bits) : -1;

    if (!m1.valid() || proc_time > send_time) {
      // (a) heavy operations beat the biggest message: place the group.
      assign_group(g1, ServerId(static_cast<uint32_t>(s1)));
    } else {
      const Transition& edge = w.transition(m1);
      bool from_assigned = m.IsAssigned(edge.from);
      bool to_assigned = m.IsAssigned(edge.to);
      WSFLOW_CHECK(!(from_assigned && to_assigned));  // purged
      if (from_assigned || to_assigned) {
        // (b1) co-locate the free endpoint's whole group with the placed
        // endpoint (prose-faithful group move; see header).
        OperationId placed = from_assigned ? edge.from : edge.to;
        OperationId free = from_assigned ? edge.to : edge.from;
        assign_group(free.value, m.ServerOf(placed));
      } else {
        // (b2) merge: the two ends will always be deployed together.
        uint32_t ra = groups.Find(edge.from.value);
        uint32_t rb = groups.Find(edge.to.value);
        WSFLOW_CHECK_NE(ra, rb);  // purged
        uint32_t keep = groups.Union(ra, rb);
        uint32_t gone = keep == ra ? rb : ra;
        members[keep].insert(members[keep].end(), members[gone].begin(),
                             members[gone].end());
        members[gone].clear();
      }
    }
    purge_messages();
  }
  return m;
}

}  // namespace wsflow
