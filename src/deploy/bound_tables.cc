#include "src/deploy/bound_tables.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/network/routing.h"
#include "src/workflow/blocks.h"

namespace wsflow {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Result<BoundTables> BoundTables::Build(const DeployContext& ctx,
                                       const ServerMask& mask) {
  if (ctx.workflow == nullptr || ctx.network == nullptr) {
    return Status::InvalidArgument("bound tables need a workflow and network");
  }
  const Workflow& w = *ctx.workflow;
  const Network& n = *ctx.network;
  if (!mask.trivial() && mask.size() != n.num_servers()) {
    return Status::InvalidArgument("mask size does not match the network");
  }

  BoundTables t;
  t.mask_ = mask;
  t.line_ = w.IsLine();
  if (t.line_) {
    WSFLOW_ASSIGN_OR_RETURN(t.order_, w.LineOrder());
  } else {
    WSFLOW_ASSIGN_OR_RETURN(t.order_, w.TopologicalOrder());
  }
  t.pos_of_.assign(w.num_operations(), 0);
  for (size_t i = 0; i < t.order_.size(); ++i) {
    t.pos_of_[t.order_[i].value] = static_cast<uint32_t>(i);
  }

  const size_t N = n.num_servers();
  t.power_.resize(N);
  t.is_alive_.assign(N, 0);
  t.max_alive_power_ = 0;
  t.min_alive_power_ = kInf;
  for (const Server& s : n.servers()) {
    t.power_[s.id().value] = s.power_hz();
    if (mask.alive(s.id())) {
      t.is_alive_[s.id().value] = 1;
      t.alive_.push_back(s.id().value);
      t.max_alive_power_ = std::max(t.max_alive_power_, s.power_hz());
      t.min_alive_power_ = std::min(t.min_alive_power_, s.power_hz());
    }
  }
  if (t.alive_.empty()) {
    return Status::FailedPrecondition("every server is down");
  }

  // All-pairs route table, severed by the mask exactly like the
  // incremental evaluator's (filtering, never rebuilding).
  Router router(n);
  router.WarmAllPairs();
  t.pair_prop_.assign(N * N, 0.0);
  t.pair_spb_.assign(N * N, 0.0);
  t.pair_ok_.assign(N * N, 1);
  for (uint32_t a = 0; a < N; ++a) {
    for (uint32_t b = 0; b < N; ++b) {
      if (a == b) continue;
      const size_t idx = static_cast<size_t>(a) * N + b;
      Result<Route> route = router.FindRoute(ServerId(a), ServerId(b));
      if (!route.ok()) {
        t.pair_ok_[idx] = 0;
        continue;
      }
      if (!mask.trivial() &&
          (!mask.alive(ServerId(a)) || !mask.alive(ServerId(b)) ||
           !RouteAvoidsDown(*route, n, ServerId(a), ServerId(b), mask))) {
        t.pair_ok_[idx] = 0;
        continue;
      }
      t.pair_prop_[idx] = route->TotalPropagation(n);
      double spb = 0;
      for (LinkId l : route->links) spb += 1.0 / n.link(l).speed_bps;
      t.pair_spb_[idx] = spb;
    }
  }

  const size_t M = t.order_.size();
  t.cycles_.resize(M);
  t.wcycles_.resize(M);
  t.min_tproc_.resize(M);
  for (size_t i = 0; i < M; ++i) {
    const OperationId op = t.order_[i];
    const double p =
        ctx.profile == nullptr ? 1.0 : ctx.profile->OperationProb(op);
    t.cycles_[i] = w.operation(op).cycles();
    t.wcycles_[i] = p * t.cycles_[i];
    t.min_tproc_[i] = t.cycles_[i] / t.max_alive_power_;
  }
  t.suffix_wcycles_.assign(M + 1, 0.0);
  t.suffix_min_proc_.assign(M + 1, 0.0);
  for (size_t i = M; i-- > 0;) {
    t.suffix_wcycles_[i] = t.suffix_wcycles_[i + 1] + t.wcycles_[i];
    t.suffix_min_proc_[i] = t.suffix_min_proc_[i + 1] + t.min_tproc_[i];
  }

  // Per-transition zero-or-min-route communication bound: the cheapest
  // feasible (alive x alive) placement of the endpoints. Co-location is
  // always feasible with a shared alive set, so the bound is 0 there —
  // it turns positive only when constraints make co-location impossible,
  // and +infinity when no feasible pair is connected.
  t.edge_bits_.resize(w.num_transitions());
  t.edge_lb_.resize(w.num_transitions());
  t.edge_from_pos_.resize(w.num_transitions());
  t.edge_to_pos_.resize(w.num_transitions());
  for (const Transition& tr : w.transitions()) {
    t.edge_bits_[tr.id.value] = tr.message_bits;
    t.edge_from_pos_[tr.id.value] = t.pos_of_[tr.from.value];
    t.edge_to_pos_[tr.id.value] = t.pos_of_[tr.to.value];
    double lb = kInf;
    for (uint32_t a : t.alive_) {
      for (uint32_t b : t.alive_) {
        lb = std::min(lb, t.PairComm(a, b, tr.message_bits));
        if (lb == 0.0) break;
      }
      if (lb == 0.0) break;
    }
    t.edge_lb_[tr.id.value] = lb;
  }
  if (t.line_) {
    t.suffix_edge_lb_.assign(M, 0.0);
    t.chain_bits_.assign(M, 0.0);
    for (size_t i = M - 1; i-- > 0;) {
      // Chain edge i links positions i and i+1.
      Result<TransitionId> tr = w.FindTransition(t.order_[i], t.order_[i + 1]);
      WSFLOW_CHECK(tr.ok());
      t.chain_bits_[i] = t.edge_bits_[tr->value];
      t.suffix_edge_lb_[i] = t.suffix_edge_lb_[i + 1] + t.edge_lb_[tr->value];
    }
  } else {
    WSFLOW_ASSIGN_OR_RETURN(Block root, DecomposeBlocks(w));
    Status st = Status::OK();
    int root_index = t.FlattenBlock(w, root, &st);
    WSFLOW_RETURN_IF_ERROR(st);
    WSFLOW_CHECK_EQ(root_index, 0);
  }
  return t;
}

int BoundTables::FlattenBlock(const Workflow& w, const Block& block,
                              Status* status) {
  const int index = static_cast<int>(bnodes_.size());
  bnodes_.emplace_back();
  // Fill a local copy and assign at the end: recursion reallocates bnodes_.
  BNode node;
  switch (block.kind) {
    case Block::Kind::kLeaf:
      node.kind = BNode::Kind::kLeaf;
      node.leaf_pos = pos_of_[block.op.value];
      break;
    case Block::Kind::kSequence: {
      node.kind = BNode::Kind::kSequence;
      for (size_t i = 0; i < block.children.size(); ++i) {
        node.children.push_back(FlattenBlock(w, block.children[i], status));
        if (i + 1 < block.children.size()) {
          Result<TransitionId> tr =
              w.FindTransition(TailOperation(block.children[i]),
                               HeadOperation(block.children[i + 1]));
          if (!tr.ok()) {
            *status = tr.status();
            return index;
          }
          node.seq_edges.push_back(*tr);
        }
      }
      break;
    }
    case Block::Kind::kBranch: {
      node.kind = BNode::Kind::kBranch;
      node.branch_type = block.branch_type;
      node.split_pos = pos_of_[block.split.value];
      node.join_pos = pos_of_[block.join.value];
      node.probs = block.branch_probs;
      for (const Block& body : block.children) {
        if (body.kind == Block::Kind::kSequence && body.children.empty()) {
          node.children.push_back(-1);
          node.entry.emplace_back();
          node.exit.emplace_back();
          Result<TransitionId> direct =
              w.FindTransition(block.split, block.join);
          if (!direct.ok()) {
            *status = direct.status();
            return index;
          }
          node.direct.push_back(*direct);
          continue;
        }
        Result<TransitionId> entry =
            w.FindTransition(block.split, HeadOperation(body));
        Result<TransitionId> exit =
            w.FindTransition(TailOperation(body), block.join);
        if (!entry.ok() || !exit.ok()) {
          *status = entry.ok() ? exit.status() : entry.status();
          return index;
        }
        node.children.push_back(FlattenBlock(w, body, status));
        node.entry.push_back(*entry);
        node.exit.push_back(*exit);
        node.direct.emplace_back();
      }
      break;
    }
  }
  bnodes_[index] = std::move(node);
  return index;
}

double BoundTables::PenaltyLowerBound(std::span<const double> loads,
                                      double remaining_wcycles) const {
  // Two admissible views of "penalty = total above-average excess = total
  // below-average deficit" over the alive servers:
  //   excess  — loads only grow and the final average is at most avg_max
  //             (everything remaining on the slowest alive server), so a
  //             server's current excess over avg_max is unavoidable;
  //   deficit — server s can end at most at l_s + remaining / P(s), and
  //             the final average is at least avg_min (everything
  //             remaining on the fastest alive server), so shortfalls
  //             against avg_min are unavoidable too.
  // With remaining == 0 both collapse to the exact penalty.
  double total = 0;
  for (uint32_t s : alive_) total += loads[s];
  const double n = static_cast<double>(alive_.size());
  const double avg_max = (total + remaining_wcycles / min_alive_power_) / n;
  const double avg_min = (total + remaining_wcycles / max_alive_power_) / n;
  double excess = 0, deficit = 0;
  for (uint32_t s : alive_) {
    excess += std::max(0.0, loads[s] - avg_max);
    deficit +=
        std::max(0.0, avg_min - (loads[s] + remaining_wcycles / power_[s]));
  }
  return std::max(excess, deficit);
}

double BoundTables::TprocTerm(uint32_t pos, const Mapping& m) const {
  const ServerId s = m.ServerOf(order_[pos]);
  return s.valid() ? cycles_[pos] / power_[s.value] : min_tproc_[pos];
}

double BoundTables::EdgeTerm(TransitionId t, const Mapping& m,
                             bool* ok) const {
  const OperationId from_op = order_[edge_from_pos_[t.value]];
  const OperationId to_op = order_[edge_to_pos_[t.value]];
  const ServerId a = m.ServerOf(from_op);
  const ServerId b = m.ServerOf(to_op);
  if (a.valid() && b.valid()) {
    const double c = PairComm(a.value, b.value, edge_bits_[t.value]);
    if (std::isinf(c)) {
      *ok = false;
      return 0.0;
    }
    return c;
  }
  const double lb = edge_lb_[t.value];
  if (std::isinf(lb)) {
    *ok = false;
    return 0.0;
  }
  return lb;
}

double BoundTables::EvalBNode(int node, const Mapping& m, bool* ok) const {
  const BNode& b = bnodes_[node];
  switch (b.kind) {
    case BNode::Kind::kLeaf:
      return TprocTerm(b.leaf_pos, m);
    case BNode::Kind::kSequence: {
      double total = 0;
      for (size_t i = 0; i < b.children.size(); ++i) {
        total += EvalBNode(b.children[i], m, ok);
        if (i < b.seq_edges.size()) total += EdgeTerm(b.seq_edges[i], m, ok);
      }
      return total;
    }
    case BNode::Kind::kBranch: {
      const double split_time = TprocTerm(b.split_pos, m);
      const double join_time = TprocTerm(b.join_pos, m);
      double combined = 0;
      bool first = true;
      for (size_t i = 0; i < b.children.size(); ++i) {
        double arm;
        if (b.children[i] < 0) {
          arm = EdgeTerm(b.direct[i], m, ok);
        } else {
          arm = EdgeTerm(b.entry[i], m, ok) + EvalBNode(b.children[i], m, ok) +
                EdgeTerm(b.exit[i], m, ok);
        }
        switch (b.branch_type) {
          case OperationType::kAndSplit:
            combined = first ? arm : std::max(combined, arm);
            break;
          case OperationType::kOrSplit:
            combined = first ? arm : std::min(combined, arm);
            break;
          default:  // kXorSplit
            combined += b.probs[i] * arm;
            break;
        }
        first = false;
      }
      return split_time + combined + join_time;
    }
  }
  return 0;
}

double BoundTables::ExecLowerBound(const Mapping& partial) const {
  if (line_) {
    double total = 0;
    for (size_t i = 0; i < order_.size(); ++i) {
      const ServerId s = partial.ServerOf(order_[i]);
      if (!s.valid()) {
        // Everything from the frontier on is bounded by the suffix tables:
        // remaining T_proc at fastest-alive speed, remaining chain edges
        // (including the one into the frontier) at their zero-or-min-route
        // bounds.
        total += suffix_min_proc_[i];
        total += suffix_edge_lb_[i == 0 ? 0 : i - 1];
        return total;
      }
      total += cycles_[i] / power_[s.value];
      if (i + 1 < order_.size()) {
        const ServerId next = partial.ServerOf(order_[i + 1]);
        if (next.valid()) {
          const double c = PairComm(s.value, next.value, chain_bits_[i]);
          if (std::isinf(c)) return kInf;
          total += c;
        }
      }
    }
    return total;
  }
  bool ok = true;
  const double exec = EvalBNode(0, partial, &ok);
  return ok ? exec : kInf;
}

double BoundTables::PrefixLowerBound(const Mapping& partial,
                                     const CostOptions& options) const {
  const double exec = ExecLowerBound(partial);
  if (std::isinf(exec)) return kInf;
  std::vector<double> loads(num_servers(), 0.0);
  size_t depth = 0;
  for (size_t i = 0; i < order_.size(); ++i) {
    const ServerId s = partial.ServerOf(order_[i]);
    if (!s.valid()) break;
    loads[s.value] += wcycles_[i] / power_[s.value];
    depth = i + 1;
  }
  const double penalty =
      PenaltyLowerBound(loads, suffix_wcycles_[depth]);
  return options.execution_weight * exec + options.fairness_weight * penalty;
}

}  // namespace wsflow
