// wsflow: exhaustive deployment search (paper §3.1).
//
// Enumerates all N^M mappings of M operations to N servers and returns the
// one minimizing the weighted objective. Exponential: used as the optimality
// oracle in tests and in the solution-quality experiments on small
// configurations; Run() refuses search spaces above a configurable cap.

#ifndef WSFLOW_DEPLOY_EXHAUSTIVE_H_
#define WSFLOW_DEPLOY_EXHAUSTIVE_H_

#include "src/deploy/algorithm.h"

namespace wsflow {

class ExhaustiveAlgorithm : public DeploymentAlgorithm {
 public:
  /// `max_configurations` caps N^M; larger spaces are rejected with
  /// ResourceExhausted instead of running for hours.
  explicit ExhaustiveAlgorithm(double max_configurations = 2e7)
      : max_configurations_(max_configurations) {}

  std::string_view name() const override { return "exhaustive"; }

  /// Minimizes cost_options-weighted combined cost. Ties keep the first
  /// mapping in odometer order (all ops on S_0 is enumerated first).
  Result<Mapping> Run(const DeployContext& ctx) const override;

 private:
  double max_configurations_;
};

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_EXHAUSTIVE_H_
