#include "src/deploy/local_search.h"

#include <cmath>
#include <limits>

#include "src/common/random.h"
#include "src/cost/incremental.h"
#include "src/deploy/random_baseline.h"

namespace wsflow {

namespace {

/// Combined cost of the evaluator's working mapping; infinity for
/// constraint-violating mappings so they are never accepted.
Result<double> ScoreWorking(IncrementalEvaluator& eval,
                            const LocalSearchOptions& options,
                            size_t* evaluations) {
  ++*evaluations;
  if (options.constraints != nullptr && !options.constraints->empty()) {
    WSFLOW_ASSIGN_OR_RETURN(double violation,
                            ConstraintViolation(eval, *options.constraints));
    if (violation > 0) return std::numeric_limits<double>::infinity();
  }
  return eval.Combined();
}

}  // namespace

Result<Mapping> HillClimb(const CostModel& model, const Mapping& start,
                          const CostOptions& cost_options,
                          const LocalSearchOptions& options,
                          LocalSearchStats* stats) {
  const size_t M = model.workflow().num_operations();
  const size_t N = model.network().num_servers();

  LocalSearchStats local;
  WSFLOW_ASSIGN_OR_RETURN(
      IncrementalEvaluator eval,
      IncrementalEvaluator::Bind(model, start, cost_options));
  WSFLOW_ASSIGN_OR_RETURN(double current_cost,
                          ScoreWorking(eval, options, &local.evaluations));
  if (std::isinf(current_cost)) {
    return Status::ConstraintViolation(
        "hill climb started from a constraint-violating mapping");
  }
  local.initial_cost = current_cost;

  enum class MoveKind { kNone, kMove, kSwap };
  auto accepts = [&options](double cost, double incumbent) {
    return cost <
           incumbent - options.min_improvement * (1.0 + std::fabs(incumbent));
  };
  // Constraint checks need the per-candidate working state, so only the
  // unconstrained climb can use batch scoring.
  const bool batched =
      options.constraints == nullptr || options.constraints->empty();
  std::vector<ServerId> move_fan;
  std::vector<OperationId> swap_fan;
  std::vector<double> fan_costs;

  while (local.steps < options.max_steps) {
    double best_cost = current_cost;
    MoveKind best_kind = MoveKind::kNone;
    OperationId best_a;
    OperationId best_b;
    ServerId best_server;

    // Moves: reassign one operation. Batched scoring pins the operation's
    // bookkeeping once and sweeps its whole server fan; the constrained
    // path applies, scores and undoes each candidate individually.
    for (uint32_t op = 0; op < M; ++op) {
      ServerId from = eval.mapping().ServerOf(OperationId(op));
      if (batched) {
        move_fan.clear();
        for (uint32_t s = 0; s < N; ++s) {
          if (ServerId(s) != from) move_fan.push_back(ServerId(s));
        }
        fan_costs.resize(move_fan.size());
        WSFLOW_RETURN_IF_ERROR(
            eval.ScoreMoves(OperationId(op), move_fan, fan_costs));
        local.evaluations += move_fan.size();
        for (size_t i = 0; i < move_fan.size(); ++i) {
          if (accepts(fan_costs[i], best_cost)) {
            best_cost = fan_costs[i];
            best_kind = MoveKind::kMove;
            best_a = OperationId(op);
            best_server = move_fan[i];
          }
        }
        continue;
      }
      for (uint32_t s = 0; s < N; ++s) {
        if (ServerId(s) == from) continue;
        WSFLOW_RETURN_IF_ERROR(eval.Apply(OperationId(op), ServerId(s)));
        WSFLOW_ASSIGN_OR_RETURN(
            double cost, ScoreWorking(eval, options, &local.evaluations));
        WSFLOW_RETURN_IF_ERROR(eval.Undo());
        if (accepts(cost, best_cost)) {
          best_cost = cost;
          best_kind = MoveKind::kMove;
          best_a = OperationId(op);
          best_server = ServerId(s);
        }
      }
    }
    // Swaps: exchange the servers of two operations on distinct servers.
    if (options.use_swaps) {
      for (uint32_t a = 0; a < M; ++a) {
        if (batched) {
          swap_fan.clear();
          for (uint32_t b = a + 1; b < M; ++b) {
            if (eval.mapping().ServerOf(OperationId(a)) !=
                eval.mapping().ServerOf(OperationId(b))) {
              swap_fan.push_back(OperationId(b));
            }
          }
          fan_costs.resize(swap_fan.size());
          WSFLOW_RETURN_IF_ERROR(
              eval.ScoreSwaps(OperationId(a), swap_fan, fan_costs));
          local.evaluations += swap_fan.size();
          for (size_t i = 0; i < swap_fan.size(); ++i) {
            if (accepts(fan_costs[i], best_cost)) {
              best_cost = fan_costs[i];
              best_kind = MoveKind::kSwap;
              best_a = OperationId(a);
              best_b = swap_fan[i];
            }
          }
          continue;
        }
        for (uint32_t b = a + 1; b < M; ++b) {
          if (eval.mapping().ServerOf(OperationId(a)) ==
              eval.mapping().ServerOf(OperationId(b))) {
            continue;
          }
          WSFLOW_RETURN_IF_ERROR(eval.Swap(OperationId(a), OperationId(b)));
          WSFLOW_ASSIGN_OR_RETURN(
              double cost, ScoreWorking(eval, options, &local.evaluations));
          WSFLOW_RETURN_IF_ERROR(eval.Undo());
          if (accepts(cost, best_cost)) {
            best_cost = cost;
            best_kind = MoveKind::kSwap;
            best_a = OperationId(a);
            best_b = OperationId(b);
          }
        }
      }
    }

    if (best_kind == MoveKind::kNone) break;
    if (best_kind == MoveKind::kMove) {
      WSFLOW_RETURN_IF_ERROR(eval.Move(best_a, best_server));
    } else {
      WSFLOW_RETURN_IF_ERROR(eval.Swap(best_a, best_b));
    }
    // The accepted move is permanent: drop the undo entry Swap just
    // recorded so a long climb cannot grow the history without bound.
    eval.ClearHistory();
    current_cost = best_cost;
    ++local.steps;
  }

  local.final_cost = current_cost;
  local.full_evaluations = eval.counters().full_evaluations;
  local.delta_evaluations = eval.counters().delta_evaluations;
  local.penalty_fast = eval.counters().penalty_fast;
  local.penalty_full = eval.counters().penalty_full;
  local.edge_memo_hits = eval.counters().edge_memo_hits;
  local.edge_memo_misses = eval.counters().edge_memo_misses;
  local.soa_fans = eval.counters().soa_fans;
  local.soa_candidates = eval.counters().soa_candidates;
  local.grid_cells = eval.counters().grid_cells;
  local.grid_hits = eval.counters().grid_hits;
  local.arm_path_nodes = eval.counters().arm_path_nodes;
  local.full_path_nodes = eval.counters().full_path_nodes;
  if (stats != nullptr) *stats = local;
  return eval.mapping();
}

Result<Mapping> PolishMapping(const DeployContext& ctx, Mapping m,
                              size_t steps) {
  if (steps == 0) return m;
  CostModel model(*ctx.workflow, *ctx.network, ctx.profile);
  LocalSearchOptions options;
  options.max_steps = steps;
  return HillClimb(model, m, ctx.cost_options, options);
}

Result<Mapping> HillClimbAlgorithm::Run(const DeployContext& ctx) const {
  WSFLOW_RETURN_IF_ERROR(CheckContext(ctx));
  CostModel model(*ctx.workflow, *ctx.network, ctx.profile);
  Rng rng(ctx.seed);
  Mapping start = RandomMapping(ctx.workflow->num_operations(),
                                ctx.network->num_servers(), &rng);
  LocalSearchOptions options = options_;
  if (options.constraints != nullptr) {
    ApplyPins(*options.constraints, &start);
  }
  return HillClimb(model, start, ctx.cost_options, options);
}

}  // namespace wsflow
