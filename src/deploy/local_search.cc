#include "src/deploy/local_search.h"

#include <cmath>
#include <limits>

#include "src/common/random.h"
#include "src/deploy/random_baseline.h"

namespace wsflow {

namespace {

/// Combined cost; infinity for constraint-violating mappings so they are
/// never accepted.
Result<double> CostOf(const CostModel& model, const Mapping& m,
                      const CostOptions& cost_options,
                      const LocalSearchOptions& options, size_t* evaluations) {
  ++*evaluations;
  if (options.constraints != nullptr && !options.constraints->empty()) {
    WSFLOW_ASSIGN_OR_RETURN(
        double violation,
        ConstraintViolation(model, m, *options.constraints));
    if (violation > 0) return std::numeric_limits<double>::infinity();
  }
  WSFLOW_ASSIGN_OR_RETURN(CostBreakdown cost, model.Evaluate(m, cost_options));
  return cost.combined;
}

}  // namespace

Result<Mapping> HillClimb(const CostModel& model, const Mapping& start,
                          const CostOptions& cost_options,
                          const LocalSearchOptions& options,
                          LocalSearchStats* stats) {
  WSFLOW_RETURN_IF_ERROR(
      start.ValidateAgainst(model.workflow(), model.network()));
  const size_t M = model.workflow().num_operations();
  const size_t N = model.network().num_servers();

  LocalSearchStats local;
  Mapping current = start;
  WSFLOW_ASSIGN_OR_RETURN(
      double current_cost,
      CostOf(model, current, cost_options, options, &local.evaluations));
  if (std::isinf(current_cost)) {
    return Status::ConstraintViolation(
        "hill climb started from a constraint-violating mapping");
  }
  local.initial_cost = current_cost;

  while (local.steps < options.max_steps) {
    double best_cost = current_cost;
    Mapping best = current;
    bool improved = false;

    // Moves: reassign one operation.
    for (uint32_t op = 0; op < M; ++op) {
      ServerId from = current.ServerOf(OperationId(op));
      for (uint32_t s = 0; s < N; ++s) {
        if (ServerId(s) == from) continue;
        Mapping candidate = current;
        candidate.Assign(OperationId(op), ServerId(s));
        WSFLOW_ASSIGN_OR_RETURN(
            double cost, CostOf(model, candidate, cost_options, options,
                                &local.evaluations));
        if (cost < best_cost) {
          best_cost = cost;
          best = std::move(candidate);
          improved = true;
        }
      }
    }
    // Swaps: exchange the servers of two operations on distinct servers.
    if (options.use_swaps) {
      for (uint32_t a = 0; a < M; ++a) {
        for (uint32_t b = a + 1; b < M; ++b) {
          ServerId sa = current.ServerOf(OperationId(a));
          ServerId sb = current.ServerOf(OperationId(b));
          if (sa == sb) continue;
          Mapping candidate = current;
          candidate.Assign(OperationId(a), sb);
          candidate.Assign(OperationId(b), sa);
          WSFLOW_ASSIGN_OR_RETURN(
              double cost, CostOf(model, candidate, cost_options, options,
                                  &local.evaluations));
          if (cost < best_cost) {
            best_cost = cost;
            best = std::move(candidate);
            improved = true;
          }
        }
      }
    }

    if (!improved) break;
    current = std::move(best);
    current_cost = best_cost;
    ++local.steps;
  }

  local.final_cost = current_cost;
  if (stats != nullptr) *stats = local;
  return current;
}

Result<Mapping> HillClimbAlgorithm::Run(const DeployContext& ctx) const {
  WSFLOW_RETURN_IF_ERROR(CheckContext(ctx));
  CostModel model(*ctx.workflow, *ctx.network, ctx.profile);
  Rng rng(ctx.seed);
  Mapping start = RandomMapping(ctx.workflow->num_operations(),
                                ctx.network->num_servers(), &rng);
  LocalSearchOptions options = options_;
  if (options.constraints != nullptr) {
    ApplyPins(*options.constraints, &start);
  }
  return HillClimb(model, start, ctx.cost_options, options);
}

}  // namespace wsflow
