#include "src/deploy/algorithm.h"

#include <algorithm>
#include <mutex>

#include "src/common/logging.h"
#include "src/deploy/annealing.h"
#include "src/deploy/astar.h"
#include "src/deploy/branch_bound.h"
#include "src/deploy/critical_path.h"
#include "src/deploy/exhaustive.h"
#include "src/deploy/fair_load.h"
#include "src/deploy/fl_merge.h"
#include "src/deploy/fltr.h"
#include "src/deploy/fltr2.h"
#include "src/deploy/geo.h"
#include "src/deploy/heavy_ops.h"
#include "src/deploy/line_line.h"
#include "src/deploy/local_search.h"
#include "src/deploy/parallel.h"
#include "src/deploy/portfolio.h"
#include "src/deploy/random_baseline.h"
#include "src/deploy/round_robin.h"

namespace wsflow {

Status DeploymentAlgorithm::CheckContext(const DeployContext& ctx) {
  if (ctx.workflow == nullptr || ctx.network == nullptr) {
    return Status::InvalidArgument("context needs a workflow and a network");
  }
  if (ctx.workflow->num_operations() == 0) {
    return Status::InvalidArgument("workflow has no operations");
  }
  if (ctx.network->num_servers() == 0) {
    return Status::InvalidArgument("network has no servers");
  }
  if (ctx.profile != nullptr) {
    if (ctx.profile->op_prob.size() != ctx.workflow->num_operations() ||
        ctx.profile->edge_prob.size() != ctx.workflow->num_transitions()) {
      return Status::InvalidArgument(
          "execution profile does not match the workflow");
    }
  }
  return Status::OK();
}

AlgorithmRegistry& AlgorithmRegistry::Global() {
  static AlgorithmRegistry* registry = new AlgorithmRegistry();
  return *registry;
}

Status AlgorithmRegistry::Register(const std::string& name,
                                   AlgorithmFactory factory) {
  if (Contains(name)) {
    return Status::AlreadyExists("algorithm '" + name +
                                 "' already registered");
  }
  if (!factory) {
    return Status::InvalidArgument("null algorithm factory");
  }
  entries_.emplace_back(name, std::move(factory));
  return Status::OK();
}

Result<std::unique_ptr<DeploymentAlgorithm>> AlgorithmRegistry::Create(
    const std::string& name) const {
  for (const auto& [key, factory] : entries_) {
    if (key == name) return factory();
  }
  return Status::NotFound("no algorithm named '" + name + "'");
}

bool AlgorithmRegistry::Contains(const std::string& name) const {
  for (const auto& [key, factory] : entries_) {
    if (key == name) return true;
  }
  return false;
}

std::vector<std::string> AlgorithmRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [key, factory] : entries_) names.push_back(key);
  std::sort(names.begin(), names.end());
  return names;
}

void RegisterBuiltinAlgorithms() {
  static std::once_flag once;
  std::call_once(once, [] {
    AlgorithmRegistry& r = AlgorithmRegistry::Global();
    auto add = [&r](const std::string& name, AlgorithmFactory factory) {
      Status st = r.Register(name, std::move(factory));
      WSFLOW_CHECK(st.ok()) << st.ToString();
    };
    add("exhaustive",
        [] { return std::make_unique<ExhaustiveAlgorithm>(); });
    add("random", [] { return std::make_unique<RandomDeployment>(); });
    add("line-line", [] {
      return std::make_unique<LineLineAlgorithm>(LineLineOptions{});
    });
    add("line-line-nofix", [] {
      LineLineOptions opt;
      opt.fix_bridges = false;
      return std::make_unique<LineLineAlgorithm>(opt);
    });
    add("line-line-bidir", [] {
      LineLineOptions opt;
      opt.both_directions = true;
      return std::make_unique<LineLineAlgorithm>(opt);
    });
    add("line-line-bidir-nofix", [] {
      LineLineOptions opt;
      opt.both_directions = true;
      opt.fix_bridges = false;
      return std::make_unique<LineLineAlgorithm>(opt);
    });
    add("fair-load", [] { return std::make_unique<FairLoadAlgorithm>(); });
    add("fltr", [] { return std::make_unique<FltrAlgorithm>(); });
    add("fltr2", [] { return std::make_unique<Fltr2Algorithm>(); });
    add("fl-merge", [] { return std::make_unique<FlMergeAlgorithm>(); });
    add("heavy-ops", [] { return std::make_unique<HeavyOpsAlgorithm>(); });
    // Greedy constructions refined by a short delta-evaluated hill climb.
    add("fltr-polish", [] {
      return std::make_unique<FltrAlgorithm>(/*random_init=*/true,
                                             /*polish_steps=*/50);
    });
    add("fltr2-polish", [] {
      return std::make_unique<Fltr2Algorithm>(/*random_init=*/true,
                                              /*polish_steps=*/50);
    });
    add("heavy-ops-polish", [] {
      return std::make_unique<HeavyOpsAlgorithm>(/*large_message_scale=*/1.0,
                                                 /*polish_steps=*/50);
    });
    add("hill-climb", [] {
      return std::make_unique<HillClimbAlgorithm>(LocalSearchOptions{});
    });
    add("round-robin", [] { return std::make_unique<RoundRobinAlgorithm>(); });
    add("annealing", [] {
      return std::make_unique<AnnealingAlgorithm>(AnnealingOptions{});
    });
    add("critical-path",
        [] { return std::make_unique<CriticalPathAlgorithm>(); });
    add("annealing-par", [] {
      return std::make_unique<ParallelAnnealingAlgorithm>(
          ParallelSearchOptions{});
    });
    add("climb-par", [] {
      return std::make_unique<ParallelHillClimbAlgorithm>(
          ParallelSearchOptions{});
    });
    add("portfolio", [] { return std::make_unique<PortfolioAlgorithm>(); });
    // Default portfolio plus the parallel searches: the heuristics give a
    // strong fast floor, the multi-chain searches spend the remaining
    // budget refining it.
    add("portfolio-par", [] {
      return std::make_unique<PortfolioAlgorithm>(std::vector<std::string>{
          "fair-load", "fltr", "fltr2", "fl-merge", "heavy-ops",
          "critical-path", "climb-par", "annealing-par"});
    });
    add("branch-bound",
        [] { return std::make_unique<BranchBoundAlgorithm>(); });
    // Exact best-first search over prefix assignments; "astar" certifies
    // optimality or fails at the node budget, "astar-anytime" seeds a
    // heuristic incumbent and degrades to it gracefully instead.
    add("astar", [] { return std::make_unique<AStarAlgorithm>(); });
    add("astar-anytime", [] {
      AStarOptions opt;
      opt.anytime = true;
      return std::make_unique<AStarAlgorithm>(opt);
    });
    // Locality-aware wrappers for geo-distributed (zoned) networks: run
    // the base heuristic AND a zone-aware seed, keep the cheaper mapping.
    add("heavy-ops-geo", [] {
      return std::make_unique<GeoLocalityAlgorithm>("heavy-ops");
    });
    add("fltr2-geo", [] {
      return std::make_unique<GeoLocalityAlgorithm>("fltr2");
    });
    add("fair-load-geo", [] {
      return std::make_unique<GeoLocalityAlgorithm>("fair-load");
    });
  });
}

Result<Mapping> RunAlgorithm(const std::string& name,
                             const DeployContext& ctx) {
  RegisterBuiltinAlgorithms();
  WSFLOW_ASSIGN_OR_RETURN(std::unique_ptr<DeploymentAlgorithm> algo,
                          AlgorithmRegistry::Global().Create(name));
  return algo->Run(ctx);
}

}  // namespace wsflow
