#include "src/deploy/fair_load.h"

#include <algorithm>

#include "src/common/logging.h"

namespace wsflow {

ServerLedger::ServerLedger(const WorkflowView& view, const Network& network)
    : remaining_(IdealCycles(view, network)) {}

ServerId ServerLedger::Top() const {
  WSFLOW_CHECK(!remaining_.empty());
  size_t best = 0;
  for (size_t i = 1; i < remaining_.size(); ++i) {
    if (remaining_[i] > remaining_[best]) best = i;
  }
  return ServerId(static_cast<uint32_t>(best));
}

std::vector<ServerId> ServerLedger::TopTies() const {
  ServerId top = Top();
  std::vector<ServerId> ties;
  for (size_t i = 0; i < remaining_.size(); ++i) {
    if (remaining_[i] == remaining_[top.value]) {
      ties.push_back(ServerId(static_cast<uint32_t>(i)));
    }
  }
  return ties;
}

void ServerLedger::Charge(ServerId server, double cycles) {
  WSFLOW_CHECK_LT(server.value, remaining_.size());
  remaining_[server.value] -= cycles;
}

double ServerLedger::Remaining(ServerId server) const {
  WSFLOW_CHECK_LT(server.value, remaining_.size());
  return remaining_[server.value];
}

std::vector<OperationId> OperationsByDescendingCycles(
    const WorkflowView& view) {
  std::vector<OperationId> ops;
  ops.reserve(view.num_operations());
  for (size_t i = 0; i < view.num_operations(); ++i) {
    ops.push_back(OperationId(static_cast<uint32_t>(i)));
  }
  std::stable_sort(ops.begin(), ops.end(),
                   [&view](OperationId a, OperationId b) {
                     double ca = view.Cycles(a);
                     double cb = view.Cycles(b);
                     if (ca != cb) return ca > cb;
                     return a.value < b.value;
                   });
  return ops;
}

Result<Mapping> FairLoadAlgorithm::Run(const DeployContext& ctx) const {
  WSFLOW_RETURN_IF_ERROR(CheckContext(ctx));
  WorkflowView view(*ctx.workflow, ctx.profile);
  ServerLedger ledger(view, *ctx.network);

  Mapping m(ctx.workflow->num_operations());
  for (OperationId op : OperationsByDescendingCycles(view)) {
    ServerId s = ledger.Top();
    m.Assign(op, s);
    ledger.Charge(s, view.Cycles(op));
  }
  return m;
}

}  // namespace wsflow
