// wsflow: algorithm Fair Load - Tie Resolver for Cycles (FLTR, paper §3.3,
// Fig. 4/5).
//
// Fair Load with one refinement: when several not-yet-assigned operations
// tie on cycle cost at the head of the sorted list, the tie is broken by the
// gain function Gain_Of_Operation_At_Server — the message bits that stay off
// the bus if the candidate operation lands on the currently neediest server
// next to already-placed neighbours. Following the paper, the working
// mapping starts from a *random* configuration (seeded by the context) so
// the gain function returns non-trivial values from the first step; proper
// assignments overwrite the random ones as operations are processed.
// Complexity O(M * (M logM + N logN + M N)).

#ifndef WSFLOW_DEPLOY_FLTR_H_
#define WSFLOW_DEPLOY_FLTR_H_

#include "src/deploy/algorithm.h"

namespace wsflow {

class FltrAlgorithm : public DeploymentAlgorithm {
 public:
  /// `random_init` = false replaces the paper's random initial mapping with
  /// an empty one (gains then only see properly assigned neighbours);
  /// exposed for the ablation bench. `polish_steps` > 0 refines the greedy
  /// result with that many delta-evaluated hill-climb improvements
  /// (registered separately as "fltr-polish"); 0 keeps the paper's output.
  explicit FltrAlgorithm(bool random_init = true, size_t polish_steps = 0)
      : random_init_(random_init), polish_steps_(polish_steps) {}

  std::string_view name() const override {
    return polish_steps_ > 0 ? "fltr-polish" : "fltr";
  }
  Result<Mapping> Run(const DeployContext& ctx) const override;

 private:
  bool random_init_;
  size_t polish_steps_;
};

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_FLTR_H_
