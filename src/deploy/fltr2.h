// wsflow: algorithm Fair Load - Tie Resolver for Cycles and Servers
// (FLTR2, paper §3.3, appendix).
//
// Extends FLTR: when servers also tie on remaining ideal cycles, the gain
// function is maximized jointly over the operation tie group and the server
// tie group, picking the (operation, server) pair that keeps the most
// message bits off the network. Complexity O(M * (M logM + N logN + M N)).

#ifndef WSFLOW_DEPLOY_FLTR2_H_
#define WSFLOW_DEPLOY_FLTR2_H_

#include "src/deploy/algorithm.h"

namespace wsflow {

class Fltr2Algorithm : public DeploymentAlgorithm {
 public:
  /// See FltrAlgorithm for `random_init` and `polish_steps`.
  explicit Fltr2Algorithm(bool random_init = true, size_t polish_steps = 0)
      : random_init_(random_init), polish_steps_(polish_steps) {}

  std::string_view name() const override {
    return polish_steps_ > 0 ? "fltr2-polish" : "fltr2";
  }
  Result<Mapping> Run(const DeployContext& ctx) const override;

 private:
  bool random_init_;
  size_t polish_steps_;
};

/// One FLTR2 selection step, shared with FL-Merge-Messages'-Ends: among
/// pending operations tied with the heaviest and servers tied with the
/// neediest, the pair with the maximal gain (first in operation-then-server
/// order on equal gain). Returns the index into `pending` and the server.
struct TieSelection {
  size_t pending_index = 0;
  ServerId server;
  double gain = 0;
};

class WorkflowView;
class ServerLedger;

TieSelection SelectByGain(const WorkflowView& view, const ServerLedger& ledger,
                          const std::vector<OperationId>& pending,
                          const Mapping& m);

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_FLTR2_H_
