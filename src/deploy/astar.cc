#include "src/deploy/astar.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/logging.h"
#include "src/deploy/bound_tables.h"
#include "src/deploy/local_search.h"
#include "src/deploy/portfolio.h"

namespace wsflow {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

uint64_t Mix2(uint64_t h, uint64_t v) {
  h = (h ^ v) * 0x100000001b3ULL;
  return h ^ (h >> 29);
}

uint64_t LoadBits(double load) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(load));
  __builtin_memcpy(&bits, &load, sizeof(bits));
  return bits;
}

/// Open-addressing transposition table: 128-bit canonical-state key ->
/// cheapest known prefix cost. Flat slots and linear probing keep the
/// per-state overhead at 24 bytes; the double-width key makes an
/// accidental collision (which could prune a non-dominated state and cost
/// exactness) astronomically unlikely even at tens of millions of entries.
class TranspositionTable {
 public:
  struct Slot {
    uint64_t k1 = 0, k2 = 0;  // (0, 0) marks an empty slot
    double g = 0;
  };

  void Reserve(size_t expected) {
    size_t cap = 1024;
    while (cap < expected * 2) cap <<= 1;
    slots_.assign(cap, Slot{});
    size_ = 0;
  }

  /// The slot for (k1, k2), growing the table as needed. `*found` tells
  /// whether the key already had an entry.
  Slot* FindOrInsert(uint64_t k1, uint64_t k2, bool* found) {
    if (k1 == 0 && k2 == 0) k1 = 1;
    if ((size_ + 1) * 3 > slots_.size() * 2) Grow();
    Slot* slot = Probe(k1, k2, found);
    if (!*found) {
      slot->k1 = k1;
      slot->k2 = k2;
      ++size_;
    }
    return slot;
  }

  /// Lookup without insertion; nullptr when absent.
  const Slot* Find(uint64_t k1, uint64_t k2) const {
    if (k1 == 0 && k2 == 0) k1 = 1;
    bool found = false;
    const Slot* slot = const_cast<TranspositionTable*>(this)->Probe(
        k1, k2, &found);
    return found ? slot : nullptr;
  }

 private:
  Slot* Probe(uint64_t k1, uint64_t k2, bool* found) {
    const size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(k1 ^ (k2 * 0x9e3779b97f4a7c15ULL)) & mask;
    for (;;) {
      Slot& s = slots_[i];
      if (s.k1 == 0 && s.k2 == 0) {
        *found = false;
        return &s;
      }
      if (s.k1 == k1 && s.k2 == k2) {
        *found = true;
        return &s;
      }
      i = (i + 1) & mask;
    }
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    size_ = 0;
    bool found;
    for (const Slot& s : old) {
      if (s.k1 == 0 && s.k2 == 0) continue;
      Slot* slot = Probe(s.k1, s.k2, &found);
      *slot = s;
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

/// One search state: a prefix assignment reached by placing `server` at
/// position `depth - 1` of the parent's prefix. 16 bytes; assignments are
/// reconstructed by walking the parent chain.
struct NodeRec {
  int32_t parent = -1;
  uint16_t depth = 0;
  uint16_t server = 0;
  double g_exec = 0;  ///< Line path: exact prefix T_proc + T_comm sum.
};

struct HeapEntry {
  double f = 0;
  uint32_t idx = 0;
};

/// Min-heap order on (f, insertion index): the index tie-break makes pop
/// order — and therefore the returned optimum among cost ties — fully
/// deterministic.
struct HeapCmp {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    return a.f > b.f || (a.f == b.f && a.idx > b.idx);
  }
};

class Search {
 public:
  Search(const DeployContext& ctx, const AStarOptions& options,
         AStarStats* stats)
      : ctx_(ctx), options_(options), stats_(stats) {}

  Status Prepare() {
    WSFLOW_ASSIGN_OR_RETURN(tables_,
                            BoundTables::Build(ctx_, options_.mask));
    if (tables_.num_servers() > 0xFFFF || tables_.num_ops() > 0xFFFF) {
      return Status::InvalidArgument(
          "astar supports at most 65535 operations and servers");
    }
    M_ = tables_.num_ops();
    N_ = tables_.num_servers();
    symmetric_ = ctx_.network->has_bus();
    loads_.assign(N_, 0.0);
    prefix_servers_.assign(M_, 0);
    scratch_mapping_ = Mapping(ctx_.workflow->num_operations());
    if (options_.anytime) SeedIncumbent();
    return Status::OK();
  }

  Result<Mapping> Run() {
    arena_.reserve(std::min<size_t>(options_.max_nodes, 1 << 20));
    if (tables_.line()) tt_.Reserve(1 << 14);
    // Root: the empty prefix.
    arena_.push_back(NodeRec{});
    ++stats_->generated;
    PushHeap(RootBound(), 0);

    while (!heap_.empty()) {
      const HeapEntry top = PopHeap();
      const NodeRec node = arena_[top.idx];
      if (top.f >= incumbent_cost_ - 1e-15) {
        if (!have_incumbent_) {
          // incumbent_cost_ is +inf here, so top.f is too: some remaining
          // edge has no feasible connected placement at all.
          return Status::FailedPrecondition(
              "every completion routes a message between disconnected "
              "servers");
        }
        // Admissible f: nothing left on the frontier can beat the
        // incumbent, which is therefore optimal.
        stats_->proven_optimal = true;
        return FinishWithIncumbent();
      }
      Reconstruct(node, top.idx);
      if (tables_.line() && node.depth > 0 && StalePop(node)) {
        ++stats_->pruned_dominance;
        continue;
      }
      if (node.depth == M_) {
        stats_->proven_optimal = true;
        stats_->best_cost = top.f;
        if (top.f < incumbent_cost_) return PrefixMapping(node.depth);
        return FinishWithIncumbent();
      }
      ++stats_->expanded;
      Status st = tables_.line() ? ExpandLine(node, top.idx)
                                 : ExpandGraph(node, top.idx);
      if (!st.ok()) {
        if (st.IsResourceExhausted() && options_.anytime &&
            have_incumbent_) {
          return FinishWithIncumbent();
        }
        return st;
      }
    }
    if (have_incumbent_) {
      // Every state was pruned against the incumbent: it is optimal.
      stats_->proven_optimal = true;
      return FinishWithIncumbent();
    }
    return Status::FailedPrecondition(
        "every completion routes a message between disconnected servers");
  }

 private:
  // ---- incumbent ----

  void SeedIncumbent() {
    PortfolioAlgorithm portfolio;
    Result<Mapping> m = portfolio.Run(ctx_);
    if (!m.ok()) return;
    CostModel model(*ctx_.workflow, *ctx_.network, ctx_.profile);
    Result<Mapping> refined =
        HillClimb(model, *m, ctx_.cost_options, LocalSearchOptions{});
    Mapping best = refined.ok() ? std::move(*refined) : std::move(*m);
    // Internal (decomposed) arithmetic keeps the incumbent comparable to
    // search-node f values; infeasible under the mask -> +inf, no pruning.
    const double cost =
        tables_.PrefixLowerBound(best, ctx_.cost_options);
    if (std::isinf(cost)) return;
    incumbent_ = std::move(best);
    incumbent_cost_ = cost;
    have_incumbent_ = true;
    stats_->incumbent_cost = cost;
  }

  Result<Mapping> FinishWithIncumbent() {
    if (stats_->best_cost > incumbent_cost_) {
      stats_->best_cost = incumbent_cost_;
    }
    if (!have_incumbent_) {
      return Status::Internal("astar: no incumbent to return");
    }
    return incumbent_;
  }

  // ---- state reconstruction ----

  /// Rebuilds prefix_servers_[0 .. depth) and loads_ for `node` (stored at
  /// arena index `idx`) by walking the parent chain.
  void Reconstruct(const NodeRec& node, uint32_t idx) {
    std::fill(loads_.begin(), loads_.end(), 0.0);
    uint32_t cur = idx;
    const NodeRec* rec = &node;
    for (size_t d = node.depth; d-- > 0;) {
      prefix_servers_[d] = rec->server;
      loads_[rec->server] += tables_.LoadOf(d, rec->server);
      cur = static_cast<uint32_t>(rec->parent);
      rec = &arena_[cur];
    }
  }

  Mapping PrefixMapping(size_t depth) const {
    Mapping m(ctx_.workflow->num_operations());
    for (size_t d = 0; d < depth; ++d) {
      m.Assign(tables_.order()[d], ServerId(prefix_servers_[d]));
    }
    return m;
  }

  double RootBound() {
    std::fill(loads_.begin(), loads_.end(), 0.0);
    if (!tables_.line()) {
      ClearScratchMapping();
      return tables_.PrefixLowerBound(scratch_mapping_, ctx_.cost_options);
    }
    const double exec =
        tables_.SuffixMinProc(0) + (M_ > 0 ? tables_.SuffixEdgeLb(0) : 0.0);
    const double pen =
        tables_.PenaltyLowerBound(loads_, tables_.SuffixWeightedCycles(0));
    return ctx_.cost_options.execution_weight * exec +
           ctx_.cost_options.fairness_weight * pen;
  }

  // ---- dominance (line only) ----

  /// Canonical-state key: depth, the frontier (last assigned) server and
  /// the full per-server load vector, hashed twice independently. Two
  /// line states agreeing on all three have identical completion futures.
  void StateKey(size_t depth, uint32_t last_server, uint64_t* k1,
                uint64_t* k2) const {
    uint64_t a = 0x243F6A8885A308D3ULL, b = 0x13198A2E03707344ULL;
    a = Mix(a, depth);
    b = Mix2(b, depth);
    a = Mix(a, last_server);
    b = Mix2(b, last_server);
    for (uint32_t s : tables_.alive_servers()) {
      const uint64_t bits = LoadBits(loads_[s]);
      a = Mix(a, bits);
      b = Mix2(b, bits);
    }
    *k1 = a;
    *k2 = b;
  }

  /// True when a strictly cheaper same-key state superseded `node` after
  /// it was pushed (loads_ must hold the node's reconstruction).
  bool StalePop(const NodeRec& node) const {
    uint64_t k1, k2;
    StateKey(node.depth, node.server, &k1, &k2);
    const TranspositionTable::Slot* slot = tt_.Find(k1, k2);
    return slot != nullptr && slot->g < node.g_exec;
  }

  // ---- expansion ----

  Status ExpandLine(const NodeRec& node, uint32_t idx) {
    const size_t depth = node.depth;
    const double h_proc = tables_.SuffixMinProc(depth + 1);
    const double h_comm = tables_.SuffixEdgeLb(depth);
    const double remaining = tables_.SuffixWeightedCycles(depth + 1);
    const double we = ctx_.cost_options.execution_weight;
    const double wf = ctx_.cost_options.fairness_weight;
    for (uint32_t s : tables_.alive_servers()) {
      if (symmetric_ && loads_[s] == 0.0 && DuplicateEmptyServer(s)) {
        continue;
      }
      double comm = 0;
      if (depth > 0) {
        comm = tables_.PairComm(prefix_servers_[depth - 1], s,
                               tables_.chain_bits(depth - 1));
        if (std::isinf(comm)) {
          ++stats_->pruned_bound;
          continue;
        }
      }
      const double g2 = node.g_exec + tables_.Tproc(depth, s) + comm;
      const double load_add = tables_.LoadOf(depth, s);
      loads_[s] += load_add;
      const double pen = tables_.PenaltyLowerBound(loads_, remaining);
      const double f2 = we * (g2 + h_proc + h_comm) + wf * pen;
      bool keep = f2 < incumbent_cost_ - 1e-15;
      if (!keep) {
        ++stats_->pruned_bound;
      } else {
        uint64_t k1, k2;
        StateKey(depth + 1, s, &k1, &k2);
        bool found = false;
        TranspositionTable::Slot* slot = tt_.FindOrInsert(k1, k2, &found);
        if (found) {
          ++stats_->tt_hits;
          if (slot->g <= g2) {
            ++stats_->pruned_dominance;
            keep = false;
          } else {
            slot->g = g2;
          }
        } else {
          slot->g = g2;
        }
      }
      loads_[s] -= load_add;
      if (!keep) continue;
      WSFLOW_RETURN_IF_ERROR(PushChild(idx, depth, s, g2, f2));
    }
    return Status::OK();
  }

  Status ExpandGraph(const NodeRec& node, uint32_t idx) {
    const size_t depth = node.depth;
    SyncScratchMapping(depth);
    const OperationId op = tables_.order()[depth];
    for (uint32_t s : tables_.alive_servers()) {
      if (symmetric_ && loads_[s] == 0.0 && DuplicateEmptyServer(s)) {
        continue;
      }
      scratch_mapping_.Assign(op, ServerId(s));
      const double f2 =
          tables_.PrefixLowerBound(scratch_mapping_, ctx_.cost_options);
      scratch_mapping_.Unassign(op);
      if (!(f2 < incumbent_cost_ - 1e-15)) {
        ++stats_->pruned_bound;
        continue;
      }
      WSFLOW_RETURN_IF_ERROR(PushChild(idx, depth, s, 0.0, f2));
    }
    return Status::OK();
  }

  /// Bus symmetry breaking (as in branch_bound): a second empty server of
  /// equal power is interchangeable with the first, so only the first of
  /// each class is branched on.
  bool DuplicateEmptyServer(uint32_t s) const {
    for (uint32_t prev : tables_.alive_servers()) {
      if (prev >= s) break;
      if (loads_[prev] == 0.0 &&
          tables_.power(prev) == tables_.power(s)) {
        return true;
      }
    }
    return false;
  }

  Status PushChild(uint32_t parent, size_t depth, uint32_t server, double g,
                   double f) {
    if (arena_.size() >= options_.max_nodes) {
      return Status::ResourceExhausted(
          "astar exceeded " + std::to_string(options_.max_nodes) +
          " generated nodes");
    }
    NodeRec child;
    child.parent = static_cast<int32_t>(parent);
    child.depth = static_cast<uint16_t>(depth + 1);
    child.server = static_cast<uint16_t>(server);
    child.g_exec = g;
    const uint32_t child_idx = static_cast<uint32_t>(arena_.size());
    arena_.push_back(child);
    ++stats_->generated;
    PushHeap(f, child_idx);
    return Status::OK();
  }

  // ---- graph scratch mapping ----

  void ClearScratchMapping() {
    for (size_t d = 0; d < scratch_depth_; ++d) {
      scratch_mapping_.Unassign(tables_.order()[d]);
    }
    scratch_depth_ = 0;
  }

  /// Brings scratch_mapping_ to exactly prefix_servers_[0 .. depth).
  void SyncScratchMapping(size_t depth) {
    ClearScratchMapping();
    for (size_t d = 0; d < depth; ++d) {
      scratch_mapping_.Assign(tables_.order()[d],
                              ServerId(prefix_servers_[d]));
    }
    scratch_depth_ = depth;
  }

  // ---- frontier ----

  void PushHeap(double f, uint32_t idx) {
    heap_.push_back(HeapEntry{f, idx});
    std::push_heap(heap_.begin(), heap_.end(), HeapCmp{});
  }

  HeapEntry PopHeap() {
    std::pop_heap(heap_.begin(), heap_.end(), HeapCmp{});
    HeapEntry top = heap_.back();
    heap_.pop_back();
    return top;
  }

  const DeployContext& ctx_;
  AStarOptions options_;
  AStarStats* stats_;
  BoundTables tables_;
  size_t M_ = 0;
  size_t N_ = 0;
  bool symmetric_ = false;

  std::vector<NodeRec> arena_;
  std::vector<HeapEntry> heap_;
  TranspositionTable tt_;

  std::vector<double> loads_;             // scratch, reconstructed per pop
  std::vector<uint16_t> prefix_servers_;  // scratch, reconstructed per pop
  Mapping scratch_mapping_;               // graph path working prefix
  size_t scratch_depth_ = 0;

  Mapping incumbent_;
  double incumbent_cost_ = kInf;
  bool have_incumbent_ = false;
};

}  // namespace

Result<Mapping> AStarAlgorithm::RunWithStats(const DeployContext& ctx,
                                             AStarStats* stats) const {
  *stats = AStarStats{};
  WSFLOW_RETURN_IF_ERROR(CheckContext(ctx));
  Search search(ctx, options_, stats);
  WSFLOW_RETURN_IF_ERROR(search.Prepare());
  Result<Mapping> result = search.Run();
  if (result.ok() && stats->best_cost == kInf) {
    // Defensive: Run always sets it on success, but keep the stats sane.
    stats->best_cost = stats->incumbent_cost;
  }
  return result;
}

Result<Mapping> AStarAlgorithm::Run(const DeployContext& ctx) const {
  return RunWithStats(ctx, &last_stats_);
}

}  // namespace wsflow
