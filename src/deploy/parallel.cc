#include "src/deploy/parallel.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <limits>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/cost/incremental.h"
#include "src/deploy/constraints.h"
#include "src/deploy/random_baseline.h"

namespace wsflow {

namespace {

size_t ResolveThreads(size_t requested, size_t chains) {
  size_t threads = requested;
  if (threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  if (threads > chains) threads = chains;
  return threads == 0 ? 1 : threads;
}

/// Runs fn(0..tasks-1), spreading the calls over `threads` workers pulling
/// task indices from a shared counter. With one thread the calls happen
/// inline. fn must only touch per-index state; results are reduced by the
/// caller afterwards, so the interleaving cannot affect the outcome.
void RunOnThreads(size_t threads, size_t tasks,
                  const std::function<void(size_t)>& fn) {
  if (tasks == 0) return;
  if (threads <= 1 || tasks == 1) {
    for (size_t i = 0; i < tasks; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&next, tasks, &fn] {
    for (size_t i = next.fetch_add(1); i < tasks; i = next.fetch_add(1)) {
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (size_t t = 0; t + 1 < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
}

/// Per-chain seeds derived on the main thread so they depend only on the
/// context seed and the chain index, never on scheduling.
std::vector<uint64_t> ChainSeeds(uint64_t seed, size_t chains) {
  Rng parent(seed);
  std::vector<uint64_t> seeds;
  seeds.reserve(chains);
  for (size_t i = 0; i < chains; ++i) seeds.push_back(parent.NextUint64());
  return seeds;
}

/// One annealing chain: private evaluator, RNG stream and temperature
/// schedule. Only the owning worker touches it between barriers.
struct AnnealChain {
  explicit AnnealChain(IncrementalEvaluator evaluator, Rng rng_in)
      : eval(std::move(evaluator)), rng(std::move(rng_in)) {}

  IncrementalEvaluator eval;
  Rng rng;
  double current_cost = 0;
  Mapping best;
  double best_cost = 0;
  double temperature = 0;
  size_t iterations = 0;  ///< Budget share of this chain.
  size_t next_iter = 0;   ///< Proposals already run (schedule position).
  size_t proposals = 0;
  size_t accepted = 0;
  size_t adoptions = 0;
  Status error = Status::OK();
};

/// Runs proposals [chain.next_iter, segment_end) of one chain's schedule;
/// exactly the sequential AnnealingAlgorithm inner loop.
void RunAnnealSegment(AnnealChain& chain, size_t segment_end,
                      const AnnealingOptions& schedule, size_t ops,
                      size_t servers) {
  for (size_t i = chain.next_iter; i < segment_end; ++i) {
    if (i > 0 && i % schedule.cooling_interval == 0) {
      chain.temperature *= schedule.cooling_rate;
    }
    OperationId op(static_cast<uint32_t>(chain.rng.NextBounded(ops)));
    ServerId old_server = chain.eval.mapping().ServerOf(op);
    uint32_t shift =
        static_cast<uint32_t>(1 + chain.rng.NextBounded(servers - 1));
    ServerId new_server(
        static_cast<uint32_t>((old_server.value + shift) % servers));
    Status applied = chain.eval.Apply(op, new_server);
    if (!applied.ok()) {
      chain.error = applied;
      return;
    }
    Result<double> proposal_cost = chain.eval.Combined();
    if (!proposal_cost.ok()) {
      chain.error = proposal_cost.status();
      return;
    }
    ++chain.proposals;
    double delta = *proposal_cost - chain.current_cost;
    bool accept = delta <= 0 ||
                  chain.rng.NextDouble() < std::exp(-delta / chain.temperature);
    if (accept) {
      chain.eval.ClearHistory();
      ++chain.accepted;
      chain.current_cost = *proposal_cost;
      if (chain.current_cost < chain.best_cost) {
        chain.best_cost = chain.current_cost;
        chain.best = chain.eval.mapping();
      }
    } else {
      Status undone = chain.eval.Undo();
      if (!undone.ok()) {
        chain.error = undone;
        return;
      }
    }
  }
  chain.next_iter = segment_end;
}

}  // namespace

Result<Mapping> ParallelAnnealingAlgorithm::Run(const DeployContext& ctx) const {
  return RunWithStats(ctx, nullptr);
}

Result<Mapping> ParallelAnnealingAlgorithm::RunWithStats(
    const DeployContext& ctx, ParallelSearchStats* stats) const {
  WSFLOW_RETURN_IF_ERROR(CheckContext(ctx));
  const size_t ops = ctx.workflow->num_operations();
  const size_t servers = ctx.network->num_servers();
  const size_t chains = options_.chains == 0 ? 1 : options_.chains;
  const size_t threads = ResolveThreads(options_.threads, chains);
  const size_t rounds = options_.exchange_rounds == 0
                            ? 1
                            : options_.exchange_rounds;

  CostModel model(*ctx.workflow, *ctx.network, ctx.profile);
  // Warm every lazy cache before any worker thread can touch the model;
  // afterwards the model is strictly read-only.
  WSFLOW_RETURN_IF_ERROR(model.Warm());

  // Chain setup is sequential and main-thread: seeds, random starts and
  // the cold binds all happen in chain-index order, so the parallel phase
  // starts from a state that is a pure function of (ctx.seed, chains).
  std::vector<uint64_t> seeds = ChainSeeds(ctx.seed, chains);
  std::vector<AnnealChain> chain_states;
  chain_states.reserve(chains);
  const size_t budget = options_.total_iterations / chains;
  const size_t remainder = options_.total_iterations % chains;
  for (size_t c = 0; c < chains; ++c) {
    Rng rng(seeds[c]);
    Mapping start = RandomMapping(ops, servers, &rng);
    WSFLOW_ASSIGN_OR_RETURN(
        IncrementalEvaluator eval,
        IncrementalEvaluator::Bind(model, std::move(start),
                                   ctx.cost_options));
    AnnealChain chain(std::move(eval), std::move(rng));
    WSFLOW_ASSIGN_OR_RETURN(chain.current_cost, chain.eval.Combined());
    chain.best = chain.eval.mapping();
    chain.best_cost = chain.current_cost;
    chain.temperature = std::max(
        chain.current_cost * options_.annealing.initial_temperature_factor,
        1e-12);
    chain.iterations = budget + (c < remainder ? 1 : 0);
    chain_states.push_back(std::move(chain));
  }

  ParallelSearchStats local;
  local.chains = chains;
  local.threads = threads;
  local.initial_cost = std::numeric_limits<double>::infinity();
  for (const AnnealChain& chain : chain_states) {
    if (chain.current_cost < local.initial_cost) {
      local.initial_cost = chain.current_cost;
    }
  }

  if (servers >= 2) {
    for (size_t round = 1; round <= rounds; ++round) {
      RunOnThreads(threads, chains, [&](size_t c) {
        AnnealChain& chain = chain_states[c];
        if (!chain.error.ok()) return;
        size_t segment_end = round == rounds
                                 ? chain.iterations
                                 : chain.iterations * round / rounds;
        RunAnnealSegment(chain, segment_end, options_.annealing, ops,
                         servers);
      });
      for (const AnnealChain& chain : chain_states) {
        WSFLOW_RETURN_IF_ERROR(chain.error);
      }
      ++local.rounds;
      if (round == rounds) break;
      // Deterministic exchange: the global best so far (ties to the lowest
      // chain index) is adopted by every chain whose own current state
      // trails it by more than the margin.
      size_t best_chain = 0;
      for (size_t c = 1; c < chains; ++c) {
        if (chain_states[c].best_cost < chain_states[best_chain].best_cost) {
          best_chain = c;
        }
      }
      const Mapping& global_best = chain_states[best_chain].best;
      const double global_cost = chain_states[best_chain].best_cost;
      const double bar =
          global_cost + options_.adopt_margin * (1.0 + std::fabs(global_cost));
      for (size_t c = 0; c < chains; ++c) {
        AnnealChain& chain = chain_states[c];
        if (c == best_chain || chain.current_cost <= bar) continue;
        WSFLOW_RETURN_IF_ERROR(chain.eval.Rebind(global_best));
        WSFLOW_ASSIGN_OR_RETURN(chain.current_cost, chain.eval.Combined());
        if (chain.current_cost < chain.best_cost) {
          chain.best_cost = chain.current_cost;
          chain.best = chain.eval.mapping();
        }
        ++chain.adoptions;
        ++local.exchanges;
      }
    }
  }

  // Deterministic reduction: lowest chain-local best, ties to the lowest
  // chain index — byte-identical for every thread count.
  size_t winner = 0;
  for (size_t c = 1; c < chains; ++c) {
    if (chain_states[c].best_cost < chain_states[winner].best_cost) {
      winner = c;
    }
  }
  for (const AnnealChain& chain : chain_states) {
    local.proposals += chain.proposals;
    local.accepted += chain.accepted;
    local.full_evaluations += chain.eval.counters().full_evaluations;
    local.delta_evaluations += chain.eval.counters().delta_evaluations;
    local.penalty_fast += chain.eval.counters().penalty_fast;
    local.penalty_full += chain.eval.counters().penalty_full;
    local.edge_memo_hits += chain.eval.counters().edge_memo_hits;
    local.edge_memo_misses += chain.eval.counters().edge_memo_misses;
    local.soa_fans += chain.eval.counters().soa_fans;
    local.soa_candidates += chain.eval.counters().soa_candidates;
    local.grid_cells += chain.eval.counters().grid_cells;
    local.grid_hits += chain.eval.counters().grid_hits;
    local.arm_path_nodes += chain.eval.counters().arm_path_nodes;
    local.full_path_nodes += chain.eval.counters().full_path_nodes;
  }
  local.winner_chain = winner;
  local.best_cost = chain_states[winner].best_cost;
  if (stats != nullptr) *stats = local;
  return chain_states[winner].best;
}

Result<Mapping> ParallelHillClimbAlgorithm::Run(const DeployContext& ctx) const {
  return RunWithStats(ctx, nullptr);
}

Result<Mapping> ParallelHillClimbAlgorithm::RunWithStats(
    const DeployContext& ctx, ParallelSearchStats* stats) const {
  WSFLOW_RETURN_IF_ERROR(CheckContext(ctx));
  const size_t ops = ctx.workflow->num_operations();
  const size_t servers = ctx.network->num_servers();
  const size_t chains = options_.chains == 0 ? 1 : options_.chains;
  const size_t threads = ResolveThreads(options_.threads, chains);

  CostModel model(*ctx.workflow, *ctx.network, ctx.profile);
  WSFLOW_RETURN_IF_ERROR(model.Warm());

  // Starts drawn sequentially from per-chain streams; the climbs
  // themselves are deterministic given their start, so each restart is a
  // pure function of (ctx.seed, chain index).
  std::vector<uint64_t> seeds = ChainSeeds(ctx.seed, chains);
  std::vector<Mapping> starts;
  starts.reserve(chains);
  for (size_t c = 0; c < chains; ++c) {
    Rng rng(seeds[c]);
    Mapping start = RandomMapping(ops, servers, &rng);
    if (options_.climb.constraints != nullptr) {
      ApplyPins(*options_.climb.constraints, &start);
    }
    starts.push_back(std::move(start));
  }

  struct Restart {
    Result<Mapping> result = Status::Internal("restart not run");
    LocalSearchStats stats;
  };
  std::vector<Restart> restarts(chains);
  RunOnThreads(threads, chains, [&](size_t c) {
    restarts[c].result = HillClimb(model, starts[c], ctx.cost_options,
                                   options_.climb, &restarts[c].stats);
  });

  ParallelSearchStats local;
  local.chains = chains;
  local.threads = threads;
  local.initial_cost = std::numeric_limits<double>::infinity();
  std::optional<size_t> winner;
  Status last_error = Status::Internal("no restarts were run");
  for (size_t c = 0; c < chains; ++c) {
    const Restart& restart = restarts[c];
    if (!restart.result.ok()) {
      last_error = restart.result.status();
      continue;
    }
    local.steps += restart.stats.steps;
    local.evaluations += restart.stats.evaluations;
    local.full_evaluations += restart.stats.full_evaluations;
    local.delta_evaluations += restart.stats.delta_evaluations;
    local.penalty_fast += restart.stats.penalty_fast;
    local.penalty_full += restart.stats.penalty_full;
    local.edge_memo_hits += restart.stats.edge_memo_hits;
    local.edge_memo_misses += restart.stats.edge_memo_misses;
    local.soa_fans += restart.stats.soa_fans;
    local.soa_candidates += restart.stats.soa_candidates;
    local.grid_cells += restart.stats.grid_cells;
    local.grid_hits += restart.stats.grid_hits;
    local.arm_path_nodes += restart.stats.arm_path_nodes;
    local.full_path_nodes += restart.stats.full_path_nodes;
    if (restart.stats.initial_cost < local.initial_cost) {
      local.initial_cost = restart.stats.initial_cost;
    }
    if (!winner.has_value() ||
        restart.stats.final_cost < restarts[*winner].stats.final_cost) {
      winner = c;
    }
  }
  if (!winner.has_value()) return last_error;
  local.winner_chain = *winner;
  local.best_cost = restarts[*winner].stats.final_cost;
  if (stats != nullptr) *stats = local;
  return restarts[*winner].result;
}

}  // namespace wsflow
