// wsflow: probability-weighted view of a workflow for deployment heuristics.
//
// The Line-Bus algorithms of §3.3 reason about operation costs, message
// sizes and *neighbouring* operations. §3.4 adapts them to graph workflows
// by (a) letting an operation have several incident messages and (b)
// weighting every cost by its execution probability. WorkflowView provides
// exactly that interface, so one implementation of each heuristic serves
// both configurations: with a null profile it reproduces the line behaviour
// (probability 1, at most one predecessor and successor).

#ifndef WSFLOW_DEPLOY_GRAPH_VIEW_H_
#define WSFLOW_DEPLOY_GRAPH_VIEW_H_

#include <vector>

#include "src/deploy/mapping.h"
#include "src/workflow/probability.h"
#include "src/workflow/workflow.h"

namespace wsflow {

class WorkflowView {
 public:
  /// `profile` may be null (probability 1 everywhere). Both referents must
  /// outlive the view.
  WorkflowView(const Workflow& workflow, const ExecutionProfile* profile);

  const Workflow& workflow() const { return w_; }

  size_t num_operations() const { return w_.num_operations(); }
  size_t num_transitions() const { return w_.num_transitions(); }

  /// Amortized cycle cost of an operation: p(op) * C(op).
  double Cycles(OperationId op) const;

  /// Amortized size of a message in bits: p(t) * MsgSize(t).
  double MessageBits(TransitionId t) const;

  /// All transitions incident to `op` (in-edges then out-edges).
  std::vector<TransitionId> IncidentTransitions(OperationId op) const;

  /// The endpoint of `t` that is not `op`.
  OperationId Neighbor(TransitionId t, OperationId op) const;

  /// Total amortized message bits between `op` and operations currently
  /// assigned to `server` under `m` — the Gain_Of_Operation_At_Server
  /// function of Fig. 5, generalized to any in/out degree.
  double GainAtServer(OperationId op, ServerId server, const Mapping& m) const;

  /// Sum of amortized cycles over all operations (the paper's Sum_Cycles
  /// with probability weighting).
  double TotalCycles() const;

 private:
  const Workflow& w_;
  const ExecutionProfile* profile_;
};

/// Ideal_Cycles(S_i) = Sum_Cycles * P(S_i) / Sum_Capacity for every server
/// (paper, all Fair Load variants). Indexed by ServerId::value.
std::vector<double> IdealCycles(const WorkflowView& view, const Network& n);

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_GRAPH_VIEW_H_
