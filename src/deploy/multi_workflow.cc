#include "src/deploy/multi_workflow.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/deploy/algorithm.h"
#include "src/deploy/graph_view.h"
#include "src/deploy/heavy_ops.h"
#include "src/deploy/local_search.h"

namespace wsflow {

namespace {

Status CheckInputs(const std::vector<const Workflow*>& workflows,
                   const Network& network,
                   const MultiWorkflowOptions& options) {
  if (workflows.empty()) {
    return Status::InvalidArgument("no workflows to deploy");
  }
  for (const Workflow* w : workflows) {
    if (w == nullptr || w->num_operations() == 0) {
      return Status::InvalidArgument("null or empty workflow in batch");
    }
  }
  if (network.num_servers() == 0) {
    return Status::InvalidArgument("network has no servers");
  }
  if (!options.profiles.empty() &&
      options.profiles.size() != workflows.size()) {
    return Status::InvalidArgument(
        "profiles must be empty or match the workflow count");
  }
  if (!options.weights.empty()) {
    if (options.weights.size() != workflows.size()) {
      return Status::InvalidArgument(
          "weights must be empty or match the workflow count");
    }
    for (double w : options.weights) {
      if (!std::isfinite(w) || w <= 0) {
        return Status::InvalidArgument(
            "workflow weights must be finite and > 0");
      }
    }
  }
  return Status::OK();
}

const ExecutionProfile* ProfileFor(const MultiWorkflowOptions& options,
                                   size_t index) {
  return options.profiles.empty() ? nullptr : options.profiles[index];
}

double WeightFor(const MultiWorkflowOptions& options, size_t index) {
  return options.weights.empty() ? 1.0 : options.weights[index];
}

Result<std::vector<Mapping>> JointFairLoad(
    const std::vector<const Workflow*>& workflows, const Network& network,
    const MultiWorkflowOptions& options) {
  // Pool every operation with its weighted cycles, then worst-fit against
  // ideal shares computed from the combined totals.
  struct PooledOp {
    size_t workflow_index;
    OperationId op;
    double cycles;
  };
  std::vector<PooledOp> pool;
  double sum_cycles = 0;
  std::vector<WorkflowView> views;
  views.reserve(workflows.size());
  for (size_t i = 0; i < workflows.size(); ++i) {
    views.emplace_back(*workflows[i], ProfileFor(options, i));
    const double weight = WeightFor(options, i);
    for (const Operation& op : workflows[i]->operations()) {
      double cycles = weight * views[i].Cycles(op.id());
      pool.push_back(PooledOp{i, op.id(), cycles});
      sum_cycles += cycles;
    }
  }
  std::stable_sort(pool.begin(), pool.end(),
                   [](const PooledOp& a, const PooledOp& b) {
                     return a.cycles > b.cycles;
                   });

  double sum_capacity = network.TotalPowerHz();
  std::vector<double> remaining(network.num_servers());
  for (const Server& s : network.servers()) {
    remaining[s.id().value] = sum_cycles * s.power_hz() / sum_capacity;
  }

  std::vector<Mapping> mappings;
  mappings.reserve(workflows.size());
  for (const Workflow* w : workflows) {
    mappings.emplace_back(w->num_operations());
  }
  for (const PooledOp& p : pool) {
    size_t best = 0;
    for (size_t s = 1; s < remaining.size(); ++s) {
      if (remaining[s] > remaining[best]) best = s;
    }
    mappings[p.workflow_index].Assign(p.op,
                                      ServerId(static_cast<uint32_t>(best)));
    remaining[best] -= p.cycles;
  }
  return mappings;
}

Result<std::vector<Mapping>> SequentialHeavyOps(
    const std::vector<const Workflow*>& workflows, const Network& network,
    const MultiWorkflowOptions& options) {
  // One ledger across all runs: ideal shares are computed from the combined
  // cycle totals, then each HOLM run draws them down.
  double sum_cycles = 0;
  for (size_t i = 0; i < workflows.size(); ++i) {
    WorkflowView view(*workflows[i], ProfileFor(options, i));
    sum_cycles += WeightFor(options, i) * view.TotalCycles();
  }
  double sum_capacity = network.TotalPowerHz();
  std::vector<double> remaining(network.num_servers());
  for (const Server& s : network.servers()) {
    remaining[s.id().value] = sum_cycles * s.power_hz() / sum_capacity;
  }

  HeavyOpsAlgorithm holm;
  std::vector<Mapping> mappings;
  mappings.reserve(workflows.size());
  for (size_t i = 0; i < workflows.size(); ++i) {
    DeployContext ctx;
    ctx.workflow = workflows[i];
    ctx.network = &network;
    ctx.profile = ProfileFor(options, i);
    ctx.seed = options.seed + i;
    WSFLOW_ASSIGN_OR_RETURN(
        Mapping m,
        holm.RunWithLedger(ctx, &remaining, WeightFor(options, i)));
    mappings.push_back(std::move(m));
  }
  return mappings;
}

}  // namespace

double CombinedTimePenalty(
    const std::vector<const Workflow*>& workflows,
    const std::vector<Mapping>& mappings, const Network& network,
    const std::vector<const ExecutionProfile*>& profiles,
    const std::vector<double>& weights) {
  std::vector<double> loads(network.num_servers(), 0.0);
  for (size_t i = 0; i < workflows.size(); ++i) {
    const ExecutionProfile* profile =
        profiles.empty() ? nullptr : profiles[i];
    const double weight = weights.empty() ? 1.0 : weights[i];
    WorkflowView view(*workflows[i], profile);
    for (const Operation& op : workflows[i]->operations()) {
      ServerId s = mappings[i].ServerOf(op.id());
      if (s.valid()) {
        loads[s.value] +=
            weight * view.Cycles(op.id()) / network.server(s).power_hz();
      }
    }
  }
  double avg =
      std::accumulate(loads.begin(), loads.end(), 0.0) /
      static_cast<double>(loads.size());
  double penalty = 0;
  for (double l : loads) penalty += std::fabs(l - avg) / 2.0;
  return penalty;
}

Result<MultiWorkflowResult> DeployMultipleWorkflows(
    const std::vector<const Workflow*>& workflows, const Network& network,
    const MultiWorkflowOptions& options) {
  WSFLOW_RETURN_IF_ERROR(CheckInputs(workflows, network, options));

  MultiWorkflowResult result;
  switch (options.strategy) {
    case MultiWorkflowStrategy::kJointFairLoad: {
      WSFLOW_ASSIGN_OR_RETURN(result.mappings,
                              JointFairLoad(workflows, network, options));
      break;
    }
    case MultiWorkflowStrategy::kSequentialHeavyOps: {
      WSFLOW_ASSIGN_OR_RETURN(result.mappings,
                              SequentialHeavyOps(workflows, network, options));
      break;
    }
  }

  for (size_t i = 0; i < workflows.size(); ++i) {
    CostModel model(*workflows[i], network, ProfileFor(options, i));
    if (options.polish_steps > 0) {
      LocalSearchOptions search;
      search.max_steps = options.polish_steps;
      WSFLOW_ASSIGN_OR_RETURN(
          result.mappings[i],
          HillClimb(model, result.mappings[i], CostOptions{}, search));
    }
    WSFLOW_ASSIGN_OR_RETURN(double exec,
                            model.ExecutionTime(result.mappings[i]));
    result.execution_times.push_back(exec);
  }
  result.combined_time_penalty = CombinedTimePenalty(
      workflows, result.mappings, network, options.profiles, options.weights);
  return result;
}

}  // namespace wsflow
