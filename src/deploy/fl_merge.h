// wsflow: algorithm Fair Load - Merge Messages' Ends (FLMME, paper §3.3,
// appendix).
//
// Extends FLTR2 with a large-message veto: before committing the gain-
// selected assignment, check the chosen operation's incident messages. If
// one is "big" — at or above the size of the message 10% from the top of
// the descending message-size list (the appendix's MsgSize(m_(M-1)*0.1))
// — the planned placement is cancelled and the operation is co-located with
// the partner of that message instead, so the big message never crosses the
// network. When both sides trigger, the bigger message wins (function
// There_Is_Constraints). The partner's server is read from the working
// mapping, which the paper seeds randomly; if the partner is genuinely
// unassigned (random_init = false) the veto is skipped.
// Complexity O(M * (M logM + N logN + M N)).

#ifndef WSFLOW_DEPLOY_FL_MERGE_H_
#define WSFLOW_DEPLOY_FL_MERGE_H_

#include "src/deploy/algorithm.h"

namespace wsflow {

class FlMergeAlgorithm : public DeploymentAlgorithm {
 public:
  /// `big_message_quantile` positions the threshold within the descending
  /// sorted message sizes; 0.1 reproduces the paper ("top 10% are big").
  /// See FltrAlgorithm for `random_init`.
  explicit FlMergeAlgorithm(bool random_init = true,
                            double big_message_quantile = 0.1)
      : random_init_(random_init),
        big_message_quantile_(big_message_quantile) {}

  std::string_view name() const override { return "fl-merge"; }
  Result<Mapping> Run(const DeployContext& ctx) const override;

 private:
  bool random_init_;
  double big_message_quantile_;
};

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_FL_MERGE_H_
