// wsflow: local-search refinement (extension; not in the paper).
//
// A best-improvement hill climber over the mapping space: moves reassign
// one operation to another server, swaps exchange the servers of two
// operations. Used by the ablation bench to measure how much headroom the
// paper's greedy heuristics leave, and as the standalone "hill-climb"
// baseline (random start + climb). Deterministic given the start mapping.

#ifndef WSFLOW_DEPLOY_LOCAL_SEARCH_H_
#define WSFLOW_DEPLOY_LOCAL_SEARCH_H_

#include <cstddef>

#include "src/deploy/algorithm.h"
#include "src/deploy/constraints.h"

namespace wsflow {

struct LocalSearchOptions {
  /// Stop after this many accepted improvements.
  size_t max_steps = 10000;
  /// Also explore pairwise swaps (quadratic per step but stronger).
  bool use_swaps = true;
  /// Optional hard constraints; violating neighbours are skipped and a
  /// violating start fails with ConstraintViolation.
  const DeploymentConstraints* constraints = nullptr;
};

/// Statistics of one climb.
struct LocalSearchStats {
  size_t steps = 0;          ///< Accepted improvements.
  size_t evaluations = 0;    ///< Candidate mappings costed.
  double initial_cost = 0;   ///< Combined cost of the start mapping.
  double final_cost = 0;     ///< Combined cost of the local optimum.
};

/// Climbs from `start` to a local optimum of the weighted combined cost.
/// `stats` may be null.
Result<Mapping> HillClimb(const CostModel& model, const Mapping& start,
                          const CostOptions& cost_options,
                          const LocalSearchOptions& options,
                          LocalSearchStats* stats = nullptr);

/// Random restart + climb, registered as "hill-climb".
class HillClimbAlgorithm : public DeploymentAlgorithm {
 public:
  explicit HillClimbAlgorithm(LocalSearchOptions options = {})
      : options_(options) {}

  std::string_view name() const override { return "hill-climb"; }
  Result<Mapping> Run(const DeployContext& ctx) const override;

 private:
  LocalSearchOptions options_;
};

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_LOCAL_SEARCH_H_
