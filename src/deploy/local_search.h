// wsflow: local-search refinement (extension; not in the paper).
//
// A best-improvement hill climber over the mapping space: moves reassign
// one operation to another server, swaps exchange the servers of two
// operations. Used by the ablation bench to measure how much headroom the
// paper's greedy heuristics leave, and as the standalone "hill-climb"
// baseline (random start + climb). Deterministic given the start mapping.

#ifndef WSFLOW_DEPLOY_LOCAL_SEARCH_H_
#define WSFLOW_DEPLOY_LOCAL_SEARCH_H_

#include <cstddef>

#include "src/deploy/algorithm.h"
#include "src/deploy/constraints.h"

namespace wsflow {

struct LocalSearchOptions {
  /// Stop after this many accepted improvements.
  size_t max_steps = 10000;
  /// Also explore pairwise swaps (quadratic per step but stronger).
  bool use_swaps = true;
  /// Optional hard constraints; violating neighbours are skipped and a
  /// violating start fails with ConstraintViolation.
  const DeploymentConstraints* constraints = nullptr;
  /// Relative improvement a neighbour must deliver to be accepted:
  /// cost < incumbent - min_improvement * (1 + |incumbent|). The climb
  /// scores neighbours by delta evaluation, which may differ from a cold
  /// evaluation by a few ulps; without the margin a mathematically equal
  /// neighbour can look "one ulp better" and keep a plateaued climb alive.
  double min_improvement = 1e-12;
};

/// Statistics of one climb.
struct LocalSearchStats {
  size_t steps = 0;              ///< Accepted improvements.
  size_t evaluations = 0;        ///< Candidate mappings costed.
  size_t full_evaluations = 0;   ///< Cold evaluator (re)binds.
  size_t delta_evaluations = 0;  ///< Candidates scored by delta update.
  size_t penalty_fast = 0;       ///< TimePenalty via the O(log N) index.
  size_t penalty_full = 0;       ///< TimePenalty via the O(N) pass.
  size_t edge_memo_hits = 0;     ///< Batch T_comm terms served by the memo.
  size_t edge_memo_misses = 0;   ///< Batch T_comm terms computed fresh.
  size_t soa_fans = 0;           ///< Batch fans scored through the SoA grid.
  size_t soa_candidates = 0;     ///< Candidates folded across SoA fans.
  size_t grid_cells = 0;         ///< (edge, server) grid cells precomputed.
  size_t grid_hits = 0;          ///< Batch T_comm terms read from the grid.
  size_t arm_path_nodes = 0;     ///< Path nodes folded arm-only.
  size_t full_path_nodes = 0;    ///< Path nodes fully recomputed.
  double initial_cost = 0;       ///< Combined cost of the start mapping.
  double final_cost = 0;         ///< Combined cost of the local optimum.
};

/// Climbs from `start` to a local optimum of the weighted combined cost.
/// `stats` may be null.
Result<Mapping> HillClimb(const CostModel& model, const Mapping& start,
                          const CostOptions& cost_options,
                          const LocalSearchOptions& options,
                          LocalSearchStats* stats = nullptr);

/// Runs up to `steps` hill-climb improvements on `m` under the context's
/// cost options; a no-op when `steps` is 0. Lets the constructive
/// heuristics (fltr, fltr2, heavy-ops) bolt a delta-evaluated refinement
/// pass onto their output without re-implementing a search loop.
Result<Mapping> PolishMapping(const DeployContext& ctx, Mapping m,
                              size_t steps);

/// Random restart + climb, registered as "hill-climb".
class HillClimbAlgorithm : public DeploymentAlgorithm {
 public:
  explicit HillClimbAlgorithm(LocalSearchOptions options = {})
      : options_(options) {}

  std::string_view name() const override { return "hill-climb"; }
  Result<Mapping> Run(const DeployContext& ctx) const override;

 private:
  LocalSearchOptions options_;
};

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_LOCAL_SEARCH_H_
