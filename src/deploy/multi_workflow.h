// wsflow: multi-workflow deployment (paper §6 future work, implemented as
// an extension).
//
// Several workflows share one server farm. Fairness is now a property of
// the *combined* load, so deploying each workflow in isolation double-books
// the strongest servers. Two strategies:
//
//   * kJointFairLoad — global worst-fit: all operations of all workflows
//     are pooled, sorted by descending (weighted) cycles and packed against
//     ideal shares computed from the combined totals.
//   * kSequentialHeavyOps — Heavy Operations - Large Messages per workflow,
//     threading one remaining-ideal-cycles ledger through the runs so later
//     workflows see the capacity earlier ones consumed. Message locality is
//     preserved per workflow.

#ifndef WSFLOW_DEPLOY_MULTI_WORKFLOW_H_
#define WSFLOW_DEPLOY_MULTI_WORKFLOW_H_

#include <vector>

#include "src/common/result.h"
#include "src/cost/cost_model.h"
#include "src/deploy/mapping.h"
#include "src/workflow/probability.h"

namespace wsflow {

enum class MultiWorkflowStrategy {
  kJointFairLoad,
  kSequentialHeavyOps,
};

struct MultiWorkflowOptions {
  MultiWorkflowStrategy strategy = MultiWorkflowStrategy::kSequentialHeavyOps;
  /// Profiles parallel to the workflows; empty means probability 1 for all.
  std::vector<const ExecutionProfile*> profiles;
  /// Per-workflow QPS weights scaling each workflow's load contribution
  /// (the shared-load model of src/cost/shared_load.h): both strategies
  /// budget weight * cycles of farm capacity per workflow, and the
  /// combined fairness penalty weighs loads the same way. Execution times
  /// are per-request and stay unweighted. Empty means weight 1 everywhere;
  /// otherwise one finite positive entry per workflow.
  std::vector<double> weights;
  uint64_t seed = 0;
  /// When > 0, each workflow's mapping is refined by up to this many
  /// delta-evaluated hill-climb improvements of its own (equally weighted)
  /// combined cost before the result is reported. The climb sees only one
  /// workflow at a time, so it can shift the *combined* fairness penalty;
  /// 0 keeps the strategies' raw output.
  size_t polish_steps = 0;
};

struct MultiWorkflowResult {
  /// One mapping per input workflow, in order.
  std::vector<Mapping> mappings;
  /// T_execute per workflow.
  std::vector<double> execution_times;
  /// Fairness penalty of the combined per-server load.
  double combined_time_penalty = 0;
};

/// Deploys every workflow onto `network`. All workflows must be non-empty;
/// `options.profiles`, when non-empty, must have one entry per workflow
/// (null entries mean probability 1).
Result<MultiWorkflowResult> DeployMultipleWorkflows(
    const std::vector<const Workflow*>& workflows, const Network& network,
    const MultiWorkflowOptions& options = {});

/// Fairness penalty of combined loads: sum_s |load(s) - avg| / 2 where
/// load(s) accumulates weight * cycles / power over all (workflow,
/// mapping) pairs. `weights` empty means weight 1 for every workflow.
double CombinedTimePenalty(const std::vector<const Workflow*>& workflows,
                           const std::vector<Mapping>& mappings,
                           const Network& network,
                           const std::vector<const ExecutionProfile*>& profiles,
                           const std::vector<double>& weights = {});

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_MULTI_WORKFLOW_H_
