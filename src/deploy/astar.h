// wsflow: exact A* deployment solver over partial mappings
// (extension; not in the paper).
//
// The paper validates its heuristics only at sizes the exhaustive odometer
// reaches; branch-and-bound (branch_bound.h) pushed certified optima to
// mid-size *line* instances but re-derives weak bounds depth-first.
// Following Vorhemus & Schikuta ("Blackboard Meets Dijkstra", PAPERS.md),
// this solver recasts deployment as shortest-path search over a state
// graph of *prefix assignments*: a state assigns the first k operations of
// the topological order to servers, an edge places operation k on one
// feasible server, and the goal layer holds total mappings.
//
//   f(state) = lower bound on the combined cost of every completion,
//              computed from the shared BoundTables: exact T_proc / T_comm
//              where assigned, fastest-alive-server and zero-or-min-route
//              bounds where not, plus the unavoidable-excess/deficit
//              fairness bound. f is exact at goal states, so the first
//              goal popped from the best-first frontier is optimal.
//
// Line workflows additionally get *dominance pruning*: two states with the
// same depth, the same frontier server (the chain's only live endpoint)
// and the same per-server load vector have identical completion futures,
// so only the cheapest-prefix one survives. A canonical-state
// transposition table keyed on (depth, frontier server, load-vector bits)
// merges them — on uniform-cycle workloads (Class A) this collapses the
// permutation blow-up to the much smaller space of load compositions,
// which is where the order-of-magnitude node savings over branch-and-bound
// come from. Graph workflows skip the table: AND/OR rendezvous couples a
// completion's cost to interior placements, so the load-vector key is not
// a sound equivalence there, and a fixed-order prefix tree never revisits
// a state anyway.
//
// The *anytime* mode seeds the incumbent with the portfolio + hill-climb
// heuristic solution and prunes generated states against it. Run to
// exhaustion it is a provable-optimality certificate for the heuristic
// result; stopped at the node budget it returns the best mapping seen with
// proven_optimal = false instead of failing.

#ifndef WSFLOW_DEPLOY_ASTAR_H_
#define WSFLOW_DEPLOY_ASTAR_H_

#include <cstddef>
#include <cstdint>
#include <limits>

#include "src/deploy/algorithm.h"
#include "src/network/server_mask.h"

namespace wsflow {

struct AStarOptions {
  /// Cap on *generated* search states (arena size); the dominant memory
  /// driver at 16 bytes per state plus frontier and table entries. Exact
  /// mode fails with ResourceExhausted beyond it; anytime mode returns the
  /// incumbent.
  size_t max_nodes = 10'000'000;
  /// Seed the incumbent with the best heuristic solution (portfolio +
  /// hill climb), prune against it, and return it instead of failing when
  /// the budget runs out.
  bool anytime = false;
  /// Score against the surviving subnetwork: down servers are infeasible
  /// placements and routes through them are severed (trivial = unmasked).
  ServerMask mask;
};

struct AStarStats {
  size_t expanded = 0;          ///< States popped and expanded.
  size_t generated = 0;         ///< States created (arena entries).
  size_t pruned_bound = 0;      ///< Children cut by f >= incumbent (or
                                ///< infeasible placements scoring +inf).
  size_t pruned_dominance = 0;  ///< Children (or stale pops) cut by a
                                ///< cheaper same-key state.
  size_t tt_hits = 0;           ///< Transposition-table lookups that found
                                ///< an existing entry.
  bool proven_optimal = false;  ///< Search ran to exhaustion within budget.
  /// Best combined cost found (internal decomposed arithmetic).
  double best_cost = std::numeric_limits<double>::infinity();
  /// Anytime seed's combined cost; +inf in exact mode.
  double incumbent_cost = std::numeric_limits<double>::infinity();
};

class AStarAlgorithm : public DeploymentAlgorithm {
 public:
  explicit AStarAlgorithm(AStarOptions options = {}) : options_(options) {}

  std::string_view name() const override {
    return options_.anytime ? "astar-anytime" : "astar";
  }

  /// Returns a provably optimal mapping under ctx.cost_options (line and
  /// well-formed graph workflows alike). Exact mode fails with
  /// ResourceExhausted at the node budget; anytime mode then returns the
  /// best mapping seen (stats.proven_optimal tells them apart).
  Result<Mapping> Run(const DeployContext& ctx) const override;

  /// Run + fill `stats` (never null).
  Result<Mapping> RunWithStats(const DeployContext& ctx,
                               AStarStats* stats) const;

  /// Stats of the last Run on this instance (not thread-safe).
  const AStarStats& last_stats() const { return last_stats_; }

 private:
  AStarOptions options_;
  mutable AStarStats last_stats_;
};

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_ASTAR_H_
