// wsflow: deployment mapping of operations to servers.
//
// A Mapping assigns each workflow operation to the server hosting it
// (paper §2.2: o -> s). Algorithms build mappings incrementally; a mapping
// is *total* when every operation is assigned, which the cost model
// requires.

#ifndef WSFLOW_DEPLOY_MAPPING_H_
#define WSFLOW_DEPLOY_MAPPING_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/network/server.h"
#include "src/network/topology.h"
#include "src/workflow/operation.h"
#include "src/workflow/workflow.h"

namespace wsflow {

class Mapping {
 public:
  Mapping() = default;
  /// Creates a mapping for `num_operations` operations, all unassigned.
  explicit Mapping(size_t num_operations)
      : assignment_(num_operations, ServerId()) {}

  size_t num_operations() const { return assignment_.size(); }

  /// Assigns (or reassigns) an operation.
  void Assign(OperationId op, ServerId server);

  /// Removes an assignment; no-op when unassigned.
  void Unassign(OperationId op);

  /// Server(op); invalid when unassigned.
  ServerId ServerOf(OperationId op) const;

  bool IsAssigned(OperationId op) const { return ServerOf(op).valid(); }

  /// True when an assignment exists for every operation.
  bool IsTotal() const;

  size_t NumAssigned() const;

  /// True when `a` and `b` are assigned to the same server.
  bool CoLocated(OperationId a, OperationId b) const;

  /// Operations assigned to `server`, in id order.
  std::vector<OperationId> OperationsOn(ServerId server) const;

  /// Checks the mapping is total and references only servers of `n` /
  /// operations of `w`.
  Status ValidateAgainst(const Workflow& w, const Network& n) const;

  /// "op1->s2 op2->s1 ..." rendering using workflow / network names.
  std::string ToString(const Workflow& w, const Network& n) const;

  friend bool operator==(const Mapping& a, const Mapping& b) {
    return a.assignment_ == b.assignment_;
  }

 private:
  std::vector<ServerId> assignment_;
};

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_MAPPING_H_
