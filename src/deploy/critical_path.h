// wsflow: critical-path list scheduling (extension; not in the paper).
//
// A HEFT-style baseline adapted to the paper's model: rank every operation
// by its longest downstream path (probability-weighted processing on the
// mean-power server plus message time over the reference link), then place
// operations in decreasing rank order on the server that minimizes the
// operation's earliest finish time — the arrival of its latest input
// (predecessor finish + T_comm) or the server's ready time, plus T_proc.
// Scheduling-literature classic, included to contextualize the paper's
// bin-packing-flavoured heuristics: it optimizes makespan directly and
// ignores fairness.

#ifndef WSFLOW_DEPLOY_CRITICAL_PATH_H_
#define WSFLOW_DEPLOY_CRITICAL_PATH_H_

#include "src/deploy/algorithm.h"

namespace wsflow {

class CriticalPathAlgorithm : public DeploymentAlgorithm {
 public:
  std::string_view name() const override { return "critical-path"; }
  Result<Mapping> Run(const DeployContext& ctx) const override;
};

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_CRITICAL_PATH_H_
