// wsflow: portfolio deployment (extension; not in the paper).
//
// The paper's own conclusion is that no single heuristic dominates: the
// fair family wins on fairness, HOLM on execution time, with the balance
// shifting with bus speed and workload. Since every heuristic runs in
// microseconds (bench/scaling), a deployment tool can simply run them all
// and keep the best mapping under the caller's objective weights — a
// portfolio that, by construction, is at least as good as every member on
// every instance. Members default to the five paper algorithms plus the
// critical-path scheduler; any registry names can be configured.

#ifndef WSFLOW_DEPLOY_PORTFOLIO_H_
#define WSFLOW_DEPLOY_PORTFOLIO_H_

#include <string>
#include <vector>

#include "src/deploy/algorithm.h"

namespace wsflow {

class PortfolioAlgorithm : public DeploymentAlgorithm {
 public:
  /// `members` are registry names; empty selects the default set. The
  /// portfolio itself must not be a member.
  explicit PortfolioAlgorithm(std::vector<std::string> members = {});

  std::string_view name() const override { return "portfolio"; }

  /// Runs every member and returns the mapping with the lowest weighted
  /// combined cost (ties keep the earliest member). Members that fail on
  /// an instance are skipped; only if all fail does Run fail.
  Result<Mapping> Run(const DeployContext& ctx) const override;

  const std::vector<std::string>& members() const { return members_; }

 private:
  std::vector<std::string> members_;
};

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_PORTFOLIO_H_
