// wsflow: shared admissible lower-bound tables for the exact solvers.
//
// Both exact searches — the A* solver (astar.h) and depth-first
// branch-and-bound (branch_bound.h) — prune with lower bounds on the cost
// of completing a *prefix assignment*: operations assigned in topological
// order, everything after the frontier still free. BoundTables precomputes
// every instance-level quantity those bounds read so that evaluating a
// bound at a search node costs O(remaining ops) or less instead of
// re-deriving routing and suffix aggregates per node:
//
//   * an all-pairs route table (propagation seconds + seconds-per-bit per
//     server pair, reachability), filtered by an optional ServerMask the
//     same way the incremental evaluator filters its tables;
//   * per-position (topological order) raw cycles, probability-weighted
//     cycles, and the minimum feasible T_proc (the op on its fastest
//     *alive* server), plus suffix sums of the latter two;
//   * per-transition message bits and a zero-or-min-route communication
//     lower bound (0 whenever the endpoints can be co-located on an alive
//     server, the cheapest feasible pair otherwise), plus line-order
//     suffix sums;
//   * the fairness-penalty lower bound of branch_bound generalized to the
//     masked (survivor-only) view: max of the unavoidable-excess and
//     unavoidable-deficit forms, exact when no cycles remain.
//
// For graph workflows the execution-time bound cannot be a suffix sum —
// OR blocks take the fastest arm and XOR blocks an expectation, so summing
// every remaining operation would overestimate. Instead BoundTables keeps
// a flattened copy of the block tree and evaluates the block recursion
// with mixed terms: exact T_proc / T_comm where both endpoints are
// assigned, the per-op / per-edge lower bounds where they are not. Every
// block combinator (sum, max, min, probability-weighted sum) is monotone
// non-decreasing in its inputs, so the mixed evaluation is a valid lower
// bound on the execution time of every completion — and bit-for-bit the
// real evaluation once the mapping is total.

#ifndef WSFLOW_DEPLOY_BOUND_TABLES_H_
#define WSFLOW_DEPLOY_BOUND_TABLES_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "src/common/result.h"
#include "src/deploy/algorithm.h"
#include "src/deploy/mapping.h"
#include "src/network/server_mask.h"

namespace wsflow {

class BoundTables {
 public:
  /// Builds the tables for `ctx`, optionally scoring against the surviving
  /// subnetwork of a non-trivial `mask` (routes through down servers are
  /// severed, down servers are infeasible placements, the penalty bound
  /// averages over the survivors). Fails when the context is invalid, the
  /// workflow has a cycle, or no server is alive.
  static Result<BoundTables> Build(const DeployContext& ctx,
                                   const ServerMask& mask = {});

  size_t num_ops() const { return order_.size(); }
  size_t num_servers() const { return power_.size(); }
  bool line() const { return line_; }
  const ServerMask& mask() const { return mask_; }

  /// Topological order the prefix assignments follow (LineOrder for line
  /// workflows, so the chain decomposition applies edge-by-edge).
  const std::vector<OperationId>& order() const { return order_; }
  /// Position of `op` in order().
  size_t PosOf(OperationId op) const { return pos_of_[op.value]; }

  double power(uint32_t server) const { return power_[server]; }
  bool alive(uint32_t server) const { return is_alive_[server] != 0; }
  /// Alive server ids, ascending.
  const std::vector<uint32_t>& alive_servers() const { return alive_; }
  double max_alive_power() const { return max_alive_power_; }

  /// T_proc of the operation at position `pos` on `server`.
  double Tproc(size_t pos, uint32_t server) const {
    return cycles_[pos] / power_[server];
  }
  /// Probability-weighted load contribution of position `pos` on `server`.
  double LoadOf(size_t pos, uint32_t server) const {
    return wcycles_[pos] / power_[server];
  }
  /// Lower bound on T_proc of position `pos` over the alive servers.
  double MinTproc(size_t pos) const { return min_tproc_[pos]; }

  /// Sum of probability-weighted cycles of positions >= `depth` (the load
  /// still to be distributed below a depth-`depth` frontier).
  double SuffixWeightedCycles(size_t depth) const {
    return suffix_wcycles_[depth];
  }
  /// Sum of MinTproc over positions >= `depth`.
  double SuffixMinProc(size_t depth) const { return suffix_min_proc_[depth]; }

  /// Line workflows: sum of EdgeLb over chain edges (order position i ->
  /// i+1) with index >= `edge`.
  double SuffixEdgeLb(size_t edge) const { return suffix_edge_lb_[edge]; }

  bool PairOk(uint32_t a, uint32_t b) const {
    return pair_ok_[static_cast<size_t>(a) * num_servers() + b] != 0;
  }
  /// T_comm of a `bits`-sized message from server `a` to `b`; 0 when
  /// co-located, +infinity when unreachable (or severed by the mask).
  double PairComm(uint32_t a, uint32_t b, double bits) const {
    if (a == b) return 0.0;
    const size_t idx = static_cast<size_t>(a) * num_servers() + b;
    if (pair_ok_[idx] == 0) return std::numeric_limits<double>::infinity();
    return pair_prop_[idx] + bits * pair_spb_[idx];
  }

  double edge_bits(TransitionId t) const { return edge_bits_[t.value]; }
  /// Line workflows: message bits of the chain edge order()[i] -> [i+1].
  double chain_bits(size_t edge) const { return chain_bits_[edge]; }
  /// Zero-or-min-route lower bound on T_comm of transition `t` over every
  /// feasible placement of its endpoints. +infinity when no feasible
  /// server pair is connected.
  double EdgeLb(TransitionId t) const { return edge_lb_[t.value]; }

  /// Admissible lower bound on the final fairness penalty: current alive
  /// loads plus `remaining_wcycles` still to be placed. Exact (the true
  /// penalty over the alive servers) when remaining_wcycles == 0.
  double PenaltyLowerBound(std::span<const double> loads,
                           double remaining_wcycles) const;

  /// Lower bound on T_execute over every completion of `partial`, whose
  /// assigned operations must form a prefix of order() (on alive servers).
  /// Exact when `partial` is total. +infinity when an assigned pair is
  /// severed or some remaining edge has no feasible connected placement.
  double ExecLowerBound(const Mapping& partial) const;

  /// Combined-objective lower bound over every completion of `partial`
  /// (assigned ops a prefix of order()): execution_weight * ExecLowerBound
  /// + fairness_weight * PenaltyLowerBound. Exact when `partial` is total.
  double PrefixLowerBound(const Mapping& partial,
                          const CostOptions& options) const;

 private:
  /// Flattened block-tree node for the graph execution bound. Children
  /// have larger indices than their parent.
  struct BNode {
    enum class Kind : uint8_t { kLeaf, kSequence, kBranch };
    Kind kind = Kind::kLeaf;
    OperationType branch_type = OperationType::kOperational;
    uint32_t leaf_pos = 0;           ///< kLeaf: position in order().
    uint32_t split_pos = 0;          ///< kBranch.
    uint32_t join_pos = 0;           ///< kBranch.
    std::vector<double> probs;       ///< kBranch: normalized arm weights.
    std::vector<int> children;       ///< kSequence elements / kBranch arm
                                     ///< bodies (-1 marks an empty arm).
    std::vector<TransitionId> seq_edges;  ///< kSequence inter-child links.
    std::vector<TransitionId> entry;      ///< kBranch: split -> arm head.
    std::vector<TransitionId> exit;       ///< kBranch: arm tail -> join.
    std::vector<TransitionId> direct;     ///< kBranch: split -> join for
                                          ///< empty arms.
  };

  int FlattenBlock(const Workflow& w, const struct Block& block,
                   Status* status);

  /// Mixed exact/lower-bound T_proc of position `pos` under the working
  /// assignment, and the matching T_comm term of transition `t`.
  double TprocTerm(uint32_t pos, const Mapping& m) const;
  double EdgeTerm(TransitionId t, const Mapping& m, bool* ok) const;
  double EvalBNode(int node, const Mapping& m, bool* ok) const;

  bool line_ = false;
  ServerMask mask_;
  std::vector<OperationId> order_;
  std::vector<uint32_t> pos_of_;

  std::vector<double> power_;
  std::vector<char> is_alive_;
  std::vector<uint32_t> alive_;
  double max_alive_power_ = 0;
  double min_alive_power_ = 0;

  std::vector<double> pair_prop_;
  std::vector<double> pair_spb_;
  std::vector<char> pair_ok_;

  std::vector<double> cycles_;           // per position, raw
  std::vector<double> wcycles_;          // per position, probability-weighted
  std::vector<double> min_tproc_;        // per position
  std::vector<double> suffix_wcycles_;   // size M+1
  std::vector<double> suffix_min_proc_;  // size M+1

  std::vector<double> edge_bits_;      // per transition
  std::vector<double> edge_lb_;        // per transition
  std::vector<uint32_t> edge_from_pos_;  // per transition: PosOf(from)
  std::vector<uint32_t> edge_to_pos_;    // per transition: PosOf(to)
  std::vector<double> chain_bits_;     // line: bits of chain edge i -> i+1
  std::vector<double> suffix_edge_lb_; // line: per chain-edge index, size M

  std::vector<BNode> bnodes_;  // graph workflows; bnodes_[0] is the root
};

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_BOUND_TABLES_H_
