#include "src/deploy/mapping.h"

#include <sstream>

#include "src/common/logging.h"

namespace wsflow {

void Mapping::Assign(OperationId op, ServerId server) {
  WSFLOW_CHECK_LT(op.value, assignment_.size());
  WSFLOW_CHECK(server.valid());
  assignment_[op.value] = server;
}

void Mapping::Unassign(OperationId op) {
  WSFLOW_CHECK_LT(op.value, assignment_.size());
  assignment_[op.value] = ServerId();
}

ServerId Mapping::ServerOf(OperationId op) const {
  WSFLOW_CHECK_LT(op.value, assignment_.size());
  return assignment_[op.value];
}

bool Mapping::IsTotal() const {
  for (ServerId s : assignment_) {
    if (!s.valid()) return false;
  }
  return !assignment_.empty();
}

size_t Mapping::NumAssigned() const {
  size_t n = 0;
  for (ServerId s : assignment_) {
    if (s.valid()) ++n;
  }
  return n;
}

bool Mapping::CoLocated(OperationId a, OperationId b) const {
  ServerId sa = ServerOf(a);
  ServerId sb = ServerOf(b);
  return sa.valid() && sa == sb;
}

std::vector<OperationId> Mapping::OperationsOn(ServerId server) const {
  std::vector<OperationId> out;
  for (size_t i = 0; i < assignment_.size(); ++i) {
    if (assignment_[i] == server) {
      out.push_back(OperationId(static_cast<uint32_t>(i)));
    }
  }
  return out;
}

Status Mapping::ValidateAgainst(const Workflow& w, const Network& n) const {
  if (assignment_.size() != w.num_operations()) {
    return Status::FailedPrecondition(
        "mapping covers " + std::to_string(assignment_.size()) +
        " operations, workflow has " + std::to_string(w.num_operations()));
  }
  for (size_t i = 0; i < assignment_.size(); ++i) {
    if (!assignment_[i].valid()) {
      return Status::FailedPrecondition(
          "operation " + w.operation(OperationId(static_cast<uint32_t>(i))).name() +
          " is unassigned");
    }
    if (!n.Contains(assignment_[i])) {
      return Status::FailedPrecondition("assignment references a server "
                                        "outside the network");
    }
  }
  return Status::OK();
}

std::string Mapping::ToString(const Workflow& w, const Network& n) const {
  std::ostringstream os;
  for (size_t i = 0; i < assignment_.size(); ++i) {
    if (i > 0) os << " ";
    OperationId op(static_cast<uint32_t>(i));
    os << w.operation(op).name() << "->";
    if (assignment_[i].valid() && n.Contains(assignment_[i])) {
      os << n.server(assignment_[i]).name();
    } else {
      os << "?";
    }
  }
  return os.str();
}

}  // namespace wsflow
