// wsflow: parallel multi-chain search over one shared CostModel.
//
// The annealing and hill-climb searches are embarrassingly parallel at the
// chain level: every chain is a pure function of (model, its own seed, its
// own working evaluator), and chains only need to talk when exchanging the
// best state found so far. This driver runs K chains on a small worker
// pool over ONE read-only CostModel whose lazy caches (router all-pairs
// tables, line classification, block decomposition) are warmed once up
// front — after that, worker threads only read the model and mutate their
// chain-private IncrementalEvaluator.
//
// Determinism contract: results depend on the chain count and the context
// seed, NEVER on the thread count or the interleaving. Chains advance in
// synchronized rounds; between rounds the main thread performs the
// deterministic reduction (lowest cost, ties to the lowest chain index)
// and the deterministic exchange rule (a chain adopts the global best when
// its own current cost trails by more than the adopt margin). Two runs
// with equal seeds and equal chain counts produce byte-identical winning
// mappings whether they run on 1 thread or 64.
//
//   * "annealing-par": K annealing chains, each with its own temperature
//     schedule and RNG stream, splitting a fixed TOTAL proposal budget
//     evenly so K chains cost the same move budget as one sequential run.
//     Periodic best-state exchange re-seeds trailing chains.
//   * "climb-par": K independent random restarts of the batched hill
//     climb; the reduction keeps the best local optimum.
//
// EvalCounters are aggregated across chains, so search statistics remain
// truthful under parallelism: the reported full/delta evaluation counts
// are the sums over every chain's evaluator.

#ifndef WSFLOW_DEPLOY_PARALLEL_H_
#define WSFLOW_DEPLOY_PARALLEL_H_

#include <cstddef>

#include "src/deploy/annealing.h"
#include "src/deploy/local_search.h"

namespace wsflow {

struct ParallelSearchOptions {
  /// Chains (annealing) or random restarts (climb). Part of the result:
  /// different chain counts explore different trajectories.
  size_t chains = 8;
  /// Worker threads; 0 means hardware concurrency. Clamped to the chain
  /// count. NOT part of the result — any thread count yields the same
  /// winner.
  size_t threads = 0;
  /// Annealing only: total proposal budget summed over all chains; each
  /// chain runs total_iterations / chains proposals (the remainder goes to
  /// the lowest-indexed chains). Equal budgets make "K chains" and "one
  /// chain" comparable in work, so the bench's scaling curves measure
  /// parallelism, not extra search effort.
  size_t total_iterations = 160000;
  /// Annealing only: rounds of best-state exchange. Each round runs every
  /// chain for its share of the budget, then trailing chains adopt the
  /// global best state.
  size_t exchange_rounds = 10;
  /// A chain adopts the global best when its current cost exceeds
  /// best + adopt_margin * (1 + |best|).
  double adopt_margin = 0.05;
  /// Per-chain annealing schedule (the iterations field is ignored; the
  /// budget comes from total_iterations).
  AnnealingOptions annealing;
  /// Per-restart climb options for "climb-par".
  LocalSearchOptions climb;
};

/// Statistics of one parallel search, aggregated across chains.
struct ParallelSearchStats {
  size_t chains = 0;             ///< Chains / restarts actually run.
  size_t threads = 0;            ///< Worker threads used.
  size_t rounds = 0;             ///< Exchange rounds executed (annealing).
  size_t proposals = 0;          ///< Annealing proposals, summed.
  size_t accepted = 0;           ///< Accepted proposals, summed.
  size_t steps = 0;              ///< Climb improvements, summed.
  size_t evaluations = 0;        ///< Climb candidates costed, summed.
  size_t full_evaluations = 0;   ///< Cold evaluator (re)binds, summed.
  size_t delta_evaluations = 0;  ///< Delta-scored candidates, summed.
  size_t penalty_fast = 0;       ///< Index-answered TimePenalty, summed.
  size_t penalty_full = 0;       ///< O(N)-pass TimePenalty, summed.
  size_t edge_memo_hits = 0;     ///< Batch T_comm memo hits, summed.
  size_t edge_memo_misses = 0;   ///< Batch T_comm memo misses, summed.
  size_t soa_fans = 0;           ///< SoA-grid batch fans, summed.
  size_t soa_candidates = 0;     ///< Candidates folded over SoA fans, summed.
  size_t grid_cells = 0;         ///< Grid cells precomputed, summed.
  size_t grid_hits = 0;          ///< Batch T_comm grid reads, summed.
  size_t arm_path_nodes = 0;     ///< Arm-only path folds, summed.
  size_t full_path_nodes = 0;    ///< Full path recomputes, summed.
  size_t exchanges = 0;          ///< Best-state adoptions across rounds.
  size_t winner_chain = 0;       ///< Chain index that produced the winner.
  double initial_cost = 0;       ///< Best start cost across chains.
  double best_cost = 0;          ///< Combined cost of the winner.
};

/// K annealing chains with periodic best-state exchange.
class ParallelAnnealingAlgorithm : public DeploymentAlgorithm {
 public:
  explicit ParallelAnnealingAlgorithm(ParallelSearchOptions options = {})
      : options_(options) {}

  std::string_view name() const override { return "annealing-par"; }
  Result<Mapping> Run(const DeployContext& ctx) const override;

  /// Run with aggregated statistics; `stats` may be null.
  Result<Mapping> RunWithStats(const DeployContext& ctx,
                               ParallelSearchStats* stats) const;

 private:
  ParallelSearchOptions options_;
};

/// K-restart batched hill climb with a deterministic reduction.
class ParallelHillClimbAlgorithm : public DeploymentAlgorithm {
 public:
  explicit ParallelHillClimbAlgorithm(ParallelSearchOptions options = {})
      : options_(options) {}

  std::string_view name() const override { return "climb-par"; }
  Result<Mapping> Run(const DeployContext& ctx) const override;

  /// Run with aggregated statistics; `stats` may be null.
  Result<Mapping> RunWithStats(const DeployContext& ctx,
                               ParallelSearchStats* stats) const;

 private:
  ParallelSearchOptions options_;
};

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_PARALLEL_H_
