// wsflow: round-robin deployment baseline (extension; not in the paper).
//
// Assigns operations to servers cyclically in workflow-id order, the
// classic naive placement. It load-balances operation *counts*, not cycle
// costs, and ignores both server heterogeneity and messages — a useful
// lower bar between the random baseline and the Fair Load family.

#ifndef WSFLOW_DEPLOY_ROUND_ROBIN_H_
#define WSFLOW_DEPLOY_ROUND_ROBIN_H_

#include "src/deploy/algorithm.h"

namespace wsflow {

class RoundRobinAlgorithm : public DeploymentAlgorithm {
 public:
  std::string_view name() const override { return "round-robin"; }
  Result<Mapping> Run(const DeployContext& ctx) const override;
};

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_ROUND_ROBIN_H_
