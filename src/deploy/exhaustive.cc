#include "src/deploy/exhaustive.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/cost/incremental.h"

namespace wsflow {

Result<Mapping> ExhaustiveAlgorithm::Run(const DeployContext& ctx) const {
  WSFLOW_RETURN_IF_ERROR(CheckContext(ctx));
  const Workflow& w = *ctx.workflow;
  const Network& n = *ctx.network;
  const size_t M = w.num_operations();
  const size_t N = n.num_servers();

  double space = std::pow(static_cast<double>(N), static_cast<double>(M));
  if (space > max_configurations_) {
    return Status::ResourceExhausted(
        "exhaustive search space " + std::to_string(space) +
        " exceeds the cap of " + std::to_string(max_configurations_));
  }

  CostModel model(w, n, ctx.profile);
  // Odometer over server indices, least-significant digit first. The
  // innermost digit (operation 0) never steps one server at a time:
  // its whole fan of N placements is batch-scored against the working
  // state — one dirty-path pin per outer configuration — and only the
  // outer digits advance by delta moves.
  std::vector<uint32_t> digits(M, 0);
  Mapping start(M);
  for (size_t i = 0; i < M; ++i) {
    start.Assign(OperationId(static_cast<uint32_t>(i)), ServerId(0));
  }
  WSFLOW_ASSIGN_OR_RETURN(
      IncrementalEvaluator eval,
      IncrementalEvaluator::Bind(model, std::move(start), ctx.cost_options));

  std::vector<ServerId> fan(N);
  for (uint32_t s = 0; s < N; ++s) fan[s] = ServerId(s);
  std::vector<double> fan_costs(N);

  Mapping best;
  double best_cost = 0;
  bool have_best = false;
  for (;;) {
    WSFLOW_RETURN_IF_ERROR(eval.ScoreMoves(OperationId(0), fan, fan_costs));
    for (uint32_t s = 0; s < N; ++s) {
      double cost = fan_costs[s];
      if (std::isinf(cost)) continue;  // disconnected placement
      if (!have_best || cost < best_cost) {
        best = eval.mapping();
        best.Assign(OperationId(0), fan[s]);
        best_cost = cost;
        have_best = true;
      }
    }
    // Advance the outer digits; digit 0 stays pinned at server 0, its fan
    // having been fully scored above.
    size_t pos = 1;
    while (pos < M) {
      if (++digits[pos] < N) {
        WSFLOW_RETURN_IF_ERROR(eval.Move(
            OperationId(static_cast<uint32_t>(pos)), ServerId(digits[pos])));
        break;
      }
      digits[pos] = 0;
      WSFLOW_RETURN_IF_ERROR(
          eval.Move(OperationId(static_cast<uint32_t>(pos)), ServerId(0)));
      ++pos;
    }
    if (pos == M) break;
  }
  if (!have_best) {
    return Status::FailedPrecondition(
        "every configuration routes a message between disconnected servers");
  }
  return best;
}

}  // namespace wsflow
