// wsflow: algorithm Heavy Operations - Large Messages (HOLM, paper §3.3,
// appendix).
//
// The paper's overall winner. Operations are treated as *groups* (initially
// singletons). Each step compares the top of three sorted lists — servers by
// remaining ideal cycles, groups by total cycle cost, messages by size — and
// decides:
//
//   (a) when processing the costliest group on the neediest server takes
//       longer than shipping the biggest live message, place that group
//       there (the heavy-operations move);
//   (b) otherwise neutralize the big message: if one of its endpoints is
//       already placed, co-locate the other endpoint's group with it (b1);
//       if neither is placed, merge their groups so they will always land
//       together (b2).
//
// Messages whose endpoints are placed, or fall in the same group, leave the
// message list (they can never cross the network again). Grouped operations
// are always deployed together; where the appendix's pseudocode detaches a
// single operation from its group in case (b1), we follow the paper's prose
// ("activities that have been grouped together are always assigned to the
// same server") and move the whole group — see DESIGN.md. Complexity
// O(M * (M logM + N logN)).
//
// The message transfer time uses the shared bus when the network has one
// (the configuration the paper evaluates); on point-to-point topologies the
// slowest link stands in as the conservative estimate.

#ifndef WSFLOW_DEPLOY_HEAVY_OPS_H_
#define WSFLOW_DEPLOY_HEAVY_OPS_H_

#include <optional>
#include <vector>

#include "src/deploy/algorithm.h"

namespace wsflow {

class HeavyOpsAlgorithm : public DeploymentAlgorithm {
 public:
  /// `large_message_scale` multiplies the message transfer time before the
  /// (a)/(b) comparison; 1.0 reproduces the paper. Exposed for the
  /// threshold-sensitivity ablation. `polish_steps` > 0 refines the result
  /// with that many delta-evaluated hill-climb improvements (registered
  /// separately as "heavy-ops-polish"); 0 keeps the paper's output.
  explicit HeavyOpsAlgorithm(double large_message_scale = 1.0,
                             size_t polish_steps = 0)
      : large_message_scale_(large_message_scale),
        polish_steps_(polish_steps) {}

  std::string_view name() const override {
    return polish_steps_ > 0 ? "heavy-ops-polish" : "heavy-ops";
  }
  Result<Mapping> Run(const DeployContext& ctx) const override;

  /// As Run(), but starts from (and updates) an external remaining-ideal-
  /// cycles ledger, letting several workflows share the servers (the multi-
  /// workflow extension). `remaining_cycles` is indexed by ServerId::value.
  /// `ledger_scale` multiplies the cycles drawn down per placement — a
  /// workflow's QPS weight in shared-farm deployment (it scales capacity
  /// consumption only; the heavy-vs-large comparison stays per-request).
  /// Must be finite and > 0.
  Result<Mapping> RunWithLedger(const DeployContext& ctx,
                                std::vector<double>* remaining_cycles,
                                double ledger_scale = 1.0) const;

 private:
  double large_message_scale_;
  size_t polish_steps_;
};

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_HEAVY_OPS_H_
