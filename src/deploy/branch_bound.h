// wsflow: branch-and-bound exact deployment for line workflows
// (extension; not in the paper).
//
// The paper bounds solution quality by sampling 32 000 of up to 10^13
// mappings (§4.1) because plain enumeration stops being feasible around
// M=10. For *line* workflows the combined objective decomposes along the
// chain, which admits cheap admissible lower bounds and lets depth-first
// branch-and-bound certify exact optima for mid-size instances (M≈15-20 on
// 5 servers in well under a second) — replacing sampled bounds with true
// ones in the quality studies.
//
// Bounds for a prefix assignment O_0..O_{k-1} come from the shared
// BoundTables (bound_tables.h, also behind the A* solver in astar.h):
//   execution  — accumulated T_proc + T_comm of the prefix, plus every
//                unassigned operation at the fastest server's speed and
//                every remaining chain edge at its zero-or-min-route
//                bound;
//   fairness   — the unavoidable-excess / unavoidable-deficit penalty
//                bound (BoundTables::PenaltyLowerBound).
// Additionally, on bus networks (uniform pairwise communication) empty
// servers of equal power are interchangeable, so only the first of each
// such class is branched on.

#ifndef WSFLOW_DEPLOY_BRANCH_BOUND_H_
#define WSFLOW_DEPLOY_BRANCH_BOUND_H_

#include <cstddef>

#include "src/deploy/algorithm.h"

namespace wsflow {

class BranchBoundAlgorithm : public DeploymentAlgorithm {
 public:
  /// `max_nodes` caps the explored search-tree nodes; the search fails
  /// with ResourceExhausted beyond it rather than running unbounded.
  explicit BranchBoundAlgorithm(size_t max_nodes = 50'000'000)
      : max_nodes_(max_nodes) {}

  std::string_view name() const override { return "branch-bound"; }

  /// Returns a provably optimal mapping under ctx.cost_options. Requires a
  /// line workflow (FailedPrecondition otherwise).
  Result<Mapping> Run(const DeployContext& ctx) const override;

  /// Search-tree nodes explored by the last Run on this instance (for the
  /// scaling bench; not thread-safe).
  size_t last_nodes() const { return last_nodes_; }

 private:
  size_t max_nodes_;
  mutable size_t last_nodes_ = 0;
};

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_BRANCH_BOUND_H_
