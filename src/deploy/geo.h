// wsflow: locality-aware deployment for geo-distributed farms (extension).
//
// The paper's heuristics are oblivious to *where* servers sit: on a
// hierarchical WAN (MakeHierarchicalNetwork) they happily split a chatty
// pair of operations across regions and pay the 30 ms WAN round trip per
// message. GeoLocalityAlgorithm wraps any registered base algorithm and
// adds a zone-aware candidate:
//
//   1. Cluster operations by their chattiest edges (probability-weighted
//      message bits, descending) with a union-find, capping each cluster at
//      the largest zone's fair capacity share so every cluster fits inside
//      some zone. Cross-cluster edges are the light ones — the cheap cut
//      points where crossing a region boundary hurts least.
//   2. Assign clusters to zones: chattiest-affinity first (a cluster goes
//      to the zone it already exchanges the most bits with), capacity
//      otherwise, all ties broken by zone order.
//   3. Place each cluster's operations on its zone's servers by LPT
//      (longest processing time first, earliest-finishing server wins).
//   4. Refine with a short delta-evaluated hill climb (PolishMapping).
//
// The wrapper then evaluates BOTH the base mapping and the zone-aware one
// under the context's cost options and returns the cheaper (ties keep the
// base). It therefore *never loses* to its locality-blind counterpart by
// construction, and wins whenever locality matters. On networks without
// zone labels (fewer than two distinct zones) it degenerates to the base
// algorithm exactly. Deterministic: every sort and argmin carries an
// explicit id tie-break.
//
// Registered as the "-geo" variants: heavy-ops-geo, fltr2-geo,
// fair-load-geo.

#ifndef WSFLOW_DEPLOY_GEO_H_
#define WSFLOW_DEPLOY_GEO_H_

#include <optional>
#include <string>
#include <string_view>

#include "src/deploy/algorithm.h"

namespace wsflow {

/// Builds the zone-aware seed mapping (steps 1–3 above) without the polish
/// or the argmin. Returns nullopt when the network offers no locality
/// signal: fewer than two distinct zones, or any server without a zone
/// label. Exposed for tests and for the locality ablation bench.
std::optional<Mapping> BuildZoneLocalitySeed(const DeployContext& ctx);

class GeoLocalityAlgorithm : public DeploymentAlgorithm {
 public:
  /// Wraps the registered algorithm `base_name`; the published name is
  /// "<base_name>-geo". `polish_steps` bounds the hill-climb refinement of
  /// the zone-aware candidate.
  explicit GeoLocalityAlgorithm(std::string base_name,
                                size_t polish_steps = 80);

  std::string_view name() const override { return name_; }
  Result<Mapping> Run(const DeployContext& ctx) const override;

 private:
  std::string base_name_;
  std::string name_;
  size_t polish_steps_;
};

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_GEO_H_
