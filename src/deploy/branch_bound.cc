#include "src/deploy/branch_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "src/common/logging.h"
#include "src/deploy/local_search.h"
#include "src/deploy/portfolio.h"
#include "src/network/routing.h"

namespace wsflow {

namespace {

class Search {
 public:
  Search(const DeployContext& ctx, const std::vector<OperationId>& order,
         size_t max_nodes)
      : ctx_(ctx),
        w_(*ctx.workflow),
        n_(*ctx.network),
        order_(order),
        router_(n_),
        max_nodes_(max_nodes) {}

  Status Prepare() {
    const size_t N = n_.num_servers();
    power_.resize(N);
    max_power_ = 0;
    min_power_ = std::numeric_limits<double>::infinity();
    for (const Server& s : n_.servers()) {
      power_[s.id().value] = s.power_hz();
      max_power_ = std::max(max_power_, s.power_hz());
      min_power_ = std::min(min_power_, s.power_hz());
    }
    // Per-pair communication seconds for each chain edge; bus networks are
    // uniform, so precompute one seconds-per-bit figure per server pair.
    router_.WarmAllPairs();
    pair_seconds_.assign(N * N, 0.0);
    for (uint32_t a = 0; a < N; ++a) {
      for (uint32_t b = 0; b < N; ++b) {
        if (a == b) continue;
        WSFLOW_ASSIGN_OR_RETURN(Route route,
                                router_.FindRoute(ServerId(a), ServerId(b)));
        double seconds_per_bit = 0;
        double propagation = route.TotalPropagation(n_);
        for (LinkId l : route.links) {
          seconds_per_bit += 1.0 / n_.link(l).speed_bps;
        }
        pair_prop_[a * N + b] = propagation;
        pair_seconds_[a * N + b] = seconds_per_bit;
      }
    }
    // Weighted cycles along the chain and message bits between steps.
    cycles_.resize(order_.size());
    suffix_cycles_.assign(order_.size() + 1, 0.0);
    for (size_t i = 0; i < order_.size(); ++i) {
      double p = ctx_.profile == nullptr
                     ? 1.0
                     : ctx_.profile->OperationProb(order_[i]);
      cycles_[i] = p * w_.operation(order_[i]).cycles();
    }
    for (size_t i = order_.size(); i-- > 0;) {
      suffix_cycles_[i] = suffix_cycles_[i + 1] + cycles_[i];
    }
    msg_bits_.assign(order_.size(), 0.0);
    for (size_t i = 0; i + 1 < order_.size(); ++i) {
      WSFLOW_ASSIGN_OR_RETURN(
          TransitionId t, w_.FindTransition(order_[i], order_[i + 1]));
      double p = ctx_.profile == nullptr
                     ? 1.0
                     : ctx_.profile->TransitionProb(t);
      msg_bits_[i] = p * w_.transition(t).message_bits;
    }
    loads_.assign(N, 0.0);
    assignment_.assign(order_.size(), 0);
    best_assignment_.assign(order_.size(), 0);
    // Only bus networks are pairwise-symmetric; symmetry breaking over
    // empty equal-power servers is sound there.
    symmetric_ = n_.has_bus();
    return Status::OK();
  }

  /// Combined cost of a full mapping under the decomposed model.
  double CostOf(const Mapping& m) const {
    double exec = 0;
    std::vector<double> loads(n_.num_servers(), 0.0);
    for (size_t i = 0; i < order_.size(); ++i) {
      uint32_t s = m.ServerOf(order_[i]).value;
      exec += cycles_[i] / power_[s];
      loads[s] += cycles_[i] / power_[s];
      if (i + 1 < order_.size()) {
        exec += Comm(i, s, m.ServerOf(order_[i + 1]).value);
      }
    }
    return ctx_.cost_options.execution_weight * exec +
           ctx_.cost_options.fairness_weight * Penalty(loads);
  }

  /// Seeds the incumbent with the hill-climb-refined portfolio solution —
  /// a tight incumbent is the main pruning lever.
  void SeedIncumbent() {
    PortfolioAlgorithm portfolio;
    Result<Mapping> m = portfolio.Run(ctx_);
    if (!m.ok()) return;
    CostModel model(w_, n_, ctx_.profile);
    Result<Mapping> refined =
        HillClimb(model, *m, ctx_.cost_options, LocalSearchOptions{});
    const Mapping& incumbent = refined.ok() ? *refined : *m;
    best_cost_ = CostOf(incumbent);
    for (size_t i = 0; i < order_.size(); ++i) {
      best_assignment_[i] = incumbent.ServerOf(order_[i]).value;
    }
    have_best_ = true;
  }

  Result<Mapping> Run() {
    SeedIncumbent();
    WSFLOW_RETURN_IF_ERROR(Dfs(0, 0.0));
    if (!have_best_) {
      return Status::Internal("branch and bound found no mapping");
    }
    Mapping m(w_.num_operations());
    for (size_t i = 0; i < order_.size(); ++i) {
      m.Assign(order_[i], ServerId(best_assignment_[i]));
    }
    return m;
  }

  size_t nodes() const { return nodes_; }

 private:
  double Comm(size_t edge, uint32_t from, uint32_t to) const {
    if (from == to) return 0.0;
    size_t idx = static_cast<size_t>(from) * n_.num_servers() + to;
    auto prop = pair_prop_.find(idx);
    return (prop == pair_prop_.end() ? 0.0 : prop->second) +
           msg_bits_[edge] * pair_seconds_[idx];
  }

  double Penalty(const std::vector<double>& loads) const {
    double avg = 0;
    for (double l : loads) avg += l;
    avg /= static_cast<double>(loads.size());
    double p = 0;
    for (double l : loads) p += std::fabs(l - avg) / 2.0;
    return p;
  }

  /// Admissible lower bound on the final fairness penalty given the
  /// current loads and the remaining (weighted) cycles. Two admissible
  /// views, both exact forms of "penalty = total above-average excess =
  /// total below-average deficit":
  ///   excess  — loads only grow and the final average is at most avg_max
  ///             (everything remaining on the slowest server), so each
  ///             server's current excess over avg_max is unavoidable;
  ///   deficit — server s can end at most at l_s + remaining/P(s), and the
  ///             final average is at least avg_min (everything remaining
  ///             on the fastest server), so shortfalls against avg_min
  ///             are unavoidable too.
  double PenaltyLowerBound(double remaining_cycles) const {
    double total_seconds = 0;
    for (double l : loads_) total_seconds += l;
    double n = static_cast<double>(loads_.size());
    double avg_max = (total_seconds + remaining_cycles / min_power_) / n;
    double avg_min = (total_seconds + remaining_cycles / max_power_) / n;
    double excess = 0, deficit = 0;
    for (size_t s = 0; s < loads_.size(); ++s) {
      excess += std::max(0.0, loads_[s] - avg_max);
      deficit += std::max(
          0.0, avg_min - (loads_[s] + remaining_cycles / power_[s]));
    }
    return std::max(excess, deficit);
  }

  Status Dfs(size_t depth, double exec_so_far) {
    if (++nodes_ > max_nodes_) {
      return Status::ResourceExhausted(
          "branch and bound exceeded " + std::to_string(max_nodes_) +
          " nodes");
    }
    if (depth == order_.size()) {
      double cost = ctx_.cost_options.execution_weight * exec_so_far +
                    ctx_.cost_options.fairness_weight * Penalty(loads_);
      if (!have_best_ || cost < best_cost_) {
        best_cost_ = cost;
        best_assignment_ = assignment_;
        have_best_ = true;
      }
      return Status::OK();
    }

    const size_t N = n_.num_servers();
    // Branch in order of immediate incremental execution cost: good
    // solutions surface early and tighten the incumbent for the rest of
    // the subtree.
    std::pair<double, uint32_t> candidates[64];
    size_t num_candidates = 0;
    for (uint32_t s = 0; s < N; ++s) {
      if (symmetric_ && loads_[s] == 0.0) {
        // Skip later empty servers identical in power to an earlier empty
        // one: interchangeable on a bus.
        bool duplicate = false;
        for (uint32_t prev = 0; prev < s; ++prev) {
          if (loads_[prev] == 0.0 && power_[prev] == power_[s]) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;
      }
      double step = cycles_[depth] / power_[s];
      double comm =
          depth == 0 ? 0.0 : Comm(depth - 1, assignment_[depth - 1], s);
      candidates[num_candidates++] = {step + comm, s};
    }
    std::sort(&candidates[0], &candidates[num_candidates]);
    for (size_t c = 0; c < num_candidates; ++c) {
      uint32_t s = candidates[c].second;
      double step = cycles_[depth] / power_[s];
      double comm =
          depth == 0 ? 0.0 : Comm(depth - 1, assignment_[depth - 1], s);
      double exec_next = exec_so_far + step + comm;

      loads_[s] += step;
      double bound =
          ctx_.cost_options.execution_weight *
              (exec_next + suffix_cycles_[depth + 1] / max_power_) +
          ctx_.cost_options.fairness_weight *
              PenaltyLowerBound(suffix_cycles_[depth + 1]);
      if (!have_best_ || bound < best_cost_ - 1e-15) {
        assignment_[depth] = s;
        WSFLOW_RETURN_IF_ERROR(Dfs(depth + 1, exec_next));
      }
      loads_[s] -= step;
    }
    return Status::OK();
  }

  const DeployContext& ctx_;
  const Workflow& w_;
  const Network& n_;
  const std::vector<OperationId>& order_;
  Router router_;
  size_t max_nodes_;

  std::vector<double> power_;
  double max_power_ = 0;
  double min_power_ = 0;
  std::vector<double> pair_seconds_;
  std::unordered_map<size_t, double> pair_prop_;
  std::vector<double> cycles_;
  std::vector<double> suffix_cycles_;
  std::vector<double> msg_bits_;

  std::vector<double> loads_;
  std::vector<uint32_t> assignment_;
  std::vector<uint32_t> best_assignment_;
  double best_cost_ = 0;
  bool have_best_ = false;
  size_t nodes_ = 0;
  bool symmetric_ = false;
};

}  // namespace

Result<Mapping> BranchBoundAlgorithm::Run(const DeployContext& ctx) const {
  WSFLOW_RETURN_IF_ERROR(CheckContext(ctx));
  Result<std::vector<OperationId>> order = ctx.workflow->LineOrder();
  if (!order.ok()) {
    return Status::FailedPrecondition(
        "branch-bound requires a line workflow: " +
        order.status().message());
  }
  if (ctx.network->num_servers() > 64) {
    // The DFS keeps its per-node candidate list on the stack.
    return Status::InvalidArgument(
        "branch-bound supports at most 64 servers");
  }
  Search search(ctx, *order, max_nodes_);
  WSFLOW_RETURN_IF_ERROR(search.Prepare());
  Result<Mapping> result = search.Run();
  last_nodes_ = search.nodes();
  return result;
}

}  // namespace wsflow
