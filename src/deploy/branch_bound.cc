#include "src/deploy/branch_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"
#include "src/deploy/bound_tables.h"
#include "src/deploy/local_search.h"
#include "src/deploy/portfolio.h"

namespace wsflow {

namespace {

class Search {
 public:
  Search(const DeployContext& ctx, BoundTables tables, size_t max_nodes)
      : ctx_(ctx), tables_(std::move(tables)), max_nodes_(max_nodes) {}

  Status Prepare() {
    const size_t M = tables_.num_ops();
    loads_.assign(tables_.num_servers(), 0.0);
    assignment_.assign(M, 0);
    best_assignment_.assign(M, 0);
    // Only bus networks are pairwise-symmetric; symmetry breaking over
    // empty equal-power servers is sound there.
    symmetric_ = ctx_.network->has_bus();
    return Status::OK();
  }

  /// Seeds the incumbent with the hill-climb-refined portfolio solution —
  /// a tight incumbent is the main pruning lever.
  void SeedIncumbent() {
    PortfolioAlgorithm portfolio;
    Result<Mapping> m = portfolio.Run(ctx_);
    if (!m.ok()) return;
    CostModel model(*ctx_.workflow, *ctx_.network, ctx_.profile);
    Result<Mapping> refined =
        HillClimb(model, *m, ctx_.cost_options, LocalSearchOptions{});
    const Mapping& incumbent = refined.ok() ? *refined : *m;
    const double cost = tables_.PrefixLowerBound(incumbent, ctx_.cost_options);
    if (std::isinf(cost)) return;
    best_cost_ = cost;
    for (size_t i = 0; i < tables_.num_ops(); ++i) {
      best_assignment_[i] = incumbent.ServerOf(tables_.order()[i]).value;
    }
    have_best_ = true;
  }

  Result<Mapping> Run() {
    SeedIncumbent();
    WSFLOW_RETURN_IF_ERROR(Dfs(0, 0.0));
    if (!have_best_) {
      return Status::Internal("branch and bound found no mapping");
    }
    Mapping m(ctx_.workflow->num_operations());
    for (size_t i = 0; i < tables_.num_ops(); ++i) {
      m.Assign(tables_.order()[i], ServerId(best_assignment_[i]));
    }
    return m;
  }

  size_t nodes() const { return nodes_; }

 private:
  /// Exact penalty of the current total assignment (remaining == 0
  /// collapses the lower bound to the true value).
  double Penalty() const { return tables_.PenaltyLowerBound(loads_, 0.0); }

  Status Dfs(size_t depth, double exec_so_far) {
    if (++nodes_ > max_nodes_) {
      return Status::ResourceExhausted(
          "branch and bound exceeded " + std::to_string(max_nodes_) +
          " nodes");
    }
    const size_t M = tables_.num_ops();
    if (depth == M) {
      double cost = ctx_.cost_options.execution_weight * exec_so_far +
                    ctx_.cost_options.fairness_weight * Penalty();
      if (!have_best_ || cost < best_cost_) {
        best_cost_ = cost;
        best_assignment_ = assignment_;
        have_best_ = true;
      }
      return Status::OK();
    }

    // Branch in order of immediate incremental execution cost: good
    // solutions surface early and tighten the incumbent for the rest of
    // the subtree.
    std::pair<double, uint32_t> candidates[64];
    size_t num_candidates = 0;
    for (uint32_t s : tables_.alive_servers()) {
      if (symmetric_ && loads_[s] == 0.0) {
        // Skip later empty servers identical in power to an earlier empty
        // one: interchangeable on a bus.
        bool duplicate = false;
        for (uint32_t prev : tables_.alive_servers()) {
          if (prev >= s) break;
          if (loads_[prev] == 0.0 &&
              tables_.power(prev) == tables_.power(s)) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;
      }
      double comm = depth == 0 ? 0.0
                               : tables_.PairComm(assignment_[depth - 1], s,
                                                  tables_.chain_bits(depth - 1));
      if (std::isinf(comm)) continue;
      candidates[num_candidates++] = {tables_.Tproc(depth, s) + comm, s};
    }
    std::sort(&candidates[0], &candidates[num_candidates]);
    for (size_t c = 0; c < num_candidates; ++c) {
      uint32_t s = candidates[c].second;
      double exec_next = exec_so_far + candidates[c].first;

      loads_[s] += tables_.LoadOf(depth, s);
      double bound = ctx_.cost_options.execution_weight *
                         (exec_next + tables_.SuffixMinProc(depth + 1) +
                          tables_.SuffixEdgeLb(depth)) +
                     ctx_.cost_options.fairness_weight *
                         tables_.PenaltyLowerBound(
                             loads_, tables_.SuffixWeightedCycles(depth + 1));
      if (!have_best_ || bound < best_cost_ - 1e-15) {
        assignment_[depth] = s;
        WSFLOW_RETURN_IF_ERROR(Dfs(depth + 1, exec_next));
      }
      loads_[s] -= tables_.LoadOf(depth, s);
    }
    return Status::OK();
  }

  const DeployContext& ctx_;
  BoundTables tables_;
  size_t max_nodes_;

  std::vector<double> loads_;
  std::vector<uint32_t> assignment_;
  std::vector<uint32_t> best_assignment_;
  double best_cost_ = 0;
  bool have_best_ = false;
  size_t nodes_ = 0;
  bool symmetric_ = false;
};

}  // namespace

Result<Mapping> BranchBoundAlgorithm::Run(const DeployContext& ctx) const {
  WSFLOW_RETURN_IF_ERROR(CheckContext(ctx));
  if (!ctx.workflow->IsLine()) {
    return Status::FailedPrecondition(
        "branch-bound requires a line workflow");
  }
  if (ctx.network->num_servers() > 64) {
    // The DFS keeps its per-node candidate list on the stack.
    return Status::InvalidArgument(
        "branch-bound supports at most 64 servers");
  }
  WSFLOW_ASSIGN_OR_RETURN(BoundTables tables, BoundTables::Build(ctx));
  Search search(ctx, std::move(tables), max_nodes_);
  WSFLOW_RETURN_IF_ERROR(search.Prepare());
  Result<Mapping> result = search.Run();
  last_nodes_ = search.nodes();
  return result;
}

}  // namespace wsflow
