#include "src/deploy/graph_view.h"

#include "src/common/logging.h"
#include "src/network/topology.h"

namespace wsflow {

WorkflowView::WorkflowView(const Workflow& workflow,
                           const ExecutionProfile* profile)
    : w_(workflow), profile_(profile) {
  if (profile_ != nullptr) {
    WSFLOW_CHECK_EQ(profile_->op_prob.size(), w_.num_operations());
    WSFLOW_CHECK_EQ(profile_->edge_prob.size(), w_.num_transitions());
  }
}

double WorkflowView::Cycles(OperationId op) const {
  double p = profile_ == nullptr ? 1.0 : profile_->OperationProb(op);
  return p * w_.operation(op).cycles();
}

double WorkflowView::MessageBits(TransitionId t) const {
  double p = profile_ == nullptr ? 1.0 : profile_->TransitionProb(t);
  return p * w_.transition(t).message_bits;
}

std::vector<TransitionId> WorkflowView::IncidentTransitions(
    OperationId op) const {
  std::vector<TransitionId> out;
  const auto& in = w_.in_edges(op);
  const auto& outs = w_.out_edges(op);
  out.reserve(in.size() + outs.size());
  out.insert(out.end(), in.begin(), in.end());
  out.insert(out.end(), outs.begin(), outs.end());
  return out;
}

OperationId WorkflowView::Neighbor(TransitionId t, OperationId op) const {
  const Transition& edge = w_.transition(t);
  WSFLOW_CHECK(edge.from == op || edge.to == op);
  return edge.from == op ? edge.to : edge.from;
}

double WorkflowView::GainAtServer(OperationId op, ServerId server,
                                  const Mapping& m) const {
  double gain = 0;
  for (TransitionId t : w_.in_edges(op)) {
    if (m.ServerOf(w_.transition(t).from) == server) gain += MessageBits(t);
  }
  for (TransitionId t : w_.out_edges(op)) {
    if (m.ServerOf(w_.transition(t).to) == server) gain += MessageBits(t);
  }
  return gain;
}

double WorkflowView::TotalCycles() const {
  double total = 0;
  for (const Operation& op : w_.operations()) total += Cycles(op.id());
  return total;
}

std::vector<double> IdealCycles(const WorkflowView& view, const Network& n) {
  double sum_cycles = view.TotalCycles();
  double sum_capacity = n.TotalPowerHz();
  std::vector<double> ideal(n.num_servers());
  for (const Server& s : n.servers()) {
    ideal[s.id().value] = sum_cycles * s.power_hz() / sum_capacity;
  }
  return ideal;
}

}  // namespace wsflow
