#include "src/deploy/repair.h"

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/deploy/graph_view.h"

namespace wsflow {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

CostBreakdown InfiniteBreakdown() {
  return CostBreakdown{kInf, kInf, kInf};
}

/// Strict improvement with the relative ulp margin; a finite cost always
/// beats an infinite incumbent (the margin arithmetic would produce NaN).
bool Accepts(double cost, double incumbent, double margin) {
  if (!std::isfinite(incumbent)) return cost < incumbent;
  return cost < incumbent - margin * (1.0 + std::fabs(incumbent));
}

/// Best-improvement descent on a masked evaluator: sweeps batched move
/// (and optionally swap) fans, applies the best strictly-improving
/// candidate per pass, stops at a local optimum or the eval budget.
Status Polish(const CostModel& model, const ServerMask& alive,
              const RepairOptions& options, Mapping* mapping,
              RepairResult* result) {
  EvalTuning tuning = options.tuning;
  tuning.mask = alive;
  WSFLOW_ASSIGN_OR_RETURN(
      IncrementalEvaluator eval,
      IncrementalEvaluator::Bind(model, *mapping, options.cost_options,
                                 tuning));

  const size_t M = model.workflow().num_operations();
  const size_t N = model.network().num_servers();
  std::vector<ServerId> candidates;
  for (uint32_t s = 0; s < N; ++s) {
    if (alive.alive(ServerId(s))) candidates.push_back(ServerId(s));
  }

  const size_t budget = options.eval_budget;
  auto used = [&eval] { return eval.counters().delta_evaluations; };
  auto budget_allows = [&](size_t fan) {
    return budget == 0 || used() + fan <= budget;
  };

  // A severed seed has no finite combined cost; start from +infinity and
  // let the first routable candidate take over.
  double incumbent = kInf;
  if (budget_allows(1)) {
    Result<double> start = eval.Combined();
    if (start.ok()) incumbent = *start;
  }

  std::vector<double> costs;
  std::vector<OperationId> partners;
  bool improved = true;
  while (improved && !result->budget_exhausted) {
    improved = false;
    double best_cost = incumbent;
    bool best_is_swap = false;
    OperationId best_a;
    OperationId best_b;
    ServerId best_server;

    for (uint32_t op = 0; op < M && !result->budget_exhausted; ++op) {
      if (!budget_allows(candidates.size())) {
        result->budget_exhausted = true;
        break;
      }
      costs.resize(candidates.size());
      WSFLOW_RETURN_IF_ERROR(
          eval.ScoreMoves(OperationId(op), candidates, costs));
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (Accepts(costs[i], best_cost, options.min_improvement)) {
          best_cost = costs[i];
          best_is_swap = false;
          best_a = OperationId(op);
          best_server = candidates[i];
        }
      }
    }
    if (options.use_swaps) {
      for (uint32_t a = 0; a < M && !result->budget_exhausted; ++a) {
        partners.clear();
        for (uint32_t b = a + 1; b < M; ++b) {
          if (eval.mapping().ServerOf(OperationId(a)) !=
              eval.mapping().ServerOf(OperationId(b))) {
            partners.push_back(OperationId(b));
          }
        }
        if (partners.empty()) continue;
        if (!budget_allows(partners.size())) {
          result->budget_exhausted = true;
          break;
        }
        costs.resize(partners.size());
        WSFLOW_RETURN_IF_ERROR(eval.ScoreSwaps(OperationId(a), partners,
                                               costs));
        for (size_t i = 0; i < partners.size(); ++i) {
          if (Accepts(costs[i], best_cost, options.min_improvement)) {
            best_cost = costs[i];
            best_is_swap = true;
            best_a = OperationId(a);
            best_b = partners[i];
          }
        }
      }
    }

    if (best_a.valid()) {
      if (best_is_swap) {
        WSFLOW_RETURN_IF_ERROR(eval.Swap(best_a, best_b));
      } else {
        WSFLOW_RETURN_IF_ERROR(eval.Apply(best_a, best_server));
      }
      eval.ClearHistory();
      incumbent = best_cost;
      improved = true;
    }
  }

  *mapping = eval.mapping();
  result->polish_evaluations = used();
  result->counters = eval.counters();
  return Status::OK();
}

Status CheckInputs(const CostModel& model, const ServerMask& alive) {
  const Network& n = model.network();
  if (!alive.trivial() && alive.size() != n.num_servers()) {
    return Status::InvalidArgument(
        "server mask size does not match the network");
  }
  size_t num_alive = alive.trivial() ? n.num_servers() : alive.num_alive();
  if (num_alive == 0) {
    return Status::FailedPrecondition("no alive server to repair onto");
  }
  return Status::OK();
}

/// Final masked breakdown; an unroutable mapping reports infinities
/// rather than an error so chaos reports can tabulate it.
CostBreakdown FinalCost(const CostModel& model, const Mapping& m,
                        const CostOptions& options, const ServerMask& alive) {
  Result<CostBreakdown> cost = model.Evaluate(m, options, alive);
  return cost.ok() ? *cost : InfiniteBreakdown();
}

double ColdCost(const CostModel& model, const Mapping& m,
                const CostOptions& options, const ServerMask& alive) {
  Result<CostBreakdown> cost = model.Evaluate(m, options, alive);
  return cost.ok() ? cost->combined : kInf;
}

/// A severed seed cannot be escaped by single-move descent: every
/// intermediate mapping still routes some message through a down server
/// and scores +infinity, so Polish sits at an infinite local optimum.
/// Reseed from blank — every operation an orphan — racing both failover
/// strategies; kCoLocate chains operations onto one connected component,
/// which is what heals a partitioned surviving subnetwork.
void ReseedIfSevered(const CostModel& model, const WorkflowView& view,
                     const ServerMask& alive, const RepairOptions& options,
                     Mapping* seed, double* seed_cost, RepairResult* result) {
  if (std::isfinite(*seed_cost)) return;
  const size_t M = model.workflow().num_operations();
  Mapping worst_fit(M);
  Mapping co_locate(M);
  if (!RedistributeOrphans(view, model.network(), alive,
                           FailoverStrategy::kWorstFit, &worst_fit)
           .ok() ||
      !RedistributeOrphans(view, model.network(), alive,
                           FailoverStrategy::kCoLocate, &co_locate)
           .ok()) {
    return;
  }
  double wf = ColdCost(model, worst_fit, options.cost_options, alive);
  double cl = ColdCost(model, co_locate, options.cost_options, alive);
  if (!std::isfinite(wf) && !std::isfinite(cl)) return;
  result->orphans_reassigned = M;
  if (cl < wf) {
    *seed = std::move(co_locate);
    *seed_cost = cl;
    result->seed_strategy = FailoverStrategy::kCoLocate;
  } else {
    *seed = std::move(worst_fit);
    *seed_cost = wf;
    result->seed_strategy = FailoverStrategy::kWorstFit;
  }
}

}  // namespace

Result<RepairResult> RepairMapping(const CostModel& model,
                                   const Mapping& current,
                                   const ServerMask& alive,
                                   const RepairOptions& options) {
  const Workflow& w = model.workflow();
  const Network& n = model.network();
  WSFLOW_RETURN_IF_ERROR(CheckInputs(model, alive));
  if (current.num_operations() != w.num_operations()) {
    return Status::InvalidArgument(
        "mapping does not match the model's workflow");
  }

  ExecutionProfile profile = model.ProfileSnapshot();
  WorkflowView view(w, &profile);

  RepairResult result;
  Mapping seed = current;
  WSFLOW_ASSIGN_OR_RETURN(
      result.orphans_reassigned,
      RedistributeOrphans(view, n, alive, FailoverStrategy::kWorstFit,
                          &seed));
  double seed_cost;
  if (result.orphans_reassigned > 0) {
    // Race the two failover strategies cold; the cheaper seed wins, worst
    // fit on ties (both evaluations are outside the polish budget).
    Mapping co_locate = current;
    WSFLOW_RETURN_IF_ERROR(
        RedistributeOrphans(view, n, alive, FailoverStrategy::kCoLocate,
                            &co_locate)
            .status());
    double wf = ColdCost(model, seed, options.cost_options, alive);
    double cl = ColdCost(model, co_locate, options.cost_options, alive);
    seed_cost = wf;
    if (cl < wf) {
      seed = std::move(co_locate);
      seed_cost = cl;
      result.seed_strategy = FailoverStrategy::kCoLocate;
    }
  } else {
    seed_cost = ColdCost(model, seed, options.cost_options, alive);
  }
  ReseedIfSevered(model, view, alive, options, &seed, &seed_cost, &result);

  WSFLOW_RETURN_IF_ERROR(Polish(model, alive, options, &seed, &result));
  result.mapping = std::move(seed);
  result.cost = FinalCost(model, result.mapping, options.cost_options, alive);
  return result;
}

Result<RepairResult> ReoptimizeFromScratch(const CostModel& model,
                                           const ServerMask& alive,
                                           const RepairOptions& options) {
  const Workflow& w = model.workflow();
  const Network& n = model.network();
  WSFLOW_RETURN_IF_ERROR(CheckInputs(model, alive));

  ExecutionProfile profile = model.ProfileSnapshot();
  WorkflowView view(w, &profile);

  RepairResult result;
  Mapping seed(w.num_operations());  // blank: every operation is an orphan
  WSFLOW_ASSIGN_OR_RETURN(
      result.orphans_reassigned,
      RedistributeOrphans(view, n, alive, FailoverStrategy::kWorstFit,
                          &seed));
  double seed_cost = ColdCost(model, seed, options.cost_options, alive);
  ReseedIfSevered(model, view, alive, options, &seed, &seed_cost, &result);

  WSFLOW_RETURN_IF_ERROR(Polish(model, alive, options, &seed, &result));
  result.mapping = std::move(seed);
  result.cost = FinalCost(model, result.mapping, options.cost_options, alive);
  return result;
}

}  // namespace wsflow
