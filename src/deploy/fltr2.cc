#include "src/deploy/fltr2.h"

#include "src/common/random.h"
#include "src/deploy/fair_load.h"
#include "src/deploy/graph_view.h"
#include "src/deploy/local_search.h"
#include "src/deploy/random_baseline.h"

namespace wsflow {

TieSelection SelectByGain(const WorkflowView& view, const ServerLedger& ledger,
                          const std::vector<OperationId>& pending,
                          const Mapping& m) {
  std::vector<ServerId> server_ties = ledger.TopTies();
  double head_cycles = view.Cycles(pending.front());

  TieSelection best;
  best.pending_index = 0;
  best.server = server_ties.front();
  best.gain = -1;  // ensure the first candidate is taken even at gain 0
  for (size_t i = 0;
       i < pending.size() && view.Cycles(pending[i]) == head_cycles; ++i) {
    for (ServerId s : server_ties) {
      double gain = view.GainAtServer(pending[i], s, m);
      if (gain > best.gain) {
        best.gain = gain;
        best.pending_index = i;
        best.server = s;
      }
    }
  }
  return best;
}

Result<Mapping> Fltr2Algorithm::Run(const DeployContext& ctx) const {
  WSFLOW_RETURN_IF_ERROR(CheckContext(ctx));
  WorkflowView view(*ctx.workflow, ctx.profile);
  ServerLedger ledger(view, *ctx.network);

  const size_t num_ops = ctx.workflow->num_operations();
  Rng rng(ctx.seed);
  Mapping m = random_init_
                  ? RandomMapping(num_ops, ctx.network->num_servers(), &rng)
                  : Mapping(num_ops);

  std::vector<OperationId> pending = OperationsByDescendingCycles(view);
  while (!pending.empty()) {
    TieSelection sel = SelectByGain(view, ledger, pending, m);
    OperationId chosen = pending[sel.pending_index];
    pending.erase(pending.begin() +
                  static_cast<ptrdiff_t>(sel.pending_index));
    m.Assign(chosen, sel.server);
    ledger.Charge(sel.server, view.Cycles(chosen));
  }
  return PolishMapping(ctx, std::move(m), polish_steps_);
}

}  // namespace wsflow
