#include "src/deploy/geo.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/deploy/local_search.h"

namespace wsflow {

namespace {

// Union-find over operation ids (path halving, union by size, and a
// deterministic representative: the smallest member id).
class Dsu {
 public:
  explicit Dsu(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
};

struct ZoneInfo {
  std::string label;
  std::vector<ServerId> servers;
  double power_hz = 0;
  double capacity_cycles = 0;  // fair share of the total weighted cycles
  double assigned_cycles = 0;
};

double OpProb(const DeployContext& ctx, size_t op) {
  return ctx.profile ? ctx.profile->op_prob[op] : 1.0;
}

double EdgeProb(const DeployContext& ctx, size_t t) {
  return ctx.profile ? ctx.profile->edge_prob[t] : 1.0;
}

}  // namespace

std::optional<Mapping> BuildZoneLocalitySeed(const DeployContext& ctx) {
  const Workflow& w = *ctx.workflow;
  const Network& n = *ctx.network;

  // Collect zones in first-appearance order; bail when the network carries
  // no locality signal.
  std::vector<ZoneInfo> zones;
  std::unordered_map<std::string, size_t> zone_index;
  for (const Server& s : n.servers()) {
    if (s.zone().empty()) return std::nullopt;
    auto [it, inserted] = zone_index.emplace(s.zone(), zones.size());
    if (inserted) {
      zones.push_back(ZoneInfo{s.zone(), {}, 0, 0, 0});
    }
    ZoneInfo& z = zones[it->second];
    z.servers.push_back(s.id());
    z.power_hz += s.power_hz();
  }
  if (zones.size() < 2) return std::nullopt;

  const size_t M = w.num_operations();
  std::vector<double> op_cycles(M);
  double total_cycles = 0;
  for (size_t i = 0; i < M; ++i) {
    op_cycles[i] = OpProb(ctx, i) * w.operations()[i].cycles();
    total_cycles += op_cycles[i];
  }
  const double total_power = n.TotalPowerHz();
  double max_capacity = 0;
  for (ZoneInfo& z : zones) {
    z.capacity_cycles = total_cycles * (z.power_hz / total_power);
    max_capacity = std::max(max_capacity, z.capacity_cycles);
  }

  // 1. Cluster by chattiest edges first; a merge is taken only while the
  // merged cluster still fits the largest zone's fair share (so no cluster
  // is forced to straddle a zone boundary later).
  std::vector<TransitionId> edges(w.num_transitions());
  for (size_t t = 0; t < edges.size(); ++t) edges[t] = TransitionId(t);
  auto edge_weight = [&](TransitionId t) {
    return EdgeProb(ctx, t.value) * w.transition(t).message_bits;
  };
  std::stable_sort(edges.begin(), edges.end(),
                   [&](TransitionId a, TransitionId b) {
                     double wa = edge_weight(a), wb = edge_weight(b);
                     if (wa != wb) return wa > wb;
                     return a.value < b.value;
                   });
  Dsu dsu(M);
  std::vector<double> cluster_cycles = op_cycles;
  for (TransitionId t : edges) {
    const Transition& tr = w.transition(t);
    uint32_t a = dsu.Find(tr.from.value);
    uint32_t b = dsu.Find(tr.to.value);
    if (a == b) continue;
    if (cluster_cycles[a] + cluster_cycles[b] > max_capacity) continue;
    dsu.Union(a, b);
    uint32_t root = dsu.Find(a);
    cluster_cycles[root] = cluster_cycles[a] + cluster_cycles[b];
  }

  // Materialize clusters keyed by root, members in op-id order.
  std::unordered_map<uint32_t, size_t> cluster_of_root;
  struct Cluster {
    std::vector<uint32_t> ops;
    double cycles = 0;
  };
  std::vector<Cluster> clusters;
  std::vector<size_t> cluster_of_op(M);
  for (uint32_t op = 0; op < M; ++op) {
    uint32_t root = dsu.Find(op);
    auto [it, inserted] = cluster_of_root.emplace(root, clusters.size());
    if (inserted) clusters.push_back(Cluster{});
    Cluster& c = clusters[it->second];
    c.ops.push_back(op);
    c.cycles += op_cycles[op];
    cluster_of_op[op] = it->second;
  }

  // 2. Assign clusters to zones, heaviest first. A cluster prefers the
  // zone it already exchanges the most (probability-weighted) bits with;
  // zones it would overflow are skipped when any fitting zone exists; the
  // final tie-break is most remaining capacity, then zone order.
  std::vector<size_t> order(clusters.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (clusters[a].cycles != clusters[b].cycles) {
      return clusters[a].cycles > clusters[b].cycles;
    }
    return clusters[a].ops.front() < clusters[b].ops.front();
  });
  std::vector<size_t> zone_of_cluster(clusters.size(),
                                      std::numeric_limits<size_t>::max());
  for (size_t c : order) {
    std::vector<double> affinity(zones.size(), 0);
    for (uint32_t op : clusters[c].ops) {
      OperationId oid(op);
      for (TransitionId t : w.out_edges(oid)) {
        size_t other = cluster_of_op[w.transition(t).to.value];
        if (other != c && zone_of_cluster[other] < zones.size()) {
          affinity[zone_of_cluster[other]] += edge_weight(t);
        }
      }
      for (TransitionId t : w.in_edges(oid)) {
        size_t other = cluster_of_op[w.transition(t).from.value];
        if (other != c && zone_of_cluster[other] < zones.size()) {
          affinity[zone_of_cluster[other]] += edge_weight(t);
        }
      }
    }
    auto fits = [&](size_t z) {
      return zones[z].assigned_cycles + clusters[c].cycles <=
             zones[z].capacity_cycles;
    };
    bool any_fit = false;
    for (size_t z = 0; z < zones.size(); ++z) any_fit = any_fit || fits(z);
    size_t best = zones.size();
    for (size_t z = 0; z < zones.size(); ++z) {
      if (any_fit && !fits(z)) continue;
      if (best == zones.size()) {
        best = z;
        continue;
      }
      double rb = zones[best].capacity_cycles - zones[best].assigned_cycles;
      double rz = zones[z].capacity_cycles - zones[z].assigned_cycles;
      if (affinity[z] > affinity[best] ||
          (affinity[z] == affinity[best] && rz > rb)) {
        best = z;
      }
    }
    zone_of_cluster[c] = best;
    zones[best].assigned_cycles += clusters[c].cycles;
  }

  // 3. LPT within each zone: operations heaviest-first onto the zone
  // server that finishes them earliest (load measured in seconds of
  // probability-weighted processing).
  Mapping m(M);
  std::vector<double> server_load(n.num_servers(), 0);
  std::vector<uint32_t> op_order(M);
  std::iota(op_order.begin(), op_order.end(), 0u);
  std::stable_sort(op_order.begin(), op_order.end(),
                   [&](uint32_t a, uint32_t b) {
                     if (op_cycles[a] != op_cycles[b]) {
                       return op_cycles[a] > op_cycles[b];
                     }
                     return a < b;
                   });
  for (uint32_t op : op_order) {
    const ZoneInfo& z = zones[zone_of_cluster[cluster_of_op[op]]];
    ServerId best;
    double best_finish = 0;
    for (ServerId s : z.servers) {
      double finish =
          server_load[s.value] + op_cycles[op] / n.server(s).power_hz();
      if (!best.valid() || finish < best_finish) {
        best = s;
        best_finish = finish;
      }
    }
    m.Assign(OperationId(op), best);
    server_load[best.value] = best_finish;
  }
  return m;
}

GeoLocalityAlgorithm::GeoLocalityAlgorithm(std::string base_name,
                                           size_t polish_steps)
    : base_name_(std::move(base_name)),
      name_(base_name_ + "-geo"),
      polish_steps_(polish_steps) {}

Result<Mapping> GeoLocalityAlgorithm::Run(const DeployContext& ctx) const {
  WSFLOW_RETURN_IF_ERROR(CheckContext(ctx));
  WSFLOW_ASSIGN_OR_RETURN(Mapping base, RunAlgorithm(base_name_, ctx));
  std::optional<Mapping> seed = BuildZoneLocalitySeed(ctx);
  if (!seed.has_value()) return base;
  WSFLOW_ASSIGN_OR_RETURN(Mapping geo,
                          PolishMapping(ctx, std::move(*seed), polish_steps_));

  // Never-lose guarantee: score both candidates with the same evaluator
  // and keep the cheaper; ties (and any geo evaluation failure, e.g. a
  // disconnected placement) keep the base mapping.
  CostModel model(*ctx.workflow, *ctx.network, ctx.profile);
  WSFLOW_ASSIGN_OR_RETURN(CostBreakdown base_cost,
                          model.Evaluate(base, ctx.cost_options));
  Result<CostBreakdown> geo_cost = model.Evaluate(geo, ctx.cost_options);
  if (geo_cost.ok() && geo_cost.value().combined < base_cost.combined) {
    return geo;
  }
  return base;
}

}  // namespace wsflow
