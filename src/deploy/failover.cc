#include "src/deploy/failover.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"

namespace wsflow {

namespace {

/// Ideal-cycles headroom of the alive servers under the partial mapping:
/// share of the total weighted cycles proportional to power, minus what
/// each alive server already hosts. Down servers sit at -infinity so the
/// worst-fit argmax can scan the whole array.
std::vector<double> AliveHeadroom(const WorkflowView& view, const Network& n,
                                  const Mapping& m, const ServerMask& alive) {
  double alive_power = 0;
  for (const Server& s : n.servers()) {
    if (alive.alive(s.id())) alive_power += s.power_hz();
  }
  double total_cycles = view.TotalCycles();
  std::vector<double> headroom(n.num_servers(),
                               -std::numeric_limits<double>::infinity());
  for (const Server& s : n.servers()) {
    if (!alive.alive(s.id())) continue;
    headroom[s.id().value] = total_cycles * s.power_hz() / alive_power;
  }
  for (size_t i = 0; i < m.num_operations(); ++i) {
    OperationId op(static_cast<uint32_t>(i));
    ServerId s = m.ServerOf(op);
    if (s.valid() && alive.alive(s)) {
      headroom[s.value] -= view.Cycles(op);
    }
  }
  return headroom;
}

/// The alive server hosting the neighbour connected to `op` by the biggest
/// (weighted) message; invalid when every neighbour is orphaned too.
ServerId HeaviestAliveNeighbor(const WorkflowView& view, OperationId op,
                               const Mapping& m, const ServerMask& alive) {
  ServerId best;
  double best_bits = -1;
  for (TransitionId t : view.IncidentTransitions(op)) {
    OperationId peer = view.Neighbor(t, op);
    ServerId s = m.ServerOf(peer);
    if (!s.valid() || !alive.alive(s)) continue;
    double bits = view.MessageBits(t);
    if (bits > best_bits) {
      best_bits = bits;
      best = s;
    }
  }
  return best;
}

}  // namespace

Result<size_t> RedistributeOrphans(const WorkflowView& view, const Network& n,
                                   const ServerMask& alive,
                                   FailoverStrategy strategy, Mapping* m) {
  if (m == nullptr) {
    return Status::InvalidArgument("RedistributeOrphans needs a mapping");
  }
  if (!alive.trivial() && alive.size() != n.num_servers()) {
    return Status::InvalidArgument(
        "server mask size does not match the network");
  }
  size_t num_alive = alive.trivial() ? n.num_servers() : alive.num_alive();
  if (num_alive == 0) {
    return Status::FailedPrecondition("no alive server to redistribute onto");
  }

  // Collect and detach the orphans, heaviest first.
  std::vector<OperationId> orphans;
  for (size_t i = 0; i < m->num_operations(); ++i) {
    OperationId op(static_cast<uint32_t>(i));
    ServerId s = m->ServerOf(op);
    if (!s.valid() || !alive.alive(s)) {
      orphans.push_back(op);
      m->Unassign(op);
    }
  }
  std::stable_sort(orphans.begin(), orphans.end(),
                   [&view](OperationId a, OperationId b) {
                     return view.Cycles(a) > view.Cycles(b);
                   });

  std::vector<double> headroom = AliveHeadroom(view, n, *m, alive);
  for (OperationId op : orphans) {
    ServerId target;
    if (strategy == FailoverStrategy::kCoLocate) {
      target = HeaviestAliveNeighbor(view, op, *m, alive);
    }
    if (!target.valid()) {
      // Worst fit over the alive servers.
      size_t best = 0;
      double best_headroom = -std::numeric_limits<double>::infinity();
      for (size_t s = 0; s < headroom.size(); ++s) {
        if (!alive.alive(ServerId(static_cast<uint32_t>(s)))) continue;
        if (headroom[s] > best_headroom) {
          best_headroom = headroom[s];
          best = s;
        }
      }
      target = ServerId(static_cast<uint32_t>(best));
    }
    m->Assign(op, target);
    headroom[target.value] -= view.Cycles(op);
  }
  return orphans.size();
}

Result<FailoverReport> AnalyzeFailover(const CostModel& model,
                                       const Mapping& m, ServerId failed,
                                       FailoverStrategy strategy) {
  const Workflow& w = model.workflow();
  const Network& n = model.network();
  WSFLOW_RETURN_IF_ERROR(m.ValidateAgainst(w, n));
  if (!n.Contains(failed)) {
    return Status::NotFound("failed server is not in the network");
  }
  if (n.num_servers() < 2) {
    return Status::FailedPrecondition(
        "failover needs at least one surviving server");
  }

  FailoverReport report;
  report.failed_server = failed;
  WSFLOW_ASSIGN_OR_RETURN(report.execution_time_before,
                          model.ExecutionTime(m));
  std::vector<double> loads_before = model.Loads(m);

  // Probability-aware view over exactly the model's profile.
  ExecutionProfile profile = model.ProfileSnapshot();
  WorkflowView view(w, &profile);

  ServerMask alive = ServerMask::AllAlive(n.num_servers());
  alive.SetAlive(failed, false);

  Mapping repaired = m;
  WSFLOW_ASSIGN_OR_RETURN(
      report.orphaned_operations,
      RedistributeOrphans(view, n, alive, strategy, &repaired));
  WSFLOW_RETURN_IF_ERROR(repaired.ValidateAgainst(w, n));
  report.repaired = repaired;

  // Score against the surviving subnetwork: a message whose only route
  // crosses the failed server leaves the repaired mapping severed, which
  // the report carries as an infinite execution time (the sweep over all
  // servers must not abort on one articulation point).
  Result<double> exec_after = model.ExecutionTime(repaired, alive);
  report.execution_time_after =
      exec_after.ok() ? *exec_after
                      : std::numeric_limits<double>::infinity();
  report.time_penalty_after = model.TimePenalty(repaired, alive);

  std::vector<double> loads_after = model.Loads(repaired);
  double worst = 1.0;
  for (size_t s = 0; s < loads_after.size(); ++s) {
    if (ServerId(static_cast<uint32_t>(s)) == failed) continue;
    if (loads_after[s] <= loads_before[s]) continue;
    worst = loads_before[s] > 0
                ? std::max(worst, loads_after[s] / loads_before[s])
                : std::numeric_limits<double>::infinity();
  }
  report.worst_load_scale_up = worst;
  return report;
}

Result<std::vector<FailoverReport>> AnalyzeAllFailovers(
    const CostModel& model, const Mapping& m, FailoverStrategy strategy) {
  std::vector<FailoverReport> reports;
  for (const Server& s : model.network().servers()) {
    WSFLOW_ASSIGN_OR_RETURN(FailoverReport report,
                            AnalyzeFailover(model, m, s.id(), strategy));
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace wsflow
