#include "src/deploy/failover.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"
#include "src/deploy/graph_view.h"

namespace wsflow {

namespace {

/// Ideal-cycles headroom of the surviving servers under the partial
/// mapping: share of the total weighted cycles proportional to power,
/// minus what each survivor already hosts.
std::vector<double> SurvivorHeadroom(const WorkflowView& view,
                                     const Network& n, const Mapping& m,
                                     ServerId failed) {
  double surviving_power = 0;
  for (const Server& s : n.servers()) {
    if (s.id() != failed) surviving_power += s.power_hz();
  }
  double total_cycles = view.TotalCycles();
  std::vector<double> headroom(n.num_servers(),
                               -std::numeric_limits<double>::infinity());
  for (const Server& s : n.servers()) {
    if (s.id() == failed) continue;
    headroom[s.id().value] = total_cycles * s.power_hz() / surviving_power;
  }
  for (size_t i = 0; i < m.num_operations(); ++i) {
    OperationId op(static_cast<uint32_t>(i));
    ServerId s = m.ServerOf(op);
    if (s.valid() && s != failed) {
      headroom[s.value] -= view.Cycles(op);
    }
  }
  return headroom;
}

/// The survivor hosting the neighbour connected to `op` by the biggest
/// (weighted) message; invalid when every neighbour is orphaned too.
ServerId HeaviestSurvivingNeighbor(const WorkflowView& view, OperationId op,
                                   const Mapping& m, ServerId failed) {
  ServerId best;
  double best_bits = -1;
  for (TransitionId t : view.IncidentTransitions(op)) {
    OperationId peer = view.Neighbor(t, op);
    ServerId s = m.ServerOf(peer);
    if (!s.valid() || s == failed) continue;
    double bits = view.MessageBits(t);
    if (bits > best_bits) {
      best_bits = bits;
      best = s;
    }
  }
  return best;
}

}  // namespace

Result<FailoverReport> AnalyzeFailover(const CostModel& model,
                                       const Mapping& m, ServerId failed,
                                       FailoverStrategy strategy) {
  const Workflow& w = model.workflow();
  const Network& n = model.network();
  WSFLOW_RETURN_IF_ERROR(m.ValidateAgainst(w, n));
  if (!n.Contains(failed)) {
    return Status::NotFound("failed server is not in the network");
  }
  if (n.num_servers() < 2) {
    return Status::FailedPrecondition(
        "failover needs at least one surviving server");
  }

  FailoverReport report;
  report.failed_server = failed;
  WSFLOW_ASSIGN_OR_RETURN(report.execution_time_before,
                          model.ExecutionTime(m));
  std::vector<double> loads_before = model.Loads(m);

  // Profile-aware view: reuse the model's probabilities via a thin shim.
  // CostModel does not expose its profile, so rebuild weighted cycles from
  // it: OperationProb is available.
  // (WorkflowView wants an ExecutionProfile*, so assemble one.)
  ExecutionProfile profile;
  profile.op_prob.resize(w.num_operations());
  profile.edge_prob.resize(w.num_transitions());
  for (size_t i = 0; i < w.num_operations(); ++i) {
    profile.op_prob[i] =
        model.OperationProb(OperationId(static_cast<uint32_t>(i)));
  }
  for (size_t i = 0; i < w.num_transitions(); ++i) {
    profile.edge_prob[i] =
        model.TransitionProb(TransitionId(static_cast<uint32_t>(i)));
  }
  WorkflowView view(w, &profile);

  // Collect and detach the orphans, heaviest first.
  Mapping repaired = m;
  std::vector<OperationId> orphans;
  for (size_t i = 0; i < w.num_operations(); ++i) {
    OperationId op(static_cast<uint32_t>(i));
    if (m.ServerOf(op) == failed) {
      orphans.push_back(op);
      repaired.Unassign(op);
    }
  }
  report.orphaned_operations = orphans.size();
  std::stable_sort(orphans.begin(), orphans.end(),
                   [&view](OperationId a, OperationId b) {
                     return view.Cycles(a) > view.Cycles(b);
                   });

  std::vector<double> headroom = SurvivorHeadroom(view, n, repaired, failed);
  for (OperationId op : orphans) {
    ServerId target;
    if (strategy == FailoverStrategy::kCoLocate) {
      target = HeaviestSurvivingNeighbor(view, op, repaired, failed);
    }
    if (!target.valid()) {
      // Worst fit over the survivors.
      size_t best = 0;
      double best_headroom = -std::numeric_limits<double>::infinity();
      for (size_t s = 0; s < headroom.size(); ++s) {
        if (ServerId(static_cast<uint32_t>(s)) == failed) continue;
        if (headroom[s] > best_headroom) {
          best_headroom = headroom[s];
          best = s;
        }
      }
      target = ServerId(static_cast<uint32_t>(best));
    }
    repaired.Assign(op, target);
    headroom[target.value] -= view.Cycles(op);
  }

  WSFLOW_RETURN_IF_ERROR(repaired.ValidateAgainst(w, n));
  report.repaired = repaired;
  WSFLOW_ASSIGN_OR_RETURN(report.execution_time_after,
                          model.ExecutionTime(repaired));

  // Fairness among survivors only.
  std::vector<double> loads_after = model.Loads(repaired);
  double avg = 0;
  size_t survivors = 0;
  for (size_t s = 0; s < loads_after.size(); ++s) {
    if (ServerId(static_cast<uint32_t>(s)) == failed) continue;
    avg += loads_after[s];
    ++survivors;
  }
  avg /= static_cast<double>(survivors);
  double penalty = 0;
  for (size_t s = 0; s < loads_after.size(); ++s) {
    if (ServerId(static_cast<uint32_t>(s)) == failed) continue;
    penalty += std::fabs(loads_after[s] - avg) / 2.0;
  }
  report.time_penalty_after = penalty;

  double worst = 1.0;
  for (size_t s = 0; s < loads_after.size(); ++s) {
    if (ServerId(static_cast<uint32_t>(s)) == failed) continue;
    if (loads_after[s] <= loads_before[s]) continue;
    worst = loads_before[s] > 0
                ? std::max(worst, loads_after[s] / loads_before[s])
                : std::numeric_limits<double>::infinity();
  }
  report.worst_load_scale_up = worst;
  return report;
}

Result<std::vector<FailoverReport>> AnalyzeAllFailovers(
    const CostModel& model, const Mapping& m, FailoverStrategy strategy) {
  std::vector<FailoverReport> reports;
  for (const Server& s : model.network().servers()) {
    WSFLOW_ASSIGN_OR_RETURN(FailoverReport report,
                            AnalyzeFailover(model, m, s.id(), strategy));
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace wsflow
