// wsflow: uniform random deployment.
//
// Assigns every operation to a uniformly random server. Serves as the
// experiments' sanity baseline and as the random initial mapping required
// by the FLTR family (the paper initializes M randomly so the gain function
// returns non-trivial values from the first step).

#ifndef WSFLOW_DEPLOY_RANDOM_BASELINE_H_
#define WSFLOW_DEPLOY_RANDOM_BASELINE_H_

#include "src/common/random.h"
#include "src/deploy/algorithm.h"

namespace wsflow {

class RandomDeployment : public DeploymentAlgorithm {
 public:
  std::string_view name() const override { return "random"; }

  /// Uses ctx.seed; equal seeds give equal mappings.
  Result<Mapping> Run(const DeployContext& ctx) const override;
};

/// Draws a uniformly random total mapping using `rng`.
Mapping RandomMapping(size_t num_operations, size_t num_servers, Rng* rng);

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_RANDOM_BASELINE_H_
