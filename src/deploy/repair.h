// wsflow: self-healing redeployment onto the surviving subnetwork.
//
// When servers churn at serving time (src/serve/health.h), a deployed
// mapping can strand operations on down servers. RepairMapping heals it in
// two phases:
//
//   1. *Seed* — the orphans are redistributed with both offline failover
//     strategies (kWorstFit and kCoLocate, src/deploy/failover.h); the
//     cheaper seed under the masked cold evaluation wins. With no orphans
//     (a recovery) the current mapping is its own seed, making the call
//     the re-balance pass that drains load back onto recovered servers.
//     A seed left severed — some message with no route clear of the down
//     servers — is reseeded from blank, because single-move descent can
//     never cross the infinite-cost valley between two network partitions.
//   2. *Polish* — best-improvement descent with the batched ScoreMoves /
//     ScoreSwaps machinery on an IncrementalEvaluator bound with the
//     alive mask, stopped at a local optimum or at `eval_budget` delta
//     evaluations — the knob that makes repair latency predictable.
//
// Everything is deterministic: no randomness anywhere, strict-improvement
// acceptance with first-best tie-breaks, so a repair replays bit-for-bit.
// ReoptimizeFromScratch is the quality yardstick: the same machinery run
// from a blank mapping with an unlimited budget.

#ifndef WSFLOW_DEPLOY_REPAIR_H_
#define WSFLOW_DEPLOY_REPAIR_H_

#include <cstddef>

#include "src/common/result.h"
#include "src/cost/cost_model.h"
#include "src/cost/incremental.h"
#include "src/deploy/failover.h"
#include "src/deploy/mapping.h"
#include "src/network/server_mask.h"

namespace wsflow {

struct RepairOptions {
  /// Delta-evaluation budget of the polish phase (the seeding phase's two
  /// cold evaluations are not charged); 0 means unlimited.
  size_t eval_budget = 2048;
  /// Also sweep ScoreSwaps fans in each polish pass.
  bool use_swaps = false;
  /// Objective weights of the masked evaluation.
  CostOptions cost_options;
  /// Evaluator knobs; the mask field is overwritten with `alive`.
  EvalTuning tuning;
  /// Relative strict-improvement margin (the ulp guard local search uses).
  double min_improvement = 1e-12;
};

struct RepairResult {
  Mapping mapping;
  /// Masked breakdown of `mapping`; every field +infinity when some
  /// message still has no route clear of the down servers.
  CostBreakdown cost;
  /// Orphans the seeding phase reassigned (0 for a pure re-balance).
  size_t orphans_reassigned = 0;
  /// Strategy whose seed won the cold comparison (kWorstFit when there
  /// was nothing to seed).
  FailoverStrategy seed_strategy = FailoverStrategy::kWorstFit;
  /// Delta evaluations the polish phase consumed (incumbent included).
  size_t polish_evaluations = 0;
  /// True when polish stopped on the budget instead of a local optimum.
  bool budget_exhausted = false;
  /// The polish evaluator's counters (full/delta/penalty/memo split).
  EvalCounters counters;
};

/// Heals `current` against the alive mask. `current` must be total over
/// the model's workflow; the mask must match the network and keep at
/// least one server alive.
Result<RepairResult> RepairMapping(const CostModel& model,
                                   const Mapping& current,
                                   const ServerMask& alive,
                                   const RepairOptions& options = {});

/// The quality reference for RepairMapping: deploys from scratch on the
/// surviving subnetwork — every operation seeded by worst fit, then the
/// same polish (unlimited unless options.eval_budget says otherwise).
Result<RepairResult> ReoptimizeFromScratch(const CostModel& model,
                                           const ServerMask& alive,
                                           const RepairOptions& options = {});

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_REPAIR_H_
