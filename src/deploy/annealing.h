// wsflow: simulated-annealing deployment (extension; not in the paper).
//
// A metaheuristic upper bound on what iterative search can achieve within a
// time budget, used to contextualize the paper's greedy heuristics: start
// from a random mapping, propose single-operation reassignments, accept
// improvements always and regressions with probability exp(-delta/T) under
// a geometric cooling schedule, and return the best mapping seen.
// Deterministic given the context seed.

#ifndef WSFLOW_DEPLOY_ANNEALING_H_
#define WSFLOW_DEPLOY_ANNEALING_H_

#include <cstddef>

#include "src/deploy/algorithm.h"

namespace wsflow {

struct AnnealingOptions {
  /// Proposal count. Each proposal costs one delta evaluation of the
  /// working mapping (one cold evaluation binds the random start).
  size_t iterations = 20000;
  /// Initial temperature as a fraction of the start mapping's cost.
  double initial_temperature_factor = 0.5;
  /// Geometric cooling multiplier applied every `cooling_interval`
  /// proposals.
  double cooling_rate = 0.95;
  size_t cooling_interval = 100;
};

/// Statistics of one annealing run.
struct AnnealingStats {
  size_t proposals = 0;          ///< Neighbour mappings proposed.
  size_t accepted = 0;           ///< Proposals kept (improving or lucky).
  size_t full_evaluations = 0;   ///< Cold evaluator (re)binds.
  size_t delta_evaluations = 0;  ///< Proposals scored by delta update.
  size_t penalty_fast = 0;       ///< TimePenalty via the O(log N) index.
  size_t penalty_full = 0;       ///< TimePenalty via the O(N) pass.
  double initial_cost = 0;       ///< Combined cost of the random start.
  double best_cost = 0;          ///< Combined cost of the returned mapping.
};

class AnnealingAlgorithm : public DeploymentAlgorithm {
 public:
  explicit AnnealingAlgorithm(AnnealingOptions options = {})
      : options_(options) {}

  std::string_view name() const override { return "annealing"; }
  Result<Mapping> Run(const DeployContext& ctx) const override;

  /// Run with statistics; `stats` may be null.
  Result<Mapping> RunWithStats(const DeployContext& ctx,
                               AnnealingStats* stats) const;

 private:
  AnnealingOptions options_;
};

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_ANNEALING_H_
