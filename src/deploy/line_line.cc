#include "src/deploy/line_line.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/deploy/graph_view.h"

namespace wsflow {

namespace {

/// Phase 1: ordered fill of `servers` (in the given order) with `ops` (in
/// workflow order), moving to the next server when the current one exceeds
/// its ideal share by the slack factor. Once as many servers as operations
/// remain, one operation goes to each remaining server.
Mapping FillLine(const WorkflowView& view, const Network& n,
                 const std::vector<OperationId>& ops,
                 const std::vector<ServerId>& servers, double slack) {
  double sum_cycles = view.TotalCycles();
  double sum_capacity = n.TotalPowerHz();

  Mapping m(view.num_operations());
  size_t server_index = 0;
  ServerId s = servers[server_index];
  double ideal = sum_cycles * n.server(s).power_hz() / sum_capacity;
  double current = 0;

  for (size_t i = 0; i < ops.size(); ++i) {
    size_t ops_left = ops.size() - i;  // including ops[i]
    size_t fresh_servers =
        servers.size() - server_index - (current > 0 ? 1 : 0);
    double c = view.Cycles(ops[i]);
    if (ops_left <= fresh_servers) {
      // Tail mode: enough empty servers remain to give every leftover
      // operation its own, so nobody is left idle.
      if (current > 0) {
        ++server_index;
        s = servers[server_index];
      }
      m.Assign(ops[i], s);
      current = c > 0 ? c : 1;  // mark the server as used
      continue;
    }
    bool last_server = server_index + 1 == servers.size();
    bool fits = current + c < (1.0 + slack) * ideal;
    if (!(fits || current == 0 || last_server)) {
      ++server_index;
      s = servers[server_index];
      ideal = sum_cycles * n.server(s).power_hz() / sum_capacity;
      current = 0;
    }
    m.Assign(ops[i], s);
    current += c;
  }
  return m;
}

/// Ordered pair of (operations on server, in line order) lookups for
/// phase 2.
std::vector<std::vector<OperationId>> OpsPerServer(
    const std::vector<OperationId>& ops, const Mapping& m, size_t servers) {
  std::vector<std::vector<OperationId>> per(servers);
  for (OperationId op : ops) {
    ServerId s = m.ServerOf(op);
    if (s.valid()) per[s.value].push_back(op);
  }
  return per;
}

/// Phase 2 (Fix_Bad_Bridges): shift a boundary operation across each
/// critical bridge. Operates in place on `m`.
void FixBadBridges(const WorkflowView& view, const Network& n,
                   const std::vector<OperationId>& ops, double quantile,
                   Mapping* m) {
  if (n.kind() != NetworkKind::kLine || n.num_servers() < 2) return;
  const Workflow& w = view.workflow();

  // L1: all line speeds; slow = at or below the `quantile` quantile.
  std::vector<double> speeds;
  for (const Link& link : n.links()) speeds.push_back(link.speed_bps);
  double slow_speed = Quantile(speeds, quantile);

  // L2: all message sizes; small/large thresholds.
  std::vector<double> sizes;
  for (size_t i = 0; i < w.num_transitions(); ++i) {
    sizes.push_back(view.MessageBits(TransitionId(static_cast<uint32_t>(i))));
  }
  if (sizes.empty()) return;
  double small_size = Quantile(sizes, quantile);
  double large_size = Quantile(sizes, 1.0 - quantile);

  auto msg_bits = [&](OperationId from, OperationId to) -> double {
    Result<TransitionId> t = w.FindTransition(from, to);
    return t.ok() ? view.MessageBits(*t) : 0.0;
  };

  for (uint32_t i = 0; i + 1 < n.num_servers(); ++i) {
    ServerId left(i);
    ServerId right(i + 1);
    Result<LinkId> bridge = n.FindLink(left, right);
    if (!bridge.ok()) continue;
    if (n.link(*bridge).speed_bps > slow_speed) continue;

    std::vector<std::vector<OperationId>> per =
        OpsPerServer(ops, *m, n.num_servers());
    const std::vector<OperationId>& lops = per[left.value];
    const std::vector<OperationId>& rops = per[right.value];
    if (lops.empty() || rops.empty()) continue;

    double crossing = msg_bits(lops.back(), rops.front());
    if (crossing < large_size) continue;

    // Critical bridge found. Shift right when the message behind the
    // sender is small; otherwise shift left when the message ahead of the
    // receiver is small.
    if (lops.size() >= 2 &&
        msg_bits(lops[lops.size() - 2], lops.back()) <= small_size) {
      m->Assign(lops.back(), right);
    } else if (rops.size() >= 2 &&
               msg_bits(rops.front(), rops[1]) <= small_size) {
      m->Assign(rops.front(), left);
    }
  }
}

}  // namespace

Result<Mapping> LineLineAlgorithm::Run(const DeployContext& ctx) const {
  WSFLOW_RETURN_IF_ERROR(CheckContext(ctx));
  const Workflow& w = *ctx.workflow;
  const Network& n = *ctx.network;
  WSFLOW_ASSIGN_OR_RETURN(std::vector<OperationId> ops, w.LineOrder());

  WorkflowView view(w, ctx.profile);
  std::vector<ServerId> servers;
  for (const Server& s : n.servers()) servers.push_back(s.id());

  Mapping forward = FillLine(view, n, ops, servers, options_.slack);
  if (options_.fix_bridges) {
    FixBadBridges(view, n, ops, options_.bridge_quantile, &forward);
  }
  if (!options_.both_directions) return forward;

  // Right-to-left variant: reverse both the workflow walk and the server
  // order, then keep the cheaper mapping.
  std::vector<OperationId> rops(ops.rbegin(), ops.rend());
  std::vector<ServerId> rservers(servers.rbegin(), servers.rend());
  Mapping backward = FillLine(view, n, rops, rservers, options_.slack);
  if (options_.fix_bridges) {
    FixBadBridges(view, n, ops, options_.bridge_quantile, &backward);
  }

  CostModel model(w, n, ctx.profile);
  WSFLOW_ASSIGN_OR_RETURN(CostBreakdown fwd,
                          model.Evaluate(forward, ctx.cost_options));
  WSFLOW_ASSIGN_OR_RETURN(CostBreakdown bwd,
                          model.Evaluate(backward, ctx.cost_options));
  return bwd.combined < fwd.combined ? backward : forward;
}

}  // namespace wsflow
