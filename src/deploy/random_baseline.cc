#include "src/deploy/random_baseline.h"

namespace wsflow {

Mapping RandomMapping(size_t num_operations, size_t num_servers, Rng* rng) {
  Mapping m(num_operations);
  for (size_t i = 0; i < num_operations; ++i) {
    m.Assign(OperationId(static_cast<uint32_t>(i)),
             ServerId(static_cast<uint32_t>(rng->NextBounded(num_servers))));
  }
  return m;
}

Result<Mapping> RandomDeployment::Run(const DeployContext& ctx) const {
  WSFLOW_RETURN_IF_ERROR(CheckContext(ctx));
  Rng rng(ctx.seed);
  return RandomMapping(ctx.workflow->num_operations(),
                       ctx.network->num_servers(), &rng);
}

}  // namespace wsflow
