#include "src/deploy/fl_merge.h"

#include <algorithm>
#include <limits>

#include "src/common/random.h"
#include "src/deploy/fair_load.h"
#include "src/deploy/fltr2.h"
#include "src/deploy/graph_view.h"
#include "src/deploy/random_baseline.h"

namespace wsflow {

namespace {

/// Threshold below which a message is not "big": the size found `quantile`
/// of the way down the descending sorted sizes. Returns +infinity when the
/// workflow has no messages (nothing is big).
double BigMessageThreshold(const WorkflowView& view, double quantile) {
  std::vector<double> sizes;
  sizes.reserve(view.num_transitions());
  for (size_t i = 0; i < view.num_transitions(); ++i) {
    sizes.push_back(view.MessageBits(TransitionId(static_cast<uint32_t>(i))));
  }
  if (sizes.empty()) return std::numeric_limits<double>::infinity();
  std::sort(sizes.begin(), sizes.end(), std::greater<double>());
  size_t index = static_cast<size_t>(
      quantile * static_cast<double>(sizes.size() - 1));
  return sizes[std::min(index, sizes.size() - 1)];
}

/// The appendix's There_Is_Constraints: the biggest incident message of
/// `op` that is at or above `threshold`, or an invalid id when none
/// qualifies. On ties the bigger message wins; the line workflow's
/// left/right cases fall out of in- vs out-edges.
TransitionId FindConstraint(const WorkflowView& view, OperationId op,
                            double threshold) {
  TransitionId best;
  double best_bits = -1;
  for (TransitionId t : view.IncidentTransitions(op)) {
    double bits = view.MessageBits(t);
    if (bits >= threshold && bits > best_bits) {
      best = t;
      best_bits = bits;
    }
  }
  return best;
}

}  // namespace

Result<Mapping> FlMergeAlgorithm::Run(const DeployContext& ctx) const {
  WSFLOW_RETURN_IF_ERROR(CheckContext(ctx));
  WorkflowView view(*ctx.workflow, ctx.profile);
  ServerLedger ledger(view, *ctx.network);

  const size_t num_ops = ctx.workflow->num_operations();
  Rng rng(ctx.seed);
  Mapping m = random_init_
                  ? RandomMapping(num_ops, ctx.network->num_servers(), &rng)
                  : Mapping(num_ops);

  const double threshold = BigMessageThreshold(view, big_message_quantile_);

  std::vector<OperationId> pending = OperationsByDescendingCycles(view);
  while (!pending.empty()) {
    TieSelection sel = SelectByGain(view, ledger, pending, m);
    OperationId chosen = pending[sel.pending_index];
    pending.erase(pending.begin() +
                  static_cast<ptrdiff_t>(sel.pending_index));

    ServerId target = sel.server;
    TransitionId constraint = FindConstraint(view, chosen, threshold);
    if (constraint.valid()) {
      OperationId partner = view.Neighbor(constraint, chosen);
      ServerId partner_server = m.ServerOf(partner);
      // Cancel the gain-selected placement and merge the message's ends on
      // the partner's server so the big message stays local.
      if (partner_server.valid()) target = partner_server;
    }
    m.Assign(chosen, target);
    ledger.Charge(target, view.Cycles(chosen));
  }
  return m;
}

}  // namespace wsflow
