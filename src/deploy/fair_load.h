// wsflow: algorithm Fair Load (paper §3.3, appendix).
//
// A worst-fit bin-packing heuristic tuned purely for load fairness:
// compute each server's ideal cycle share Ideal_Cycles(S_i) =
// Sum_Cycles * P(S_i) / Sum_Capacity, sort operations by descending cycle
// cost, and repeatedly give the next heaviest operation to the server that
// is currently missing the most cycles to its ideal share. Messages are
// ignored entirely. Complexity O(M logM + N logN + M N).
//
// For graph workflows the cycle costs are the probability-weighted
// amortized costs supplied by the execution profile (paper §3.4 notes Fair
// Load "remains exactly the same"; the weighting only changes the inputs).

#ifndef WSFLOW_DEPLOY_FAIR_LOAD_H_
#define WSFLOW_DEPLOY_FAIR_LOAD_H_

#include <vector>

#include "src/deploy/algorithm.h"
#include "src/deploy/graph_view.h"

namespace wsflow {

/// Server states for the Fair Load family: remaining ideal cycles per
/// server, ordered worst-fit style.
class ServerLedger {
 public:
  ServerLedger(const WorkflowView& view, const Network& network);

  /// Server currently needing the most cycles (ties: smallest id).
  ServerId Top() const;

  /// All servers whose remaining cycles equal Top()'s (the FLTR2 server tie
  /// group), in id order.
  std::vector<ServerId> TopTies() const;

  /// Records `cycles` of work placed on `server`.
  void Charge(ServerId server, double cycles);

  double Remaining(ServerId server) const;
  size_t num_servers() const { return remaining_.size(); }

 private:
  std::vector<double> remaining_;
};

/// Operations sorted by descending view-weighted cycles (ties: ascending
/// id, for determinism).
std::vector<OperationId> OperationsByDescendingCycles(
    const WorkflowView& view);

class FairLoadAlgorithm : public DeploymentAlgorithm {
 public:
  std::string_view name() const override { return "fair-load"; }
  Result<Mapping> Run(const DeployContext& ctx) const override;
};

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_FAIR_LOAD_H_
