#include "src/deploy/annealing.h"

#include <cmath>

#include "src/common/random.h"
#include "src/cost/incremental.h"
#include "src/deploy/random_baseline.h"

namespace wsflow {

Result<Mapping> AnnealingAlgorithm::Run(const DeployContext& ctx) const {
  return RunWithStats(ctx, nullptr);
}

Result<Mapping> AnnealingAlgorithm::RunWithStats(const DeployContext& ctx,
                                                 AnnealingStats* stats) const {
  WSFLOW_RETURN_IF_ERROR(CheckContext(ctx));
  const size_t ops = ctx.workflow->num_operations();
  const size_t servers = ctx.network->num_servers();
  CostModel model(*ctx.workflow, *ctx.network, ctx.profile);
  Rng rng(ctx.seed);

  AnnealingStats local;
  WSFLOW_ASSIGN_OR_RETURN(
      IncrementalEvaluator eval,
      IncrementalEvaluator::Bind(model, RandomMapping(ops, servers, &rng),
                                 ctx.cost_options));
  WSFLOW_ASSIGN_OR_RETURN(double current_cost, eval.Combined());
  local.initial_cost = current_cost;
  Mapping best = eval.mapping();
  double best_cost = current_cost;

  if (servers >= 2) {
    double temperature =
        std::max(current_cost * options_.initial_temperature_factor, 1e-12);
    for (size_t i = 0; i < options_.iterations; ++i) {
      if (i > 0 && i % options_.cooling_interval == 0) {
        temperature *= options_.cooling_rate;
      }
      OperationId op(static_cast<uint32_t>(rng.NextBounded(ops)));
      ServerId old_server = eval.mapping().ServerOf(op);
      // Propose a different server.
      uint32_t shift =
          static_cast<uint32_t>(1 + rng.NextBounded(servers - 1));
      ServerId new_server(
          static_cast<uint32_t>((old_server.value + shift) % servers));
      WSFLOW_RETURN_IF_ERROR(eval.Apply(op, new_server));
      WSFLOW_ASSIGN_OR_RETURN(double proposal_cost, eval.Combined());
      ++local.proposals;
      double delta = proposal_cost - current_cost;
      bool accept =
          delta <= 0 || rng.NextDouble() < std::exp(-delta / temperature);
      if (accept) {
        eval.ClearHistory();
        ++local.accepted;
        current_cost = proposal_cost;
        if (current_cost < best_cost) {
          best_cost = current_cost;
          best = eval.mapping();
        }
      } else {
        WSFLOW_RETURN_IF_ERROR(eval.Undo());
      }
    }
  }

  local.best_cost = best_cost;
  local.full_evaluations = eval.counters().full_evaluations;
  local.delta_evaluations = eval.counters().delta_evaluations;
  local.penalty_fast = eval.counters().penalty_fast;
  local.penalty_full = eval.counters().penalty_full;
  if (stats != nullptr) *stats = local;
  return best;
}

}  // namespace wsflow
