#include "src/deploy/annealing.h"

#include <cmath>

#include "src/common/random.h"
#include "src/deploy/random_baseline.h"

namespace wsflow {

Result<Mapping> AnnealingAlgorithm::Run(const DeployContext& ctx) const {
  WSFLOW_RETURN_IF_ERROR(CheckContext(ctx));
  const size_t ops = ctx.workflow->num_operations();
  const size_t servers = ctx.network->num_servers();
  CostModel model(*ctx.workflow, *ctx.network, ctx.profile);
  Rng rng(ctx.seed);

  Mapping current = RandomMapping(ops, servers, &rng);
  WSFLOW_ASSIGN_OR_RETURN(CostBreakdown cost,
                          model.Evaluate(current, ctx.cost_options));
  double current_cost = cost.combined;
  Mapping best = current;
  double best_cost = current_cost;

  if (servers < 2) return best;  // nothing to move

  double temperature =
      std::max(current_cost * options_.initial_temperature_factor, 1e-12);
  for (size_t i = 0; i < options_.iterations; ++i) {
    if (i > 0 && i % options_.cooling_interval == 0) {
      temperature *= options_.cooling_rate;
    }
    OperationId op(static_cast<uint32_t>(rng.NextBounded(ops)));
    ServerId old_server = current.ServerOf(op);
    // Propose a different server.
    uint32_t shift =
        static_cast<uint32_t>(1 + rng.NextBounded(servers - 1));
    ServerId new_server(
        static_cast<uint32_t>((old_server.value + shift) % servers));
    current.Assign(op, new_server);
    WSFLOW_ASSIGN_OR_RETURN(CostBreakdown proposal,
                            model.Evaluate(current, ctx.cost_options));
    double delta = proposal.combined - current_cost;
    bool accept =
        delta <= 0 || rng.NextDouble() < std::exp(-delta / temperature);
    if (accept) {
      current_cost = proposal.combined;
      if (current_cost < best_cost) {
        best_cost = current_cost;
        best = current;
      }
    } else {
      current.Assign(op, old_server);  // revert
    }
  }
  return best;
}

}  // namespace wsflow
