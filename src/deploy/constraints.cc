#include "src/deploy/constraints.h"

#include <algorithm>

#include "src/cost/response_time.h"

namespace wsflow {

Status CheckConstraints(const CostModel& model, const Mapping& m,
                        const DeploymentConstraints& constraints) {
  WSFLOW_ASSIGN_OR_RETURN(double violation,
                          ConstraintViolation(model, m, constraints));
  if (violation > 0) {
    return Status::ConstraintViolation(
        "mapping violates constraints by " + std::to_string(violation));
  }
  return Status::OK();
}

Result<double> ConstraintViolation(const CostModel& model, const Mapping& m,
                                   const DeploymentConstraints& constraints) {
  WSFLOW_RETURN_IF_ERROR(m.ValidateAgainst(model.workflow(), model.network()));
  double violation = 0;
  if (constraints.max_execution_time || constraints.max_time_penalty) {
    if (constraints.max_execution_time) {
      WSFLOW_ASSIGN_OR_RETURN(double exec, model.ExecutionTime(m));
      violation += std::max(0.0, exec - *constraints.max_execution_time);
    }
    if (constraints.max_time_penalty) {
      violation +=
          std::max(0.0, model.TimePenalty(m) - *constraints.max_time_penalty);
    }
  }
  if (constraints.max_server_load) {
    for (double load : model.Loads(m)) {
      violation += std::max(0.0, load - *constraints.max_server_load);
    }
  }
  for (const auto& [op, server] : constraints.pinned) {
    if (m.ServerOf(op) != server) violation += 1.0;
  }
  for (const auto& [op, server] : constraints.forbidden) {
    if (m.ServerOf(op) == server) violation += 1.0;
  }
  if (!constraints.max_response_time.empty()) {
    WSFLOW_ASSIGN_OR_RETURN(ResponseTimes times,
                            ComputeResponseTimes(model, m));
    for (const auto& [op, ceiling] : constraints.max_response_time) {
      violation += std::max(0.0, times[op.value] - ceiling);
    }
  }
  return violation;
}

Result<double> ConstraintViolation(IncrementalEvaluator& eval,
                                   const DeploymentConstraints& constraints) {
  double violation = 0;
  if (constraints.max_execution_time) {
    WSFLOW_ASSIGN_OR_RETURN(double exec, eval.ExecutionTime());
    violation += std::max(0.0, exec - *constraints.max_execution_time);
  }
  if (constraints.max_time_penalty) {
    violation +=
        std::max(0.0, eval.TimePenalty() - *constraints.max_time_penalty);
  }
  if (constraints.max_server_load) {
    for (double load : eval.Loads()) {
      violation += std::max(0.0, load - *constraints.max_server_load);
    }
  }
  const Mapping& m = eval.mapping();
  for (const auto& [op, server] : constraints.pinned) {
    if (m.ServerOf(op) != server) violation += 1.0;
  }
  for (const auto& [op, server] : constraints.forbidden) {
    if (m.ServerOf(op) == server) violation += 1.0;
  }
  if (!constraints.max_response_time.empty()) {
    WSFLOW_ASSIGN_OR_RETURN(ResponseTimes times,
                            ComputeResponseTimes(eval.model(), m));
    for (const auto& [op, ceiling] : constraints.max_response_time) {
      violation += std::max(0.0, times[op.value] - ceiling);
    }
  }
  return violation;
}

void ApplyPins(const DeploymentConstraints& constraints, Mapping* m) {
  for (const auto& [op, server] : constraints.pinned) {
    m->Assign(op, server);
  }
}

}  // namespace wsflow
