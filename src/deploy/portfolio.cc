#include "src/deploy/portfolio.h"

#include <optional>
#include <utility>

#include "src/common/logging.h"
#include "src/cost/cost_model.h"
#include "src/cost/incremental.h"

namespace wsflow {

PortfolioAlgorithm::PortfolioAlgorithm(std::vector<std::string> members)
    : members_(std::move(members)) {
  if (members_.empty()) {
    members_ = {"fair-load", "fltr",      "fltr2",
                "fl-merge",  "heavy-ops", "critical-path"};
  }
  for (const std::string& member : members_) {
    WSFLOW_CHECK_NE(member, "portfolio") << "portfolio cannot nest itself";
  }
}

Result<Mapping> PortfolioAlgorithm::Run(const DeployContext& ctx) const {
  WSFLOW_RETURN_IF_ERROR(CheckContext(ctx));
  RegisterBuiltinAlgorithms();
  CostModel model(*ctx.workflow, *ctx.network, ctx.profile);

  Mapping best;
  double best_cost = 0;
  bool have_best = false;
  // One evaluator scores every member: the first successful candidate
  // binds it (warming the router and building the all-pairs/block caches),
  // later candidates rebind the shared state instead of re-deriving it.
  std::optional<IncrementalEvaluator> eval;
  Status last_error = Status::Internal("portfolio has no members");
  for (const std::string& member : members_) {
    Result<std::unique_ptr<DeploymentAlgorithm>> algo =
        AlgorithmRegistry::Global().Create(member);
    if (!algo.ok()) return algo.status();  // unknown member: config error
    Result<Mapping> m = (*algo)->Run(ctx);
    if (!m.ok()) {
      last_error = m.status().WithContext(member);
      continue;
    }
    if (!eval.has_value()) {
      Result<IncrementalEvaluator> bound =
          IncrementalEvaluator::Bind(model, std::move(*m), ctx.cost_options);
      if (!bound.ok()) {
        last_error = bound.status().WithContext(member);
        continue;
      }
      eval.emplace(std::move(*bound));
    } else {
      Status rebound = eval->Rebind(std::move(*m));
      if (!rebound.ok()) {
        last_error = rebound.WithContext(member);
        continue;
      }
    }
    Result<double> cost = eval->Combined();
    if (!cost.ok()) {
      last_error = cost.status().WithContext(member);
      continue;
    }
    if (!have_best || *cost < best_cost) {
      have_best = true;
      best_cost = *cost;
      best = eval->mapping();
    }
  }
  if (!have_best) return last_error;
  return best;
}

}  // namespace wsflow
