// wsflow: user-defined deployment constraints (paper §2.2 set C; flagged as
// future work in §6 and implemented here as an extension).
//
// Constraints bound the solution space: a ceiling on the workflow's
// completion time or on the fairness penalty, a per-server load cap, and
// placement pins/bans for individual operations (e.g. an operation that must
// stay on the server holding its data, or may not share a host with
// untrusted code).

#ifndef WSFLOW_DEPLOY_CONSTRAINTS_H_
#define WSFLOW_DEPLOY_CONSTRAINTS_H_

#include <optional>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/cost/cost_model.h"
#include "src/cost/incremental.h"
#include "src/deploy/mapping.h"

namespace wsflow {

struct DeploymentConstraints {
  /// Upper bound on T_execute (seconds).
  std::optional<double> max_execution_time;
  /// Upper bound on the fairness TimePenalty (seconds).
  std::optional<double> max_time_penalty;
  /// Upper bound on any single server's Load (seconds).
  std::optional<double> max_server_load;
  /// Operations that must live on a specific server.
  std::vector<std::pair<OperationId, ServerId>> pinned;
  /// Operation/server combinations that are forbidden.
  std::vector<std::pair<OperationId, ServerId>> forbidden;
  /// Ceilings on individual operations' (expected) completion times,
  /// seconds from workflow start (paper §6: response time of individual
  /// operations as part of the cost model).
  std::vector<std::pair<OperationId, double>> max_response_time;

  bool empty() const {
    return !max_execution_time && !max_time_penalty && !max_server_load &&
           pinned.empty() && forbidden.empty() && max_response_time.empty();
  }
};

/// OK when `m` satisfies every constraint; otherwise ConstraintViolation
/// naming the first violated one. The mapping must be total.
Status CheckConstraints(const CostModel& model, const Mapping& m,
                        const DeploymentConstraints& constraints);

/// Quantitative violation: 0 when satisfied, otherwise the sum of
/// constraint excesses (seconds) plus 1 per placement violation. Used as a
/// penalty term by search-based repair.
Result<double> ConstraintViolation(const CostModel& model, const Mapping& m,
                                   const DeploymentConstraints& constraints);

/// Same violation measure against an IncrementalEvaluator's working mapping:
/// execution time, penalty and loads come from the delta state instead of a
/// cold re-evaluation. Per-operation response-time ceilings still cost a
/// cold pass (they need the full response-time recursion).
Result<double> ConstraintViolation(IncrementalEvaluator& eval,
                                   const DeploymentConstraints& constraints);

/// Enforces pins by rewriting `m` in place (placement constraints only;
/// quantitative constraints cannot be patched locally).
void ApplyPins(const DeploymentConstraints& constraints, Mapping* m);

}  // namespace wsflow

#endif  // WSFLOW_DEPLOY_CONSTRAINTS_H_
