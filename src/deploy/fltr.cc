#include "src/deploy/fltr.h"

#include <algorithm>

#include "src/common/random.h"
#include "src/deploy/fair_load.h"
#include "src/deploy/graph_view.h"
#include "src/deploy/local_search.h"
#include "src/deploy/random_baseline.h"

namespace wsflow {

namespace {

/// Gain of placing `op` on `server` given the working mapping: message bits
/// kept off the network (Fig. 5, generalized to any in/out degree). Ignores
/// the operation's own current (possibly random) placement.
double Gain(const WorkflowView& view, OperationId op, ServerId server,
            const Mapping& m) {
  return view.GainAtServer(op, server, m);
}

}  // namespace

Result<Mapping> FltrAlgorithm::Run(const DeployContext& ctx) const {
  WSFLOW_RETURN_IF_ERROR(CheckContext(ctx));
  WorkflowView view(*ctx.workflow, ctx.profile);
  ServerLedger ledger(view, *ctx.network);

  const size_t num_ops = ctx.workflow->num_operations();
  Rng rng(ctx.seed);
  Mapping m = random_init_
                  ? RandomMapping(num_ops, ctx.network->num_servers(), &rng)
                  : Mapping(num_ops);

  std::vector<OperationId> pending = OperationsByDescendingCycles(view);

  while (!pending.empty()) {
    ServerId s1 = ledger.Top();
    // Tie group: every pending operation with the head's cycle cost.
    double head_cycles = view.Cycles(pending.front());
    size_t best_index = 0;
    double best_gain = Gain(view, pending[0], s1, m);
    for (size_t i = 1;
         i < pending.size() && view.Cycles(pending[i]) == head_cycles; ++i) {
      double gain = Gain(view, pending[i], s1, m);
      if (gain > best_gain) {
        best_gain = gain;
        best_index = i;
      }
    }
    OperationId chosen = pending[best_index];
    pending.erase(pending.begin() + static_cast<ptrdiff_t>(best_index));
    m.Assign(chosen, s1);  // overwrites any random placement
    ledger.Charge(s1, view.Cycles(chosen));
  }
  return PolishMapping(ctx, std::move(m), polish_steps_);
}

}  // namespace wsflow
