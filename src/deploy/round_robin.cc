#include "src/deploy/round_robin.h"

namespace wsflow {

Result<Mapping> RoundRobinAlgorithm::Run(const DeployContext& ctx) const {
  WSFLOW_RETURN_IF_ERROR(CheckContext(ctx));
  const size_t ops = ctx.workflow->num_operations();
  const size_t servers = ctx.network->num_servers();
  Mapping m(ops);
  for (size_t i = 0; i < ops; ++i) {
    m.Assign(OperationId(static_cast<uint32_t>(i)),
             ServerId(static_cast<uint32_t>(i % servers)));
  }
  return m;
}

}  // namespace wsflow
