// wsflow: the server network N(S, L).
//
// The network is an undirected graph of servers. Two families matter to the
// paper: the *line* (a path of point-to-point links, used for the Line-Line
// algorithms) and the *bus* (one shared medium connecting all servers with
// identical pairwise cost, used by the Line-Bus and Graph-Bus algorithms).
// Star and ring builders are provided as extensions. Link speeds are in
// bits per second; propagation delays (T_refl) in seconds.

#ifndef WSFLOW_NETWORK_TOPOLOGY_H_
#define WSFLOW_NETWORK_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/network/server.h"

namespace wsflow {

/// Strongly-typed index of a link within its network.
struct LinkId {
  uint32_t value = 0xFFFFFFFFu;

  constexpr LinkId() = default;
  constexpr explicit LinkId(uint32_t v) : value(v) {}
  constexpr bool valid() const { return value != 0xFFFFFFFFu; }

  friend constexpr bool operator==(LinkId a, LinkId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(LinkId a, LinkId b) {
    return a.value != b.value;
  }
};

/// An undirected communication link. A shared-medium link (the bus) has
/// invalid endpoints and connects every pair of servers.
struct Link {
  LinkId id;
  ServerId a;
  ServerId b;
  /// Line_Speed in bits per second.
  double speed_bps = 0;
  /// Propagation time T_refl in seconds.
  double propagation_s = 0;

  bool is_shared_medium() const { return !a.valid() && !b.valid(); }
};

/// Topology family tag; routing exploits it.
enum class NetworkKind : uint8_t {
  kGeneral = 0,  ///< Arbitrary point-to-point links.
  kLine,         ///< S_1 - S_2 - ... - S_N.
  kBus,          ///< Single shared medium.
  kStar,         ///< All servers attached to a hub server.
  kRing,         ///< Closed chain.
};

std::string_view NetworkKindToString(NetworkKind kind);

/// The server farm and its interconnect.
class Network {
 public:
  Network() = default;
  explicit Network(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  NetworkKind kind() const { return kind_; }
  void set_kind(NetworkKind kind) { kind_ = kind; }

  /// Adds a server; power must be positive.
  ServerId AddServer(std::string name, double power_hz);

  /// Adds a point-to-point link between distinct existing servers.
  /// Duplicate pairs are rejected (one link per pair).
  Result<LinkId> AddLink(ServerId a, ServerId b, double speed_bps,
                         double propagation_s = 0);

  /// Installs the shared bus medium. Only valid once, and incompatible with
  /// point-to-point links.
  Result<LinkId> SetBus(double speed_bps, double propagation_s = 0);

  size_t num_servers() const { return servers_.size(); }
  size_t num_links() const { return links_.size(); }

  bool Contains(ServerId id) const { return id.value < servers_.size(); }

  const Server& server(ServerId id) const;
  Server& mutable_server(ServerId id);
  const std::vector<Server>& servers() const { return servers_; }

  const Link& link(LinkId id) const;
  const std::vector<Link>& links() const { return links_; }

  /// Point-to-point link between a and b if present (either direction).
  Result<LinkId> FindLink(ServerId a, ServerId b) const;

  /// Link ids incident to `id` (excluding a shared medium).
  const std::vector<LinkId>& incident_links(ServerId id) const;

  /// True when a shared bus medium is installed.
  bool has_bus() const { return bus_.valid(); }
  /// The bus link id; invalid when no bus is installed.
  LinkId bus() const { return bus_; }

  /// Sum of P(s) over all servers (the paper's Sum_Capacity).
  double TotalPowerHz() const;

 private:
  std::string name_;
  NetworkKind kind_ = NetworkKind::kGeneral;
  std::vector<Server> servers_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> incident_;
  LinkId bus_;
};

/// Builds the line S_1 - ... - S_N. `link_speeds_bps` must have N-1 entries
/// (speed of the link between consecutive servers).
Result<Network> MakeLineNetwork(const std::vector<double>& powers_hz,
                                const std::vector<double>& link_speeds_bps,
                                double propagation_s = 0);

/// Builds a bus network of the given server powers sharing one medium.
Result<Network> MakeBusNetwork(const std::vector<double>& powers_hz,
                               double bus_speed_bps,
                               double propagation_s = 0);

/// Builds a star: servers[0] is the hub, every other server links to it.
Result<Network> MakeStarNetwork(const std::vector<double>& powers_hz,
                                const std::vector<double>& spoke_speeds_bps,
                                double propagation_s = 0);

/// Builds a ring: the line plus a closing link S_N - S_1. Speeds has N
/// entries, the last being the closing link.
Result<Network> MakeRingNetwork(const std::vector<double>& powers_hz,
                                const std::vector<double>& link_speeds_bps,
                                double propagation_s = 0);

}  // namespace wsflow

#endif  // WSFLOW_NETWORK_TOPOLOGY_H_
