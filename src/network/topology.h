// wsflow: the server network N(S, L).
//
// The network is an undirected graph of servers. Two families matter to the
// paper: the *line* (a path of point-to-point links, used for the Line-Line
// algorithms) and the *bus* (one shared medium connecting all servers with
// identical pairwise cost, used by the Line-Bus and Graph-Bus algorithms).
// Star and ring builders are provided as extensions, and two hierarchical
// families model geo-distributed farms: the *fat tree* (racks of servers
// behind top-of-rack heads, multipathed through a spine layer) and the
// *hierarchical WAN* (servers -> clusters -> regions with heterogeneous
// intra-DC vs inter-region links). Link speeds are in bits per second;
// propagation delays (T_refl) in seconds. Every link carries a routing
// weight (LinkRoutingWeight) that the weighted shortest-path Router
// minimizes.

#ifndef WSFLOW_NETWORK_TOPOLOGY_H_
#define WSFLOW_NETWORK_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/network/server.h"

namespace wsflow {

/// Strongly-typed index of a link within its network.
struct LinkId {
  uint32_t value = 0xFFFFFFFFu;

  constexpr LinkId() = default;
  constexpr explicit LinkId(uint32_t v) : value(v) {}
  constexpr bool valid() const { return value != 0xFFFFFFFFu; }

  friend constexpr bool operator==(LinkId a, LinkId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(LinkId a, LinkId b) {
    return a.value != b.value;
  }
};

/// An undirected communication link. A shared-medium link (the bus) has
/// invalid endpoints and connects every pair of servers.
struct Link {
  LinkId id;
  ServerId a;
  ServerId b;
  /// Line_Speed in bits per second.
  double speed_bps = 0;
  /// Propagation time T_refl in seconds.
  double propagation_s = 0;

  bool is_shared_medium() const { return !a.valid() && !b.valid(); }
};

/// Routing weight of a link: the cost a 1-bit message pays to cross it,
/// propagation_s + 1/speed_bps seconds. The Router minimizes the sum of
/// this weight over the route, so high-latency or slow WAN links are
/// detoured around when a cheaper multi-hop path exists.
inline double LinkRoutingWeight(const Link& link) {
  return link.propagation_s + 1.0 / link.speed_bps;
}

/// Topology family tag; routing exploits it.
enum class NetworkKind : uint8_t {
  kGeneral = 0,  ///< Arbitrary point-to-point links.
  kLine,         ///< S_1 - S_2 - ... - S_N.
  kBus,          ///< Single shared medium.
  kStar,         ///< All servers attached to a hub server.
  kRing,         ///< Closed chain.
  kFatTree,      ///< Racks behind ToR heads, multipathed via spines.
  kHierarchical, ///< Servers -> clusters -> regions over WAN links.
};

std::string_view NetworkKindToString(NetworkKind kind);

/// The server farm and its interconnect.
class Network {
 public:
  Network() = default;
  explicit Network(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  NetworkKind kind() const { return kind_; }
  void set_kind(NetworkKind kind) { kind_ = kind; }

  /// Adds a server; power must be positive. `zone` is the optional
  /// locality label (empty = no locality information).
  ServerId AddServer(std::string name, double power_hz,
                     std::string zone = "");

  /// Distinct zone labels in first-appearance (server id) order. Servers
  /// with an empty zone are skipped.
  std::vector<std::string> Zones() const;

  /// Adds a point-to-point link between distinct existing servers.
  /// Duplicate pairs are rejected (one link per pair).
  Result<LinkId> AddLink(ServerId a, ServerId b, double speed_bps,
                         double propagation_s = 0);

  /// Installs the shared bus medium. Only valid once, and incompatible with
  /// point-to-point links.
  Result<LinkId> SetBus(double speed_bps, double propagation_s = 0);

  size_t num_servers() const { return servers_.size(); }
  size_t num_links() const { return links_.size(); }

  bool Contains(ServerId id) const { return id.value < servers_.size(); }

  const Server& server(ServerId id) const;
  Server& mutable_server(ServerId id);
  const std::vector<Server>& servers() const { return servers_; }

  const Link& link(LinkId id) const;
  const std::vector<Link>& links() const { return links_; }

  /// Point-to-point link between a and b if present (either direction).
  Result<LinkId> FindLink(ServerId a, ServerId b) const;

  /// Link ids incident to `id` (excluding a shared medium).
  const std::vector<LinkId>& incident_links(ServerId id) const;

  /// True when a shared bus medium is installed.
  bool has_bus() const { return bus_.valid(); }
  /// The bus link id; invalid when no bus is installed.
  LinkId bus() const { return bus_; }

  /// Sum of P(s) over all servers (the paper's Sum_Capacity).
  double TotalPowerHz() const;

 private:
  std::string name_;
  NetworkKind kind_ = NetworkKind::kGeneral;
  std::vector<Server> servers_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> incident_;
  LinkId bus_;
};

/// Builds the line S_1 - ... - S_N. `link_speeds_bps` must have N-1 entries
/// (speed of the link between consecutive servers).
Result<Network> MakeLineNetwork(const std::vector<double>& powers_hz,
                                const std::vector<double>& link_speeds_bps,
                                double propagation_s = 0);

/// Builds a bus network of the given server powers sharing one medium.
Result<Network> MakeBusNetwork(const std::vector<double>& powers_hz,
                               double bus_speed_bps,
                               double propagation_s = 0);

/// Builds a star: servers[0] is the hub, every other server links to it.
Result<Network> MakeStarNetwork(const std::vector<double>& powers_hz,
                                const std::vector<double>& spoke_speeds_bps,
                                double propagation_s = 0);

/// Builds a ring: the line plus a closing link S_N - S_1. Speeds has N
/// entries, the last being the closing link.
Result<Network> MakeRingNetwork(const std::vector<double>& powers_hz,
                                const std::vector<double>& link_speeds_bps,
                                double propagation_s = 0);

/// Fat-tree farm: `spines` spine servers plus `racks` racks of `rack_size`
/// servers each. Within a rack every member links to the rack head (the
/// rack's first server) over a fast edge link; every rack head links to
/// every spine, so inter-rack traffic sees `spines` equal-cost paths —
/// the Router's deterministic tie-break picks one reproducibly. Canonical
/// server order: spines first (zone "spine"), then rack r's servers (zone
/// "rack<r>"). `powers_hz` covers all servers in that order, or may hold
/// a single entry broadcast to every server.
struct FatTreeOptions {
  size_t spines = 2;
  size_t racks = 2;
  size_t rack_size = 4;
  std::vector<double> powers_hz = {1e9};
  double edge_speed_bps = 10e9;    ///< member <-> rack head
  double spine_speed_bps = 40e9;   ///< rack head <-> spine
  double edge_propagation_s = 1e-6;
  double spine_propagation_s = 5e-6;
};
Result<Network> MakeFatTreeNetwork(const FatTreeOptions& options);

/// Hierarchical WAN farm: `regions` regions of `clusters_per_region`
/// clusters of `cluster_size` servers. Within a cluster every member
/// links to the cluster head (the cluster's first server) over a fast
/// intra-DC link; within a region every cluster head links to the region
/// gateway (cluster 0's head) over an aggregation link; region gateways
/// form a full WAN mesh of slow, high-latency links. Canonical server
/// order: region-major, cluster-major, members in order. Zones are
/// "r<i>.c<j>" — the region is the prefix before the dot. `powers_hz`
/// covers all servers in canonical order, or holds a single broadcast
/// entry.
struct HierarchicalOptions {
  size_t regions = 2;
  size_t clusters_per_region = 2;
  size_t cluster_size = 3;
  std::vector<double> powers_hz = {1e9};
  double cluster_speed_bps = 10e9;  ///< member <-> cluster head
  double region_speed_bps = 1e9;    ///< cluster head <-> region gateway
  double wan_speed_bps = 100e6;     ///< gateway <-> gateway
  double cluster_propagation_s = 1e-6;
  double region_propagation_s = 50e-6;
  double wan_propagation_s = 0.03;
};
Result<Network> MakeHierarchicalNetwork(const HierarchicalOptions& options);

/// Random connected weighted graph: a random spanning tree plus
/// `extra_links` additional random links, with speeds and propagation
/// delays drawn log-uniformly from the given ranges. Deterministic in
/// `seed`. For property tests and benches that need arbitrary weighted
/// graphs rather than a named family.
struct RandomNetworkParams {
  size_t num_servers = 8;
  size_t extra_links = 6;
  uint64_t seed = 1;
  double min_power_hz = 1e9;
  double max_power_hz = 3e9;
  double min_speed_bps = 10e6;
  double max_speed_bps = 10e9;
  double min_propagation_s = 1e-6;
  double max_propagation_s = 0.05;
};
Result<Network> MakeRandomConnectedNetwork(const RandomNetworkParams& params);

}  // namespace wsflow

#endif  // WSFLOW_NETWORK_TOPOLOGY_H_
