#include "src/network/server_mask.h"

#include <sstream>

#include "src/common/logging.h"

namespace wsflow {

ServerMask ServerMask::AllAlive(size_t num_servers) {
  ServerMask mask;
  mask.alive_.assign(num_servers, 1);
  return mask;
}

void ServerMask::SetAlive(ServerId s, bool alive) {
  WSFLOW_CHECK(s.value < alive_.size())
      << "ServerMask::SetAlive out of range";
  uint8_t next = alive ? 1 : 0;
  if (alive_[s.value] == next) return;
  alive_[s.value] = next;
  if (next) {
    --num_down_;
  } else {
    ++num_down_;
  }
}

std::vector<ServerId> ServerMask::AliveServers() const {
  std::vector<ServerId> out;
  out.reserve(num_alive());
  for (size_t i = 0; i < alive_.size(); ++i) {
    if (alive_[i]) out.push_back(ServerId(static_cast<uint32_t>(i)));
  }
  return out;
}

std::vector<ServerId> ServerMask::DownServers() const {
  std::vector<ServerId> out;
  out.reserve(num_down_);
  for (size_t i = 0; i < alive_.size(); ++i) {
    if (!alive_[i]) out.push_back(ServerId(static_cast<uint32_t>(i)));
  }
  return out;
}

uint64_t ServerMask::Digest() const {
  if (num_down_ == 0) return 0;
  // FNV-1a over (size, ascending down ids): a canonical form, so masks
  // with equal down sets digest equally regardless of mutation history.
  constexpr uint64_t kPrime = 0x00000100000001B3ull;
  uint64_t h = 0xCBF29CE484222325ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= v & 0xFF;
      h *= kPrime;
      v >>= 8;
    }
  };
  mix(alive_.size());
  for (size_t i = 0; i < alive_.size(); ++i) {
    if (!alive_[i]) mix(i);
  }
  return h == 0 ? 1 : h;
}

std::string ServerMask::ToString() const {
  if (trivial()) return "all-alive";
  std::ostringstream os;
  os << "alive=" << num_alive() << "/" << alive_.size() << " down=[";
  bool first = true;
  for (size_t i = 0; i < alive_.size(); ++i) {
    if (alive_[i]) continue;
    if (!first) os << ",";
    os << i;
    first = false;
  }
  os << "]";
  return os.str();
}

}  // namespace wsflow
