#include "src/network/serialization.h"

#include <fstream>
#include <sstream>

namespace wsflow {

namespace {

Result<NetworkKind> KindFromString(const std::string& s) {
  for (NetworkKind k : {NetworkKind::kGeneral, NetworkKind::kLine,
                        NetworkKind::kBus, NetworkKind::kStar,
                        NetworkKind::kRing, NetworkKind::kFatTree,
                        NetworkKind::kHierarchical}) {
    if (NetworkKindToString(k) == s) return k;
  }
  return Status::ParseError("unknown network kind '" + s + "'");
}

}  // namespace

XmlNode NetworkToXml(const Network& n) {
  XmlNode root("network");
  root.SetAttr("name", n.name());
  root.SetAttr("kind", std::string(NetworkKindToString(n.kind())));
  for (const Server& s : n.servers()) {
    XmlNode& node = root.AddChild("server");
    node.SetAttr("id", static_cast<int64_t>(s.id().value));
    node.SetAttr("name", s.name());
    node.SetAttr("power_hz", s.power_hz());
    if (!s.zone().empty()) node.SetAttr("zone", s.zone());
  }
  for (const Link& link : n.links()) {
    if (link.is_shared_medium()) {
      XmlNode& node = root.AddChild("bus");
      node.SetAttr("speed_bps", link.speed_bps);
      node.SetAttr("propagation_s", link.propagation_s);
    } else {
      XmlNode& node = root.AddChild("link");
      node.SetAttr("a", static_cast<int64_t>(link.a.value));
      node.SetAttr("b", static_cast<int64_t>(link.b.value));
      node.SetAttr("speed_bps", link.speed_bps);
      node.SetAttr("propagation_s", link.propagation_s);
    }
  }
  return root;
}

std::string NetworkToXmlString(const Network& n) {
  return WriteXml(NetworkToXml(n));
}

Result<Network> NetworkFromXml(const XmlNode& root) {
  if (root.tag() != "network") {
    return Status::ParseError("expected <network>, got <" + root.tag() + ">");
  }
  Network n(root.Attr("name").value_or("network"));
  if (root.HasAttr("kind")) {
    WSFLOW_ASSIGN_OR_RETURN(std::string kind_str, root.Attr("kind"));
    WSFLOW_ASSIGN_OR_RETURN(NetworkKind kind, KindFromString(kind_str));
    n.set_kind(kind);
  }
  std::vector<const XmlNode*> servers = root.Children("server");
  for (size_t i = 0; i < servers.size(); ++i) {
    const XmlNode& node = *servers[i];
    WSFLOW_ASSIGN_OR_RETURN(int64_t id, node.IntAttr("id"));
    if (id != static_cast<int64_t>(i)) {
      return Status::ParseError(
          "server ids must be dense and in order; expected " +
          std::to_string(i) + ", got " + std::to_string(id));
    }
    WSFLOW_ASSIGN_OR_RETURN(std::string name, node.Attr("name"));
    WSFLOW_ASSIGN_OR_RETURN(double power, node.DoubleAttr("power_hz"));
    if (power <= 0) {
      return Status::ParseError("server '" + name +
                                "' has non-positive power");
    }
    std::string zone = node.Attr("zone").value_or("");
    n.AddServer(name, power, std::move(zone));
  }
  for (const XmlNode* node : root.Children("bus")) {
    WSFLOW_ASSIGN_OR_RETURN(double speed, node->DoubleAttr("speed_bps"));
    double propagation = 0;
    if (node->HasAttr("propagation_s")) {
      WSFLOW_ASSIGN_OR_RETURN(propagation, node->DoubleAttr("propagation_s"));
    }
    Result<LinkId> r = n.SetBus(speed, propagation);
    if (!r.ok()) return r.status().WithContext("loading bus");
  }
  for (const XmlNode* node : root.Children("link")) {
    WSFLOW_ASSIGN_OR_RETURN(int64_t a, node->IntAttr("a"));
    WSFLOW_ASSIGN_OR_RETURN(int64_t b, node->IntAttr("b"));
    WSFLOW_ASSIGN_OR_RETURN(double speed, node->DoubleAttr("speed_bps"));
    double propagation = 0;
    if (node->HasAttr("propagation_s")) {
      WSFLOW_ASSIGN_OR_RETURN(propagation, node->DoubleAttr("propagation_s"));
    }
    if (a < 0 || b < 0 || static_cast<size_t>(a) >= n.num_servers() ||
        static_cast<size_t>(b) >= n.num_servers()) {
      return Status::ParseError("link endpoint out of range");
    }
    Result<LinkId> r =
        n.AddLink(ServerId(static_cast<uint32_t>(a)),
                  ServerId(static_cast<uint32_t>(b)), speed, propagation);
    if (!r.ok()) return r.status().WithContext("loading link");
  }
  return n;
}

Result<Network> NetworkFromXmlString(const std::string& text) {
  WSFLOW_ASSIGN_OR_RETURN(XmlNode root, ParseXml(text));
  return NetworkFromXml(root);
}

Status SaveNetwork(const Network& n, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  out << NetworkToXmlString(n);
  out.close();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

Result<Network> LoadNetwork(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return NetworkFromXmlString(buffer.str());
}

}  // namespace wsflow
