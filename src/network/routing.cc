#include "src/network/routing.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "src/common/logging.h"

namespace wsflow {

double Route::TotalPropagation(const Network& n) const {
  double total = 0;
  for (LinkId l : links) total += n.link(l).propagation_s;
  return total;
}

double Route::TransmissionTime(const Network& n, double bits) const {
  double total = 0;
  for (LinkId l : links) total += bits / n.link(l).speed_bps;
  return total;
}

Router::Router(const Network& network)
    : network_(network),
      parent_link_(network.num_servers()),
      source_done_(network.num_servers(), false) {}

void Router::EnsureSource(ServerId from) const {
  if (source_done_[from.value]) return;
  std::vector<LinkId>& parents = parent_link_[from.value];
  parents.assign(network_.num_servers(), LinkId());
  std::vector<bool> visited(network_.num_servers(), false);
  visited[from.value] = true;
  std::deque<ServerId> queue{from};
  while (!queue.empty()) {
    ServerId cur = queue.front();
    queue.pop_front();
    for (LinkId l : network_.incident_links(cur)) {
      const Link& link = network_.link(l);
      ServerId next = link.a == cur ? link.b : link.a;
      if (!visited[next.value]) {
        visited[next.value] = true;
        parents[next.value] = l;
        queue.push_back(next);
      }
    }
  }
  source_done_[from.value] = true;
}

Result<Route> Router::FindRoute(ServerId from, ServerId to) const {
  if (!network_.Contains(from) || !network_.Contains(to)) {
    return Status::NotFound("route endpoint not in network");
  }
  if (from == to) return Route{};
  if (network_.has_bus()) {
    return Route{{network_.bus()}};
  }
  EnsureSource(from);
  const std::vector<LinkId>& parents = parent_link_[from.value];
  if (!parents[to.value].valid()) {
    std::ostringstream os;
    os << "servers " << from << " and " << to << " are disconnected";
    return Status::FailedPrecondition(os.str());
  }
  Route route;
  ServerId cur = to;
  while (cur != from) {
    LinkId l = parents[cur.value];
    WSFLOW_CHECK(l.valid());
    route.links.push_back(l);
    const Link& link = network_.link(l);
    cur = link.a == cur ? link.b : link.a;
  }
  std::reverse(route.links.begin(), route.links.end());
  return route;
}

Result<size_t> Router::HopCount(ServerId from, ServerId to) const {
  WSFLOW_ASSIGN_OR_RETURN(Route route, FindRoute(from, to));
  return route.links.size();
}

void Router::WarmAllPairs() const {
  if (network_.has_bus()) return;
  for (uint32_t s = 0; s < network_.num_servers(); ++s) {
    EnsureSource(ServerId(s));
  }
}

bool RouteAvoidsDown(const Route& route, const Network& n, ServerId from,
                     ServerId to, const ServerMask& mask) {
  if (!mask.alive(from) || !mask.alive(to)) return false;
  ServerId cur = from;
  for (LinkId l : route.links) {
    const Link& link = n.link(l);
    if (link.is_shared_medium()) {
      cur = to;
      continue;
    }
    ServerId next = link.a == cur ? link.b : link.a;
    if (next != to && !mask.alive(next)) return false;
    cur = next;
  }
  return true;
}

}  // namespace wsflow
