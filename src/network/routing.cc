#include "src/network/routing.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <sstream>
#include <tuple>

#include "src/common/logging.h"

namespace wsflow {

double Route::TotalPropagation(const Network& n) const {
  double total = 0;
  for (LinkId l : links) total += n.link(l).propagation_s;
  return total;
}

double Route::TransmissionTime(const Network& n, double bits) const {
  double total = 0;
  for (LinkId l : links) total += bits / n.link(l).speed_bps;
  return total;
}

double Route::RoutingWeight(const Network& n) const {
  double total = 0;
  for (LinkId l : links) total += LinkRoutingWeight(n.link(l));
  return total;
}

Router::Router(const Network& network)
    : network_(network),
      parent_link_(network.num_servers()),
      source_done_(network.num_servers(), false) {}

void Router::EnsureSource(ServerId from) const {
  if (source_done_[from.value]) return;
  const size_t N = network_.num_servers();
  std::vector<LinkId>& parents = parent_link_[from.value];
  parents.assign(N, LinkId());

  // Dijkstra over LinkRoutingWeight with a fully deterministic tie-break:
  // a relaxation wins on strictly smaller distance, then on fewer hops,
  // then on a smaller upstream link id. The comparisons are exact double
  // comparisons over values derived identically on every run, so the
  // parent table — and hence every route — is byte-identical across runs
  // and thread schedules.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(N, kInf);
  std::vector<uint32_t> hops(N, 0);
  std::vector<char> done(N, 0);
  dist[from.value] = 0;

  using Entry = std::tuple<double, uint32_t, uint32_t>;  // dist, hops, node
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  queue.emplace(0.0, 0u, from.value);
  while (!queue.empty()) {
    auto [d, h, u] = queue.top();
    queue.pop();
    if (done[u]) continue;
    done[u] = 1;
    for (LinkId l : network_.incident_links(ServerId(u))) {
      const Link& link = network_.link(l);
      ServerId next = link.a == ServerId(u) ? link.b : link.a;
      const uint32_t v = next.value;
      if (done[v]) continue;
      const double nd = d + LinkRoutingWeight(link);
      const uint32_t nh = h + 1;
      bool better = nd < dist[v];
      if (!better && nd == dist[v]) {
        better = nh < hops[v] ||
                 (nh == hops[v] && l.value < parents[v].value);
      }
      if (better) {
        dist[v] = nd;
        hops[v] = nh;
        parents[v] = l;
        queue.emplace(nd, nh, v);
      }
    }
  }
  source_done_[from.value] = true;
}

Result<Route> Router::FindRoute(ServerId from, ServerId to) const {
  if (!network_.Contains(from) || !network_.Contains(to)) {
    return Status::NotFound("route endpoint not in network");
  }
  if (from == to) return Route{};
  if (network_.has_bus()) {
    return Route{{network_.bus()}};
  }
  EnsureSource(from);
  const std::vector<LinkId>& parents = parent_link_[from.value];
  if (!parents[to.value].valid()) {
    std::ostringstream os;
    os << "servers " << from << " and " << to << " are disconnected";
    return Status::FailedPrecondition(os.str());
  }
  Route route;
  ServerId cur = to;
  while (cur != from) {
    LinkId l = parents[cur.value];
    WSFLOW_CHECK(l.valid());
    route.links.push_back(l);
    const Link& link = network_.link(l);
    cur = link.a == cur ? link.b : link.a;
  }
  std::reverse(route.links.begin(), route.links.end());
  return route;
}

Result<size_t> Router::HopCount(ServerId from, ServerId to) const {
  WSFLOW_ASSIGN_OR_RETURN(Route route, FindRoute(from, to));
  return route.links.size();
}

Result<double> Router::RouteWeight(ServerId from, ServerId to) const {
  WSFLOW_ASSIGN_OR_RETURN(Route route, FindRoute(from, to));
  return route.RoutingWeight(network_);
}

void Router::WarmAllPairs() const {
  if (network_.has_bus()) return;
  for (uint32_t s = 0; s < network_.num_servers(); ++s) {
    EnsureSource(ServerId(s));
  }
}

bool RouteAvoidsDown(const Route& route, const Network& n, ServerId from,
                     ServerId to, const ServerMask& mask) {
  if (!mask.alive(from) || !mask.alive(to)) return false;
  ServerId cur = from;
  for (LinkId l : route.links) {
    const Link& link = n.link(l);
    if (link.is_shared_medium()) {
      cur = to;
      continue;
    }
    ServerId next = link.a == cur ? link.b : link.a;
    if (next != to && !mask.alive(next)) return false;
    cur = next;
  }
  return true;
}

}  // namespace wsflow
