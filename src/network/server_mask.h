// wsflow: alive/down view of the server set.
//
// A ServerMask records which servers of a network are currently alive. The
// default-constructed (empty) mask is *trivial*: every server counts as
// alive and every mask-aware API degenerates to its unmasked sibling, so
// callers can thread a mask unconditionally without paying for it in the
// healthy case. Producers and consumers:
//
//   * the health tracker (src/serve/health.h) folds fault observations
//     into a mask;
//   * the cost layer scores mappings against the surviving subnetwork
//     (EvalTuning::mask, the masked CostModel overloads);
//   * the repair search (src/deploy/repair.h) heals mappings onto it;
//   * the serve layer mixes Digest() into cache keys so results computed
//     under different alive sets never alias.

#ifndef WSFLOW_NETWORK_SERVER_MASK_H_
#define WSFLOW_NETWORK_SERVER_MASK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/network/server.h"

namespace wsflow {

class ServerMask {
 public:
  /// The trivial mask: no server set tracked, everything alive.
  ServerMask() = default;

  /// A sized mask with every server alive. Sized masks render the same
  /// answers as the trivial mask until a server is marked down, but carry
  /// the network size so num_alive()/num_down() are meaningful.
  static ServerMask AllAlive(size_t num_servers);

  /// True when no server is marked down (the empty mask included). All
  /// masked evaluation paths short-circuit to the unmasked ones here.
  bool trivial() const { return num_down_ == 0; }

  /// Tracked server count; 0 for the trivial empty mask.
  size_t size() const { return alive_.size(); }

  /// True when `s` is alive. The empty mask reports every server alive;
  /// a sized mask reports out-of-range ids as down.
  bool alive(ServerId s) const {
    if (alive_.empty()) return true;
    return s.value < alive_.size() && alive_[s.value] != 0;
  }

  /// Flips one server's state. The mask must be sized and `s` in range.
  void SetAlive(ServerId s, bool alive);

  size_t num_alive() const { return alive_.size() - num_down_; }
  size_t num_down() const { return num_down_; }

  /// Alive server ids in ascending order (empty for the trivial empty
  /// mask — callers treating that as "all" must consult the network).
  std::vector<ServerId> AliveServers() const;

  /// Down server ids in ascending order.
  std::vector<ServerId> DownServers() const;

  /// Order-independent content hash of the down set. 0 whenever the mask
  /// is trivial, so mixing the digest into a cache key is the identity
  /// while every server is alive.
  uint64_t Digest() const;

  /// "all-alive" or "alive=6/8 down=[2,5]".
  std::string ToString() const;

  friend bool operator==(const ServerMask& a, const ServerMask& b) {
    return a.alive_ == b.alive_;
  }
  friend bool operator!=(const ServerMask& a, const ServerMask& b) {
    return !(a == b);
  }

 private:
  std::vector<uint8_t> alive_;
  size_t num_down_ = 0;
};

}  // namespace wsflow

#endif  // WSFLOW_NETWORK_SERVER_MASK_H_
