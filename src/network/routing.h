// wsflow: message routing over the server network.
//
// Path(s, s') in the paper's cost model (Table 1) is the sequence of links a
// message traverses from the server of the sending operation to the server
// of the receiving one. On a bus every pair shares the single medium; on
// point-to-point topologies the route is the *weighted* shortest path that
// minimizes the sum of per-link routing weights
//
//   w(l) = T_refl(l) + 1 / Line_Speed(l)
//
// (seconds for a 1-bit message; see LinkRoutingWeight). On the paper's
// uniform-speed line/star/ring networks this degenerates to the hop-count
// rule, while on geo-distributed WAN topologies it detours around slow or
// high-latency links when a cheaper multi-hop path exists.
//
// Deterministic tie-break (route tables are byte-identical across runs and
// platforms): among equal-weight paths the Router prefers the one with
// fewer hops, and among equal-weight equal-hop paths each node adopts the
// candidate upstream link with the smallest LinkId. Equal-cost multipath
// fabrics (fat trees) therefore always pin the same spine for a given
// (source, destination) pair.

#ifndef WSFLOW_NETWORK_ROUTING_H_
#define WSFLOW_NETWORK_ROUTING_H_

#include <vector>

#include "src/common/result.h"
#include "src/network/server_mask.h"
#include "src/network/topology.h"

namespace wsflow {

/// A route: the links traversed in order. Empty for co-located endpoints.
struct Route {
  std::vector<LinkId> links;

  bool co_located() const { return links.empty(); }

  /// Sum of T_refl over the route's links (the latency component of the
  /// weighted route cost; independent of the message size).
  double TotalPropagation(const Network& n) const;

  /// Transmission time of `bits` over the route: Sum of bits/speed per link
  /// (store-and-forward; each hop retransmits the full message).
  double TransmissionTime(const Network& n, double bits) const;

  /// Sum of LinkRoutingWeight over the route's links — the quantity the
  /// Router minimizes.
  double RoutingWeight(const Network& n) const;
};

/// True when `route` (a FindRoute result for `from` -> `to`) touches only
/// mask-alive servers: both endpoints and every transit server of a
/// point-to-point path. A shared-medium hop has no transit servers. Lets
/// churn-aware evaluation reuse the full-network route tables — a route
/// through a down server is *severed*, not recomputed around the hole,
/// even when an all-alive (possibly heavier) detour exists.
bool RouteAvoidsDown(const Route& route, const Network& n, ServerId from,
                     ServerId to, const ServerMask& mask);

/// Router with per-network all-pairs cache. Routes are computed lazily per
/// source with Dijkstra over the link routing weights (O((N + L) log N))
/// and memoized; bus networks answer in O(1).
class Router {
 public:
  explicit Router(const Network& network);

  /// The route from `from` to `to`. Co-located endpoints get the empty
  /// route. Fails when the servers are disconnected.
  Result<Route> FindRoute(ServerId from, ServerId to) const;

  /// Number of links on the route (0 for co-located, 1 on a bus).
  Result<size_t> HopCount(ServerId from, ServerId to) const;

  /// Total routing weight of the route from `from` to `to` (0 for
  /// co-located endpoints; the single shared-medium weight on a bus).
  Result<double> RouteWeight(ServerId from, ServerId to) const;

  /// Eagerly runs the per-source Dijkstra for every server so that no
  /// later FindRoute pays the first-touch cost. O(N * (N + L) log N); a
  /// no-op on bus networks (every route is the single shared link) and
  /// for sources already warmed.
  void WarmAllPairs() const;

  const Network& network() const { return network_; }

 private:
  void EnsureSource(ServerId from) const;

  const Network& network_;
  // parent_link_[src][dst]: link towards dst's shortest-path parent, per
  // source; lazily filled. An invalid id marks "unreachable".
  mutable std::vector<std::vector<LinkId>> parent_link_;
  mutable std::vector<bool> source_done_;
};

}  // namespace wsflow

#endif  // WSFLOW_NETWORK_ROUTING_H_
