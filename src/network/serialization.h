// wsflow: network persistence in XML.
//
// Format:
//
//   <network name="farm" kind="bus">
//     <server id="0" name="s1" power_hz="1e9" zone="r0.c0"/>
//     ...
//     <bus speed_bps="1e8" propagation_s="0"/>        (bus networks)
//     <link a="0" b="1" speed_bps="1e7" propagation_s="0"/>  (otherwise)
//   </network>
//
// Server ids must be the dense indices 0..N-1. The `zone` attribute is the
// optional locality label of hierarchical topologies; it is omitted when
// empty. Round-tripping preserves names, powers, zones, kind, link speeds
// and propagation delays exactly — saved WAN networks reload
// bit-identically.

#ifndef WSFLOW_NETWORK_SERIALIZATION_H_
#define WSFLOW_NETWORK_SERIALIZATION_H_

#include <string>

#include "src/common/result.h"
#include "src/network/topology.h"
#include "src/workflow/xml.h"

namespace wsflow {

/// Converts `n` to its XML element form.
XmlNode NetworkToXml(const Network& n);

/// Renders `n` as a <network> XML document.
std::string NetworkToXmlString(const Network& n);

/// Converts a parsed <network> element to a Network.
Result<Network> NetworkFromXml(const XmlNode& root);

/// Parses a network from XML text.
Result<Network> NetworkFromXmlString(const std::string& text);

/// Writes `n` to `path` in XML form.
Status SaveNetwork(const Network& n, const std::string& path);

/// Loads a network from the XML file at `path`.
Result<Network> LoadNetwork(const std::string& path);

}  // namespace wsflow

#endif  // WSFLOW_NETWORK_SERIALIZATION_H_
